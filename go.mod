module dnnjps

go 1.22
