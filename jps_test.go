package dnnjps

import (
	"net"
	"testing"
)

// The facade smoke test: the whole public surface works together the
// way the package doc advertises.
func TestFacadeEndToEnd(t *testing.T) {
	g, err := BuildModel("alexnet")
	if err != nil {
		t.Fatal(err)
	}
	curve := BuildCurve(g, RaspberryPi4(), CloudGPU(), FourG, Float32)
	plan, err := JPS(curve, 8)
	if err != nil {
		t.Fatal(err)
	}
	lo, _ := LO(curve, 8)
	if plan.Makespan >= lo.Makespan {
		t.Errorf("JPS %v should beat LO %v at 4G", plan.Makespan, lo.Makespan)
	}
	simMs, err := Simulate(plan)
	if err != nil {
		t.Fatal(err)
	}
	if simMs < plan.Makespan-1e-6 {
		t.Errorf("sim %v below analytic %v", simMs, plan.Makespan)
	}
}

func TestFacadeModelNames(t *testing.T) {
	names := ModelNames()
	if len(names) != 9 {
		t.Fatalf("ModelNames = %v", names)
	}
	if _, err := BuildModel("nonexistent"); err == nil {
		t.Error("unknown model must error")
	}
}

func TestFacadeChannels(t *testing.T) {
	if ThreeG.UplinkMbps != 1.1 || FourG.UplinkMbps != 5.85 || WiFi.UplinkMbps != 18.88 {
		t.Error("paper channels drifted")
	}
	if ChannelAt(10).UplinkMbps != 10 {
		t.Error("ChannelAt broken")
	}
}

func TestFacadeGeneralPlanner(t *testing.T) {
	g, err := BuildModel("googlenet")
	if err != nil {
		t.Fatal(err)
	}
	gp, err := PlanGeneralBest(g, RaspberryPi4(), CloudGPU(), WiFi, Float32, 4)
	if err != nil {
		t.Fatal(err)
	}
	if gp.Makespan <= 0 {
		t.Error("non-positive makespan")
	}
	pure, err := PlanGeneral(g, RaspberryPi4(), CloudGPU(), WiFi, Float32, 4)
	if err != nil {
		t.Fatal(err)
	}
	if gp.Makespan > pure.Makespan+1e-9 {
		t.Error("best must not exceed pure Alg. 3")
	}
}

func TestFacadeRuntime(t *testing.T) {
	g, err := BuildModel("alexnet")
	if err != nil {
		t.Fatal(err)
	}
	// Exercise only construction wiring here (full round trips are
	// covered by internal/runtime tests; AlexNet forward passes are
	// too slow for a smoke test).
	m := LoadModel(g, 7)
	if NewServer(m) == nil {
		t.Fatal("NewServer returned nil")
	}
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	if NewClient(c1, m, WiFi, 0.001) == nil {
		t.Fatal("NewClient returned nil")
	}
}

func TestFacadeCalibration(t *testing.T) {
	// Calibrate on the compact bench CNN (fast), then plan with the
	// fitted device through the public API.
	dev, err := CalibrateLocalDevice("thismachine", benchNet(), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if dev.DefaultFperMs <= 0 {
		t.Fatal("non-positive throughput")
	}
	curve := BuildCurve(benchNet(), dev, CloudGPU(), WiFi, Float32)
	if _, err := JPS(curve, 4); err != nil {
		t.Fatalf("planning with calibrated device: %v", err)
	}
}
