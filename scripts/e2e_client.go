//go:build ignore

// Multi-client end-to-end smoke driver for scripts/check.sh: dials N
// independent TCP connections to a running jpsserve, each with its own
// tenant ID, runs a burst of cloud-only jobs per connection, and
// requires every reply to carry a plausible class and a positive
// server compute time. Run with:
//
//	go run scripts/e2e_client.go -addr 127.0.0.1:7443 -model squeezenet
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"dnnjps/internal/engine"
	"dnnjps/internal/models"
	"dnnjps/internal/netsim"
	"dnnjps/internal/profile"
	"dnnjps/internal/runtime"
	"dnnjps/internal/tensor"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:7443", "jpsserve address")
		model   = flag.String("model", "squeezenet", "model name (must match the server)")
		seed    = flag.Int64("seed", 42, "weight seed (must match the server)")
		clients = flag.Int("clients", 4, "concurrent client connections")
		jobs    = flag.Int("jobs", 4, "jobs per connection")
		cut     = flag.Int("cut", 0, "partition point: units computed locally before offloading (0 = cloud-only)")
	)
	flag.Parse()
	if err := run(*addr, *model, *seed, *clients, *jobs, *cut); err != nil {
		fmt.Fprintln(os.Stderr, "e2e_client:", err)
		os.Exit(1)
	}
	fmt.Printf("e2e smoke ok: %d clients x %d jobs against %s\n", *clients, *jobs, *addr)
}

func run(addr, model string, seed int64, clients, jobs, cut int) error {
	g, err := models.Build(model)
	if err != nil {
		return err
	}
	m := engine.Load(g, seed)
	units := profile.LineView(g)
	in := tensor.New(g.Node(units[0].Exit).OutShape)
	for i := range in.Data {
		in.Data[i] = float32(i%31)/31 - 0.5
	}
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
			if err != nil {
				errs <- fmt.Errorf("client %d: dial: %w", c, err)
				return
			}
			defer conn.Close()
			cl := runtime.NewClient(conn, m, netsim.WiFi, 1e-6).
				WithTenant(fmt.Sprintf("smoke-%d", c))
			// Cut 0 (the default) offloads at the input unit: the client
			// does no heavy compute, and every connection exercises the
			// server's full suffix path concurrently. A nonzero -cut runs
			// that prefix locally first — the chain smoke uses it to push
			// traffic through a forwarding stage's mid-segment path.
			for j := 0; j < jobs; j++ {
				res, err := cl.RunJob(j, cut, in)
				if err != nil {
					errs <- fmt.Errorf("client %d job %d: %w", c, j, err)
					return
				}
				if res.Class < 0 || res.Class >= 1000 {
					errs <- fmt.Errorf("client %d job %d: class %d out of range", c, j, res.Class)
					return
				}
				if res.CloudMs <= 0 {
					errs <- fmt.Errorf("client %d job %d: server compute %.3fms", c, j, res.CloudMs)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	return <-errs
}
