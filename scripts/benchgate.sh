#!/usr/bin/env sh
# Bench regression gate: re-runs the long-running whole-model Forward
# benchmarks and compares them against the committed BENCH_runtime.json
# baseline. A benchmark that got >25% slower than its recorded ns/op
# (min over -count=3 on both sides) fails the gate; one that got >15%
# faster prints a reminder to refresh the baseline (scripts/bench.sh)
# but does not fail. Only benchmarks with a baseline >= 50ms/op are
# timed-gated — short benchmarks are too noisy for a single-digit
# iteration count — and an allocs/op increase on a gated benchmark
# fails regardless (exact for lean benches, 1% slack above 100).
#
# BENCHGATE=off skips the gate (e.g. on loaded shared machines).
set -eu
cd "$(dirname "$0")/.."

if [ "${BENCHGATE:-on}" = "off" ]; then
    echo "benchgate: skipped (BENCHGATE=off)"
    exit 0
fi
if [ ! -f BENCH_runtime.json ]; then
    echo "benchgate: no BENCH_runtime.json baseline; run scripts/bench.sh" >&2
    exit 1
fi

RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

# Three measured iterations per benchmark, and the compute-bound
# engine benchmarks additionally at -count=3: every gate below takes
# the per-name *minimum* across repetitions, because noise on a shared
# box is strictly additive — the min is the least-contended
# measurement, and single-shot comparisons swing +-25% here. (bench.sh
# records the baseline with the same min-of-3 methodology. Not piped
# through tee: `cmd | tee` under plain sh masks the benchmark's exit.)
go test -run NONE -bench 'Forward|SgemmCrossover' -benchmem -benchtime 3x -count=3 ./internal/engine/ > "$RAW"
go test -run NONE -bench 'FleetServer|RunnerAdaptive' -benchmem -benchtime 3x ./internal/runtime/ >> "$RAW"
go test -run NONE -bench 'ChainPlanning' -benchmem -benchtime 3x ./internal/core/ >> "$RAW"
cat "$RAW"

awk '
# Pass 1 (baseline JSON, one object per line as bench.sh writes it).
FNR == NR {
    if (match($0, /"name": "[^"]+"/)) {
        name = substr($0, RSTART + 9, RLENGTH - 10)
        if (match($0, /"ns_per_op": [0-9.e+]+/))
            base_ns[name] = substr($0, RSTART + 13, RLENGTH - 13)
        if (match($0, /"allocs_per_op": [0-9]+/))
            base_allocs[name] = substr($0, RSTART + 16, RLENGTH - 16)
    }
    next
}
# Pass 2 (fresh `go test -bench` output). Collapse -count repetitions
# to the per-name min before comparing. RunnerAdaptive is exempt from
# the absolute gate: its wall time is mostly calibrated simulated-link
# sleeps, which swing with the host load present at calibration — the
# adaptive/static ratio stanza below is its gate.
/^BenchmarkRunnerAdaptive/ { next }
/^Benchmark/ {
    if (!($1 in seen)) order[++cnt] = $1
    if (!($1 in seen) || $3 + 0 < min_ns[$1] + 0) {
        min_ns[$1] = $3
        for (i = 4; i <= NF; i++)
            if ($(i) == "allocs/op") min_allocs[$1] = $(i-1)
    }
    seen[$1] = 1
}
END {
    for (o = 1; o <= cnt; o++) {
        name = order[o]; ns = min_ns[name] + 0
        if (!(name in base_ns)) {
            printf "benchgate: %s has no baseline (new benchmark; refresh with scripts/bench.sh)\n", name
            continue
        }
        bn = base_ns[name] + 0
        if (bn >= 5e7) { # shorter runs are too noisy to time-gate
            # 1.25x: even with min-of-3 on both sides, the shared box
            # drifts between fast and slow epochs lasting minutes, and
            # ~1.17x swings on healthy code were observed across
            # epochs. Real kernel regressions cost well above 1.25x.
            ratio = ns / bn
            if (ratio > 1.25) {
                printf "benchgate: FAIL %s: %.0f ns/op vs baseline %.0f (%.2fx, > 1.25x)\n", name, ns, bn, ratio
                bad = 1
            } else if (ratio < 0.85) {
                printf "benchgate: %s improved to %.0f ns/op vs baseline %.0f (%.2fx); refresh BENCH_runtime.json\n", name, ns, bn, ratio
            } else {
                printf "benchgate: ok %s (%.2fx of baseline)\n", name, ratio
            }
        }
        # Allocs gate: exact for lean benches (a warm Forward at 5-8
        # allocs must not gain even one), 1% slack above 100 — the
        # concurrent server benches (FleetServer ~1030 allocs) jitter
        # by a handful with goroutine interleaving, while a real leak
        # scales with jobs and blows past 1%.
        if ((name in min_allocs) && (name in base_allocs)) {
            ba = base_allocs[name] + 0
            slack = ba > 100 ? ba * 0.01 : 0
            if (min_allocs[name] + 0 > ba + slack) {
                printf "benchgate: FAIL %s: %s allocs/op vs baseline %s\n", name, min_allocs[name], base_allocs[name]
                bad = 1
            }
        }
    }
    exit bad
}
' BENCH_runtime.json "$RAW"

# Fleet gate: cross-connection batching must beat (or at worst match)
# per-job solo dispatch on its home workload. The ratio is measured
# within one run on one host, so it holds on any machine speed —
# unlike the absolute ns/op gate above. Measured ~0.75x on the
# reference box; > 1.10x means the coalescer is losing outright.
awk '
/^BenchmarkFleetServer\/solo/    { for (i = 1; i <= NF; i++) if ($(i) == "ns/job") solo = $(i-1) }
/^BenchmarkFleetServer\/batched/ { for (i = 1; i <= NF; i++) if ($(i) == "ns/job") batched = $(i-1) }
END {
    if (solo == "" || batched == "") {
        print "benchgate: FAIL FleetServer ns/job missing from bench output"
        exit 1
    }
    r = batched / solo
    if (r > 1.10) {
        printf "benchgate: FAIL FleetServer batched %.0f ns/job vs solo %.0f (%.2fx > 1.10x)\n", batched, solo, r
        exit 1
    }
    printf "benchgate: ok FleetServer batched/solo = %.2fx\n", r
}
' "$RAW"

# Adaptive-overhead gate: on a healthy link the online estimator
# (per-upload sample fold + between-windows divergence check) must be
# free against the pipeline — no change point fires, so the adaptive
# runner does the same work as the static one plus bookkeeping.
# Within-run ratio, host-independent like the Fleet gate above.
awk '
/^BenchmarkRunnerAdaptive\/static/   { for (i = 1; i <= NF; i++) if ($(i) == "ns/job") static = $(i-1) }
/^BenchmarkRunnerAdaptive\/adaptive/ { for (i = 1; i <= NF; i++) if ($(i) == "ns/job") adaptive = $(i-1) }
END {
    if (static == "" || adaptive == "") {
        print "benchgate: FAIL RunnerAdaptive ns/job missing from bench output"
        exit 1
    }
    r = adaptive / static
    if (r > 1.15) {
        printf "benchgate: FAIL RunnerAdaptive adaptive %.0f ns/job vs static %.0f (%.2fx > 1.15x)\n", adaptive, static, r
        exit 1
    }
    printf "benchgate: ok RunnerAdaptive adaptive/static = %.2fx\n", r
}
' "$RAW"

# Chain-planning gate: the generic k-way planner on a 2-link chain must
# stay within a small constant of the specialized three-tier planner on
# the same instance — the generalization is only free if its tuple
# enumeration doesn't blow up the planning cost. Within-run ratio,
# host-independent. Measured ~0.5x on the reference box (the k-way
# candidate ranking evaluates fewer schedules than the pairwise Alg-2
# sweep); > 2.0x means the enumerator regressed.
awk '
/^BenchmarkChainPlanning\/threetier/ { three = $3 }
/^BenchmarkChainPlanning\/kway/      { kway = $3 }
END {
    if (three == "" || kway == "") {
        print "benchgate: FAIL ChainPlanning ns/op missing from bench output"
        exit 1
    }
    r = kway / three
    if (r > 2.0) {
        printf "benchgate: FAIL ChainPlanning kway %.0f ns/op vs threetier %.0f (%.2fx > 2.0x)\n", kway, three, r
        exit 1
    }
    printf "benchgate: ok ChainPlanning kway/threetier = %.2fx\n", r
}
' "$RAW"

# Microkernel gate: within one run, the FMA assembly tile must beat the
# streaming panel loop by a wide margin at every gated width — asm/panel
# ns ratio <= 0.9x at n >= 128 (measured ~0.11-0.14x on the reference
# box; see asmCrossoverBytes in gemm_asm_amd64.go). On hosts without
# AVX2+FMA (or under DNNJPS_NOASM) the asm legs don't run and the gate
# skips cleanly — the bit-identical fallback has nothing to prove here.
awk '
/^BenchmarkSgemmCrossover\/panel\/n=/ {
    split($1, p, "/"); sub(/-[0-9]+$/, "", p[3])
    if (!(p[3] in panel) || $3 + 0 < panel[p[3]] + 0) panel[p[3]] = $3
}
/^BenchmarkSgemmCrossover\/asm\/n=/ {
    split($1, p, "/"); sub(/-[0-9]+$/, "", p[3])
    if (!(p[3] in asm) || $3 + 0 < asm[p[3]] + 0) asm[p[3]] = $3
    seen = 1
}
END {
    if (!seen) {
        print "benchgate: SgemmCrossover asm legs absent (no AVX2+FMA); skipping microkernel gate"
        exit 0
    }
    for (n in asm) {
        width = n; sub(/^n=/, "", width)
        if (width + 0 < 128 || !(n in panel)) continue
        gated = 1
        r = asm[n] / panel[n]
        if (r > 0.9) {
            printf "benchgate: FAIL SgemmCrossover %s: asm %.0f ns/op vs panel %.0f (%.2fx > 0.9x)\n", n, asm[n], panel[n], r
            bad = 1
        } else {
            printf "benchgate: ok SgemmCrossover %s asm/panel = %.2fx\n", n, r
        }
    }
    if (!gated) {
        print "benchgate: FAIL SgemmCrossover asm legs present but no gated width (n >= 128) ran"
        exit 1
    }
    exit bad
}
' "$RAW"

# Batched-amortization gate: filling a batch must amortize packing and
# pricing across images — per-inference time at N=32 must be <= 0.6x of
# N=1 on both batched suffixes (measured ~0.13x on the dense head,
# ~0.45x on the conv suffix). Within-run ratio, host-independent.
awk '
/^BenchmarkBatchedForward\/N=(1|32)\// {
    split($1, p, "/"); sub(/-[0-9]+$/, "", p[3])
    for (i = 1; i <= NF; i++) if ($(i) == "ns/inference") {
        if (p[2] == "N=1") {
            if (!(p[3] in solo) || $(i-1) + 0 < solo[p[3]] + 0) solo[p[3]] = $(i-1)
        } else if (!(p[3] in batched) || $(i-1) + 0 < batched[p[3]] + 0) {
            batched[p[3]] = $(i-1)
        }
    }
}
END {
    for (tag in batched) {
        if (!(tag in solo)) continue
        gated = 1
        r = batched[tag] / solo[tag]
        if (r > 0.6) {
            printf "benchgate: FAIL BatchedForward %s: N=32 %.0f ns/inference vs N=1 %.0f (%.2fx > 0.6x)\n", tag, batched[tag], solo[tag], r
            bad = 1
        } else {
            printf "benchgate: ok BatchedForward %s N=32/N=1 = %.2fx\n", tag, r
        }
    }
    if (!gated) {
        print "benchgate: FAIL BatchedForward N=1/N=32 ns/inference pairs missing from bench output"
        exit 1
    }
    exit bad
}
' "$RAW"
