#!/usr/bin/env sh
# Bench regression gate: re-runs the long-running whole-model Forward
# benchmarks and compares them against the committed BENCH_runtime.json
# baseline. A benchmark that got >15% slower than its recorded ns/op
# fails the gate; one that got >15% faster prints a reminder to refresh
# the baseline (scripts/bench.sh) but does not fail. Only benchmarks
# with a baseline >= 50ms/op are timed-gated — short benchmarks are too
# noisy for a single-digit iteration count — but any allocs/op increase
# on a gated benchmark fails regardless (allocation counts are exact).
#
# BENCHGATE=off skips the gate (e.g. on loaded shared machines).
set -eu
cd "$(dirname "$0")/.."

if [ "${BENCHGATE:-on}" = "off" ]; then
    echo "benchgate: skipped (BENCHGATE=off)"
    exit 0
fi
if [ ! -f BENCH_runtime.json ]; then
    echo "benchgate: no BENCH_runtime.json baseline; run scripts/bench.sh" >&2
    exit 1
fi

RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

# Three measured iterations per benchmark: enough to average out
# scheduler noise on runs that take >= 50ms each, cheap enough to live
# inside the tier-1 loop.
go test -run NONE -bench 'Forward' -benchmem -benchtime 3x ./internal/engine/ | tee "$RAW"
go test -run NONE -bench 'FleetServer|RunnerAdaptive' -benchmem -benchtime 3x ./internal/runtime/ | tee -a "$RAW"
go test -run NONE -bench 'ChainPlanning' -benchmem -benchtime 3x ./internal/core/ | tee -a "$RAW"

awk '
# Pass 1 (baseline JSON, one object per line as bench.sh writes it).
FNR == NR {
    if (match($0, /"name": "[^"]+"/)) {
        name = substr($0, RSTART + 9, RLENGTH - 10)
        if (match($0, /"ns_per_op": [0-9.e+]+/))
            base_ns[name] = substr($0, RSTART + 13, RLENGTH - 13)
        if (match($0, /"allocs_per_op": [0-9]+/))
            base_allocs[name] = substr($0, RSTART + 16, RLENGTH - 16)
    }
    next
}
# Pass 2 (fresh `go test -bench` output). RunnerAdaptive is exempt
# from the absolute gate: its wall time is mostly calibrated
# simulated-link sleeps, which swing with the host load present at
# calibration — the adaptive/static ratio stanza below is its gate.
/^BenchmarkRunnerAdaptive/ { next }
/^Benchmark/ {
    name = $1; ns = $3
    allocs = ""
    for (i = 4; i <= NF; i++)
        if ($(i) == "allocs/op") allocs = $(i-1)
    if (!(name in base_ns)) {
        printf "benchgate: %s has no baseline (new benchmark; refresh with scripts/bench.sh)\n", name
        next
    }
    bn = base_ns[name] + 0
    if (bn < 5e7) next # too short to time-gate at 3 iterations
    ratio = ns / bn
    if (ratio > 1.15) {
        printf "benchgate: FAIL %s: %.0f ns/op vs baseline %.0f (%.2fx, > 1.15x)\n", name, ns, bn, ratio
        bad = 1
    } else if (ratio < 0.85) {
        printf "benchgate: %s improved to %.0f ns/op vs baseline %.0f (%.2fx); refresh BENCH_runtime.json\n", name, ns, bn, ratio
    } else {
        printf "benchgate: ok %s (%.2fx of baseline)\n", name, ratio
    }
    if (allocs != "" && (name in base_allocs) && allocs + 0 > base_allocs[name] + 0) {
        printf "benchgate: FAIL %s: %s allocs/op vs baseline %s\n", name, allocs, base_allocs[name]
        bad = 1
    }
}
END { exit bad }
' BENCH_runtime.json "$RAW"

# Fleet gate: cross-connection batching must beat (or at worst match)
# per-job solo dispatch on its home workload. The ratio is measured
# within one run on one host, so it holds on any machine speed —
# unlike the absolute ns/op gate above. Measured ~0.75x on the
# reference box; > 1.10x means the coalescer is losing outright.
awk '
/^BenchmarkFleetServer\/solo/    { for (i = 1; i <= NF; i++) if ($(i) == "ns/job") solo = $(i-1) }
/^BenchmarkFleetServer\/batched/ { for (i = 1; i <= NF; i++) if ($(i) == "ns/job") batched = $(i-1) }
END {
    if (solo == "" || batched == "") {
        print "benchgate: FAIL FleetServer ns/job missing from bench output"
        exit 1
    }
    r = batched / solo
    if (r > 1.10) {
        printf "benchgate: FAIL FleetServer batched %.0f ns/job vs solo %.0f (%.2fx > 1.10x)\n", batched, solo, r
        exit 1
    }
    printf "benchgate: ok FleetServer batched/solo = %.2fx\n", r
}
' "$RAW"

# Adaptive-overhead gate: on a healthy link the online estimator
# (per-upload sample fold + between-windows divergence check) must be
# free against the pipeline — no change point fires, so the adaptive
# runner does the same work as the static one plus bookkeeping.
# Within-run ratio, host-independent like the Fleet gate above.
awk '
/^BenchmarkRunnerAdaptive\/static/   { for (i = 1; i <= NF; i++) if ($(i) == "ns/job") static = $(i-1) }
/^BenchmarkRunnerAdaptive\/adaptive/ { for (i = 1; i <= NF; i++) if ($(i) == "ns/job") adaptive = $(i-1) }
END {
    if (static == "" || adaptive == "") {
        print "benchgate: FAIL RunnerAdaptive ns/job missing from bench output"
        exit 1
    }
    r = adaptive / static
    if (r > 1.15) {
        printf "benchgate: FAIL RunnerAdaptive adaptive %.0f ns/job vs static %.0f (%.2fx > 1.15x)\n", adaptive, static, r
        exit 1
    }
    printf "benchgate: ok RunnerAdaptive adaptive/static = %.2fx\n", r
}
' "$RAW"

# Chain-planning gate: the generic k-way planner on a 2-link chain must
# stay within a small constant of the specialized three-tier planner on
# the same instance — the generalization is only free if its tuple
# enumeration doesn't blow up the planning cost. Within-run ratio,
# host-independent. Measured ~0.5x on the reference box (the k-way
# candidate ranking evaluates fewer schedules than the pairwise Alg-2
# sweep); > 2.0x means the enumerator regressed.
awk '
/^BenchmarkChainPlanning\/threetier/ { three = $3 }
/^BenchmarkChainPlanning\/kway/      { kway = $3 }
END {
    if (three == "" || kway == "") {
        print "benchgate: FAIL ChainPlanning ns/op missing from bench output"
        exit 1
    }
    r = kway / three
    if (r > 2.0) {
        printf "benchgate: FAIL ChainPlanning kway %.0f ns/op vs threetier %.0f (%.2fx > 2.0x)\n", kway, three, r
        exit 1
    }
    printf "benchgate: ok ChainPlanning kway/threetier = %.2fx\n", r
}
' "$RAW"
