#!/usr/bin/env sh
# Benchmark sweep: runs the engine kernel benchmarks and the runtime
# pipeline benchmarks, then writes the parsed results as
# BENCH_runtime.json at the repo root. BENCHTIME overrides the
# per-benchmark budget (default 1x: one measured iteration each, so
# the sweep stays fast; use e.g. BENCHTIME=2s for stable numbers).
set -eu
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-1x}"
OUT="BENCH_runtime.json"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

echo "== go test -bench (engine x3, runtime, core; benchtime=$BENCHTIME)"
# The engine package runs -count=3 and the parser keeps the per-name
# minimum: on a shared box, scheduler/neighbor noise is strictly
# additive, so the min is the least-contended measurement and the only
# one stable enough for benchgate's absolute comparison. (Not piped
# through tee: a `cmd | tee` pipeline under plain sh reports tee's
# exit status and would mask a failed benchmark run.)
go test -run NONE -bench . -benchmem -benchtime "$BENCHTIME" -count=3 \
    ./internal/engine/ > "$RAW"
go test -run NONE -bench . -benchmem -benchtime "$BENCHTIME" \
    ./internal/runtime/ ./internal/core/ >> "$RAW"
cat "$RAW"

# Parse `BenchmarkName  N  ns/op [B/op allocs/op ...]` lines into JSON,
# collapsing repeated names (from -count) to the min-ns line.
awk '
/^Benchmark/ {
    if (!($1 in best)) order[++cnt] = $1
    if (!($1 in best) || $3 + 0 < bestns[$1] + 0) {
        bestns[$1] = $3
        best[$1] = $0
    }
}
END {
    print "["
    for (o = 1; o <= cnt; o++) {
        nf = split(best[order[o]], f, /[ \t]+/)
        name = f[1]; iters = f[2]; ns = f[3]
        bytes = "null"; allocs = "null"; mbs = "null"
        nsinf = "null"; nsjob = "null"; gflops = "null"
        for (i = 4; i <= nf; i++) {
            if (f[i] == "B/op") bytes = f[i-1]
            if (f[i] == "allocs/op") allocs = f[i-1]
            if (f[i] == "MB/s") mbs = f[i-1]
            if (f[i] == "ns/inference") nsinf = f[i-1]
            if (f[i] == "ns/job") nsjob = f[i-1]
            # Kernel benches report MAC/ns; one MAC is two flops, and
            # MAC/ns = G(MAC)/s, so gflops = 2x the metric.
            if (f[i] == "MAC/ns") gflops = sprintf("%.1f", 2 * f[i-1])
        }
        if (o > 1) printf ",\n"
        printf "  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"mb_per_s\": %s, \"gflops\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s, \"ns_per_inference\": %s, \"ns_per_job\": %s}", \
            name, iters, ns, mbs, gflops, bytes, allocs, nsinf, nsjob
    }
    print "\n]"
}
' "$RAW" > "$OUT"

echo "wrote $OUT"
