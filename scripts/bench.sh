#!/usr/bin/env sh
# Benchmark sweep: runs the engine kernel benchmarks and the runtime
# pipeline benchmarks, then writes the parsed results as
# BENCH_runtime.json at the repo root. BENCHTIME overrides the
# per-benchmark budget (default 1x: one measured iteration each, so
# the sweep stays fast; use e.g. BENCHTIME=2s for stable numbers).
set -eu
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-1x}"
OUT="BENCH_runtime.json"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

echo "== go test -bench (engine, runtime, core; benchtime=$BENCHTIME)"
go test -run NONE -bench . -benchmem -benchtime "$BENCHTIME" \
    ./internal/engine/ ./internal/runtime/ ./internal/core/ | tee "$RAW"

# Parse `BenchmarkName  N  ns/op [B/op allocs/op ...]` lines into JSON.
awk '
BEGIN { print "[" }
/^Benchmark/ {
    name = $1; iters = $2; ns = $3
    bytes = "null"; allocs = "null"; mbs = "null"
    nsinf = "null"; nsjob = "null"
    for (i = 4; i <= NF; i++) {
        if ($(i) == "B/op") bytes = $(i-1)
        if ($(i) == "allocs/op") allocs = $(i-1)
        if ($(i) == "MB/s") mbs = $(i-1)
        if ($(i) == "ns/inference") nsinf = $(i-1)
        if ($(i) == "ns/job") nsjob = $(i-1)
    }
    if (n++) printf ",\n"
    printf "  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"mb_per_s\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s, \"ns_per_inference\": %s, \"ns_per_job\": %s}", \
        name, iters, ns, mbs, bytes, allocs, nsinf, nsjob
}
END { print "\n]" }
' "$RAW" > "$OUT"

echo "wrote $OUT"
