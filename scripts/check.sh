#!/usr/bin/env sh
# Tier-1 verify loop: vet, build, full test suite, then the race
# detector over the packages with goroutine-parallel hot paths (the
# engine's SGEMM/im2col kernels and the flow-shop scheduler).
set -eu
cd "$(dirname "$0")/.."

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test"
go test ./...

echo "== go test -race (engine, flowshop)"
go test -race ./internal/engine/... ./internal/flowshop/...

echo "== go test -race -count=2 (runtime pipeline)"
go test -race -count=2 ./internal/runtime/...

echo "== benchmarks compile and run once"
go test -run NONE -bench . -benchtime 1x ./... > /dev/null

echo "OK"
