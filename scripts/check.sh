#!/usr/bin/env sh
# Tier-1 verify loop: vet, build, full test suite, then the race
# detector over the packages with goroutine-parallel hot paths (the
# engine's SGEMM/im2col kernels and the flow-shop scheduler).
set -eu
cd "$(dirname "$0")/.."

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test"
go test ./...

echo "== go test -race (engine, flowshop)"
go test -race ./internal/engine/... ./internal/flowshop/...

echo "== go test -race -count=2 (runtime pipeline)"
go test -race -count=2 ./internal/runtime/...

echo "== fuzz smoke (10s per target)"
# Each wire decoder and the fault injector get a short coverage-guided
# run on top of the committed seed corpora in testdata/fuzz/. A crash
# here reproduces with: go test -run 'Fuzz<T>/<file>' <pkg>
for target in FuzzReadTensor FuzzHandleConn FuzzReadInferRequest FuzzReadInferReply; do
    go test -run NONE -fuzz "^${target}\$" -fuzztime 10s ./internal/runtime/ > /dev/null
done
go test -run NONE -fuzz '^FuzzInjector$' -fuzztime 10s ./internal/netsim/ > /dev/null

echo "== benchmarks compile and run once"
go test -run NONE -bench . -benchtime 1x ./... > /dev/null

echo "OK"
