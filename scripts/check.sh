#!/usr/bin/env sh
# Tier-1 verify loop: vet, build, full test suite, then the race
# detector over the packages with goroutine-parallel hot paths (the
# engine's SGEMM/im2col kernels and the flow-shop scheduler).
set -eu
cd "$(dirname "$0")/.."

echo "== go vet"
go vet ./...

# Optional analyzers: run when installed, skip cleanly when not (the CI
# image bakes in only the go toolchain; go vet above always runs).
if command -v staticcheck > /dev/null 2>&1; then
    echo "== staticcheck"
    staticcheck ./...
else
    echo "== staticcheck (not installed, skipped)"
fi
if command -v govulncheck > /dev/null 2>&1; then
    echo "== govulncheck"
    govulncheck ./...
else
    echo "== govulncheck (not installed, skipped)"
fi

echo "== go build"
go build ./...

echo "== go build (GOARCH=arm64 cross-compile)"
# The register-tile microkernel is goarch-gated (gemm_tile_*.go) and
# the NEON assembly kernel (gemm_neon_arm64.s) only assembles for
# arm64; a cross-build catches breakage in both without arm64 hardware.
GOOS=linux GOARCH=arm64 go build ./...

echo "== go build/test -tags noasm (pure-Go fallback must not rot)"
# The noasm build is the contract for non-AVX2 hosts: bit-identical to
# the pre-assembly panel path (see noasm_test.go). Engine tests carry
# the parity suite; the full build catches tag skew anywhere else.
go build -tags noasm ./...
go test -tags noasm ./internal/engine/

echo "== go test"
go test ./...

echo "== go test -race (engine, flowshop)"
# On AVX2 hosts this leg drives the assembly kernels too: the parity
# tests force KernelAsm at workers>1, racing the packed-panel fan-out.
go test -race ./internal/engine/... ./internal/flowshop/...

echo "== go test -race -count=2 (runtime pipeline)"
go test -race -count=2 ./internal/runtime/...

echo "== go test -race (estimator)"
go test -race ./internal/estimator/...

echo "== adaptive replanning deflake (3x, timing-sensitive live runs)"
# The adaptive tests drive real loopback connections through the
# scripted-degradation injector; three back-to-back runs catch
# scheduler-dependent flakiness before it lands. The regression corpus
# replay (internal/regression) is pure arithmetic and runs under the
# plain `go test ./...` above.
go test -run Adapt -count=3 ./internal/runtime/... ./internal/estimator/... ./internal/experiments/...

echo "== heuristic gap vs offline-optimal brute force"
# The documented-bound legs: the m-machine flow-shop scheduler against
# exhaustive sequencing (bounds 1.06x/1.35x, see DESIGN.md §12) and the
# k-way chain planner against the partition brute force (tripwire 50%).
go test -run 'TestScheduleMGapVsBruteForce' -count=1 ./internal/flowshop/
go test -run 'TestChainGapExperiment' -count=1 ./internal/experiments/

echo "== fuzz smoke (10s per target)"
# Each wire decoder and the fault injector get a short coverage-guided
# run on top of the committed seed corpora in testdata/fuzz/. A crash
# here reproduces with: go test -run 'Fuzz<T>/<file>' <pkg>
fuzz_smoke() {
    target=$1
    pkg=$2
    if ! go test -run NONE -fuzz "^${target}\$" -fuzztime 10s "$pkg" > /dev/null; then
        echo "FUZZ FAILURE: ${target} in ${pkg} (reproduce: go test -run '${target}/<file>' ${pkg})" >&2
        exit 1
    fi
}
for target in FuzzReadTensor FuzzHandleConn FuzzReadInferRequest FuzzReadInferReply; do
    fuzz_smoke "$target" ./internal/runtime/
done
fuzz_smoke FuzzInjector ./internal/netsim/
fuzz_smoke FuzzEstimator ./internal/estimator/
fuzz_smoke FuzzSgemmAsmVsScalar ./internal/engine/

echo "== multi-client e2e smoke (jpsserve, 4 tenants, SIGTERM drain)"
SMOKE_LOG="$(mktemp)"
SMOKE_BIN="$(mktemp)"
SMOKE_PID=""
cleanup_smoke() {
    [ -n "$SMOKE_PID" ] && kill "$SMOKE_PID" 2> /dev/null || true
    rm -f "$SMOKE_LOG" "$SMOKE_BIN"
}
trap cleanup_smoke EXIT
go build -o "$SMOKE_BIN" ./cmd/jpsserve
"$SMOKE_BIN" -model squeezenet -addr 127.0.0.1:0 -batch-window 2ms \
    -tenants gold:2,bronze:1 -shed-watermark 64 > "$SMOKE_LOG" 2>&1 &
SMOKE_PID=$!
ADDR=""
for _ in $(seq 1 100); do
    ADDR="$(awk '/^serving .* on /{print $NF}' "$SMOKE_LOG")"
    [ -n "$ADDR" ] && break
    sleep 0.2
done
if [ -z "$ADDR" ]; then
    echo "e2e smoke: server never came up:" >&2
    cat "$SMOKE_LOG" >&2
    exit 1
fi
go run scripts/e2e_client.go -addr "$ADDR" -model squeezenet -clients 4 -jobs 4
kill -TERM "$SMOKE_PID"
if ! wait "$SMOKE_PID"; then
    echo "e2e smoke: server did not exit cleanly on SIGTERM:" >&2
    cat "$SMOKE_LOG" >&2
    exit 1
fi
SMOKE_PID=""
grep -q "drained" "$SMOKE_LOG" || {
    echo "e2e smoke: no drain message in server log:" >&2
    cat "$SMOKE_LOG" >&2
    exit 1
}

echo "== chain e2e smoke (two chained jpsserve stages, next-hop forwarding)"
# A live two-hop chain: a terminal stage plus a forwarding stage with
# -next-hop pointing at it. The client offloads at cut 0 (before the
# handoff at unit 3), so every job exercises the forwarder's
# mid-segment + forward path, then again at the handoff cut itself
# (pure relay downstream).
TERM_LOG="$(mktemp)"
FWD_LOG="$(mktemp)"
TERM_PID=""
FWD_PID=""
cleanup_chain() {
    [ -n "$TERM_PID" ] && kill "$TERM_PID" 2> /dev/null || true
    [ -n "$FWD_PID" ] && kill "$FWD_PID" 2> /dev/null || true
    rm -f "$TERM_LOG" "$FWD_LOG"
    cleanup_smoke
}
trap cleanup_chain EXIT
"$SMOKE_BIN" -model squeezenet -addr 127.0.0.1:0 > "$TERM_LOG" 2>&1 &
TERM_PID=$!
TERM_ADDR=""
for _ in $(seq 1 100); do
    TERM_ADDR="$(awk '/^serving .* on /{print $NF}' "$TERM_LOG")"
    [ -n "$TERM_ADDR" ] && break
    sleep 0.2
done
if [ -z "$TERM_ADDR" ]; then
    echo "chain smoke: terminal stage never came up:" >&2
    cat "$TERM_LOG" >&2
    exit 1
fi
"$SMOKE_BIN" -model squeezenet -addr 127.0.0.1:0 \
    -next-hop "$TERM_ADDR" -next-cut 3 > "$FWD_LOG" 2>&1 &
FWD_PID=$!
FWD_ADDR=""
for _ in $(seq 1 100); do
    FWD_ADDR="$(awk '/^serving .* on /{print $NF}' "$FWD_LOG")"
    [ -n "$FWD_ADDR" ] && break
    sleep 0.2
done
if [ -z "$FWD_ADDR" ]; then
    echo "chain smoke: forwarding stage never came up:" >&2
    cat "$FWD_LOG" >&2
    exit 1
fi
go run scripts/e2e_client.go -addr "$FWD_ADDR" -model squeezenet -clients 2 -jobs 2 -cut 0
go run scripts/e2e_client.go -addr "$FWD_ADDR" -model squeezenet -clients 1 -jobs 2 -cut 3
kill -TERM "$FWD_PID"
wait "$FWD_PID" || {
    echo "chain smoke: forwarder did not exit cleanly:" >&2
    cat "$FWD_LOG" >&2
    exit 1
}
FWD_PID=""
kill -TERM "$TERM_PID"
wait "$TERM_PID" || {
    echo "chain smoke: terminal did not exit cleanly:" >&2
    cat "$TERM_LOG" >&2
    exit 1
}
TERM_PID=""

echo "== benchmarks compile and run once"
go test -run NONE -bench . -benchtime 1x ./... > /dev/null

echo "== bench regression gate (BENCHGATE=off to skip)"
sh scripts/benchgate.sh

echo "OK"
