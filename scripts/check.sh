#!/usr/bin/env sh
# Tier-1 verify loop: vet, build, full test suite, then the race
# detector over the packages with goroutine-parallel hot paths (the
# engine's SGEMM/im2col kernels and the flow-shop scheduler).
set -eu
cd "$(dirname "$0")/.."

echo "== go vet"
go vet ./...

# Optional analyzers: run when installed, skip cleanly when not (the CI
# image bakes in only the go toolchain; go vet above always runs).
if command -v staticcheck > /dev/null 2>&1; then
    echo "== staticcheck"
    staticcheck ./...
else
    echo "== staticcheck (not installed, skipped)"
fi
if command -v govulncheck > /dev/null 2>&1; then
    echo "== govulncheck"
    govulncheck ./...
else
    echo "== govulncheck (not installed, skipped)"
fi

echo "== go build"
go build ./...

echo "== go build (GOARCH=arm64 cross-compile)"
# The register-tile microkernel is goarch-gated (gemm_tile_*.go); a
# cross-build catches arm64-only breakage without arm64 hardware.
GOOS=linux GOARCH=arm64 go build ./...

echo "== go test"
go test ./...

echo "== go test -race (engine, flowshop)"
go test -race ./internal/engine/... ./internal/flowshop/...

echo "== go test -race -count=2 (runtime pipeline)"
go test -race -count=2 ./internal/runtime/...

echo "== fuzz smoke (10s per target)"
# Each wire decoder and the fault injector get a short coverage-guided
# run on top of the committed seed corpora in testdata/fuzz/. A crash
# here reproduces with: go test -run 'Fuzz<T>/<file>' <pkg>
fuzz_smoke() {
    target=$1
    pkg=$2
    if ! go test -run NONE -fuzz "^${target}\$" -fuzztime 10s "$pkg" > /dev/null; then
        echo "FUZZ FAILURE: ${target} in ${pkg} (reproduce: go test -run '${target}/<file>' ${pkg})" >&2
        exit 1
    fi
}
for target in FuzzReadTensor FuzzHandleConn FuzzReadInferRequest FuzzReadInferReply; do
    fuzz_smoke "$target" ./internal/runtime/
done
fuzz_smoke FuzzInjector ./internal/netsim/

echo "== benchmarks compile and run once"
go test -run NONE -bench . -benchtime 1x ./... > /dev/null

echo "== bench regression gate (BENCHGATE=off to skip)"
sh scripts/benchgate.sh

echo "OK"
