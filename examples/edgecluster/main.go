// Edge-cluster deployment study: a factory floor runs quality-control
// cameras against ResNet-18 with an on-premises edge box between the
// devices and the cloud. The wireless hop to the edge is fast; the WAN
// to the cloud is thin. The example compares two-tier (mobile→cloud)
// against three-tier (mobile→edge→cloud) planning across WAN speeds,
// showing when the edge box pays for itself.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"dnnjps/internal/core"
	"dnnjps/internal/models"
	"dnnjps/internal/netsim"
	"dnnjps/internal/profile"
	"dnnjps/internal/report"
	"dnnjps/internal/tensor"
)

func main() {
	var (
		model = flag.String("model", "resnet18", "model name: "+fmt.Sprint(models.Names()))
		n     = flag.Int("n", 24, "frames per planning batch")
	)
	flag.Parse()

	g, err := models.Build(*model)
	if err != nil {
		log.Fatal(err)
	}
	pi, gpu := profile.RaspberryPi4(), profile.CloudGPU()

	t := report.NewTable(
		fmt.Sprintf("Edge cluster planning for %s (%d frames, Wi-Fi to edge, WAN to cloud)", *model, *n),
		"WAN Mb/s", "Two-tier (ms)", "Three-tier (ms)", "Edge gain %", "Mobile cut", "Edge cut")
	for _, wan := range []float64{2, 5, 10, 20, 50, 100} {
		env := core.ThreeTierEnv{
			Mobile:   pi,
			Edge:     gpu.Scaled(0.25),
			Cloud:    gpu,
			Uplink:   netsim.WiFi,
			Backhaul: netsim.Channel{Name: "wan", UplinkMbps: wan, SetupMs: 15},
			DType:    tensor.Float32,
		}
		three, err := core.JPSThreeTier(g, env, *n)
		if err != nil {
			log.Fatal(err)
		}
		two, err := core.TwoTierAsThreeTier(g, env, *n)
		if err != nil {
			log.Fatal(err)
		}
		gain := (two.Makespan - three.Makespan) / two.Makespan * 100
		if gain < 0 {
			gain = 0
		}
		t.AddRow(wan, two.Makespan, three.Makespan,
			fmt.Sprintf("%.1f", gain), three.CutsLow[0], three.CutsHigh[0])
	}
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nReading: gains concentrate where the WAN is the bottleneck — the edge")
	fmt.Println("absorbs the heavy middle layers so only a small tensor crosses the thin hop.")
}
