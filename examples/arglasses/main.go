// AR-glasses demo: the complete system, end to end and for real. A
// cloud server and a mobile client run in one process over a loopback
// TCP connection shaped to Wi-Fi bandwidth (time-compressed 50x so the
// demo finishes quickly). The client calibrates the communication
// regression the way the paper does, plans a JPS schedule for a burst
// of camera frames, executes it with the real inference engine —
// actual float32 forward passes, actual tensor uploads — and compares
// the measured makespan with the planner's analytic prediction.
package main

import (
	"fmt"
	"log"
	"net"

	"dnnjps/internal/core"
	"dnnjps/internal/dag"
	"dnnjps/internal/engine"
	"dnnjps/internal/netsim"
	"dnnjps/internal/nn"
	"dnnjps/internal/profile"
	"dnnjps/internal/runtime"
	"dnnjps/internal/tensor"
)

// glassesNet is a compact CNN sized so the naive engine runs a frame
// in tens of milliseconds — the demo is about the system, not about
// raw conv throughput.
func glassesNet() *dag.Graph {
	g := dag.New("glassesnet")
	in := g.Add(&nn.Input{LayerName: "input", Shape: tensor.NewCHW(3, 64, 64)})
	c1 := g.Add(&nn.Conv2D{LayerName: "conv1/conv", OutC: 16, KH: 3, KW: 3, Stride: 1, Pad: 1, Bias: true}, in)
	r1 := g.Add(nn.NewActivation("conv1/relu", nn.ReLU), c1)
	p1 := g.Add(nn.NewMaxPool2D("conv1/pool", 2, 2, 0), r1)
	c2 := g.Add(&nn.Conv2D{LayerName: "conv2/conv", OutC: 32, KH: 3, KW: 3, Stride: 1, Pad: 1, Bias: true}, p1)
	r2 := g.Add(nn.NewActivation("conv2/relu", nn.ReLU), c2)
	p2 := g.Add(nn.NewMaxPool2D("conv2/pool", 2, 2, 0), r2)
	c3 := g.Add(&nn.Conv2D{LayerName: "conv3/conv", OutC: 64, KH: 3, KW: 3, Stride: 1, Pad: 1, Bias: true}, p2)
	r3 := g.Add(nn.NewActivation("conv3/relu", nn.ReLU), c3)
	gp := g.Add(&nn.GlobalAvgPool2D{LayerName: "head/gap"}, r3)
	fc := g.Add(&nn.Dense{LayerName: "head/fc", Out: 40, Bias: true}, gp)
	g.Add(nn.NewSoftmax("head/softmax"), fc)
	return g.MustFinalize()
}

func main() {
	const (
		seed      = 42
		frames    = 6
		timeScale = 0.02 // 50x faster than real Wi-Fi
	)
	g := glassesNet()
	ch := netsim.WiFi

	// Cloud side.
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer lis.Close()
	go func() { _ = runtime.NewServer(engine.Load(g, seed)).Serve(lis) }()

	// Mobile side.
	conn, err := net.Dial("tcp", lis.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()
	client := runtime.NewClient(conn, engine.Load(g, seed), ch, timeScale)

	// Calibrate the communication model like the paper's scheduler:
	// ping payloads, fit t = w0 + w1*s.
	fit, err := client.CalibrateComm([]int{20_000, 60_000, 120_000, 240_000}, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("calibrated comm model (scaled): %v\n", fit)

	// Plan a burst of frames.
	curve := profile.BuildCurve(g, profile.RaspberryPi4(), profile.CloudGPU(), ch, tensor.Float32)
	plan, err := core.JPS(curve, frames)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nJPS plan for %d frames at %s (analytic, device-model time):\n", frames, ch)
	fmt.Printf("  makespan %.1f ms, cuts:", plan.Makespan)
	for job, cut := range plan.Cuts {
		fmt.Printf(" job%d->%s", job, curve.Labels[cut])
	}
	fmt.Println()

	// Execute for real: render synthetic frames, run the pipeline.
	inputs := make([]*tensor.Tensor, frames)
	for i := range inputs {
		inputs[i] = frame(i)
	}
	rep, err := client.RunPlan(plan, inputs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nexecuted %d frames over shaped loopback TCP (%.0fx compressed):\n",
		len(rep.Results), 1/timeScale)
	for _, r := range rep.Results {
		fmt.Printf("  frame %d: class %2d  mobile %6.2f ms  comm %6.2f ms  cloud %5.2f ms\n",
			r.JobID, r.Class, r.MobileMs, r.CommMs, r.CloudMs)
	}
	fmt.Printf("measured wall makespan: %.1f ms\n", rep.MakespanMs)

	// Cross-check classes against pure local inference.
	local := engine.Load(g, seed)
	for _, r := range rep.Results {
		want, err := local.Forward(frame(r.JobID))
		if err != nil {
			log.Fatal(err)
		}
		if r.Class != engine.Argmax(want) {
			log.Fatalf("frame %d: offloaded class %d != local class %d",
				r.JobID, r.Class, engine.Argmax(want))
		}
	}
	fmt.Println("all offloaded classifications match local inference ✔")
}

// frame renders a deterministic synthetic camera frame.
func frame(i int) *tensor.Tensor {
	t := tensor.New(tensor.NewCHW(3, 64, 64))
	for j := range t.Data {
		t.Data[j] = float32((j*(i+3))%251)/251 - 0.5
	}
	return t
}
