// Bandwidth planner: for a chosen model, sweep the uplink bandwidth
// (Fig. 13) and report where joint partition+scheduling actually pays
// off — the "benefit range" an operator would use to decide whether
// offloading is worth enabling on a given network.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"dnnjps/internal/experiments"
	"dnnjps/internal/models"
	"dnnjps/internal/report"
)

func main() {
	model := flag.String("model", "mobilenetv2", "model name: "+fmt.Sprint(models.Names()))
	n := flag.Int("n", 50, "jobs per batch")
	flag.Parse()

	env := experiments.DefaultEnv()
	env.NJobs = *n
	bands := []float64{1, 2, 3, 5, 8, 12, 18.88, 25, 35, 50, 65, 80}

	rows, err := experiments.Fig13(env, *model, bands)
	if err != nil {
		log.Fatal(err)
	}
	t := report.NewTable(fmt.Sprintf("Offloading payoff for %s (%d jobs/batch, avg ms/job)", *model, *n),
		"Mbps", "LO", "CO", "PO", "JPS", "Best")
	for _, r := range rows {
		best := "JPS"
		switch {
		case r.LOMs < r.JPSMs*0.999:
			best = "LO"
		case r.COMs < r.JPSMs*0.999:
			best = "CO"
		}
		t.AddRow(r.Mbps, r.LOMs, r.COMs, r.POMs, r.JPSMs, best)
	}
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	if lo, hi, ok := experiments.BenefitRange(rows, 0.01); ok {
		fmt.Printf("\nJPS beats both local-only and cloud-only from %.0f to %.0f Mb/s", lo, hi)
		fmt.Println(" — enable offloading inside this window.")
	} else {
		fmt.Println("\nno bandwidth in the sweep where joint offloading wins; run locally.")
	}
}
