// Self-driving workload (the paper's motivating example): a car with
// six cameras produces six simultaneous frames per sensing round, all
// classified by the same ResNet-18. The example plans each round
// jointly, validates the analytic makespan against the discrete-event
// simulator's three-stage pipeline, and reports per-camera completion
// times and resource utilization across cellular conditions.
package main

import (
	"fmt"
	"log"
	"math"
	"os"

	"dnnjps/internal/core"
	"dnnjps/internal/models"
	"dnnjps/internal/netsim"
	"dnnjps/internal/profile"
	"dnnjps/internal/report"
	"dnnjps/internal/sim"
	"dnnjps/internal/tensor"
)

const cameras = 6

func main() {
	g := models.MustBuild("resnet18")
	mobile, cloud := profile.RaspberryPi4(), profile.CloudGPU()

	t := report.NewTable("Per-round makespan for 6 camera frames (ResNet-18)",
		"Network", "JPS (ms)", "LO (ms)", "PO (ms)", "Sim (ms)", "CPU util", "Uplink util", "FPS/cam")
	for _, ch := range netsim.Presets() {
		curve := profile.BuildCurve(g, mobile, cloud, ch, tensor.Float32)
		jps, err := core.JPS(curve, cameras)
		if err != nil {
			log.Fatal(err)
		}
		lo, _ := core.LO(curve, cameras)
		po, _ := core.PO(curve, cameras)

		// Validate against the 3-stage discrete-event simulation.
		res, err := sim.Run(sim.FromPlan(jps))
		if err != nil {
			log.Fatal(err)
		}
		if math.Abs(res.Makespan-jps.Makespan) > curve.CloudMs[0]+1 {
			log.Fatalf("simulation diverged: %.1f vs %.1f", res.Makespan, jps.Makespan)
		}
		t.AddRow(ch.Name, jps.Makespan, lo.Makespan, po.Makespan, res.Makespan,
			fmt.Sprintf("%.0f%%", 100*res.Utilization(sim.ResMobile)),
			fmt.Sprintf("%.0f%%", 100*res.Utilization(sim.ResUplink)),
			fmt.Sprintf("%.2f", 1000/res.Makespan))
	}
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Show one round's per-camera completion times at 4G.
	curve := profile.BuildCurve(g, mobile, cloud, netsim.FourG, tensor.Float32)
	jps, _ := core.JPS(curve, cameras)
	res, _ := sim.Run(sim.FromPlan(jps))
	fmt.Println("\nPer-camera completion at 4G (frames all captured at t=0):")
	for cam := 0; cam < cameras; cam++ {
		fmt.Printf("  camera %d: cut after %-22q done at %7.1f ms\n",
			cam, curve.Labels[jps.Cuts[cam]], res.Completions[cam])
	}
}
