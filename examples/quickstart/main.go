// Quickstart: profile a DNN, jointly plan partition + schedule for a
// batch of inference jobs, and compare against the baselines — the
// whole library in ~60 lines.
package main

import (
	"fmt"
	"log"
	"os"

	"dnnjps/internal/core"
	"dnnjps/internal/models"
	"dnnjps/internal/netsim"
	"dnnjps/internal/profile"
	"dnnjps/internal/report"
	"dnnjps/internal/tensor"
)

func main() {
	// 1. Build a model from the zoo (AlexNet, the paper's running
	// example) and profile it into a cut curve: f(l) = cumulative
	// mobile time, g(l) = upload time of the tensor crossing cut l.
	g := models.MustBuild("alexnet")
	mobile, cloud := profile.RaspberryPi4(), profile.CloudGPU()
	curve := profile.BuildCurve(g, mobile, cloud, netsim.FourG, tensor.Float32)
	fmt.Printf("%s: %.2f GFLOPs, local-only %.0f ms/job, cloud-only %.0f ms/job\n\n",
		g.Name(), g.TotalFLOPs()/1e9, curve.TotalMobileMs(), curve.CloudOnlyMs())

	// 2. Jointly plan partition and schedule for 8 simultaneous jobs
	// (Algorithm 2 binary search + Theorem 5.3 mix + Johnson's rule).
	const n = 8
	plan, err := core.JPS(curve, n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("JPS: makespan %.0f ms for %d jobs (%.0f ms/job average)\n",
		plan.Makespan, n, plan.AvgMs())
	for i, j := range plan.Sequence {
		fmt.Printf("  slot %d: job %d cut after %q (compute %.0f ms, upload %.0f ms)\n",
			i, j.ID, curve.Labels[plan.Cuts[j.ID]], j.A, j.B)
	}

	// 3. Compare with cloud-only, local-only and partition-only plans.
	t := report.NewTable("", "Scheme", "Makespan (ms)", "Speedup vs scheme")
	for _, fn := range []func(*profile.Curve, int) (*core.Plan, error){core.CO, core.LO, core.PO} {
		p, err := fn(curve, n)
		if err != nil {
			log.Fatal(err)
		}
		t.AddRow(p.Method, p.Makespan, fmt.Sprintf("%.2fx", p.Makespan/plan.Makespan))
	}
	fmt.Println()
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
