// Package netsim models the wireless uplink between the mobile device
// and the cloud. The analytic side mirrors the paper's regression
// model t = w0 + w1·(s/b): a per-message channel setup latency plus a
// bandwidth-proportional transfer term (§6.1). The runtime side
// provides a token-bucket shaped net.Conn that plays the role of the
// paper's wondershaper-limited Wi-Fi link.
package netsim

import "fmt"

// Channel describes an uplink: name, sustained uplink bandwidth, and
// the per-message setup latency w0 (connection establishment, radio
// wake-up, protocol overhead). DownlinkMbps, when positive, models the
// reply direction as well; zero leaves the downlink unshaped and
// unpriced — the historical assumption that reply frames are free,
// which holds for broadband but biases planning toward the cloud on
// symmetric low-bandwidth channels (the Fig. 13 low-band region).
type Channel struct {
	Name         string
	UplinkMbps   float64
	DownlinkMbps float64
	SetupMs      float64
}

// WithDownlink returns a copy of the channel with the reply direction
// modeled at the given bandwidth (<= 0 disables downlink modeling).
func (c Channel) WithDownlink(mbps float64) Channel {
	c.DownlinkMbps = mbps
	return c
}

// The paper's three reference bandwidths (from Hu et al. [7]):
// 3G = 1.1 Mb/s, 4G = 5.85 Mb/s, Wi-Fi = 18.88 Mb/s. Setup latencies
// are typical RTT-scale values for each radio technology.
var (
	ThreeG = Channel{Name: "3G", UplinkMbps: 1.1, SetupMs: 60}
	FourG  = Channel{Name: "4G", UplinkMbps: 5.85, SetupMs: 25}
	WiFi   = Channel{Name: "Wi-Fi", UplinkMbps: 18.88, SetupMs: 8}
)

// Presets returns the three paper channels in ascending bandwidth.
func Presets() []Channel { return []Channel{ThreeG, FourG, WiFi} }

// At builds a synthetic channel with the given uplink bandwidth, used
// by the Fig. 13 bandwidth sweep. Setup latency shrinks with bandwidth
// the way the presets do, clamped to [5ms, 70ms].
func At(mbps float64) Channel {
	if mbps <= 0 {
		panic(fmt.Sprintf("netsim: non-positive bandwidth %g", mbps))
	}
	setup := 70 / mbps * 1.1 // anchored so 1.1 Mb/s -> ~70ms
	if setup > 70 {
		setup = 70
	}
	if setup < 5 {
		setup = 5
	}
	return Channel{Name: fmt.Sprintf("%.2fMbps", mbps), UplinkMbps: mbps, SetupMs: setup}
}

// TxMs returns the modeled time in milliseconds to upload a payload of
// the given size: w0 + bits/bandwidth. A zero-byte payload costs
// nothing — no message is sent (the "cut after the last layer" case
// where everything runs locally).
func (c Channel) TxMs(bytes int) float64 {
	if bytes <= 0 {
		return 0
	}
	return c.SetupMs + float64(bytes)*8/(c.UplinkMbps*1e6)*1000
}

// RxMs returns the modeled time in milliseconds to download a reply of
// the given size, 0 when the downlink is unmodeled or nothing crosses
// it. No setup term: the reply rides the connection the request already
// paid to establish.
func (c Channel) RxMs(bytes int) float64 {
	if bytes <= 0 || c.DownlinkMbps <= 0 {
		return 0
	}
	return float64(bytes) * 8 / (c.DownlinkMbps * 1e6) * 1000
}

// BytesPerSec returns the channel's sustained uplink throughput.
func (c Channel) BytesPerSec() float64 { return c.UplinkMbps * 1e6 / 8 }

// DownBytesPerSec returns the downlink throughput, 0 when unmodeled.
func (c Channel) DownBytesPerSec() float64 {
	if c.DownlinkMbps <= 0 {
		return 0
	}
	return c.DownlinkMbps * 1e6 / 8
}

func (c Channel) String() string {
	return fmt.Sprintf("%s (%.2f Mb/s, setup %.0fms)", c.Name, c.UplinkMbps, c.SetupMs)
}
