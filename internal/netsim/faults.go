package netsim

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// FaultSpec configures deterministic fault injection for one direction
// of a connection (uplink = the injected side's writes, downlink = its
// reads). Probabilities are per I/O operation — one Write call is one
// "frame" at this layer, so a dropped frame desynchronizes the byte
// stream exactly the way a lost segment without retransmission would,
// and the peer sees garbage or a stall rather than a tidy error.
type FaultSpec struct {
	// DropProb silently discards the operation's bytes: the Write
	// claims success (or the Read retries on the next frame), but
	// nothing crosses the link.
	DropProb float64
	// StallProb freezes the operation for StallMs of channel time
	// before it proceeds — a radio fade or a retransmission burst.
	StallProb float64
	StallMs   float64
	// DisconnectProb tears the connection down mid-operation; the
	// underlying conn is closed and the op returns an error.
	DisconnectProb float64
	// DisconnectAfterBytes, when > 0, tears the connection down once
	// this many bytes have passed in this direction — a scripted
	// mid-stream kill for reproducible tests.
	DisconnectAfterBytes int64
	// Degrade scripts bandwidth decay over channel time: from step
	// AfterMs on, throughput in this direction is capped at Mbps by
	// extra pacing. Steps must be sorted by AfterMs; Mbps <= 0 means
	// uncapped. When the surrounding shaper's nominal rate is declared
	// with WithNominal, the injector charges only the difference
	// between the cap and the nominal pacing, so the capped rate — not
	// the series composition of the two sleeps — is what the wire
	// delivers.
	Degrade []DegradeStep
}

// DegradeStep is one point of a scripted bandwidth profile.
type DegradeStep struct {
	AfterMs float64 // channel-time offset from connection creation
	Mbps    float64 // throughput cap from this point on
}

// active reports whether the spec can inject anything at all.
func (s FaultSpec) active() bool {
	return s.DropProb > 0 || s.StallProb > 0 || s.DisconnectProb > 0 ||
		s.DisconnectAfterBytes > 0 || len(s.Degrade) > 0
}

// capAt returns the bandwidth cap in force at the given channel time
// (0 = uncapped).
func (s FaultSpec) capAt(elapsedMs float64) float64 {
	rate := 0.0
	for _, st := range s.Degrade {
		if elapsedMs >= st.AfterMs {
			rate = st.Mbps
		}
	}
	if rate < 0 {
		rate = 0
	}
	return rate
}

// ErrInjectedDisconnect is the error surfaced by a scripted or
// probabilistic disconnect, wrapped with direction context.
var ErrInjectedDisconnect = fmt.Errorf("netsim: injected disconnect")

// FaultStats counts what the injector actually did, for assertions
// and experiment reports.
type FaultStats struct {
	UpBytes, DownBytes     int64
	DroppedUp, DroppedDown int
	Stalls                 int
	Disconnected           bool
}

// FaultyConn wraps a net.Conn with seeded, deterministic fault
// injection: probabilistic frame drops, read/write stalls, mid-stream
// disconnects, and scripted bandwidth degradation over time. It plays
// the volatile wireless link under a runtime client (or over an
// accepted server conn): the shaper still paces the nominal channel,
// the injector adds the pathology on top. All fault state is guarded
// by one mutex, and the mutex is held across injected sleeps so the
// faults serialize like contention on one physical radio.
type FaultyConn struct {
	net.Conn
	up, down FaultSpec
	scale    float64
	start    time.Time
	sleep    func(time.Duration)
	now      func() time.Time
	// Nominal shaper rates per direction (Mb/s, 0 = undeclared); see
	// WithNominal.
	upNom, downNom float64

	mu    sync.Mutex
	rng   *rand.Rand
	stats FaultStats
}

// Inject wraps conn with the given per-direction fault specs and a
// seeded RNG. timeScale compresses stall and pacing durations exactly
// like netsim.Shape (<= 0 defaults to 1); the Degrade schedule's
// AfterMs offsets are channel time and scale the same way.
func Inject(conn net.Conn, up, down FaultSpec, seed int64, timeScale float64) *FaultyConn {
	if timeScale <= 0 {
		timeScale = 1
	}
	now := time.Now
	return &FaultyConn{
		Conn:  conn,
		up:    up,
		down:  down,
		scale: timeScale,
		start: now(),
		sleep: time.Sleep,
		now:   now,
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// WithNominal declares the bandwidth the surrounding shaper already
// paces each direction at. An injected FaultyConn usually sits under a
// ShapedConn, so every byte pays the nominal pacing before it reaches
// the injector; without the declaration a Degrade cap's pacing stacks
// on top and the wire delivers the series composition of the two rates
// (1/(1/nominal + 1/cap)) instead of the cap. With it, the injector
// charges only the difference, so the scripted Mbps is the effective
// rate an estimator on the client measures.
func (f *FaultyConn) WithNominal(ch Channel) *FaultyConn {
	f.upNom = ch.UplinkMbps
	f.downNom = ch.DownlinkMbps
	return f
}

// Stats snapshots the injection counters.
func (f *FaultyConn) Stats() FaultStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// elapsedMs returns channel time since the conn was created.
func (f *FaultyConn) elapsedMs() float64 {
	return float64(f.now().Sub(f.start)) / float64(time.Millisecond) / f.scale
}

// inject runs the shared fault ladder for one operation of n bytes
// under the given spec. It returns drop=true when the bytes must be
// discarded, or a non-nil error when the connection was torn down.
// Called with f.mu held.
func (f *FaultyConn) inject(spec FaultSpec, n int, bytes *int64, dropped *int, nomMbps float64, dir string) (drop bool, err error) {
	if f.stats.Disconnected {
		return false, fmt.Errorf("%w (%s)", ErrInjectedDisconnect, dir)
	}
	if spec.StallProb > 0 && f.rng.Float64() < spec.StallProb {
		f.stats.Stalls++
		f.sleep(time.Duration(spec.StallMs * f.scale * float64(time.Millisecond)))
	}
	if rate := spec.capAt(f.elapsedMs()); rate > 0 {
		// Extra pacing to the degraded rate. With a declared nominal
		// (WithNominal) only the difference against the shaper's own
		// pacing is charged, so the cap is the effective rate; a cap at
		// or above the nominal then costs nothing.
		per := float64(n) * 8 / (rate * 1e6)
		if nomMbps > 0 {
			per -= float64(n) * 8 / (nomMbps * 1e6)
		}
		if per > 0 {
			f.sleep(time.Duration(per * f.scale * float64(time.Second)))
		}
	}
	disconnect := spec.DisconnectProb > 0 && f.rng.Float64() < spec.DisconnectProb
	if spec.DisconnectAfterBytes > 0 && *bytes+int64(n) >= spec.DisconnectAfterBytes {
		disconnect = true
	}
	if disconnect {
		f.stats.Disconnected = true
		_ = f.Conn.Close()
		return false, fmt.Errorf("%w (%s)", ErrInjectedDisconnect, dir)
	}
	*bytes += int64(n)
	if spec.DropProb > 0 && f.rng.Float64() < spec.DropProb {
		*dropped++
		return true, nil
	}
	return false, nil
}

// Write applies the uplink fault ladder, then forwards to the wrapped
// conn. A dropped frame returns (len(p), nil) — the sender believes it
// succeeded, exactly like an unacknowledged datagram.
func (f *FaultyConn) Write(p []byte) (int, error) {
	if !f.up.active() {
		return f.Conn.Write(p)
	}
	f.mu.Lock()
	drop, err := f.inject(f.up, len(p), &f.stats.UpBytes, &f.stats.DroppedUp, f.upNom, "write")
	f.mu.Unlock()
	if err != nil {
		return 0, err
	}
	if drop {
		return len(p), nil
	}
	return f.Conn.Write(p)
}

// Read applies the downlink fault ladder to each frame the peer
// delivers. A dropped frame is consumed from the wire and discarded,
// and the Read blocks for the next one — the reader never learns the
// bytes existed.
func (f *FaultyConn) Read(p []byte) (int, error) {
	if !f.down.active() {
		return f.Conn.Read(p)
	}
	for {
		n, err := f.Conn.Read(p)
		if err != nil {
			return n, err
		}
		f.mu.Lock()
		drop, ierr := f.inject(f.down, n, &f.stats.DownBytes, &f.stats.DroppedDown, f.downNom, "read")
		f.mu.Unlock()
		if ierr != nil {
			return 0, ierr
		}
		if !drop {
			return n, nil
		}
	}
}
