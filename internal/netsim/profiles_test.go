package netsim

import "testing"

// capsAt evaluates the schedule through the same FaultSpec.capAt the
// injector uses, so these tests pin the constructors' semantics, not a
// re-implementation.
func capsAt(steps []DegradeStep, ms float64) float64 {
	return FaultSpec{Degrade: steps}.capAt(ms)
}

func assertSorted(t *testing.T, name string, steps []DegradeStep) {
	t.Helper()
	for i := 1; i < len(steps); i++ {
		if steps[i].AfterMs < steps[i-1].AfterMs {
			t.Fatalf("%s: steps unsorted at %d: %.1f after %.1f", name, i, steps[i].AfterMs, steps[i-1].AfterMs)
		}
	}
}

func TestStepDownProfile(t *testing.T) {
	p := StepDown(200, 2)
	assertSorted(t, "StepDown", p)
	for _, tc := range []struct{ ms, want float64 }{{0, 0}, {199, 0}, {200, 2}, {1e6, 2}} {
		if got := capsAt(p, tc.ms); got != tc.want {
			t.Errorf("StepDown cap at %.0fms = %.1f, want %.1f", tc.ms, got, tc.want)
		}
	}
}

func TestStepUpProfile(t *testing.T) {
	p := StepUp(300, 2)
	assertSorted(t, "StepUp", p)
	for _, tc := range []struct{ ms, want float64 }{{0, 2}, {299, 2}, {300, 0}, {1e6, 0}} {
		if got := capsAt(p, tc.ms); got != tc.want {
			t.Errorf("StepUp cap at %.0fms = %.1f, want %.1f", tc.ms, got, tc.want)
		}
	}
}

func TestSawtoothProfile(t *testing.T) {
	p := Sawtooth(100, 50, 2, 3)
	assertSorted(t, "Sawtooth", p)
	if len(p) != 6 {
		t.Fatalf("3 cycles = %d steps, want 6", len(p))
	}
	for _, tc := range []struct{ ms, want float64 }{
		{0, 0},             // before the first fade
		{100, 2}, {149, 2}, // degraded phase 1
		{150, 0}, {199, 0}, // recovered
		{200, 2}, // degraded phase 2
		{450, 0}, // after the last recovery
	} {
		if got := capsAt(p, tc.ms); got != tc.want {
			t.Errorf("Sawtooth cap at %.0fms = %.1f, want %.1f", tc.ms, got, tc.want)
		}
	}
}

func TestRampProfile(t *testing.T) {
	p := Ramp(100, 500, 12, 2, 5)
	assertSorted(t, "Ramp", p)
	if len(p) != 5 {
		t.Fatalf("got %d steps, want 5", len(p))
	}
	if got := capsAt(p, 99); got != 0 {
		t.Errorf("cap before ramp = %.1f, want uncapped", got)
	}
	if got := capsAt(p, 100); got != 12 {
		t.Errorf("cap at ramp start = %.1f, want 12", got)
	}
	if got := capsAt(p, 500); got != 2 {
		t.Errorf("cap at ramp end = %.1f, want 2", got)
	}
	// Monotone decreasing across the ramp.
	prev := 13.0
	for _, s := range p {
		if s.Mbps >= prev {
			t.Errorf("ramp cap not strictly decreasing: %.2f then %.2f", prev, s.Mbps)
		}
		prev = s.Mbps
	}
	// Degenerate step count clamps to 2 (the two endpoints).
	if got := Ramp(0, 100, 8, 4, 1); len(got) != 2 {
		t.Errorf("Ramp with 1 step = %d entries, want 2", len(got))
	}
}
