package netsim

import (
	"bytes"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// memConn is an in-memory net.Conn: writes land in wr, reads drain rd.
type memConn struct {
	mu     sync.Mutex
	rd     *bytes.Reader
	wr     bytes.Buffer
	closed bool
}

func newMemConn(read []byte) *memConn { return &memConn{rd: bytes.NewReader(read)} }

func (m *memConn) Read(p []byte) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return 0, io.ErrClosedPipe
	}
	return m.rd.Read(p)
}

func (m *memConn) Write(p []byte) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return 0, io.ErrClosedPipe
	}
	return m.wr.Write(p)
}

func (m *memConn) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	return nil
}

func (m *memConn) written() []byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]byte(nil), m.wr.Bytes()...)
}

func (m *memConn) LocalAddr() net.Addr              { return nil }
func (m *memConn) RemoteAddr() net.Addr             { return nil }
func (m *memConn) SetDeadline(time.Time) error      { return nil }
func (m *memConn) SetReadDeadline(time.Time) error  { return nil }
func (m *memConn) SetWriteDeadline(time.Time) error { return nil }

func TestInjectNoFaultsIsTransparent(t *testing.T) {
	mc := newMemConn([]byte("reply-bytes"))
	fc := Inject(mc, FaultSpec{}, FaultSpec{}, 1, 1)
	if _, err := fc.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if got := mc.written(); string(got) != "hello" {
		t.Fatalf("forwarded %q, want %q", got, "hello")
	}
	buf := make([]byte, 16)
	n, err := fc.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:n]) != "reply-bytes" {
		t.Fatalf("read %q", buf[:n])
	}
}

func TestInjectDropsAreDeterministicAndSilent(t *testing.T) {
	const trials = 400
	run := func(seed int64) (kept int) {
		mc := newMemConn(nil)
		fc := Inject(mc, FaultSpec{DropProb: 0.3}, FaultSpec{}, seed, 1)
		for i := 0; i < trials; i++ {
			n, err := fc.Write([]byte{byte(i)})
			if err != nil || n != 1 {
				t.Fatalf("write %d: n=%d err=%v (drops must be silent)", i, n, err)
			}
		}
		return len(mc.written())
	}
	a, b := run(7), run(7)
	if a != b {
		t.Fatalf("same seed, different outcomes: %d vs %d", a, b)
	}
	if a == trials || a == 0 {
		t.Fatalf("kept %d/%d frames; drops not engaged", a, trials)
	}
	if c := run(8); c == a {
		t.Logf("note: seeds 7 and 8 coincide (%d kept) — legal but unlikely", c)
	}
}

func TestInjectScriptedDisconnectAfterBytes(t *testing.T) {
	mc := newMemConn(nil)
	fc := Inject(mc, FaultSpec{DisconnectAfterBytes: 10}, FaultSpec{}, 1, 1)
	if _, err := fc.Write(make([]byte, 8)); err != nil {
		t.Fatalf("first write must pass: %v", err)
	}
	if _, err := fc.Write(make([]byte, 8)); !errors.Is(err, ErrInjectedDisconnect) {
		t.Fatalf("crossing the byte budget must disconnect, got %v", err)
	}
	// The conn is dead for every later op, both directions.
	if _, err := fc.Write([]byte{1}); !errors.Is(err, ErrInjectedDisconnect) {
		t.Fatalf("post-disconnect write must fail, got %v", err)
	}
	if !fc.Stats().Disconnected {
		t.Fatal("stats must record the disconnect")
	}
}

func TestInjectStallSleepsChannelTime(t *testing.T) {
	mc := newMemConn(nil)
	fc := Inject(mc, FaultSpec{StallProb: 1, StallMs: 40}, FaultSpec{}, 3, 0.5)
	var slept time.Duration
	fc.sleep = func(d time.Duration) { slept += d }
	if _, err := fc.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if want := 20 * time.Millisecond; slept != want {
		t.Fatalf("stall slept %v, want %v (40ms at scale 0.5)", slept, want)
	}
	if fc.Stats().Stalls != 1 {
		t.Fatalf("stalls = %d, want 1", fc.Stats().Stalls)
	}
}

func TestInjectDegradeSchedule(t *testing.T) {
	spec := FaultSpec{Degrade: []DegradeStep{{AfterMs: 100, Mbps: 8}, {AfterMs: 200, Mbps: 1}}}
	if r := spec.capAt(50); r != 0 {
		t.Fatalf("cap before first step = %g, want 0", r)
	}
	if r := spec.capAt(150); r != 8 {
		t.Fatalf("cap at 150ms = %g, want 8", r)
	}
	if r := spec.capAt(500); r != 1 {
		t.Fatalf("cap at 500ms = %g, want 1", r)
	}

	mc := newMemConn(nil)
	fc := Inject(mc, spec, FaultSpec{}, 1, 1)
	var slept time.Duration
	fc.sleep = func(d time.Duration) { slept += d }
	base := fc.start
	fc.now = func() time.Time { return base.Add(300 * time.Millisecond) }
	// 1 Mb/s cap: 125000 bytes = 1 s of pacing.
	if _, err := fc.Write(make([]byte, 125000)); err != nil {
		t.Fatal(err)
	}
	if d := slept.Seconds(); d < 0.999 || d > 1.001 {
		t.Fatalf("degrade pacing slept %v, want ~1s", slept)
	}
}

func TestInjectDegradeWithNominal(t *testing.T) {
	// With a declared 8 Mb/s nominal shaper and a 1 Mb/s cap, the
	// injector must charge only the difference: 125000 bytes = 1 s at
	// the cap minus 0.125 s the shaper already paid.
	spec := FaultSpec{Degrade: []DegradeStep{{AfterMs: 0, Mbps: 1}}}
	mc := newMemConn(nil)
	fc := Inject(mc, spec, FaultSpec{}, 1, 1).WithNominal(Channel{UplinkMbps: 8})
	var slept time.Duration
	fc.sleep = func(d time.Duration) { slept += d }
	if _, err := fc.Write(make([]byte, 125000)); err != nil {
		t.Fatal(err)
	}
	if d := slept.Seconds(); d < 0.874 || d > 0.876 {
		t.Fatalf("compensated degrade pacing slept %v, want ~0.875s", slept)
	}

	// A cap at or above the nominal costs nothing extra — the shaper
	// alone already enforces it.
	fc2 := Inject(newMemConn(nil), FaultSpec{Degrade: []DegradeStep{{AfterMs: 0, Mbps: 8}}},
		FaultSpec{}, 1, 1).WithNominal(Channel{UplinkMbps: 4})
	slept = 0
	fc2.sleep = func(d time.Duration) { slept += d }
	if _, err := fc2.Write(make([]byte, 125000)); err != nil {
		t.Fatal(err)
	}
	if slept != 0 {
		t.Fatalf("cap above nominal slept %v, want 0", slept)
	}
}

func TestInjectReadDropConsumesFrame(t *testing.T) {
	// With DropProb 1 every delivered frame is discarded: the reader
	// blocks through them all and sees only the stream's end.
	mc := newMemConn([]byte("AB"))
	fc := Inject(mc, FaultSpec{}, FaultSpec{DropProb: 1}, 1, 1)
	buf := make([]byte, 1)
	if _, err := fc.Read(buf); err != io.EOF {
		t.Fatalf("all-dropped stream must end in EOF, got %v", err)
	}
	st := fc.Stats()
	if st.DroppedDown == 0 {
		t.Fatal("read drops not counted")
	}
}
