package netsim

// Scripted degradation profiles for the adaptive-replanning tests and
// the -fig adapt experiment: each constructor returns a DegradeStep
// schedule (sorted by AfterMs, as FaultSpec requires) describing a
// canonical bandwidth pathology. All times are channel time, like
// DegradeStep.AfterMs.

// StepDown caps the direction at toMbps from afterMs on — the single
// regime shift of the acceptance trace (12→2 Mb/s at t=200 ms is
// StepDown(200, 2) under a 12 Mb/s nominal channel).
func StepDown(afterMs, toMbps float64) []DegradeStep {
	return []DegradeStep{{AfterMs: afterMs, Mbps: toMbps}}
}

// StepUp starts the direction capped at fromMbps and lifts the cap at
// afterMs (Mbps 0 = uncapped: the nominal shaper rate takes over) —
// a link that recovers mid-run.
func StepUp(afterMs, fromMbps float64) []DegradeStep {
	return []DegradeStep{{AfterMs: 0, Mbps: fromMbps}, {AfterMs: afterMs, Mbps: 0}}
}

// Sawtooth alternates the cap between loMbps and uncapped every
// periodMs, starting degraded at startMs, for the given number of
// degraded phases — repeated fade-and-recover cycles.
func Sawtooth(startMs, periodMs, loMbps float64, cycles int) []DegradeStep {
	var steps []DegradeStep
	at := startMs
	for c := 0; c < cycles; c++ {
		steps = append(steps,
			DegradeStep{AfterMs: at, Mbps: loMbps},
			DegradeStep{AfterMs: at + periodMs, Mbps: 0})
		at += 2 * periodMs
	}
	return steps
}

// Ramp decays the cap linearly from fromMbps at startMs to toMbps at
// endMs in the given number of equal steps — a slow fade rather than a
// regime shift, the case change-point detection must NOT mistake for a
// step while the estimate still tracks it.
func Ramp(startMs, endMs, fromMbps, toMbps float64, steps int) []DegradeStep {
	if steps < 2 {
		steps = 2
	}
	out := make([]DegradeStep, steps)
	for i := 0; i < steps; i++ {
		frac := float64(i) / float64(steps-1)
		out[i] = DegradeStep{
			AfterMs: startMs + frac*(endMs-startMs),
			Mbps:    fromMbps + frac*(toMbps-fromMbps),
		}
	}
	return out
}
