package netsim

import (
	"bytes"
	"testing"
	"time"
)

// FuzzInjector drives the fault-injecting conn with arbitrary fault
// scripts and payloads. The first 8 bytes select the fault mix (drop,
// stall, disconnect, degrade, seed), the rest is the byte stream
// pushed through both directions. Whatever the script, the injector
// must never panic, never invent bytes, and with an all-zero script it
// must be perfectly transparent. Run
// `go test -fuzz=FuzzInjector ./internal/netsim` for a deep fuzz.
func FuzzInjector(f *testing.F) {
	f.Add([]byte("\x00\x00\x00\x00\x00\x00\x00\x00hello world"))
	f.Add([]byte("\xff\x00\x00\x00\x00\x00\x00\x07payload-payload-payload"))
	f.Add([]byte("\x00\x00\x00\x00\x05\x00\x00\x01abcdefghijklmnop"))
	f.Add([]byte("\x00\xff\x02\x00\x00\x08\x20\x03data"))
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 8 {
			return
		}
		cfg, payload := data[:8], data[8:]
		up := FaultSpec{
			DropProb:             float64(cfg[0]) / 512, // up to ~50%
			StallProb:            float64(cfg[1]) / 512,
			StallMs:              float64(cfg[2]), // microscopic at the 1e-6 scale below
			DisconnectProb:       float64(cfg[3]) / 1024,
			DisconnectAfterBytes: int64(cfg[4]) * 3,
		}
		if cfg[5] > 0 {
			up.Degrade = []DegradeStep{{AfterMs: 0, Mbps: float64(cfg[5])}}
		}
		down := FaultSpec{DropProb: float64(cfg[6]) / 512}
		transparent := true
		for _, b := range cfg {
			if b != 0 {
				transparent = false
			}
		}

		mc := newMemConn(payload)
		fc := Inject(mc, up, down, int64(cfg[7]), 1e-6)
		// Timing is covered by the unit tests; counting sleeps instead
		// of taking them keeps fuzz throughput high.
		var slept int
		fc.sleep = func(time.Duration) { slept++ }

		// Push the payload through the write side in varying chunks.
		var sent int
		for off := 0; off < len(payload); {
			n := 1 + (off+int(cfg[7]))%7
			if off+n > len(payload) {
				n = len(payload) - off
			}
			w, err := fc.Write(payload[off : off+n])
			if err != nil {
				break // injected disconnect: legal terminal state
			}
			sent += w
			off += n
		}
		forwarded := mc.written()
		if len(forwarded) > sent {
			t.Fatalf("injector invented bytes: forwarded %d > sent %d", len(forwarded), sent)
		}
		if transparent && !bytes.Equal(forwarded, payload) {
			t.Fatalf("zero fault script must be transparent: %q vs %q", forwarded, payload)
		}

		// Drain the read side through the same injector.
		var read int
		buf := make([]byte, 16)
		for {
			n, err := fc.Read(buf)
			read += n
			if err != nil {
				break
			}
		}
		if read > len(payload) {
			t.Fatalf("read %d bytes out of a %d-byte stream", read, len(payload))
		}
	})
}
