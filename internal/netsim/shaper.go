package netsim

import (
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ShapedConn wraps a net.Conn and paces writes to a target bandwidth,
// the in-process equivalent of the paper's wondershaper-limited link.
// Pacing uses a virtual send clock with debt accounting so many small
// writes cost the same as one large write. TimeScale compresses the
// simulated time axis (0.001 = 1000× faster than real time) so
// integration tests can exercise slow channels quickly.
//
// The pacing state is mutex-guarded, and the lock is held across the
// pacing sleep: concurrent writers (or a writer racing a Delay call)
// serialize exactly like frames on one physical link, so a dedicated
// writer goroutine plus calibration traffic stays correct under -race.
type ShapedConn struct {
	net.Conn
	bytesPerSec float64
	timeScale   float64
	sleep       func(time.Duration)
	mu          sync.Mutex
	debt        time.Duration // accumulated unsent pacing time

	// Downlink pacing (reads). Zero downPerSec passes reads straight
	// through — the historical uplink-only shaping. The read side has
	// its own lock and debt so a paced reply never serializes behind a
	// paced upload: the directions are separate physical resources.
	downPerSec float64
	downMu     sync.Mutex
	downDebt   time.Duration

	// Ground-truth byte accounting for the observability layer: every
	// byte and write that actually reached the underlying conn,
	// regardless of what the channel model predicted it should cost.
	nBytes  atomic.Int64
	nWrites atomic.Int64
}

// Shape wraps conn at the channel's uplink bandwidth. timeScale <= 0
// defaults to 1 (real time).
func Shape(conn net.Conn, ch Channel, timeScale float64) *ShapedConn {
	if timeScale <= 0 {
		timeScale = 1
	}
	return &ShapedConn{
		Conn:        conn,
		bytesPerSec: ch.BytesPerSec(),
		downPerSec:  ch.DownBytesPerSec(),
		timeScale:   timeScale,
		sleep:       time.Sleep,
	}
}

// Write paces the payload at the configured bandwidth, then forwards
// it to the underlying conn.
func (s *ShapedConn) Write(p []byte) (int, error) {
	s.mu.Lock()
	d := time.Duration(float64(len(p)) / s.bytesPerSec * float64(time.Second) * s.timeScale)
	s.debt += d
	// Sleep in one shot once debt is observable; sub-millisecond debts
	// accumulate to keep pacing accurate without thousands of tiny
	// sleeps.
	if s.debt >= time.Millisecond {
		slept := s.debt
		s.debt = 0
		s.sleep(slept)
	}
	s.mu.Unlock()
	n, err := s.Conn.Write(p)
	if n > 0 {
		s.nBytes.Add(int64(n))
		s.nWrites.Add(1)
	}
	return n, err
}

// Read forwards to the underlying conn, then paces the received bytes
// at the downlink bandwidth. Pacing after the read (rather than before)
// means the sleep charges exactly the bytes that actually arrived, with
// the same debt accounting as the write side. With an unmodeled
// downlink this is a passthrough.
func (s *ShapedConn) Read(p []byte) (int, error) {
	n, err := s.Conn.Read(p)
	if n > 0 && s.downPerSec > 0 {
		s.downMu.Lock()
		s.downDebt += time.Duration(float64(n) / s.downPerSec * float64(time.Second) * s.timeScale)
		if s.downDebt >= time.Millisecond {
			slept := s.downDebt
			s.downDebt = 0
			s.sleep(slept)
		}
		s.downMu.Unlock()
	}
	return n, err
}

// BytesWritten returns how many bytes have reached the underlying
// connection. Safe for concurrent use.
func (s *ShapedConn) BytesWritten() int64 { return s.nBytes.Load() }

// Writes returns how many Write calls reached the underlying
// connection.
func (s *ShapedConn) Writes() int64 { return s.nWrites.Load() }

// Delay sleeps for the channel-scale duration d (e.g. per-message
// setup latency), compressed by the shaper's time scale. Like Write,
// it occupies the link for the duration.
func (s *ShapedConn) Delay(d time.Duration) {
	s.mu.Lock()
	s.sleep(time.Duration(float64(d) * s.timeScale))
	s.mu.Unlock()
}
