package netsim

import (
	"math"
	"net"
	"testing"
	"testing/quick"
	"time"
)

func TestPresetBandwidths(t *testing.T) {
	if ThreeG.UplinkMbps != 1.1 || FourG.UplinkMbps != 5.85 || WiFi.UplinkMbps != 18.88 {
		t.Errorf("preset bandwidths drifted: %v %v %v", ThreeG, FourG, WiFi)
	}
	ps := Presets()
	if len(ps) != 3 {
		t.Fatalf("Presets len = %d", len(ps))
	}
	for i := 1; i < len(ps); i++ {
		if ps[i].UplinkMbps <= ps[i-1].UplinkMbps {
			t.Error("presets must be in ascending bandwidth order")
		}
	}
}

func TestTxMs(t *testing.T) {
	// AlexNet float32 input (3x224x224) over 3G must exceed 4s — the
	// paper's reason for omitting CO from Fig. 12(a).
	inputBytes := 3 * 224 * 224 * 4
	if got := ThreeG.TxMs(inputBytes); got < 4000 {
		t.Errorf("3G upload of %d bytes = %.0fms, want > 4000ms", inputBytes, got)
	}
	// Zero payload = no message.
	if ThreeG.TxMs(0) != 0 {
		t.Error("zero payload must cost nothing")
	}
	// Exact formula check.
	ch := Channel{UplinkMbps: 8, SetupMs: 10} // 1 MB/s
	if got := ch.TxMs(1e6); math.Abs(got-1010) > 1e-9 {
		t.Errorf("TxMs(1MB at 1MB/s) = %g, want 1010", got)
	}
}

func TestAtChannel(t *testing.T) {
	c := At(1.1)
	if math.Abs(c.SetupMs-70) > 1 {
		t.Errorf("At(1.1) setup = %g, want ~70", c.SetupMs)
	}
	if At(80).SetupMs != 5 {
		t.Errorf("At(80) setup = %g, want clamp at 5", At(80).SetupMs)
	}
	if At(18.88).UplinkMbps != 18.88 {
		t.Error("At must preserve bandwidth")
	}
}

func TestAtPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	At(0)
}

func TestBytesPerSec(t *testing.T) {
	ch := Channel{UplinkMbps: 8}
	if got := ch.BytesPerSec(); got != 1e6 {
		t.Errorf("8 Mb/s = %g B/s, want 1e6", got)
	}
}

// Property: TxMs is monotone in payload size and in 1/bandwidth.
func TestTxMsMonotoneProperty(t *testing.T) {
	f := func(a, b uint16, m1, m2 uint8) bool {
		lo, hi := int(a), int(a)+int(b)+1
		bw1 := float64(m1%50) + 1
		bw2 := bw1 + float64(m2%50) + 1
		c1, c2 := At(bw1), At(bw2)
		if c1.TxMs(hi) < c1.TxMs(lo) {
			return false // more bytes can never be faster
		}
		if hi > 0 && c2.TxMs(hi) > c1.TxMs(hi) {
			return false // more bandwidth can never be slower
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestShapedConnPacesWrites(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()

	var slept time.Duration
	sc := Shape(client, Channel{UplinkMbps: 8}, 1) // 1 MB/s
	sc.sleep = func(d time.Duration) { slept += d }

	go func() {
		buf := make([]byte, 64<<10)
		for {
			if _, err := server.Read(buf); err != nil {
				return
			}
		}
	}()

	payload := make([]byte, 100_000) // 100 KB at 1 MB/s = 100 ms
	if _, err := sc.Write(payload); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if math.Abs(slept.Seconds()-0.1) > 0.001 {
		t.Errorf("slept %v, want ~100ms", slept)
	}
}

func TestShapedConnDebtAccumulation(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()

	var slept time.Duration
	sc := Shape(client, Channel{UplinkMbps: 8}, 1)
	sc.sleep = func(d time.Duration) { slept += d }

	go func() {
		buf := make([]byte, 4096)
		for {
			if _, err := server.Read(buf); err != nil {
				return
			}
		}
	}()

	// 100 writes of 1000 bytes = same total pacing as one 100 KB write.
	for i := 0; i < 100; i++ {
		if _, err := sc.Write(make([]byte, 1000)); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	total := slept + sc.debt
	if math.Abs(total.Seconds()-0.1) > 0.001 {
		t.Errorf("total pacing %v, want ~100ms", total)
	}
}

func TestShapedConnTimeScale(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()

	var slept time.Duration
	sc := Shape(client, Channel{UplinkMbps: 8}, 0.01)
	sc.sleep = func(d time.Duration) { slept += d }

	go func() {
		buf := make([]byte, 1<<20)
		for {
			if _, err := server.Read(buf); err != nil {
				return
			}
		}
	}()

	if _, err := sc.Write(make([]byte, 1_000_000)); err != nil { // 1s real -> 10ms scaled
		t.Fatalf("Write: %v", err)
	}
	if math.Abs(slept.Seconds()-0.01) > 0.001 {
		t.Errorf("slept %v, want ~10ms", slept)
	}

	slept = 0
	sc.Delay(time.Second)
	if math.Abs(slept.Seconds()-0.01) > 0.001 {
		t.Errorf("Delay slept %v, want ~10ms", slept)
	}
}

func TestShapeDefaultTimeScale(t *testing.T) {
	client, _ := net.Pipe()
	defer client.Close()
	sc := Shape(client, WiFi, 0)
	if sc.timeScale != 1 {
		t.Errorf("default time scale = %g, want 1", sc.timeScale)
	}
}

func TestShapedConnPacesReads(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()

	var slept time.Duration
	sc := Shape(client, Channel{UplinkMbps: 8}.WithDownlink(8), 1) // 1 MB/s down
	sc.sleep = func(d time.Duration) { slept += d }

	go func() {
		payload := make([]byte, 100_000)
		if _, err := server.Write(payload); err != nil {
			return
		}
	}()

	buf := make([]byte, 4096)
	var got int
	for got < 100_000 {
		n, err := sc.Read(buf)
		if err != nil {
			t.Fatalf("Read: %v", err)
		}
		got += n
	}
	// 100 KB at 1 MB/s = 100 ms, modulo sub-millisecond residual debt.
	total := slept + sc.downDebt
	if math.Abs(total.Seconds()-0.1) > 0.001 {
		t.Errorf("read pacing %v, want ~100ms", total)
	}
}

func TestShapedConnReadPassthroughWithoutDownlink(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()

	var slept time.Duration
	sc := Shape(client, Channel{UplinkMbps: 8}, 1) // DownlinkMbps 0
	sc.sleep = func(d time.Duration) { slept += d }

	go func() { _, _ = server.Write(make([]byte, 100_000)) }()

	buf := make([]byte, 4096)
	var got int
	for got < 100_000 {
		n, err := sc.Read(buf)
		if err != nil {
			t.Fatalf("Read: %v", err)
		}
		got += n
	}
	if slept != 0 || sc.downDebt != 0 {
		t.Errorf("unmodeled downlink slept %v (debt %v), want passthrough", slept, sc.downDebt)
	}
}

func TestRxMs(t *testing.T) {
	ch := Channel{UplinkMbps: 8}.WithDownlink(8) // 1 MB/s each way
	if got := ch.RxMs(1_000_000); math.Abs(got-1000) > 1e-9 {
		t.Errorf("RxMs(1MB) = %g, want 1000", got)
	}
	if got := ch.RxMs(0); got != 0 {
		t.Errorf("RxMs(0) = %g, want 0", got)
	}
	if got := (Channel{UplinkMbps: 8}).RxMs(1_000_000); got != 0 {
		t.Errorf("unmodeled downlink RxMs = %g, want 0", got)
	}
	if got := ch.DownBytesPerSec(); math.Abs(got-1e6) > 1e-9 {
		t.Errorf("DownBytesPerSec = %g, want 1e6", got)
	}
	if got := (Channel{UplinkMbps: 8}).DownBytesPerSec(); got != 0 {
		t.Errorf("unmodeled DownBytesPerSec = %g, want 0", got)
	}
}
