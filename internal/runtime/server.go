package runtime

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"time"

	"dnnjps/internal/engine"
	"dnnjps/internal/profile"
	"dnnjps/internal/tensor"
)

// Server is the cloud side: it holds the same deterministic model as
// the client and finishes inferences from any cut point of the line
// view.
type Server struct {
	model *engine.Model
	units []profile.Unit
	// suffix[cut] lists the nodes the server executes for a job cut
	// after unit 'cut', in topological order.
	suffix [][]int
}

// NewServer builds a server for the model.
func NewServer(m *engine.Model) *Server {
	g := m.Graph()
	units := profile.LineView(g)
	suffix := make([][]int, len(units))
	for cut := range units {
		var nodes []int
		for _, u := range units[cut+1:] {
			nodes = append(nodes, u.Nodes...)
		}
		suffix[cut] = nodes
	}
	return &Server{model: m, units: units, suffix: suffix}
}

// Serve accepts connections until the listener closes, handling each
// connection on its own goroutine.
func (s *Server) Serve(lis net.Listener) error {
	for {
		conn, err := lis.Accept()
		if err != nil {
			return err
		}
		go func() {
			defer conn.Close()
			_ = s.HandleConn(conn)
		}()
	}
}

// HandleConn processes requests on one connection until EOF. Each
// inference reply carries the server's measured compute time so the
// client can isolate the communication delay (the paper's td − tc).
func (s *Server) HandleConn(conn io.ReadWriter) error {
	r := bufio.NewReaderSize(conn, 1<<16)
	w := bufio.NewWriterSize(conn, 1<<16)
	for {
		var typ byte
		if err := binary.Read(r, binary.LittleEndian, &typ); err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
		switch typ {
		case msgInfer:
			req, err := readInferRequestBody(r)
			if err != nil {
				return err
			}
			rep, err := s.infer(req)
			if err != nil {
				return err
			}
			if err := writeInferReply(w, rep); err != nil {
				return err
			}
		case msgInferSet:
			req, err := readInferSetRequestBody(r)
			if err != nil {
				return err
			}
			rep, err := s.inferSet(req)
			if err != nil {
				return err
			}
			if err := writeInferReply(w, rep); err != nil {
				return err
			}
		case msgPing:
			if _, err := readPingBody(r); err != nil {
				return err
			}
			if err := writePong(w); err != nil {
				return err
			}
		default:
			return fmt.Errorf("runtime: unknown message type %d", typ)
		}
		if err := w.Flush(); err != nil {
			return err
		}
	}
}

// infer resumes the model from the request's cut and returns the
// predicted class.
func (s *Server) infer(req *inferRequest) (*inferReply, error) {
	cut := int(req.Cut)
	if cut < 0 || cut >= len(s.units) {
		return nil, fmt.Errorf("runtime: cut %d out of range [0,%d)", cut, len(s.units))
	}
	boundary := s.units[cut].Exit
	wantShape := s.model.Graph().Node(boundary).OutShape
	if !req.Tensor.Shape.Equal(wantShape) {
		return nil, fmt.Errorf("runtime: boundary tensor %v, cut %d wants %v",
			req.Tensor.Shape, cut, wantShape)
	}
	start := time.Now()
	// Concurrent connections share the model: its arena is
	// thread-safe, and Execute's liveness tracking is per call. The
	// wire tensor seeds acts as a caller-owned buffer the arena never
	// recycles; the sink survives because it has no consumers.
	acts := map[int]*tensor.Tensor{boundary: req.Tensor}
	if err := s.model.Execute(acts, nil, s.suffix[cut]); err != nil {
		return nil, err
	}
	out := acts[s.model.Graph().Sink()]
	return &inferReply{
		JobID:   req.JobID,
		Class:   int32(engine.Argmax(out)),
		CloudNs: time.Since(start).Nanoseconds(),
	}, nil
}
