package runtime

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	goruntime "runtime"
	"sync"
	"time"

	"dnnjps/internal/engine"
	"dnnjps/internal/profile"
	"dnnjps/internal/tensor"
)

// Server is the cloud side: it holds the same deterministic model as
// the client and finishes inferences from any cut point of the line
// view. Each connection runs a read loop that decodes requests and
// dispatches execution to a bounded worker pool, so one slow inference
// never stalls the socket: job i+1's tensor is read while job i
// computes, and replies go out (possibly out of order) as jobs finish.
type Server struct {
	model *engine.Model
	units []profile.Unit
	// suffix[cut] lists the nodes the server executes for a job cut
	// after unit 'cut', in topological order.
	suffix [][]int
	// workers bounds concurrent inferences per connection.
	workers int
	// batchWindow/batchMax configure the cross-job coalescer (see
	// coalesce.go); window 0 or max 1 disables it.
	batchWindow time.Duration
	batchMax    int
	// obsv is the optional tracing + metrics bundle; nil disables
	// recording.
	obsv *Obs
}

// NewServer builds a server for the model. Per-connection concurrency
// defaults to the core count; tune it with WithWorkers.
func NewServer(m *engine.Model) *Server {
	g := m.Graph()
	units := profile.LineView(g)
	suffix := make([][]int, len(units))
	for cut := range units {
		var nodes []int
		for _, u := range units[cut+1:] {
			nodes = append(nodes, u.Nodes...)
		}
		suffix[cut] = nodes
	}
	return &Server{model: m, units: units, suffix: suffix, workers: goruntime.GOMAXPROCS(0)}
}

// WithWorkers bounds the per-connection worker pool to n concurrent
// inferences (n < 1 means 1, i.e. decode-ahead but serial execution).
// It returns s for chaining and must be called before serving.
func (s *Server) WithWorkers(n int) *Server {
	if n < 1 {
		n = 1
	}
	s.workers = n
	return s
}

// WithBatching enables the cross-job coalescer: decoded infer requests
// of the same cut wait up to window for companions (at most max per
// group) and execute as one batched suffix pass. Window 0 or max < 2
// keeps the original job-at-a-time dispatch. Must be called before
// serving; returns s for chaining. Only line-view infer requests
// coalesce — general-plan (msgInferSet) requests always run solo, as
// their node sets need not match.
func (s *Server) WithBatching(window time.Duration, max int) *Server {
	if max < 1 {
		max = 1
	}
	s.batchWindow = window
	s.batchMax = max
	return s
}

// WithObs attaches a tracing + metrics bundle; must be called before
// serving. Returns s for chaining. The server records per-job spans
// (decode, queue-wait, cloud-compute, reply-write) and the pool
// metrics documented on Obs.
func (s *Server) WithObs(o *Obs) *Server {
	s.obsv = o
	return s
}

// acceptBackoffMax caps the retry delay after transient Accept errors.
const acceptBackoffMax = time.Second

// Serve accepts connections until the listener closes, handling each
// connection on its own goroutine. Transient accept errors (EMFILE
// under fd exhaustion, ECONNABORTED) are retried with a small
// exponential backoff instead of killing the whole server; Serve
// returns only on permanent errors such as net.ErrClosed.
func (s *Server) Serve(lis net.Listener) error {
	var delay time.Duration
	for {
		conn, err := lis.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return err
			}
			// net.Error.Temporary is deprecated for general use, but it
			// is still the only signal that distinguishes per-connection
			// accept failures from a dead listener (net/http's accept
			// loop does the same).
			var ne net.Error
			if errors.As(err, &ne) && ne.Temporary() { //nolint:staticcheck // see above
				if delay == 0 {
					delay = 5 * time.Millisecond
				} else if delay *= 2; delay > acceptBackoffMax {
					delay = acceptBackoffMax
				}
				time.Sleep(delay)
				continue
			}
			return err
		}
		delay = 0
		go func() {
			defer conn.Close()
			_ = s.HandleConn(conn)
		}()
	}
}

// HandleConn processes requests on one connection until EOF. The read
// loop owns the socket's read side; executions run on the worker pool
// and emit replies under a write mutex (whole frames, flushed per
// reply, so frames never interleave). Each inference reply carries the
// server's measured compute time and queue wait so the client can
// isolate the communication delay (the paper's td − tc). The first
// error — decode, execution, or write — stops the connection; queued
// work is abandoned. When the transport is closable it is closed on
// failure so a read loop blocked in ReadByte on an idle client
// unblocks instead of pinning the goroutine forever.
func (s *Server) HandleConn(conn io.ReadWriter) error {
	r := bufio.NewReaderSize(conn, 1<<16)
	w := bufio.NewWriterSize(conn, 1<<16)
	closer, _ := conn.(io.Closer)

	var (
		writeMu  sync.Mutex
		errOnce  sync.Once
		firstErr error
		stop     = make(chan struct{})
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			close(stop)
			// A worker failure must also surface to a client that is
			// idle (all requests sent, waiting on replies): closing the
			// transport both unblocks our reader and drops the peer.
			if closer != nil {
				closer.Close()
			}
		})
	}
	// reply encodes one frame under the write mutex.
	reply := func(rep *inferReply) error {
		writeMu.Lock()
		start := time.Now()
		err := writeInferReply(w, rep)
		if err == nil {
			err = w.Flush()
		}
		writeMu.Unlock()
		if err != nil {
			return err
		}
		if o := s.obsv; o != nil {
			o.span(TrackServer, SpanReplyWrite, int(rep.JobID), start, time.Now())
			o.ServerJobs.Inc()
			o.ServerTxBytes.Add(replyWireBytes)
		}
		return nil
	}

	jobs := make(chan func() error, s.workers)
	var wg sync.WaitGroup
	for i := 0; i < s.workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for run := range jobs {
				if err := run(); err != nil {
					fail(err)
					return
				}
			}
		}()
	}

	// dispatch hands one unit of work to the pool, backing off to the
	// stop signal so a failed pool never deadlocks the reader.
	dispatch := func(run func() error) bool {
		select {
		case jobs <- run:
			return true
		case <-stop:
			return false
		}
	}

	// solo wraps a single-job inference into a pool unit: run, then
	// reply.
	solo := func(jobID int, recv time.Time, infer func() (*inferReply, error)) func() error {
		return func() error {
			rep, err := s.runJob(jobID, recv, infer)
			if err != nil {
				return err
			}
			return reply(rep)
		}
	}

	// With batching enabled, infer requests detour through the
	// coalescer, whose goroutine is then the sole dispatcher of batch
	// groups into the pool.
	var co *coalescer
	if s.batchWindow > 0 && s.batchMax > 1 {
		co = newCoalescer(s.batchWindow, s.batchMax, dispatch, stop,
			func(g *batchGroup, flushed time.Time) error { return s.runBatch(g, flushed, reply) })
	}

readLoop:
	for {
		select {
		case <-stop:
			break readLoop
		default:
		}
		typ, err := r.ReadByte()
		if err != nil {
			if err != io.EOF {
				fail(err)
			}
			break readLoop
		}
		switch typ {
		case msgInfer:
			decodeStart := time.Now()
			req, err := readInferRequestBody(r)
			if err != nil {
				fail(err)
				break readLoop
			}
			recv := time.Now()
			if o := s.obsv; o != nil {
				o.span(TrackServer, SpanDecode, int(req.JobID), decodeStart, recv)
				o.ServerRxBytes.Add(int64(reqWireBytes(req)))
			}
			if req.Quant != nil {
				// Expand the int8 codes once at decode time; everything
				// downstream — the coalescer included — sees the same
				// float32 boundary it always has.
				req.Tensor, req.Quant = req.Quant.Dequantize(), nil
			}
			if co != nil {
				if !co.submit(pendingJob{req: req, recv: recv}) {
					break readLoop
				}
			} else if !dispatch(solo(int(req.JobID), recv, func() (*inferReply, error) { return s.infer(req) })) {
				break readLoop
			}
		case msgInferSet:
			decodeStart := time.Now()
			req, err := readInferSetRequestBody(r)
			if err != nil {
				fail(err)
				break readLoop
			}
			recv := time.Now()
			if o := s.obsv; o != nil {
				o.span(TrackServer, SpanDecode, int(req.JobID), decodeStart, recv)
			}
			if !dispatch(solo(int(req.JobID), recv, func() (*inferReply, error) { return s.inferSet(req) })) {
				break readLoop
			}
		case msgPing:
			// Calibration pings are answered inline: they measure the
			// link, not the pool.
			if _, err := readPingBody(r); err != nil {
				fail(err)
				break readLoop
			}
			writeMu.Lock()
			err := writePong(w)
			if err == nil {
				err = w.Flush()
			}
			writeMu.Unlock()
			if err != nil {
				fail(err)
				break readLoop
			}
		default:
			fail(fmt.Errorf("runtime: unknown message type %d", typ))
			break readLoop
		}
	}
	// Flush any batch groups still inside their window before closing
	// the pool: the client may be idle, having sent everything, and its
	// last jobs must not be dropped. On the failure path the coalescer
	// drains without dispatching.
	if co != nil {
		co.finish()
	}
	close(jobs)
	wg.Wait()
	return firstErr
}

// runJob executes one dispatched inference on a worker, recording the
// pool queue wait (decode completion to worker pickup), occupancy, and
// the compute span, and stamping the reply's QueueNs metadata so the
// client can tell a saturated pool apart from a degraded link.
func (s *Server) runJob(jobID int, recv time.Time, infer func() (*inferReply, error)) (*inferReply, error) {
	start := time.Now()
	o := s.obsv
	o.span(TrackServer, SpanQueueWait, jobID, recv, start)
	if o != nil {
		o.WorkersBusy.Add(1)
	}
	rep, err := infer()
	end := time.Now()
	if o != nil {
		o.WorkersBusy.Add(-1)
	}
	if err != nil {
		return nil, err
	}
	rep.QueueNs = start.Sub(recv).Nanoseconds()
	o.span(TrackServer, SpanCloudCompute, jobID, start, end)
	return rep, nil
}

// infer resumes the model from the request's cut and returns the
// predicted class.
func (s *Server) infer(req *inferRequest) (*inferReply, error) {
	cut := int(req.Cut)
	if cut < 0 || cut >= len(s.units) {
		return nil, fmt.Errorf("runtime: cut %d out of range [0,%d)", cut, len(s.units))
	}
	boundary := s.units[cut].Exit
	wantShape := s.model.Graph().Node(boundary).OutShape
	if !req.Tensor.Shape.Equal(wantShape) {
		return nil, fmt.Errorf("runtime: boundary tensor %v, cut %d wants %v",
			req.Tensor.Shape, cut, wantShape)
	}
	start := time.Now()
	// Concurrent workers and connections share the model: its arena is
	// thread-safe, and Execute's liveness tracking is per call. The
	// wire tensor seeds acts as a caller-owned buffer the arena never
	// recycles; the sink survives because it has no consumers.
	acts := map[int]*tensor.Tensor{boundary: req.Tensor}
	if err := s.model.Execute(acts, nil, s.suffix[cut]); err != nil {
		return nil, err
	}
	out := acts[s.model.Graph().Sink()]
	return &inferReply{
		JobID:   req.JobID,
		Class:   int32(engine.Argmax(out)),
		CloudNs: time.Since(start).Nanoseconds(),
	}, nil
}
