package runtime

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	goruntime "runtime"
	"sync"
	"time"

	"dnnjps/internal/engine"
	"dnnjps/internal/profile"
	"dnnjps/internal/tensor"
)

// Server is the cloud side: it holds the same deterministic model as
// the client and finishes inferences from any cut point of the line
// view. Each connection runs a read loop that decodes requests and
// admits them into the server-wide fleet scheduler (see fleet.go):
// one global worker pool, one cross-connection coalescer, per-tenant
// weighted fair queueing, and watermark-based load shedding. Replies
// go out (possibly out of order) under each connection's write mutex
// as jobs finish, so one slow inference never stalls any socket.
type Server struct {
	model *engine.Model
	units []profile.Unit
	// suffix[cut] lists the nodes the server executes for a job cut
	// after unit 'cut', in topological order.
	suffix [][]int
	// workers bounds concurrent inferences server-wide.
	workers int
	// batchWindow/batchMax configure the cross-connection coalescer
	// (see coalesce.go); window 0 or max 1 disables it.
	batchWindow time.Duration
	batchMax    int
	// tenantWeights maps tenant IDs to WFQ weights (see WithTenants);
	// unlisted tenants get weight 1.
	tenantWeights map[string]float64
	// shedWatermark is the queue depth at which admission control
	// starts refusing infer jobs; 0 disables shedding (and the
	// backpressure hint, which fires at half the watermark).
	shedWatermark int
	// obsv is the optional tracing + metrics bundle; nil disables
	// recording.
	obsv *Obs
	// next, when set by WithNextHop, turns this server into a middle
	// pipeline stage (see nexthop.go); mid[c] is the node segment
	// (c, next.cut] it executes before forwarding.
	next *nextHop
	mid  [][]int

	// schedMu guards lazy scheduler creation and Close.
	schedMu     sync.Mutex
	sched       *fleetScheduler
	schedClosed bool
}

// NewServer builds a server for the model. Per-connection concurrency
// defaults to the core count; tune it with WithWorkers.
func NewServer(m *engine.Model) *Server {
	g := m.Graph()
	units := profile.LineView(g)
	suffix := make([][]int, len(units))
	for cut := range units {
		var nodes []int
		for _, u := range units[cut+1:] {
			nodes = append(nodes, u.Nodes...)
		}
		suffix[cut] = nodes
	}
	return &Server{model: m, units: units, suffix: suffix, workers: goruntime.GOMAXPROCS(0)}
}

// WithWorkers bounds the server-wide worker pool to n concurrent
// inferences (n < 1 means 1, i.e. decode-ahead but serial execution).
// It returns s for chaining and must be called before serving.
func (s *Server) WithWorkers(n int) *Server {
	if n < 1 {
		n = 1
	}
	s.workers = n
	return s
}

// WithTenants sets the weighted-fair-queueing weights the fleet
// scheduler uses to arbitrate admitted jobs between tenants. Tenants
// not in the map (including DefaultTenant, unless listed) get weight
// 1; non-positive weights are ignored. Must be called before serving;
// returns s for chaining.
func (s *Server) WithTenants(weights map[string]float64) *Server {
	s.tenantWeights = weights
	return s
}

// WithShedWatermark enables load shedding: when the scheduler's queue
// depth reaches n, further infer jobs are answered immediately with a
// shed reply (Class -1, shed flag) instead of queueing, and from n/2
// onward every reply carries the backpressure hint flag. n <= 0
// disables both. Must be called before serving; returns s for
// chaining.
func (s *Server) WithShedWatermark(n int) *Server {
	if n < 0 {
		n = 0
	}
	s.shedWatermark = n
	return s
}

// WithBatching enables the cross-connection coalescer: decoded infer
// requests of the same cut — from any connection — wait up to window
// for companions (at most max per group) and execute as one batched
// suffix pass. Window 0 or max < 2 keeps the original job-at-a-time
// dispatch. Must be called before serving; returns s for chaining.
// Only line-view infer requests coalesce — general-plan (msgInferSet)
// requests always run solo, as their node sets need not match.
func (s *Server) WithBatching(window time.Duration, max int) *Server {
	if max < 1 {
		max = 1
	}
	s.batchWindow = window
	s.batchMax = max
	return s
}

// WithObs attaches a tracing + metrics bundle; must be called before
// serving. Returns s for chaining. The server records per-job spans
// (decode, queue-wait, cloud-compute, reply-write) and the pool
// metrics documented on Obs.
func (s *Server) WithObs(o *Obs) *Server {
	s.obsv = o
	return s
}

// acceptBackoffMax caps the retry delay after transient Accept errors.
const acceptBackoffMax = time.Second

// Serve accepts connections until the listener closes, handling each
// connection on its own goroutine. Transient accept errors (EMFILE
// under fd exhaustion, ECONNABORTED) are retried with a small
// exponential backoff instead of killing the whole server; Serve
// returns only on permanent errors such as net.ErrClosed.
func (s *Server) Serve(lis net.Listener) error {
	var delay time.Duration
	for {
		conn, err := lis.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return err
			}
			// net.Error.Temporary is deprecated for general use, but it
			// is still the only signal that distinguishes per-connection
			// accept failures from a dead listener (net/http's accept
			// loop does the same).
			var ne net.Error
			if errors.As(err, &ne) && ne.Temporary() { //nolint:staticcheck // see above
				if delay == 0 {
					delay = 5 * time.Millisecond
				} else if delay *= 2; delay > acceptBackoffMax {
					delay = acceptBackoffMax
				}
				time.Sleep(delay)
				continue
			}
			return err
		}
		delay = 0
		go func() {
			defer conn.Close()
			_ = s.HandleConn(conn)
		}()
	}
}

// scheduler lazily creates the server-wide fleet scheduler on the
// first connection; it returns nil once the server is closed.
func (s *Server) scheduler() *fleetScheduler {
	s.schedMu.Lock()
	defer s.schedMu.Unlock()
	if s.sched == nil && !s.schedClosed {
		s.sched = newFleetScheduler(s)
	}
	return s.sched
}

// Close drains and stops the fleet scheduler: no new jobs are
// admitted, every already-admitted job (queued, coalescing, or
// executing) still runs and gets its reply, then the worker pool
// exits. It does not close client connections or any listener — stop
// accepting first, then Close. Safe to call multiple times, from
// multiple goroutines, and on a server that never handled a
// connection.
func (s *Server) Close() {
	s.schedMu.Lock()
	s.schedClosed = true
	fs := s.sched
	s.schedMu.Unlock()
	if fs != nil {
		fs.shutdown()
	}
	if s.next != nil {
		s.next.close()
	}
}

// HandleConn processes requests on one connection until EOF. The read
// loop owns the socket's read side and admits decoded jobs into the
// fleet scheduler; executions run on the server-wide worker pool and
// emit replies under this connection's write mutex (whole frames,
// flushed per reply, so frames never interleave). Each inference reply
// carries the server's measured compute time and queue wait so the
// client can isolate the communication delay (the paper's td − tc).
// The first error owned by this connection — decode, execution of its
// jobs, or write — stops the connection; its jobs already admitted
// still drain (their replies fail harmlessly against the closed
// transport), and other connections are unaffected. When the transport
// is closable it is closed on failure so a read loop blocked in
// ReadByte on an idle client unblocks instead of pinning the goroutine
// forever.
func (s *Server) HandleConn(conn io.ReadWriter) error {
	fs := s.scheduler()
	if fs == nil {
		return errServerClosed
	}
	r := bufio.NewReaderSize(conn, 1<<16)
	w := bufio.NewWriterSize(conn, 1<<16)
	closer, _ := conn.(io.Closer)

	var (
		writeMu  sync.Mutex
		errOnce  sync.Once
		firstErr error
		stop     = make(chan struct{})
	)
	cc := &connCtx{tenant: DefaultTenant}
	cc.fail = func(err error) {
		errOnce.Do(func() {
			firstErr = err
			close(stop)
			// A worker failure must also surface to a client that is
			// idle (all requests sent, waiting on replies): closing the
			// transport both unblocks our reader and drops the peer.
			if closer != nil {
				closer.Close()
			}
		})
	}
	cc.reply = func(rep *inferReply) error {
		writeMu.Lock()
		start := time.Now()
		err := writeInferReply(w, rep)
		if err == nil {
			err = w.Flush()
		}
		writeMu.Unlock()
		if err != nil {
			return err
		}
		if o := s.obsv; o != nil {
			o.span(TrackServer, SpanReplyWrite, int(rep.JobID), start, time.Now())
			o.ServerJobs.Inc()
			o.ServerTxBytes.Add(replyWireBytes)
		}
		return nil
	}

	// admit registers the job with the connection before handing it to
	// the scheduler; a refusal (server closing) is a connection error.
	admit := func(pj pendingJob) bool {
		cc.pending.Add(1)
		if !fs.admit(pj) {
			cc.pending.Done()
			cc.fail(errServerClosed)
			return false
		}
		return true
	}

readLoop:
	for {
		select {
		case <-stop:
			break readLoop
		default:
		}
		typ, err := r.ReadByte()
		if err != nil {
			if err != io.EOF {
				cc.fail(err)
			}
			break readLoop
		}
		switch typ {
		case msgHello:
			tenant, err := readHelloBody(r)
			if err != nil {
				cc.fail(err)
				break readLoop
			}
			// Jobs admitted before the hello keep the default tenant;
			// clients that care send it first (Client does).
			cc.tenant = tenant
		case msgInfer:
			decodeStart := time.Now()
			req, err := readInferRequestBody(r)
			if err != nil {
				cc.fail(err)
				break readLoop
			}
			recv := time.Now()
			if o := s.obsv; o != nil {
				o.span(TrackServer, SpanDecode, int(req.JobID), decodeStart, recv)
				o.ServerRxBytes.Add(int64(reqWireBytes(req)))
				o.TenantRxBytes.With(cc.tenant).Add(int64(reqWireBytes(req)))
			}
			if req.Quant != nil {
				// Expand the int8 codes once at decode time; everything
				// downstream — the coalescer included — sees the same
				// float32 boundary it always has.
				req.Tensor, req.Quant = req.Quant.Dequantize(), nil
			}
			if !admit(pendingJob{conn: cc, tenant: cc.tenant, req: req, recv: recv}) {
				break readLoop
			}
		case msgInferSet:
			decodeStart := time.Now()
			req, err := readInferSetRequestBody(r)
			if err != nil {
				cc.fail(err)
				break readLoop
			}
			recv := time.Now()
			if o := s.obsv; o != nil {
				o.span(TrackServer, SpanDecode, int(req.JobID), decodeStart, recv)
			}
			if !admit(pendingJob{conn: cc, tenant: cc.tenant, set: req, recv: recv}) {
				break readLoop
			}
		case msgPing:
			// Calibration pings are answered inline: they measure the
			// link, not the pool.
			if _, err := readPingBody(r); err != nil {
				cc.fail(err)
				break readLoop
			}
			writeMu.Lock()
			err := writePong(w)
			if err == nil {
				err = w.Flush()
			}
			writeMu.Unlock()
			if err != nil {
				cc.fail(err)
				break readLoop
			}
		default:
			cc.fail(fmt.Errorf("runtime: unknown message type %d", typ))
			break readLoop
		}
	}
	// Every admitted job must reply or fail before the connection
	// returns: the scheduler keeps running (it is server-wide), so this
	// wait is bounded by the queue drain, and on the failure path the
	// remaining replies fail fast against the closed transport.
	cc.pending.Wait()
	return firstErr
}

// runJob executes one dispatched inference on a worker, recording the
// pool queue wait (decode completion to worker pickup), occupancy, and
// the compute span, and stamping the reply's QueueNs metadata so the
// client can tell a saturated pool apart from a degraded link.
func (s *Server) runJob(jobID int, recv time.Time, infer func() (*inferReply, error)) (*inferReply, error) {
	start := time.Now()
	o := s.obsv
	o.span(TrackServer, SpanQueueWait, jobID, recv, start)
	if o != nil {
		o.WorkersBusy.Add(1)
	}
	rep, err := infer()
	end := time.Now()
	if o != nil {
		o.WorkersBusy.Add(-1)
	}
	if err != nil {
		return nil, err
	}
	rep.QueueNs = start.Sub(recv).Nanoseconds()
	o.span(TrackServer, SpanCloudCompute, jobID, start, end)
	return rep, nil
}

// infer resumes the model from the request's cut and returns the
// predicted class. On a forwarding stage (WithNextHop), requests cut
// before the handoff boundary run the middle segment here and the rest
// downstream; everything else completes locally.
func (s *Server) infer(req *inferRequest) (*inferReply, error) {
	cut := int(req.Cut)
	if cut < 0 || cut >= len(s.units) {
		return nil, fmt.Errorf("runtime: cut %d out of range [0,%d)", cut, len(s.units))
	}
	if s.next != nil && cut < s.next.cut {
		return s.inferForward(req)
	}
	boundary := s.units[cut].Exit
	wantShape := s.model.Graph().Node(boundary).OutShape
	if !req.Tensor.Shape.Equal(wantShape) {
		return nil, fmt.Errorf("runtime: boundary tensor %v, cut %d wants %v",
			req.Tensor.Shape, cut, wantShape)
	}
	start := time.Now()
	// Concurrent workers and connections share the model: its arena is
	// thread-safe, and Execute's liveness tracking is per call. The
	// wire tensor seeds acts as a caller-owned buffer the arena never
	// recycles; the sink survives because it has no consumers.
	acts := map[int]*tensor.Tensor{boundary: req.Tensor}
	if err := s.model.Execute(acts, nil, s.suffix[cut]); err != nil {
		return nil, err
	}
	out := acts[s.model.Graph().Sink()]
	return &inferReply{
		JobID:   req.JobID,
		Class:   int32(engine.Argmax(out)),
		CloudNs: time.Since(start).Nanoseconds(),
	}, nil
}

// inferBatch packs the group's valid boundary tensors and resumes the
// model once at batch size len(valid). Replies carry the per-image
// argmax; outputs are bit-identical to running each job solo (the
// engine's batched kernels share the batch-1 accumulation order).
// Members that fail validation come back in invalid, each with its own
// error, so the caller can fail exactly the owning connections; a
// non-nil execErr means the shared suffix pass itself failed and no
// replies exist.
func (s *Server) inferBatch(jobs []pendingJob, start time.Time) (valid []pendingJob, invalid []invalidJob, reps []*inferReply, execErr error) {
	cut := int(jobs[0].req.Cut)
	if cut < 0 || cut >= len(s.units) {
		err := fmt.Errorf("runtime: cut %d out of range [0,%d)", cut, len(s.units))
		for _, pj := range jobs {
			invalid = append(invalid, invalidJob{pj: pj, err: err})
		}
		return nil, invalid, nil, nil
	}
	boundary := s.units[cut].Exit
	wantShape := s.model.Graph().Node(boundary).OutShape
	valid = make([]pendingJob, 0, len(jobs))
	for _, pj := range jobs {
		if !pj.req.Tensor.Shape.Equal(wantShape) {
			invalid = append(invalid, invalidJob{pj: pj, err: fmt.Errorf(
				"runtime: job %d boundary tensor %v, cut %d wants %v",
				pj.req.JobID, pj.req.Tensor.Shape, cut, wantShape)})
			continue
		}
		valid = append(valid, pj)
	}
	if len(valid) == 0 {
		return nil, invalid, nil, nil
	}
	n := len(valid)
	tensors := make([]*tensor.Tensor, n)
	for i, pj := range valid {
		tensors[i] = pj.req.Tensor
	}
	packed, err := engine.PackBatch(tensors)
	if err != nil {
		return valid, invalid, nil, err
	}
	computeStart := time.Now()
	acts := map[int]*tensor.Tensor{boundary: packed}
	if err := s.model.ExecuteBatch(acts, n, nil, s.suffix[cut]); err != nil {
		return valid, invalid, nil, err
	}
	classes := engine.ArgmaxBatch(acts[s.model.Graph().Sink()], n)
	cloudNs := time.Since(computeStart).Nanoseconds()
	reps = make([]*inferReply, n)
	for i, pj := range valid {
		reps[i] = &inferReply{
			JobID:   pj.req.JobID,
			Class:   int32(classes[i]),
			CloudNs: cloudNs,
			QueueNs: start.Sub(pj.recv).Nanoseconds(),
		}
	}
	return valid, invalid, reps, nil
}
