//go:build race

package runtime

// raceEnabled reports whether the race detector instruments this
// build; timing-convergence tests skip their assertions under it.
const raceEnabled = true
