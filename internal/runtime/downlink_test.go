package runtime

import (
	"math"
	"net"
	"testing"

	"dnnjps/internal/engine"
	"dnnjps/internal/netsim"
	"dnnjps/internal/profile"
	"dnnjps/internal/tensor"
)

// The profile layer prices the downlink leg of a cut with its own copy
// of the reply frame size (it cannot import this package). The two
// constants must never drift.
func TestReplyBytesPinnedToProtocol(t *testing.T) {
	if profile.ReplyBytes != ReplyWireBytes {
		t.Fatalf("profile.ReplyBytes = %d, runtime.ReplyWireBytes = %d: reply pricing drifted from the wire format",
			profile.ReplyBytes, ReplyWireBytes)
	}
}

// On a channel with a modeled downlink, every offloaded cut's G must
// carry the reply transit on top of the upload — the term that stops
// symmetric low-band planning from treating replies as free.
func TestCurvePricesReplyOnSymmetricChannel(t *testing.T) {
	m := testModel(t)
	up := netsim.Channel{Name: "asym", UplinkMbps: 1.1, SetupMs: 60}
	sym := up.WithDownlink(1.1)
	asym := profile.BuildCurve(m.Graph(), profile.RaspberryPi4(), profile.CloudGPU(), up, tensor.Float32)
	got := profile.BuildCurve(m.Graph(), profile.RaspberryPi4(), profile.CloudGPU(), sym, tensor.Float32)
	wantExtra := sym.RxMs(profile.ReplyBytes)
	if wantExtra <= 0 {
		t.Fatal("symmetric channel must price the reply")
	}
	for i := 0; i < got.Len()-1; i++ {
		if diff := got.G[i] - asym.G[i]; math.Abs(diff-wantExtra) > 1e-9 {
			t.Errorf("cut %d: G diff %g, want reply transit %g", i, diff, wantExtra)
		}
	}
	if got.G[got.Len()-1] != 0 {
		t.Error("local-only cut must stay free of communication")
	}
	// Reprice must apply the same term.
	rep := asym.Reprice(sym)
	for i := 0; i < rep.Len(); i++ {
		if rep.G[i] != got.G[i] {
			t.Errorf("cut %d: Reprice G %g, BuildCurve G %g", i, rep.G[i], got.G[i])
		}
	}
}

// End to end over a symmetric low-bandwidth channel: replies are paced
// through the shaper's read side and every class still matches a local
// forward.
func TestRunPlanOverSymmetricChannel(t *testing.T) {
	m := testModel(t)
	ch := netsim.Channel{Name: "sym", UplinkMbps: 2, SetupMs: 5}.WithDownlink(2)
	cConn, sConn := net.Pipe()
	defer cConn.Close()
	srv := NewServer(m).WithWorkers(2)
	t.Cleanup(srv.Close)
	go func() { defer sConn.Close(); _ = srv.HandleConn(sConn) }()
	cl := NewClient(cConn, m, ch, 1e-6)

	const n = 8
	plan := uniformPlan(n, 1)
	inputs := make([]*tensor.Tensor, n)
	for i := range inputs {
		inputs[i] = input(i)
	}
	rep, err := cl.RunPlan(plan, inputs)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Results {
		want, _ := m.Forward(inputs[r.JobID].Clone())
		if r.Class != engine.Argmax(want) {
			t.Errorf("job %d: class %d, want %d", r.JobID, r.Class, engine.Argmax(want))
		}
	}
}
