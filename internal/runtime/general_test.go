package runtime

import (
	"bytes"
	"net"
	"testing"

	"dnnjps/internal/core"
	"dnnjps/internal/dag"
	"dnnjps/internal/engine"
	"dnnjps/internal/netsim"
	"dnnjps/internal/nn"
	"dnnjps/internal/profile"
	"dnnjps/internal/tensor"
)

// branchedModel has two parallel branches, so cut sets can require
// shipping two boundary tensors at once.
func branchedModel(t *testing.T) *engine.Model {
	t.Helper()
	g := dag.New("branched")
	in := g.Add(&nn.Input{LayerName: "input", Shape: tensor.NewCHW(3, 16, 16)})
	stem := g.Add(&nn.Conv2D{LayerName: "stem", OutC: 8, KH: 3, KW: 3, Stride: 1, Pad: 1, Bias: true}, in)
	a1 := g.Add(&nn.Conv2D{LayerName: "a1", OutC: 8, KH: 3, KW: 3, Stride: 1, Pad: 1, Bias: true}, stem)
	a2 := g.Add(nn.NewActivation("a2", nn.ReLU), a1)
	b1 := g.Add(&nn.Conv2D{LayerName: "b1", OutC: 8, KH: 1, KW: 1, Stride: 1, Bias: true}, stem)
	j := g.Add(&nn.Add{LayerName: "join"}, a2, b1)
	gp := g.Add(&nn.GlobalAvgPool2D{LayerName: "gap"}, j)
	fc := g.Add(&nn.Dense{LayerName: "fc", Out: 6, Bias: true}, gp)
	g.Add(nn.NewSoftmax("softmax"), fc)
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	return engine.Load(g, 77)
}

func startGeneralPair(t *testing.T, m *engine.Model) *GeneralClient {
	t.Helper()
	cConn, sConn := net.Pipe()
	srv := NewServer(m)
	t.Cleanup(srv.Close)
	go func() { defer sConn.Close(); _ = srv.HandleConn(sConn) }()
	t.Cleanup(func() { cConn.Close() })
	return NewGeneralClient(cConn, m, netsim.WiFi, 1e-6)
}

func TestGeneralClientMultiBoundaryCut(t *testing.T) {
	m := branchedModel(t)
	cl := startGeneralPair(t, m)
	g := m.Graph()
	in := input(5)
	want, err := m.Forward(in.Clone())
	if err != nil {
		t.Fatal(err)
	}
	wantClass := engine.Argmax(want)

	a2, _ := g.NodeByName("a2")
	b1, _ := g.NodeByName("b1")
	stem, _ := g.NodeByName("stem")
	inN, _ := g.NodeByName("input")
	sink := g.Sink()

	cases := []struct {
		name string
		cuts []int
	}{
		{"two-branch boundary", []int{a2.ID, b1.ID}},
		{"one branch deep, one shallow", []int{a2.ID, stem.ID}},
		{"cloud-only", []int{inN.ID}},
		{"stem only", []int{stem.ID}},
		{"fully local", []int{sink}},
	}
	for _, c := range cases {
		res, err := cl.RunJob(3, c.cuts, in.Clone())
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if res.Class != wantClass {
			t.Errorf("%s: class %d, want %d", c.name, res.Class, wantClass)
		}
	}
}

func TestGeneralClientRejectsEmptyCutSet(t *testing.T) {
	m := branchedModel(t)
	cl := startGeneralPair(t, m)
	if _, err := cl.RunJob(0, nil, input(0)); err == nil {
		t.Error("empty cut set must error")
	}
}

func TestGeneralClientRunsPlanGeneralCuts(t *testing.T) {
	// The cut sets an Algorithm 3 plan emits execute end to end.
	m := branchedModel(t)
	g := m.Graph()
	cl := startGeneralPair(t, m)
	pi, gpu := profile.RaspberryPi4(), profile.CloudGPU()
	gp, err := core.PlanGeneral(g, pi, gpu, netsim.WiFi, tensor.Float32, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	in := input(9)
	want, _ := m.Forward(in.Clone())
	for job, cuts := range gp.CutNodes {
		res, err := cl.RunJob(job, cuts, in.Clone())
		if err != nil {
			t.Fatalf("job %d cuts %v: %v", job, cuts, err)
		}
		if res.Class != engine.Argmax(want) {
			t.Errorf("job %d: class %d, want %d", job, res.Class, engine.Argmax(want))
		}
	}
}

func TestInferSetRejectsGarbage(t *testing.T) {
	m := branchedModel(t)
	srv := NewServer(m)
	t.Cleanup(srv.Close)
	// Zero boundary count.
	var buf bytes.Buffer
	buf.WriteByte(msgInferSet)
	buf.Write([]byte{1, 0, 0, 0}) // job id
	buf.Write([]byte{0, 0})       // count 0
	if err := srv.HandleConn(&rwBuffer{in: bytes.NewReader(buf.Bytes())}); err == nil {
		t.Error("zero boundary count must error")
	}
	// Node out of range.
	if _, err := srv.inferSet(&inferSetRequest{
		JobID: 1, Nodes: []int32{999}, Tensors: []*tensor.Tensor{tensor.New(tensor.NewVec(1))},
	}); err == nil {
		t.Error("out-of-range node must error")
	}
	// Wrong tensor shape.
	stem, _ := m.Graph().NodeByName("stem")
	if _, err := srv.inferSet(&inferSetRequest{
		JobID: 1, Nodes: []int32{int32(stem.ID)}, Tensors: []*tensor.Tensor{tensor.New(tensor.NewVec(1))},
	}); err == nil {
		t.Error("wrong boundary shape must error")
	}
}
