package runtime

import (
	"bytes"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"dnnjps/internal/netsim"
	"dnnjps/internal/obs"
	"dnnjps/internal/profile"
	"dnnjps/internal/tensor"
)

// Fleet scheduler tests: cross-connection batching and reply routing,
// weighted fair queueing, admission control, and the graceful drain.
// The routing and isolation tests run real goroutine-per-client traffic
// and are the race-detector coverage for the server-wide scheduler.

// dialFleet wires one client connection against the shared server.
func dialFleet(t *testing.T, srv *Server) net.Conn {
	t.Helper()
	cConn, sConn := net.Pipe()
	go func() { defer sConn.Close(); _ = srv.HandleConn(sConn) }()
	t.Cleanup(func() { cConn.Close() })
	return cConn
}

// TestFleetCrossConnectionBatching: eight clients on independent
// connections each submit ONE job with the SAME JobID at the same cut.
// Any batch group larger than one is therefore necessarily
// cross-connection, and a reply routed by JobID instead of by owning
// connection would misclassify some client. Run under -race this also
// exercises the admit/dispatch/coalesce paths from eight concurrent
// read loops.
func TestFleetCrossConnectionBatching(t *testing.T) {
	m := testModel(t)
	o := NewObs(obs.NewTracer(0), obs.NewMetrics())
	srv := NewServer(m).WithWorkers(4).WithBatching(200*time.Millisecond, 8).WithObs(o)
	t.Cleanup(srv.Close)

	const clients = 8
	const cut = 1
	boundaries := make([]*tensor.Tensor, clients)
	want := make([]int, clients)
	for i := range boundaries {
		boundaries[i], want[i] = boundaryAt(t, m, cut, i*5+1)
	}

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	got := make([]int, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cl := NewClient(dialFleet(t, srv), m, netsim.WiFi, 1e-6)
			res := &JobResult{JobID: 0} // every client reuses job ID 0
			c, err := cl.enqueueInfer(res, cut, boundaries[i])
			if err != nil {
				errs <- err
				return
			}
			if err := cl.await(c); err != nil {
				errs <- err
				return
			}
			got[i] = res.Class
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("client %d: class %d, want %d — reply crossed connections", i, got[i], want[i])
		}
	}
	if o.BatchedJobs.Value() < 2 {
		t.Errorf("BatchedJobs = %d, want >= 2: one-job-per-connection traffic can only batch across connections",
			o.BatchedJobs.Value())
	}
}

// TestFleetPartialFailureIsolation: two clients share one batch group;
// the member with a garbage boundary must fail ONLY its own
// connection, after the valid member's reply has been written.
func TestFleetPartialFailureIsolation(t *testing.T) {
	m := testModel(t)
	srv := NewServer(m).WithWorkers(2).WithBatching(150*time.Millisecond, 2)
	t.Cleanup(srv.Close)

	const cut = 1
	good, wantGood := boundaryAt(t, m, cut, 7)
	clA := NewClient(dialFleet(t, srv), m, netsim.WiFi, 1e-6)
	clB := NewClient(dialFleet(t, srv), m, netsim.WiFi, 1e-6)

	resA := &JobResult{JobID: 0}
	cA, err := clA.enqueueInfer(resA, cut, good)
	if err != nil {
		t.Fatal(err)
	}
	resB := &JobResult{JobID: 0}
	cB, err := clB.enqueueInfer(resB, cut, tensor.New(tensor.NewCHW(1, 2, 2)))
	if err != nil {
		t.Fatal(err)
	}

	if err := clA.await(cA); err != nil {
		t.Fatalf("valid member must survive another connection's bad job: %v", err)
	}
	if resA.Class != wantGood {
		t.Errorf("class %d, want %d", resA.Class, wantGood)
	}
	if err := clB.await(cB); err == nil {
		t.Fatal("invalid member must fail")
	}
	if clB.Err() == nil {
		t.Fatal("owning connection must record the error")
	}
	if clA.Err() != nil {
		t.Fatalf("uninvolved connection failed: %v", clA.Err())
	}
	// The scheduler must still be serving: a follow-up job on A works.
	b2, want2 := boundaryAt(t, m, cut, 11)
	res2 := &JobResult{JobID: 1}
	c2, err := clA.enqueueInfer(res2, cut, b2)
	if err != nil {
		t.Fatal(err)
	}
	if err := clA.await(c2); err != nil {
		t.Fatalf("scheduler dead after partial group failure: %v", err)
	}
	if res2.Class != want2 {
		t.Errorf("follow-up class %d, want %d", res2.Class, want2)
	}
}

// TestFleetWFQOrder drives the scheduler's queue discipline directly
// (no goroutines): with weights 2:1 and exact power-of-two strides,
// the pop order is fully deterministic and must interleave 2 gold per
// bronze, starting from the name tie-break at pass 0.
func TestFleetWFQOrder(t *testing.T) {
	srv := NewServer(testModel(t)).WithTenants(map[string]float64{"gold": 2})
	fs := &fleetScheduler{s: srv, tenants: map[string]*tenantQueue{}}
	fs.cond = sync.NewCond(&fs.mu)
	cc := &connCtx{}
	for i := 0; i < 8; i++ {
		fs.admit(pendingJob{conn: cc, tenant: "gold", req: &inferRequest{JobID: uint32(i)}})
	}
	for i := 0; i < 4; i++ {
		fs.admit(pendingJob{conn: cc, tenant: "bronze", req: &inferRequest{JobID: uint32(100 + i)}})
	}
	wantTenants := []string{
		"bronze", "gold", "gold",
		"bronze", "gold", "gold",
		"bronze", "gold", "gold",
		"bronze", "gold", "gold",
	}
	fs.mu.Lock()
	for i, want := range wantTenants {
		pj := fs.popLocked()
		if pj.tenant != want {
			t.Fatalf("pop %d: tenant %q, want %q", i, pj.tenant, want)
		}
	}
	if fs.queued != 0 {
		t.Errorf("queued = %d after full drain, want 0", fs.queued)
	}
	fs.mu.Unlock()
}

// TestFleetShedAdmission drives admission control directly: jobs past
// the watermark get an immediate shed reply, general-plan jobs are
// never shed, and the backpressure hint fires at half the watermark.
func TestFleetShedAdmission(t *testing.T) {
	srv := NewServer(testModel(t)).WithShedWatermark(2)
	fs := &fleetScheduler{s: srv, tenants: map[string]*tenantQueue{}}
	fs.cond = sync.NewCond(&fs.mu)

	var mu sync.Mutex
	var replies []*inferReply
	cc := &connCtx{
		reply: func(r *inferReply) error {
			mu.Lock()
			replies = append(replies, r)
			mu.Unlock()
			return nil
		},
		fail: func(error) {},
	}
	admit := func(pj pendingJob) {
		pj.conn.pending.Add(1)
		if !fs.admit(pj) {
			t.Fatal("admit refused on an open scheduler")
		}
	}

	if fs.hintFlags() != 0 {
		t.Error("backpressure hint set on an empty queue")
	}
	admit(pendingJob{conn: cc, tenant: DefaultTenant, req: &inferRequest{JobID: 1}})
	if fs.hintFlags() != replyFlagBackpressure {
		t.Error("hint must fire at half the watermark (depth 1, watermark 2)")
	}
	admit(pendingJob{conn: cc, tenant: DefaultTenant, req: &inferRequest{JobID: 2}})
	if len(replies) != 0 {
		t.Fatalf("%d replies before the watermark, want 0", len(replies))
	}

	// Third infer job: at the watermark, must shed.
	admit(pendingJob{conn: cc, tenant: DefaultTenant, req: &inferRequest{JobID: 3}})
	if len(replies) != 1 {
		t.Fatalf("%d shed replies, want 1", len(replies))
	}
	rep := replies[0]
	if rep.JobID != 3 || rep.Class != -1 {
		t.Errorf("shed reply JobID=%d Class=%d, want 3/-1", rep.JobID, rep.Class)
	}
	if rep.Flags&replyFlagShed == 0 || rep.Flags&replyFlagBackpressure == 0 {
		t.Errorf("shed reply flags %08b, want shed|backpressure", rep.Flags)
	}

	// General-plan jobs are never shed: no local fallback exists.
	admit(pendingJob{conn: cc, tenant: DefaultTenant, set: &inferSetRequest{JobID: 4}})
	if len(replies) != 1 {
		t.Fatal("set job was shed")
	}
	if fs.queued != 3 {
		t.Errorf("queued = %d, want 3 (two infer + one set)", fs.queued)
	}
}

// TestServerCloseDrainsCoalescer: jobs sitting in a half-filled group
// behind a long window must still execute and reply when the server is
// closed — the graceful-drain contract jpsserve's SIGTERM path relies
// on — and the drain must beat the window by a wide margin.
func TestServerCloseDrainsCoalescer(t *testing.T) {
	m := testModel(t)
	srv := NewServer(m).WithWorkers(2).WithBatching(10*time.Second, 8)

	const cut = 1
	b0, want0 := boundaryAt(t, m, cut, 2)
	b1, want1 := boundaryAt(t, m, cut, 9)
	cl := NewClient(dialFleet(t, srv), m, netsim.WiFi, 1e-6)
	res0 := &JobResult{JobID: 0}
	c0, err := cl.enqueueInfer(res0, cut, b0)
	if err != nil {
		t.Fatal(err)
	}
	res1 := &JobResult{JobID: 1}
	c1, err := cl.enqueueInfer(res1, cut, b1)
	if err != nil {
		t.Fatal(err)
	}
	// Let both jobs reach the coalescer, then drain.
	time.Sleep(100 * time.Millisecond)
	start := time.Now()
	srv.Close()
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("Close took %v: drained by window expiry, not by the drain path", d)
	}
	if err := cl.await(c0); err != nil {
		t.Fatalf("job 0 lost in drain: %v", err)
	}
	if err := cl.await(c1); err != nil {
		t.Fatalf("job 1 lost in drain: %v", err)
	}
	if res0.Class != want0 || res1.Class != want1 {
		t.Errorf("classes %d/%d, want %d/%d", res0.Class, res1.Class, want0, want1)
	}
	// A closed server refuses new connections' work.
	cl2 := NewClient(dialFleet(t, srv), m, netsim.WiFi, 1e-6)
	if _, err := cl2.RunJob(0, cut, input(1)); err == nil {
		t.Fatal("job on a closed server must fail")
	}
}

// TestFleetShedAndHintReplan is the end-to-end load-shedding story: a
// wedged worker pool (a client that does not read its reply) forces
// the queue past the watermark, so the runner's jobs come back shed
// with backpressure flags; the runner must finish every shed job on
// the mobile engine, trigger the hint-driven re-plan, and still
// classify everything correctly once the wedge lifts.
func TestFleetShedAndHintReplan(t *testing.T) {
	m := pipeModel(t)
	ch := netsim.Channel{Name: "pipe", UplinkMbps: 8, SetupMs: 0}
	srv := NewServer(m).WithWorkers(1).WithShedWatermark(2)
	t.Cleanup(srv.Close)

	// Wedge: one valid job whose reply is never read, so the single
	// worker blocks flushing it and everything behind piles up.
	const cut = 3
	units := profile.LineView(m.Graph())
	var prefix []int
	for _, u := range units[:cut+1] {
		prefix = append(prefix, u.Nodes...)
	}
	acts := map[int]*tensor.Tensor{}
	if err := m.Execute(acts, pipeInput(0), prefix); err != nil {
		t.Fatal(err)
	}
	wedgeBoundary := acts[units[cut].Exit].Clone()
	wedge := dialFleet(t, srv)
	var frame bytes.Buffer
	if err := writeInferRequest(&frame, &inferRequest{JobID: 999, Cut: cut, Tensor: wedgeBoundary}); err != nil {
		t.Fatal(err)
	}
	if _, err := wedge.Write(frame.Bytes()); err != nil {
		t.Fatal(err)
	}
	released := make(chan struct{})
	go func() {
		defer close(released)
		time.Sleep(400 * time.Millisecond)
		_, _ = io.Copy(io.Discard, wedge) // unblock the worker; drain until test cleanup closes the pipe
	}()

	dial := func() (net.Conn, error) {
		cConn, sConn := net.Pipe()
		go func() { defer sConn.Close(); _ = srv.HandleConn(sConn) }()
		return cConn, nil
	}
	curve := profile.BuildCurve(m.Graph(), profile.RaspberryPi4(), profile.CloudGPU(), ch, tensor.Float32)
	r := NewRunner(dial, m, ch, 1e-6, RunOptions{
		JobTimeout:            10 * time.Second,
		BackoffBase:           time.Millisecond,
		BackoffMax:            2 * time.Millisecond,
		Window:                6,
		BackpressureThreshold: 0.2,
	}).WithCurve(curve)

	const n = 18
	plan := uniformPlan(n, cut)
	inputs := make([]*tensor.Tensor, n)
	for i := range inputs {
		inputs[i] = pipeInput(i)
	}
	rep, err := r.RunPlan(plan, inputs)
	if err != nil {
		t.Fatal(err)
	}
	checkComplete(t, rep, wantClasses(t, m, inputs))
	if rep.ShedJobs == 0 {
		t.Error("a wedged single-worker pool behind watermark 2 must shed jobs")
	}
	if rep.LocalFallbackJobs < rep.ShedJobs {
		t.Errorf("LocalFallbackJobs = %d < ShedJobs = %d: shed jobs must finish locally",
			rep.LocalFallbackJobs, rep.ShedJobs)
	}
	if rep.HintReplans == 0 {
		t.Error("backpressure-flagged replies above the threshold must trigger a hint re-plan")
	}
	for _, res := range rep.Results {
		if res == nil {
			t.Fatal("missing result")
		}
	}
}

// TestHelloCodec pins the handshake frame: round trip, length
// validation on both sides, and CRC rejection of corrupted frames.
func TestHelloCodec(t *testing.T) {
	for _, tenant := range []string{"a", "tenant-7", strings.Repeat("x", maxTenantLen)} {
		var buf bytes.Buffer
		if err := writeHello(&buf, tenant); err != nil {
			t.Fatalf("writeHello(%q): %v", tenant, err)
		}
		if buf.Bytes()[0] != msgHello {
			t.Fatalf("frame type %d, want %d", buf.Bytes()[0], msgHello)
		}
		got, err := readHelloBody(bytes.NewReader(buf.Bytes()[1:]))
		if err != nil {
			t.Fatalf("readHelloBody(%q): %v", tenant, err)
		}
		if got != tenant {
			t.Errorf("round trip %q -> %q", tenant, got)
		}
	}
	if err := writeHello(io.Discard, ""); err == nil {
		t.Error("empty tenant must be rejected")
	}
	if err := writeHello(io.Discard, strings.Repeat("x", maxTenantLen+1)); err == nil {
		t.Error("oversized tenant must be rejected")
	}
	var buf bytes.Buffer
	if err := writeHello(&buf, "tenant-7"); err != nil {
		t.Fatal(err)
	}
	body := append([]byte(nil), buf.Bytes()[1:]...)
	body[2] ^= 0x40 // flip a tenant byte under the CRC
	if _, err := readHelloBody(bytes.NewReader(body)); err == nil {
		t.Error("corrupted hello must fail the checksum")
	}
}

// TestClientSendsTenant: a tenant-configured client's traffic lands in
// its tenant's counters, and legacy (tenant-less) clients land in the
// default tenant.
func TestClientSendsTenant(t *testing.T) {
	m := testModel(t)
	o := NewObs(obs.NewTracer(0), obs.NewMetrics())
	srv := NewServer(m).WithWorkers(2).WithObs(o)
	t.Cleanup(srv.Close)

	cl := NewClient(dialFleet(t, srv), m, netsim.WiFi, 1e-6).WithTenant("phone-a")
	if _, err := cl.RunJob(0, 1, input(3)); err != nil {
		t.Fatal(err)
	}
	legacy := NewClient(dialFleet(t, srv), m, netsim.WiFi, 1e-6)
	if _, err := legacy.RunJob(0, 1, input(4)); err != nil {
		t.Fatal(err)
	}
	// The tenant counter lands after the reply is written, so the
	// client can observe its result a beat before the increment.
	var jobs map[string]int64
	for deadline := time.Now().Add(2 * time.Second); ; {
		jobs = o.TenantJobs.Values()
		if jobs["phone-a"] == 1 && jobs[DefaultTenant] == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("tenant jobs = %v, want phone-a:1 %s:1", jobs, DefaultTenant)
		}
		time.Sleep(time.Millisecond)
	}
	rx := o.TenantRxBytes.Values()
	if rx["phone-a"] <= 0 {
		t.Errorf("tenant phone-a rx bytes = %d, want > 0", rx["phone-a"])
	}
}
