package runtime

import (
	"bytes"
	"testing"

	"dnnjps/internal/tensor"
)

// FuzzReadTensor drives the wire decoder with arbitrary bytes: it must
// never panic and never allocate absurd buffers; on valid frames it
// must round-trip. Seed corpus covers the interesting shapes; run
// `go test -fuzz=FuzzReadTensor ./internal/runtime` for a deep fuzz.
func FuzzReadTensor(f *testing.F) {
	// A valid 1-D tensor frame.
	var valid bytes.Buffer
	_ = writeTensor(&valid, mustVec(3, 1, 2, 3))
	f.Add(valid.Bytes())
	// A valid quantized frame (flagged rank byte + affine mapping).
	var qvalid bytes.Buffer
	_, _ = writeQTensorSum(&qvalid, mustQVec(3, 1, -2, 3), 0)
	f.Add(qvalid.Bytes())
	// Truncations and garbage.
	f.Add(valid.Bytes()[:3])
	f.Add(qvalid.Bytes()[:4])
	f.Add([]byte{0})
	f.Add([]byte{9, 1, 2, 3})
	f.Add([]byte{1, 0xFF, 0xFF, 0xFF, 0x7F})          // giant dim
	f.Add([]byte{0x81, 0, 0, 0x80, 0x7F, 0, 1, 0, 0}) // quant frame, +Inf scale
	f.Add([]byte{0x80})                               // quant flag with rank 0
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		tt, qt, err := readTensor(bytes.NewReader(data))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		// Successful parses must be internally consistent and re-encode.
		var buf bytes.Buffer
		if qt != nil {
			if qt.Shape.Elems() != len(qt.Data) {
				t.Fatalf("decoded qtensor inconsistent: %v vs %d", qt.Shape, len(qt.Data))
			}
			if _, err := writeQTensorSum(&buf, qt, 0); err != nil {
				t.Fatalf("re-encode quant: %v", err)
			}
			return
		}
		if tt.Shape.Elems() != len(tt.Data) {
			t.Fatalf("decoded tensor inconsistent: %v vs %d", tt.Shape, len(tt.Data))
		}
		if err := writeTensor(&buf, tt); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
	})
}

// FuzzHandleConn drives the whole server loop with arbitrary frames.
func FuzzHandleConn(f *testing.F) {
	var infer bytes.Buffer
	_ = writeInferRequest(&infer, &inferRequest{JobID: 1, Cut: 0, Tensor: mustVec(2, 1, 2)})
	f.Add(infer.Bytes())
	var qinfer bytes.Buffer
	_ = writeInferRequest(&qinfer, &inferRequest{JobID: 3, Cut: 0, Quant: mustQVec(2, 5, -5)})
	f.Add(qinfer.Bytes())
	var ping bytes.Buffer
	_ = writePing(&ping, 8)
	f.Add(ping.Bytes())
	var set bytes.Buffer
	_ = writeInferSetRequest(&set, &inferSetRequest{
		JobID:   2,
		Nodes:   []int32{0},
		Tensors: []*tensor.Tensor{mustVec(2, 1, 2)},
	})
	f.Add(set.Bytes())
	f.Add([]byte{0xAB, 0xCD})

	f.Fuzz(func(t *testing.T, data []byte) {
		srv := NewServer(testModel(t))
		t.Cleanup(srv.Close)
		conn := &rwBuffer{in: bytes.NewReader(data)}
		_ = srv.HandleConn(conn) // must not panic
	})
}

// FuzzReadInferRequest drives the hand-rolled request decoder the
// server read loop uses: arbitrary bodies must be rejected cleanly,
// valid bodies must round-trip through the writer.
func FuzzReadInferRequest(f *testing.F) {
	var valid bytes.Buffer
	_ = writeInferRequest(&valid, &inferRequest{JobID: 7, Cut: 2, Tensor: mustVec(3, 1, 2, 3)})
	f.Add(valid.Bytes()[1:]) // body = frame minus the type byte
	var qvalid bytes.Buffer
	_ = writeInferRequest(&qvalid, &inferRequest{JobID: 8, Cut: 1, Quant: mustQVec(3, 1, -2, 3)})
	f.Add(qvalid.Bytes()[1:])
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Add(bytes.Repeat([]byte{0xFF}, 32))

	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := readInferRequestBody(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := writeInferRequest(&buf, req); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		got, err := readInferRequestBody(bytes.NewReader(buf.Bytes()[1:]))
		if err != nil {
			t.Fatalf("decode re-encoded request: %v", err)
		}
		if got.JobID != req.JobID || got.Cut != req.Cut {
			t.Fatalf("round trip mismatch: %+v vs %+v", got, req)
		}
		switch {
		case req.Quant != nil:
			if got.Quant == nil || !got.Quant.Shape.Equal(req.Quant.Shape) || got.Quant.QParams != req.Quant.QParams {
				t.Fatalf("quant round trip mismatch: %+v vs %+v", got, req)
			}
		default:
			if got.Tensor == nil || !got.Tensor.Shape.Equal(req.Tensor.Shape) {
				t.Fatalf("round trip mismatch: %+v vs %+v", got, req)
			}
		}
	})
}

// FuzzReadInferReply drives the client demultiplexer's reply decoder.
func FuzzReadInferReply(f *testing.F) {
	var valid bytes.Buffer
	_ = writeInferReply(&valid, &inferReply{JobID: 3, Class: -1, CloudNs: 123456})
	f.Add(valid.Bytes()[1:])
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7})
	f.Add(bytes.Repeat([]byte{0xFF}, 16))

	f.Fuzz(func(t *testing.T, data []byte) {
		rep, err := readInferReplyBody(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := writeInferReply(&buf, &rep); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		got, err := readInferReplyBody(bytes.NewReader(buf.Bytes()[1:]))
		if err != nil {
			t.Fatalf("decode re-encoded reply: %v", err)
		}
		if got != rep {
			t.Fatalf("round trip mismatch: %+v vs %+v", got, rep)
		}
	})
}

// mustVec builds a small 1-D tensor for frame seeds.
func mustVec(n int, vals ...float32) *tensor.Tensor {
	t := tensor.New(tensor.NewVec(n))
	copy(t.Data, vals)
	return t
}

// mustQVec builds a small 1-D quantized tensor for frame seeds.
func mustQVec(n int, codes ...int8) *tensor.QTensor {
	q := tensor.NewQ(tensor.NewVec(n), tensor.QParams{Scale: 0.5, Zero: -3})
	copy(q.Data, codes)
	return q
}
