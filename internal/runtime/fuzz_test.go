package runtime

import (
	"bytes"
	"testing"

	"dnnjps/internal/tensor"
)

// FuzzReadTensor drives the wire decoder with arbitrary bytes: it must
// never panic and never allocate absurd buffers; on valid frames it
// must round-trip. Seed corpus covers the interesting shapes; run
// `go test -fuzz=FuzzReadTensor ./internal/runtime` for a deep fuzz.
func FuzzReadTensor(f *testing.F) {
	// A valid 1-D tensor frame.
	var valid bytes.Buffer
	_ = writeTensor(&valid, mustVec(3, 1, 2, 3))
	f.Add(valid.Bytes())
	// Truncations and garbage.
	f.Add(valid.Bytes()[:3])
	f.Add([]byte{0})
	f.Add([]byte{9, 1, 2, 3})
	f.Add([]byte{1, 0xFF, 0xFF, 0xFF, 0x7F}) // giant dim
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		tt, err := readTensor(bytes.NewReader(data))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		// Successful parses must be internally consistent and re-encode.
		if tt.Shape.Elems() != len(tt.Data) {
			t.Fatalf("decoded tensor inconsistent: %v vs %d", tt.Shape, len(tt.Data))
		}
		var buf bytes.Buffer
		if err := writeTensor(&buf, tt); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
	})
}

// FuzzHandleConn drives the whole server loop with arbitrary frames.
func FuzzHandleConn(f *testing.F) {
	var infer bytes.Buffer
	_ = writeInferRequest(&infer, &inferRequest{JobID: 1, Cut: 0, Tensor: mustVec(2, 1, 2)})
	f.Add(infer.Bytes())
	var ping bytes.Buffer
	_ = writePing(&ping, 8)
	f.Add(ping.Bytes())
	var set bytes.Buffer
	_ = writeInferSetRequest(&set, &inferSetRequest{
		JobID:   2,
		Nodes:   []int32{0},
		Tensors: []*tensor.Tensor{mustVec(2, 1, 2)},
	})
	f.Add(set.Bytes())
	f.Add([]byte{0xAB, 0xCD})

	f.Fuzz(func(t *testing.T, data []byte) {
		srv := NewServer(testModel(t))
		conn := &rwBuffer{in: bytes.NewReader(data)}
		_ = srv.HandleConn(conn) // must not panic
	})
}

// FuzzReadInferRequest drives the hand-rolled request decoder the
// server read loop uses: arbitrary bodies must be rejected cleanly,
// valid bodies must round-trip through the writer.
func FuzzReadInferRequest(f *testing.F) {
	var valid bytes.Buffer
	_ = writeInferRequest(&valid, &inferRequest{JobID: 7, Cut: 2, Tensor: mustVec(3, 1, 2, 3)})
	f.Add(valid.Bytes()[1:]) // body = frame minus the type byte
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Add(bytes.Repeat([]byte{0xFF}, 32))

	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := readInferRequestBody(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := writeInferRequest(&buf, req); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		got, err := readInferRequestBody(bytes.NewReader(buf.Bytes()[1:]))
		if err != nil {
			t.Fatalf("decode re-encoded request: %v", err)
		}
		if got.JobID != req.JobID || got.Cut != req.Cut || !got.Tensor.Shape.Equal(req.Tensor.Shape) {
			t.Fatalf("round trip mismatch: %+v vs %+v", got, req)
		}
	})
}

// FuzzReadInferReply drives the client demultiplexer's reply decoder.
func FuzzReadInferReply(f *testing.F) {
	var valid bytes.Buffer
	_ = writeInferReply(&valid, &inferReply{JobID: 3, Class: -1, CloudNs: 123456})
	f.Add(valid.Bytes()[1:])
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7})
	f.Add(bytes.Repeat([]byte{0xFF}, 16))

	f.Fuzz(func(t *testing.T, data []byte) {
		rep, err := readInferReplyBody(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := writeInferReply(&buf, &rep); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		got, err := readInferReplyBody(bytes.NewReader(buf.Bytes()[1:]))
		if err != nil {
			t.Fatalf("decode re-encoded reply: %v", err)
		}
		if got != rep {
			t.Fatalf("round trip mismatch: %+v vs %+v", got, rep)
		}
	})
}

// mustVec builds a small 1-D tensor for frame seeds.
func mustVec(n int, vals ...float32) *tensor.Tensor {
	t := tensor.New(tensor.NewVec(n))
	copy(t.Data, vals)
	return t
}
