package runtime

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"dnnjps/internal/engine"
	"dnnjps/internal/netsim"
	"dnnjps/internal/profile"
	"dnnjps/internal/tensor"
)

// faultyDialer starts a shared server and returns a dial func whose
// i-th connection is wrapped in a fault injector with the spec chosen
// by specFor(i). Each connection gets its own deterministic RNG stream
// (seed+i) and its own server goroutine.
func faultyDialer(t *testing.T, m *engine.Model, seed int64, scale float64,
	specFor func(i int) (up, down netsim.FaultSpec)) func() (net.Conn, error) {
	t.Helper()
	srv := NewServer(m).WithWorkers(4)
	t.Cleanup(srv.Close)
	var mu sync.Mutex
	dials := 0
	return func() (net.Conn, error) {
		mu.Lock()
		i := dials
		dials++
		mu.Unlock()
		cConn, sConn := net.Pipe()
		go func() { defer sConn.Close(); _ = srv.HandleConn(sConn) }()
		up, down := specFor(i)
		return netsim.Inject(cConn, up, down, seed+int64(i), scale), nil
	}
}

// wantClasses runs every input through a local forward pass.
func wantClasses(t *testing.T, m *engine.Model, inputs []*tensor.Tensor) []int {
	t.Helper()
	want := make([]int, len(inputs))
	for i, in := range inputs {
		out, err := m.Forward(in.Clone())
		if err != nil {
			t.Fatal(err)
		}
		want[i] = engine.Argmax(out)
	}
	return want
}

// checkComplete asserts one result per job with the locally-computed
// class — the "bit-identical under faults" contract.
func checkComplete(t *testing.T, rep *FTReport, want []int) {
	t.Helper()
	if len(rep.Results) != len(want) {
		t.Fatalf("got %d results, want %d", len(rep.Results), len(want))
	}
	for i, r := range rep.Results {
		if r == nil {
			t.Fatalf("job %d has no result", i)
		}
		if r.JobID != i {
			t.Fatalf("Results[%d].JobID = %d; must be sorted by JobID", i, r.JobID)
		}
		if r.Class != want[i] {
			t.Errorf("job %d: class %d, want %d (results must match a fault-free run)", i, r.Class, want[i])
		}
	}
}

// TestRunnerCleanLinkMatchesClient pins the no-fault baseline: with a
// transparent injector the runner must behave exactly like the plain
// pipelined client — no reconnects, no retries, no fallback.
func TestRunnerCleanLinkMatchesClient(t *testing.T) {
	m := pipeModel(t)
	ch := netsim.Channel{Name: "pipe", UplinkMbps: 64, SetupMs: 0}
	dial := faultyDialer(t, m, 1, 1e-3, func(int) (up, down netsim.FaultSpec) { return })
	r := NewRunner(dial, m, ch, 1e-3, RunOptions{})

	const n = 12
	plan := uniformPlan(n, 3)
	inputs := make([]*tensor.Tensor, n)
	for i := range inputs {
		inputs[i] = pipeInput(i)
	}
	rep, err := r.RunPlan(plan, inputs)
	if err != nil {
		t.Fatal(err)
	}
	checkComplete(t, rep, wantClasses(t, m, inputs))
	if rep.Reconnects != 0 || rep.RetriedJobs != 0 || rep.LocalFallbackJobs != 0 || rep.Replans != 0 {
		t.Errorf("clean link took recovery actions: %+v", rep)
	}
}

// TestRunnerRecoversFromDropsAndDisconnect is the tentpole acceptance
// test: 5%% frame drops on the uplink plus one forced mid-run
// disconnect, and every job must still complete with the fault-free
// class while the makespan stays within 1.5x of the no-fault Prop. 4.1
// closed form. The margin exists because recovery overlaps the
// pipeline: while the deadline on a dropped job runs down, the
// still-queued jobs keep uploading and their replies are harvested, so
// a drop costs roughly one backoff plus one re-upload, not a dead
// window.
func TestRunnerRecoversFromDropsAndDisconnect(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	m := pipeModel(t)
	// Same regime as TestRunPlanMatchesProp41: 8 Mb/s, one ~16 ms pacing
	// sleep per 16 KB boundary, uplink-dominated.
	ch := netsim.Channel{Name: "pipe", UplinkMbps: 8, SetupMs: 0}
	const (
		n    = 24
		cut  = 3
		drop = 0.05
	)
	dial := faultyDialer(t, m, 11, 1, func(i int) (up, down netsim.FaultSpec) {
		up = netsim.FaultSpec{DropProb: drop}
		if i == 0 {
			// Force a mid-stream disconnect about six jobs in.
			up.DisconnectAfterBytes = 100_000
		}
		return up, netsim.FaultSpec{}
	})
	r := NewRunner(dial, m, ch, 1, RunOptions{
		JobTimeout:    80 * time.Millisecond,
		MaxReconnects: 10,
		BackoffBase:   4 * time.Millisecond,
		BackoffMax:    16 * time.Millisecond,
		Seed:          3,
		Window:        8,
	})

	plan := uniformPlan(n, cut)
	inputs := make([]*tensor.Tensor, n)
	for i := range inputs {
		inputs[i] = pipeInput(i)
	}
	rep, err := r.RunPlan(plan, inputs)
	if err != nil {
		t.Fatal(err)
	}
	checkComplete(t, rep, wantClasses(t, m, inputs))
	if rep.Reconnects == 0 {
		t.Error("forced disconnect must cause at least one reconnect")
	}
	if rep.LocalFallbackJobs != 0 {
		t.Errorf("%d jobs fell back to local; the link was recoverable", rep.LocalFallbackJobs)
	}

	if raceEnabled {
		return // race instrumentation distorts the timing bound below
	}
	units := profile.LineView(m.Graph())
	boundShape := m.Graph().Node(units[cut].Exit).OutShape
	g := ch.TxMs(RequestWireBytes(boundShape))
	var sumF float64
	for _, res := range rep.Results {
		sumF += res.MobileMs
	}
	f1 := rep.Results[0].MobileMs
	inner := sumF - f1
	if float64(n-1)*g > inner {
		inner = float64(n-1) * g
	}
	predicted := f1 + inner + g
	ratio := rep.MakespanMs / predicted
	t.Logf("measured %.2f ms vs no-fault closed form %.2f ms (ratio %.3f; reconnects %d, retried %d)",
		rep.MakespanMs, predicted, ratio, rep.Reconnects, rep.RetriedJobs)
	if ratio > 1.5 {
		t.Errorf("faulty-link makespan %.2f ms exceeds 1.5x the no-fault closed form %.2f ms (ratio %.3f)",
			rep.MakespanMs, predicted, ratio)
	}
}

// TestRunnerLocalFallbackOnBlackholeLink: a link that silently eats
// every upload (connects fine, delivers nothing) must exhaust the
// per-job deadlines and reconnect budget, then finish every job on the
// local engine with correct classes.
func TestRunnerLocalFallbackOnBlackholeLink(t *testing.T) {
	m := testModel(t)
	dial := faultyDialer(t, m, 5, 1, func(int) (up, down netsim.FaultSpec) {
		return netsim.FaultSpec{DropProb: 1}, netsim.FaultSpec{}
	})
	r := NewRunner(dial, m, netsim.WiFi, 1e-3, RunOptions{
		JobTimeout:    30 * time.Millisecond,
		MaxReconnects: 2,
		BackoffBase:   time.Millisecond,
		BackoffMax:    2 * time.Millisecond,
	})

	const n = 4
	plan := uniformPlan(n, 1)
	inputs := make([]*tensor.Tensor, n)
	for i := range inputs {
		inputs[i] = input(i)
	}
	rep, err := r.RunPlan(plan, inputs)
	if err != nil {
		t.Fatal(err)
	}
	checkComplete(t, rep, wantClasses(t, m, inputs))
	if rep.LocalFallbackJobs != n {
		t.Errorf("LocalFallbackJobs = %d, want %d (black-hole link)", rep.LocalFallbackJobs, n)
	}
	if rep.Reconnects != 2 {
		t.Errorf("Reconnects = %d, want 2 (the full budget)", rep.Reconnects)
	}
}

// TestRunnerLocalFallbackOnDeadDial: the uplink never even connects.
func TestRunnerLocalFallbackOnDeadDial(t *testing.T) {
	m := testModel(t)
	dial := func() (net.Conn, error) { return nil, fmt.Errorf("connection refused") }
	r := NewRunner(dial, m, netsim.WiFi, 1e-3, RunOptions{
		JobTimeout:    10 * time.Millisecond,
		MaxReconnects: 3,
		BackoffBase:   time.Millisecond,
		BackoffMax:    2 * time.Millisecond,
	})

	const n = 3
	plan := uniformPlan(n, 0)
	inputs := make([]*tensor.Tensor, n)
	for i := range inputs {
		inputs[i] = input(i * 2)
	}
	rep, err := r.RunPlan(plan, inputs)
	if err != nil {
		t.Fatal(err)
	}
	checkComplete(t, rep, wantClasses(t, m, inputs))
	if rep.LocalFallbackJobs != n {
		t.Errorf("LocalFallbackJobs = %d, want %d", rep.LocalFallbackJobs, n)
	}
}

// TestRunnerNoLocalFallbackErrs: with fallback disabled, a dead uplink
// must surface as a clean error — never a hang, never a partial report.
func TestRunnerNoLocalFallbackErrs(t *testing.T) {
	m := testModel(t)
	dial := func() (net.Conn, error) { return nil, fmt.Errorf("connection refused") }
	r := NewRunner(dial, m, netsim.WiFi, 1e-3, RunOptions{
		JobTimeout:      10 * time.Millisecond,
		MaxReconnects:   1,
		BackoffBase:     time.Millisecond,
		BackoffMax:      2 * time.Millisecond,
		NoLocalFallback: true,
	})
	plan := uniformPlan(2, 0)
	rep, err := r.RunPlan(plan, []*tensor.Tensor{input(0), input(1)})
	if err == nil {
		t.Fatalf("dead uplink with NoLocalFallback must error, got report %+v", rep)
	}
}

// TestRunnerReplansOnDegradedLink: the injector throttles the uplink to
// a quarter of the channel model's bandwidth; once the measured link
// health crosses ReplanFactor the runner must re-plan the remaining
// jobs against the repriced curve and still finish everything
// correctly.
func TestRunnerReplansOnDegradedLink(t *testing.T) {
	m := pipeModel(t)
	ch := netsim.Channel{Name: "pipe", UplinkMbps: 8, SetupMs: 0}
	const scale = 0.05
	dial := faultyDialer(t, m, 9, scale, func(int) (up, down netsim.FaultSpec) {
		return netsim.FaultSpec{Degrade: []netsim.DegradeStep{{AfterMs: 0, Mbps: 2}}}, netsim.FaultSpec{}
	})
	curve := profile.BuildCurve(m.Graph(), profile.RaspberryPi4(), profile.CloudGPU(), ch, tensor.Float32)
	r := NewRunner(dial, m, ch, scale, RunOptions{
		JobTimeout:   2 * time.Second,
		BackoffBase:  time.Millisecond,
		BackoffMax:   2 * time.Millisecond,
		Window:       4,
		ReplanFactor: 0.5,
	}).WithCurve(curve)

	const n = 10
	plan := uniformPlan(n, 3)
	inputs := make([]*tensor.Tensor, n)
	for i := range inputs {
		inputs[i] = pipeInput(i)
	}
	rep, err := r.RunPlan(plan, inputs)
	if err != nil {
		t.Fatal(err)
	}
	checkComplete(t, rep, wantClasses(t, m, inputs))
	if rep.Replans == 0 {
		t.Fatal("a 4x-throttled uplink must trigger a re-plan")
	}
	if rep.ReplannedMbps <= 0 || rep.ReplannedMbps >= ch.UplinkMbps {
		t.Errorf("ReplannedMbps = %.2f, want in (0, %.0f)", rep.ReplannedMbps, ch.UplinkMbps)
	}
}
