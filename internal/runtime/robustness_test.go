package runtime

import (
	"bytes"
	"io"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"dnnjps/internal/core"
	"dnnjps/internal/engine"
	"dnnjps/internal/netsim"
	"dnnjps/internal/profile"
	"dnnjps/internal/tensor"
)

// The server must never panic on malformed input — garbage frames,
// truncated requests, absurd sizes all surface as errors.
func TestServerSurvivesGarbageFrames(t *testing.T) {
	m := testModel(t)
	srv := NewServer(m)
	t.Cleanup(srv.Close)
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(64)
		buf := make([]byte, n)
		rng.Read(buf)
		conn := &rwBuffer{in: bytes.NewReader(buf)}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: server panicked on %x: %v", trial, buf, r)
				}
			}()
			_ = srv.HandleConn(conn)
		}()
	}
}

func TestServerRejectsHugePing(t *testing.T) {
	m := testModel(t)
	srv := NewServer(m)
	t.Cleanup(srv.Close)
	var req bytes.Buffer
	req.WriteByte(2)                                    // msgPing
	req.Write([]byte{0xFF, 0xFF, 0xFF, 0x7F})           // ~2GB payload claim
	conn := &rwBuffer{in: bytes.NewReader(req.Bytes())} // no actual payload
	if err := srv.HandleConn(conn); err == nil {
		t.Error("oversized ping must error")
	}
}

func TestServerRejectsUnknownMessageType(t *testing.T) {
	m := testModel(t)
	srv := NewServer(m)
	t.Cleanup(srv.Close)
	conn := &rwBuffer{in: bytes.NewReader([]byte{0xAB})}
	if err := srv.HandleConn(conn); err == nil {
		t.Error("unknown message type must error")
	}
}

// rwBuffer adapts a reader + discard writer to io.ReadWriter.
type rwBuffer struct {
	in io.Reader
}

func (b *rwBuffer) Read(p []byte) (int, error)  { return b.in.Read(p) }
func (b *rwBuffer) Write(p []byte) (int, error) { return len(p), nil }

// Several clients may hit one server concurrently (one goroutine per
// connection); results must stay correct and isolated.
func TestConcurrentClients(t *testing.T) {
	m := testModel(t)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback unavailable: %v", err)
	}
	defer lis.Close()
	srv := NewServer(m)
	t.Cleanup(srv.Close)
	go func() { _ = srv.Serve(lis) }()

	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", lis.Addr().String())
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			cl := NewClient(conn, m, netsim.WiFi, 1e-6)
			in := input(c)
			want, _ := m.Forward(in.Clone())
			for cut := 0; cut < cl.Units(); cut += 2 {
				res, err := cl.RunJob(c*100+cut, cut, in.Clone())
				if err != nil {
					errs <- err
					return
				}
				if res.Class != engine.Argmax(want) {
					t.Errorf("client %d cut %d: class %d, want %d", c, cut, res.Class, engine.Argmax(want))
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// Pipelined plans with many jobs stress the queue path.
func TestRunPlanManyJobs(t *testing.T) {
	m := testModel(t)
	cl := startPair(t, m, netsim.WiFi)
	curve := profile.BuildCurve(m.Graph(), profile.RaspberryPi4(), profile.CloudGPU(),
		netsim.WiFi, tensor.Float32)
	plan, err := core.JPS(curve, 24)
	if err != nil {
		t.Fatal(err)
	}
	inputs := make([]*tensor.Tensor, 24)
	for i := range inputs {
		inputs[i] = input(i)
	}
	rep, err := cl.RunPlan(plan, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 24 {
		t.Fatalf("got %d results", len(rep.Results))
	}
}

// TestRunnerFaultMatrix sweeps {drop, stall, disconnect} x {during
// upload, during reply}. Whatever the fault, a RunPlan through the
// fault-tolerant runner must terminate within the guard timeout and
// return complete, correct results — retried to success over the link
// or finished by the local fallback, never a hang and never a panic.
// The injector is faulty on the first two connections and clean
// afterwards, so every case exercises real recovery.
func TestRunnerFaultMatrix(t *testing.T) {
	m := testModel(t)
	cases := []struct {
		name     string
		up, down netsim.FaultSpec
	}{
		{"drop-during-upload", netsim.FaultSpec{DropProb: 0.3}, netsim.FaultSpec{}},
		{"drop-during-reply", netsim.FaultSpec{}, netsim.FaultSpec{DropProb: 0.3}},
		{"stall-during-upload", netsim.FaultSpec{StallProb: 0.5, StallMs: 20}, netsim.FaultSpec{}},
		{"stall-during-reply", netsim.FaultSpec{}, netsim.FaultSpec{StallProb: 0.5, StallMs: 20}},
		{"disconnect-during-upload", netsim.FaultSpec{DisconnectAfterBytes: 40_000}, netsim.FaultSpec{}},
		{"disconnect-during-reply", netsim.FaultSpec{}, netsim.FaultSpec{DisconnectProb: 0.3}},
	}
	for ci, tc := range cases {
		tc := tc
		seed := int64(100 + 10*ci)
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			dial := faultyDialer(t, m, seed, 1, func(i int) (up, down netsim.FaultSpec) {
				if i < 2 {
					return tc.up, tc.down
				}
				return netsim.FaultSpec{}, netsim.FaultSpec{}
			})
			r := NewRunner(dial, m, netsim.WiFi, 1e-3, RunOptions{
				JobTimeout:    300 * time.Millisecond,
				MaxReconnects: 6,
				BackoffBase:   time.Millisecond,
				BackoffMax:    4 * time.Millisecond,
				Seed:          seed,
				Window:        3,
			})
			const n = 6
			plan := uniformPlan(n, 1)
			inputs := make([]*tensor.Tensor, n)
			for i := range inputs {
				inputs[i] = input(i + ci*7)
			}

			type outcome struct {
				rep *FTReport
				err error
			}
			done := make(chan outcome, 1)
			go func() {
				rep, err := r.RunPlan(plan, inputs)
				done <- outcome{rep, err}
			}()
			select {
			case out := <-done:
				if out.err != nil {
					t.Fatalf("runner must recover from %s, got %v", tc.name, out.err)
				}
				checkComplete(t, out.rep, wantClasses(t, m, inputs))
			case <-time.After(30 * time.Second):
				t.Fatalf("runner hung under %s", tc.name)
			}
		})
	}
}
