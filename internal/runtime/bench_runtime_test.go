package runtime

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"dnnjps/internal/core"
	"dnnjps/internal/engine"
	"dnnjps/internal/models"
	"dnnjps/internal/netsim"
	"dnnjps/internal/profile"
	"dnnjps/internal/tensor"
)

var benchState struct {
	once   sync.Once
	err    error
	m      *engine.Model
	plan   *core.Plan
	inputs []*tensor.Tensor
	scale  float64
}

// benchSetup loads AlexNet once and plans the paper's Wi-Fi JPS batch:
// job 1 offloads at the input (comm-heavy S1), the rest cut after
// conv1 (comp-heavy S2).
//
// The channel time scale is calibrated so total simulated link time
// matches this machine's measured compute time for the batch. JPS
// picks the cut where the two flow-shop stages balance (Johnson's
// regime); calibrating keeps the benchmark at that operating point
// regardless of host speed. An uncalibrated scale degenerates: a fast
// host makes the run pure simulated-comm, a slow host makes it pure
// compute, and either way the pipeline being measured disappears.
func benchSetup(b *testing.B) (*engine.Model, *core.Plan, []*tensor.Tensor, float64) {
	b.Helper()
	benchState.once.Do(func() {
		g, err := models.Build("alexnet")
		if err != nil {
			benchState.err = err
			return
		}
		m := engine.Load(g, 42)
		curve := profile.BuildCurve(g, profile.RaspberryPi4(), profile.CloudGPU(), netsim.WiFi, tensor.Float32)
		plan, err := core.JPS(curve, 8)
		if err != nil {
			benchState.err = err
			return
		}
		units := profile.LineView(g)
		inShape := g.Node(units[0].Exit).OutShape
		inputs := make([]*tensor.Tensor, len(plan.Cuts))
		for i := range inputs {
			in := tensor.New(inShape)
			for j := range in.Data {
				in.Data[j] = float32((j+i*13)%29)/29 - 0.5
			}
			inputs[i] = in
		}
		// Calibrate: one full forward approximates a job's prefix +
		// suffix compute on this host.
		start := time.Now()
		if _, err := m.Forward(inputs[0].Clone()); err != nil {
			benchState.err = err
			return
		}
		computeMs := float64(time.Since(start).Milliseconds()) * float64(len(plan.Cuts))
		var linkMs float64
		for _, cut := range plan.Cuts {
			shape := g.Node(units[cut].Exit).OutShape
			linkMs += netsim.WiFi.TxMs(RequestWireBytes(shape))
		}
		scale := computeMs / linkMs
		if scale <= 0 {
			scale = 1
		}
		// Floor the scale so each paced upload spans many scheduler
		// quanta. When the assembly kernels cut whole-model compute
		// ~3.5x, the calibrated balance point dropped per-upload wall
		// windows toward the ~10 ms preemption granularity of a
		// single-core host; timer oversleep while the server worker
		// holds the CPU then reads as a ~40% bandwidth shortfall and
		// trips the adaptive replanner's 30% divergence trigger on a
		// perfectly healthy link. The floor trades exact stage balance
		// for pacing fidelity — both legs of each within-run ratio
		// (adaptive/static, solo/batched) shift identically.
		if scale < 2 {
			scale = 2
		}
		benchState.m, benchState.plan, benchState.inputs, benchState.scale = m, plan, inputs, scale
	})
	if benchState.err != nil {
		b.Fatal(benchState.err)
	}
	return benchState.m, benchState.plan, benchState.inputs, benchState.scale
}

// benchDial starts a one-connection server and dials it over loopback
// TCP. The kernel socket buffer decouples the paced writer from the
// server's read loop, which net.Pipe's synchronous rendezvous does not.
func benchDial(b *testing.B, m *engine.Model) net.Conn {
	b.Helper()
	return benchDialServer(b, NewServer(m))
}

// benchDialServer is benchDial for a caller-configured server.
func benchDialServer(b *testing.B, srv *Server) net.Conn {
	b.Helper()
	b.Cleanup(srv.Close)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go func() {
		defer lis.Close()
		conn, err := lis.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		_ = srv.HandleConn(conn)
	}()
	conn, err := net.Dial("tcp", lis.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	return conn
}

// BenchmarkRunPlan measures the full-duplex pipeline on the paper's
// AlexNet + Wi-Fi JPS plan: a dedicated writer streams boundary
// tensors while the reply demultiplexer collects out-of-order
// completions from the server's worker pool.
func BenchmarkRunPlan(b *testing.B) {
	m, plan, inputs, scale := benchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conn := benchDial(b, m)
		cl := NewClient(conn, m, netsim.WiFi, scale)
		rep, err := cl.RunPlan(plan, inputs)
		conn.Close()
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Results) != len(plan.Cuts) {
			b.Fatalf("got %d results", len(rep.Results))
		}
	}
}

// BenchmarkRunPlanSync is the synchronous baseline the seed runtime
// imposed: each job computes its prefix, uploads, and blocks for the
// reply before the next job starts — no overlap between the mobile
// CPU, the link, and the cloud.
func BenchmarkRunPlanSync(b *testing.B) {
	m, plan, inputs, scale := benchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conn := benchDial(b, m)
		cl := NewClient(conn, m, netsim.WiFi, scale)
		for _, j := range plan.Sequence {
			if _, err := cl.RunJob(j.ID, plan.Cuts[j.ID], inputs[j.ID]); err != nil {
				conn.Close()
				b.Fatal(err)
			}
		}
		conn.Close()
	}
}

// benchHeadCut loads mobilenetv2 and returns the cut at its deepest
// unit (boundary after the head's global average pool) with a synthetic
// boundary activation — the batching benchmarks' shared workload, where
// the cloud suffix is the weight-streaming-bound dense head.
func benchHeadCut(b *testing.B) (*engine.Model, int, *tensor.Tensor) {
	b.Helper()
	g, err := models.Build("mobilenetv2")
	if err != nil {
		b.Fatal(err)
	}
	m := engine.Load(g, 42)
	units := profile.LineView(g)
	node, ok := g.NodeByName("head/gap")
	if !ok {
		b.Fatal("mobilenetv2 has no head/gap node")
	}
	cut := -1
	for i, u := range units {
		if u.Exit == node.ID {
			cut = i
		}
	}
	if cut < 0 {
		b.Fatal("head/gap is not a unit boundary")
	}
	boundary := tensor.New(node.OutShape)
	for i := range boundary.Data {
		boundary.Data[i] = float32(i%31)/31 - 0.5
	}
	return m, cut, boundary
}

// BenchmarkServerCoalescer measures the server stage with and without
// cross-job batching on its best-case workload: 32 concurrent jobs all
// cut at mobilenetv2's deepest unit, leaving the weight-streaming-bound
// dense head as the cloud suffix. "solo" dispatches each job to a pool
// worker as the seed runtime did; "batched" coalesces the whole wave
// into one widened GEMM. ns/job is wall time per inference seen by the
// client — the server-stage throughput number quoted in EXPERIMENTS.md.
func BenchmarkServerCoalescer(b *testing.B) {
	m, cut, boundary := benchHeadCut(b)
	const jobs = 32

	run := func(b *testing.B, srv *Server) {
		conn := benchDialServer(b, srv)
		defer conn.Close()
		cl := NewClient(conn, m, netsim.WiFi, 1e-6)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			calls := make([]*call, jobs)
			for j := range calls {
				c, err := cl.enqueueInfer(&JobResult{JobID: j}, cut, boundary)
				if err != nil {
					b.Fatal(err)
				}
				calls[j] = c
			}
			for _, c := range calls {
				if err := cl.await(c); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*jobs), "ns/job")
	}
	b.Run("solo", func(b *testing.B) { run(b, NewServer(m).WithWorkers(4)) })
	b.Run("batched", func(b *testing.B) {
		run(b, NewServer(m).WithWorkers(4).WithBatching(10*time.Millisecond, jobs))
	})
}

// BenchmarkFleetServer measures the serving fabric under fleet load: 8
// clients on independent loopback TCP connections, each with its own
// tenant ID, concurrently flood the same mobilenetv2 head cut with 8
// jobs apiece. "solo" is the per-job dispatch baseline; "batched" lets
// the server-wide coalescer merge jobs across sockets into widened
// GEMMs — the cross-connection amortization the fleet figure measures.
// ns/job is wall time per inference seen by the clients.
func BenchmarkFleetServer(b *testing.B) {
	m, cut, boundary := benchHeadCut(b)
	const clients = 8
	const jobsPerClient = 8

	run := func(b *testing.B, srv *Server) {
		b.Cleanup(srv.Close)
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { lis.Close() })
		go func() { _ = srv.Serve(lis) }()
		cls := make([]*Client, clients)
		for c := range cls {
			conn, err := net.Dial("tcp", lis.Addr().String())
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { conn.Close() })
			cls[c] = NewClient(conn, m, netsim.WiFi, 1e-6).
				WithTenant(fmt.Sprintf("bench-%d", c))
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			errs := make(chan error, clients)
			var wg sync.WaitGroup
			for _, cl := range cls {
				wg.Add(1)
				go func(cl *Client) {
					defer wg.Done()
					calls := make([]*call, jobsPerClient)
					for j := range calls {
						c, err := cl.enqueueInfer(&JobResult{JobID: j}, cut, boundary)
						if err != nil {
							errs <- err
							return
						}
						calls[j] = c
					}
					for _, c := range calls {
						if err := cl.await(c); err != nil {
							errs <- err
							return
						}
					}
				}(cl)
			}
			wg.Wait()
			close(errs)
			if err := <-errs; err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*clients*jobsPerClient), "ns/job")
	}
	b.Run("solo", func(b *testing.B) { run(b, NewServer(m).WithWorkers(4)) })
	b.Run("batched", func(b *testing.B) {
		run(b, NewServer(m).WithWorkers(4).WithBatching(10*time.Millisecond, clients*jobsPerClient))
	})
}

// BenchmarkRunnerAdaptive measures what continuous adaptive replanning
// costs when the link is healthy: the same fault-tolerant runner
// executes the paper's AlexNet + Wi-Fi plan with the estimator off
// ("static") and on ("adaptive"). On a steady link the estimator
// tracks the nominal rate, so no change point fires and no replan
// runs — the adaptive row pays only the per-upload sample fold and the
// between-windows divergence check, which must be noise against the
// pipeline itself (gated as a within-run ratio in scripts/benchgate.sh).
func BenchmarkRunnerAdaptive(b *testing.B) {
	m, plan, inputs, scale := benchSetup(b)
	g, err := models.Build("alexnet")
	if err != nil {
		b.Fatal(err)
	}
	curve := profile.BuildCurve(g, profile.RaspberryPi4(), profile.CloudGPU(), netsim.WiFi, tensor.Float32)

	run := func(b *testing.B, adaptive bool) {
		opts := RunOptions{Window: 2}
		opts.AdaptiveReplan = adaptive
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			dial := func() (net.Conn, error) { return benchDial(b, m), nil }
			r := NewRunner(dial, m, netsim.WiFi, scale, opts).WithCurve(curve)
			rep, err := r.RunPlan(plan, inputs)
			if err != nil {
				b.Fatal(err)
			}
			if len(rep.Results) != len(plan.Cuts) {
				b.Fatalf("got %d results", len(rep.Results))
			}
			if rep.Replans != 0 {
				b.Fatalf("steady link replanned %d times (est %.2f Mbps, %d change points)", rep.Replans, rep.EstimatedMbps, rep.ChangePoints)
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(plan.Cuts)), "ns/job")
	}
	b.Run("static", func(b *testing.B) { run(b, false) })
	b.Run("adaptive", func(b *testing.B) { run(b, true) })
}

// BenchmarkWriteInferRequest measures the encode side of the wire
// path: with pooled chunk buffers, a 16 K-element tensor frame must
// encode with zero allocations.
func BenchmarkWriteInferRequest(b *testing.B) {
	tt := tensor.New(tensor.NewCHW(16, 32, 32))
	for i := range tt.Data {
		tt.Data[i] = float32(i)
	}
	req := &inferRequest{JobID: 1, Cut: 3, Tensor: tt}
	b.SetBytes(int64(RequestWireBytes(tt.Shape)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := writeInferRequest(io.Discard, req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReadTensor measures the decode side: one tensor allocation
// per frame, independent of payload size.
func BenchmarkReadTensor(b *testing.B) {
	tt := tensor.New(tensor.NewCHW(16, 32, 32))
	var buf bytes.Buffer
	if err := writeTensor(&buf, tt); err != nil {
		b.Fatal(err)
	}
	r := bytes.NewReader(buf.Bytes())
	b.SetBytes(int64(buf.Len()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Seek(0, io.SeekStart); err != nil {
			b.Fatal(err)
		}
		if _, _, err := readTensor(r); err != nil {
			b.Fatal(err)
		}
	}
}
