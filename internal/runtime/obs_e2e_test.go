package runtime

import (
	"bytes"
	"encoding/json"
	"math"
	"net"
	"strings"
	"testing"
	"time"

	"dnnjps/internal/netsim"
	"dnnjps/internal/obs"
	"dnnjps/internal/profile"
	"dnnjps/internal/sim"
	"dnnjps/internal/tensor"
)

// waitSettled polls until cond holds: the instrumentation that runs
// after a frame's flush (the writer's upload span, the server's reply
// accounting) races the reply delivery that unblocks RunPlan, so tests
// give those goroutines a moment to finish their bookkeeping.
func waitSettled(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("instrumentation did not settle within 5s")
}

// The sim bridge duplicates the runtime's occupancy span names rather
// than importing them; this pins the two sets together so a rename on
// either side fails loudly.
func TestSpanNamesMatchSimBridge(t *testing.T) {
	stages := sim.RuntimeStages()
	want := map[string]string{
		SpanLocalCompute: sim.ResMobile,
		SpanUpload:       sim.ResUplink,
		SpanCloudCompute: sim.ResCloud,
	}
	if len(stages) != len(want) {
		t.Fatalf("sim.RuntimeStages has %d entries, want %d", len(stages), len(want))
	}
	for name, res := range want {
		st, ok := stages[name]
		if !ok {
			t.Errorf("span %q missing from sim.RuntimeStages", name)
			continue
		}
		if st.Resource != res {
			t.Errorf("span %q maps to %q, want %q", name, st.Resource, res)
		}
	}
}

// TestTraceGanttMatchesSimulator closes the loop between measurement
// and theory: a live pipelined run's recorded spans, bridged into
// Gantt form, must agree with the discrete-event simulator replaying
// the same per-job durations (measured f and cloud, channel-model g).
// This is the paper's Prop. 4.1 decomposition checked stage by stage
// rather than only at the makespan.
func TestTraceGanttMatchesSimulator(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	if raceEnabled {
		t.Skip("race instrumentation distorts the per-stage timings this test asserts on")
	}
	m := pipeModel(t)
	// Same regime as TestRunPlanMatchesProp41: 16 KB boundary over
	// 8 Mb/s = ~16 ms per upload, dominating compute noise.
	ch := netsim.Channel{Name: "trace", UplinkMbps: 8, SetupMs: 0}
	const (
		scale = 1.0
		n     = 8
		cut   = 3
	)
	cConn, sConn := net.Pipe()
	defer cConn.Close()
	o := NewObs(obs.NewTracer(0), obs.NewMetrics())
	srv := NewServer(m).WithWorkers(4).WithObs(o)
	t.Cleanup(srv.Close)
	go func() { defer sConn.Close(); _ = srv.HandleConn(sConn) }()
	cl := NewClient(cConn, m, ch, scale).WithObs(o)

	plan := uniformPlan(n, cut)
	inputs := make([]*tensor.Tensor, n)
	for i := range inputs {
		inputs[i] = pipeInput(i)
	}
	rep, err := cl.RunPlan(plan, inputs)
	if err != nil {
		t.Fatal(err)
	}

	stages := sim.RuntimeStages()
	waitSettled(t, func() bool {
		return len(sim.FromTrace(o.Tracer.Spans(), stages, scale).Gantt[sim.ResUplink]) == n
	})
	measured := sim.FromTrace(o.Tracer.Spans(), stages, scale)
	for _, res := range []string{sim.ResMobile, sim.ResUplink, sim.ResCloud} {
		if got := len(measured.Gantt[res]); got != n {
			t.Fatalf("%s: %d measured intervals, want %d", res, got, n)
		}
	}

	// Replay the same run through the simulator: measured device and
	// cloud times, channel-model upload times (what the shaper paces).
	units := profile.LineView(m.Graph())
	gMs := ch.TxMs(RequestWireBytes(m.Graph().Node(units[cut].Exit).OutShape))
	f := make([]float64, n)
	g := make([]float64, n)
	cloud := make([]float64, n)
	for i, r := range rep.Results { // sorted by JobID = sequence order here
		f[i], g[i], cloud[i] = r.MobileMs, gMs, r.CloudMs
	}
	simRes, err := sim.Run(sim.FromDurations(f, g, cloud))
	if err != nil {
		t.Fatal(err)
	}

	ratio := measured.Makespan / simRes.Makespan
	t.Logf("measured makespan %.2f ms, simulated %.2f ms (ratio %.3f)",
		measured.Makespan, simRes.Makespan, ratio)
	if ratio > 1.2 || ratio < 0.8 {
		t.Errorf("measured makespan %.2f ms vs simulated %.2f ms: ratio %.3f outside [0.8, 1.2]",
			measured.Makespan, simRes.Makespan, ratio)
	}
	// The uplink is the paced bottleneck: its busy time is enforced by
	// the shaper, so measurement and model must agree closely.
	ub, sb := measured.BusyMs[sim.ResUplink], simRes.BusyMs[sim.ResUplink]
	if math.Abs(ub-sb)/sb > 0.15 {
		t.Errorf("uplink busy %.2f ms vs simulated %.2f ms: diverged > 15%%", ub, sb)
	}
	// Device busy comes from the same measurements FromDurations replays.
	db, dsb := measured.BusyMs[sim.ResMobile], simRes.BusyMs[sim.ResMobile]
	if dsb > 0 && math.Abs(db-dsb)/dsb > 0.15 {
		t.Errorf("device busy %.2f ms vs simulated %.2f ms: diverged > 15%%", db, dsb)
	}
	// The uplink serializes in schedule order, in both worlds.
	for i := range measured.Gantt[sim.ResUplink] {
		mj := measured.Gantt[sim.ResUplink][i].JobID
		sj := simRes.Gantt[sim.ResUplink][i].JobID
		if mj != sj {
			t.Errorf("uplink slot %d: measured job %d, simulated job %d", i, mj, sj)
		}
	}
}

// Metrics and exports after a real run: counters reflect the wire
// traffic exactly, the gauge returns to idle, and both trace export
// formats produce parseable output.
func TestObsMetricsAndExports(t *testing.T) {
	m := testModel(t)
	reg := obs.NewMetrics()
	o := NewObs(obs.NewTracer(0), reg)
	cConn, sConn := net.Pipe()
	defer cConn.Close()
	srv := NewServer(m).WithWorkers(2).WithObs(o)
	t.Cleanup(srv.Close)
	go func() { defer sConn.Close(); _ = srv.HandleConn(sConn) }()
	cl := NewClient(cConn, m, netsim.WiFi, 1e-6).WithObs(o)

	const (
		n   = 6
		cut = 1
	)
	plan := uniformPlan(n, cut)
	inputs := make([]*tensor.Tensor, n)
	for i := range inputs {
		inputs[i] = input(i)
	}
	if _, err := cl.RunPlan(plan, inputs); err != nil {
		t.Fatal(err)
	}
	units := profile.LineView(m.Graph())
	reqBytes := int64(RequestWireBytes(m.Graph().Node(units[cut].Exit).OutShape))
	waitSettled(t, func() bool {
		return o.ServerJobs.Value() == n && o.BytesUp.Value() == n*reqBytes
	})

	if got := o.JobsCompleted.Value(); got != n {
		t.Errorf("jobs completed = %d, want %d", got, n)
	}
	if got := o.BytesUp.Value(); got != n*reqBytes {
		t.Errorf("uplink bytes = %d, want %d", got, n*reqBytes)
	}
	if got := o.BytesDown.Value(); got != n*replyWireBytes {
		t.Errorf("downlink bytes = %d, want %d", got, int64(n*replyWireBytes))
	}
	if got := o.ServerJobs.Value(); got != n {
		t.Errorf("server jobs = %d, want %d", got, n)
	}
	if got := o.ServerRxBytes.Value(); got != n*reqBytes {
		t.Errorf("server rx bytes = %d, want %d", got, n*reqBytes)
	}
	if got := o.ServerTxBytes.Value(); got != n*replyWireBytes {
		t.Errorf("server tx bytes = %d, want %d", got, int64(n*replyWireBytes))
	}
	if got := o.WorkersBusy.Value(); got != 0 {
		t.Errorf("workers busy = %g after run, want 0", got)
	}
	if got := o.ReplyLatency.Count(); got != n {
		t.Errorf("reply latency count = %d, want %d", got, n)
	}

	var chrome bytes.Buffer
	if err := o.Tracer.WriteChromeTrace(&chrome); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(chrome.Bytes(), &parsed); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(parsed.TraceEvents) == 0 {
		t.Error("chrome trace has no events")
	}

	var prom strings.Builder
	if err := reg.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"jps_client_jobs_completed_total 6",
		"jps_server_jobs_total 6",
		"jps_client_reply_latency_ms_count 6",
	} {
		if !strings.Contains(prom.String(), want) {
			t.Errorf("prometheus exposition missing %q", want)
		}
	}
}
