package runtime

import (
	"fmt"
	"time"

	"dnnjps/internal/engine"
	"dnnjps/internal/tensor"
)

// Cross-job micro-batching. The coalescer sits between the
// connection's frame decoder and the worker pool: decoded infer
// requests are grouped by cut layer, a group is held open for at most
// the batching window (or until it reaches the max size), and the
// whole group executes as ONE batched suffix pass — each conv/dense
// layer of the suffix runs a single widened SGEMM instead of one
// narrow GEMM per job. Replies fan back out per JobID.
//
// Grouping by cut is grouping by shape: every job of a plan shares the
// model, and a cut determines the boundary tensor shape. Theorem 5.3
// concentrates a plan's cuts on at most two adjacent layers, so a
// connection's traffic clusters into at most two batchable groups —
// the best case for this coalescer. Per-job shape validation still
// happens inside inferBatch so one malformed request cannot poison its
// group's valid members.

// pendingJob is one decoded request waiting in a batch group.
type pendingJob struct {
	req  *inferRequest
	recv time.Time // decode completion; queue attribution starts here
}

// batchGroup accumulates same-cut jobs until flush.
type batchGroup struct {
	cut      uint32
	jobs     []pendingJob
	deadline time.Time // recv of the first member + window
}

// coalescer owns one connection's batch state. All grouping runs on a
// single goroutine (run), which is also the only dispatcher into the
// worker pool — no shared mutable state, no timer races with the read
// loop, and a deterministic flush order on connection EOF.
type coalescer struct {
	window   time.Duration
	max      int
	dispatch func(func() error) bool // hands a job to the pool; false = connection failed
	stop     <-chan struct{}         // connection failure signal
	reqs     chan pendingJob         // read loop -> coalescer; closed on EOF
	done     chan struct{}           // closed when run exits (all groups flushed)
}

func newCoalescer(window time.Duration, max int, dispatch func(func() error) bool, stop <-chan struct{}, run func(*batchGroup, time.Time) error) *coalescer {
	c := &coalescer{
		window:   window,
		max:      max,
		dispatch: dispatch,
		stop:     stop,
		reqs:     make(chan pendingJob, max),
		done:     make(chan struct{}),
	}
	go c.run(run)
	return c
}

// submit hands one decoded request to the coalescer, backing off to
// the stop signal so a failed connection never blocks the reader.
func (c *coalescer) submit(pj pendingJob) bool {
	select {
	case c.reqs <- pj:
		return true
	case <-c.stop:
		return false
	}
}

// finish signals EOF and waits until every pending group has been
// flushed into the pool. The caller must close the pool only after
// finish returns, and must call finish exactly once.
func (c *coalescer) finish() {
	close(c.reqs)
	<-c.done
}

// run is the coalescer goroutine: it accumulates groups, flushes each
// on max size or window expiry, and drains everything on EOF.
func (c *coalescer) run(exec func(*batchGroup, time.Time) error) {
	defer close(c.done)
	groups := make(map[uint32]*batchGroup)
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	armed := false
	dead := false // pool dispatch failed: consume but discard
	flush := func(g *batchGroup) {
		delete(groups, g.cut)
		if dead {
			return
		}
		flushed := time.Now()
		if !c.dispatch(func() error { return exec(g, flushed) }) {
			dead = true
		}
	}
	for {
		if armed && !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		armed = false
		var tc <-chan time.Time
		if !dead && len(groups) > 0 {
			var earliest time.Time
			for _, g := range groups {
				if earliest.IsZero() || g.deadline.Before(earliest) {
					earliest = g.deadline
				}
			}
			timer.Reset(time.Until(earliest))
			armed = true
			tc = timer.C
		}
		select {
		case pj, ok := <-c.reqs:
			if !ok {
				// EOF: flush every open group, oldest deadline first.
				for len(groups) > 0 {
					var oldest *batchGroup
					for _, g := range groups {
						if oldest == nil || g.deadline.Before(oldest.deadline) {
							oldest = g
						}
					}
					flush(oldest)
				}
				return
			}
			if dead {
				continue
			}
			g := groups[pj.req.Cut]
			if g == nil {
				g = &batchGroup{cut: pj.req.Cut, deadline: time.Now().Add(c.window)}
				groups[pj.req.Cut] = g
			}
			g.jobs = append(g.jobs, pj)
			if len(g.jobs) >= c.max {
				flush(g)
			}
		case now := <-tc:
			armed = false
			for _, g := range groups {
				if !g.deadline.After(now) {
					flush(g)
				}
			}
		}
	}
}

// runBatch executes one flushed group on a pool worker: coalesce-wait
// and queue-wait spans per member, one batched suffix execution, then
// per-JobID replies. QueueNs covers recv -> worker start, so the
// coalescing window shows up as queue time on the server — not as
// phantom communication delay in the client's CommMs attribution.
// CloudNs reports the group's shared compute wall time to every
// member. An invalid member does not abort the group: valid replies go
// out first and the connection fails afterwards with that job's error.
func (s *Server) runBatch(g *batchGroup, flushed time.Time, reply func(*inferReply) error) error {
	start := time.Now()
	o := s.obsv
	if o != nil {
		for _, pj := range g.jobs {
			o.span(TrackServer, SpanCoalesceWait, int(pj.req.JobID), pj.recv, flushed)
			o.span(TrackServer, SpanQueueWait, int(pj.req.JobID), flushed, start)
		}
		o.WorkersBusy.Add(1)
		o.BatchSize.Observe(float64(len(g.jobs)))
		if len(g.jobs) > 1 {
			o.BatchedJobs.Add(int64(len(g.jobs)))
		} else {
			o.SoloJobs.Inc()
		}
	}
	reps, batchErr := s.inferBatch(g.jobs, start)
	end := time.Now()
	if o != nil {
		o.WorkersBusy.Add(-1)
	}
	for _, rep := range reps {
		o.span(TrackServer, SpanCloudCompute, int(rep.JobID), start, end)
		if err := reply(rep); err != nil {
			return err
		}
	}
	return batchErr
}

// inferBatch packs the group's valid boundary tensors and resumes the
// model once at batch size len(valid). Replies carry the per-image
// argmax; outputs are bit-identical to running each job solo (the
// engine's batched kernels share the batch-1 accumulation order).
// The error, if any, belongs to the first invalid member; replies for
// valid members are returned alongside it.
func (s *Server) inferBatch(jobs []pendingJob, start time.Time) ([]*inferReply, error) {
	cut := int(jobs[0].req.Cut)
	if cut < 0 || cut >= len(s.units) {
		return nil, fmt.Errorf("runtime: cut %d out of range [0,%d)", cut, len(s.units))
	}
	boundary := s.units[cut].Exit
	wantShape := s.model.Graph().Node(boundary).OutShape
	var firstErr error
	valid := make([]pendingJob, 0, len(jobs))
	for _, pj := range jobs {
		if !pj.req.Tensor.Shape.Equal(wantShape) {
			if firstErr == nil {
				firstErr = fmt.Errorf("runtime: job %d boundary tensor %v, cut %d wants %v",
					pj.req.JobID, pj.req.Tensor.Shape, cut, wantShape)
			}
			continue
		}
		valid = append(valid, pj)
	}
	if len(valid) == 0 {
		return nil, firstErr
	}
	n := len(valid)
	tensors := make([]*tensor.Tensor, n)
	for i, pj := range valid {
		tensors[i] = pj.req.Tensor
	}
	packed, err := engine.PackBatch(tensors)
	if err != nil {
		return nil, err
	}
	computeStart := time.Now()
	acts := map[int]*tensor.Tensor{boundary: packed}
	if err := s.model.ExecuteBatch(acts, n, nil, s.suffix[cut]); err != nil {
		return nil, err
	}
	classes := engine.ArgmaxBatch(acts[s.model.Graph().Sink()], n)
	cloudNs := time.Since(computeStart).Nanoseconds()
	reps := make([]*inferReply, n)
	for i, pj := range valid {
		reps[i] = &inferReply{
			JobID:   pj.req.JobID,
			Class:   int32(classes[i]),
			CloudNs: cloudNs,
			QueueNs: start.Sub(pj.recv).Nanoseconds(),
		}
	}
	return reps, firstErr
}
