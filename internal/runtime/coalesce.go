package runtime

import (
	"time"
)

// Cross-connection micro-batching. The coalescer sits between the
// fleet scheduler's dispatcher and the global worker pool: admitted
// infer requests from EVERY connection are grouped by cut layer, a
// group is held open for at most the batching window (or until it
// reaches the max size), and the whole group executes as ONE batched
// suffix pass — each conv/dense layer of the suffix runs a single
// widened SGEMM instead of one narrow GEMM per job. Replies fan back
// out per job to the owning connection's write mutex.
//
// Grouping by cut is grouping by shape: the server holds one model, so
// the (cut, model) group key of the design collapses to the cut index,
// and a cut determines the boundary tensor shape. Theorem 5.3
// concentrates a plan's cuts on at most two adjacent layers, so fleet
// traffic against one model clusters into at most two batchable shapes
// per plan — the best case for this coalescer: the more clients
// offload concurrently, the fuller the groups get. Per-job shape
// validation still happens inside inferBatch so one malformed request
// cannot poison its group's valid members, and a bad member fails only
// its own connection (see fleetScheduler.runBatch).

// batchGroup accumulates same-cut jobs until flush. Members may come
// from different connections and tenants.
type batchGroup struct {
	cut      uint32
	jobs     []pendingJob
	deadline time.Time // recv of the first member + window
}

// coalescer owns the server-wide batch state. All grouping runs on a
// single goroutine (run), which hands flushed groups to the global
// worker pool — no shared mutable state and no timer races with the
// per-connection read loops.
type coalescer struct {
	window   time.Duration
	max      int
	dispatch func(func())    // hands a flushed group to the pool; may block
	reqs     chan pendingJob // scheduler dispatcher -> coalescer; closed on shutdown
	done     chan struct{}   // closed when run exits (all groups flushed)
}

func newCoalescer(window time.Duration, max int, dispatch func(func()), exec func(*batchGroup, time.Time)) *coalescer {
	c := &coalescer{
		window:   window,
		max:      max,
		dispatch: dispatch,
		reqs:     make(chan pendingJob, max),
		done:     make(chan struct{}),
	}
	go c.run(exec)
	return c
}

// submit hands one admitted request to the coalescer. It may block
// when the pool is saturated — that is the backpressure chain the
// admission controller's queue depth measures.
func (c *coalescer) submit(pj pendingJob) {
	c.reqs <- pj
}

// finish signals shutdown and waits until every pending group has been
// flushed into the pool. The caller must close the pool only after
// finish returns (the coalescer is a pool sender), and must be the
// only submitter when it calls finish, exactly once.
func (c *coalescer) finish() {
	close(c.reqs)
	<-c.done
}

// run is the coalescer goroutine: it accumulates groups, flushes each
// on max size or window expiry, and drains everything on shutdown.
func (c *coalescer) run(exec func(*batchGroup, time.Time)) {
	defer close(c.done)
	groups := make(map[uint32]*batchGroup)
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	armed := false
	flush := func(g *batchGroup) {
		delete(groups, g.cut)
		flushed := time.Now()
		c.dispatch(func() { exec(g, flushed) })
	}
	for {
		if armed && !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		armed = false
		var tc <-chan time.Time
		if len(groups) > 0 {
			var earliest time.Time
			for _, g := range groups {
				if earliest.IsZero() || g.deadline.Before(earliest) {
					earliest = g.deadline
				}
			}
			timer.Reset(time.Until(earliest))
			armed = true
			tc = timer.C
		}
		select {
		case pj, ok := <-c.reqs:
			if !ok {
				// Shutdown: flush every open group, oldest deadline first,
				// so in-flight jobs still get replies (graceful drain).
				for len(groups) > 0 {
					var oldest *batchGroup
					for _, g := range groups {
						if oldest == nil || g.deadline.Before(oldest.deadline) {
							oldest = g
						}
					}
					flush(oldest)
				}
				return
			}
			g := groups[pj.req.Cut]
			if g == nil {
				g = &batchGroup{cut: pj.req.Cut, deadline: time.Now().Add(c.window)}
				groups[pj.req.Cut] = g
			}
			g.jobs = append(g.jobs, pj)
			if len(g.jobs) >= c.max {
				flush(g)
			}
		case now := <-tc:
			armed = false
			for _, g := range groups {
				if !g.deadline.After(now) {
					flush(g)
				}
			}
		}
	}
}
