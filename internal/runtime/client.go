package runtime

import (
	"bufio"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"dnnjps/internal/core"
	"dnnjps/internal/engine"
	"dnnjps/internal/estimator"
	"dnnjps/internal/netsim"
	"dnnjps/internal/profile"
	"dnnjps/internal/regression"
	"dnnjps/internal/tensor"
)

// sendQueueCap bounds how far the compute worker may run ahead of the
// uplink before it blocks. The flow-shop model assumes an unbounded
// buffer between the two machines; a generous cap keeps that property
// for realistic burst sizes while bounding boundary-tensor memory.
const sendQueueCap = 512

// Client is the mobile side: it executes mobile prefixes locally,
// uploads boundary tensors over a bandwidth-shaped link, and collects
// results. The transport is full duplex: a dedicated writer goroutine
// owns the uplink, so it is busy for exactly g(x) per job, and a
// reply-demultiplexer goroutine owns the downlink, matching each
// inferReply.JobID to its in-flight job. Cloud compute of job i
// therefore overlaps the upload of job i+1 — the two-resource pipeline
// the scheduler models (§3.1, Prop. 4.1).
type Client struct {
	model  *engine.Model
	units  []profile.Unit
	conn   *netsim.ShapedConn
	r      *bufio.Reader
	w      *bufio.Writer
	ch     netsim.Channel
	scale  float64
	obsv   *Obs                 // optional tracing + metrics; nil disables recording
	est    *estimator.Estimator // optional online link estimator; nil disables feeding
	tenant string               // non-empty: sent as a hello frame before any request

	once  sync.Once // starts the writer + demux goroutines lazily
	sendQ chan wireMsg

	mu         sync.Mutex
	calls      map[uint32]*call // in-flight inferences keyed by JobID
	pongs      []*call          // FIFO calibration waiters
	err        error            // first transport error, sticky
	failed     chan struct{}    // closed once err is set
	ioStarted  bool             // the once fired (readerDone will close)
	readerDone chan struct{}    // closed when the demux goroutine exits

	// Uplink health accounting: per completed upload, the channel-model
	// expectation vs the wall measurement (both channel-scale ms). The
	// fault-tolerant runner reads the ratio to detect degradation.
	// Expectations are priced against expCh, which starts as the wire
	// channel but is rebased by ResetLinkHealth after a replan adopts a
	// new channel model (c.ch itself stays fixed — the writer goroutine
	// reads its SetupMs without the lock).
	expCh       netsim.Channel
	upExpectMs  float64
	upMeasureMs float64
	upSamples   int

	// Server-pressure accounting off the admission-control flags every
	// reply carries (see fleet.go). The runner reads ServerPressure to
	// decide on a hint-driven replan toward local compute.
	replySamples int     // inference replies seen
	bpReplies    int     // of those, replies with the backpressure flag
	queueMsSum   float64 // server-reported queue wait across all replies
}

// call tracks one in-flight request from enqueue to reply.
type call struct {
	res     *JobResult // nil for pings
	sent    time.Time  // transmission start, set by the writer (under mu)
	sentEnd time.Time  // upload flushed, set by the writer (under mu)
	rtt     float64    // ms from transmission start to reply (pings)
	ok      bool       // reply delivered (false = transport failure)
	done    chan struct{}
}

// wireMsg is one unit of work for the writer goroutine.
type wireMsg struct {
	c    *call
	req  *inferRequest // nil for a ping
	ping int
	enq  time.Time // when the message entered the send queue
}

// NewClient wraps a connection to a Server. timeScale compresses
// simulated network time (see netsim.Shape); pass 1 for real time.
// The client's I/O goroutines start on first remote use and stop on
// the first transport error (including the peer closing the
// connection).
func NewClient(conn net.Conn, m *engine.Model, ch netsim.Channel, timeScale float64) *Client {
	shaped := netsim.Shape(conn, ch, timeScale)
	return &Client{
		model: m,
		units: profile.LineView(m.Graph()),
		// Reads go through the shaper too: with a modeled downlink the
		// reply frames are paced; otherwise Read is a passthrough.
		conn:       shaped,
		r:          bufio.NewReaderSize(shaped, 1<<16),
		w:          bufio.NewWriterSize(shaped, 1<<16),
		ch:         ch,
		expCh:      ch,
		scale:      timeScale,
		sendQ:      make(chan wireMsg, sendQueueCap),
		calls:      make(map[uint32]*call),
		failed:     make(chan struct{}),
		readerDone: make(chan struct{}),
	}
}

// WithObs attaches a tracing + metrics bundle. Must be called before
// the client's first remote use; returns c for chaining. The client
// records per-job spans (local-compute, queue-wait, serialize, upload,
// reply-wait) and the uplink/job metrics documented on Obs.
func (c *Client) WithObs(o *Obs) *Client {
	c.obsv = o
	return c
}

// WithEstimator attaches an online link estimator: every completed
// upload's ground-truth (bytes, channel-scale duration) and every
// reply's total latency are fed into it, so the estimator sees exactly
// what the shaper did, not what the channel model predicted. The same
// estimator may outlive the client — the fault-tolerant runner threads
// one across reconnect attempts so the bandwidth estimate carries
// over. Must be called before the client's first remote use; returns c
// for chaining.
func (c *Client) WithEstimator(e *estimator.Estimator) *Client {
	c.est = e
	return c
}

// WithTenant sets the tenant ID this client announces to the server's
// fleet scheduler (a hello frame sent before the first request). Must
// be called before the client's first remote use; returns c for
// chaining. Clients without a tenant share the server's DefaultTenant
// queue.
func (c *Client) WithTenant(name string) *Client {
	c.tenant = name
	return c
}

// Units returns the number of cut positions of the client's model.
func (c *Client) Units() int { return len(c.units) }

// Err returns the client's sticky transport error, if any. Once set,
// every in-flight and future remote call fails with it.
func (c *Client) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Close tears down the connection. In-flight jobs fail promptly with
// the resulting read/write error.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) startIO() {
	c.once.Do(func() {
		c.mu.Lock()
		c.ioStarted = true
		c.mu.Unlock()
		// The tenant handshake goes out before the writer goroutine
		// exists, so it is guaranteed to precede every request frame and
		// needs no write coordination.
		if c.tenant != "" {
			err := writeHello(c.w, c.tenant)
			if err == nil {
				err = c.w.Flush()
			}
			if err != nil {
				c.fail(err)
			}
		}
		go c.writeLoop()
		go c.readLoop()
	})
}

// drainReader blocks until the reply demultiplexer has exited, after
// which no further deliveries into registered JobResults can happen.
// Close the connection first, or this waits on the peer. No-op if I/O
// never started. The fault-tolerant runner calls this between
// connection attempts so a straggler reply from a dead attempt can
// never race the same job's resubmission.
func (c *Client) drainReader() {
	c.mu.Lock()
	started := c.ioStarted
	c.mu.Unlock()
	if started {
		<-c.readerDone
	}
}

// fail records the first transport error and wakes every waiter.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.err != nil {
		c.mu.Unlock()
		return
	}
	c.err = err
	close(c.failed)
	calls := c.calls
	c.calls = make(map[uint32]*call)
	pongs := c.pongs
	c.pongs = nil
	c.mu.Unlock()
	for _, cl := range calls {
		close(cl.done)
	}
	for _, cl := range pongs {
		close(cl.done)
	}
}

// writeLoop is the uplink resource: it serializes messages one at a
// time, applying the per-message channel setup latency through the
// shaper so g(l) = w0 + bytes/bandwidth holds per request.
func (c *Client) writeLoop() {
	for {
		select {
		case msg := <-c.sendQ:
			start := time.Now()
			c.mu.Lock()
			msg.c.sent = start
			c.mu.Unlock()
			jobID := -1
			if msg.req != nil {
				jobID = int(msg.req.JobID)
			}
			c.obsv.span(TrackUplink, SpanQueueWait, jobID, msg.enq, start)
			c.conn.Delay(time.Duration(c.ch.SetupMs * float64(time.Millisecond)))
			serStart := time.Now()
			var err error
			if msg.req != nil {
				err = writeInferRequest(c.w, msg.req)
			} else {
				err = writePing(c.w, msg.ping)
			}
			serEnd := time.Now()
			if err == nil {
				err = c.w.Flush()
			}
			if err != nil {
				c.fail(err)
				return
			}
			end := time.Now()
			c.mu.Lock()
			msg.c.sentEnd = end
			c.mu.Unlock()
			c.obsv.span(TrackUplink, SpanUpload, jobID, start, end)
			if msg.req != nil {
				c.obsv.span(TrackUplink, SpanSerialize, jobID, serStart, serEnd)
				c.noteUpload(reqWireBytes(msg.req), end.Sub(start))
			}
		case <-c.failed:
			return
		}
	}
}

// readLoop is the reply demultiplexer: replies may arrive in any order
// (the server executes jobs on a worker pool), and each is matched to
// its in-flight call by JobID. A reply for an unknown or
// already-answered job is a protocol violation that fails the client.
func (c *Client) readLoop() {
	defer close(c.readerDone)
	for {
		typ, err := c.r.ReadByte()
		if err != nil {
			c.fail(err)
			return
		}
		switch typ {
		case msgInfer:
			rep, err := readInferReplyBody(c.r)
			if err != nil {
				c.fail(err)
				return
			}
			if err := c.deliver(rep); err != nil {
				c.fail(err)
				return
			}
		case msgPing:
			if err := c.deliverPong(); err != nil {
				c.fail(err)
				return
			}
		default:
			c.fail(fmt.Errorf("runtime: unexpected reply type %d", typ))
			return
		}
	}
}

// deliver routes one inference reply to its job.
func (c *Client) deliver(rep inferReply) error {
	now := time.Now()
	c.mu.Lock()
	cl, ok := c.calls[rep.JobID]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("runtime: reply for unknown or duplicate job %d", rep.JobID)
	}
	delete(c.calls, rep.JobID)
	total := now.Sub(cl.sent)
	sentEnd := cl.sentEnd
	c.mu.Unlock()
	res := cl.res
	res.CloudMs = float64(rep.CloudNs) / 1e6
	res.QueueMs = float64(rep.QueueNs) / 1e6
	// The paper's td − tc: round trip minus the server's own stages
	// (compute, and since the pool can queue under load, queue wait).
	res.CommMs = float64(total.Nanoseconds())/1e6 - res.CloudMs - res.QueueMs
	res.Class = int(rep.Class)
	res.Shed = rep.Flags&replyFlagShed != 0
	res.Done = now
	c.notePressure(rep.Flags, res.QueueMs)
	// Feed the reply-latency EWMA in channel-scale ms, matching the
	// upload feed in noteUpload.
	c.est.AddReply(float64(total.Nanoseconds()) / 1e6 / c.scale)
	if !sentEnd.IsZero() {
		c.obsv.span(TrackCloud, SpanReplyWait, int(rep.JobID), sentEnd, now)
	}
	if o := c.obsv; o != nil {
		o.JobsCompleted.Inc()
		o.BytesDown.Add(replyWireBytes)
		o.ReplyLatency.Observe(float64(total.Nanoseconds()) / 1e6)
	}
	cl.ok = true
	close(cl.done)
	return nil
}

// deliverPong routes a calibration acknowledgment to the oldest
// outstanding ping.
func (c *Client) deliverPong() error {
	now := time.Now()
	c.mu.Lock()
	if len(c.pongs) == 0 {
		c.mu.Unlock()
		return fmt.Errorf("runtime: unsolicited pong")
	}
	cl := c.pongs[0]
	c.pongs = c.pongs[1:]
	cl.rtt = float64(now.Sub(cl.sent).Nanoseconds()) / 1e6
	c.mu.Unlock()
	cl.ok = true
	close(cl.done)
	return nil
}

// enqueueInfer registers the job with the demultiplexer and hands the
// request to the writer. Registration happens before the request can
// reach the wire, so a reply can never race its own job.
//
// On a quantized model the boundary ships as int8 codes under the
// exit node's calibrated mapping — a quarter of the float32 payload —
// and the frame carries the mapping, so the server decodes it without
// sharing the calibration.
func (c *Client) enqueueInfer(res *JobResult, cut int, boundary *tensor.Tensor) (*call, error) {
	c.startIO()
	req := &inferRequest{JobID: uint32(res.JobID), Cut: uint32(cut), Tensor: boundary}
	if c.model.IsQuantized() {
		qp, err := c.model.ActivationQParams(c.units[cut].Exit)
		if err != nil {
			return nil, err
		}
		req.Quant = tensor.QuantizeTensor(boundary, qp)
		req.Tensor = nil
	}
	cl := &call{res: res, done: make(chan struct{})}
	id := req.JobID
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	if _, dup := c.calls[id]; dup {
		c.mu.Unlock()
		return nil, fmt.Errorf("runtime: job %d already in flight", res.JobID)
	}
	c.calls[id] = cl
	c.mu.Unlock()
	select {
	case c.sendQ <- wireMsg{c: cl, req: req, enq: time.Now()}:
		return cl, nil
	case <-c.failed:
		c.mu.Lock()
		delete(c.calls, id)
		c.mu.Unlock()
		return nil, c.Err()
	}
}

// await blocks until the call completes or the transport fails.
func (c *Client) await(cl *call) error {
	<-cl.done
	if !cl.ok {
		if err := c.Err(); err != nil {
			return err
		}
		return fmt.Errorf("runtime: connection closed")
	}
	return nil
}

// ErrJobTimeout is returned by deadline-bounded awaits when the reply
// did not arrive in time. The caller owns recovery: the connection is
// left untouched (typically it tears it down and retries elsewhere).
var ErrJobTimeout = fmt.Errorf("runtime: job deadline exceeded")

// awaitTimeout is await with a per-job deadline. d <= 0 waits forever.
func (c *Client) awaitTimeout(cl *call, d time.Duration) error {
	if d <= 0 {
		return c.await(cl)
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-cl.done:
	case <-timer.C:
		return ErrJobTimeout
	}
	if !cl.ok {
		if err := c.Err(); err != nil {
			return err
		}
		return fmt.Errorf("runtime: connection closed")
	}
	return nil
}

// estMinSampleBytes is the smallest upload fed to the online
// estimator. Below this, transmission time is dominated by timer
// granularity and scheduling noise rather than the link (a 168-byte
// frame crosses an 8 Mb/s channel in 168 µs — well under a sleep
// quantum), so such samples measure the host, not the bandwidth.
// Consequence: a plan that only ships tiny boundaries freezes the
// estimate at its last fat-upload value — the estimator can only see
// what the plan uploads (noted in DESIGN.md "Adaptive replanning").
const estMinSampleBytes = 1024

// noteUpload records one completed upload against the channel model,
// feeds the online estimator, and publishes the uplink metrics.
func (c *Client) noteUpload(bytes int, wall time.Duration) {
	measuredMs := float64(wall) / float64(time.Millisecond) / c.scale
	c.mu.Lock()
	c.upExpectMs += c.expCh.TxMs(bytes)
	c.upMeasureMs += measuredMs
	c.upSamples++
	c.mu.Unlock()
	fired := false
	if bytes >= estMinSampleBytes {
		_, fired = c.est.AddUpload(bytes, measuredMs)
	}
	if o := c.obsv; o != nil {
		o.BytesUp.Add(int64(bytes))
		if measuredMs > 0 {
			// Channel-scale throughput of this upload in Mb/s.
			o.LinkMbps.Set(float64(bytes) * 8 / (measuredMs * 1000))
		}
		if est, n := c.est.Mbps(); n > 0 {
			o.EstMbps.Set(est)
		}
		if fired {
			o.ChangePoints.Inc()
			o.event(TrackUplink, EventChangePoint, -1, time.Now())
		}
		o.ConnBytes.Set(float64(c.conn.BytesWritten()))
	}
}

// ResetLinkHealth rebases the uplink health accounting on a new
// channel model and clears the accumulated samples. The fault-tolerant
// runner calls this right after a replan adopts a measured channel, so
// a later LinkHealth reading compares uploads against the plan that is
// actually in force — without the rebase, a second degradation in the
// same run would be measured against the original nominal model and
// the repriced bandwidth would compound quadratically. The online
// estimator is deliberately NOT reset: it tracks absolute throughput
// and carries its history across replans.
func (c *Client) ResetLinkHealth(ch netsim.Channel) {
	c.mu.Lock()
	c.expCh = ch
	c.upExpectMs, c.upMeasureMs, c.upSamples = 0, 0, 0
	c.mu.Unlock()
}

// notePressure folds one reply's admission-control flags into the
// server-pressure estimate.
func (c *Client) notePressure(flags uint8, queueMs float64) {
	c.mu.Lock()
	c.replySamples++
	if flags&replyFlagBackpressure != 0 {
		c.bpReplies++
	}
	c.queueMsSum += queueMs
	c.mu.Unlock()
}

// ServerPressure reports what the server's piggybacked admission-
// control hints say about cloud saturation: the fraction of replies
// carrying the backpressure flag, the mean server-reported queue wait,
// and how many replies are behind the estimate (rate is 0 when no
// reply has arrived yet). The fault-tolerant runner feeds these into
// the hint-driven replan (core.ReplanWithHint).
func (c *Client) ServerPressure() (rate float64, meanQueueMs float64, samples int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.replySamples == 0 {
		return 0, 0, 0
	}
	return float64(c.bpReplies) / float64(c.replySamples),
		c.queueMsSum / float64(c.replySamples), c.replySamples
}

// LinkHealth reports the uplink's measured speed relative to the
// channel model: 1.0 means uploads complete exactly as fast as
// g(x) predicts, 0.5 means the link runs at half the planned rate.
// samples is the number of completed uploads behind the estimate.
// Health is 1 whenever there is no signal: no upload has finished
// yet, nothing measurable accumulated, or every upload was zero-byte
// (the channel model expects 0 ms for those, so a ratio would read as
// total degradation on no evidence).
func (c *Client) LinkHealth() (health float64, samples int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.upSamples == 0 || c.upMeasureMs <= 0 || c.upExpectMs <= 0 {
		return 1, c.upSamples
	}
	return c.upExpectMs / c.upMeasureMs, c.upSamples
}

// JobResult is the outcome of one inference job.
type JobResult struct {
	JobID    int
	Class    int
	Cut      int
	MobileMs float64 // measured local compute time
	CommMs   float64 // measured upload + reply time minus server compute and queueing
	CloudMs  float64 // server-reported compute time
	QueueMs  float64 // server-reported worker-pool queue wait
	Shed     bool    // true: admission control refused the job (Class is -1, no inference ran)
	Done     time.Time
}

// RunJob executes a single job synchronously: prefix locally, upload,
// remote suffix. A cut at the last unit runs fully local; a cut at 0
// ships the raw input (cloud-only).
func (c *Client) RunJob(jobID, cut int, input *tensor.Tensor) (*JobResult, error) {
	boundary, res, err := c.computePrefix(jobID, cut, input)
	if err != nil {
		return nil, err
	}
	if boundary == nil {
		return res, nil // fully local
	}
	cl, err := c.enqueueInfer(res, cut, boundary)
	if err != nil {
		return nil, err
	}
	if err := c.await(cl); err != nil {
		return nil, err
	}
	return res, nil
}

// computePrefix runs the mobile part. Returns a nil boundary when the
// job completed locally.
func (c *Client) computePrefix(jobID, cut int, input *tensor.Tensor) (*tensor.Tensor, *JobResult, error) {
	start := time.Now()
	boundary, res, err := runPrefix(c.model, c.units, jobID, cut, input)
	if err == nil {
		c.obsv.span(TrackMobile, SpanLocalCompute, jobID, start, time.Now())
	}
	return boundary, res, err
}

// runPrefix executes the mobile prefix of one job on the engine; it is
// shared by the connected client and the fault-tolerant runner's
// local-fallback path (which has no live transport). Returns a nil
// boundary when the cut is the last unit, i.e. the job completed
// locally.
func runPrefix(m *engine.Model, units []profile.Unit, jobID, cut int, input *tensor.Tensor) (*tensor.Tensor, *JobResult, error) {
	if cut < 0 || cut >= len(units) {
		return nil, nil, fmt.Errorf("runtime: cut %d out of range [0,%d)", cut, len(units))
	}
	res := &JobResult{JobID: jobID, Cut: cut}
	var prefix []int
	for _, u := range units[:cut+1] {
		prefix = append(prefix, u.Nodes...)
	}
	start := time.Now()
	// Execute recycles intermediate activations through the model's
	// arena, but the boundary tensor (and the sink on a fully-local
	// cut) has consumers outside the prefix, so it is kept live.
	acts := map[int]*tensor.Tensor{}
	if err := m.Execute(acts, input, prefix); err != nil {
		return nil, nil, err
	}
	res.MobileMs = float64(time.Since(start).Nanoseconds()) / 1e6
	if cut == len(units)-1 {
		res.Class = engine.Argmax(acts[m.Graph().Sink()])
		res.Done = time.Now()
		return nil, res, nil
	}
	return acts[units[cut].Exit], res, nil
}

// Report aggregates a pipelined run.
type Report struct {
	// Results holds one entry per job, sorted by JobID regardless of
	// completion order, so reports are deterministic.
	Results    []*JobResult
	MakespanMs float64
}

// RunPlan executes a whole plan with full pipelining: jobs are
// computed in schedule order on the mobile CPU while the writer
// goroutine streams completed boundary tensors up the link and the
// demultiplexer collects (possibly out-of-order) replies — the
// two-resource pipeline of §3.1 plus an overlapped cloud stage.
// inputs[i] feeds job i (Plan job IDs index inputs). The first error
// from any stage aborts the run promptly: compute stops at the next
// job boundary instead of draining the whole plan.
func (c *Client) RunPlan(p *core.Plan, inputs []*tensor.Tensor) (*Report, error) {
	if len(inputs) != len(p.Cuts) {
		return nil, fmt.Errorf("runtime: %d inputs for %d jobs", len(inputs), len(p.Cuts))
	}
	start := time.Now()
	results := make([]*JobResult, 0, len(p.Cuts))
	calls := make([]*call, 0, len(p.Cuts))

	// Compute worker: the mobile CPU, in Johnson order.
	for _, fj := range p.Sequence {
		if err := c.Err(); err != nil {
			return nil, err // uplink or downlink already failed
		}
		cut := p.Cuts[fj.ID]
		boundary, res, err := c.computePrefix(fj.ID, cut, inputs[fj.ID])
		if err != nil {
			return nil, err
		}
		results = append(results, res)
		if boundary == nil {
			continue // fully local job
		}
		cl, err := c.enqueueInfer(res, cut, boundary)
		if err != nil {
			return nil, err
		}
		calls = append(calls, cl)
	}
	for _, cl := range calls {
		if err := c.await(cl); err != nil {
			return nil, err
		}
	}

	sort.Slice(results, func(i, j int) bool { return results[i].JobID < results[j].JobID })
	rep := &Report{Results: results}
	for _, r := range results {
		if ms := float64(r.Done.Sub(start).Nanoseconds()) / 1e6; ms > rep.MakespanMs {
			rep.MakespanMs = ms
		}
	}
	return rep, nil
}

// RunBoundaryJobs enqueues one job per boundary tensor at the given
// cut — all in flight at once — and awaits every reply. Unlike
// RunPlan there is no mobile stage: arrivals at the server are paced
// by the uplink alone, as if many devices shared the channel, which
// makes this the server-stage probe of the batching experiment (the
// coalescer sees genuine request concurrency instead of prefix-compute
// spacing). Job i's ID is i; boundary tensors must match the cut's
// exit shape. The cut must be a real offloaded position (not the last
// unit).
func (c *Client) RunBoundaryJobs(cut int, boundaries []*tensor.Tensor) (*Report, error) {
	if cut < 0 || cut >= len(c.units)-1 {
		return nil, fmt.Errorf("runtime: boundary-job cut %d out of range [0,%d)", cut, len(c.units)-1)
	}
	start := time.Now()
	results := make([]*JobResult, len(boundaries))
	calls := make([]*call, 0, len(boundaries))
	for i, b := range boundaries {
		res := &JobResult{JobID: i, Cut: cut}
		results[i] = res
		cl, err := c.enqueueInfer(res, cut, b)
		if err != nil {
			return nil, err
		}
		calls = append(calls, cl)
	}
	for _, cl := range calls {
		if err := c.await(cl); err != nil {
			return nil, err
		}
	}
	rep := &Report{Results: results}
	for _, r := range results {
		if ms := float64(r.Done.Sub(start).Nanoseconds()) / 1e6; ms > rep.MakespanMs {
			rep.MakespanMs = ms
		}
	}
	return rep, nil
}

// CalibrateComm measures upload latency for a ladder of payload sizes
// and fits the paper's linear model t = w0 + w1·s (per-byte form; with
// bandwidth b fixed, w1 = 8/b). The fitted line feeds the scheduler's
// communication estimates. Pings ride the same writer/demultiplexer
// pipeline as inference jobs, one at a time.
func (c *Client) CalibrateComm(sizes []int, rounds int) (regression.Linear, error) {
	if rounds <= 0 {
		rounds = 1
	}
	c.startIO()
	var xs, ys []float64
	for _, size := range sizes {
		for r := 0; r < rounds; r++ {
			cl := &call{done: make(chan struct{})}
			c.mu.Lock()
			if c.err != nil {
				err := c.err
				c.mu.Unlock()
				return regression.Linear{}, err
			}
			c.pongs = append(c.pongs, cl)
			c.mu.Unlock()
			select {
			case c.sendQ <- wireMsg{c: cl, ping: size, enq: time.Now()}:
			case <-c.failed:
				return regression.Linear{}, c.Err()
			}
			if err := c.await(cl); err != nil {
				return regression.Linear{}, err
			}
			xs = append(xs, float64(size))
			ys = append(ys, cl.rtt)
		}
	}
	return regression.FitLinear(xs, ys)
}
