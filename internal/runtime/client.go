package runtime

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"

	"dnnjps/internal/core"
	"dnnjps/internal/engine"
	"dnnjps/internal/netsim"
	"dnnjps/internal/profile"
	"dnnjps/internal/regression"
	"dnnjps/internal/tensor"
)

// Client is the mobile side: it executes mobile prefixes locally,
// uploads boundary tensors over a bandwidth-shaped link, and collects
// results. Computation and communication are pipelined exactly as the
// scheduler models them: one compute worker (the mobile CPU) and one
// upload worker (the uplink) connected by a queue.
type Client struct {
	model  *engine.Model
	units  []profile.Unit
	conn   *netsim.ShapedConn
	rw     *bufio.ReadWriter
	ch     netsim.Channel
	scale  float64
	writeM sync.Mutex
}

// NewClient wraps a connection to a Server. timeScale compresses
// simulated network time (see netsim.Shape); pass 1 for real time.
func NewClient(conn net.Conn, m *engine.Model, ch netsim.Channel, timeScale float64) *Client {
	shaped := netsim.Shape(conn, ch, timeScale)
	return &Client{
		model: m,
		units: profile.LineView(m.Graph()),
		conn:  shaped,
		rw: bufio.NewReadWriter(
			bufio.NewReaderSize(conn, 1<<16),
			bufio.NewWriterSize(shaped, 1<<16)),
		ch:    ch,
		scale: timeScale,
	}
}

// Units returns the number of cut positions of the client's model.
func (c *Client) Units() int { return len(c.units) }

// JobResult is the outcome of one inference job.
type JobResult struct {
	JobID    int
	Class    int
	Cut      int
	MobileMs float64 // measured local compute time
	CommMs   float64 // measured upload + reply time minus server compute
	CloudMs  float64 // server-reported compute time
	Done     time.Time
}

// RunJob executes a single job synchronously: prefix locally, upload,
// remote suffix. A cut at the last unit runs fully local; a cut at 0
// ships the raw input (cloud-only).
func (c *Client) RunJob(jobID, cut int, input *tensor.Tensor) (*JobResult, error) {
	boundary, res, err := c.computePrefix(jobID, cut, input)
	if err != nil {
		return nil, err
	}
	if boundary == nil {
		return res, nil // fully local
	}
	if err := c.upload(res, cut, boundary); err != nil {
		return nil, err
	}
	return res, nil
}

// computePrefix runs the mobile part. Returns a nil boundary when the
// job completed locally.
func (c *Client) computePrefix(jobID, cut int, input *tensor.Tensor) (*tensor.Tensor, *JobResult, error) {
	if cut < 0 || cut >= len(c.units) {
		return nil, nil, fmt.Errorf("runtime: cut %d out of range [0,%d)", cut, len(c.units))
	}
	res := &JobResult{JobID: jobID, Cut: cut}
	var prefix []int
	for _, u := range c.units[:cut+1] {
		prefix = append(prefix, u.Nodes...)
	}
	start := time.Now()
	// Execute recycles intermediate activations through the model's
	// arena, but the boundary tensor (and the sink on a fully-local
	// cut) has consumers outside the prefix, so it is kept live.
	acts := map[int]*tensor.Tensor{}
	if err := c.model.Execute(acts, input, prefix); err != nil {
		return nil, nil, err
	}
	res.MobileMs = float64(time.Since(start).Nanoseconds()) / 1e6
	if cut == len(c.units)-1 {
		res.Class = engine.Argmax(acts[c.model.Graph().Sink()])
		res.Done = time.Now()
		return nil, res, nil
	}
	return acts[c.units[cut].Exit], res, nil
}

// upload ships the boundary tensor and fills in the reply fields. The
// per-message channel setup latency is applied through the shaper so
// it honors the time scale, matching g(l) = w0 + bytes/bandwidth.
func (c *Client) upload(res *JobResult, cut int, boundary *tensor.Tensor) error {
	c.writeM.Lock()
	defer c.writeM.Unlock()
	start := time.Now()
	c.conn.Delay(time.Duration(c.ch.SetupMs * float64(time.Millisecond)))
	req := &inferRequest{JobID: uint32(res.JobID), Cut: uint32(cut), Tensor: boundary}
	if err := writeInferRequest(c.rw.Writer, req); err != nil {
		return err
	}
	if err := c.rw.Flush(); err != nil {
		return err
	}
	rep, err := readInferReply(c.rw.Reader)
	if err != nil {
		return err
	}
	if rep.JobID != uint32(res.JobID) {
		return fmt.Errorf("runtime: reply for job %d, want %d", rep.JobID, res.JobID)
	}
	total := float64(time.Since(start).Nanoseconds()) / 1e6
	res.CloudMs = float64(rep.CloudNs) / 1e6
	res.CommMs = total - res.CloudMs // the paper's td − tc
	res.Class = int(rep.Class)
	res.Done = time.Now()
	return nil
}

// Report aggregates a pipelined run.
type Report struct {
	Results    []*JobResult
	MakespanMs float64
}

// RunPlan executes a whole plan with pipelining: jobs are computed in
// schedule order on the compute worker while completed boundary
// tensors stream to the upload worker — the two-resource pipeline of
// §3.1. inputs[i] feeds job i (Plan job IDs index inputs).
func (c *Client) RunPlan(p *core.Plan, inputs []*tensor.Tensor) (*Report, error) {
	if len(inputs) != len(p.Cuts) {
		return nil, fmt.Errorf("runtime: %d inputs for %d jobs", len(inputs), len(p.Cuts))
	}
	type pending struct {
		res      *JobResult
		cut      int
		boundary *tensor.Tensor
	}
	queue := make(chan pending, len(p.Cuts))
	errCh := make(chan error, 2)
	results := make([]*JobResult, 0, len(p.Cuts))
	var mu sync.Mutex
	start := time.Now()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // upload worker: the uplink resource
		defer wg.Done()
		for pend := range queue {
			if pend.boundary == nil {
				mu.Lock()
				results = append(results, pend.res)
				mu.Unlock()
				continue
			}
			if err := c.upload(pend.res, pend.cut, pend.boundary); err != nil {
				errCh <- err
				return
			}
			mu.Lock()
			results = append(results, pend.res)
			mu.Unlock()
		}
	}()

	// Compute worker: the mobile CPU, in Johnson order.
	for _, fj := range p.Sequence {
		cut := p.Cuts[fj.ID]
		boundary, res, err := c.computePrefix(fj.ID, cut, inputs[fj.ID])
		if err != nil {
			close(queue)
			return nil, err
		}
		queue <- pending{res: res, cut: cut, boundary: boundary}
	}
	close(queue)
	wg.Wait()
	select {
	case err := <-errCh:
		return nil, err
	default:
	}

	rep := &Report{Results: results}
	for _, r := range results {
		if ms := float64(r.Done.Sub(start).Nanoseconds()) / 1e6; ms > rep.MakespanMs {
			rep.MakespanMs = ms
		}
	}
	return rep, nil
}

// CalibrateComm measures upload latency for a ladder of payload sizes
// and fits the paper's linear model t = w0 + w1·s (per-byte form; with
// bandwidth b fixed, w1 = 8/b). The fitted line feeds the scheduler's
// communication estimates.
func (c *Client) CalibrateComm(sizes []int, rounds int) (regression.Linear, error) {
	if rounds <= 0 {
		rounds = 1
	}
	var xs, ys []float64
	c.writeM.Lock()
	defer c.writeM.Unlock()
	for _, size := range sizes {
		for r := 0; r < rounds; r++ {
			start := time.Now()
			c.conn.Delay(time.Duration(c.ch.SetupMs * float64(time.Millisecond)))
			if err := writePing(c.rw.Writer, size); err != nil {
				return regression.Linear{}, err
			}
			if err := c.rw.Flush(); err != nil {
				return regression.Linear{}, err
			}
			if err := readPong(c.rw.Reader); err != nil {
				return regression.Linear{}, err
			}
			xs = append(xs, float64(size))
			ys = append(ys, float64(time.Since(start).Nanoseconds())/1e6)
		}
	}
	return regression.FitLinear(xs, ys)
}
