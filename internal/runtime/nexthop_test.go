package runtime

import (
	"net"
	"testing"
	"time"

	"dnnjps/internal/engine"
	"dnnjps/internal/netsim"
)

// startTerminal runs a plain server on a loopback TCP listener and
// returns its address.
func startTerminal(t *testing.T, m *engine.Model) string {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(m)
	go func() { _ = srv.Serve(lis) }()
	t.Cleanup(func() {
		lis.Close()
		srv.Close()
	})
	return lis.Addr().String()
}

// startForwarder runs a middle-stage server (handoff at nextCut toward
// addr) and returns a client connected to it.
func startForwarder(t *testing.T, m *engine.Model, addr string, nextCut int) *Client {
	t.Helper()
	srv, err := NewServer(m).WithNextHop(addr, nextCut)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	cConn, sConn := net.Pipe()
	go func() {
		defer sConn.Close()
		_ = srv.HandleConn(sConn)
	}()
	t.Cleanup(func() { cConn.Close() })
	return NewClient(cConn, m, netsim.WiFi, 1e-6)
}

// A two-hop chain (client -> forwarder -> terminal) must produce the
// same class as single-machine inference from every cut: cuts before
// the handoff exercise mid-segment + forward, cuts at or past it run
// entirely on the forwarder.
func TestNextHopChainMatchesLocal(t *testing.T) {
	m := testModel(t)
	addr := startTerminal(t, m)
	const handoff = 3
	cl := startForwarder(t, m, addr, handoff)

	in := input(2)
	want, err := m.Forward(in.Clone())
	if err != nil {
		t.Fatal(err)
	}
	wantClass := engine.Argmax(want)
	for cut := 0; cut < cl.Units(); cut++ {
		res, err := cl.RunJob(cut, cut, in.Clone())
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if res.Class != wantClass {
			t.Errorf("cut %d: class %d, want %d", cut, res.Class, wantClass)
		}
	}
}

// Forwarded work survives a next hop that dies mid-stream: the
// forwarder redials, and while the hop stays dead it finishes jobs
// locally (fallback) instead of failing the client.
func TestNextHopFallbackWhenHopDead(t *testing.T) {
	m := testModel(t)
	// A listener that is closed immediately: dials fail fast.
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := lis.Addr().String()
	lis.Close()

	cl := startForwarder(t, m, deadAddr, 3)
	in := input(5)
	want, err := m.Forward(in.Clone())
	if err != nil {
		t.Fatal(err)
	}
	wantClass := engine.Argmax(want)
	res, err := cl.RunJob(0, 0, in.Clone())
	if err != nil {
		t.Fatalf("dead next hop must fall back locally, got %v", err)
	}
	if res.Class != wantClass {
		t.Errorf("fallback class %d, want %d", res.Class, wantClass)
	}
}

// A forwarder whose next hop sheds every job (watermark 0 is disabled,
// so use 1 and saturate... simpler: shed flag path is covered by
// treating a shed reply as a failure) — here we pin the cheaper
// contract: the relayed reply never carries the shed flag, because the
// fallback computes a real class.
func TestNextHopReplyNeverShed(t *testing.T) {
	m := testModel(t)
	addr := startTerminal(t, m)
	cl := startForwarder(t, m, addr, 2)
	res, err := cl.RunJob(7, 1, input(7))
	if err != nil {
		t.Fatal(err)
	}
	if res.Class < 0 {
		t.Errorf("forwarded job came back shed (class %d)", res.Class)
	}
}

func TestWithNextHopValidation(t *testing.T) {
	m := testModel(t)
	units := len(profileUnits(m))
	if _, err := NewServer(m).WithNextHop("", 1); err == nil {
		t.Error("empty address must error")
	}
	if _, err := NewServer(m).WithNextHop("127.0.0.1:1", -1); err == nil {
		t.Error("negative cut must error")
	}
	if _, err := NewServer(m).WithNextHop("127.0.0.1:1", units-1); err == nil {
		t.Error("handoff at the sink must error (nothing left downstream)")
	}
	if _, err := NewServer(m).WithNextHop("127.0.0.1:1", units); err == nil {
		t.Error("out-of-range cut must error")
	}
	if _, err := NewServer(m).WithNextHop("127.0.0.1:1", 0); err != nil {
		t.Errorf("cut 0 is a valid handoff: %v", err)
	}
}

// The cross-connection coalescer silently bypassing the next hop would
// be a correctness bug; a forwarding stage must never create one even
// when batching flags are set.
func TestNextHopDisablesCoalescer(t *testing.T) {
	m := testModel(t)
	srv, err := NewServer(m).WithBatching(time.Millisecond, 8).WithNextHop("127.0.0.1:1", 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	fs := srv.scheduler()
	if fs == nil {
		t.Fatal("scheduler nil")
	}
	if fs.co != nil {
		t.Error("forwarding stage must not create a coalescer")
	}
	plain := NewServer(m).WithBatching(time.Millisecond, 8)
	t.Cleanup(plain.Close)
	if plain.scheduler().co == nil {
		t.Error("non-forwarding server with batching must coalesce")
	}
}

// profileUnits exposes the unit count for validation tests.
func profileUnits(m *engine.Model) []int {
	s := NewServer(m)
	out := make([]int, len(s.units))
	return out
}
