package runtime

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"

	"dnnjps/internal/engine"
	"dnnjps/internal/tensor"
)

// Next-hop forwarding: a server configured with WithNextHop becomes a
// middle pipeline stage of a device chain instead of the terminal
// cloud. For a request cut at c before the handoff boundary h, the
// stage executes only the middle segment (c, h] locally, ships the
// tensor at h to the next server over the same infer wire protocol,
// and relays the downstream class back to its own client — so
// jpsserve processes compose into the k-way chains core.JPSChain
// plans. Requests already cut at or past h (including a terminal
// stage's full-suffix traffic) run locally as always, and any forward
// failure — dial, write, read, or a shed reply from an overloaded
// next hop — falls back to finishing the suffix locally from the
// boundary tensor already in hand, mirroring the client runner's
// local-fallback discipline.

// nextHop is the forwarding half: one lazily dialed connection to the
// downstream stage, serialized by a mutex (stage traffic is the
// upstream server's worker pool, which is already bounded; a single
// ordered connection keeps redial/fallback reasoning simple and the
// downstream read loop replies in request order for synchronous
// callers). Any transport error tears the connection down so the next
// forward redials from scratch.
type nextHop struct {
	addr string
	cut  int // handoff boundary: the tensor at units[cut].Exit ships
	dial func(addr string) (net.Conn, error)

	mu   sync.Mutex
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

// WithNextHop turns the server into a middle pipeline stage: requests
// cut before the handoff position are computed up to it and forwarded
// to addr (host:port, same wire protocol). cut must leave work for the
// downstream stage — at most len(units)-2, since a handoff at the sink
// would ship a finished result. Must be called before serving.
func (s *Server) WithNextHop(addr string, cut int) (*Server, error) {
	if addr == "" {
		return nil, fmt.Errorf("runtime: next hop needs an address")
	}
	if cut < 0 || cut >= len(s.units)-1 {
		return nil, fmt.Errorf("runtime: next-hop cut %d out of range [0,%d) for %d units",
			cut, len(s.units)-1, len(s.units))
	}
	s.next = &nextHop{
		addr: addr,
		cut:  cut,
		dial: func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) },
	}
	// mid[c] holds the nodes of units (c, cut] — the segment this stage
	// computes before handing off. The boundary node units[cut].Exit has
	// consumers outside the list, so the engine keeps its activation
	// live for serialization (and for the local fallback).
	s.mid = make([][]int, cut)
	for c := 0; c < cut; c++ {
		var nodes []int
		for _, u := range s.units[c+1 : cut+1] {
			nodes = append(nodes, u.Nodes...)
		}
		s.mid[c] = nodes
	}
	return s, nil
}

// forward ships one boundary tensor downstream and waits for its
// reply. Exactly one forward is in flight at a time; an error on any
// leg closes the connection so the next call redials.
func (nh *nextHop) forward(req *inferRequest) (*inferReply, error) {
	nh.mu.Lock()
	defer nh.mu.Unlock()
	if nh.conn == nil {
		conn, err := nh.dial(nh.addr)
		if err != nil {
			return nil, fmt.Errorf("runtime: next hop %s: %w", nh.addr, err)
		}
		nh.conn = conn
		nh.r = bufio.NewReaderSize(conn, 1<<16)
		nh.w = bufio.NewWriterSize(conn, 1<<16)
	}
	err := writeInferRequest(nh.w, req)
	if err == nil {
		err = nh.w.Flush()
	}
	var rep *inferReply
	if err == nil {
		rep, err = readInferReply(nh.r)
	}
	if err != nil {
		nh.conn.Close()
		nh.conn, nh.r, nh.w = nil, nil, nil
		return nil, fmt.Errorf("runtime: next hop %s: %w", nh.addr, err)
	}
	return rep, nil
}

// close tears down the forwarding connection if one is up.
func (nh *nextHop) close() {
	nh.mu.Lock()
	defer nh.mu.Unlock()
	if nh.conn != nil {
		nh.conn.Close()
		nh.conn, nh.r, nh.w = nil, nil, nil
	}
}

// inferForward handles one request on a forwarding stage: middle
// segment locally, handoff downstream, local full-suffix fallback on
// any forwarding failure. Only the downstream backpressure hint
// survives into the relayed reply — shed means "not computed", which
// is never true once the fallback ran.
func (s *Server) inferForward(req *inferRequest) (*inferReply, error) {
	cut := int(req.Cut)
	boundary := s.units[cut].Exit
	wantShape := s.model.Graph().Node(boundary).OutShape
	if !req.Tensor.Shape.Equal(wantShape) {
		return nil, fmt.Errorf("runtime: boundary tensor %v, cut %d wants %v",
			req.Tensor.Shape, cut, wantShape)
	}
	start := time.Now()
	acts := map[int]*tensor.Tensor{boundary: req.Tensor}
	if err := s.model.Execute(acts, nil, s.mid[cut]); err != nil {
		return nil, err
	}
	handoff := s.units[s.next.cut].Exit
	fwd := &inferRequest{JobID: req.JobID, Cut: uint32(s.next.cut), Tensor: acts[handoff]}
	rep, err := s.next.forward(fwd)
	if err == nil && rep.Flags&replyFlagShed == 0 {
		return &inferReply{
			JobID:   req.JobID,
			Class:   rep.Class,
			CloudNs: time.Since(start).Nanoseconds(),
			Flags:   rep.Flags & replyFlagBackpressure,
		}, nil
	}
	// Fallback: the boundary tensor is still live in acts; finish the
	// whole remaining suffix on this stage.
	if err := s.model.Execute(acts, nil, s.suffix[s.next.cut]); err != nil {
		return nil, err
	}
	out := acts[s.model.Graph().Sink()]
	return &inferReply{
		JobID:   req.JobID,
		Class:   int32(engine.Argmax(out)),
		CloudNs: time.Since(start).Nanoseconds(),
	}, nil
}
