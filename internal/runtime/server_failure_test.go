package runtime

import (
	"errors"
	"net"
	"testing"
	"time"

	"dnnjps/internal/netsim"
)

// Regression: when a worker fails (e.g. an out-of-range cut), the
// connection must actually drop. Previously fail() closed the stop
// channel but left the transport open, so the read loop stayed blocked
// in ReadByte and an idle client — all requests sent, waiting on
// replies — never observed the failure and hung forever.
func TestHandleConnClosesOnWorkerFailure(t *testing.T) {
	m := testModel(t)
	srv := NewServer(m)
	t.Cleanup(srv.Close)
	cConn, sConn := net.Pipe()
	defer cConn.Close()

	served := make(chan error, 1)
	go func() { served <- srv.HandleConn(sConn) }()

	// A request that decodes fine but fails on the worker.
	req := &inferRequest{JobID: 1, Cut: 999, Tensor: mustVec(3, 1, 2, 3)}
	if err := writeInferRequest(cConn, req); err != nil {
		t.Fatalf("write request: %v", err)
	}

	// The client now goes idle, just waiting for a reply. It must see
	// the connection drop, not a read that blocks until the deadline.
	if err := cConn.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	var buf [1]byte
	_, err := cConn.Read(buf[:])
	if err == nil {
		t.Fatal("read after worker failure returned data, want connection drop")
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		t.Fatal("idle client timed out instead of observing the dropped connection")
	}

	select {
	case err := <-served:
		if err == nil {
			t.Error("HandleConn must return the worker's error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("HandleConn did not return after worker failure")
	}
}

// tempErr is a transient accept error (EMFILE-style).
type tempErr struct{}

func (tempErr) Error() string   { return "accept: too many open files" }
func (tempErr) Timeout() bool   { return false }
func (tempErr) Temporary() bool { return true }

// flakyListener fails Accept with temporary errors before yielding
// real connections, then reports net.ErrClosed once closed.
type flakyListener struct {
	tmpLeft int
	conns   chan net.Conn
	closed  chan struct{}
}

func (l *flakyListener) Accept() (net.Conn, error) {
	if l.tmpLeft > 0 {
		l.tmpLeft--
		return nil, tempErr{}
	}
	select {
	case c := <-l.conns:
		return c, nil
	case <-l.closed:
		return nil, net.ErrClosed
	}
}
func (l *flakyListener) Close() error   { close(l.closed); return nil }
func (l *flakyListener) Addr() net.Addr { return &net.TCPAddr{} }

// Regression: a single transient Accept error (EMFILE under fd
// pressure) used to kill Serve outright. It must retry with backoff,
// still serve the connections that follow, and return only on a
// permanent error such as net.ErrClosed.
func TestServeRetriesTemporaryAcceptErrors(t *testing.T) {
	m := testModel(t)
	srv := NewServer(m)
	t.Cleanup(srv.Close)
	lis := &flakyListener{tmpLeft: 3, conns: make(chan net.Conn, 1), closed: make(chan struct{})}

	served := make(chan error, 1)
	go func() { served <- srv.Serve(lis) }()

	cConn, sConn := net.Pipe()
	lis.conns <- sConn
	cl := NewClient(cConn, m, netsim.WiFi, 1e-6)
	defer cl.Close()
	if _, err := cl.RunJob(1, 0, input(1)); err != nil {
		t.Fatalf("job after transient accept errors: %v", err)
	}

	lis.Close()
	select {
	case err := <-served:
		if !errors.Is(err, net.ErrClosed) {
			t.Errorf("Serve returned %v, want net.ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after listener close")
	}
}

// A permanent, non-temporary accept error still returns immediately.
type brokenListener struct{ err error }

func (l *brokenListener) Accept() (net.Conn, error) { return nil, l.err }
func (l *brokenListener) Close() error              { return nil }
func (l *brokenListener) Addr() net.Addr            { return &net.TCPAddr{} }

func TestServeReturnsPermanentAcceptError(t *testing.T) {
	m := testModel(t)
	srv := NewServer(m)
	t.Cleanup(srv.Close)
	want := errors.New("listener torn down")
	done := make(chan error, 1)
	go func() { done <- srv.Serve(&brokenListener{err: want}) }()
	select {
	case err := <-done:
		if !errors.Is(err, want) {
			t.Errorf("Serve returned %v, want %v", err, want)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return on permanent accept error")
	}
}
