package runtime

import (
	"time"

	"dnnjps/internal/obs"
)

// Span tracks: one lane per pipeline resource, matching the paper's
// per-stage decomposition (device compute f, upload g, cloud) plus the
// server's own view and the fault-tolerant runner's recovery events.
const (
	TrackMobile = "mobile" // client-side prefix compute (the paper's f)
	TrackUplink = "uplink" // writer-goroutine occupancy (the paper's g)
	TrackCloud  = "cloud"  // client-side wait for the reply
	TrackServer = "server" // server-side decode/queue/compute/reply
	TrackRunner = "runner" // recovery state machine events
)

// Span names. Resource-occupancy names (SpanLocalCompute, SpanUpload,
// SpanCloudCompute) map 1:1 onto simulator resources; the rest are
// waits and recovery events.
const (
	SpanLocalCompute  = "local-compute"  // mobile: one job's prefix
	SpanQueueWait     = "queue-wait"     // uplink: enqueue -> writer pickup; server: decode -> worker pickup
	SpanSerialize     = "serialize"      // uplink: frame encode inside the upload
	SpanUpload        = "upload"         // uplink: setup delay + encode + paced transmit
	SpanReplyWait     = "reply-wait"     // cloud: upload end -> reply delivered
	SpanDecode        = "decode"         // server: request body decode
	SpanCoalesceWait  = "coalesce-wait"  // server: decode -> batch-group flush (batching only)
	SpanCloudCompute  = "cloud-compute"  // server: model suffix execution
	SpanReplyWrite    = "reply-write"    // server: reply encode + flush
	SpanRedial        = "redial"         // runner: dial attempt
	SpanBackoff       = "backoff"        // runner: jittered backoff sleep
	SpanReplan        = "replan"         // runner: mid-run re-planning
	SpanLocalFallback = "local-fallback" // runner: job finished on the mobile engine
)

// Event names (instantaneous markers, no duration).
const (
	EventChangePoint   = "link-changepoint" // uplink: estimator detected a bandwidth regime shift
	EventReplanTrigger = "replan-trigger"   // runner: adaptive replan decision point (precedes SpanReplan)
)

// Obs bundles the tracer and every metric the runtime records. Pass
// one instance to the client, server, and runner that should share a
// registry (the in-process experiments do; a real deployment gives
// each process its own). A nil *Obs — and nil fields inside a non-nil
// one — disable recording at the cost of one branch per site, keeping
// the wire hot path allocation-free either way.
type Obs struct {
	Tracer *obs.Tracer

	// Client-side.
	JobsCompleted *obs.Counter   // jps_client_jobs_completed_total
	BytesUp       *obs.Counter   // jps_client_uplink_bytes_total (wire bytes of completed uploads)
	BytesDown     *obs.Counter   // jps_client_downlink_bytes_total (reply frames)
	ConnBytes     *obs.Gauge     // jps_client_conn_bytes (shaper's ground-truth byte count)
	LinkMbps      *obs.Gauge     // jps_client_uplink_mbps (measured, channel-scale)
	EstMbps       *obs.Gauge     // jps_client_est_uplink_mbps (EWMA throughput estimate, channel-scale)
	ChangePoints  *obs.Counter   // jps_client_link_changepoints_total (estimator regime shifts)
	ReplyLatency  *obs.Histogram // jps_client_reply_latency_ms (send start -> reply)

	// Runner recovery.
	JobsRetried    *obs.Counter // jps_runner_jobs_retried_total
	Reconnects     *obs.Counter // jps_runner_reconnects_total
	Replans        *obs.Counter // jps_runner_replans_total
	LocalFallbacks *obs.Counter // jps_runner_local_fallback_jobs_total

	// Server-side.
	ServerJobs    *obs.Counter // jps_server_jobs_total (replies written)
	ServerRxBytes *obs.Counter // jps_server_rx_bytes_total (request frames)
	ServerTxBytes *obs.Counter // jps_server_tx_bytes_total (reply frames)
	WorkersBusy   *obs.Gauge   // jps_server_workers_busy (pool occupancy)

	// Cross-job batching (see coalesce.go).
	BatchSize   *obs.Histogram // jps_server_batch_size (jobs per executed group)
	BatchedJobs *obs.Counter   // jps_server_batched_jobs_total (jobs executed in groups of >= 2)
	SoloJobs    *obs.Counter   // jps_server_solo_jobs_total (jobs executed alone despite batching)

	// Fleet scheduler: admission control, WFQ, shedding (see fleet.go).
	QueueDepth          *obs.Gauge      // jps_server_queue_depth (jobs admitted but not yet dispatched)
	ShedJobs            *obs.Counter    // jps_server_shed_jobs_total (jobs refused at the overload watermark)
	BackpressureReplies *obs.Counter    // jps_server_backpressure_replies_total (replies carrying the hint flag)
	TenantJobs          *obs.CounterVec // jps_server_tenant_jobs_total{tenant} (replies per tenant, shed included)
	TenantRxBytes       *obs.CounterVec // jps_server_tenant_rx_bytes_total{tenant} (request bytes per tenant)
}

// NewObs wires a tracer and a metric registry into the runtime's
// canonical instrument set (the names above, documented in DESIGN.md
// "Observability"). Either argument may be nil: a nil tracer records
// no spans, a nil registry records no metrics.
func NewObs(tr *obs.Tracer, m *obs.Metrics) *Obs {
	return &Obs{
		Tracer:        tr,
		JobsCompleted: m.Counter("jps_client_jobs_completed_total", "inference replies delivered to the client"),
		BytesUp:       m.Counter("jps_client_uplink_bytes_total", "wire bytes of completed boundary-tensor uploads"),
		BytesDown:     m.Counter("jps_client_downlink_bytes_total", "wire bytes of received reply frames"),
		ConnBytes:     m.Gauge("jps_client_conn_bytes", "bytes written through the shaped connection (ground truth incl. pings)"),
		LinkMbps:      m.Gauge("jps_client_uplink_mbps", "measured uplink throughput of the last completed upload, channel-scale"),
		EstMbps:       m.Gauge("jps_client_est_uplink_mbps", "EWMA uplink throughput estimate, channel-scale"),
		ChangePoints:  m.Counter("jps_client_link_changepoints_total", "bandwidth regime shifts detected by the link estimator"),
		ReplyLatency:  m.Histogram("jps_client_reply_latency_ms", "transmission start to reply delivery, ms", nil),

		JobsRetried:    m.Counter("jps_runner_jobs_retried_total", "job resubmissions after a failed attempt"),
		Reconnects:     m.Counter("jps_runner_reconnects_total", "redials after the initial connection"),
		Replans:        m.Counter("jps_runner_replans_total", "mid-run re-planning events"),
		LocalFallbacks: m.Counter("jps_runner_local_fallback_jobs_total", "jobs finished on the mobile engine after the uplink was given up on"),

		ServerJobs:    m.Counter("jps_server_jobs_total", "inference replies written by the server"),
		ServerRxBytes: m.Counter("jps_server_rx_bytes_total", "wire bytes of decoded inference requests"),
		ServerTxBytes: m.Counter("jps_server_tx_bytes_total", "wire bytes of written reply frames"),
		WorkersBusy:   m.Gauge("jps_server_workers_busy", "inference worker pool occupancy"),

		BatchSize:   m.Histogram("jps_server_batch_size", "jobs per executed batch group", obs.BatchSizeBuckets),
		BatchedJobs: m.Counter("jps_server_batched_jobs_total", "jobs executed in coalesced groups of two or more"),
		SoloJobs:    m.Counter("jps_server_solo_jobs_total", "jobs executed alone while batching was enabled"),

		QueueDepth:          m.Gauge("jps_server_queue_depth", "jobs admitted to the fleet scheduler but not yet dispatched"),
		ShedJobs:            m.Counter("jps_server_shed_jobs_total", "jobs refused by admission control at the overload watermark"),
		BackpressureReplies: m.Counter("jps_server_backpressure_replies_total", "replies carrying the backpressure hint flag"),
		TenantJobs:          m.CounterVec("jps_server_tenant_jobs_total", "replies written per tenant (shed replies included)", "tenant"),
		TenantRxBytes:       m.CounterVec("jps_server_tenant_rx_bytes_total", "decoded request bytes per tenant", "tenant"),
	}
}

// span records one completed span; safe on a nil *Obs.
func (o *Obs) span(track, name string, jobID int, start, end time.Time) {
	if o == nil {
		return
	}
	o.Tracer.Record(track, name, jobID, start, end)
}

// event records an instantaneous marker; safe on a nil *Obs.
func (o *Obs) event(track, name string, jobID int, at time.Time) {
	if o == nil {
		return
	}
	o.Tracer.Event(track, name, jobID, at)
}
