package runtime

import (
	"fmt"
	"math"
	"math/rand"
	"net"
	"sort"
	"time"

	"dnnjps/internal/core"
	"dnnjps/internal/engine"
	"dnnjps/internal/estimator"
	"dnnjps/internal/netsim"
	"dnnjps/internal/profile"
	"dnnjps/internal/tensor"
)

// RunOptions are the fault-tolerance knobs of a Runner. The zero value
// is usable: every field falls back to the DefaultRunOptions value.
type RunOptions struct {
	// JobTimeout is the wall-clock deadline for each awaited reply
	// (measured from when the runner starts waiting on that job, so it
	// bounds per-job incremental progress, not queue depth).
	JobTimeout time.Duration
	// MaxReconnects bounds how many times the runner redials after a
	// failed or timed-out attempt before degrading to local execution.
	MaxReconnects int
	// BackoffBase/BackoffMax shape the capped exponential backoff
	// between reconnects; the actual sleep is jittered uniformly over
	// [backoff/2, backoff] to avoid thundering-herd redials.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Seed drives the jitter RNG (deterministic retries in tests).
	Seed int64
	// Window is how many jobs may be in flight before the runner
	// pauses to collect replies — the pipelining depth, and also the
	// cadence of the link-health check that triggers re-planning.
	Window int
	// ReplanFactor re-plans the remaining jobs when the measured link
	// health (see Client.LinkHealth) drops below it — e.g. 0.5 means
	// "re-plan once uploads run at less than half the planned rate".
	// Zero disables re-planning. Requires Runner.WithCurve. Ignored
	// when AdaptiveReplan is set (the estimator path replaces it).
	ReplanFactor float64
	// AdaptiveReplan switches link-degradation replanning from the
	// one-shot cumulative-health threshold to the continuous online
	// estimator (internal/estimator): every completed upload feeds a
	// half-life EWMA with CUSUM change-point detection, and between
	// windows the runner re-plans the unsubmitted suffix whenever a
	// change point fired or the estimate diverged from the plan's
	// bandwidth by more than ReplanHysteresis — as many times as the
	// link shifts, rate-limited by ReplanMinInterval. Requires
	// Runner.WithCurve.
	AdaptiveReplan bool
	// EstimatorConfig tunes the online estimator; zero fields take
	// estimator.DefaultConfig. Only read when AdaptiveReplan is set.
	EstimatorConfig estimator.Config
	// ReplanMinInterval is the minimum wall-clock time between
	// consecutive replans of the same kind — the anti-thrash guard that
	// replaces the old once-per-batch latch. Zero takes the default;
	// tests that need back-to-back replans set it to 1ns.
	ReplanMinInterval time.Duration
	// ReplanHysteresis is the relative divergence between the
	// estimator's bandwidth estimate and the bandwidth the current plan
	// was priced at that triggers an adaptive replan without a change
	// point — e.g. 0.3 means "replan when the estimate moved ±30%".
	// Zero takes the default. Only read when AdaptiveReplan is set.
	ReplanHysteresis float64
	// BackpressureThreshold re-plans the remaining jobs toward local
	// compute when the fraction of replies carrying the server's
	// backpressure flag (see Client.ServerPressure) reaches it — e.g.
	// 0.5 means "re-plan once half the replies say the cloud queue is
	// past its hint watermark". The replan surcharges every offloaded
	// cut with the observed server queue wait (core.ReplanWithHint).
	// Zero disables it. Requires Runner.WithCurve.
	BackpressureThreshold float64
	// NoLocalFallback makes a persistent uplink failure a hard error
	// instead of finishing the remaining jobs on the mobile engine.
	NoLocalFallback bool
}

// DefaultRunOptions returns the defaults the zero RunOptions maps to.
func DefaultRunOptions() RunOptions {
	return RunOptions{
		JobTimeout:        5 * time.Second,
		MaxReconnects:     4,
		BackoffBase:       50 * time.Millisecond,
		BackoffMax:        2 * time.Second,
		Seed:              1,
		Window:            8,
		ReplanMinInterval: 50 * time.Millisecond,
		ReplanHysteresis:  0.3,
	}
}

// FTReport is a Report plus the recovery actions the runner took.
type FTReport struct {
	Report
	// Reconnects counts redials after the initial connection.
	Reconnects int
	// RetriedJobs counts job resubmissions (a job retried twice counts
	// twice).
	RetriedJobs int
	// Replans counts mid-run re-planning events; ReplannedMbps is the
	// bandwidth estimate behind the most recent one (0 when none).
	Replans       int
	ReplannedMbps float64
	// LocalFallbackJobs counts jobs that finished on the mobile engine
	// after the uplink was given up on.
	LocalFallbackJobs int
	// ShedJobs counts jobs the server's admission control refused and
	// the runner finished on the mobile engine instead.
	ShedJobs int
	// HintReplans counts re-planning events triggered by the server's
	// backpressure hints (a subset of replan activity distinct from
	// Replans, which counts link-degradation replans).
	HintReplans int
	// ChangePoints counts the bandwidth regime shifts the online
	// estimator detected, and EstimatedMbps is its final uplink
	// estimate (both 0 unless AdaptiveReplan was enabled).
	ChangePoints  int
	EstimatedMbps float64
	// ReplaySamples is the estimator's recorded upload stream, in
	// arrival order (nil unless EstimatorConfig.Record was set) — the
	// raw material of a committed estimator.ReplayTrace.
	ReplaySamples []estimator.ReplaySample
}

// Runner executes plans fault-tolerantly on top of the pipelined
// client. Where a bare Client fails the whole RunPlan on the first
// transport error, the Runner owns the connection lifecycle: it
// redials with capped exponential backoff, resubmits only the jobs
// that never got a reply, re-plans the remaining jobs when the
// measured bandwidth degrades past a threshold, and — once the uplink
// is hopeless — finishes the outstanding suffix on the local engine
// (the full-local partition x = L), so a RunPlan returns complete,
// correct results for every fault short of the device itself dying.
// See DESIGN.md "Failure model & recovery" for the state machine.
type Runner struct {
	dial  func() (net.Conn, error)
	model *engine.Model
	units []profile.Unit
	ch    netsim.Channel
	scale float64
	opts  RunOptions
	curve *profile.Curve
	obsv  *Obs
}

// NewRunner builds a fault-tolerant runner. dial is invoked for the
// initial connection and every reconnect; it should return a fresh
// transport to the same server (wrap it in netsim fault injectors to
// test recovery). timeScale compresses channel time exactly as in
// NewClient.
func NewRunner(dial func() (net.Conn, error), m *engine.Model, ch netsim.Channel, timeScale float64, opts RunOptions) *Runner {
	def := DefaultRunOptions()
	if opts.JobTimeout <= 0 {
		opts.JobTimeout = def.JobTimeout
	}
	if opts.MaxReconnects < 0 {
		opts.MaxReconnects = 0
	}
	if opts.BackoffBase <= 0 {
		opts.BackoffBase = def.BackoffBase
	}
	if opts.BackoffMax < opts.BackoffBase {
		opts.BackoffMax = opts.BackoffBase
	}
	if opts.Window <= 0 {
		opts.Window = def.Window
	}
	if opts.ReplanMinInterval <= 0 {
		opts.ReplanMinInterval = def.ReplanMinInterval
	}
	if opts.ReplanHysteresis <= 0 {
		opts.ReplanHysteresis = def.ReplanHysteresis
	}
	return &Runner{
		dial:  dial,
		model: m,
		units: profile.LineView(m.Graph()),
		ch:    ch,
		scale: timeScale,
		opts:  opts,
	}
}

// WithCurve attaches the profiled cut curve re-planning needs (the
// runner reprices it at the measured bandwidth). Returns r.
func (r *Runner) WithCurve(c *profile.Curve) *Runner {
	r.curve = c
	return r
}

// WithObs attaches a tracing + metrics bundle; the runner records its
// recovery events (redial, backoff, replan, local-fallback) and passes
// the bundle on to every client it builds. Returns r for chaining.
func (r *Runner) WithObs(o *Obs) *Runner {
	r.obsv = o
	return r
}

// ftJob is the runner's per-job state across attempts.
type ftJob struct {
	id    int
	cut   int
	input *tensor.Tensor
	// boundary caches the mobile prefix output at cut, so retries
	// resubmit without recomputing; res carries the prefix timing and
	// receives the reply. Both reset when a re-plan moves the cut.
	boundary *tensor.Tensor
	res      *JobResult
	tries    int
	done     bool
}

// RunPlan executes the plan to completion through every configured
// recovery layer. It returns an error only for non-recoverable
// problems: bad arguments, engine failures, or — with NoLocalFallback —
// a dead uplink.
func (r *Runner) RunPlan(p *core.Plan, inputs []*tensor.Tensor) (*FTReport, error) {
	if len(inputs) != len(p.Cuts) {
		return nil, fmt.Errorf("runtime: %d inputs for %d jobs", len(inputs), len(p.Cuts))
	}
	start := time.Now()
	jobs := make([]*ftJob, len(p.Cuts))
	for id, cut := range p.Cuts {
		jobs[id] = &ftJob{id: id, cut: cut, input: inputs[id]}
	}
	order := make([]*ftJob, 0, len(jobs))
	for _, fj := range p.Sequence {
		order = append(order, jobs[fj.ID])
	}

	ft := &FTReport{}
	rng := rand.New(rand.NewSource(r.opts.Seed))
	backoff := r.opts.BackoffBase
	nominal := r.ch
	// The replan bookkeeping — and with AdaptiveReplan the estimator
	// itself — outlives individual connection attempts: samples and
	// rate-limit state carry across redials.
	rs := &replanState{planMbps: nominal.UplinkMbps}
	if r.opts.AdaptiveReplan {
		rs.est = estimator.New(r.opts.EstimatorConfig)
	}

	for attempt := 0; countPending(order) > 0 && attempt <= r.opts.MaxReconnects; attempt++ {
		if attempt > 0 {
			ft.Reconnects++
			if o := r.obsv; o != nil {
				o.Reconnects.Inc()
			}
			jitter := time.Duration(rng.Int63n(int64(backoff/2) + 1))
			sleepStart := time.Now()
			time.Sleep(backoff/2 + jitter)
			r.obsv.span(TrackRunner, SpanBackoff, -1, sleepStart, time.Now())
			if backoff *= 2; backoff > r.opts.BackoffMax {
				backoff = r.opts.BackoffMax
			}
		}
		dialStart := time.Now()
		conn, err := r.dial()
		r.obsv.span(TrackRunner, SpanRedial, -1, dialStart, time.Now())
		if err != nil {
			continue // dial failures consume an attempt and back off
		}
		cl := NewClient(conn, r.model, nominal, r.scale).WithObs(r.obsv).WithEstimator(rs.est)
		fatal, aerr := r.attempt(cl, order, rs, &nominal, ft)
		cl.Close()
		// Wait for the demux goroutine to exit: once it has, no straggler
		// reply from this attempt can write into a JobResult that the next
		// attempt (or the local fallback) is about to reuse.
		cl.drainReader()
		if fatal {
			return nil, aerr
		}
	}

	if countPending(order) > 0 {
		if r.opts.NoLocalFallback {
			return nil, fmt.Errorf("runtime: uplink failed after %d reconnects with %d/%d jobs unfinished",
				ft.Reconnects, countPending(order), len(jobs))
		}
		// Graceful degradation: the remaining suffix runs fully local
		// (cut at the last unit), classes identical to a remote finish.
		localCut := len(r.units) - 1
		for _, j := range order {
			if j.done {
				continue
			}
			fbStart := time.Now()
			_, res, err := runPrefix(r.model, r.units, j.id, localCut, j.input)
			if err != nil {
				return nil, err
			}
			r.obsv.span(TrackRunner, SpanLocalFallback, j.id, fbStart, time.Now())
			if o := r.obsv; o != nil {
				o.LocalFallbacks.Inc()
			}
			j.res = res
			j.done = true
			ft.LocalFallbackJobs++
		}
	}

	results := make([]*JobResult, 0, len(jobs))
	for _, j := range jobs {
		results = append(results, j.res)
	}
	sort.Slice(results, func(i, k int) bool { return results[i].JobID < results[k].JobID })
	ft.Results = results
	if rs.est != nil {
		ft.EstimatedMbps, _ = rs.est.Mbps()
		ft.ChangePoints = len(rs.est.ChangePoints())
		ft.ReplaySamples = rs.est.Samples()
	}
	for _, res := range results {
		if ms := float64(res.Done.Sub(start).Nanoseconds()) / 1e6; ms > ft.MakespanMs {
			ft.MakespanMs = ms
		}
	}
	return ft, nil
}

func countPending(order []*ftJob) int {
	n := 0
	for _, j := range order {
		if !j.done {
			n++
		}
	}
	return n
}

// replanState carries the adaptive-replanning bookkeeping across the
// connection attempts of one RunPlan: the shared estimator (nil unless
// AdaptiveReplan), when each replan kind last fired (the min-interval
// guard that replaced the once-per-batch latches), the bandwidth the
// current plan was priced at (the hysteresis base), and how many
// estimator change points have already been acted on.
type replanState struct {
	est      *estimator.Estimator
	last     time.Time // last link-degradation replan (zero = never)
	hintLast time.Time // last backpressure-hint replan
	planMbps float64   // uplink bandwidth the current plan assumes
	cpSeen   int       // change points consumed by earlier replans
}

// attempt drives one connection: windowed pipelined execution of the
// remaining jobs in schedule order. A transport failure or a job
// deadline tears the connection down and returns (false, nil) — the
// outer loop redials and resubmits whatever is still pending. Only
// engine/model errors are fatal.
func (r *Runner) attempt(cl *Client, order []*ftJob, rs *replanState, nominal *netsim.Channel, ft *FTReport) (fatal bool, err error) {
	pending := make([]*ftJob, 0, len(order))
	for _, j := range order {
		if !j.done {
			pending = append(pending, j)
		}
	}
	// Attempt watchdog: if the whole attempt overruns its budget (a
	// stalled link can block the writer, fill the send queue, and wedge
	// enqueueInfer), closing the conn fails the client and unblocks
	// every waiter.
	wd := time.AfterFunc(time.Duration(len(pending)+2)*r.opts.JobTimeout, func() { cl.Close() })
	defer wd.Stop()

	type inflight struct {
		j *ftJob
		c *call
	}
	var q []inflight
	var fatalErr error // engine failure inside a drain; fatal to the run
	// harvest sweeps the in-flight window after a failure: replies that
	// were already delivered out of order count as done, so the next
	// attempt resubmits only the jobs that genuinely got lost. A shed
	// reply is NOT done — the job never ran and gets finished locally by
	// the next drain or resubmitted by the next attempt.
	harvest := func() {
		for _, in := range q {
			select {
			case <-in.c.done:
				if in.c.ok && !in.j.res.Shed {
					in.j.done = true
				}
			default:
			}
		}
	}
	// drainTo awaits the oldest in-flight jobs until at most k remain.
	// Jobs the server shed finish on the mobile engine right here: the
	// shed reply is the server telling this client to back off, so
	// resubmitting the same job would defeat the admission control.
	drainTo := func(k int) bool {
		for len(q) > k {
			in := q[0]
			if aerr := cl.awaitTimeout(in.c, r.opts.JobTimeout); aerr != nil {
				cl.Close() // a timed-out or failed call poisons the conn
				harvest()
				return false
			}
			q = q[1:]
			if in.j.res.Shed {
				if ferr := r.finishShedLocal(in.j, ft); ferr != nil {
					fatalErr = ferr
					return false
				}
				continue
			}
			in.j.done = true
		}
		return true
	}

	for i := 0; i < len(pending); i++ {
		j := pending[i]
		if j.done {
			continue
		}
		if j.res == nil {
			boundary, res, perr := runPrefix(r.model, r.units, j.id, j.cut, j.input)
			if perr != nil {
				return true, perr
			}
			j.boundary, j.res = boundary, res
		}
		if j.boundary == nil {
			j.done = true // fully-local cut, classified by runPrefix
			continue
		}
		if j.tries > 0 {
			ft.RetriedJobs++
			if o := r.obsv; o != nil {
				o.JobsRetried.Inc()
			}
		}
		j.tries++
		call, cerr := cl.enqueueInfer(j.res, j.cut, j.boundary)
		if cerr != nil {
			harvest()
			return false, nil // transport failure: retry on a fresh conn
		}
		q = append(q, inflight{j, call})
		if len(q) >= r.opts.Window {
			if !drainTo(r.opts.Window - 1) {
				return fatalErr != nil, fatalErr
			}
			// Between windows the link has fresh samples. Re-planning is
			// continuous: any trigger may fire again later in the same
			// batch (a second regime shift replans a second time),
			// rate-limited by ReplanMinInterval so the cut never thrashes
			// on jitter.
			r.maybeReplan(cl, pending[i+1:], rs, nominal, ft)
		}
	}
	if !drainTo(0) {
		return fatalErr != nil, fatalErr
	}
	return false, nil
}

// finishShedLocal completes one server-refused job on the mobile
// engine (the full-local partition), keeping the shed mark so reports
// can attribute it.
func (r *Runner) finishShedLocal(j *ftJob, ft *FTReport) error {
	fbStart := time.Now()
	_, res, err := runPrefix(r.model, r.units, j.id, len(r.units)-1, j.input)
	if err != nil {
		return err
	}
	r.obsv.span(TrackRunner, SpanLocalFallback, j.id, fbStart, time.Now())
	if o := r.obsv; o != nil {
		o.LocalFallbacks.Inc()
	}
	res.Shed = true
	j.res = res
	j.done = true
	ft.ShedJobs++
	ft.LocalFallbackJobs++
	return nil
}

// maybeReplan is the between-windows re-planning decision point. Three
// triggers, each under its own ReplanMinInterval rate limit:
//
//   - Estimator path (AdaptiveReplan): replan at the EWMA's absolute
//     bandwidth estimate whenever a change point fired since the last
//     replan, or the estimate diverged from the bandwidth the current
//     plan was priced at by more than ReplanHysteresis. Because the
//     estimate is absolute, repeated replans cannot compound the way
//     ratio-based repricing would.
//   - Threshold path (ReplanFactor, estimator off): the legacy
//     cumulative-health trigger — no longer one-shot, because the
//     health accounting is rebased on the adopted channel model after
//     every replan (Client.ResetLinkHealth), so a second degradation
//     in the same batch is measured against the plan actually in
//     force and triggers again.
//   - Hint path (BackpressureThreshold): the server's piggybacked
//     admission-control hints, unchanged in trigger but rate-limited
//     instead of latched.
func (r *Runner) maybeReplan(cl *Client, rest []*ftJob, rs *replanState, nominal *netsim.Channel, ft *FTReport) {
	if r.curve == nil || len(rest) == 0 {
		return
	}
	now := time.Now()
	if rs.est != nil {
		if now.Sub(rs.last) >= r.opts.ReplanMinInterval {
			est, n := rs.est.Mbps()
			cps := rs.est.ChangePoints()
			shifted := len(cps) > rs.cpSeen
			diverged := rs.planMbps > 0 && math.Abs(est-rs.planMbps)/rs.planMbps > r.opts.ReplanHysteresis
			if n >= 2 && (shifted || diverged) {
				r.obsv.event(TrackRunner, EventReplanTrigger, -1, now)
				replanStart := time.Now()
				if r.replanRemainingAt(rest, est, nominal, ft) {
					rs.cpSeen = len(cps)
					rs.planMbps = est
					rs.last = time.Now()
					cl.ResetLinkHealth(*nominal)
				}
				r.obsv.span(TrackRunner, SpanReplan, -1, replanStart, time.Now())
			}
		}
	} else if r.opts.ReplanFactor > 0 && now.Sub(rs.last) >= r.opts.ReplanMinInterval {
		if health, samples := cl.LinkHealth(); samples >= 2 && health < r.opts.ReplanFactor {
			replanStart := time.Now()
			if r.replanRemaining(rest, health, nominal, ft) {
				rs.planMbps = nominal.UplinkMbps
				rs.last = time.Now()
				cl.ResetLinkHealth(*nominal)
			}
			r.obsv.span(TrackRunner, SpanReplan, -1, replanStart, time.Now())
		}
	}
	if r.opts.BackpressureThreshold > 0 && now.Sub(rs.hintLast) >= r.opts.ReplanMinInterval {
		if rate, queueMs, samples := cl.ServerPressure(); samples >= 2 && rate >= r.opts.BackpressureThreshold {
			replanStart := time.Now()
			if r.replanRemainingHint(rest, queueMs, nominal, ft) {
				rs.hintLast = time.Now()
			}
			r.obsv.span(TrackRunner, SpanReplan, -1, replanStart, time.Now())
		}
	}
}

// replanRemaining reprices the curve at the measured bandwidth, runs
// the JPS planner for the still-unsubmitted jobs, and rewrites their
// cuts and order in place. Planner errors leave the old plan standing
// and report false.
func (r *Runner) replanRemaining(rest []*ftJob, health float64, nominal *netsim.Channel, ft *FTReport) bool {
	if len(rest) == 0 {
		return false
	}
	measured := netsim.Channel{
		Name:       nominal.Name + "-degraded",
		UplinkMbps: nominal.UplinkMbps * health,
		SetupMs:    nominal.SetupMs,
	}
	p2, err := core.Replan(r.curve, measured, len(rest))
	if err != nil {
		return false
	}
	applyPlan(rest, p2)
	*nominal = measured // later attempts plan and measure against the degraded link
	ft.Replans++
	ft.ReplannedMbps = measured.UplinkMbps
	if o := r.obsv; o != nil {
		o.Replans.Inc()
	}
	return true
}

// replanRemainingAt reprices the curve at the estimator's absolute
// bandwidth estimate and replans the still-unsubmitted jobs. Unlike
// replanRemaining there is no health ratio against a channel model:
// the estimate is ground truth in Mb/s, so the adopted channel is
// exact regardless of how many replans preceded it. Planner errors
// leave the old plan standing and report false.
func (r *Runner) replanRemainingAt(rest []*ftJob, mbps float64, nominal *netsim.Channel, ft *FTReport) bool {
	if len(rest) == 0 || mbps <= 0 {
		return false
	}
	measured := netsim.Channel{
		Name:         nominal.Name + "-est",
		UplinkMbps:   mbps,
		SetupMs:      nominal.SetupMs,
		DownlinkMbps: nominal.DownlinkMbps,
	}
	p2, err := core.Replan(r.curve, measured, len(rest))
	if err != nil {
		return false
	}
	applyPlan(rest, p2)
	*nominal = measured
	ft.Replans++
	ft.ReplannedMbps = mbps
	if o := r.obsv; o != nil {
		o.Replans.Inc()
	}
	return true
}

// replanRemainingHint re-plans the still-unsubmitted jobs against the
// server's backpressure hint: same bandwidth, but every offloaded cut
// surcharged with the observed mean queue wait, so the planner shifts
// work toward local compute. Planner errors leave the old plan
// standing and report false; the channel model is untouched (the link
// itself is fine).
func (r *Runner) replanRemainingHint(rest []*ftJob, queueMs float64, nominal *netsim.Channel, ft *FTReport) bool {
	if len(rest) == 0 {
		return false
	}
	p2, err := core.ReplanWithHint(r.curve, *nominal, len(rest), core.ServerHint{QueueMs: queueMs})
	if err != nil {
		return false
	}
	applyPlan(rest, p2)
	ft.HintReplans++
	if o := r.obsv; o != nil {
		o.Replans.Inc()
	}
	return true
}

// applyPlan rewrites the cuts and order of the still-unsubmitted jobs
// in place from a fresh plan, resetting the cached prefix of any job
// whose cut moved.
func applyPlan(rest []*ftJob, p2 *core.Plan) {
	for k, j := range rest {
		if newCut := p2.Cuts[k]; newCut != j.cut {
			j.cut = newCut
			j.boundary, j.res = nil, nil // prefix must be recomputed
		}
	}
	reordered := make([]*ftJob, 0, len(rest))
	for _, fj := range p2.Sequence {
		reordered = append(reordered, rest[fj.ID])
	}
	copy(rest, reordered)
}
