package runtime

import (
	"bytes"
	"net"
	"testing"

	"dnnjps/internal/core"
	"dnnjps/internal/dag"
	"dnnjps/internal/engine"
	"dnnjps/internal/netsim"
	"dnnjps/internal/nn"
	"dnnjps/internal/profile"
	"dnnjps/internal/tensor"
)

// testModel is a small line CNN shared by the runtime tests.
func testModel(t *testing.T) *engine.Model {
	t.Helper()
	g := dag.New("rttest")
	in := g.Add(&nn.Input{LayerName: "input", Shape: tensor.NewCHW(3, 16, 16)})
	c1 := g.Add(&nn.Conv2D{LayerName: "conv1", OutC: 8, KH: 3, KW: 3, Stride: 1, Pad: 1, Bias: true}, in)
	r1 := g.Add(nn.NewActivation("relu1", nn.ReLU), c1)
	p1 := g.Add(nn.NewMaxPool2D("pool1", 2, 2, 0), r1)
	c2 := g.Add(&nn.Conv2D{LayerName: "conv2", OutC: 16, KH: 3, KW: 3, Stride: 1, Pad: 1, Bias: true}, p1)
	r2 := g.Add(nn.NewActivation("relu2", nn.ReLU), c2)
	gp := g.Add(&nn.GlobalAvgPool2D{LayerName: "gap"}, r2)
	fc := g.Add(&nn.Dense{LayerName: "fc", Out: 5, Bias: true}, gp)
	g.Add(nn.NewSoftmax("softmax"), fc)
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	return engine.Load(g, 1234)
}

// startPair wires a client and server over net.Pipe with a fast time
// scale.
func startPair(t *testing.T, m *engine.Model, ch netsim.Channel) *Client {
	t.Helper()
	cConn, sConn := net.Pipe()
	srv := NewServer(m)
	t.Cleanup(srv.Close)
	go func() {
		defer sConn.Close()
		_ = srv.HandleConn(sConn)
	}()
	t.Cleanup(func() { cConn.Close() })
	return NewClient(cConn, m, ch, 1e-6)
}

func input(i int) *tensor.Tensor {
	in := tensor.New(tensor.NewCHW(3, 16, 16))
	for j := range in.Data {
		in.Data[j] = float32((j+i*7)%13)/13 - 0.4
	}
	return in
}

func TestTensorWireRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	orig := input(3)
	if err := writeTensor(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, _, err := readTensor(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Shape.Equal(orig.Shape) {
		t.Fatalf("shape %v != %v", got.Shape, orig.Shape)
	}
	for i := range orig.Data {
		if got.Data[i] != orig.Data[i] {
			t.Fatal("payload corrupted")
		}
	}
}

func TestReadTensorRejectsGarbage(t *testing.T) {
	// Rank 0.
	if _, _, err := readTensor(bytes.NewReader([]byte{0})); err == nil {
		t.Error("rank 0 must error")
	}
	// Rank 9.
	if _, _, err := readTensor(bytes.NewReader([]byte{9})); err == nil {
		t.Error("rank 9 must error")
	}
	// Negative dim.
	var buf bytes.Buffer
	buf.WriteByte(1)
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF}) // -1 little endian
	if _, _, err := readTensor(&buf); err == nil {
		t.Error("negative dim must error")
	}
	// Truncated payload.
	var buf2 bytes.Buffer
	_ = writeTensor(&buf2, input(0))
	trunc := buf2.Bytes()[:buf2.Len()-10]
	if _, _, err := readTensor(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated payload must error")
	}
}

func TestRunJobEveryCutMatchesLocalForward(t *testing.T) {
	m := testModel(t)
	cl := startPair(t, m, netsim.WiFi)
	in := input(1)
	want, err := m.Forward(in.Clone())
	if err != nil {
		t.Fatal(err)
	}
	wantClass := engine.Argmax(want)
	for cut := 0; cut < cl.Units(); cut++ {
		res, err := cl.RunJob(cut, cut, in.Clone())
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if res.Class != wantClass {
			t.Errorf("cut %d: class %d, want %d", cut, res.Class, wantClass)
		}
		if res.MobileMs < 0 || res.CommMs < 0 {
			t.Errorf("cut %d: negative timings %+v", cut, res)
		}
	}
}

func TestRunJobLocalOnlySkipsNetwork(t *testing.T) {
	m := testModel(t)
	// No server behind the pipe: a local-only job must still succeed.
	cConn, _ := net.Pipe()
	defer cConn.Close()
	cl := NewClient(cConn, m, netsim.WiFi, 1e-6)
	res, err := cl.RunJob(0, cl.Units()-1, input(2))
	if err != nil {
		t.Fatalf("local-only: %v", err)
	}
	if res.CommMs != 0 || res.CloudMs != 0 {
		t.Errorf("local-only must not touch the network: %+v", res)
	}
}

func TestRunJobRejectsBadCut(t *testing.T) {
	m := testModel(t)
	cl := startPair(t, m, netsim.WiFi)
	if _, err := cl.RunJob(0, cl.Units(), input(0)); err == nil {
		t.Error("out-of-range cut must error")
	}
	if _, err := cl.RunJob(0, -1, input(0)); err == nil {
		t.Error("negative cut must error")
	}
}

func TestRunPlanPipelined(t *testing.T) {
	m := testModel(t)
	cl := startPair(t, m, netsim.FourG)
	g := m.Graph()
	curve := profile.BuildCurve(g, profile.RaspberryPi4(), profile.CloudGPU(), netsim.FourG, tensor.Float32)
	n := 6
	plan, err := core.JPS(curve, n)
	if err != nil {
		t.Fatal(err)
	}
	inputs := make([]*tensor.Tensor, n)
	for i := range inputs {
		inputs[i] = input(i)
	}
	rep, err := cl.RunPlan(plan, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != n {
		t.Fatalf("got %d results, want %d", len(rep.Results), n)
	}
	if rep.MakespanMs <= 0 {
		t.Error("non-positive makespan")
	}
	// Every job classified identically to a pure local run.
	seen := map[int]bool{}
	for _, r := range rep.Results {
		if seen[r.JobID] {
			t.Fatalf("duplicate result for job %d", r.JobID)
		}
		seen[r.JobID] = true
		want, _ := m.Forward(inputs[r.JobID].Clone())
		if r.Class != engine.Argmax(want) {
			t.Errorf("job %d: class %d, want %d", r.JobID, r.Class, engine.Argmax(want))
		}
	}
}

func TestRunPlanInputCountMismatch(t *testing.T) {
	m := testModel(t)
	cl := startPair(t, m, netsim.WiFi)
	curve := profile.BuildCurve(m.Graph(), profile.RaspberryPi4(), profile.CloudGPU(), netsim.WiFi, tensor.Float32)
	plan, _ := core.JPS(curve, 3)
	if _, err := cl.RunPlan(plan, nil); err == nil {
		t.Error("input count mismatch must error")
	}
}

func TestCalibrateComm(t *testing.T) {
	m := testModel(t)
	// 8 Mb/s channel = 1e6 bytes/s.
	ch := netsim.Channel{Name: "cal", UplinkMbps: 8, SetupMs: 100}
	cConn, sConn := net.Pipe()
	srv := NewServer(m)
	t.Cleanup(srv.Close)
	go func() { defer sConn.Close(); _ = srv.HandleConn(sConn) }()
	defer cConn.Close()
	// Scale and SetupMs chosen so shaped sleeps dominate real pipe
	// costs everywhere the fit looks: the scaled intercept is
	// SetupMs * scale = 10 ms and the largest transmit sleep 200 ms,
	// against ms-level copy jitter on a loaded 1-CPU box. (At
	// scale=1e-2 / SetupMs=10 the true intercept was 0.1 ms and
	// convex jitter on the 2 MB payloads could rotate it negative.)
	scale := 1e-1
	cl := NewClient(cConn, m, ch, scale)

	fit, err := cl.CalibrateComm([]int{200_000, 600_000, 1_200_000, 2_000_000}, 2)
	if err != nil {
		t.Fatalf("CalibrateComm: %v", err)
	}
	// Expected slope: scale * 1000 ms/s / 1e6 B/s = 1e-5 ms/byte.
	// Under -race the pipe copy itself adds measurable per-byte time,
	// so accept up to ~2.5x; the structural claims (positive intercept,
	// linear fit) are what matter.
	wantSlope := scale * 1000 / ch.BytesPerSec()
	if fit.W1 < wantSlope*0.6 || fit.W1 > wantSlope*2.5 {
		t.Errorf("slope = %g, want within [0.6, 2.5]x of %g", fit.W1, wantSlope)
	}
	// Intercept reflects the (scaled) setup latency, positive.
	if fit.W0 <= 0 {
		t.Errorf("intercept = %g, want > 0", fit.W0)
	}
	if fit.R2 < 0.95 {
		t.Errorf("R2 = %g, calibration too noisy", fit.R2)
	}
}

func TestServeOverTCP(t *testing.T) {
	m := testModel(t)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	defer lis.Close()
	srv := NewServer(m)
	t.Cleanup(srv.Close)
	go func() { _ = srv.Serve(lis) }()

	conn, err := net.Dial("tcp", lis.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	cl := NewClient(conn, m, netsim.WiFi, 1e-6)
	in := input(4)
	want, _ := m.Forward(in.Clone())
	res, err := cl.RunJob(0, 2, in.Clone())
	if err != nil {
		t.Fatalf("RunJob over TCP: %v", err)
	}
	if res.Class != engine.Argmax(want) {
		t.Errorf("class %d, want %d", res.Class, engine.Argmax(want))
	}
}

func TestServerRejectsBadBoundary(t *testing.T) {
	m := testModel(t)
	srv := NewServer(m)
	t.Cleanup(srv.Close)
	// Wrong shape for cut 1.
	if _, err := srv.infer(&inferRequest{JobID: 1, Cut: 1, Tensor: tensor.New(tensor.NewCHW(1, 2, 2))}); err == nil {
		t.Error("wrong boundary shape must error")
	}
	if _, err := srv.infer(&inferRequest{JobID: 1, Cut: 999, Tensor: tensor.New(tensor.NewCHW(1, 2, 2))}); err == nil {
		t.Error("out-of-range cut must error")
	}
}
