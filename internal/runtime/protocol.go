// Package runtime is the executable offloading system: a cloud-side
// server and a mobile-side client that really run partitioned
// inferences over a net.Conn, mirroring the paper's PyTorch + gRPC
// testbed. The client computes the mobile prefix with the real engine,
// serializes the boundary tensor, ships it over a bandwidth-shaped
// link, and the server finishes the inference and returns the class
// plus its measured compute time (the paper's tc field, used to
// separate communication delay from cloud delay).
package runtime

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"dnnjps/internal/tensor"
)

// Message types on the wire.
const (
	msgInfer = byte(1) // client -> server: boundary tensor at a cut
	msgPing  = byte(2) // client -> server: calibration payload, echoed as a reply header
)

const maxTensorBytes = 256 << 20 // defensive cap against corrupt frames

// inferRequest is the client's upload: which unit the model was cut
// after, plus the boundary activation tensor.
type inferRequest struct {
	JobID  uint32
	Cut    uint32
	Tensor *tensor.Tensor
}

// inferReply is the server's answer: predicted class and the server's
// own measured compute time in nanoseconds.
type inferReply struct {
	JobID   uint32
	Class   int32
	CloudNs int64
}

func writeInferRequest(w io.Writer, req *inferRequest) error {
	if err := binary.Write(w, binary.LittleEndian, msgInfer); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, req.JobID); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, req.Cut); err != nil {
		return err
	}
	return writeTensor(w, req.Tensor)
}

func writeTensor(w io.Writer, t *tensor.Tensor) error {
	if err := binary.Write(w, binary.LittleEndian, uint8(t.Shape.Rank())); err != nil {
		return err
	}
	for _, d := range t.Shape {
		if err := binary.Write(w, binary.LittleEndian, int32(d)); err != nil {
			return err
		}
	}
	buf := make([]byte, 4*len(t.Data))
	for i, v := range t.Data {
		binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(v))
	}
	_, err := w.Write(buf)
	return err
}

func readTensor(r io.Reader) (*tensor.Tensor, error) {
	var rank uint8
	if err := binary.Read(r, binary.LittleEndian, &rank); err != nil {
		return nil, err
	}
	if rank == 0 || rank > 4 {
		return nil, fmt.Errorf("runtime: bad tensor rank %d", rank)
	}
	shape := make(tensor.Shape, rank)
	elems := int64(1)
	for i := range shape {
		var d int32
		if err := binary.Read(r, binary.LittleEndian, &d); err != nil {
			return nil, err
		}
		if d <= 0 {
			return nil, fmt.Errorf("runtime: bad tensor dim %d", d)
		}
		shape[i] = int(d)
		// Guard the running product in int64 so adversarial dims can
		// neither overflow int nor drive a huge allocation.
		elems *= int64(d)
		if elems*4 > maxTensorBytes {
			return nil, fmt.Errorf("runtime: tensor too large: %v", shape[:i+1])
		}
	}
	buf := make([]byte, 4*shape.Elems())
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	t := tensor.New(shape)
	for i := range t.Data {
		t.Data[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:]))
	}
	return t, nil
}

func readInferRequestBody(r io.Reader) (*inferRequest, error) {
	var req inferRequest
	if err := binary.Read(r, binary.LittleEndian, &req.JobID); err != nil {
		return nil, err
	}
	if err := binary.Read(r, binary.LittleEndian, &req.Cut); err != nil {
		return nil, err
	}
	t, err := readTensor(r)
	if err != nil {
		return nil, err
	}
	req.Tensor = t
	return &req, nil
}

func writeInferReply(w io.Writer, rep *inferReply) error {
	if err := binary.Write(w, binary.LittleEndian, msgInfer); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, rep.JobID); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, rep.Class); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, rep.CloudNs)
}

func readInferReply(r io.Reader) (*inferReply, error) {
	var typ byte
	if err := binary.Read(r, binary.LittleEndian, &typ); err != nil {
		return nil, err
	}
	if typ != msgInfer {
		return nil, fmt.Errorf("runtime: unexpected reply type %d", typ)
	}
	var rep inferReply
	if err := binary.Read(r, binary.LittleEndian, &rep.JobID); err != nil {
		return nil, err
	}
	if err := binary.Read(r, binary.LittleEndian, &rep.Class); err != nil {
		return nil, err
	}
	if err := binary.Read(r, binary.LittleEndian, &rep.CloudNs); err != nil {
		return nil, err
	}
	return &rep, nil
}

// writePing sends a calibration payload of the given size.
func writePing(w io.Writer, payload int) error {
	if err := binary.Write(w, binary.LittleEndian, msgPing); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(payload)); err != nil {
		return err
	}
	_, err := w.Write(make([]byte, payload))
	return err
}

// readPingBody consumes a ping payload and returns its size.
func readPingBody(r io.Reader) (int, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return 0, err
	}
	if n > maxTensorBytes {
		return 0, fmt.Errorf("runtime: ping payload too large: %d", n)
	}
	if _, err := io.CopyN(io.Discard, r, int64(n)); err != nil {
		return 0, err
	}
	return int(n), nil
}

// writePong acknowledges a ping.
func writePong(w io.Writer) error {
	return binary.Write(w, binary.LittleEndian, msgPing)
}

// readPong consumes a ping acknowledgment.
func readPong(r io.Reader) error {
	var typ byte
	if err := binary.Read(r, binary.LittleEndian, &typ); err != nil {
		return err
	}
	if typ != msgPing {
		return fmt.Errorf("runtime: unexpected pong type %d", typ)
	}
	return nil
}
