// Package runtime is the executable offloading system: a cloud-side
// server and a mobile-side client that really run partitioned
// inferences over a net.Conn, mirroring the paper's PyTorch + gRPC
// testbed. The client computes the mobile prefix with the real engine,
// serializes the boundary tensor, ships it over a bandwidth-shaped
// link, and the server finishes the inference and returns the class
// plus its measured compute time (the paper's tc field, used to
// separate communication delay from cloud delay).
//
// The wire path is allocation-free in steady state: every frame is
// encoded and decoded with explicit little-endian byte manipulation
// through pooled scratch buffers (no reflection-based encoding/binary
// round trips), and tensors decode straight into their Data slice.
package runtime

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sync"

	"dnnjps/internal/tensor"
)

// Message types on the wire.
const (
	msgInfer = byte(1) // client -> server: boundary tensor at a cut
	msgPing  = byte(2) // client -> server: calibration payload, echoed as a reply header
)

const maxTensorBytes = 256 << 20 // defensive cap against corrupt frames

const maxTensorRank = 4

// wireChunkSize is the size of the pooled scratch buffers the codecs
// stage bytes through. Tensors larger than one chunk stream through it
// in slices, so a frame of any size needs exactly one pooled buffer
// and zero fresh allocations.
const wireChunkSize = 64 << 10

var wireBufs = sync.Pool{
	New: func() any {
		b := make([]byte, wireChunkSize)
		return &b
	},
}

// inferRequest is the client's upload: which unit the model was cut
// after, plus the boundary activation tensor.
type inferRequest struct {
	JobID  uint32
	Cut    uint32
	Tensor *tensor.Tensor
}

// inferReply is the server's answer: predicted class and the server's
// own measured compute time in nanoseconds.
type inferReply struct {
	JobID   uint32
	Class   int32
	CloudNs int64
}

// RequestWireBytes returns the exact on-the-wire size of an infer
// request carrying a boundary tensor of the given shape — the byte
// count the bandwidth shaper paces, used to predict the paper's g(x)
// for a live run.
func RequestWireBytes(s tensor.Shape) int {
	return 9 + 1 + 4*s.Rank() + 4*s.Elems()
}

func writeInferRequest(w io.Writer, req *inferRequest) error {
	bp := wireBufs.Get().(*[]byte)
	b := *bp
	b[0] = msgInfer
	binary.LittleEndian.PutUint32(b[1:], req.JobID)
	binary.LittleEndian.PutUint32(b[5:], req.Cut)
	_, err := w.Write(b[:9])
	wireBufs.Put(bp)
	if err != nil {
		return err
	}
	return writeTensor(w, req.Tensor)
}

// writeTensor encodes rank, dims, and payload through a pooled chunk:
// one scratch buffer regardless of tensor size, no per-call
// allocation.
func writeTensor(w io.Writer, t *tensor.Tensor) error {
	rank := t.Shape.Rank()
	if rank == 0 || rank > maxTensorRank {
		return fmt.Errorf("runtime: cannot encode tensor of rank %d", rank)
	}
	bp := wireBufs.Get().(*[]byte)
	defer wireBufs.Put(bp)
	chunk := *bp
	chunk[0] = uint8(rank)
	for i, d := range t.Shape {
		binary.LittleEndian.PutUint32(chunk[1+4*i:], uint32(d))
	}
	if _, err := w.Write(chunk[:1+4*rank]); err != nil {
		return err
	}
	data := t.Data
	for off := 0; off < len(data); {
		n := len(data) - off
		if n > len(chunk)/4 {
			n = len(chunk) / 4
		}
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint32(chunk[4*i:], math.Float32bits(data[off+i]))
		}
		if _, err := w.Write(chunk[:4*n]); err != nil {
			return err
		}
		off += n
	}
	return nil
}

// readTensor decodes a tensor frame with a single allocation — the
// result tensor itself. Payload bytes stream through a pooled chunk
// and convert straight into Tensor.Data.
func readTensor(r io.Reader) (*tensor.Tensor, error) {
	bp := wireBufs.Get().(*[]byte)
	defer wireBufs.Put(bp)
	chunk := *bp
	if _, err := io.ReadFull(r, chunk[:1]); err != nil {
		return nil, err
	}
	rank := int(chunk[0])
	if rank == 0 || rank > maxTensorRank {
		return nil, fmt.Errorf("runtime: bad tensor rank %d", rank)
	}
	if _, err := io.ReadFull(r, chunk[:4*rank]); err != nil {
		return nil, err
	}
	shape := make(tensor.Shape, rank)
	elems := int64(1)
	for i := range shape {
		d := int32(binary.LittleEndian.Uint32(chunk[4*i:]))
		if d <= 0 {
			return nil, fmt.Errorf("runtime: bad tensor dim %d", d)
		}
		shape[i] = int(d)
		// Guard the running product in int64 so adversarial dims can
		// neither overflow int nor drive a huge allocation.
		elems *= int64(d)
		if elems*4 > maxTensorBytes {
			return nil, fmt.Errorf("runtime: tensor too large: %v", shape[:i+1])
		}
	}
	t := tensor.New(shape)
	if err := readFloat32Into(r, chunk, t.Data); err != nil {
		return nil, err
	}
	return t, nil
}

// readFloat32Into fills dst with little-endian float32s from r,
// staging through the caller's chunk.
func readFloat32Into(r io.Reader, chunk []byte, dst []float32) error {
	for off := 0; off < len(dst); {
		n := len(dst) - off
		if n > len(chunk)/4 {
			n = len(chunk) / 4
		}
		if _, err := io.ReadFull(r, chunk[:4*n]); err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			dst[off+i] = math.Float32frombits(binary.LittleEndian.Uint32(chunk[4*i:]))
		}
		off += n
	}
	return nil
}

func readInferRequestBody(r io.Reader) (*inferRequest, error) {
	var req inferRequest
	bp := wireBufs.Get().(*[]byte)
	chunk := *bp
	_, err := io.ReadFull(r, chunk[:8])
	if err == nil {
		req.JobID = binary.LittleEndian.Uint32(chunk)
		req.Cut = binary.LittleEndian.Uint32(chunk[4:])
	}
	wireBufs.Put(bp)
	if err != nil {
		return nil, err
	}
	t, err := readTensor(r)
	if err != nil {
		return nil, err
	}
	req.Tensor = t
	return &req, nil
}

func writeInferReply(w io.Writer, rep *inferReply) error {
	bp := wireBufs.Get().(*[]byte)
	b := *bp
	b[0] = msgInfer
	binary.LittleEndian.PutUint32(b[1:], rep.JobID)
	binary.LittleEndian.PutUint32(b[5:], uint32(rep.Class))
	binary.LittleEndian.PutUint64(b[9:], uint64(rep.CloudNs))
	_, err := w.Write(b[:17])
	wireBufs.Put(bp)
	return err
}

// readInferReplyBody decodes the fixed 16-byte reply payload after the
// type byte has been consumed (the client demultiplexer dispatches on
// the type itself).
func readInferReplyBody(r io.Reader) (inferReply, error) {
	bp := wireBufs.Get().(*[]byte)
	defer wireBufs.Put(bp)
	b := *bp
	if _, err := io.ReadFull(r, b[:16]); err != nil {
		return inferReply{}, err
	}
	return inferReply{
		JobID:   binary.LittleEndian.Uint32(b),
		Class:   int32(binary.LittleEndian.Uint32(b[4:])),
		CloudNs: int64(binary.LittleEndian.Uint64(b[8:])),
	}, nil
}

func readInferReply(r io.Reader) (*inferReply, error) {
	var typ [1]byte
	if _, err := io.ReadFull(r, typ[:]); err != nil {
		return nil, err
	}
	if typ[0] != msgInfer {
		return nil, fmt.Errorf("runtime: unexpected reply type %d", typ[0])
	}
	rep, err := readInferReplyBody(r)
	if err != nil {
		return nil, err
	}
	return &rep, nil
}

// writePing sends a calibration payload of the given size. Payload
// bytes are zeros streamed from a pooled chunk.
func writePing(w io.Writer, payload int) error {
	bp := wireBufs.Get().(*[]byte)
	defer wireBufs.Put(bp)
	chunk := *bp
	chunk[0] = msgPing
	binary.LittleEndian.PutUint32(chunk[1:], uint32(payload))
	if _, err := w.Write(chunk[:5]); err != nil {
		return err
	}
	for i := range chunk {
		chunk[i] = 0
	}
	for off := 0; off < payload; {
		n := payload - off
		if n > len(chunk) {
			n = len(chunk)
		}
		if _, err := w.Write(chunk[:n]); err != nil {
			return err
		}
		off += n
	}
	return nil
}

// readPingBody consumes a ping payload and returns its size.
func readPingBody(r io.Reader) (int, error) {
	bp := wireBufs.Get().(*[]byte)
	defer wireBufs.Put(bp)
	b := *bp
	if _, err := io.ReadFull(r, b[:4]); err != nil {
		return 0, err
	}
	n := binary.LittleEndian.Uint32(b)
	if n > maxTensorBytes {
		return 0, fmt.Errorf("runtime: ping payload too large: %d", n)
	}
	if _, err := io.CopyN(io.Discard, r, int64(n)); err != nil {
		return 0, err
	}
	return int(n), nil
}

// writePong acknowledges a ping.
func writePong(w io.Writer) error {
	bp := wireBufs.Get().(*[]byte)
	b := *bp
	b[0] = msgPing
	_, err := w.Write(b[:1])
	wireBufs.Put(bp)
	return err
}

// readPong consumes a ping acknowledgment.
func readPong(r io.Reader) error {
	var typ [1]byte
	if _, err := io.ReadFull(r, typ[:]); err != nil {
		return err
	}
	if typ[0] != msgPing {
		return fmt.Errorf("runtime: unexpected pong type %d", typ[0])
	}
	return nil
}
