// Package runtime is the executable offloading system: a cloud-side
// server and a mobile-side client that really run partitioned
// inferences over a net.Conn, mirroring the paper's PyTorch + gRPC
// testbed. The client computes the mobile prefix with the real engine,
// serializes the boundary tensor, ships it over a bandwidth-shaped
// link, and the server finishes the inference and returns the class
// plus its measured compute time (the paper's tc field, used to
// separate communication delay from cloud delay).
//
// The wire path is allocation-free in steady state: every frame is
// encoded and decoded with explicit little-endian byte manipulation
// through pooled scratch buffers (no reflection-based encoding/binary
// round trips), and tensors decode straight into their Data slice.
package runtime

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sync"

	"dnnjps/internal/tensor"
)

// wireCRC is the table for the CRC-32C (Castagnoli) trailer appended
// to every infer request, infer-set request, and reply. Frame drops on
// a lossy link can desynchronize the byte stream mid-payload, and a
// shifted stream often still parses as a structurally valid message —
// without a checksum the server would run inference on garbage and
// return a wrong class as a "successful" reply. A trailer mismatch is
// instead a connection error, which the fault-tolerant runner turns
// into a resubmission. The sum covers every body byte after the type
// byte; pings (zero-filled calibration payloads) are exempt.
var wireCRC = crc32.MakeTable(crc32.Castagnoli)

// Message types on the wire.
const (
	msgInfer = byte(1) // client -> server: boundary tensor at a cut
	msgPing  = byte(2) // client -> server: calibration payload, echoed as a reply header
	// msgInferSet (3) is defined in general.go.
	msgHello = byte(4) // client -> server: tenant handshake (no reply)
)

// Reply flag bits (inferReply.Flags). The server piggybacks its
// admission-control state on every reply so clients learn about cloud
// saturation without a separate control channel.
const (
	// replyFlagBackpressure: the server's global queue is past its hint
	// watermark — the client should shift cuts toward local compute
	// (see Runner's hint-driven re-planning).
	replyFlagBackpressure = uint8(1 << 0)
	// replyFlagShed: the job was NOT executed; admission control dropped
	// it at the overload watermark. Class is -1 and the caller owns
	// recovery (the Runner finishes shed jobs on the mobile engine).
	replyFlagShed = uint8(1 << 1)
)

// maxTenantLen bounds the tenant ID carried by a hello frame.
const maxTenantLen = 64

const maxTensorBytes = 256 << 20 // defensive cap against corrupt frames

const maxTensorRank = 4

// quantTensorFlag marks a quantized tensor frame: the leading byte is
// quantTensorFlag|rank instead of the bare rank. Legacy float32 frames
// (rank 1..4) are untouched — a pre-quantization decoder rejects the
// flagged byte as a bad rank instead of misparsing the payload, and a
// pre-quantization encoder's frames decode here bit-identically. After
// the flagged byte come the affine mapping (float32 scale + int8 zero
// point), the dims, and one byte per element instead of four — the 4x
// payload shrink that makes quantized cuts cheap to ship.
const quantTensorFlag = byte(0x80)

// wireChunkSize is the size of the pooled scratch buffers the codecs
// stage bytes through. Tensors larger than one chunk stream through it
// in slices, so a frame of any size needs exactly one pooled buffer
// and zero fresh allocations.
const wireChunkSize = 64 << 10

var wireBufs = sync.Pool{
	New: func() any {
		b := make([]byte, wireChunkSize)
		return &b
	},
}

// inferRequest is the client's upload: which unit the model was cut
// after, plus the boundary activation tensor — float32 (Tensor) or
// int8 (Quant), exactly one of which is set.
type inferRequest struct {
	JobID  uint32
	Cut    uint32
	Tensor *tensor.Tensor
	Quant  *tensor.QTensor
}

// inferReply is the server's answer: predicted class plus the
// server's own per-stage metadata — measured compute time and how long
// the request sat in the worker-pool queue before a worker picked it
// up, both in nanoseconds. The client subtracts both from the round
// trip to isolate the pure communication delay (the paper's td − tc),
// and the queue term tells a degraded run apart: a saturated server
// pool shows up as queue time, a degraded link as communication time.
type inferReply struct {
	JobID   uint32
	Class   int32
	CloudNs int64
	QueueNs int64
	Flags   uint8 // replyFlag* bits: server admission-control state
}

// ReplyWireBytes is the full on-the-wire size of a reply frame: type
// byte + 25-byte body (JobID, Class, CloudNs, QueueNs, Flags) +
// CRC-32C trailer. Exported so the profile layer's duplicated copy
// (profile.ReplyBytes, which prices the downlink leg of a cut) can be
// pinned to it by test.
const ReplyWireBytes = 1 + 25 + 4

const replyWireBytes = ReplyWireBytes

// RequestWireBytes returns the exact on-the-wire size of an infer
// request carrying a boundary tensor of the given shape — the byte
// count the bandwidth shaper paces, used to predict the paper's g(x)
// for a live run.
func RequestWireBytes(s tensor.Shape) int {
	return 9 + 1 + 4*s.Rank() + 4*s.Elems() + 4 // +4: CRC-32C trailer
}

// QuantRequestWireBytes is RequestWireBytes for a quantized boundary
// tensor: the header grows by the 5-byte affine mapping, the payload
// shrinks to one byte per element.
func QuantRequestWireBytes(s tensor.Shape) int {
	return 9 + 1 + 5 + 4*s.Rank() + s.Elems() + 4
}

// reqWireBytes sizes a concrete request for byte accounting.
func reqWireBytes(req *inferRequest) int {
	if req.Quant != nil {
		return QuantRequestWireBytes(req.Quant.Shape)
	}
	return RequestWireBytes(req.Tensor.Shape)
}

func writeInferRequest(w io.Writer, req *inferRequest) error {
	bp := wireBufs.Get().(*[]byte)
	b := *bp
	b[0] = msgInfer
	binary.LittleEndian.PutUint32(b[1:], req.JobID)
	binary.LittleEndian.PutUint32(b[5:], req.Cut)
	sum := crc32.Update(0, wireCRC, b[1:9])
	_, err := w.Write(b[:9])
	wireBufs.Put(bp)
	if err != nil {
		return err
	}
	if req.Quant != nil {
		sum, err = writeQTensorSum(w, req.Quant, sum)
	} else {
		sum, err = writeTensorSum(w, req.Tensor, sum)
	}
	if err != nil {
		return err
	}
	return writeSumTrailer(w, sum)
}

// writeSumTrailer appends the running CRC-32C to the frame. The four
// bytes stage through the pool: a stack array would escape into the
// io.Writer and put an allocation on the zero-alloc encode path.
func writeSumTrailer(w io.Writer, sum uint32) error {
	bp := wireBufs.Get().(*[]byte)
	b := *bp
	binary.LittleEndian.PutUint32(b, sum)
	_, err := w.Write(b[:4])
	wireBufs.Put(bp)
	return err
}

// readSumTrailer reads the trailer and compares it to the sum the
// reader accumulated over the body bytes.
func readSumTrailer(r io.Reader, sum uint32) error {
	bp := wireBufs.Get().(*[]byte)
	defer wireBufs.Put(bp)
	b := *bp
	if _, err := io.ReadFull(r, b[:4]); err != nil {
		return err
	}
	if got := binary.LittleEndian.Uint32(b); got != sum {
		return fmt.Errorf("runtime: frame checksum mismatch (got %08x, computed %08x)", got, sum)
	}
	return nil
}

// writeTensor encodes rank, dims, and payload through a pooled chunk:
// one scratch buffer regardless of tensor size, no per-call
// allocation.
func writeTensor(w io.Writer, t *tensor.Tensor) error {
	_, err := writeTensorSum(w, t, 0)
	return err
}

// writeTensorSum is writeTensor threading a running CRC-32C over every
// byte it emits, so message codecs can checksum whole frames without
// wrapping the writer (which would allocate on the hot path).
func writeTensorSum(w io.Writer, t *tensor.Tensor, sum uint32) (uint32, error) {
	rank := t.Shape.Rank()
	if rank == 0 || rank > maxTensorRank {
		return sum, fmt.Errorf("runtime: cannot encode tensor of rank %d", rank)
	}
	bp := wireBufs.Get().(*[]byte)
	defer wireBufs.Put(bp)
	chunk := *bp
	chunk[0] = uint8(rank)
	for i, d := range t.Shape {
		binary.LittleEndian.PutUint32(chunk[1+4*i:], uint32(d))
	}
	sum = crc32.Update(sum, wireCRC, chunk[:1+4*rank])
	if _, err := w.Write(chunk[:1+4*rank]); err != nil {
		return sum, err
	}
	data := t.Data
	for off := 0; off < len(data); {
		n := len(data) - off
		if n > len(chunk)/4 {
			n = len(chunk) / 4
		}
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint32(chunk[4*i:], math.Float32bits(data[off+i]))
		}
		sum = crc32.Update(sum, wireCRC, chunk[:4*n])
		if _, err := w.Write(chunk[:4*n]); err != nil {
			return sum, err
		}
		off += n
	}
	return sum, nil
}

// writeQTensorSum encodes a quantized tensor frame: flagged rank byte,
// affine mapping, dims, then the int8 codes — one byte each, streamed
// through the pooled chunk like the float32 payload.
func writeQTensorSum(w io.Writer, q *tensor.QTensor, sum uint32) (uint32, error) {
	rank := q.Shape.Rank()
	if rank == 0 || rank > maxTensorRank {
		return sum, fmt.Errorf("runtime: cannot encode tensor of rank %d", rank)
	}
	bp := wireBufs.Get().(*[]byte)
	defer wireBufs.Put(bp)
	chunk := *bp
	chunk[0] = quantTensorFlag | uint8(rank)
	binary.LittleEndian.PutUint32(chunk[1:], math.Float32bits(q.Scale))
	chunk[5] = byte(int8(q.Zero))
	for i, d := range q.Shape {
		binary.LittleEndian.PutUint32(chunk[6+4*i:], uint32(d))
	}
	hdr := 6 + 4*rank
	sum = crc32.Update(sum, wireCRC, chunk[:hdr])
	if _, err := w.Write(chunk[:hdr]); err != nil {
		return sum, err
	}
	data := q.Data
	for off := 0; off < len(data); {
		n := len(data) - off
		if n > len(chunk) {
			n = len(chunk)
		}
		for i := 0; i < n; i++ {
			chunk[i] = byte(data[off+i])
		}
		sum = crc32.Update(sum, wireCRC, chunk[:n])
		if _, err := w.Write(chunk[:n]); err != nil {
			return sum, err
		}
		off += n
	}
	return sum, nil
}

// readTensor decodes a tensor frame with a single allocation — the
// result tensor itself. Payload bytes stream through a pooled chunk
// and convert straight into Tensor.Data. Exactly one of the results is
// non-nil: the float32 tensor for a legacy frame, the quantized tensor
// for a flagged frame.
func readTensor(r io.Reader) (*tensor.Tensor, *tensor.QTensor, error) {
	t, q, _, err := readTensorSum(r, 0)
	return t, q, err
}

// readTensorSum is readTensor accumulating a CRC-32C over every byte
// it consumes, mirroring writeTensorSum/writeQTensorSum.
func readTensorSum(r io.Reader, sum uint32) (*tensor.Tensor, *tensor.QTensor, uint32, error) {
	bp := wireBufs.Get().(*[]byte)
	defer wireBufs.Put(bp)
	chunk := *bp
	if _, err := io.ReadFull(r, chunk[:1]); err != nil {
		return nil, nil, sum, err
	}
	quant := chunk[0]&quantTensorFlag != 0
	rank := int(chunk[0] &^ quantTensorFlag)
	if rank == 0 || rank > maxTensorRank {
		return nil, nil, sum, fmt.Errorf("runtime: bad tensor rank %d", chunk[0])
	}
	sum = crc32.Update(sum, wireCRC, chunk[:1])
	var qp tensor.QParams
	if quant {
		if _, err := io.ReadFull(r, chunk[:5]); err != nil {
			return nil, nil, sum, err
		}
		sum = crc32.Update(sum, wireCRC, chunk[:5])
		qp.Scale = math.Float32frombits(binary.LittleEndian.Uint32(chunk))
		qp.Zero = int32(int8(chunk[4]))
		// A hostile scale would decode into NaN/Inf activations; the
		// real encoder only ever emits finite positive scales.
		if !(qp.Scale > 0) || math.IsInf(float64(qp.Scale), 1) {
			return nil, nil, sum, fmt.Errorf("runtime: bad quant scale %v", qp.Scale)
		}
	}
	if _, err := io.ReadFull(r, chunk[:4*rank]); err != nil {
		return nil, nil, sum, err
	}
	sum = crc32.Update(sum, wireCRC, chunk[:4*rank])
	shape := make(tensor.Shape, rank)
	elems := int64(1)
	elemBytes := int64(4)
	if quant {
		elemBytes = 1
	}
	for i := range shape {
		d := int32(binary.LittleEndian.Uint32(chunk[4*i:]))
		if d <= 0 {
			return nil, nil, sum, fmt.Errorf("runtime: bad tensor dim %d", d)
		}
		shape[i] = int(d)
		// Guard the running product in int64 so adversarial dims can
		// neither overflow int nor drive a huge allocation.
		elems *= int64(d)
		if elems*elemBytes > maxTensorBytes {
			return nil, nil, sum, fmt.Errorf("runtime: tensor too large: %v", shape[:i+1])
		}
	}
	if quant {
		q := tensor.NewQ(shape, qp)
		data := q.Data
		for off := 0; off < len(data); {
			n := len(data) - off
			if n > len(chunk) {
				n = len(chunk)
			}
			if _, err := io.ReadFull(r, chunk[:n]); err != nil {
				return nil, nil, sum, err
			}
			sum = crc32.Update(sum, wireCRC, chunk[:n])
			for i := 0; i < n; i++ {
				data[off+i] = int8(chunk[i])
			}
			off += n
		}
		return nil, q, sum, nil
	}
	t := tensor.New(shape)
	sum, err := readFloat32Into(r, chunk, t.Data, sum)
	if err != nil {
		return nil, nil, sum, err
	}
	return t, nil, sum, nil
}

// readFloat32Into fills dst with little-endian float32s from r,
// staging through the caller's chunk and extending the running CRC.
func readFloat32Into(r io.Reader, chunk []byte, dst []float32, sum uint32) (uint32, error) {
	for off := 0; off < len(dst); {
		n := len(dst) - off
		if n > len(chunk)/4 {
			n = len(chunk) / 4
		}
		if _, err := io.ReadFull(r, chunk[:4*n]); err != nil {
			return sum, err
		}
		sum = crc32.Update(sum, wireCRC, chunk[:4*n])
		for i := 0; i < n; i++ {
			dst[off+i] = math.Float32frombits(binary.LittleEndian.Uint32(chunk[4*i:]))
		}
		off += n
	}
	return sum, nil
}

func readInferRequestBody(r io.Reader) (*inferRequest, error) {
	var req inferRequest
	bp := wireBufs.Get().(*[]byte)
	chunk := *bp
	_, err := io.ReadFull(r, chunk[:8])
	var sum uint32
	if err == nil {
		req.JobID = binary.LittleEndian.Uint32(chunk)
		req.Cut = binary.LittleEndian.Uint32(chunk[4:])
		sum = crc32.Update(0, wireCRC, chunk[:8])
	}
	wireBufs.Put(bp)
	if err != nil {
		return nil, err
	}
	t, q, sum, err := readTensorSum(r, sum)
	if err != nil {
		return nil, err
	}
	if err := readSumTrailer(r, sum); err != nil {
		return nil, err
	}
	req.Tensor, req.Quant = t, q
	return &req, nil
}

func writeInferReply(w io.Writer, rep *inferReply) error {
	bp := wireBufs.Get().(*[]byte)
	b := *bp
	b[0] = msgInfer
	binary.LittleEndian.PutUint32(b[1:], rep.JobID)
	binary.LittleEndian.PutUint32(b[5:], uint32(rep.Class))
	binary.LittleEndian.PutUint64(b[9:], uint64(rep.CloudNs))
	binary.LittleEndian.PutUint64(b[17:], uint64(rep.QueueNs))
	b[25] = rep.Flags
	binary.LittleEndian.PutUint32(b[26:], crc32.Checksum(b[1:26], wireCRC))
	_, err := w.Write(b[:replyWireBytes])
	wireBufs.Put(bp)
	return err
}

// readInferReplyBody decodes the fixed 29-byte reply payload (25 body
// bytes + CRC-32C) after the type byte has been consumed (the client
// demultiplexer dispatches on the type itself).
func readInferReplyBody(r io.Reader) (inferReply, error) {
	bp := wireBufs.Get().(*[]byte)
	defer wireBufs.Put(bp)
	b := *bp
	if _, err := io.ReadFull(r, b[:replyWireBytes-1]); err != nil {
		return inferReply{}, err
	}
	if got, want := binary.LittleEndian.Uint32(b[25:]), crc32.Checksum(b[:25], wireCRC); got != want {
		return inferReply{}, fmt.Errorf("runtime: reply checksum mismatch (got %08x, computed %08x)", got, want)
	}
	return inferReply{
		JobID:   binary.LittleEndian.Uint32(b),
		Class:   int32(binary.LittleEndian.Uint32(b[4:])),
		CloudNs: int64(binary.LittleEndian.Uint64(b[8:])),
		QueueNs: int64(binary.LittleEndian.Uint64(b[16:])),
		Flags:   b[24],
	}, nil
}

func readInferReply(r io.Reader) (*inferReply, error) {
	var typ [1]byte
	if _, err := io.ReadFull(r, typ[:]); err != nil {
		return nil, err
	}
	if typ[0] != msgInfer {
		return nil, fmt.Errorf("runtime: unexpected reply type %d", typ[0])
	}
	rep, err := readInferReplyBody(r)
	if err != nil {
		return nil, err
	}
	return &rep, nil
}

// writePing sends a calibration payload of the given size. Payload
// bytes are zeros streamed from a pooled chunk.
func writePing(w io.Writer, payload int) error {
	bp := wireBufs.Get().(*[]byte)
	defer wireBufs.Put(bp)
	chunk := *bp
	chunk[0] = msgPing
	binary.LittleEndian.PutUint32(chunk[1:], uint32(payload))
	if _, err := w.Write(chunk[:5]); err != nil {
		return err
	}
	for i := range chunk {
		chunk[i] = 0
	}
	for off := 0; off < payload; {
		n := payload - off
		if n > len(chunk) {
			n = len(chunk)
		}
		if _, err := w.Write(chunk[:n]); err != nil {
			return err
		}
		off += n
	}
	return nil
}

// readPingBody consumes a ping payload and returns its size.
func readPingBody(r io.Reader) (int, error) {
	bp := wireBufs.Get().(*[]byte)
	defer wireBufs.Put(bp)
	b := *bp
	if _, err := io.ReadFull(r, b[:4]); err != nil {
		return 0, err
	}
	n := binary.LittleEndian.Uint32(b)
	if n > maxTensorBytes {
		return 0, fmt.Errorf("runtime: ping payload too large: %d", n)
	}
	if _, err := io.CopyN(io.Discard, r, int64(n)); err != nil {
		return 0, err
	}
	return int(n), nil
}

// writePong acknowledges a ping.
func writePong(w io.Writer) error {
	bp := wireBufs.Get().(*[]byte)
	b := *bp
	b[0] = msgPing
	_, err := w.Write(b[:1])
	wireBufs.Put(bp)
	return err
}

// readPong consumes a ping acknowledgment.
func readPong(r io.Reader) error {
	var typ [1]byte
	if _, err := io.ReadFull(r, typ[:]); err != nil {
		return err
	}
	if typ[0] != msgPing {
		return fmt.Errorf("runtime: unexpected pong type %d", typ[0])
	}
	return nil
}

// writeHello sends the tenant handshake: type byte, one length byte,
// the tenant ID bytes, and a CRC-32C over length+ID. The frame gets no
// reply — a client that cares whether the server honored it observes
// the per-tenant metrics. Legacy clients simply never send one and
// land in the shared default tenant.
func writeHello(w io.Writer, tenant string) error {
	if tenant == "" || len(tenant) > maxTenantLen {
		return fmt.Errorf("runtime: bad tenant ID length %d (want 1..%d)", len(tenant), maxTenantLen)
	}
	bp := wireBufs.Get().(*[]byte)
	b := *bp
	b[0] = msgHello
	b[1] = byte(len(tenant))
	copy(b[2:], tenant)
	n := 2 + len(tenant)
	binary.LittleEndian.PutUint32(b[n:], crc32.Checksum(b[1:n], wireCRC))
	_, err := w.Write(b[:n+4])
	wireBufs.Put(bp)
	return err
}

// readHelloBody decodes the tenant ID after the type byte has been
// consumed.
func readHelloBody(r io.Reader) (string, error) {
	bp := wireBufs.Get().(*[]byte)
	defer wireBufs.Put(bp)
	b := *bp
	if _, err := io.ReadFull(r, b[:1]); err != nil {
		return "", err
	}
	n := int(b[0])
	if n == 0 || n > maxTenantLen {
		return "", fmt.Errorf("runtime: bad tenant ID length %d", n)
	}
	if _, err := io.ReadFull(r, b[1:1+n+4]); err != nil {
		return "", err
	}
	if got, want := binary.LittleEndian.Uint32(b[1+n:]), crc32.Checksum(b[:1+n], wireCRC); got != want {
		return "", fmt.Errorf("runtime: hello checksum mismatch (got %08x, computed %08x)", got, want)
	}
	return string(b[1 : 1+n]), nil
}
