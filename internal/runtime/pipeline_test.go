package runtime

import (
	"bufio"
	"net"
	"testing"
	"time"

	"dnnjps/internal/core"
	"dnnjps/internal/dag"
	"dnnjps/internal/engine"
	"dnnjps/internal/flowshop"
	"dnnjps/internal/netsim"
	"dnnjps/internal/nn"
	"dnnjps/internal/profile"
	"dnnjps/internal/tensor"
)

// pipeModel is a chain CNN sized so that a mid-network cut gives a
// ~16 KB boundary tensor and a cloud suffix of a few hundred
// microseconds — communication dominates under the shaped channel
// below, the regime where Prop. 4.1 is sharp.
func pipeModel(t testing.TB) *engine.Model {
	t.Helper()
	g := dag.New("pipetest")
	in := g.Add(&nn.Input{LayerName: "input", Shape: tensor.NewCHW(3, 32, 32)})
	c1 := g.Add(&nn.Conv2D{LayerName: "conv1", OutC: 16, KH: 3, KW: 3, Stride: 1, Pad: 1, Bias: true}, in)
	r1 := g.Add(nn.NewActivation("relu1", nn.ReLU), c1)
	p1 := g.Add(nn.NewMaxPool2D("pool1", 2, 2, 0), r1)
	c2 := g.Add(&nn.Conv2D{LayerName: "conv2", OutC: 32, KH: 3, KW: 3, Stride: 1, Pad: 1, Bias: true}, p1)
	r2 := g.Add(nn.NewActivation("relu2", nn.ReLU), c2)
	gp := g.Add(&nn.GlobalAvgPool2D{LayerName: "gap"}, r2)
	fc := g.Add(&nn.Dense{LayerName: "fc", Out: 10, Bias: true}, gp)
	g.Add(nn.NewSoftmax("softmax"), fc)
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	return engine.Load(g, 77)
}

// pipeInput builds an input matching pipeModel's 3x32x32 stem.
func pipeInput(i int) *tensor.Tensor {
	in := tensor.New(tensor.NewCHW(3, 32, 32))
	for j := range in.Data {
		in.Data[j] = float32((j+i*11)%17)/17 - 0.4
	}
	return in
}

// uniformPlan builds a plan that cuts every job at the same unit, in
// job-ID order — the identical-DNN setting where the closed form of
// Prop. 4.1 is exact.
func uniformPlan(n, cut int) *core.Plan {
	p := &core.Plan{Cuts: make([]int, n), Sequence: make([]flowshop.Job, n)}
	for i := range p.Cuts {
		p.Cuts[i] = cut
		p.Sequence[i] = flowshop.Job{ID: i}
	}
	return p
}

// TestRunPlanMatchesProp41 is the tentpole's acceptance test: on a
// bandwidth-shaped link, the measured makespan of a pipelined plan
// must converge to the closed form f(x_1) + max(Σf, Σg) + g(x_n)
// within 15%. The synchronous seed runtime cannot pass this: it held
// the uplink across each request→reply round trip, so its makespan
// exceeded the bound by the summed cloud compute + reply RTTs (one
// per job, ~25% here).
func TestRunPlanMatchesProp41(t *testing.T) {
	prop41Closure(t, func(s *Server) {})
}

// TestRunPlanMatchesProp41Batched re-runs the closure with the cross-job
// coalescer armed. On this plan jobs reach the server one uplink
// transmission (~16 ms) apart, so every window expires solo — the
// coalescer must degrade to job-at-a-time dispatch and cost at most one
// extra window on the tail, far inside the 15% tolerance.
func TestRunPlanMatchesProp41Batched(t *testing.T) {
	prop41Closure(t, func(s *Server) { s.WithBatching(2*time.Millisecond, 16) })
}

func prop41Closure(t *testing.T, configure func(*Server)) {
	t.Helper()
	if testing.Short() {
		t.Skip("timing test")
	}
	if raceEnabled {
		t.Skip("race instrumentation distorts the per-job timings this test asserts on")
	}
	m := pipeModel(t)
	// 8 Mb/s (1 MB/s), no setup latency: each 16 KB boundary costs one
	// ~16 ms pacing sleep. One large sleep per job keeps the timer
	// overshoot (~1 ms/sleep on coarse-timer kernels) far inside the
	// tolerance, and the uplink dominates mobile (~0.4 ms) and cloud
	// (~0.4 ms) compute, the bottleneck regime the closed form
	// describes.
	ch := netsim.Channel{Name: "pipe", UplinkMbps: 8, SetupMs: 0}
	const (
		scale = 1.0
		n     = 10
		cut   = 3 // after pool1: 16x16x16 boundary
	)
	cConn, sConn := net.Pipe()
	defer cConn.Close()
	srv := NewServer(m).WithWorkers(4)
	t.Cleanup(srv.Close)
	configure(srv)
	go func() { defer sConn.Close(); _ = srv.HandleConn(sConn) }()
	cl := NewClient(cConn, m, ch, scale)

	plan := uniformPlan(n, cut)
	inputs := make([]*tensor.Tensor, n)
	for i := range inputs {
		inputs[i] = pipeInput(i)
	}
	rep, err := cl.RunPlan(plan, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != n {
		t.Fatalf("got %d results, want %d", len(rep.Results), n)
	}

	// Prop. 4.1 with measured f (this machine's real compute) and the
	// channel-model g (what the shaper enforces).
	units := profile.LineView(m.Graph())
	boundShape := m.Graph().Node(units[cut].Exit).OutShape
	g := scale * ch.TxMs(RequestWireBytes(boundShape))
	var sumF, sumG float64
	for _, r := range rep.Results {
		sumF += r.MobileMs
		sumG += g
	}
	f1 := rep.Results[0].MobileMs // sequence order = ID order here
	inner := sumF - f1
	if sumG-g > inner {
		inner = sumG - g
	}
	predicted := f1 + inner + g
	ratio := rep.MakespanMs / predicted
	t.Logf("measured %.2f ms, Prop 4.1 closed form %.2f ms (ratio %.3f; per-job g %.2f ms)",
		rep.MakespanMs, predicted, ratio, g)
	if ratio > 1.15 {
		t.Errorf("measured makespan %.2f ms exceeds closed form %.2f ms by %.0f%% (> 15%%): pipeline is not full duplex",
			rep.MakespanMs, predicted, (ratio-1)*100)
	}
	if ratio < 0.7 {
		t.Errorf("measured makespan %.2f ms implausibly below closed form %.2f ms — shaper not engaged?",
			rep.MakespanMs, predicted)
	}
}

// TestRunPlanResultsSortedByJobID pins the report determinism contract:
// completion order varies with the pool, Results order must not.
func TestRunPlanResultsSortedByJobID(t *testing.T) {
	m := pipeModel(t)
	cConn, sConn := net.Pipe()
	defer cConn.Close()
	srv := NewServer(m).WithWorkers(4)
	t.Cleanup(srv.Close)
	go func() { defer sConn.Close(); _ = srv.HandleConn(sConn) }()
	cl := NewClient(cConn, m, netsim.WiFi, 1e-6)

	const n = 16
	plan := uniformPlan(n, 2)
	inputs := make([]*tensor.Tensor, n)
	for i := range inputs {
		inputs[i] = pipeInput(i)
	}
	rep, err := cl.RunPlan(plan, inputs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rep.Results {
		if r.JobID != i {
			t.Fatalf("Results[%d].JobID = %d; report must be sorted by JobID", i, r.JobID)
		}
	}
}

// fakePeer runs f against the server side of a pipe with buffered IO.
func fakePeer(conn net.Conn, f func(r *bufio.Reader, w *bufio.Writer) error) chan error {
	errCh := make(chan error, 1)
	go func() {
		r := bufio.NewReader(conn)
		w := bufio.NewWriter(conn)
		err := f(r, w)
		if err == nil {
			err = w.Flush()
		}
		errCh <- err
	}()
	return errCh
}

// readRequest consumes one infer request (type byte + body).
func readRequest(r *bufio.Reader) (*inferRequest, error) {
	typ, err := r.ReadByte()
	if err != nil {
		return nil, err
	}
	if typ != msgInfer {
		return nil, errUnexpected(typ)
	}
	return readInferRequestBody(r)
}

type errUnexpected byte

func (e errUnexpected) Error() string { return "unexpected frame type" }

func smallBoundary() *tensor.Tensor {
	tt := tensor.New(tensor.NewVec(8))
	for i := range tt.Data {
		tt.Data[i] = float32(i)
	}
	return tt
}

// The demultiplexer must tolerate replies arriving in any order: job
// i's reply may overtake job j's when the server pool finishes them
// out of order.
func TestDemuxOutOfOrderReplies(t *testing.T) {
	m := testModel(t)
	cConn, sConn := net.Pipe()
	defer cConn.Close()
	defer sConn.Close()
	cl := NewClient(cConn, m, netsim.WiFi, 1e-6)

	peer := fakePeer(sConn, func(r *bufio.Reader, w *bufio.Writer) error {
		var reqs []*inferRequest
		for i := 0; i < 2; i++ {
			req, err := readRequest(r)
			if err != nil {
				return err
			}
			reqs = append(reqs, req)
		}
		for i := len(reqs) - 1; i >= 0; i-- { // reverse order
			rep := &inferReply{JobID: reqs[i].JobID, Class: int32(100 + reqs[i].JobID), CloudNs: 1e6}
			if err := writeInferReply(w, rep); err != nil {
				return err
			}
		}
		return nil
	})

	res1 := &JobResult{JobID: 1}
	res2 := &JobResult{JobID: 2}
	c1, err := cl.enqueueInfer(res1, 0, smallBoundary())
	if err != nil {
		t.Fatal(err)
	}
	c2, err := cl.enqueueInfer(res2, 0, smallBoundary())
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.await(c1); err != nil {
		t.Fatal(err)
	}
	if err := cl.await(c2); err != nil {
		t.Fatal(err)
	}
	if res1.Class != 101 || res2.Class != 102 {
		t.Errorf("classes %d/%d, want 101/102: demux crossed replies", res1.Class, res2.Class)
	}
	if res1.CloudMs != 1 || res2.CloudMs != 1 {
		t.Errorf("cloud times %.2f/%.2f, want 1/1", res1.CloudMs, res2.CloudMs)
	}
	if err := <-peer; err != nil {
		t.Fatal(err)
	}
}

// A reply for a job that was never sent is a protocol violation: the
// client must fail cleanly, not hang or panic.
func TestDemuxReplyForUnknownJob(t *testing.T) {
	m := testModel(t)
	cConn, sConn := net.Pipe()
	defer cConn.Close()
	defer sConn.Close()
	cl := NewClient(cConn, m, netsim.WiFi, 1e-6)

	fakePeer(sConn, func(r *bufio.Reader, w *bufio.Writer) error {
		if _, err := readRequest(r); err != nil {
			return err
		}
		return writeInferReply(w, &inferReply{JobID: 99, Class: 1})
	})

	res := &JobResult{JobID: 1}
	c1, err := cl.enqueueInfer(res, 0, smallBoundary())
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.await(c1); err == nil {
		t.Fatal("reply for unknown job must fail the in-flight call")
	}
	if cl.Err() == nil {
		t.Fatal("client must record the protocol violation")
	}
}

// A duplicate reply (same JobID twice) must also fail the client: the
// second delivery matches no in-flight job.
func TestDemuxDuplicateReply(t *testing.T) {
	m := testModel(t)
	cConn, sConn := net.Pipe()
	defer cConn.Close()
	defer sConn.Close()
	cl := NewClient(cConn, m, netsim.WiFi, 1e-6)

	fakePeer(sConn, func(r *bufio.Reader, w *bufio.Writer) error {
		req, err := readRequest(r)
		if err != nil {
			return err
		}
		rep := &inferReply{JobID: req.JobID, Class: 3}
		if err := writeInferReply(w, rep); err != nil {
			return err
		}
		return writeInferReply(w, rep) // duplicate
	})

	res := &JobResult{JobID: 5}
	c1, err := cl.enqueueInfer(res, 0, smallBoundary())
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.await(c1); err != nil {
		t.Fatalf("first reply must deliver: %v", err)
	}
	// The failure is signaled, not polled: fail() closes cl.failed
	// exactly once, so waiting on it is race-free and prompt.
	select {
	case <-cl.failed:
	case <-time.After(5 * time.Second):
		t.Fatal("duplicate reply never surfaced as a client error")
	}
	if cl.Err() == nil {
		t.Fatal("failed channel closed without a recorded error")
	}
	// Future calls fail fast with the recorded error.
	if _, err := cl.enqueueInfer(&JobResult{JobID: 6}, 0, smallBoundary()); err == nil {
		t.Fatal("enqueue after protocol violation must fail")
	}
}

// Two in-flight jobs may not share a JobID — the demultiplexer could
// not tell their replies apart.
func TestDuplicateInFlightJobIDRejected(t *testing.T) {
	m := testModel(t)
	cConn, _ := net.Pipe()
	defer cConn.Close()
	cl := NewClient(cConn, m, netsim.WiFi, 1e-6)
	if _, err := cl.enqueueInfer(&JobResult{JobID: 7}, 0, smallBoundary()); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.enqueueInfer(&JobResult{JobID: 7}, 0, smallBoundary()); err == nil {
		t.Fatal("duplicate in-flight JobID must be rejected")
	}
}

// A transport error mid-plan must abort the run promptly — the compute
// worker may not drain the remaining prefixes first (the seed runtime
// surfaced upload errors only after computing every job).
func TestRunPlanAbortsPromptlyOnError(t *testing.T) {
	m := pipeModel(t)
	cConn, sConn := net.Pipe()
	defer cConn.Close()
	sConn.Close() // peer gone: the very first upload fails

	// A channel slow enough that draining all uploads would take >2s.
	ch := netsim.Channel{Name: "slow", UplinkMbps: 1, SetupMs: 5}
	cl := NewClient(cConn, m, ch, 0.1)

	const n = 200
	plan := uniformPlan(n, 3)
	inputs := make([]*tensor.Tensor, n)
	for i := range inputs {
		inputs[i] = pipeInput(i)
	}
	start := time.Now()
	_, err := cl.RunPlan(plan, inputs)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("RunPlan against a dead peer must error")
	}
	if elapsed > time.Second {
		t.Errorf("RunPlan took %v to surface the transport error; must abort promptly", elapsed)
	}
}

// Out-of-order completion against the real concurrent server: many
// jobs, several workers, every class must still match a local forward.
func TestRunPlanConcurrentServerCorrectness(t *testing.T) {
	m := testModel(t)
	cConn, sConn := net.Pipe()
	defer cConn.Close()
	srv := NewServer(m).WithWorkers(4)
	t.Cleanup(srv.Close)
	go func() { defer sConn.Close(); _ = srv.HandleConn(sConn) }()
	cl := NewClient(cConn, m, netsim.WiFi, 1e-6)

	const n = 24
	plan := uniformPlan(n, 1)
	inputs := make([]*tensor.Tensor, n)
	for i := range inputs {
		inputs[i] = input(i * 3)
	}
	rep, err := cl.RunPlan(plan, inputs)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Results {
		want, _ := m.Forward(inputs[r.JobID].Clone())
		if r.Class != engine.Argmax(want) {
			t.Errorf("job %d: class %d, want %d", r.JobID, r.Class, engine.Argmax(want))
		}
	}
}
