package runtime

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Fleet scheduler: the server-wide admission controller, weighted fair
// queue, and worker pool behind every connection.
//
// The paper's model is single-user — one mobile, one cloud — but a
// real cloud arbitrates its suffix-compute capacity across a fleet.
// Earlier revisions gave each connection its own worker pool and its
// own coalescer, so achieved batch sizes stayed near 1 under fleet
// traffic (jobs from different clients could never share a group) and
// an overloaded server had no lever beyond letting queue times grow.
// The fleetScheduler lifts all of that to server scope:
//
//	read loops --admit--> tenant WFQ --dispatch--> coalescer --> pool
//	                 \--shed reply                     (or solo) -/
//
//   - Admission: every decoded job passes through admit(). Past the
//     shed watermark, infer jobs are refused with an immediate shed
//     reply (Class -1, replyFlagShed) instead of joining a queue that
//     can no longer drain — bounding p99 instead of collapsing it.
//   - Fairness: admitted jobs queue per tenant and leave in stride-WFQ
//     order, so one chatty tenant cannot starve the rest; weights come
//     from Server.WithTenants.
//   - Batching: the dispatcher feeds infer jobs from ALL connections
//     into one coalescer (see coalesce.go), so fleet traffic fills
//     batch groups that per-connection coalescers never could.
//   - Backpressure: once depth crosses half the shed watermark, every
//     reply carries replyFlagBackpressure; the client aggregates the
//     hints (Client.ServerPressure) and the runner re-plans cuts
//     toward local compute before the cloud saturates.

// DefaultTenant is the tenant legacy clients land in: any connection
// that never sends a hello frame shares this queue at weight 1.
const DefaultTenant = "default"

// wfqStride is the numerator of the stride-scheduling pass increment:
// a tenant's pass advances by wfqStride/weight per dispatched job, so
// relative service rates converge to the weight ratio.
const wfqStride = float64(1 << 16)

// connCtx is the per-connection context a job carries through the
// scheduler so replies and failures route back to the owning
// connection — JobIDs alone cannot route, every client numbers its own
// jobs from zero.
type connCtx struct {
	// tenant is the connection's current tenant ID. Written only by the
	// connection's read loop (on hello); jobs snapshot it at admission.
	tenant string
	// pending counts admitted jobs not yet replied or failed;
	// HandleConn waits on it before returning.
	pending sync.WaitGroup
	// reply writes one frame under the connection's write mutex.
	reply func(*inferReply) error
	// fail sticks the connection's first error and closes its
	// transport. Idempotent.
	fail func(error)
}

// pendingJob is one decoded request in flight through the scheduler.
// Exactly one of req/set is non-nil.
type pendingJob struct {
	conn   *connCtx
	tenant string // snapshot of conn.tenant at admission
	req    *inferRequest
	set    *inferSetRequest
	recv   time.Time // decode completion; queue attribution starts here
}

// tenantQueue is one tenant's FIFO plus its stride-scheduling state.
type tenantQueue struct {
	name   string
	weight float64
	pass   float64
	q      []pendingJob
}

// fleetScheduler is the server-wide scheduler. One instance serves
// every connection; it is created lazily on the first HandleConn and
// torn down by Server.Close.
type fleetScheduler struct {
	s *Server

	mu      sync.Mutex
	cond    *sync.Cond
	tenants map[string]*tenantQueue
	queued  int
	closed  bool

	// depth mirrors queued for lock-free reads on the reply hot path
	// (backpressure flag stamping).
	depth atomic.Int64

	work chan func()
	co   *coalescer
	wg   sync.WaitGroup

	closeOnce sync.Once
	done      chan struct{}
}

func newFleetScheduler(s *Server) *fleetScheduler {
	fs := &fleetScheduler{
		s:       s,
		tenants: map[string]*tenantQueue{},
		work:    make(chan func(), s.workers),
		done:    make(chan struct{}),
	}
	fs.cond = sync.NewCond(&fs.mu)
	// A forwarding stage never coalesces: inferBatch runs the full
	// suffix locally, which would silently bypass the next hop. jpsserve
	// rejects the flag combination up front; this guard covers direct
	// library users.
	if s.batchWindow > 0 && s.batchMax > 1 && s.next == nil {
		fs.co = newCoalescer(s.batchWindow, s.batchMax,
			func(task func()) { fs.work <- task },
			fs.runBatch)
	}
	for i := 0; i < s.workers; i++ {
		fs.wg.Add(1)
		go func() {
			defer fs.wg.Done()
			for task := range fs.work {
				task()
			}
		}()
	}
	fs.wg.Add(1)
	go fs.dispatchLoop()
	return fs
}

// shutdown drains the scheduler gracefully: no new admissions, every
// already-admitted job still executes and gets its reply (including
// partially filled coalescer groups), then the pool exits. Safe to
// call from multiple goroutines; all callers block until the drain
// completes.
func (fs *fleetScheduler) shutdown() {
	fs.closeOnce.Do(func() {
		fs.mu.Lock()
		fs.closed = true
		fs.cond.Broadcast()
		fs.mu.Unlock()
		fs.wg.Wait()
		close(fs.done)
	})
	<-fs.done
}

// admit is called from a connection's read loop with one decoded job
// whose conn.pending has been incremented. It returns false only when
// the server is shut down (the job is then the caller's to release).
// Past the shed watermark, infer jobs are answered immediately with a
// shed reply instead of queueing — the client's runner finishes them
// on the mobile engine. General-plan jobs (set != nil) are never shed:
// they have no local-fallback path and are rare calibration traffic.
func (fs *fleetScheduler) admit(pj pendingJob) bool {
	fs.mu.Lock()
	if fs.closed {
		fs.mu.Unlock()
		return false
	}
	if wm := fs.s.shedWatermark; wm > 0 && fs.queued >= wm && pj.req != nil {
		fs.mu.Unlock()
		fs.shed(pj)
		return true
	}
	tq := fs.tenants[pj.tenant]
	if tq == nil {
		tq = &tenantQueue{name: pj.tenant, weight: fs.s.tenantWeight(pj.tenant)}
		fs.tenants[pj.tenant] = tq
	}
	if len(tq.q) == 0 {
		// A newly active tenant joins at the head of the pass field
		// rather than its stale value, so a long-idle tenant cannot
		// burst ahead of everyone on "saved up" credit.
		if min, ok := fs.minActivePassLocked(); ok && tq.pass < min {
			tq.pass = min
		}
	}
	tq.q = append(tq.q, pj)
	fs.queued++
	fs.depth.Store(int64(fs.queued))
	if o := fs.s.obsv; o != nil {
		o.QueueDepth.Set(float64(fs.queued))
	}
	fs.cond.Signal()
	fs.mu.Unlock()
	return true
}

// shed answers one refused job inline from the read-loop goroutine:
// Class -1, shed + backpressure flags, no compute.
func (fs *fleetScheduler) shed(pj pendingJob) {
	defer pj.conn.pending.Done()
	if o := fs.s.obsv; o != nil {
		o.ShedJobs.Inc()
		o.TenantJobs.With(pj.tenant).Inc()
	}
	rep := &inferReply{
		JobID: pj.req.JobID,
		Class: -1,
		Flags: replyFlagShed | replyFlagBackpressure,
	}
	if err := pj.conn.reply(rep); err != nil {
		pj.conn.fail(err)
	}
}

// minActivePassLocked returns the smallest pass among tenants with
// queued jobs.
func (fs *fleetScheduler) minActivePassLocked() (float64, bool) {
	var min float64
	found := false
	for _, tq := range fs.tenants {
		if len(tq.q) > 0 && (!found || tq.pass < min) {
			min = tq.pass
			found = true
		}
	}
	return min, found
}

// popLocked removes and returns the next job in WFQ order: the head of
// the non-empty tenant queue with the smallest pass (name-ordered tie
// break for determinism), advancing that tenant's pass by
// wfqStride/weight.
func (fs *fleetScheduler) popLocked() pendingJob {
	var best *tenantQueue
	for _, tq := range fs.tenants {
		if len(tq.q) == 0 {
			continue
		}
		if best == nil || tq.pass < best.pass || (tq.pass == best.pass && tq.name < best.name) {
			best = tq
		}
	}
	pj := best.q[0]
	best.q[0] = pendingJob{} // drop references for GC
	best.q = best.q[1:]
	if len(best.q) == 0 {
		best.q = nil // release the drained backing array
	}
	best.pass += wfqStride / best.weight
	fs.queued--
	fs.depth.Store(int64(fs.queued))
	if o := fs.s.obsv; o != nil {
		o.QueueDepth.Set(float64(fs.queued))
	}
	return pj
}

// dispatchLoop is the single consumer of the tenant queues: it pops in
// WFQ order and routes each job — infer jobs to the coalescer when
// batching is on, everything else to the pool as a solo task. On
// shutdown it drains the queues first, then the coalescer, then closes
// the pool (it and the coalescer are the only pool senders).
func (fs *fleetScheduler) dispatchLoop() {
	defer fs.wg.Done()
	for {
		fs.mu.Lock()
		for fs.queued == 0 && !fs.closed {
			fs.cond.Wait()
		}
		if fs.queued == 0 {
			fs.mu.Unlock()
			break
		}
		pj := fs.popLocked()
		fs.mu.Unlock()
		if pj.req != nil && fs.co != nil {
			fs.co.submit(pj)
		} else {
			fs.work <- fs.soloTask(pj)
		}
	}
	if fs.co != nil {
		fs.co.finish()
	}
	close(fs.work)
}

// hintFlags returns the backpressure bit when queue depth has crossed
// half the shed watermark — the early-warning band where clients
// should start shifting cuts local before admission control has to
// drop anything.
func (fs *fleetScheduler) hintFlags() uint8 {
	wm := fs.s.shedWatermark
	if wm <= 0 {
		return 0
	}
	hint := wm / 2
	if hint < 1 {
		hint = 1
	}
	if fs.depth.Load() >= int64(hint) {
		return replyFlagBackpressure
	}
	return 0
}

// finishReply stamps the admission-control flags on a computed reply
// and writes it to the owning connection. A write failure fails only
// that connection. Does not release pending — the caller owns that.
func (fs *fleetScheduler) finishReply(pj pendingJob, rep *inferReply) {
	rep.Flags |= fs.hintFlags()
	o := fs.s.obsv
	if o != nil && rep.Flags&replyFlagBackpressure != 0 {
		o.BackpressureReplies.Inc()
	}
	if err := pj.conn.reply(rep); err != nil {
		pj.conn.fail(err)
		return
	}
	if o != nil {
		o.TenantJobs.With(pj.tenant).Inc()
	}
}

// soloTask wraps one unbatched job into a pool task: run the
// inference, stamp flags, reply to the owning connection. Errors fail
// only that connection.
func (fs *fleetScheduler) soloTask(pj pendingJob) func() {
	s := fs.s
	return func() {
		defer pj.conn.pending.Done()
		var jobID int
		var infer func() (*inferReply, error)
		if pj.req != nil {
			jobID = int(pj.req.JobID)
			infer = func() (*inferReply, error) { return s.infer(pj.req) }
		} else {
			jobID = int(pj.set.JobID)
			infer = func() (*inferReply, error) { return s.inferSet(pj.set) }
		}
		rep, err := s.runJob(jobID, pj.recv, infer)
		if err != nil {
			pj.conn.fail(err)
			return
		}
		fs.finishReply(pj, rep)
	}
}

// runBatch executes one flushed group on a pool worker: coalesce-wait
// and queue-wait spans per member, one batched suffix execution, then
// per-member replies routed to each owning connection. QueueNs covers
// recv -> worker start, so the coalescing window shows up as queue
// time on the server — not as phantom communication delay in the
// client's CommMs attribution. CloudNs reports the group's shared
// compute wall time to every member.
//
// Failure attribution: a member with a bad boundary shape fails only
// its own connection, and only after the group's valid replies have
// been written — the batch demux guarantee other tenants rely on. An
// engine-level failure (the shared suffix pass itself) fails every
// member's connection.
func (fs *fleetScheduler) runBatch(g *batchGroup, flushed time.Time) {
	s := fs.s
	start := time.Now()
	o := s.obsv
	if o != nil {
		for _, pj := range g.jobs {
			o.span(TrackServer, SpanCoalesceWait, int(pj.req.JobID), pj.recv, flushed)
			o.span(TrackServer, SpanQueueWait, int(pj.req.JobID), flushed, start)
		}
		o.WorkersBusy.Add(1)
		o.BatchSize.Observe(float64(len(g.jobs)))
		if len(g.jobs) > 1 {
			o.BatchedJobs.Add(int64(len(g.jobs)))
		} else {
			o.SoloJobs.Inc()
		}
	}
	valid, invalid, reps, execErr := s.inferBatch(g.jobs, start)
	end := time.Now()
	if o != nil {
		o.WorkersBusy.Add(-1)
	}
	if execErr != nil {
		for _, pj := range g.jobs {
			pj.conn.fail(execErr)
			pj.conn.pending.Done()
		}
		return
	}
	for i, pj := range valid {
		o.span(TrackServer, SpanCloudCompute, int(pj.req.JobID), start, end)
		fs.finishReply(pj, reps[i])
		pj.conn.pending.Done()
	}
	for _, iv := range invalid {
		iv.pj.conn.fail(iv.err)
		iv.pj.conn.pending.Done()
	}
}

// invalidJob pairs a rejected group member with its own error.
type invalidJob struct {
	pj  pendingJob
	err error
}

// tenantWeight resolves a tenant's WFQ weight from the server config;
// unconfigured tenants (the default tenant included) get weight 1.
func (s *Server) tenantWeight(name string) float64 {
	if w, ok := s.tenantWeights[name]; ok && w > 0 {
		return w
	}
	return 1
}

var errServerClosed = fmt.Errorf("runtime: server closed")
