package runtime

import (
	"net"
	"testing"
	"time"

	"dnnjps/internal/dag"
	"dnnjps/internal/engine"
	"dnnjps/internal/netsim"
	"dnnjps/internal/nn"
	"dnnjps/internal/obs"
	"dnnjps/internal/profile"
	"dnnjps/internal/tensor"
)

// End-to-end tests for continuous adaptive replanning: scripted
// netsim degradation profiles drive full runner executions. The
// bit-exact golden cut sequence lives in the regression corpus (see
// internal/regression's adapt replay test, which is pure data); these
// tests assert the runtime-level contract — which cuts the replanned
// suffix lands on, that detection fires, and that every job still
// finishes with the fault-free class — in forms robust to wall-clock
// scheduling noise. All names carry "Adapt" for the CI deflake leg
// (go test -run Adapt -count=3).

// The pipe model's curve puts a 128-byte boundary at unit 6, so any
// replan below ~5 Mb/s deterministically moves the suffix to cut 6,
// while 6+ Mb/s favors cuts 0/6 (see the curve in pipeline_test.go).
// Note the client's shaper paces at the nominal channel rate, so the
// injector can only slow the link below the model, never speed it up —
// "recovery" scenarios cap early and lift the cap back to nominal.
//
// The scale divides every pacing sleep, but timer overshoot (~0.1–1 ms
// per paced 4 KiB chunk on a loaded host) stays constant wall time and
// is amplified by 1/scale in the measured channel rate. 0.35 keeps a
// ~16 ms upload's worst-case distortion under ~2x — enough for the
// CUSUM's pre-step baseline to sit clearly above the degraded regime —
// while the tests stay sub-second.
const adaptScale = 0.35

func adaptOpts() RunOptions {
	return RunOptions{
		JobTimeout:        4 * time.Second,
		BackoffBase:       time.Millisecond,
		BackoffMax:        2 * time.Millisecond,
		Window:            2,
		AdaptiveReplan:    true,
		ReplanMinInterval: time.Nanosecond, // tests exercise back-to-back replans
	}
}

// TestAdaptStepDownReplansToLocalCut: the acceptance scenario's shape —
// the uplink is fine for the first uploads, then steps down 8→2 Mb/s
// mid-batch. The estimator must detect the shift (a change point, not
// just drift), the runner must replan the unsubmitted suffix, and the
// replanned jobs must land on the 128-byte cut 6 while the pre-step
// jobs keep their planned cut 3.
func TestAdaptStepDownReplansToLocalCut(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation distorts the throughput samples this test asserts on")
	}
	m := pipeModel(t)
	ch := netsim.Channel{Name: "pipe", UplinkMbps: 8, SetupMs: 0}
	// Three ~16 ms uploads pass clean before the cap lands.
	dial := faultyDialer(t, m, 21, adaptScale, func(int) (up, down netsim.FaultSpec) {
		return netsim.FaultSpec{Degrade: netsim.StepDown(55, 2)}, netsim.FaultSpec{}
	})
	curve := profile.BuildCurve(m.Graph(), profile.RaspberryPi4(), profile.CloudGPU(), ch, tensor.Float32)
	met := obs.NewMetrics()
	o := NewObs(nil, met)
	r := NewRunner(dial, m, ch, adaptScale, adaptOpts()).WithCurve(curve).WithObs(o)

	const n = 12
	plan := uniformPlan(n, 3)
	inputs := make([]*tensor.Tensor, n)
	for i := range inputs {
		inputs[i] = pipeInput(i)
	}
	rep, err := r.RunPlan(plan, inputs)
	if err != nil {
		t.Fatal(err)
	}
	checkComplete(t, rep, wantClasses(t, m, inputs))
	if rep.Replans == 0 {
		t.Fatal("step-down must trigger at least one adaptive replan")
	}
	if rep.ChangePoints == 0 {
		t.Error("a 4x mid-batch step must register as a change point, not drift")
	}
	pre, post, other := 0, 0, 0
	for _, res := range rep.Results {
		switch res.Cut {
		case 3:
			pre++
		case 6:
			post++
		default:
			// At estimates near 1 Mb/s the replanner can legitimately
			// return a MIXED plan: a comm-heavy job or two fills the
			// uplink ahead of the compute-heavy cut-6 majority. Tolerated
			// as long as cut 6 dominates the replanned suffix below.
			other++
		}
	}
	if pre == 0 || post == 0 {
		t.Errorf("cut split pre/post step = %d/%d; want both regimes represented", pre, post)
	}
	if other > post {
		t.Errorf("replanned suffix dominated by unexpected cuts: %d@3 %d@6 %d other", pre, post, other)
	}
	t.Logf("replans=%d changepoints=%d est=%.2f Mb/s cuts: %d@3 %d@6 %d other",
		rep.Replans, rep.ChangePoints, rep.EstimatedMbps, pre, post, other)
	if v := o.ChangePoints.Value(); int(v) != rep.ChangePoints {
		t.Errorf("changepoint counter = %d, report says %d", v, rep.ChangePoints)
	}
	if o.EstMbps.Value() <= 0 {
		t.Errorf("estimated-Mbps gauge never set: %f", o.EstMbps.Value())
	}
	if o.Replans.Value() < int64(rep.Replans) {
		t.Errorf("replan counter = %d < report's %d", o.Replans.Value(), rep.Replans)
	}
}

// TestAdaptStepUpReplansTowardOffload: the inverse shift. The injector
// caps the 8 Mb/s link to 2 from the start and lifts the cap at 220 ms
// channel time. Hysteresis is effectively disabled so the initial
// capped regime (which the estimator seeds on — no change point) does
// NOT replan; the lift then fires an Up change point on the first
// full-rate upload, and that alone must drive the replan back toward
// the offload-heavy plan.
func TestAdaptStepUpReplansTowardOffload(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation distorts the throughput samples this test asserts on")
	}
	m := pipeModel(t)
	ch := netsim.Channel{Name: "pipe", UplinkMbps: 8, SetupMs: 0}
	dial := faultyDialer(t, m, 23, adaptScale, func(int) (up, down netsim.FaultSpec) {
		return netsim.FaultSpec{Degrade: netsim.StepUp(220, 2)}, netsim.FaultSpec{}
	})
	curve := profile.BuildCurve(m.Graph(), profile.RaspberryPi4(), profile.CloudGPU(), ch, tensor.Float32)
	opts := adaptOpts()
	opts.ReplanHysteresis = 100 // change-point trigger only
	r := NewRunner(dial, m, ch, adaptScale, opts).WithCurve(curve)

	const n = 12
	plan := uniformPlan(n, 3)
	inputs := make([]*tensor.Tensor, n)
	for i := range inputs {
		inputs[i] = pipeInput(i)
	}
	rep, err := r.RunPlan(plan, inputs)
	if err != nil {
		t.Fatal(err)
	}
	checkComplete(t, rep, wantClasses(t, m, inputs))
	if rep.ChangePoints == 0 {
		t.Error("the lifted cap must register as a change point")
	}
	if rep.Replans == 0 {
		t.Error("recovery must trigger a replan toward offloading")
	}
	if rep.EstimatedMbps <= 2 {
		t.Errorf("final estimate %.2f Mb/s did not rise above the capped rate 2", rep.EstimatedMbps)
	}
	t.Logf("replans=%d changepoints=%d est=%.2f Mb/s", rep.Replans, rep.ChangePoints, rep.EstimatedMbps)
}

// bneckModel is a chain with a cheap 8 KB bottleneck boundary (unit 4)
// ahead of a compute-heavy 64-channel tail: offloading at the
// bottleneck stays optimal down to ~1 Mb/s (G ≈ 66 ms < the ~190 ms
// local tail), and only a collapse below ~0.5 Mb/s sends the plan
// fully local. That keeps fat, measurable uploads flowing through a
// moderate degradation — which is exactly what a second-shift
// regression needs the estimator to observe.
func bneckModel(t testing.TB) *engine.Model {
	t.Helper()
	g := dag.New("bneck")
	in := g.Add(&nn.Input{LayerName: "input", Shape: tensor.NewCHW(3, 32, 32)})
	c1 := g.Add(&nn.Conv2D{LayerName: "conv1", OutC: 16, KH: 3, KW: 3, Stride: 1, Pad: 1, Bias: true}, in)
	r1 := g.Add(nn.NewActivation("relu1", nn.ReLU), c1)
	p1 := g.Add(nn.NewMaxPool2D("pool1", 2, 2, 0), r1)
	b := g.Add(&nn.Conv2D{LayerName: "bneck", OutC: 8, KH: 1, KW: 1, Stride: 1, Pad: 0, Bias: true}, p1)
	c3 := g.Add(&nn.Conv2D{LayerName: "conv3", OutC: 64, KH: 3, KW: 3, Stride: 1, Pad: 1, Bias: true}, b)
	r3 := g.Add(nn.NewActivation("relu3", nn.ReLU), c3)
	c4 := g.Add(&nn.Conv2D{LayerName: "conv4", OutC: 64, KH: 3, KW: 3, Stride: 1, Pad: 1, Bias: true}, r3)
	r4 := g.Add(nn.NewActivation("relu4", nn.ReLU), c4)
	gp := g.Add(&nn.GlobalAvgPool2D{LayerName: "gap"}, r4)
	fc := g.Add(&nn.Dense{LayerName: "fc", Out: 10, Bias: true}, gp)
	g.Add(nn.NewSoftmax("softmax"), fc)
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	return engine.Load(g, 99)
}

// TestAdaptTwoStepDegradation is the latch-removal regression: the
// link degrades TWICE inside one batch (8→4 immediately, →0.5 at
// 150 ms channel time). The old runner latched `replanned` after the
// first mid-batch replan, so the second shift was ignored until a
// reconnect; continuous replanning must fire again. On the bottleneck
// model the first replan (est ≈ 4) keeps most jobs offloaded at the
// 8 KB cut, so the collapse to 0.5 is observed on real uploads and the
// second replan prices well below the first regime.
func TestAdaptTwoStepDegradation(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation distorts the throughput samples this test asserts on")
	}
	m := bneckModel(t)
	ch := netsim.Channel{Name: "pipe", UplinkMbps: 8, SetupMs: 0}
	dial := faultyDialer(t, m, 29, adaptScale, func(int) (up, down netsim.FaultSpec) {
		return netsim.FaultSpec{Degrade: []netsim.DegradeStep{
			{AfterMs: 0, Mbps: 4},
			{AfterMs: 150, Mbps: 0.5},
		}}, netsim.FaultSpec{}
	})
	curve := profile.BuildCurve(m.Graph(), profile.RaspberryPi4(), profile.CloudGPU(), ch, tensor.Float32)
	r := NewRunner(dial, m, ch, adaptScale, adaptOpts()).WithCurve(curve)

	const n = 14
	plan := uniformPlan(n, 3)
	inputs := make([]*tensor.Tensor, n)
	for i := range inputs {
		inputs[i] = pipeInput(i)
	}
	rep, err := r.RunPlan(plan, inputs)
	if err != nil {
		t.Fatal(err)
	}
	checkComplete(t, rep, wantClasses(t, m, inputs))
	if rep.Reconnects != 0 {
		t.Errorf("Reconnects = %d; both shifts must be handled on the live connection", rep.Reconnects)
	}
	if rep.Replans < 2 {
		t.Fatalf("Replans = %d; a second degradation in the same batch must replan again (latch regression)", rep.Replans)
	}
	if rep.ReplannedMbps >= 2 {
		t.Errorf("last ReplannedMbps = %.2f; the second replan must price near the collapsed 0.5 Mb/s, not the first regime's 4", rep.ReplannedMbps)
	}
	t.Logf("replans=%d changepoints=%d final est=%.2f Mb/s last=%.2f",
		rep.Replans, rep.ChangePoints, rep.EstimatedMbps, rep.ReplannedMbps)
}

// TestAdaptSawtoothStaysStable: repeated fade-and-recover cycles. The
// run must complete correctly whatever the cadence, detection must see
// at least the first fade, and the minimum-interval guard keeps the
// replan count bounded by the window cadence rather than exploding.
func TestAdaptSawtoothStaysStable(t *testing.T) {
	m := pipeModel(t)
	ch := netsim.Channel{Name: "pipe", UplinkMbps: 8, SetupMs: 0}
	dial := faultyDialer(t, m, 31, adaptScale, func(int) (up, down netsim.FaultSpec) {
		return netsim.FaultSpec{Degrade: netsim.Sawtooth(40, 80, 2, 3)}, netsim.FaultSpec{}
	})
	curve := profile.BuildCurve(m.Graph(), profile.RaspberryPi4(), profile.CloudGPU(), ch, tensor.Float32)
	opts := adaptOpts()
	r := NewRunner(dial, m, ch, adaptScale, opts).WithCurve(curve)

	const n = 16
	plan := uniformPlan(n, 3)
	inputs := make([]*tensor.Tensor, n)
	for i := range inputs {
		inputs[i] = pipeInput(i)
	}
	rep, err := r.RunPlan(plan, inputs)
	if err != nil {
		t.Fatal(err)
	}
	checkComplete(t, rep, wantClasses(t, m, inputs))
	if rep.Replans == 0 {
		t.Error("the first fade must trigger a replan")
	}
	// Replans are gated per between-windows check: with Window 2 there
	// are at most n/2 checks, so the count cannot exceed that even with
	// a nanosecond min-interval.
	if rep.Replans > n/2 {
		t.Errorf("Replans = %d exceeds the %d between-window checks — the cut is thrashing", rep.Replans, n/2)
	}
	t.Logf("replans=%d changepoints=%d est=%.2f Mb/s", rep.Replans, rep.ChangePoints, rep.EstimatedMbps)
}

// TestAdaptSlowRampReplansByHysteresis: a gradual 8→2 fade with no
// sharp edge. Detection may or may not call it a change point (the
// CUSUM is tuned for steps), but the hysteresis trigger must still
// replan once the EWMA diverges ±30% from the plan's bandwidth — the
// estimate, not the detector, is the safety net on slow fades.
func TestAdaptSlowRampReplansByHysteresis(t *testing.T) {
	m := pipeModel(t)
	ch := netsim.Channel{Name: "pipe", UplinkMbps: 8, SetupMs: 0}
	dial := faultyDialer(t, m, 37, adaptScale, func(int) (up, down netsim.FaultSpec) {
		return netsim.FaultSpec{Degrade: netsim.Ramp(30, 400, 7, 2, 12)}, netsim.FaultSpec{}
	})
	curve := profile.BuildCurve(m.Graph(), profile.RaspberryPi4(), profile.CloudGPU(), ch, tensor.Float32)
	r := NewRunner(dial, m, ch, adaptScale, adaptOpts()).WithCurve(curve)

	const n = 14
	plan := uniformPlan(n, 3)
	inputs := make([]*tensor.Tensor, n)
	for i := range inputs {
		inputs[i] = pipeInput(i)
	}
	rep, err := r.RunPlan(plan, inputs)
	if err != nil {
		t.Fatal(err)
	}
	checkComplete(t, rep, wantClasses(t, m, inputs))
	if rep.Replans == 0 {
		t.Error("a ramp past the hysteresis band must replan even without a clean change point")
	}
	if rep.EstimatedMbps >= ch.UplinkMbps {
		t.Errorf("final estimate %.2f did not track the fade below nominal %.0f", rep.EstimatedMbps, ch.UplinkMbps)
	}
	t.Logf("replans=%d changepoints=%d est=%.2f Mb/s", rep.Replans, rep.ChangePoints, rep.EstimatedMbps)
}

// TestClientLinkHealthEdgeCases pins the no-signal contract: zero
// samples, one sample, all-zero byte counts, and the post-reset state
// all read as definite values instead of dividing by zero or
// reporting phantom degradation.
func TestClientLinkHealthEdgeCases(t *testing.T) {
	m := testModel(t)
	ch := netsim.Channel{Name: "edge", UplinkMbps: 8, SetupMs: 0}
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	c := NewClient(a, m, ch, 1)

	if h, n := c.LinkHealth(); h != 1 || n != 0 {
		t.Errorf("fresh client LinkHealth = (%f, %d), want (1, 0)", h, n)
	}

	// All-zero byte counts: TxMs(0) = 0, so no expectation accumulates;
	// health must stay 1 (no evidence), not drop to 0.
	c.noteUpload(0, 5*time.Millisecond)
	c.noteUpload(0, 5*time.Millisecond)
	if h, n := c.LinkHealth(); h != 1 || n != 2 {
		t.Errorf("zero-byte uploads: LinkHealth = (%f, %d), want (1, 2)", h, n)
	}
	c.ResetLinkHealth(ch)

	// One sample at exactly half the modeled rate: TxMs(16384) at
	// 8 Mb/s is 16.384 ms, measured 32.768 ms -> health 0.5.
	c.noteUpload(16384, time.Duration(2*ch.TxMs(16384)*float64(time.Millisecond)))
	h, n := c.LinkHealth()
	if n != 1 {
		t.Fatalf("samples = %d, want 1", n)
	}
	if h < 0.499 || h > 0.501 {
		t.Errorf("single half-rate sample: health = %f, want 0.5", h)
	}

	// Reset rebases on a new channel model and clears the window.
	slow := netsim.Channel{Name: "slow", UplinkMbps: 2, SetupMs: 0}
	c.ResetLinkHealth(slow)
	if h, n := c.LinkHealth(); h != 1 || n != 0 {
		t.Errorf("after reset: LinkHealth = (%f, %d), want (1, 0)", h, n)
	}
	// The same wall time now compares against the 2 Mb/s model:
	// expectation quadruples, so health reads ~2 (faster than modeled).
	c.noteUpload(16384, time.Duration(2*ch.TxMs(16384)*float64(time.Millisecond)))
	if h, _ := c.LinkHealth(); h < 1.99 || h > 2.01 {
		t.Errorf("post-reset expectations not rebased: health = %f, want 2", h)
	}
}

// TestAdaptEstimatorThreadsAcrossAttempts: the estimator outlives
// individual connections — after a forced disconnect the reconnect's
// samples land in the same estimator, so the report's sample-bearing
// estimate reflects the whole run, not the last attempt.
func TestAdaptEstimatorThreadsAcrossAttempts(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation distorts the byte-count timing the forced disconnect relies on")
	}
	m := pipeModel(t)
	ch := netsim.Channel{Name: "pipe", UplinkMbps: 8, SetupMs: 0}
	dial := faultyDialer(t, m, 41, adaptScale, func(i int) (up, down netsim.FaultSpec) {
		up = netsim.FaultSpec{Degrade: netsim.StepDown(0, 2)}
		if i == 0 {
			up.DisconnectAfterBytes = 60_000
		}
		return up, netsim.FaultSpec{}
	})
	curve := profile.BuildCurve(m.Graph(), profile.RaspberryPi4(), profile.CloudGPU(), ch, tensor.Float32)
	opts := adaptOpts()
	opts.JobTimeout = 2 * time.Second
	opts.MaxReconnects = 4
	r := NewRunner(dial, m, ch, adaptScale, opts).WithCurve(curve)

	const n = 12
	plan := uniformPlan(n, 3)
	inputs := make([]*tensor.Tensor, n)
	for i := range inputs {
		inputs[i] = pipeInput(i)
	}
	rep, err := r.RunPlan(plan, inputs)
	if err != nil {
		t.Fatal(err)
	}
	checkComplete(t, rep, wantClasses(t, m, inputs))
	if rep.Reconnects == 0 {
		t.Error("forced disconnect must cause a reconnect")
	}
	if rep.EstimatedMbps <= 0 {
		t.Errorf("estimate lost across attempts: %.2f", rep.EstimatedMbps)
	}
	if rep.EstimatedMbps > 4 {
		t.Errorf("estimate %.2f Mb/s ignores the capped 2 Mb/s link", rep.EstimatedMbps)
	}
}

// TestAdaptDisabledMatchesThresholdPath: with AdaptiveReplan off the
// estimator must not exist — FTReport's estimator fields stay zero and
// the legacy threshold path still replans (compatibility contract).
func TestAdaptDisabledMatchesThresholdPath(t *testing.T) {
	m := pipeModel(t)
	ch := netsim.Channel{Name: "pipe", UplinkMbps: 8, SetupMs: 0}
	dial := faultyDialer(t, m, 43, adaptScale, func(int) (up, down netsim.FaultSpec) {
		return netsim.FaultSpec{Degrade: netsim.StepDown(0, 2)}, netsim.FaultSpec{}
	})
	curve := profile.BuildCurve(m.Graph(), profile.RaspberryPi4(), profile.CloudGPU(), ch, tensor.Float32)
	r := NewRunner(dial, m, ch, adaptScale, RunOptions{
		JobTimeout:   2 * time.Second,
		BackoffBase:  time.Millisecond,
		BackoffMax:   2 * time.Millisecond,
		Window:       4,
		ReplanFactor: 0.5,
	}).WithCurve(curve)

	const n = 10
	plan := uniformPlan(n, 3)
	inputs := make([]*tensor.Tensor, n)
	for i := range inputs {
		inputs[i] = pipeInput(i)
	}
	rep, err := r.RunPlan(plan, inputs)
	if err != nil {
		t.Fatal(err)
	}
	checkComplete(t, rep, wantClasses(t, m, inputs))
	if rep.Replans == 0 {
		t.Error("threshold path must still replan with the estimator disabled")
	}
	if rep.ChangePoints != 0 || rep.EstimatedMbps != 0 {
		t.Errorf("estimator fields set without AdaptiveReplan: cps=%d est=%.2f",
			rep.ChangePoints, rep.EstimatedMbps)
	}
}
