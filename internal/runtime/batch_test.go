package runtime

import (
	"net"
	"testing"
	"time"

	"dnnjps/internal/engine"
	"dnnjps/internal/netsim"
	"dnnjps/internal/obs"
	"dnnjps/internal/profile"
	"dnnjps/internal/tensor"
)

// Server-side cross-job batching: correctness of the coalescer under
// ragged flushes, reply demultiplexing when a group member is invalid,
// and the timer-expiry flush path.

// batchPair wires a client against a batching server and returns the
// client plus the server's observability bundle for counter assertions.
func batchPair(t *testing.T, m *engine.Model, window time.Duration, max int) (*Client, *Obs) {
	t.Helper()
	cConn, sConn := net.Pipe()
	o := NewObs(obs.NewTracer(1<<12), obs.NewMetrics())
	srv := NewServer(m).WithWorkers(4).WithBatching(window, max).WithObs(o)
	t.Cleanup(srv.Close)
	go func() { defer sConn.Close(); _ = srv.HandleConn(sConn) }()
	t.Cleanup(func() { cConn.Close() })
	return NewClient(cConn, m, netsim.WiFi, 1e-6), o
}

// boundaryAt computes the exact boundary activation job i would upload
// at the given cut, plus the class a pure local forward predicts.
func boundaryAt(t *testing.T, m *engine.Model, cut, i int) (*tensor.Tensor, int) {
	t.Helper()
	units := profile.LineView(m.Graph())
	var prefix []int
	for _, u := range units[:cut+1] {
		prefix = append(prefix, u.Nodes...)
	}
	in := input(i)
	acts := map[int]*tensor.Tensor{}
	if err := m.Execute(acts, in, prefix); err != nil {
		t.Fatal(err)
	}
	boundary := acts[units[cut].Exit].Clone()
	want, err := m.Forward(in.Clone())
	if err != nil {
		t.Fatal(err)
	}
	return boundary, engine.Argmax(want)
}

// A full plan through the coalescer: 16 same-cut jobs with batchMax 3
// force ragged groups (the final flush carries a partial batch), and
// every class must still match a pure local forward. The counters must
// account for every job exactly once.
func TestRunPlanWithBatchingCorrectness(t *testing.T) {
	m := testModel(t)
	cl, o := batchPair(t, m, 20*time.Millisecond, 3)

	const n = 16
	plan := uniformPlan(n, 1)
	inputs := make([]*tensor.Tensor, n)
	for i := range inputs {
		inputs[i] = input(i * 3)
	}
	rep, err := cl.RunPlan(plan, inputs)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Results {
		want, _ := m.Forward(inputs[r.JobID].Clone())
		if r.Class != engine.Argmax(want) {
			t.Errorf("job %d: class %d, want %d", r.JobID, r.Class, engine.Argmax(want))
		}
		if r.CloudMs < 0 || r.CommMs < 0 {
			t.Errorf("job %d: negative attribution %+v", r.JobID, r)
		}
	}
	if got := o.BatchedJobs.Value() + o.SoloJobs.Value(); got != n {
		t.Errorf("batched %d + solo %d = %d jobs accounted, want %d",
			o.BatchedJobs.Value(), o.SoloJobs.Value(), got, n)
	}
	if o.BatchSize.Count() == 0 {
		t.Error("no batch groups observed")
	}
	if float64(n)/float64(o.BatchSize.Count()) != o.BatchSize.Sum()/float64(o.BatchSize.Count()) {
		t.Errorf("batch-size histogram sum %v over %d groups does not cover %d jobs",
			o.BatchSize.Sum(), o.BatchSize.Count(), n)
	}
}

// The window-expiry flush: fewer jobs than batchMax must still complete
// once the window elapses, grouped into one batched execution.
func TestBatchWindowFlushesPartialGroup(t *testing.T) {
	m := testModel(t)
	cl, o := batchPair(t, m, 5*time.Millisecond, 64)

	const cut = 1
	res := [2]*JobResult{}
	calls := [2]*call{}
	wants := [2]int{}
	for i := range res {
		boundary, want := boundaryAt(t, m, cut, i*5)
		wants[i] = want
		res[i] = &JobResult{JobID: i}
		c, err := cl.enqueueInfer(res[i], cut, boundary)
		if err != nil {
			t.Fatal(err)
		}
		calls[i] = c
	}
	for i, c := range calls {
		if err := cl.await(c); err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		if res[i].Class != wants[i] {
			t.Errorf("job %d: class %d, want %d", i, res[i].Class, wants[i])
		}
	}
	if o.BatchedJobs.Value() != 2 {
		t.Errorf("batched jobs %d, want 2 (one group of two via window expiry)", o.BatchedJobs.Value())
	}
}

// One invalid member must not poison its group: the valid jobs' replies
// demux to the right callers with the right classes, and only then does
// the connection fail with the invalid job's error.
func TestBatchPartialFailureDemux(t *testing.T) {
	m := testModel(t)
	cl, _ := batchPair(t, m, 50*time.Millisecond, 3)

	const cut = 1
	b0, want0 := boundaryAt(t, m, cut, 2)
	b1, want1 := boundaryAt(t, m, cut, 9)

	res0 := &JobResult{JobID: 0}
	c0, err := cl.enqueueInfer(res0, cut, b0)
	if err != nil {
		t.Fatal(err)
	}
	res1 := &JobResult{JobID: 1}
	c1, err := cl.enqueueInfer(res1, cut, b1)
	if err != nil {
		t.Fatal(err)
	}
	// Wrong boundary shape for every cut of this model: the server
	// detects it during batch assembly, not at decode time, so it joins
	// the same group as the two valid jobs and the group still flushes
	// on max size.
	resBad := &JobResult{JobID: 2}
	cBad, err := cl.enqueueInfer(resBad, cut, tensor.New(tensor.NewCHW(1, 2, 2)))
	if err != nil {
		t.Fatal(err)
	}

	if err := cl.await(c0); err != nil {
		t.Fatalf("valid job 0 must survive its group-mate's failure: %v", err)
	}
	if err := cl.await(c1); err != nil {
		t.Fatalf("valid job 1 must survive its group-mate's failure: %v", err)
	}
	if res0.Class != want0 || res1.Class != want1 {
		t.Errorf("classes %d/%d, want %d/%d: batch demux crossed replies",
			res0.Class, res1.Class, want0, want1)
	}
	if err := cl.await(cBad); err == nil {
		t.Fatal("invalid job must fail")
	}
	if cl.Err() == nil {
		t.Fatal("connection must record the invalid job's error")
	}
}

// A batch whose every member is invalid must fail the connection
// without wedging the coalescer or the pool.
func TestBatchAllInvalidFails(t *testing.T) {
	m := testModel(t)
	cl, _ := batchPair(t, m, 5*time.Millisecond, 2)

	bad := func(id int) *call {
		c, err := cl.enqueueInfer(&JobResult{JobID: id}, 1, tensor.New(tensor.NewVec(3)))
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	c0, c1 := bad(0), bad(1)
	if err := cl.await(c0); err == nil {
		t.Fatal("invalid job 0 must fail")
	}
	if err := cl.await(c1); err == nil {
		t.Fatal("invalid job 1 must fail")
	}
}

// WithBatching(0, …) and WithBatching(…, 1) must leave the original
// solo dispatch in place — no coalescer goroutine, no added latency.
func TestBatchingDisabledConfigs(t *testing.T) {
	m := testModel(t)
	for _, cfg := range []struct {
		window time.Duration
		max    int
	}{{0, 16}, {time.Millisecond, 1}, {time.Millisecond, 0}} {
		cl, o := batchPair(t, m, cfg.window, cfg.max)
		in := input(1)
		want, _ := m.Forward(in.Clone())
		res, err := cl.RunJob(0, 1, in.Clone())
		if err != nil {
			t.Fatalf("window=%v max=%d: %v", cfg.window, cfg.max, err)
		}
		if res.Class != engine.Argmax(want) {
			t.Errorf("window=%v max=%d: class %d, want %d", cfg.window, cfg.max, res.Class, engine.Argmax(want))
		}
		if o.BatchSize.Count() != 0 {
			t.Errorf("window=%v max=%d: coalescer ran despite disabled config", cfg.window, cfg.max)
		}
	}
}
