package runtime

import (
	"bytes"
	"encoding/binary"
	"math"
	"net"
	"testing"
	"time"

	"dnnjps/internal/engine"
	"dnnjps/internal/netsim"
	"dnnjps/internal/obs"
	"dnnjps/internal/tensor"
)

// quantTestModel is testModel calibrated and switched to int8 mode.
func quantTestModel(t *testing.T) *engine.Model {
	t.Helper()
	m := testModel(t)
	cal, err := m.CalibrateSynthetic(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Quantize(cal); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestQuantTensorWireRoundTrip(t *testing.T) {
	q := tensor.NewQ(tensor.NewCHW(3, 4, 5), tensor.QParams{Scale: 0.031, Zero: -7})
	for i := range q.Data {
		q.Data[i] = int8(i*11 - 64)
	}
	var buf bytes.Buffer
	sumW, err := writeQTensorSum(&buf, q, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, got, sumR, err := readTensorSum(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("decoded as float32, want quantized")
	}
	if sumW != sumR {
		t.Fatalf("writer CRC %08x != reader CRC %08x", sumW, sumR)
	}
	if !got.Shape.Equal(q.Shape) || got.QParams != q.QParams {
		t.Fatalf("header mismatch: %v/%+v vs %v/%+v", got.Shape, got.QParams, q.Shape, q.QParams)
	}
	for i := range q.Data {
		if got.Data[i] != q.Data[i] {
			t.Fatalf("code %d corrupted: %d vs %d", i, got.Data[i], q.Data[i])
		}
	}
}

// TestLegacyTensorFrameBitIdentical pins the float32 frame layout:
// bare rank byte, little-endian dims, little-endian IEEE-754 payload —
// no dtype byte, no mapping. A pre-quantization peer's frames are
// byte-for-byte what the current encoder emits.
func TestLegacyTensorFrameBitIdentical(t *testing.T) {
	tt := mustVec(3, 1.5, -2.25, 0)
	var want bytes.Buffer
	want.WriteByte(1) // rank
	var b4 [4]byte
	binary.LittleEndian.PutUint32(b4[:], 3) // dim
	want.Write(b4[:])
	for _, v := range tt.Data {
		binary.LittleEndian.PutUint32(b4[:], math.Float32bits(v))
		want.Write(b4[:])
	}
	var got bytes.Buffer
	if err := writeTensor(&got, tt); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("frame bytes changed:\n got %x\nwant %x", got.Bytes(), want.Bytes())
	}
	dec, q, err := readTensor(bytes.NewReader(want.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if q != nil {
		t.Fatal("legacy frame decoded as quantized")
	}
	for i := range tt.Data {
		if dec.Data[i] != tt.Data[i] {
			t.Fatalf("payload %d: %v vs %v", i, dec.Data[i], tt.Data[i])
		}
	}
}

// TestQuantRequestWireBytes checks the size formula against real
// encoded frames and the acceptance bar: a quantized boundary ships in
// at most 0.26x the float32 request bytes (4x payload shrink, small
// constant header overhead).
func TestQuantRequestWireBytes(t *testing.T) {
	shape := tensor.NewCHW(16, 8, 8) // a realistic small boundary
	fp := tensor.New(shape)
	q := tensor.NewQ(shape, tensor.QParams{Scale: 0.02, Zero: 3})

	var fpBuf, qBuf bytes.Buffer
	if err := writeInferRequest(&fpBuf, &inferRequest{JobID: 1, Cut: 2, Tensor: fp}); err != nil {
		t.Fatal(err)
	}
	if err := writeInferRequest(&qBuf, &inferRequest{JobID: 1, Cut: 2, Quant: q}); err != nil {
		t.Fatal(err)
	}
	if got, want := fpBuf.Len(), RequestWireBytes(shape); got != want {
		t.Errorf("fp32 request: %d bytes on the wire, formula says %d", got, want)
	}
	if got, want := qBuf.Len(), QuantRequestWireBytes(shape); got != want {
		t.Errorf("quant request: %d bytes on the wire, formula says %d", got, want)
	}
	ratio := float64(qBuf.Len()) / float64(fpBuf.Len())
	t.Logf("quant/fp32 wire bytes: %d/%d = %.4f", qBuf.Len(), fpBuf.Len(), ratio)
	if ratio > 0.26 {
		t.Errorf("quant request is %.4fx the fp32 bytes, want <= 0.26x", ratio)
	}
}

// TestQuantFrameCorruptionDetected: flipping any single payload byte
// of a quantized request must fail the CRC, same as fp32 frames.
func TestQuantFrameCorruptionDetected(t *testing.T) {
	q := tensor.NewQ(tensor.NewVec(64), tensor.QParams{Scale: 0.1, Zero: 0})
	for i := range q.Data {
		q.Data[i] = int8(i - 32)
	}
	var buf bytes.Buffer
	if err := writeInferRequest(&buf, &inferRequest{JobID: 5, Cut: 1, Quant: q}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := readInferRequestBody(bytes.NewReader(raw[1:])); err != nil {
		t.Fatalf("uncorrupted frame rejected: %v", err)
	}
	corrupt := append([]byte(nil), raw...)
	corrupt[len(corrupt)-10] ^= 0x40 // a payload byte before the trailer
	if _, err := readInferRequestBody(bytes.NewReader(corrupt[1:])); err == nil {
		t.Fatal("corrupted quant frame decoded without error")
	}
}

// TestQuantRunJobEveryCutMatchesLocalForward is the quantized sibling
// of TestRunJobEveryCutMatchesLocalForward: with client and server
// sharing one quantized model, every cut position must return the
// local int8 forward's class — the boundary survives the int8 wire
// round trip because the client quantizes it under the same calibrated
// mapping the frame ships.
func TestQuantRunJobEveryCutMatchesLocalForward(t *testing.T) {
	m := quantTestModel(t)
	cl := startPair(t, m, netsim.WiFi)
	in := input(1)
	want, err := m.Forward(in.Clone())
	if err != nil {
		t.Fatal(err)
	}
	wantClass := engine.Argmax(want)
	for cut := 0; cut < cl.Units(); cut++ {
		res, err := cl.RunJob(cut, cut, in.Clone())
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if res.Class != wantClass {
			t.Errorf("cut %d: class %d, local quant forward says %d", cut, res.Class, wantClass)
		}
	}
}

// TestQuantUploadBytesCounted: the client's uplink byte accounting
// must reflect the quantized frame size, and a quantized run must ship
// ~4x fewer bytes than the same cut in fp32.
func TestQuantUploadBytesCounted(t *testing.T) {
	run := func(m *engine.Model) int64 {
		o := NewObs(obs.NewTracer(0), obs.NewMetrics())
		cConn, sConn := net.Pipe()
		srv := NewServer(m)
		t.Cleanup(srv.Close)
		go func() {
			defer sConn.Close()
			_ = srv.HandleConn(sConn)
		}()
		t.Cleanup(func() { cConn.Close() })
		cl := NewClient(cConn, m, netsim.WiFi, 1e-6).WithObs(o)
		if _, err := cl.RunJob(0, 0, input(2)); err != nil {
			t.Fatal(err)
		}
		// The writer goroutine records BytesUp just after flushing, which
		// can race the reply's arrival; poll until the counter lands.
		deadline := time.Now().Add(5 * time.Second)
		for o.BytesUp.Value() == 0 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		return o.BytesUp.Value()
	}
	fpBytes := run(testModel(t))
	qBytes := run(quantTestModel(t))
	ratio := float64(qBytes) / float64(fpBytes)
	t.Logf("uplink bytes: quant %d vs fp32 %d (%.4fx)", qBytes, fpBytes, ratio)
	if ratio > 0.26 {
		t.Errorf("quant run shipped %.4fx the fp32 bytes, want <= 0.26x", ratio)
	}
}
