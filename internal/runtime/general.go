package runtime

// General-structure execution: a partition of a DAG model is a set of
// cut nodes (one per converted path — Alg. 3), so the client must ship
// SEVERAL boundary tensors and the server resumes from all of them.
// The wire frame is a msgInferSet: a count followed by (nodeID,
// tensor) pairs; the server executes every node outside the shipped
// set's ancestor closure, in topological order.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"sync"
	"time"

	"dnnjps/internal/engine"
	"dnnjps/internal/netsim"
	"dnnjps/internal/tensor"
)

const msgInferSet = byte(3) // client -> server: multi-tensor boundary set

const maxBoundaryTensors = 64

// inferSetRequest carries one job's boundary activations.
type inferSetRequest struct {
	JobID   uint32
	Nodes   []int32
	Tensors []*tensor.Tensor
}

func writeInferSetRequest(w io.Writer, req *inferSetRequest) error {
	if len(req.Nodes) != len(req.Tensors) {
		return fmt.Errorf("runtime: %d nodes vs %d tensors", len(req.Nodes), len(req.Tensors))
	}
	bp := wireBufs.Get().(*[]byte)
	defer wireBufs.Put(bp)
	b := *bp
	b[0] = msgInferSet
	binary.LittleEndian.PutUint32(b[1:], req.JobID)
	binary.LittleEndian.PutUint16(b[5:], uint16(len(req.Nodes)))
	sum := crc32.Update(0, wireCRC, b[1:7])
	if _, err := w.Write(b[:7]); err != nil {
		return err
	}
	for i, node := range req.Nodes {
		binary.LittleEndian.PutUint32(b, uint32(node))
		sum = crc32.Update(sum, wireCRC, b[:4])
		if _, err := w.Write(b[:4]); err != nil {
			return err
		}
		var err error
		if sum, err = writeTensorSum(w, req.Tensors[i], sum); err != nil {
			return err
		}
	}
	return writeSumTrailer(w, sum)
}

func readInferSetRequestBody(r io.Reader) (*inferSetRequest, error) {
	bp := wireBufs.Get().(*[]byte)
	defer wireBufs.Put(bp)
	b := *bp
	var req inferSetRequest
	if _, err := io.ReadFull(r, b[:6]); err != nil {
		return nil, err
	}
	req.JobID = binary.LittleEndian.Uint32(b)
	count := binary.LittleEndian.Uint16(b[4:])
	if count == 0 || count > maxBoundaryTensors {
		return nil, fmt.Errorf("runtime: bad boundary count %d", count)
	}
	sum := crc32.Update(0, wireCRC, b[:6])
	for i := 0; i < int(count); i++ {
		if _, err := io.ReadFull(r, b[:4]); err != nil {
			return nil, err
		}
		sum = crc32.Update(sum, wireCRC, b[:4])
		node := int32(binary.LittleEndian.Uint32(b))
		t, q, newSum, err := readTensorSum(r, sum)
		if err != nil {
			return nil, err
		}
		if q != nil {
			// General-plan boundary sets are float32-only; the quantized
			// frame form is reserved for line-view infer requests.
			return nil, fmt.Errorf("runtime: quantized tensor in infer-set request")
		}
		sum = newSum
		req.Nodes = append(req.Nodes, node)
		req.Tensors = append(req.Tensors, t)
	}
	if err := readSumTrailer(r, sum); err != nil {
		return nil, err
	}
	return &req, nil
}

// inferSet resumes the model from an arbitrary boundary set.
func (s *Server) inferSet(req *inferSetRequest) (*inferReply, error) {
	g := s.model.Graph()
	acts := map[int]*tensor.Tensor{}
	boundary := make([]int, 0, len(req.Nodes))
	for i, node := range req.Nodes {
		id := int(node)
		if id < 0 || id >= g.Len() {
			return nil, fmt.Errorf("runtime: boundary node %d out of range", id)
		}
		want := g.Node(id).OutShape
		if !req.Tensors[i].Shape.Equal(want) {
			return nil, fmt.Errorf("runtime: boundary %d tensor %v, want %v",
				id, req.Tensors[i].Shape, want)
		}
		acts[id] = req.Tensors[i]
		boundary = append(boundary, id)
	}
	// The server executes everything outside the mobile side (the
	// ancestor closure of the boundary set).
	mobile := g.Ancestors(boundary...)
	var suffix []int
	for _, id := range g.Topo() {
		if !mobile[id] {
			suffix = append(suffix, id)
		}
	}
	start := time.Now()
	// The wire tensors seed acts as caller-owned buffers that
	// Execute's arena never recycles; the sink has no consumers, so
	// it is retained for the Argmax read below.
	if err := s.model.Execute(acts, nil, suffix); err != nil {
		return nil, err
	}
	out := acts[g.Sink()]
	return &inferReply{
		JobID:   req.JobID,
		Class:   int32(engine.Argmax(out)),
		CloudNs: time.Since(start).Nanoseconds(),
	}, nil
}

// GeneralClient executes set-partitioned jobs against a Server: the
// mobile side computes the ancestor closure of a cut-node set with the
// real engine, ships every boundary tensor whose consumer is remote,
// and reads back the class.
type GeneralClient struct {
	model *engine.Model
	conn  *netsim.ShapedConn
	rw    *bufio.ReadWriter
	ch    netsim.Channel
	mu    sync.Mutex
}

// NewGeneralClient wraps a connection to a server holding the same
// model and seed.
func NewGeneralClient(conn net.Conn, m *engine.Model, ch netsim.Channel, timeScale float64) *GeneralClient {
	shaped := netsim.Shape(conn, ch, timeScale)
	return &GeneralClient{
		model: m,
		conn:  shaped,
		rw: bufio.NewReadWriter(
			bufio.NewReaderSize(shaped, 1<<16),
			bufio.NewWriterSize(shaped, 1<<16)),
		ch: ch,
	}
}

// RunJob executes one job cut at the given node set (the partition
// P_j of §3.1: those nodes and their ancestors run locally). An empty
// set is rejected; use the node set {sink} for a fully local run.
func (c *GeneralClient) RunJob(jobID int, cutNodes []int, input *tensor.Tensor) (*JobResult, error) {
	if len(cutNodes) == 0 {
		return nil, fmt.Errorf("runtime: empty cut set")
	}
	g := c.model.Graph()
	mobile := g.Ancestors(cutNodes...)
	res := &JobResult{JobID: jobID}

	// Local prefix in topological order.
	var prefix []int
	for _, id := range g.Topo() {
		if mobile[id] {
			prefix = append(prefix, id)
		}
	}
	start := time.Now()
	// Every boundary node has a remote consumer outside the prefix,
	// so Execute keeps its activation live while recycling interior
	// ones — acts[id] below is safe to ship after the call.
	acts := map[int]*tensor.Tensor{}
	if err := c.model.Execute(acts, input, prefix); err != nil {
		return nil, err
	}
	res.MobileMs = float64(time.Since(start).Nanoseconds()) / 1e6

	// Boundary = mobile nodes with at least one remote consumer.
	req := &inferSetRequest{JobID: uint32(jobID)}
	for _, id := range prefix {
		for _, s := range g.Succs(id) {
			if !mobile[s] {
				req.Nodes = append(req.Nodes, int32(id))
				req.Tensors = append(req.Tensors, acts[id])
				break
			}
		}
	}
	if len(req.Nodes) == 0 {
		// Fully local: the sink is on the mobile side.
		res.Class = engine.Argmax(acts[g.Sink()])
		res.Done = time.Now()
		return res, nil
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	sendStart := time.Now()
	c.conn.Delay(time.Duration(c.ch.SetupMs * float64(time.Millisecond)))
	if err := writeInferSetRequest(c.rw.Writer, req); err != nil {
		return nil, err
	}
	if err := c.rw.Flush(); err != nil {
		return nil, err
	}
	rep, err := readInferReply(c.rw.Reader)
	if err != nil {
		return nil, err
	}
	if rep.JobID != uint32(jobID) {
		return nil, fmt.Errorf("runtime: reply for job %d, want %d", rep.JobID, jobID)
	}
	total := float64(time.Since(sendStart).Nanoseconds()) / 1e6
	res.CloudMs = float64(rep.CloudNs) / 1e6
	res.QueueMs = float64(rep.QueueNs) / 1e6
	res.CommMs = total - res.CloudMs - res.QueueMs
	res.Class = int(rep.Class)
	res.Done = time.Now()
	return res, nil
}
