package core

// Heterogeneous jobs — the paper's closing future-work item ("joint
// partition and scheduling for ... heterogeneous jobs is worth further
// investigation"). A workload mixes several job classes, each an
// identical-DNN batch with its own cut curve (e.g. 4 AlexNet frames +
// 4 MobileNet frames arriving together). Per class, Algorithm 2 still
// yields the crossing and its two-type mix; classes then share the
// mobile CPU and the uplink, so the union is scheduled with Johnson's
// rule, which remains makespan-optimal for any fixed partition of a
// two-stage flow shop. Cut choices across classes interact only
// through the schedule, so a one-pass coordinate descent over each
// class's candidate splits (as in PlanGeneral) captures the coupling.

import (
	"fmt"

	"dnnjps/internal/flowshop"
	"dnnjps/internal/profile"
)

// JobClass is one homogeneous slice of a heterogeneous workload.
type JobClass struct {
	// Name labels the class in schedules (defaults to the curve's
	// model name).
	Name string
	// Curve is the class's profiled cut curve.
	Curve *profile.Curve
	// Count is the number of identical jobs of this class.
	Count int
}

func (c JobClass) label() string {
	if c.Name != "" {
		return c.Name
	}
	return c.Curve.Model
}

// HeteroRef identifies one scheduled job of a heterogeneous plan.
type HeteroRef struct {
	Class int // index into the plan's Classes
	Job   int // job index within the class
	Cut   int // cut position on the class's curve
	F, G  float64
}

// HeteroPlan is a joint decision for a heterogeneous workload.
type HeteroPlan struct {
	Method   string
	Classes  []JobClass
	Sequence []HeteroRef
	Makespan float64
}

// TotalJobs returns the workload size.
func (p *HeteroPlan) TotalJobs() int {
	n := 0
	for _, c := range p.Classes {
		n += c.Count
	}
	return n
}

// AvgMs is the average completion time Makespan / total jobs.
func (p *HeteroPlan) AvgMs() float64 {
	if n := p.TotalJobs(); n > 0 {
		return p.Makespan / float64(n)
	}
	return 0
}

// classChoice is one class's planned cuts: which two positions it
// mixes and how many jobs take the earlier one.
type classChoice struct {
	r      *profile.Curve
	idx    []int
	search CutSearch
	splits []int // candidate atPrev values
}

// JPSHetero jointly plans a heterogeneous workload: Algorithm 2 per
// class, balanced two-type splits per class refined by one pass of
// coordinate descent over the joint Johnson schedule.
func JPSHetero(classes []JobClass) (*HeteroPlan, error) {
	if len(classes) == 0 {
		return nil, fmt.Errorf("core: JPSHetero needs at least one class")
	}
	choices := make([]classChoice, len(classes))
	for i, c := range classes {
		if c.Count <= 0 {
			return nil, fmt.Errorf("core: class %d (%s) has count %d", i, c.label(), c.Count)
		}
		if c.Curve == nil {
			return nil, fmt.Errorf("core: class %d has no curve", i)
		}
		r, idx := c.Curve.Restrict(c.Curve.ParetoCuts())
		search, err := BinarySearchCut(r)
		if err != nil {
			return nil, fmt.Errorf("core: class %s: %w", c.label(), err)
		}
		ch := classChoice{r: r, idx: idx, search: search}
		if search.Exact || search.LStar == 0 {
			ch.splits = []int{0}
		} else {
			lo, hi := BalancedSplit(r, search.LStar, c.Count)
			mPaper, _ := MixCounts(c.Count, search.Ratio)
			ch.splits = uniqueInts(lo, hi, mPaper, 0, c.Count)
		}
		choices[i] = ch
	}

	current := make([]int, len(classes))
	for i := range current {
		current[i] = choices[i].splits[0]
	}
	best := evalHetero(classes, choices, current)
	// Coordinate descent: try each class's alternative splits while
	// holding the others fixed.
	for i, ch := range choices {
		for _, s := range ch.splits[1:] {
			trial := append([]int(nil), current...)
			trial[i] = s
			if cand := evalHetero(classes, choices, trial); cand.Makespan < best.Makespan {
				best = cand
				current = trial
			}
		}
	}
	best.Method = "JPS-hetero"
	return best, nil
}

func uniqueInts(vals ...int) []int {
	seen := map[int]bool{}
	var out []int
	for _, v := range vals {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// evalHetero materializes the workload for given per-class splits and
// schedules the union with Johnson's rule.
func evalHetero(classes []JobClass, choices []classChoice, splits []int) *HeteroPlan {
	type key struct{ class, job int }
	var jobs []flowshop.Job
	refs := map[int]HeteroRef{}
	id := 0
	for ci, c := range classes {
		ch := choices[ci]
		for j := 0; j < c.Count; j++ {
			pos := ch.search.LStar
			if !ch.search.Exact && ch.search.LStar > 0 && j < splits[ci] {
				pos = ch.search.LStar - 1
			}
			cut := ch.idx[pos]
			refs[id] = HeteroRef{
				Class: ci, Job: j, Cut: cut,
				F: ch.r.F[pos], G: ch.r.G[pos],
			}
			jobs = append(jobs, flowshop.Job{ID: id, A: ch.r.F[pos], B: ch.r.G[pos]})
			id++
		}
	}
	seq := flowshop.Johnson(jobs)
	plan := &HeteroPlan{Classes: classes, Makespan: flowshop.Makespan(seq)}
	for _, j := range seq {
		plan.Sequence = append(plan.Sequence, refs[j.ID])
	}
	return plan
}

// HeteroBaseline plans every class with the given per-class planner
// (e.g. PO, LO, CO) and schedules the union with Johnson's rule —
// the "plan each class in isolation" reference point.
func HeteroBaseline(method string, plan func(*profile.Curve, int) (*Plan, error), classes []JobClass) (*HeteroPlan, error) {
	var jobs []flowshop.Job
	refs := map[int]HeteroRef{}
	id := 0
	for ci, c := range classes {
		p, err := plan(c.Curve, c.Count)
		if err != nil {
			return nil, fmt.Errorf("core: class %s: %w", c.label(), err)
		}
		for j, cut := range p.Cuts {
			refs[id] = HeteroRef{Class: ci, Job: j, Cut: cut,
				F: c.Curve.F[cut], G: c.Curve.G[cut]}
			jobs = append(jobs, flowshop.Job{ID: id, A: c.Curve.F[cut], B: c.Curve.G[cut]})
			id++
		}
	}
	seq := flowshop.Johnson(jobs)
	out := &HeteroPlan{Method: method, Classes: classes, Makespan: flowshop.Makespan(seq)}
	for _, j := range seq {
		out.Sequence = append(out.Sequence, refs[j.ID])
	}
	return out, nil
}

// BruteForceHetero enumerates the cross product of per-class cut
// multisets (Johnson-scheduled) — the exact heterogeneous optimum for
// small workloads. maxCombos bounds the total combinations (0 means
// 2_000_000).
func BruteForceHetero(classes []JobClass, maxCombos int) (*HeteroPlan, error) {
	if len(classes) == 0 {
		return nil, fmt.Errorf("core: BruteForceHetero needs at least one class")
	}
	if maxCombos <= 0 {
		maxCombos = 2_000_000
	}
	type classSpace struct {
		r   *profile.Curve
		idx []int
	}
	spaces := make([]classSpace, len(classes))
	total := 1.0
	for i, c := range classes {
		if c.Count <= 0 {
			return nil, fmt.Errorf("core: class %d has count %d", i, c.Count)
		}
		r, idx := c.Curve.Restrict(c.Curve.ParetoCuts())
		spaces[i] = classSpace{r: r, idx: idx}
		total *= multisets(c.Count, r.Len())
		if total > float64(maxCombos) {
			return nil, fmt.Errorf("%w: ~%.0f combinations", ErrSearchSpaceTooLarge, total)
		}
	}

	// counts[i] is the per-position multiset of class i.
	counts := make([][]int, len(classes))
	for i, s := range spaces {
		counts[i] = make([]int, s.r.Len())
	}
	var best *HeteroPlan
	evaluate := func() {
		var jobs []flowshop.Job
		refs := map[int]HeteroRef{}
		id := 0
		for ci := range classes {
			s := spaces[ci]
			job := 0
			for pos, cnt := range counts[ci] {
				for t := 0; t < cnt; t++ {
					cut := s.idx[pos]
					refs[id] = HeteroRef{Class: ci, Job: job, Cut: cut,
						F: s.r.F[pos], G: s.r.G[pos]}
					jobs = append(jobs, flowshop.Job{ID: id, A: s.r.F[pos], B: s.r.G[pos]})
					id++
					job++
				}
			}
		}
		seq := flowshop.Johnson(jobs)
		span := flowshop.Makespan(seq)
		if best == nil || span < best.Makespan {
			p := &HeteroPlan{Method: "BF-hetero", Classes: classes, Makespan: span}
			for _, j := range seq {
				p.Sequence = append(p.Sequence, refs[j.ID])
			}
			best = p
		}
	}

	var recClass func(ci int)
	recClass = func(ci int) {
		if ci == len(classes) {
			evaluate()
			return
		}
		k := len(counts[ci])
		var recPos func(pos, remaining int)
		recPos = func(pos, remaining int) {
			if pos == k-1 {
				counts[ci][pos] = remaining
				recClass(ci + 1)
				return
			}
			for take := 0; take <= remaining; take++ {
				counts[ci][pos] = take
				recPos(pos+1, remaining-take)
			}
			counts[ci][pos] = 0
		}
		recPos(0, classes[ci].Count)
	}
	recClass(0)
	return best, nil
}

// multisets approximates C(n+k-1, k-1) in float64 for space sizing.
func multisets(n, k int) float64 {
	v := 1.0
	for i := 1; i <= k-1; i++ {
		v *= float64(n+i) / float64(i)
	}
	return v
}
