package core

import (
	"fmt"

	"dnnjps/internal/profile"
	"dnnjps/internal/regression"
)

// ContinuousSolution is the Theorem 5.2 optimum of the relaxed problem
// P2: the single real-valued cut position x* where the continuous
// extensions of f and g cross, shared by all n jobs.
type ContinuousSolution struct {
	XStar float64
	// FAtXStar = GAtXStar at the crossing; this value is the optimal
	// asymptotic average makespan lim (max_j τ_j)/n of §4.2.
	FAtXStar float64
	GAtXStar float64
}

// AvgMakespanBound returns the relaxed optimum of the average
// makespan: max(f(x*), g(x*)) — a lower bound on what any discrete
// plan can achieve asymptotically.
func (s ContinuousSolution) AvgMakespanBound() float64 {
	return max(s.FAtXStar, s.GAtXStar)
}

// SolveContinuous relaxes the (Pareto-restricted) curve to the
// continuous domain by piecewise-linear interpolation and finds the
// crossing f(x*) = g(x*) by bisection. Per Theorem 5.2, cutting all
// jobs at x* is optimal for the relaxed problem.
func SolveContinuous(c *profile.Curve) (ContinuousSolution, error) {
	r, _ := c.Restrict(c.ParetoCuts())
	if r.Len() < 2 {
		return ContinuousSolution{}, fmt.Errorf("core: curve too short for continuous relaxation")
	}
	fi, gi := r.FInterp(), r.GInterp()
	lo, hi := fi.Domain()
	x, ok := regression.CrossingPoint(fi.Eval, gi.Eval, lo, hi)
	if !ok {
		return ContinuousSolution{}, fmt.Errorf("core: f and g do not cross on [%g,%g]", lo, hi)
	}
	return ContinuousSolution{XStar: x, FAtXStar: fi.Eval(x), GAtXStar: gi.Eval(x)}, nil
}
