package core

// k-way pipeline partitioning over an ordered device chain — the
// generalization past the paper's single mobile→cloud cut (and past
// threetier.go's hardcoded two-cut form) toward Parthasarathy-style
// multi-segment placement. A Chain is d devices joined by d-1 links;
// every job is split by k = d-1 non-decreasing cuts on the line view,
// so device 0 computes through cuts[0], link l carries the tensor at
// cuts[l], and device d-1 finishes. The scheduled pipeline is device-0
// compute plus the k link transmissions: a (k+1)-machine permutation
// flow shop priced by flowshop.ScheduleM. As in the three-tier model,
// intermediate and terminal device compute is validated, not
// scheduled — each hop has its own executor per job.
//
// The existing planners are exact special cases, pinned by parity
// tests: a 2-device chain IS the paper's two-tier problem (JPSChain
// delegates to JPS, reply pricing included), and a 3-device chain
// reproduces JPSThreeTier bit-identically — same candidate order, same
// best/runner-up selection, same mixing splits, same flow-shop code
// underneath (Schedule3 is a wrapper over ScheduleM).

import (
	"fmt"
	"math"

	"dnnjps/internal/dag"
	"dnnjps/internal/flowshop"
	"dnnjps/internal/netsim"
	"dnnjps/internal/profile"
	"dnnjps/internal/tensor"
)

// Chain is an ordered offloading topology: Devices[0] holds the jobs,
// Links[l] connects Devices[l] to Devices[l+1].
type Chain struct {
	Devices []profile.Device
	Links   []netsim.Channel
	DType   tensor.DType
}

// TwoTierChain wraps the paper's mobile→cloud pair as a 1-link chain.
func TwoTierChain(mobile, cloud profile.Device, uplink netsim.Channel, dt tensor.DType) Chain {
	return Chain{
		Devices: []profile.Device{mobile, cloud},
		Links:   []netsim.Channel{uplink},
		DType:   dt,
	}
}

// Chain reconstructs the three-tier env as a 2-link chain
// (mobile→edge→cloud); JPSChain on it reproduces JPSThreeTier exactly.
func (e ThreeTierEnv) Chain() Chain {
	return Chain{
		Devices: []profile.Device{e.Mobile, e.Edge, e.Cloud},
		Links:   []netsim.Channel{e.Uplink, e.Backhaul},
		DType:   e.DType,
	}
}

// Depth returns the number of cuts per job (= number of links).
func (c Chain) Depth() int { return len(c.Links) }

// Validate rejects chains the planner cannot price: too few devices,
// mismatched link count, and — the silent-degeneracy bugfix — links
// whose bandwidth is zero, negative, NaN or infinite, which would turn
// TxMs into +Inf/NaN and poison every downstream makespan instead of
// failing here with a message.
func (c Chain) Validate() error {
	if len(c.Devices) < 2 {
		return fmt.Errorf("core: chain needs >= 2 devices, got %d", len(c.Devices))
	}
	if len(c.Links) != len(c.Devices)-1 {
		return fmt.Errorf("core: chain with %d devices needs %d links, got %d",
			len(c.Devices), len(c.Devices)-1, len(c.Links))
	}
	for l, ch := range c.Links {
		if math.IsNaN(ch.UplinkMbps) || math.IsInf(ch.UplinkMbps, 0) || ch.UplinkMbps <= 0 {
			return fmt.Errorf("core: chain link %d (%s) has unusable uplink bandwidth %g Mb/s",
				l, ch.Name, ch.UplinkMbps)
		}
		if math.IsNaN(ch.SetupMs) || math.IsInf(ch.SetupMs, 0) || ch.SetupMs < 0 {
			return fmt.Errorf("core: chain link %d (%s) has unusable setup latency %g ms",
				l, ch.Name, ch.SetupMs)
		}
		if math.IsNaN(ch.DownlinkMbps) || math.IsInf(ch.DownlinkMbps, 0) {
			return fmt.Errorf("core: chain link %d (%s) has unusable downlink bandwidth %g Mb/s",
				l, ch.Name, ch.DownlinkMbps)
		}
	}
	return nil
}

// ChainPlan is a joint k-cut partition plus m-machine schedule for n
// identical jobs.
type ChainPlan struct {
	Method string
	// Cuts[i] is job i's non-decreasing cut tuple (len = chain depth)
	// on the line view.
	Cuts     [][]int
	Sequence []flowshop.JobM
	Makespan float64
}

// AvgMs is Makespan / n; 0 for an empty plan (no jobs, no NaN).
func (p *ChainPlan) AvgMs() float64 {
	if len(p.Cuts) == 0 {
		return 0
	}
	return p.Makespan / float64(len(p.Cuts))
}

// chainCurves profiles the model once per device and link. Like
// threeTierCurves it derives every transmission from the device-0
// curve's tensor volumes (Bytes is a pure model/dtype property), so
// linkMs[l][i] is the time for the tensor at position i to cross link
// l, exactly 0 at the last position (zero-byte payload).
type chainCurves struct {
	// f[d][i]: cumulative compute ms through position i on device d.
	f [][]float64
	// linkMs[l][i]: transmission ms of the tensor at position i over
	// link l (no reply leg — replies ride the last hop back and are
	// priced only by the two-tier special case, matching threetier.go).
	linkMs [][]float64
	pareto []int
	n      int
}

func buildChainCurves(g *dag.Graph, ch Chain) *chainCurves {
	d := len(ch.Devices)
	last := ch.Devices[d-1]
	base := profile.BuildCurve(g, ch.Devices[0], last, ch.Links[0], ch.DType)
	c := &chainCurves{
		f:      make([][]float64, d),
		linkMs: make([][]float64, len(ch.Links)),
		pareto: base.ParetoCuts(),
		n:      base.Len(),
	}
	c.f[0] = base.F
	for dev := 1; dev < d; dev++ {
		c.f[dev] = profile.BuildCurve(g, ch.Devices[dev], last, ch.Links[dev-1], ch.DType).F
	}
	for l, link := range ch.Links {
		ms := make([]float64, c.n)
		for i := 0; i < c.n; i++ {
			ms[i] = link.TxMs(base.Bytes[i])
		}
		c.linkMs[l] = ms
	}
	return c
}

// stagesFor prices one job's pipeline stages for a non-decreasing cut
// tuple: device-0 compute through cuts[0], then link l's transmission
// of the tensor at cuts[l]. Degenerate tuples inherit the (verified)
// three-tier semantics: cuts[l-1] == cuts[l] means nothing runs on
// device l but the tensor still pays both adjacent hops, and any cut
// at the last position transmits zero bytes, hence exactly 0 ms — no
// special-casing needed (TestChainDegenerateGrid pins this).
func (c *chainCurves) stagesFor(cuts []int) []float64 {
	st := make([]float64, len(cuts)+1)
	st[0] = c.f[0][cuts[0]]
	for l, cut := range cuts {
		st[l+1] = c.linkMs[l][cut]
	}
	return st
}

// segmentComputeMs is the unscheduled compute of device d for a tuple:
// the span (cuts[d-1], cuts[d]] evaluated on that device's curve
// (cuts[depth] is implicitly the end). Used for validation only.
func (c *chainCurves) segmentComputeMs(dev int, cuts []int) float64 {
	lo := cuts[dev-1]
	hi := c.n - 1
	if dev < len(cuts) {
		hi = cuts[dev]
	}
	return c.f[dev][hi] - c.f[dev][lo]
}

// enumTuples yields every non-decreasing k-tuple over the Pareto
// candidates in lexicographic order (first cut outermost — for k=2
// this is exactly JPSThreeTier's lo-outer/hi-inner pair loop).
func enumTuples(pareto []int, k int, visit func(cuts []int)) {
	cuts := make([]int, k)
	var rec func(pos, start int)
	rec = func(pos, start int) {
		if pos == k {
			visit(cuts)
			return
		}
		for i := start; i < len(pareto); i++ {
			cuts[pos] = pareto[i]
			rec(pos+1, i)
		}
	}
	rec(0, 0)
}

// JPSChain jointly picks k cuts per job and an m-machine schedule for
// a chain. Depth 1 is the paper's exact problem and delegates to JPS
// (Alg. 2 + Thm 5.3 + Johnson, reply pricing included). Deeper chains
// generalize the three-tier search: enumerate non-decreasing Pareto
// tuples, rank by peak stage (the asymptotic average-makespan driver),
// and mix the best two candidates across jobs at a few splits, each
// priced by the full CDS-m/NEH-m/descent sequencer. O(C(p+k-1,k))
// tuples over p Pareto cuts — model-sized p keeps this in
// milliseconds even at depth 4.
func JPSChain(g *dag.Graph, ch Chain, n int) (*ChainPlan, error) {
	if err := ch.Validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("core: JPSChain needs n >= 1, got %d", n)
	}
	if ch.Depth() == 1 {
		curve := profile.BuildCurve(g, ch.Devices[0], ch.Devices[1], ch.Links[0], ch.DType)
		p, err := JPS(curve, n)
		if err != nil {
			return nil, err
		}
		return chainPlanFromTwoTier("JPS-chain", p), nil
	}
	c := buildChainCurves(g, ch)
	k := ch.Depth()

	type cand struct {
		cuts []int
		peak float64
	}
	var cands []cand
	enumTuples(c.pareto, k, func(cuts []int) {
		st := c.stagesFor(cuts)
		peak := st[0]
		for _, s := range st[1:] {
			if s > peak {
				peak = s
			}
		}
		cands = append(cands, cand{cuts: append([]int(nil), cuts...), peak: peak})
	})
	// Best and runner-up by peak stage — same selection (and the same
	// tie-breaking quirks) as JPSThreeTier, which this code must
	// reproduce bit-for-bit at k=2.
	bestIdx, secondIdx := 0, 0
	for i, p := range cands {
		if p.peak < cands[bestIdx].peak {
			secondIdx = bestIdx
			bestIdx = i
		} else if p.peak < cands[secondIdx].peak || secondIdx == bestIdx {
			if i != bestIdx {
				secondIdx = i
			}
		}
	}

	evaluate := func(mixAt int) *ChainPlan {
		plan := &ChainPlan{Method: "JPS-chain", Cuts: make([][]int, n)}
		jobs := make([]flowshop.JobM, n)
		for i := 0; i < n; i++ {
			p := cands[bestIdx]
			if i < mixAt {
				p = cands[secondIdx]
			}
			plan.Cuts[i] = append([]int(nil), p.cuts...)
			jobs[i] = flowshop.JobM{ID: i, Stages: c.stagesFor(p.cuts)}
		}
		plan.Sequence = flowshop.ScheduleM(jobs)
		plan.Makespan = flowshop.MakespanM(plan.Sequence)
		return plan
	}

	best := evaluate(0)
	for _, m := range []int{n / 4, n / 2, 3 * n / 4, n} {
		if cand := evaluate(m); cand.Makespan < best.Makespan {
			best = cand
		}
	}
	return best, nil
}

// chainPlanFromTwoTier lifts a two-stage Plan into the chain shape:
// each cut becomes a 1-tuple, each Johnson job a 2-stage JobM. The
// makespan carries over unchanged (same recurrence, same floats).
func chainPlanFromTwoTier(method string, p *Plan) *ChainPlan {
	out := &ChainPlan{Method: method, Cuts: make([][]int, len(p.Cuts)), Makespan: p.Makespan}
	for i, cut := range p.Cuts {
		out.Cuts[i] = []int{cut}
	}
	out.Sequence = make([]flowshop.JobM, len(p.Sequence))
	for i, j := range p.Sequence {
		out.Sequence[i] = flowshop.JobM{ID: j.ID, Stages: []float64{j.A, j.B}}
	}
	return out
}

// OneCutChain is the single-cut baseline on a deep chain: one cut at
// device 0, the tensor crossing every link back to back, all
// intermediate devices pass-through — the straight generalization of
// TwoTierAsThreeTier (bit-identical to it on 3-device chains). The
// chain-depth experiment measures JPSChain against it.
func OneCutChain(g *dag.Graph, ch Chain, n int) (*ChainPlan, error) {
	if err := ch.Validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("core: OneCutChain needs n >= 1, got %d", n)
	}
	c := buildChainCurves(g, ch)
	k := ch.Depth()
	tuple := func(lo int) []int {
		cuts := make([]int, k)
		for l := range cuts {
			cuts[l] = lo
		}
		return cuts
	}
	bestLo, bestPeak := c.pareto[0], -1.0
	for _, lo := range c.pareto {
		st := c.stagesFor(tuple(lo))
		peak := st[0]
		for _, s := range st[1:] {
			if s > peak {
				peak = s
			}
		}
		if bestPeak < 0 || peak < bestPeak {
			bestLo, bestPeak = lo, peak
		}
	}
	plan := &ChainPlan{Method: "1cut-chain", Cuts: make([][]int, n)}
	jobs := make([]flowshop.JobM, n)
	for i := 0; i < n; i++ {
		plan.Cuts[i] = tuple(bestLo)
		jobs[i] = flowshop.JobM{ID: i, Stages: c.stagesFor(plan.Cuts[i])}
	}
	plan.Sequence = flowshop.CDSM(jobs)
	plan.Makespan = flowshop.MakespanM(plan.Sequence)
	return plan, nil
}

// ChainBruteForce is the offline-optimal baseline (à la DOPart's MILP
// reference): enumerate every multiset of size n over the full
// non-decreasing Pareto tuple set, sequence each exhaustively when
// n <= 7 (else with ScheduleM, still exact over partitions), and keep
// the best. Exponential — the heuristic-gap experiments run it at
// small n/depth; maxCombos bounds the multisets visited (0 means
// 200_000) and ErrSearchSpaceTooLarge reports overflow.
func ChainBruteForce(g *dag.Graph, ch Chain, n, maxCombos int) (*ChainPlan, error) {
	if err := ch.Validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("core: ChainBruteForce needs n >= 1, got %d", n)
	}
	if maxCombos <= 0 {
		maxCombos = 200_000
	}
	c := buildChainCurves(g, ch)
	var tuples [][]int
	enumTuples(c.pareto, ch.Depth(), func(cuts []int) {
		tuples = append(tuples, append([]int(nil), cuts...))
	})
	t := len(tuples)
	if combosExceed(n, t, maxCombos) {
		return nil, fmt.Errorf("%w: C(%d+%d-1,%d) > %d", ErrSearchSpaceTooLarge, n, t, n, maxCombos)
	}

	sequence := func(jobs []flowshop.JobM) []flowshop.JobM {
		if len(jobs) <= 7 {
			seq, _, _ := flowshop.BestPermutationM(jobs)
			return seq
		}
		return flowshop.ScheduleM(jobs)
	}

	counts := make([]int, t)
	var best *ChainPlan
	visited := 0
	var rec func(pos, remaining int) error
	rec = func(pos, remaining int) error {
		if pos == t-1 {
			counts[pos] = remaining
			visited++
			if visited > maxCombos {
				return ErrSearchSpaceTooLarge
			}
			plan := &ChainPlan{Method: "BF-chain", Cuts: make([][]int, 0, n)}
			jobs := make([]flowshop.JobM, 0, n)
			for ti, cnt := range counts {
				for j := 0; j < cnt; j++ {
					plan.Cuts = append(plan.Cuts, tuples[ti])
					jobs = append(jobs, flowshop.JobM{ID: len(jobs), Stages: c.stagesFor(tuples[ti])})
				}
			}
			plan.Sequence = sequence(jobs)
			plan.Makespan = flowshop.MakespanM(plan.Sequence)
			if best == nil || plan.Makespan < best.Makespan {
				best = plan
			}
			return nil
		}
		for take := 0; take <= remaining; take++ {
			counts[pos] = take
			if err := rec(pos+1, remaining-take); err != nil {
				return err
			}
		}
		counts[pos] = 0
		return nil
	}
	if err := rec(0, n); err != nil {
		return nil, err
	}
	return best, nil
}
