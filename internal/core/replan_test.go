package core

import (
	"testing"

	"dnnjps/internal/netsim"
)

// ReplanWithHint must act on the planner's real objective: the hint
// surcharges the upload stage G at every offloaded position, which is
// what moves the Theorem 5.3 balance point — CloudMs never enters the
// two-stage flow-shop, so loading the delay there would be a no-op.

func TestReplanWithHintZeroMatchesReplan(t *testing.T) {
	c := fig2Curve()
	ch := c.Channel
	base, err := Replan(c, ch, 6)
	if err != nil {
		t.Fatal(err)
	}
	hinted, err := ReplanWithHint(c, ch, 6, ServerHint{QueueMs: 0})
	if err != nil {
		t.Fatal(err)
	}
	if hinted.Method != "JPS-replan-hint" {
		t.Errorf("Method = %q", hinted.Method)
	}
	for i := range base.Cuts {
		if base.Cuts[i] != hinted.Cuts[i] {
			t.Fatalf("zero hint changed cut %d: %d vs %d", i, hinted.Cuts[i], base.Cuts[i])
		}
	}
}

func TestReplanWithHintShiftsLocal(t *testing.T) {
	c := fig2Curve()
	// A queue wait far above any layer cost makes every offloaded
	// position unprofitable; the only unsurcharged cut is fully local.
	p, err := ReplanWithHint(c, c.Channel, 4, ServerHint{QueueMs: 1e6})
	if err != nil {
		t.Fatal(err)
	}
	local := c.Len() - 1
	for i, cut := range p.Cuts {
		if cut != local {
			t.Errorf("job %d: cut %d under a saturating hint, want fully local %d", i, cut, local)
		}
	}
	// The original curve must be untouched: the surcharge works on the
	// repriced copy.
	if c.G[c.Len()-1] != 0 || c.G[0] != 20 {
		t.Errorf("hint mutated the caller's curve: G = %v", c.G)
	}
}

func TestReplanWithHintValidation(t *testing.T) {
	c := fig2Curve()
	if _, err := ReplanWithHint(c, netsim.Channel{UplinkMbps: 0}, 2, ServerHint{}); err == nil {
		t.Error("zero bandwidth must error")
	}
	if _, err := ReplanWithHint(c, c.Channel, 2, ServerHint{QueueMs: -1}); err == nil {
		t.Error("negative queue hint must error")
	}
}

// TestReplanNilCurve: both entry points must reject a nil curve with
// an error instead of dereferencing it — the runner calls them with
// whatever WithCurve supplied, which may legitimately be unset.
func TestReplanNilCurve(t *testing.T) {
	ch := netsim.Channel{UplinkMbps: 8}
	if _, err := Replan(nil, ch, 2); err == nil {
		t.Error("Replan(nil curve) must error")
	}
	if _, err := ReplanWithHint(nil, ch, 2, ServerHint{}); err == nil {
		t.Error("ReplanWithHint(nil curve) must error")
	}
}

// TestReplanZeroHintIdentity: across job counts and channel speeds, a
// zero queue hint must reproduce Replan's cuts and schedule exactly —
// the surcharge is the ONLY thing the hint path adds.
func TestReplanZeroHintIdentity(t *testing.T) {
	c := fig2Curve()
	cases := []struct {
		name string
		ch   netsim.Channel
		n    int
	}{
		{"nominal-n1", c.Channel, 1},
		{"nominal-n6", c.Channel, 6},
		{"degraded-n4", netsim.Channel{UplinkMbps: c.Channel.UplinkMbps / 4, SetupMs: c.Channel.SetupMs}, 4},
		{"fast-n8", netsim.Channel{UplinkMbps: c.Channel.UplinkMbps * 8, SetupMs: c.Channel.SetupMs}, 8},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			base, err := Replan(c, tc.ch, tc.n)
			if err != nil {
				t.Fatal(err)
			}
			hinted, err := ReplanWithHint(c, tc.ch, tc.n, ServerHint{})
			if err != nil {
				t.Fatal(err)
			}
			if len(base.Cuts) != len(hinted.Cuts) {
				t.Fatalf("cut counts differ: %d vs %d", len(base.Cuts), len(hinted.Cuts))
			}
			for i := range base.Cuts {
				if base.Cuts[i] != hinted.Cuts[i] {
					t.Errorf("job %d: zero-hint cut %d != replan cut %d", i, hinted.Cuts[i], base.Cuts[i])
				}
			}
			for i := range base.Sequence {
				if base.Sequence[i].ID != hinted.Sequence[i].ID {
					t.Errorf("position %d: zero-hint schedules job %d, replan job %d",
						i, hinted.Sequence[i].ID, base.Sequence[i].ID)
				}
			}
		})
	}
}
