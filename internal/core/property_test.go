package core

import (
	"math"
	"math/rand"
	"testing"

	"dnnjps/internal/flowshop"
	"dnnjps/internal/netsim"
	"dnnjps/internal/profile"
)

// propCurve builds a random profile satisfying the premises of
// Theorem 5.3: f strictly increasing with random step sizes, g an
// exact decreasing exponential g0·ρ^i (the §3.2 offload-volume model —
// convex, not merely monotone; arbitrary monotone g admits
// counterexamples where no two-layer mix is anywhere near optimal).
func propCurve(rng *rand.Rand, k int) *profile.Curve {
	c := &profile.Curve{
		Model:   "prop",
		Channel: netsim.Channel{Name: "toy"},
		F:       make([]float64, k),
		G:       make([]float64, k),
		CloudMs: make([]float64, k),
		Bytes:   make([]int, k),
		Labels:  make([]string, k),
	}
	g0 := 40 + rng.Float64()*80
	rho := 0.35 + rng.Float64()*0.5
	f := rng.Float64() * 5
	for i := 0; i < k; i++ {
		if i > 0 {
			f += 1 + rng.Float64()*10
		}
		c.F[i] = f
		c.G[i] = g0 * math.Pow(rho, float64(i))
		c.Bytes[i] = int(c.G[i]*1000) + 1
	}
	c.G[k-1] = 0
	c.Bytes[k-1] = 0
	return c
}

// distinctCuts returns the set of distinct cut positions of a plan.
func distinctCuts(p *Plan) []int {
	seen := map[int]bool{}
	var out []int
	for _, cut := range p.Cuts {
		if !seen[cut] {
			seen[cut] = true
			out = append(out, cut)
		}
	}
	return out
}

// TestPropertyTwoPointOptimality sweeps 500 seeded random instances
// (n ≤ 7 jobs, L ≤ 10 layers) against the exhaustive multiset
// enumeration of bruteforce.go and pins the exact boundary of
// Theorem 5.3 on this codebase:
//
//  1. Whenever the exhaustive optimum is expressible with at most two
//     distinct cut positions — the theorem's structure class, which
//     covers the majority of instances — the two-point search (JPS+)
//     must reproduce it EXACTLY: identical makespan to 1e-9, because
//     two-point plans over identical jobs are multisets and JPS+
//     enumerates all of them.
//  2. The optimality chain BF ≤ JPS+ ≤ JPS always holds (each planner
//     searches a superset of the next one's candidates).
//  3. JPS itself keeps the theorem's shape (at most two distinct cuts)
//     and stays within 2x of the exhaustive optimum.
//
// The sweep deliberately does NOT assert plain JPS == BF: at these
// small n the closed form's boundary terms f(x_1) and g(x_n) are a
// constant fraction of the makespan, and the exhaustive optimum
// regularly exploits them with a cheap-f first job or a g=0 fully-local
// last job — three distinct cuts, outside any two-adjacent-layer mix
// (the repo's TestTheorem53ConditionsAndCounterexample pins one such
// instance; this sweep shows the class is common, ~1/3 of draws).
func TestPropertyTwoPointOptimality(t *testing.T) {
	const trials = 500
	rng := rand.New(rand.NewSource(20260805))
	twoPoint := 0
	for trial := 0; trial < trials; trial++ {
		k := 3 + rng.Intn(8) // L in [3,10]
		n := 1 + rng.Intn(7) // n in [1,7]
		c := propCurve(rng, k)

		bf, err := BruteForce(c, n, 0)
		if err != nil {
			t.Fatalf("trial %d (k=%d n=%d): BruteForce: %v", trial, k, n, err)
		}
		jps, err := JPS(c, n)
		if err != nil {
			t.Fatalf("trial %d: JPS: %v", trial, err)
		}
		jpsPlus, err := JPSPlus(c, n)
		if err != nil {
			t.Fatalf("trial %d: JPSPlus: %v", trial, err)
		}

		const eps = 1e-9
		if bf.Makespan > jpsPlus.Makespan+eps {
			t.Fatalf("trial %d: BF %.12f > JPS+ %.12f — enumeration missed a plan",
				trial, bf.Makespan, jpsPlus.Makespan)
		}
		if jpsPlus.Makespan > jps.Makespan+eps {
			t.Fatalf("trial %d: JPS+ %.12f > JPS %.12f — two-point search missed JPS's own split",
				trial, jpsPlus.Makespan, jps.Makespan)
		}
		if len(distinctCuts(bf)) <= 2 {
			twoPoint++
			if diff := jpsPlus.Makespan - bf.Makespan; math.Abs(diff) > eps {
				t.Fatalf("trial %d (k=%d n=%d): BF optimum is two-point but JPS+ %.12f != BF %.12f (diff %g)\nF=%v\nG=%v\nBF cuts %v",
					trial, k, n, jpsPlus.Makespan, bf.Makespan, diff, c.F, c.G, bf.Cuts)
			}
		}
		if dc := distinctCuts(jps); len(dc) > 2 {
			t.Fatalf("trial %d: JPS used %d distinct cuts %v; Theorem 5.3 allows at most two",
				trial, len(dc), dc)
		}
		if jps.Makespan > 2*bf.Makespan+eps {
			t.Fatalf("trial %d (k=%d n=%d): JPS %.12f > 2x optimal %.12f",
				trial, k, n, jps.Makespan, bf.Makespan)
		}
	}
	t.Logf("%d/%d instances had a two-point exhaustive optimum (exact-equality leg)", twoPoint, trials)
	if twoPoint < trials/2 {
		t.Fatalf("only %d/%d instances exercised the exact-equality leg; generator drifted", twoPoint, trials)
	}
}

// TestPropertyJohnsonIsOptimalSchedule checks Algorithm 1's half of the
// joint problem, which IS unconditionally exact: for any fixed
// partition (a random multiset of cuts, not necessarily a planner's),
// Johnson's rule over the induced two-stage jobs must attain the best
// makespan over every one of the n! permutations.
func TestPropertyJohnsonIsOptimalSchedule(t *testing.T) {
	const trials = 500
	rng := rand.New(rand.NewSource(907))
	for trial := 0; trial < trials; trial++ {
		k := 3 + rng.Intn(8)
		n := 2 + rng.Intn(6) // n in [2,7]: permutations must matter
		c := propCurve(rng, k)

		cuts := make([]int, n)
		for i := range cuts {
			cuts[i] = rng.Intn(k)
		}
		jobs := JobsForCuts(c, cuts)
		seq := flowshop.Johnson(jobs)
		got := flowshop.Makespan(seq)
		_, best := flowshop.BestPermutation(jobs)
		if diff := got - best; diff > 1e-9 {
			t.Fatalf("trial %d (k=%d n=%d): Johnson makespan %.12f > exhaustive best %.12f\ncuts=%v",
				trial, k, n, got, best, cuts)
		}
	}
}
