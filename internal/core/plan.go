package core

import (
	"fmt"
	"math"

	"dnnjps/internal/flowshop"
	"dnnjps/internal/profile"
)

// Plan is a complete joint decision for n identical inference jobs:
// one cut per job plus the Johnson-ordered execution sequence and its
// makespan. Cut indices refer to positions of the original curve.
type Plan struct {
	Method string
	Curve  *profile.Curve
	// Cuts holds the cut position of each job, unsorted (job i keeps
	// identity i).
	Cuts []int
	// Sequence is the Johnson-ordered schedule; Job.ID indexes Cuts.
	Sequence []flowshop.Job
	// Makespan is the two-stage flow-shop makespan (the paper's
	// objective; cloud time is negligible and checked by the
	// simulator).
	Makespan float64
	// CloudTailMs is the remaining cloud time of the last scheduled
	// job — the part the two-stage model ignores.
	CloudTailMs float64
}

// AvgMs is the average completion time Makespan/n reported by Fig. 12.
func (p *Plan) AvgMs() float64 {
	if len(p.Cuts) == 0 {
		return 0
	}
	return p.Makespan / float64(len(p.Cuts))
}

// planFromCuts schedules the given cuts and wraps them in a Plan.
func planFromCuts(method string, c *profile.Curve, cuts []int) *Plan {
	jobs := JobsForCuts(c, cuts)
	seq := flowshop.Johnson(jobs)
	p := &Plan{
		Method:   method,
		Curve:    c,
		Cuts:     cuts,
		Sequence: seq,
		Makespan: flowshop.Makespan(seq),
	}
	if len(seq) > 0 {
		p.CloudTailMs = c.CloudMs[cuts[seq[len(seq)-1].ID]]
	}
	return p
}

// JPS is the paper's joint partition-and-scheduling planner for
// line-structure (or virtual-block clustered) DNNs: restrict to
// Pareto cuts, binary-search l* (Alg. 2), mix cuts l*-1 and l* by the
// Theorem 5.3 balance condition, and schedule with Johnson's rule
// (Alg. 1). One deviation from the paper's text: the split uses the
// exact real-valued ratio (evaluating the two adjacent integer splits)
// instead of the floored integer ratio, which collapses to "all jobs
// at l*" whenever the true ratio is below 1 — see JPSPaperRatio for
// the literal rule and the ablation bench comparing the two.
func JPS(c *profile.Curve, n int) (*Plan, error) {
	if n <= 0 {
		return nil, fmt.Errorf("core: JPS needs n >= 1, got %d", n)
	}
	r, idx := c.Restrict(c.ParetoCuts())
	search, err := BinarySearchCut(r)
	if err != nil {
		return nil, err
	}
	if search.Exact || search.LStar == 0 {
		cuts := make([]int, n)
		for i := range cuts {
			cuts[i] = idx[search.LStar]
		}
		return planFromCuts("JPS", c, cuts), nil
	}
	// Candidate splits over (l*-1, l*): the two integers flanking the
	// exact balance point, the paper's floored-ratio split (so JPS can
	// never lose to the literal rule), and the two homogeneous
	// extremes.
	mLo, mHi := BalancedSplit(r, search.LStar, n)
	mPaper, _ := MixCounts(n, search.Ratio)
	var best *Plan
	tried := map[int]bool{}
	for _, m := range []int{mLo, mHi, mPaper, 0, n} {
		if m < 0 || m > n || tried[m] {
			continue
		}
		tried[m] = true
		if p := planForSplit("JPS", c, idx, search.LStar, n, m); best == nil || p.Makespan < best.Makespan {
			best = p
		}
	}
	return best, nil
}

// JPSPlus globalizes Theorem 5.3: instead of mixing only the two
// layers adjacent to the crossing, it searches every pair of Pareto
// cuts with every split — O(k²·n) schedule evaluations, still
// millisecond-scale for model-sized k. On curves whose adjacent-layer
// differences are drastic (coarse virtual-block curves violate the
// theorem's smoothness premise), JPSPlus recovers most of the gap to
// the exhaustive optimum; see the Fig. 11 experiment.
func JPSPlus(c *profile.Curve, n int) (*Plan, error) {
	p, err := BruteForceTwoPoint(c, n)
	if err != nil {
		return nil, err
	}
	p.Method = "JPS+"
	return p, nil
}

// JPSPaperRatio is the literal Algorithm 2 mix: the floored integer
// ratio of Theorem 5.3 drives the split. Kept as an ablation target;
// JPS's balanced split dominates it (never worse, often much better
// when the true ratio is fractional).
func JPSPaperRatio(c *profile.Curve, n int) (*Plan, error) {
	if n <= 0 {
		return nil, fmt.Errorf("core: JPSPaperRatio needs n >= 1, got %d", n)
	}
	r, idx := c.Restrict(c.ParetoCuts())
	search, err := BinarySearchCut(r)
	if err != nil {
		return nil, err
	}
	if search.Exact || search.LStar == 0 {
		cuts := make([]int, n)
		for i := range cuts {
			cuts[i] = idx[search.LStar]
		}
		return planFromCuts("JPS-paper-ratio", c, cuts), nil
	}
	atPrev, _ := MixCounts(n, search.Ratio)
	return planForSplit("JPS-paper-ratio", c, idx, search.LStar, n, atPrev), nil
}

// planForSplit builds the plan cutting the first m jobs at l*-1 and
// the rest at l* (indices mapped back to the original curve).
func planForSplit(method string, c *profile.Curve, idx []int, lstar, n, m int) *Plan {
	cuts := make([]int, n)
	for i := range cuts {
		if i < m {
			cuts[i] = idx[lstar-1]
		} else {
			cuts[i] = idx[lstar]
		}
	}
	return planFromCuts(method, c, cuts)
}

// JPSBestMix is the exhaustive-mix ablation: same two candidate layers
// as JPS, but the split m is chosen by evaluating all n+1 mixes
// instead of the closed-form ratio. O(n²) overall; used to quantify
// how much the Theorem 5.3 rounding costs.
func JPSBestMix(c *profile.Curve, n int) (*Plan, error) {
	if n <= 0 {
		return nil, fmt.Errorf("core: JPSBestMix needs n >= 1, got %d", n)
	}
	r, idx := c.Restrict(c.ParetoCuts())
	search, err := BinarySearchCut(r)
	if err != nil {
		return nil, err
	}
	if search.Exact || search.LStar == 0 {
		return JPS(c, n)
	}
	prev, cur := idx[search.LStar-1], idx[search.LStar]
	var best *Plan
	for m := 0; m <= n; m++ {
		cuts := make([]int, n)
		for i := range cuts {
			if i < m {
				cuts[i] = prev
			} else {
				cuts[i] = cur
			}
		}
		p := planFromCuts("JPS-bestmix", c, cuts)
		if best == nil || p.Makespan < best.Makespan {
			best = p
		}
	}
	return best, nil
}

// PO is the partition-only baseline (the state-of-the-art single-DNN
// partition of Hu et al. [7], DADS): every job is cut at the layer
// minimizing its own end-to-end latency f(l) + g(l) + cloud(l), with
// no joint scheduling consideration. Jobs still execute in the natural
// pipelined FIFO order (all jobs identical, so ordering is moot).
func PO(c *profile.Curve, n int) (*Plan, error) {
	if n <= 0 {
		return nil, fmt.Errorf("core: PO needs n >= 1, got %d", n)
	}
	r, idx := c.Restrict(c.ParetoCuts())
	best, bestLat := 0, math.Inf(1)
	for i := 0; i < r.Len(); i++ {
		lat := r.F[i] + r.G[i] + r.CloudMs[i]
		if lat < bestLat {
			bestLat = lat
			best = i
		}
	}
	cuts := make([]int, n)
	for i := range cuts {
		cuts[i] = idx[best]
	}
	return planFromCuts("PO", c, cuts), nil
}

// CO is the cloud-only baseline: upload the raw input of every job.
func CO(c *profile.Curve, n int) (*Plan, error) {
	if n <= 0 {
		return nil, fmt.Errorf("core: CO needs n >= 1, got %d", n)
	}
	cuts := make([]int, n) // position 0 = input unit
	return planFromCuts("CO", c, cuts), nil
}

// LO is the local-only baseline: every job runs entirely on the mobile
// device.
func LO(c *profile.Curve, n int) (*Plan, error) {
	if n <= 0 {
		return nil, fmt.Errorf("core: LO needs n >= 1, got %d", n)
	}
	cuts := make([]int, n)
	for i := range cuts {
		cuts[i] = c.Len() - 1
	}
	return planFromCuts("LO", c, cuts), nil
}
