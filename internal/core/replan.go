package core

import (
	"fmt"

	"dnnjps/internal/netsim"
	"dnnjps/internal/profile"
)

// Replan re-runs the JPS planner for the n jobs that remain of a
// degraded run: the original curve is repriced at the channel the
// runtime actually measured (its G column recomputed from the cut
// tensor volumes) and planned afresh. The fault-tolerant runtime calls
// this when the measured uplink bandwidth falls past its re-plan
// threshold, then continues the surviving jobs under the new cuts.
func Replan(c *profile.Curve, measured netsim.Channel, n int) (*Plan, error) {
	if c == nil {
		return nil, fmt.Errorf("core: Replan needs a profiled curve, got nil")
	}
	if measured.UplinkMbps <= 0 {
		return nil, fmt.Errorf("core: Replan needs a positive bandwidth, got %g", measured.UplinkMbps)
	}
	p, err := JPS(c.Reprice(measured), n)
	if err != nil {
		return nil, err
	}
	p.Method = "JPS-replan"
	return p, nil
}

// ServerHint is the cloud-saturation signal a client distills from the
// backpressure flags the server piggybacks on reply frames (see the
// runtime's fleet scheduler): the mean server-side queue wait each
// offloaded job is currently paying.
type ServerHint struct {
	// QueueMs is the mean server-reported queue wait per reply, in ms.
	QueueMs float64
}

// ReplanWithHint is Replan with the server's backpressure hint folded
// in: after repricing at the measured channel, every offloaded cut's G
// is surcharged by the observed queue wait. The planner's objective is
// the two-stage (f, g) flow-shop makespan, so loading the queue delay
// onto the non-mobile stage is what actually moves the Theorem 5.3
// balance point — uniformly penalizing offloaded positions against the
// free local-only cut shifts cuts toward local compute, which is
// exactly the load response a saturating cloud asks its clients for.
func ReplanWithHint(c *profile.Curve, measured netsim.Channel, n int, hint ServerHint) (*Plan, error) {
	if c == nil {
		return nil, fmt.Errorf("core: ReplanWithHint needs a profiled curve, got nil")
	}
	if measured.UplinkMbps <= 0 {
		return nil, fmt.Errorf("core: ReplanWithHint needs a positive bandwidth, got %g", measured.UplinkMbps)
	}
	if hint.QueueMs < 0 {
		return nil, fmt.Errorf("core: ReplanWithHint needs a non-negative queue hint, got %g", hint.QueueMs)
	}
	cc := c.Reprice(measured)
	for i := 0; i < cc.Len()-1; i++ {
		cc.G[i] += hint.QueueMs
	}
	p, err := JPS(cc, n)
	if err != nil {
		return nil, err
	}
	p.Method = "JPS-replan-hint"
	return p, nil
}
