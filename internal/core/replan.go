package core

import (
	"fmt"

	"dnnjps/internal/netsim"
	"dnnjps/internal/profile"
)

// Replan re-runs the JPS planner for the n jobs that remain of a
// degraded run: the original curve is repriced at the channel the
// runtime actually measured (its G column recomputed from the cut
// tensor volumes) and planned afresh. The fault-tolerant runtime calls
// this when the measured uplink bandwidth falls past its re-plan
// threshold, then continues the surviving jobs under the new cuts.
func Replan(c *profile.Curve, measured netsim.Channel, n int) (*Plan, error) {
	if measured.UplinkMbps <= 0 {
		return nil, fmt.Errorf("core: Replan needs a positive bandwidth, got %g", measured.UplinkMbps)
	}
	p, err := JPS(c.Reprice(measured), n)
	if err != nil {
		return nil, err
	}
	p.Method = "JPS-replan"
	return p, nil
}
