package core

import (
	"testing"

	"dnnjps/internal/dag"
	"dnnjps/internal/models"
	"dnnjps/internal/netsim"
	"dnnjps/internal/nn"
	"dnnjps/internal/profile"
	"dnnjps/internal/tensor"
)

func devices() (profile.Device, profile.Device) {
	return profile.RaspberryPi4(), profile.CloudGPU()
}

// smallGeneral builds a 2-branch diamond whose branches have different
// weights, exercising per-path cuts.
func smallGeneral(t *testing.T) *dag.Graph {
	t.Helper()
	g := dag.New("diamond")
	in := g.Add(&nn.Input{LayerName: "input", Shape: tensor.NewCHW(3, 64, 64)})
	a1 := g.Add(&nn.Conv2D{LayerName: "a1", OutC: 16, KH: 3, KW: 3, Stride: 1, Pad: 1}, in)
	a2 := g.Add(nn.NewMaxPool2D("a2", 2, 2, 0), a1)
	b1 := g.Add(&nn.Conv2D{LayerName: "b1", OutC: 16, KH: 5, KW: 5, Stride: 2, Pad: 2}, in)
	j := g.Add(&nn.Add{LayerName: "join"}, a2, b1)
	g.Add(&nn.GlobalAvgPool2D{LayerName: "gap"}, j)
	if err := g.Finalize(); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	return g
}

func TestConvertToPathsSmall(t *testing.T) {
	g := smallGeneral(t)
	paths, err := convertToPaths(g, 0)
	if err != nil {
		t.Fatalf("convertToPaths: %v", err)
	}
	if len(paths) != 2 {
		t.Fatalf("got %d paths, want 2", len(paths))
	}
	assertPathsCoverGraph(t, g, paths)
}

func TestConvertToPathsHierarchical(t *testing.T) {
	g := models.MustBuild("googlenet") // 4^9 full paths: must go hierarchical
	paths, err := convertToPaths(g, 64)
	if err != nil {
		t.Fatalf("convertToPaths: %v", err)
	}
	if len(paths) != 4 {
		t.Fatalf("hierarchical conversion of GoogLeNet: %d paths, want 4 (max branch width)", len(paths))
	}
	assertPathsCoverGraph(t, g, paths)
	// Paths must be internally topo-ordered.
	pos := make(map[int]int)
	for i, id := range g.Topo() {
		pos[id] = i
	}
	for pi, p := range paths {
		for i := 1; i < len(p); i++ {
			if pos[p[i]] <= pos[p[i-1]] {
				t.Fatalf("path %d not topo-ordered at %d", pi, i)
			}
		}
	}
}

func assertPathsCoverGraph(t *testing.T, g *dag.Graph, paths [][]int) {
	t.Helper()
	covered := make(map[int]bool)
	for _, p := range paths {
		if len(p) == 0 {
			t.Fatal("empty path")
		}
		if p[0] != g.Source() || p[len(p)-1] != g.Sink() {
			t.Fatalf("path endpoints wrong: %v", p)
		}
		for _, id := range p {
			covered[id] = true
		}
	}
	for _, id := range g.Topo() {
		if !covered[id] {
			t.Errorf("node %q not covered by any path", g.Node(id).Layer.Name())
		}
	}
}

func TestPlanGeneralDiamond(t *testing.T) {
	g := smallGeneral(t)
	pi, gpu := devices()
	n := 4
	p, err := PlanGeneral(g, pi, gpu, netsim.FourG, tensor.Float32, n, 0)
	if err != nil {
		t.Fatalf("PlanGeneral: %v", err)
	}
	if len(p.Sequence) != n*len(p.Paths) {
		t.Errorf("sequence has %d path jobs, want %d", len(p.Sequence), n*len(p.Paths))
	}
	if len(p.CutNodes) != n {
		t.Errorf("cut sets for %d jobs, want %d", len(p.CutNodes), n)
	}
	for j, cuts := range p.CutNodes {
		if len(cuts) != len(p.Paths) {
			t.Errorf("job %d has %d cut nodes, want one per path", j, len(cuts))
		}
	}
	// Dedup: actual stage lengths never exceed nominal.
	for _, pj := range p.Sequence {
		if pj.ActualF > pj.F+1e-9 || pj.ActualG > pj.G+1e-9 {
			t.Errorf("dedup increased a stage: %+v", pj)
		}
	}
	if p.Makespan <= 0 {
		t.Error("non-positive makespan")
	}
	if p.AvgMs() != p.Makespan/float64(n) {
		t.Error("AvgMs mismatch")
	}
}

func TestPlanGeneralDedupSharedPrefix(t *testing.T) {
	// For one job, the shared prefix (the input node costs 0, but the
	// shared articulation chain in GoogLeNet's stem is expensive) must
	// be charged only once across that job's paths.
	g := models.MustBuild("googlenet")
	pi, gpu := devices()
	p, err := PlanGeneral(g, pi, gpu, netsim.WiFi, tensor.Float32, 1, 0)
	if err != nil {
		t.Fatalf("PlanGeneral: %v", err)
	}
	var actualF, actualG, nominalF, nominalG float64
	for _, pj := range p.Sequence {
		actualF += pj.ActualF
		actualG += pj.ActualG
		nominalF += pj.F
		nominalG += pj.G
	}
	// A single job can never compute more than the whole model once.
	if whole := pi.TotalTimeMs(g); actualF > whole+1e-6 {
		t.Errorf("job executed %g ms of compute, model total is %g", actualF, whole)
	}
	// Duplicated nominal totals must exceed the deduplicated actuals:
	// the four converted paths share at least the stem prefix (compute
	// side) or the same cut tensor (upload side), depending on where
	// the cuts land.
	if nominalF+nominalG <= actualF+actualG {
		t.Errorf("expected duplicated nominal work (%g) to exceed deduplicated actual (%g)",
			nominalF+nominalG, actualF+actualG)
	}
}

func TestPlanGeneralBestBeatsNaiveBaselines(t *testing.T) {
	g := models.MustBuild("googlenet")
	pi, gpu := devices()
	n := 20
	for _, ch := range netsim.Presets() {
		gp, err := PlanGeneralBest(g, pi, gpu, ch, tensor.Float32, n, 0)
		if err != nil {
			t.Fatalf("PlanGeneralBest@%s: %v", ch.Name, err)
		}
		curve := profile.BuildCurve(g, pi, gpu, ch, tensor.Float32)
		lo, _ := LO(curve, n)
		co, _ := CO(curve, n)
		if gp.Makespan > lo.Makespan+1e-6 {
			t.Errorf("%s: general-best JPS %g > LO %g", ch.Name, gp.Makespan, lo.Makespan)
		}
		if gp.Makespan > co.Makespan+1e-6 {
			t.Errorf("%s: general-best JPS %g > CO %g", ch.Name, gp.Makespan, co.Makespan)
		}
	}
	// And strictly better than LO somewhere (Wi-Fi at least): the
	// paper's GoogLeNet rows show large reductions.
	gpWifi, _ := PlanGeneralBest(g, pi, gpu, netsim.WiFi, tensor.Float32, n, 0)
	curve := profile.BuildCurve(g, pi, gpu, netsim.WiFi, tensor.Float32)
	lo, _ := LO(curve, n)
	if gpWifi.Makespan >= lo.Makespan {
		t.Errorf("general-best JPS %g shows no Wi-Fi gain over LO %g", gpWifi.Makespan, lo.Makespan)
	}
}

func TestPlanGeneralPureAlg3CaveatAt4G(t *testing.T) {
	// The paper's own caveat: per-path partitioning "omits the
	// potential collaboration opportunity" between paths. On GoogLeNet
	// at 4G, pure Alg. 3 pays one upload per path and loses to LO —
	// PlanGeneralBest exists precisely to absorb this case. Keep the
	// observation pinned so a regression in either direction is
	// noticed.
	g := models.MustBuild("googlenet")
	pi, gpu := devices()
	n := 20
	pure, err := PlanGeneral(g, pi, gpu, netsim.FourG, tensor.Float32, n, 0)
	if err != nil {
		t.Fatalf("PlanGeneral: %v", err)
	}
	best, err := PlanGeneralBest(g, pi, gpu, netsim.FourG, tensor.Float32, n, 0)
	if err != nil {
		t.Fatalf("PlanGeneralBest: %v", err)
	}
	if best.Makespan > pure.Makespan+1e-6 {
		t.Errorf("best (%g) must never exceed pure Alg. 3 (%g)", best.Makespan, pure.Makespan)
	}
}

func TestPlanGeneralRejectsBadN(t *testing.T) {
	g := smallGeneral(t)
	pi, gpu := devices()
	if _, err := PlanGeneral(g, pi, gpu, netsim.WiFi, tensor.Float32, 0, 0); err == nil {
		t.Error("n=0 must error")
	}
}

func TestPlanGeneralOnLineGraphMatchesLineJPS(t *testing.T) {
	// A line DNN has exactly one path; Alg. 3 must degenerate to the
	// line planner's two-point solution space.
	g := models.MustBuild("alexnet")
	pi, gpu := devices()
	n := 8
	gp, err := PlanGeneral(g, pi, gpu, netsim.FourG, tensor.Float32, n, 0)
	if err != nil {
		t.Fatalf("PlanGeneral: %v", err)
	}
	if len(gp.Paths) != 1 {
		t.Fatalf("AlexNet converted to %d paths, want 1", len(gp.Paths))
	}
	curve := profile.BuildCurve(g, pi, gpu, netsim.FourG, tensor.Float32)
	jps, _ := JPS(curve, n)
	if diff := gp.Makespan - jps.Makespan; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("general plan %g != line JPS %g on a line DNN", gp.Makespan, jps.Makespan)
	}
}

func TestPlanGeneralInceptionV4(t *testing.T) {
	g := models.MustBuild("inceptionv4")
	pi, gpu := devices()
	n := 10
	gp, err := PlanGeneralBest(g, pi, gpu, netsim.WiFi, tensor.Float32, n, 0)
	if err != nil {
		t.Fatalf("PlanGeneralBest: %v", err)
	}
	curve := profile.BuildCurve(g, pi, gpu, netsim.WiFi, tensor.Float32)
	lo, _ := LO(curve, n)
	if gp.Makespan >= lo.Makespan {
		t.Errorf("inception-v4 general plan %g shows no Wi-Fi gain over LO %g", gp.Makespan, lo.Makespan)
	}
	// The hierarchical conversion must cover nested Inception-C
	// branch splits (6-way regions).
	pure, err := PlanGeneral(g, pi, gpu, netsim.WiFi, tensor.Float32, 2, 0)
	if err != nil {
		t.Fatalf("PlanGeneral: %v", err)
	}
	if len(pure.Paths) < 4 {
		t.Errorf("converted to %d paths, want >= 4 (widest region is 6-way)", len(pure.Paths))
	}
	assertPathsCoverGraph(t, g, pure.Paths)
}
