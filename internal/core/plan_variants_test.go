package core

import (
	"math/rand"
	"testing"

	"dnnjps/internal/profile"
)

func TestJPSPlusVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 60; trial++ {
		c := synthCurve(rng, 4+rng.Intn(8))
		n := 1 + rng.Intn(10)
		plus, err := JPSPlus(c, n)
		if err != nil {
			t.Fatal(err)
		}
		if plus.Method != "JPS+" {
			t.Fatalf("method = %q", plus.Method)
		}
		jps, err := JPS(c, n)
		if err != nil {
			t.Fatal(err)
		}
		// JPS+ searches a superset of JPS's candidate plans.
		if plus.Makespan > jps.Makespan+1e-9 {
			t.Fatalf("trial %d: JPS+ %g worse than JPS %g", trial, plus.Makespan, jps.Makespan)
		}
		paper, err := JPSPaperRatio(c, n)
		if err != nil {
			t.Fatal(err)
		}
		// JPS evaluates the paper's split among its candidates, so it
		// can never lose to the literal rule.
		if jps.Makespan > paper.Makespan+1e-9 {
			t.Fatalf("trial %d: JPS %g worse than paper ratio %g", trial, jps.Makespan, paper.Makespan)
		}
	}
}

func TestJPSPaperRatioFig2(t *testing.T) {
	// On the Fig. 2 example the ratio is 2 (>= 1), so the literal rule
	// and the balanced split agree: makespan 13.
	p, err := JPSPaperRatio(fig2Curve(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.Makespan != 13 {
		t.Errorf("paper-ratio makespan = %g, want 13", p.Makespan)
	}
	if p.Method != "JPS-paper-ratio" {
		t.Errorf("method = %q", p.Method)
	}
}

func TestJPSPaperRatioDegradesWhenRatioBelowOne(t *testing.T) {
	// Curve where the true ratio is ~0.19: the floor sends every job
	// to l*, which is measurably worse than the balanced split.
	c := synthCurveFixed()
	n := 40
	paper, err := JPSPaperRatio(c, n)
	if err != nil {
		t.Fatal(err)
	}
	bal, err := JPS(c, n)
	if err != nil {
		t.Fatal(err)
	}
	if bal.Makespan >= paper.Makespan {
		t.Errorf("expected balanced (%g) to strictly beat floored ratio (%g) here",
			bal.Makespan, paper.Makespan)
	}
}

// synthCurveFixed has f(l*)-g(l*) small relative to g(l*-1)-f(l*-1),
// i.e. ratio < 1.
func synthCurveFixed() *profile.Curve {
	return &profile.Curve{
		Model:   "ratio-below-one",
		F:       []float64{0, 10, 100, 140},
		G:       []float64{200, 90, 85, 0},
		CloudMs: make([]float64, 4),
		Bytes:   []int{2000, 900, 850, 0},
		Labels:  make([]string, 4),
	}
}

func TestVariantsRejectBadN(t *testing.T) {
	c := fig2Curve()
	if _, err := JPSPlus(c, 0); err == nil {
		t.Error("JPSPlus(0) must error")
	}
	if _, err := JPSPaperRatio(c, 0); err == nil {
		t.Error("JPSPaperRatio(0) must error")
	}
}
