package core

import (
	"fmt"

	"dnnjps/internal/dag"
	"dnnjps/internal/flowshop"
	"dnnjps/internal/netsim"
	"dnnjps/internal/profile"
	"dnnjps/internal/tensor"
)

// PathJob is one scheduled unit of a general-structure plan: job j's
// slice of path p, cut after the path's Cut-th node. F and G are the
// nominal stage lengths (duplicated prefix nodes fully counted, as in
// the paper's Alg. 1 application); ActualF and ActualG are the
// deduplicated values realized in the schedule (duplicated nodes
// executed/uploaded once per job, per the paper's modified Alg. 1).
type PathJob struct {
	Job, Path, Cut   int
	F, G             float64
	ActualF, ActualG float64
}

// GeneralPlan is the Algorithm 3 result for n identical jobs on a
// general-structure DNN.
type GeneralPlan struct {
	Method string
	// Paths holds the independent paths of the converted DAG (full
	// Fig. 9 conversion when small, hierarchical otherwise).
	Paths [][]int
	// Sequence is the Johnson-ordered schedule of all n×|Paths| path
	// jobs, with deduplicated stage lengths filled in.
	Sequence []PathJob
	// Makespan is the two-stage makespan of the deduplicated schedule.
	Makespan float64
	// CutNodes[j] lists the cut node of each path for job j (the
	// partition set P_j of §3.1).
	CutNodes [][]int
}

// AvgMs is Makespan divided by the number of jobs.
func (p *GeneralPlan) AvgMs() float64 {
	if len(p.CutNodes) == 0 {
		return 0
	}
	return p.Makespan / float64(len(p.CutNodes))
}

// convertToPaths performs the Fig. 9 conversion: the exact all-paths
// expansion when the DAG is small enough, otherwise the hierarchical
// series-parallel form where each parallel region contributes its
// branches round-robin across max-width paths (every node is covered;
// see DESIGN.md §4).
func convertToPaths(g *dag.Graph, limit int) ([][]int, error) {
	if limit <= 0 {
		limit = 64
	}
	if g.CountPaths() <= limit {
		return g.AllPaths(limit)
	}
	segs, err := g.Decompose(0)
	if err != nil {
		return nil, err
	}
	width := 1
	for _, s := range segs {
		if s.IsParallel() && len(s.Branches) > width {
			width = len(s.Branches)
		}
	}
	paths := make([][]int, width)
	for _, s := range segs {
		if !s.IsParallel() {
			for p := range paths {
				paths[p] = append(paths[p], s.Node)
			}
			continue
		}
		for p := range paths {
			br := s.Branches[p%len(s.Branches)]
			paths[p] = append(paths[p], br...)
		}
	}
	return paths, nil
}

// PlanGeneral is Algorithm 3: convert the DAG to independent paths,
// find each path's cut with Algorithm 2 (mixing the two adjacent
// candidates across jobs at the Theorem 5.3 ratio), then schedule all
// n×|Paths| path jobs with Johnson's rule, counting duplicated nodes
// once when executed.
func PlanGeneral(g *dag.Graph, mobile, cloud profile.Device, ch netsim.Channel, dt tensor.DType, n, pathLimit int) (*GeneralPlan, error) {
	if n <= 0 {
		return nil, fmt.Errorf("core: PlanGeneral needs n >= 1, got %d", n)
	}
	paths, err := convertToPaths(g, pathLimit)
	if err != nil {
		return nil, err
	}

	// Per-path Algorithm 2 on the path's own Pareto-restricted curve.
	type pathPlan struct {
		curve  *profile.Curve // restricted
		idx    []int          // restricted -> path position
		search CutSearch
	}
	plans := make([]pathPlan, len(paths))
	for pi, path := range paths {
		full := profile.PathCurve(g, path, mobile, cloud, ch, dt)
		r, idx := full.Restrict(full.ParetoCuts())
		search, err := BinarySearchCut(r)
		if err != nil {
			return nil, fmt.Errorf("core: path %d: %w", pi, err)
		}
		plans[pi] = pathPlan{curve: r, idx: idx, search: search}
	}

	// evaluate builds and replays the joint schedule for a given
	// "jobs cut at l*-1" count per path.
	evaluate := func(splits []int) *GeneralPlan {
		var jobs []PathJob
		cutNodes := make([][]int, n)
		for j := 0; j < n; j++ {
			cutNodes[j] = make([]int, len(paths))
		}
		for pi := range paths {
			pp := plans[pi]
			for j := 0; j < n; j++ {
				pos := pp.search.LStar
				if !pp.search.Exact && pp.search.LStar > 0 && j < splits[pi] {
					pos = pp.search.LStar - 1
				}
				cutPathPos := pp.idx[pos]
				cutNodes[j][pi] = paths[pi][cutPathPos]
				jobs = append(jobs, PathJob{
					Job:  j,
					Path: pi,
					Cut:  cutPathPos,
					F:    pp.curve.F[pos],
					G:    pp.curve.G[pos],
				})
			}
		}

		// Johnson's rule over the nominal (f, g) of every path job,
		// duplicated nodes included — exactly the paper's Alg. 1 call.
		fsJobs := make([]flowshop.Job, len(jobs))
		for i, pj := range jobs {
			fsJobs[i] = flowshop.Job{ID: i, A: pj.F, B: pj.G}
		}
		order := flowshop.Johnson(fsJobs)

		// Replay the sequence with per-job deduplication: a node
		// already executed (or a tensor already uploaded) by an
		// earlier path of the same job is counted once — the paper's
		// modified Alg. 1.
		executed := make([]map[int]bool, n)
		uploaded := make([]map[int]bool, n)
		for j := 0; j < n; j++ {
			executed[j] = make(map[int]bool)
			uploaded[j] = make(map[int]bool)
		}
		seq := make([]PathJob, 0, len(order))
		actual := make([]flowshop.Job, 0, len(order))
		for _, fj := range order {
			pj := jobs[fj.ID]
			path := paths[pj.Path]
			var a float64
			for _, id := range path[:pj.Cut+1] {
				if !executed[pj.Job][id] {
					executed[pj.Job][id] = true
					a += mobile.LayerTimeMs(g, id)
				}
			}
			var b float64
			cutNode := path[pj.Cut]
			if pj.Cut < len(path)-1 && !uploaded[pj.Job][cutNode] {
				uploaded[pj.Job][cutNode] = true
				b = ch.TxMs(g.OutBytes(cutNode, dt))
			}
			pj.ActualF, pj.ActualG = a, b
			seq = append(seq, pj)
			actual = append(actual, flowshop.Job{ID: fj.ID, A: a, B: b})
		}

		return &GeneralPlan{
			Method:   "JPS-general",
			Paths:    paths,
			Sequence: seq,
			Makespan: flowshop.Makespan(actual),
			CutNodes: cutNodes,
		}
	}

	// Coordinate descent over the two balanced-split candidates of
	// each path (one pass): for a single path this is exactly the line
	// planner's two-candidate evaluation.
	splits := make([]int, len(paths))
	alts := make([]int, len(paths))
	for pi, pp := range plans {
		if !pp.search.Exact && pp.search.LStar > 0 {
			splits[pi], alts[pi] = BalancedSplit(pp.curve, pp.search.LStar, n)
		}
	}
	best := evaluate(splits)
	for pi := range paths {
		if alts[pi] == splits[pi] {
			continue
		}
		trial := append([]int(nil), splits...)
		trial[pi] = alts[pi]
		if cand := evaluate(trial); cand.Makespan < best.Makespan {
			best = cand
			splits = trial
		}
	}
	return best, nil
}

// PlanGeneralBest plans a general-structure DNN the way a deployed
// scheduler would: it evaluates the Algorithm 3 per-path plan, the
// virtual-block line-view JPS plan, and the trivial LO/CO plans, and
// returns the one with the smallest estimated makespan. The paper
// notes Alg. 3 "omits the potential collaboration opportunity between
// paths"; at low bandwidths its per-path uploads can lose to simply
// running locally, and this selector absorbs that case.
func PlanGeneralBest(g *dag.Graph, mobile, cloud profile.Device, ch netsim.Channel, dt tensor.DType, n, pathLimit int) (*GeneralPlan, error) {
	gp, err := PlanGeneral(g, mobile, cloud, ch, dt, n, pathLimit)
	if err != nil {
		return nil, err
	}
	curve := profile.BuildCurve(g, mobile, cloud, ch, dt)
	type linePlanner struct {
		name string
		fn   func(*profile.Curve, int) (*Plan, error)
	}
	for _, lp := range []linePlanner{{"JPS-line", JPS}, {"LO", LO}, {"CO", CO}} {
		p, err := lp.fn(curve, n)
		if err != nil {
			return nil, err
		}
		if p.Makespan < gp.Makespan {
			gp = generalFromLinePlan(g, curve, p, lp.name)
		}
	}
	return gp, nil
}

// generalFromLinePlan lifts a line-view plan into the GeneralPlan
// shape so callers get a uniform result type.
func generalFromLinePlan(g *dag.Graph, curve *profile.Curve, p *Plan, name string) *GeneralPlan {
	units := profile.LineView(g)
	n := len(p.Cuts)
	cutNodes := make([][]int, n)
	for j, cut := range p.Cuts {
		cutNodes[j] = []int{units[cut].Exit}
	}
	seq := make([]PathJob, len(p.Sequence))
	for i, fj := range p.Sequence {
		seq[i] = PathJob{
			Job: fj.ID, Path: 0, Cut: p.Cuts[fj.ID],
			F: fj.A, G: fj.B, ActualF: fj.A, ActualG: fj.B,
		}
	}
	return &GeneralPlan{
		Method:   "JPS-general/" + name,
		Paths:    [][]int{unitExits(units)},
		Sequence: seq,
		Makespan: p.Makespan,
		CutNodes: cutNodes,
	}
}

func unitExits(units []profile.Unit) []int {
	out := make([]int, len(units))
	for i, u := range units {
		out[i] = u.Exit
	}
	return out
}
