package core

import (
	"errors"
	"math"
	"testing"

	"dnnjps/internal/flowshop"
	"dnnjps/internal/models"
	"dnnjps/internal/netsim"
	"dnnjps/internal/profile"
	"dnnjps/internal/tensor"
)

func fourTierChain() Chain {
	pi, gpu := devices()
	return Chain{
		Devices: []profile.Device{pi, gpu.Scaled(0.1), gpu.Scaled(0.4), gpu},
		Links: []netsim.Channel{
			netsim.FourG,
			{Name: "metro", UplinkMbps: 60, SetupMs: 5},
			{Name: "backbone", UplinkMbps: 200, SetupMs: 2},
		},
		DType: tensor.Float32,
	}
}

func TestChainValidate(t *testing.T) {
	pi, gpu := devices()
	good := TwoTierChain(pi, gpu, netsim.FourG, tensor.Float32)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid chain rejected: %v", err)
	}
	cases := map[string]Chain{
		"one device":     {Devices: good.Devices[:1], DType: tensor.Float32},
		"missing link":   {Devices: []profile.Device{pi, gpu, gpu}, Links: good.Links, DType: tensor.Float32},
		"zero bandwidth": {Devices: good.Devices, Links: []netsim.Channel{{Name: "dead"}}, DType: tensor.Float32},
		"nan bandwidth": {Devices: good.Devices,
			Links: []netsim.Channel{{Name: "nan", UplinkMbps: math.NaN()}}, DType: tensor.Float32},
		"inf setup": {Devices: good.Devices,
			Links: []netsim.Channel{{Name: "inf", UplinkMbps: 10, SetupMs: math.Inf(1)}}, DType: tensor.Float32},
		"nan downlink": {Devices: good.Devices,
			Links: []netsim.Channel{{Name: "dl", UplinkMbps: 10, DownlinkMbps: math.NaN()}}, DType: tensor.Float32},
	}
	for name, ch := range cases {
		if err := ch.Validate(); err == nil {
			t.Errorf("%s: Validate must reject", name)
		}
		if _, err := JPSChain(models.MustBuild("alexnet"), ch, 2); err == nil {
			t.Errorf("%s: JPSChain must reject", name)
		}
	}
}

// Parity (acceptance): on a 2-cut chain JPSChain must reproduce
// JPSThreeTier EXACTLY — same cuts, bit-identical makespan, same
// schedule order — because it is the same search expressed generically.
func TestJPSChainMatchesThreeTier(t *testing.T) {
	env := threeTierEnv()
	for _, model := range []string{"alexnet", "resnet18", "mobilenetv2"} {
		for _, n := range []int{1, 3, 8, 20} {
			g := models.MustBuild(model)
			want, err := JPSThreeTier(g, env, n)
			if err != nil {
				t.Fatal(err)
			}
			got, err := JPSChain(g, env.Chain(), n)
			if err != nil {
				t.Fatal(err)
			}
			if got.Makespan != want.Makespan {
				t.Fatalf("%s n=%d: chain makespan %v != three-tier %v (must be bit-identical)",
					model, n, got.Makespan, want.Makespan)
			}
			for i := range got.Cuts {
				if got.Cuts[i][0] != want.CutsLow[i] || got.Cuts[i][1] != want.CutsHigh[i] {
					t.Fatalf("%s n=%d job %d: cuts %v != (%d,%d)",
						model, n, i, got.Cuts[i], want.CutsLow[i], want.CutsHigh[i])
				}
			}
			for i, j := range got.Sequence {
				w := want.Sequence[i]
				if j.ID != w.ID || j.Stages[0] != w.A || j.Stages[1] != w.B || j.Stages[2] != w.C {
					t.Fatalf("%s n=%d pos %d: sequence diverged: %+v vs %+v", model, n, i, j, w)
				}
			}
			if got.AvgMs() != want.AvgMs() {
				t.Fatalf("%s n=%d: AvgMs diverged", model, n)
			}
		}
	}
}

// Parity (acceptance): on a 1-cut chain JPSChain must reproduce the
// paper's two-tier JPS exactly, reply pricing and all.
func TestJPSChainMatchesTwoTierJPS(t *testing.T) {
	pi, gpu := devices()
	for _, model := range []string{"alexnet", "resnet18"} {
		for _, link := range []netsim.Channel{netsim.ThreeG, netsim.WiFi, netsim.FourG.WithDownlink(5)} {
			g := models.MustBuild(model)
			curve := profile.BuildCurve(g, pi, gpu, link, tensor.Float32)
			want, err := JPS(curve, 12)
			if err != nil {
				t.Fatal(err)
			}
			got, err := JPSChain(g, TwoTierChain(pi, gpu, link, tensor.Float32), 12)
			if err != nil {
				t.Fatal(err)
			}
			if got.Makespan != want.Makespan {
				t.Fatalf("%s/%s: chain %v != JPS %v", model, link.Name, got.Makespan, want.Makespan)
			}
			for i := range got.Cuts {
				if got.Cuts[i][0] != want.Cuts[i] {
					t.Fatalf("%s/%s job %d: cut %d != %d", model, link.Name, i, got.Cuts[i][0], want.Cuts[i])
				}
			}
		}
	}
}

// Parity: OneCutChain on a 3-device chain is TwoTierAsThreeTier.
func TestOneCutChainMatchesTwoTierAsThreeTier(t *testing.T) {
	env := threeTierEnv()
	g := models.MustBuild("alexnet")
	want, err := TwoTierAsThreeTier(g, env, 15)
	if err != nil {
		t.Fatal(err)
	}
	got, err := OneCutChain(g, env.Chain(), 15)
	if err != nil {
		t.Fatal(err)
	}
	if got.Makespan != want.Makespan {
		t.Fatalf("1-cut chain %v != TwoTierAsThreeTier %v", got.Makespan, want.Makespan)
	}
	for i := range got.Cuts {
		if got.Cuts[i][0] != want.CutsLow[i] || got.Cuts[i][1] != want.CutsHigh[i] {
			t.Fatalf("job %d: cuts %v != (%d,%d)", i, got.Cuts[i], want.CutsLow[i], want.CutsHigh[i])
		}
	}
}

// Degenerate grid (bugfix sweep): every tuple shape — all cuts equal,
// cuts at 0, cuts at the end, empty middle segments — must price to
// finite non-negative stages with zero transmission for end cuts, and
// empty plans must report AvgMs 0 rather than NaN.
func TestChainDegenerateGrid(t *testing.T) {
	g := models.MustBuild("alexnet")
	ch := fourTierChain()
	c := buildChainCurves(g, ch)
	end := c.n - 1
	grid := [][]int{
		{0, 0, 0},           // everything remote, three pass-through hops
		{end, end, end},     // fully local: all links must price to 0
		{0, 0, end},         // empty first segments, last link free
		{0, end, end},       // device 1 does all the work
		{3, 3, 3},           // one real cut, two pass-throughs
		{0, 3, end},         // one empty middle, one free tail
		{end / 2, end, end}, // lo==mid boundary
	}
	for _, cuts := range grid {
		st := c.stagesFor(cuts)
		if len(st) != len(cuts)+1 {
			t.Fatalf("cuts %v: %d stages", cuts, len(st))
		}
		for l, s := range st {
			if math.IsNaN(s) || math.IsInf(s, 0) || s < 0 {
				t.Errorf("cuts %v stage %d: unusable value %g", cuts, l, s)
			}
		}
		for l, cut := range cuts {
			if cut == end && st[l+1] != 0 {
				t.Errorf("cuts %v: link %d must be free for an end cut, got %g", cuts, l, st[l+1])
			}
		}
		for dev := 1; dev < len(ch.Devices); dev++ {
			if ms := c.segmentComputeMs(dev, cuts); math.IsNaN(ms) || ms < 0 {
				t.Errorf("cuts %v device %d: segment compute %g", cuts, dev, ms)
			}
		}
	}
	empty := &ChainPlan{}
	if got := empty.AvgMs(); got != 0 {
		t.Errorf("empty ChainPlan AvgMs = %g, want 0", got)
	}
	empty3 := &ThreeTierPlan{}
	if got := empty3.AvgMs(); got != 0 {
		t.Errorf("empty ThreeTierPlan AvgMs = %g, want 0", got)
	}
}

// The same degenerate sweep on the original three-tier stagesFor: the
// k-way enumerator inherits these semantics, so they are pinned here
// against the legacy implementation too.
func TestThreeTierStagesForDegenerate(t *testing.T) {
	g := models.MustBuild("alexnet")
	c := buildThreeTierCurves(g, threeTierEnv())
	end := len(c.f) - 1
	for _, tc := range [][2]int{{0, 0}, {0, end}, {end, end}, {3, 3}, {3, end}, {0, 3}} {
		a, b, cc := c.stagesFor(tc[0], tc[1])
		for _, v := range []float64{a, b, cc} {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				t.Errorf("stagesFor(%d,%d): unusable stage %g", tc[0], tc[1], v)
			}
		}
		if tc[0] == end && b != 0 {
			t.Errorf("stagesFor(%d,%d): uplink must be free at the end, got %g", tc[0], tc[1], b)
		}
		if tc[1] == end && cc != 0 {
			t.Errorf("stagesFor(%d,%d): backhaul must be free at the end, got %g", tc[0], tc[1], cc)
		}
	}
}

// n=0 and bad chains error instead of planning.
func TestChainRejectsBadN(t *testing.T) {
	g := models.MustBuild("alexnet")
	ch := fourTierChain()
	for _, f := range []func() error{
		func() error { _, err := JPSChain(g, ch, 0); return err },
		func() error { _, err := OneCutChain(g, ch, 0); return err },
		func() error { _, err := ChainBruteForce(g, ch, 0, 0); return err },
	} {
		if f() == nil {
			t.Error("n=0 must error")
		}
	}
	if _, err := ChainBruteForce(g, ch, 40, 10); !errors.Is(err, ErrSearchSpaceTooLarge) {
		t.Errorf("tiny budget must overflow, got %v", err)
	}
}

// Optimality chain on real models: the brute-force baseline can never
// lose to the heuristic planner, and the k-way planner can never lose
// to the single-cut baseline (it searches a superset).
func TestChainOptimalityOrder(t *testing.T) {
	env := threeTierEnv()
	ch := env.Chain()
	g := models.MustBuild("alexnet")
	const eps = 1e-9
	for _, n := range []int{1, 2, 3, 4} {
		jps, err := JPSChain(g, ch, n)
		if err != nil {
			t.Fatal(err)
		}
		one, err := OneCutChain(g, ch, n)
		if err != nil {
			t.Fatal(err)
		}
		bf, err := ChainBruteForce(g, ch, n, 0)
		if err != nil {
			t.Fatal(err)
		}
		if bf.Makespan > jps.Makespan+eps {
			t.Errorf("n=%d: BF %.6f > JPSChain %.6f", n, bf.Makespan, jps.Makespan)
		}
		if jps.Makespan > one.Makespan+eps {
			t.Errorf("n=%d: JPSChain %.6f > 1-cut %.6f", n, jps.Makespan, one.Makespan)
		}
		if recomputed := flowshop.MakespanM(jps.Sequence); recomputed != jps.Makespan {
			t.Errorf("n=%d: stored makespan %g != recomputed %g", n, jps.Makespan, recomputed)
		}
	}
}

// A 4-device chain plans end to end, cut tuples stay non-decreasing,
// and intermediate compute stays bounded (validated, not scheduled).
func TestChainFourTier(t *testing.T) {
	g := models.MustBuild("resnet18")
	ch := fourTierChain()
	n := 12
	p, err := JPSChain(g, ch, n)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Cuts) != n || len(p.Sequence) != n {
		t.Fatalf("plan sizes %d/%d", len(p.Cuts), len(p.Sequence))
	}
	c := buildChainCurves(g, ch)
	for i, cuts := range p.Cuts {
		if len(cuts) != 3 {
			t.Fatalf("job %d: %d cuts, want 3", i, len(cuts))
		}
		for l := 1; l < len(cuts); l++ {
			if cuts[l] < cuts[l-1] {
				t.Errorf("job %d: decreasing cuts %v", i, cuts)
			}
		}
		for dev := 1; dev < len(ch.Devices); dev++ {
			if ms := c.segmentComputeMs(dev, cuts); ms > p.Makespan {
				t.Errorf("job %d device %d: unscheduled compute %.1fms exceeds makespan %.1fms",
					i, dev, ms, p.Makespan)
			}
		}
	}
}

// Random-curve property sweep (the Thm 5.3 analogue for chains): build
// synthetic three-tier envs over a grid of link speeds and check the
// chain planner tracks JPSThreeTier exactly on every one — broader
// evidence than the fixed-env parity test above.
func TestPropertyChainThreeTierParity(t *testing.T) {
	pi, gpu := devices()
	g := models.MustBuild("mobilenetv2")
	for _, up := range []netsim.Channel{netsim.ThreeG, netsim.FourG, netsim.WiFi} {
		for _, backMbps := range []float64{2, 20, 200} {
			env := ThreeTierEnv{
				Mobile: pi, Edge: gpu.Scaled(0.2), Cloud: gpu,
				Uplink:   up,
				Backhaul: netsim.Channel{Name: "bh", UplinkMbps: backMbps, SetupMs: 4},
				DType:    tensor.Float32,
			}
			for _, n := range []int{2, 9} {
				want, err := JPSThreeTier(g, env, n)
				if err != nil {
					t.Fatal(err)
				}
				got, err := JPSChain(g, env.Chain(), n)
				if err != nil {
					t.Fatal(err)
				}
				if got.Makespan != want.Makespan {
					t.Fatalf("up=%s back=%g n=%d: %v != %v",
						up.Name, backMbps, n, got.Makespan, want.Makespan)
				}
			}
		}
	}
}

// Planning-cost benchmarks for benchgate's within-run ratio: the
// generic k-way path at depth 2 vs the hardcoded three-tier planner on
// the same instance.
func BenchmarkChainPlanning(b *testing.B) {
	g := models.MustBuild("alexnet")
	env := threeTierEnv()
	ch := env.Chain()
	b.Run("threetier", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := JPSThreeTier(g, env, 20); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("kway", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := JPSChain(g, ch, 20); err != nil {
				b.Fatal(err)
			}
		}
	})
}
