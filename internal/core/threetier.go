package core

// Three-tier offloading — the fog-computing extension the paper cites
// through Mohammed et al. [15]: a job is split into THREE parts
// (mobile, edge, cloud) by two cuts l1 ≤ l2. The mobile computes
// layers ≤ l1, ships the cut tensor to the edge over the wireless
// uplink, the edge computes layers (l1, l2] and ships the (smaller)
// tensor onward over its backhaul, and the cloud finishes. With
// per-job stages (f_mobile, g_uplink, g_backhaul) the schedule is a
// three-machine permutation flow shop, sequenced by the CDS heuristic
// (flowshop.CDS). Edge and cloud compute stay negligible as in the
// two-tier model and are validated, not scheduled.

import (
	"fmt"

	"dnnjps/internal/dag"
	"dnnjps/internal/flowshop"
	"dnnjps/internal/netsim"
	"dnnjps/internal/profile"
	"dnnjps/internal/tensor"
)

// ThreeTierEnv fixes the devices and the two links of the three-tier
// topology.
type ThreeTierEnv struct {
	Mobile profile.Device
	Edge   profile.Device
	Cloud  profile.Device
	// Uplink is the wireless mobile→edge channel; Backhaul the
	// edge→cloud link (typically wired: faster, lower setup cost).
	Uplink   netsim.Channel
	Backhaul netsim.Channel
	DType    tensor.DType
}

// ThreeTierPlan is a joint two-cut partition plus CDS schedule for n
// identical jobs.
type ThreeTierPlan struct {
	Method string
	// CutsLow[i] and CutsHigh[i] are job i's mobile/edge and
	// edge/cloud cut positions on the line view (CutsLow <= CutsHigh).
	CutsLow, CutsHigh []int
	Sequence          []flowshop.Job3
	Makespan          float64
}

// AvgMs is Makespan / n.
func (p *ThreeTierPlan) AvgMs() float64 {
	if len(p.CutsLow) == 0 {
		return 0
	}
	return p.Makespan / float64(len(p.CutsLow))
}

// threeTierCurves profiles the model once per tier boundary.
type threeTierCurves struct {
	// f[i]: cumulative mobile ms through position i (mobile device).
	f []float64
	// fe[i]: cumulative ms through position i on the edge device.
	fe []float64
	// upMs[i]: uplink time of the tensor at position i (0 at the end).
	upMs []float64
	// backMs[i]: backhaul time of the tensor at position i.
	backMs []float64
	pareto []int
}

func buildThreeTierCurves(g *dag.Graph, env ThreeTierEnv) *threeTierCurves {
	mobileCurve := profile.BuildCurve(g, env.Mobile, env.Cloud, env.Uplink, env.DType)
	edgeCurve := profile.BuildCurve(g, env.Edge, env.Cloud, env.Backhaul, env.DType)
	n := mobileCurve.Len()
	c := &threeTierCurves{
		f:      mobileCurve.F,
		fe:     edgeCurve.F,
		upMs:   make([]float64, n),
		backMs: make([]float64, n),
		pareto: mobileCurve.ParetoCuts(),
	}
	for i := 0; i < n; i++ {
		c.upMs[i] = env.Uplink.TxMs(mobileCurve.Bytes[i])
		c.backMs[i] = env.Backhaul.TxMs(mobileCurve.Bytes[i])
	}
	return c
}

// stagesFor evaluates one job's three stages for cuts (lo, hi):
// mobile compute through lo, uplink of tensor(lo), backhaul of
// tensor(hi). Edge compute (fe[hi]-fe[lo]) is not a scheduled stage —
// each job has its own edge executor in this topology — but callers
// can bound it for validation.
func (c *threeTierCurves) stagesFor(lo, hi int) (a, b, cc float64) {
	a = c.f[lo]
	b = c.upMs[lo]
	cc = c.backMs[hi]
	if hi == len(c.f)-1 {
		cc = 0 // everything through the end ran on the edge; result stays
	}
	if lo == hi {
		// Degenerate middle: nothing on the edge; the tensor goes
		// straight through (still paying both hops unless hi is the
		// end).
		cc = c.backMs[hi]
		if hi == len(c.f)-1 {
			cc = 0
		}
	}
	return a, b, cc
}

// JPSThreeTier jointly picks two cuts and a CDS schedule: it searches
// candidate (lo, hi) Pareto pairs with lo <= hi, mixes the best two
// pair choices across jobs (coordinate descent as elsewhere), and
// schedules with CDS. The search space is O(k²) pairs — model-sized k
// keeps this in microseconds.
func JPSThreeTier(g *dag.Graph, env ThreeTierEnv, n int) (*ThreeTierPlan, error) {
	if n <= 0 {
		return nil, fmt.Errorf("core: JPSThreeTier needs n >= 1, got %d", n)
	}
	c := buildThreeTierCurves(g, env)

	// Rank homogeneous pairs by single-pair steady-state cost
	// max(a, b, cc) and keep the best few as mixing candidates.
	type pair struct {
		lo, hi int
		peak   float64
	}
	var pairs []pair
	for _, lo := range c.pareto {
		for _, hi := range c.pareto {
			if hi < lo {
				continue
			}
			a, b, cc := c.stagesFor(lo, hi)
			peak := a
			if b > peak {
				peak = b
			}
			if cc > peak {
				peak = cc
			}
			pairs = append(pairs, pair{lo: lo, hi: hi, peak: peak})
		}
	}
	// Select the best candidate pairs by peak stage (the asymptotic
	// average makespan driver).
	bestIdx, secondIdx := 0, 0
	for i, p := range pairs {
		if p.peak < pairs[bestIdx].peak {
			secondIdx = bestIdx
			bestIdx = i
		} else if p.peak < pairs[secondIdx].peak || secondIdx == bestIdx {
			if i != bestIdx {
				secondIdx = i
			}
		}
	}

	evaluate := func(mixAt int) *ThreeTierPlan {
		plan := &ThreeTierPlan{
			Method:   "JPS-3tier",
			CutsLow:  make([]int, n),
			CutsHigh: make([]int, n),
		}
		jobs := make([]flowshop.Job3, n)
		for i := 0; i < n; i++ {
			p := pairs[bestIdx]
			if i < mixAt {
				p = pairs[secondIdx]
			}
			plan.CutsLow[i], plan.CutsHigh[i] = p.lo, p.hi
			a, b, cc := c.stagesFor(p.lo, p.hi)
			jobs[i] = flowshop.Job3{ID: i, A: a, B: b, C: cc}
		}
		plan.Sequence = flowshop.Schedule3(jobs)
		plan.Makespan = flowshop.Makespan3(plan.Sequence)
		return plan
	}

	best := evaluate(0)
	// Mix in the runner-up pair at a few splits (crude but effective:
	// the two-stage theory's balance logic does not transfer in closed
	// form to three machines).
	for _, m := range []int{n / 4, n / 2, 3 * n / 4, n} {
		if cand := evaluate(m); cand.Makespan < best.Makespan {
			best = cand
		}
	}
	return best, nil
}

// TwoTierAsThreeTier plans the same workload with the plain two-tier
// JPS (everything beyond the mobile cut runs in the cloud, paying
// uplink+backhaul for the single cut tensor) — the baseline the
// three-tier extension is measured against.
func TwoTierAsThreeTier(g *dag.Graph, env ThreeTierEnv, n int) (*ThreeTierPlan, error) {
	if n <= 0 {
		return nil, fmt.Errorf("core: TwoTierAsThreeTier needs n >= 1, got %d", n)
	}
	c := buildThreeTierCurves(g, env)
	// Single cut lo; tensor crosses both hops back to back.
	type choice struct {
		lo   int
		peak float64
	}
	best := choice{lo: c.pareto[0], peak: -1}
	for _, lo := range c.pareto {
		a := c.f[lo]
		b := c.upMs[lo]
		cc := c.backMs[lo]
		if lo == len(c.f)-1 {
			b, cc = 0, 0
		}
		peak := a
		if b > peak {
			peak = b
		}
		if cc > peak {
			peak = cc
		}
		if best.peak < 0 || peak < best.peak {
			best = choice{lo: lo, peak: peak}
		}
	}
	plan := &ThreeTierPlan{
		Method:   "2tier",
		CutsLow:  make([]int, n),
		CutsHigh: make([]int, n),
	}
	jobs := make([]flowshop.Job3, n)
	for i := 0; i < n; i++ {
		plan.CutsLow[i], plan.CutsHigh[i] = best.lo, best.lo
		a := c.f[best.lo]
		b := c.upMs[best.lo]
		cc := c.backMs[best.lo]
		if best.lo == len(c.f)-1 {
			b, cc = 0, 0
		}
		jobs[i] = flowshop.Job3{ID: i, A: a, B: b, C: cc}
	}
	plan.Sequence = flowshop.CDS(jobs)
	plan.Makespan = flowshop.Makespan3(plan.Sequence)
	return plan, nil
}
