package core

import (
	"fmt"

	"dnnjps/internal/profile"
)

// ErrSearchSpaceTooLarge is returned when an exhaustive search would
// exceed the caller's combination budget.
var ErrSearchSpaceTooLarge = fmt.Errorf("core: brute-force search space too large")

// BruteForce finds the exact optimal joint plan by enumerating every
// multiset of cuts of size n over the Pareto candidates and scheduling
// each with Johnson's rule (which is makespan-optimal for fixed
// partitions, so multiset enumeration loses nothing: jobs are
// identical and only how many take each cut matters — this is the BF
// reference of Fig. 11). maxCombos bounds the number of multisets
// visited (0 means 2_000_000).
func BruteForce(c *profile.Curve, n, maxCombos int) (*Plan, error) {
	if n <= 0 {
		return nil, fmt.Errorf("core: BruteForce needs n >= 1, got %d", n)
	}
	if maxCombos <= 0 {
		maxCombos = 2_000_000
	}
	r, idx := c.Restrict(c.ParetoCuts())
	k := r.Len()
	if combosExceed(n, k, maxCombos) {
		return nil, fmt.Errorf("%w: C(%d+%d-1,%d) > %d", ErrSearchSpaceTooLarge, n, k, n, maxCombos)
	}

	counts := make([]int, k) // counts[i] = jobs cut at restricted position i
	var best *Plan
	visited := 0
	var rec func(pos, remaining int) error
	rec = func(pos, remaining int) error {
		if pos == k-1 {
			counts[pos] = remaining
			visited++
			if visited > maxCombos {
				return ErrSearchSpaceTooLarge
			}
			cuts := cutsFromCounts(counts, idx, n)
			p := planFromCuts("BF", c, cuts)
			if best == nil || p.Makespan < best.Makespan {
				best = p
			}
			return nil
		}
		for take := 0; take <= remaining; take++ {
			counts[pos] = take
			if err := rec(pos+1, remaining-take); err != nil {
				return err
			}
		}
		counts[pos] = 0
		return nil
	}
	if err := rec(0, n); err != nil {
		return nil, err
	}
	return best, nil
}

// combosExceed reports whether C(n+k-1, n) > limit without overflow.
func combosExceed(n, k, limit int) bool {
	// Multiplicative evaluation of C(n+k-1, k-1) with early exit.
	val := 1.0
	for i := 1; i <= k-1; i++ {
		val *= float64(n+i) / float64(i)
		if val > float64(limit) {
			return true
		}
	}
	return false
}

func cutsFromCounts(counts, idx []int, n int) []int {
	cuts := make([]int, 0, n)
	for pos, cnt := range counts {
		for j := 0; j < cnt; j++ {
			cuts = append(cuts, idx[pos])
		}
	}
	return cuts
}

// BruteForceTwoPoint searches only plans using at most two distinct
// cut positions (all pairs × all splits) over the Pareto candidates.
// By Theorem 5.3 this captures the optimum whenever two partition
// types suffice, and it stays polynomial — O(k²·n) schedules — so
// Fig. 11 can run it at n = 2⁹ where full BF is infeasible.
func BruteForceTwoPoint(c *profile.Curve, n int) (*Plan, error) {
	return TwoPointSearch(c, n, c.ParetoCuts())
}

// TwoPointSearch is BruteForceTwoPoint over an explicit candidate cut
// set — the virtual-block ablation uses it to search the raw,
// unclustered position set.
func TwoPointSearch(c *profile.Curve, n int, candidates []int) (*Plan, error) {
	if n <= 0 {
		return nil, fmt.Errorf("core: TwoPointSearch needs n >= 1, got %d", n)
	}
	if len(candidates) == 0 {
		return nil, fmt.Errorf("core: TwoPointSearch needs candidates")
	}
	var best *Plan
	consider := func(cuts []int) {
		p := planFromCuts("BF-2pt", c, cuts)
		if best == nil || p.Makespan < best.Makespan {
			best = p
		}
	}
	k := len(candidates)
	for i := 0; i < k; i++ {
		// Homogeneous plan at candidate i.
		cuts := make([]int, n)
		for t := range cuts {
			cuts[t] = candidates[i]
		}
		consider(cuts)
		for j := i + 1; j < k; j++ {
			for m := 1; m < n; m++ {
				cuts := make([]int, n)
				for t := range cuts {
					if t < m {
						cuts[t] = candidates[i]
					} else {
						cuts[t] = candidates[j]
					}
				}
				consider(cuts)
			}
		}
	}
	return best, nil
}
