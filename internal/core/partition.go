// Package core implements the paper's contribution: joint optimization
// of DNN partition and scheduling (JPS). It contains Algorithm 2 (the
// O(log k) binary search for the crossing layer l* and the two-type
// mix ratio of Theorem 5.3), the JPS planner, the comparison baselines
// PO / CO / LO, exact and two-point brute-force optima (Fig. 11), the
// continuous-relaxation solver of Theorem 5.2, and the Algorithm 3
// planner for general-structure DNNs.
package core

import (
	"fmt"
	"math"

	"dnnjps/internal/flowshop"
	"dnnjps/internal/profile"
)

// CutSearch is the result of Algorithm 2 on a (Pareto-restricted)
// curve: LStar is the leftmost position with f(l) >= g(l); Ratio is
// ⌊(f(l*)-g(l*)) / (g(l*-1)-f(l*-1))⌋, the number of jobs to cut at
// l*-1 for every job cut at l*.
type CutSearch struct {
	LStar int
	Ratio int
	// Exact reports f(l*) == g(l*): a single partition type is optimal
	// (the discrete curve realizes the continuous optimum of Thm 5.2).
	Exact bool
	// Steps counts binary-search iterations, validating O(log k).
	Steps int
}

// BinarySearchCut runs Algorithm 2 on a curve whose G is
// non-increasing (restrict to ParetoCuts first for raw curves). It
// requires f(0) < g(0), which holds for any real model: f(0) = 0 and
// g(0) is the raw input upload. The loop maintains the paper's
// invariant f(l-1) < g(l-1) ∧ f(r) >= g(r).
func BinarySearchCut(c *profile.Curve) (CutSearch, error) {
	k := c.Len()
	if k < 2 {
		return CutSearch{}, fmt.Errorf("core: curve too short (%d positions)", k)
	}
	if c.F[0] >= c.G[0] {
		// Degenerate: offloading immediately is already compute-bound;
		// l* = 0 means every job is cut at the first position.
		return CutSearch{LStar: 0, Exact: c.F[0] == c.G[0]}, nil
	}
	l, r := 1, k-1
	steps := 0
	for l < r {
		steps++
		mid := (l + r) / 2
		if c.F[mid] < c.G[mid] {
			l = mid + 1
		} else {
			r = mid
		}
	}
	res := CutSearch{LStar: l, Steps: steps}
	if c.F[l] == c.G[l] {
		res.Exact = true
		return res, nil
	}
	den := c.G[l-1] - c.F[l-1]
	if den <= 0 {
		// Cannot happen when the invariant holds; guard against
		// curves violating monotonicity assumptions.
		return res, fmt.Errorf("core: invariant violated at l*=%d: g(l*-1)-f(l*-1)=%g", l, den)
	}
	res.Ratio = int(math.Floor((c.F[l] - c.G[l]) / den))
	return res, nil
}

// MixCounts converts the Theorem 5.3 ratio into job counts: m jobs at
// l*-1 and n-m at l*, with m : (n-m) = ratio : 1 (rounded down, then
// clamped to [0, n]). This is the paper's literal integer-ratio rule;
// it degrades badly when the true ratio is below 1 (the floor sends
// every job to l*), so JPS uses BalancedSplit instead and this rule is
// kept for the JPSPaperRatio ablation.
func MixCounts(n, ratio int) (atPrev, atLStar int) {
	if n <= 0 {
		return 0, 0
	}
	if ratio <= 0 {
		return 0, n
	}
	m := n * ratio / (ratio + 1)
	if m > n {
		m = n
	}
	return m, n - m
}

// BalancedSplit solves the exact Theorem 5.3 balance condition
// m·(g(l*-1) − f(l*-1)) = (n−m)·(f(l*) − g(l*)) for the real-valued m
// and returns the two adjacent integer candidates (clamped to [0, n]).
// The caller evaluates both and keeps the better makespan — an O(1)
// refinement of the paper's floored ratio.
func BalancedSplit(c *profile.Curve, lstar, n int) (lo, hi int) {
	surplusPrev := c.G[lstar-1] - c.F[lstar-1] // > 0 by the invariant
	surplusCur := c.F[lstar] - c.G[lstar]      // >= 0 at l*
	den := surplusPrev + surplusCur
	if den <= 0 {
		return 0, 0
	}
	m := float64(n) * surplusCur / den
	lo = int(math.Floor(m))
	hi = int(math.Ceil(m))
	if lo < 0 {
		lo = 0
	}
	if hi > n {
		hi = n
	}
	if lo > hi {
		lo = hi
	}
	return lo, hi
}

// JobsForCuts builds the flow-shop jobs for per-job cut indices on a
// curve.
func JobsForCuts(c *profile.Curve, cuts []int) []flowshop.Job {
	jobs := make([]flowshop.Job, len(cuts))
	for i, cut := range cuts {
		if cut < 0 || cut >= c.Len() {
			panic(fmt.Sprintf("core: cut %d out of range [0,%d)", cut, c.Len()))
		}
		jobs[i] = flowshop.Job{ID: i, A: c.F[cut], B: c.G[cut]}
	}
	return jobs
}
