package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"dnnjps/internal/models"
	"dnnjps/internal/netsim"
	"dnnjps/internal/profile"
	"dnnjps/internal/tensor"
)

func heteroClasses(t *testing.T, ch netsim.Channel, counts map[string]int) []JobClass {
	t.Helper()
	pi, gpu := devices()
	var out []JobClass
	for _, name := range []string{"alexnet", "mobilenetv2", "resnet18", "googlenet"} {
		n, ok := counts[name]
		if !ok {
			continue
		}
		g := models.MustBuild(name)
		out = append(out, JobClass{
			Curve: profile.BuildCurve(g, pi, gpu, ch, tensor.Float32),
			Count: n,
		})
	}
	return out
}

func TestJPSHeteroSingleClassMatchesJPS(t *testing.T) {
	classes := heteroClasses(t, netsim.FourG, map[string]int{"alexnet": 8})
	hp, err := JPSHetero(classes)
	if err != nil {
		t.Fatal(err)
	}
	jps, err := JPS(classes[0].Curve, 8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(hp.Makespan-jps.Makespan) > 1e-9 {
		t.Errorf("single-class hetero %g != JPS %g", hp.Makespan, jps.Makespan)
	}
	if hp.TotalJobs() != 8 || hp.AvgMs() != hp.Makespan/8 {
		t.Error("accounting wrong")
	}
}

func TestJPSHeteroSplitIdenticalClasses(t *testing.T) {
	// Two classes over the same curve with counts 3+5 must schedule as
	// well as one class of 8 (same job universe).
	one := heteroClasses(t, netsim.FourG, map[string]int{"alexnet": 8})
	pi, gpu := devices()
	curve := profile.BuildCurve(models.MustBuild("alexnet"), pi, gpu, netsim.FourG, tensor.Float32)
	two := []JobClass{{Curve: curve, Count: 3}, {Curve: curve, Count: 5}}
	hpOne, err := JPSHetero(one)
	if err != nil {
		t.Fatal(err)
	}
	hpTwo, err := JPSHetero(two)
	if err != nil {
		t.Fatal(err)
	}
	// Split classes mix independently, so allow small slack; they must
	// not be wildly different.
	if hpTwo.Makespan > hpOne.Makespan*1.05 {
		t.Errorf("split classes %g much worse than merged %g", hpTwo.Makespan, hpOne.Makespan)
	}
}

func TestJPSHeteroBeatsIsolatedBaselines(t *testing.T) {
	for _, ch := range netsim.Presets() {
		classes := heteroClasses(t, ch, map[string]int{"alexnet": 6, "mobilenetv2": 6, "resnet18": 4})
		hp, err := JPSHetero(classes)
		if err != nil {
			t.Fatalf("%s: %v", ch.Name, err)
		}
		for _, base := range []struct {
			name string
			fn   func(*profile.Curve, int) (*Plan, error)
		}{{"LO", LO}, {"CO", CO}, {"PO", PO}} {
			bp, err := HeteroBaseline(base.name, base.fn, classes)
			if err != nil {
				t.Fatal(err)
			}
			if hp.Makespan > bp.Makespan*1.02 {
				t.Errorf("%s: JPS-hetero %.1f worse than %s %.1f",
					ch.Name, hp.Makespan, base.name, bp.Makespan)
			}
		}
	}
}

func TestJPSHeteroSequenceCoversWorkload(t *testing.T) {
	classes := heteroClasses(t, netsim.WiFi, map[string]int{"alexnet": 5, "googlenet": 3})
	hp, err := JPSHetero(classes)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[[2]int]bool{}
	for _, ref := range hp.Sequence {
		k := [2]int{ref.Class, ref.Job}
		if seen[k] {
			t.Fatalf("duplicate job %v", k)
		}
		seen[k] = true
		if ref.Class < 0 || ref.Class >= len(classes) {
			t.Fatalf("bad class %d", ref.Class)
		}
		if ref.Cut < 0 || ref.Cut >= classes[ref.Class].Curve.Len() {
			t.Fatalf("bad cut %d", ref.Cut)
		}
	}
	if len(seen) != 8 {
		t.Fatalf("sequence covers %d jobs, want 8", len(seen))
	}
}

func TestJPSHeteroErrors(t *testing.T) {
	if _, err := JPSHetero(nil); err == nil {
		t.Error("empty workload must error")
	}
	curve := fig2Curve()
	if _, err := JPSHetero([]JobClass{{Curve: curve, Count: 0}}); err == nil {
		t.Error("zero count must error")
	}
	if _, err := JPSHetero([]JobClass{{Count: 1}}); err == nil {
		t.Error("missing curve must error")
	}
}

func TestBruteForceHeteroValidatesJPSHetero(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 40; trial++ {
		classes := []JobClass{
			{Name: "a", Curve: synthCurve(rng, 4+rng.Intn(3)), Count: 1 + rng.Intn(3)},
			{Name: "b", Curve: synthCurve(rng, 4+rng.Intn(3)), Count: 1 + rng.Intn(3)},
		}
		bf, err := BruteForceHetero(classes, 0)
		if err != nil {
			t.Fatal(err)
		}
		hp, err := JPSHetero(classes)
		if err != nil {
			t.Fatal(err)
		}
		if hp.Makespan < bf.Makespan-1e-9 {
			t.Fatalf("trial %d: hetero JPS %g below exact optimum %g", trial, hp.Makespan, bf.Makespan)
		}
		if hp.Makespan > bf.Makespan*1.6 {
			t.Fatalf("trial %d: hetero JPS %g way off optimum %g", trial, hp.Makespan, bf.Makespan)
		}
	}
}

func TestBruteForceHeteroSpaceGuard(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	classes := []JobClass{
		{Curve: synthCurve(rng, 12), Count: 64},
		{Curve: synthCurve(rng, 12), Count: 64},
	}
	if _, err := BruteForceHetero(classes, 1000); !errors.Is(err, ErrSearchSpaceTooLarge) {
		t.Errorf("want ErrSearchSpaceTooLarge, got %v", err)
	}
	if _, err := BruteForceHetero(nil, 0); err == nil {
		t.Error("empty workload must error")
	}
}

func TestHeteroPlanEmptyAccessors(t *testing.T) {
	p := &HeteroPlan{}
	if p.TotalJobs() != 0 || p.AvgMs() != 0 {
		t.Error("empty plan accessors")
	}
}
