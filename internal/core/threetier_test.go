package core

import (
	"testing"

	"dnnjps/internal/flowshop"
	"dnnjps/internal/models"
	"dnnjps/internal/netsim"
	"dnnjps/internal/profile"
	"dnnjps/internal/tensor"
)

func threeTierEnv() ThreeTierEnv {
	pi, gpu := devices()
	return ThreeTierEnv{
		Mobile: pi,
		Edge:   gpu.Scaled(0.25), // edge box: weaker than the cloud
		Cloud:  gpu,
		// Wireless 4G uplink to the edge; fast wired backhaul onward.
		Uplink:   netsim.FourG,
		Backhaul: netsim.Channel{Name: "backhaul", UplinkMbps: 100, SetupMs: 3},
		DType:    tensor.Float32,
	}
}

func TestJPSThreeTierBasics(t *testing.T) {
	g := models.MustBuild("alexnet")
	env := threeTierEnv()
	n := 20
	p, err := JPSThreeTier(g, env, n)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.CutsLow) != n || len(p.CutsHigh) != n || len(p.Sequence) != n {
		t.Fatalf("plan sizes wrong: %d/%d/%d", len(p.CutsLow), len(p.CutsHigh), len(p.Sequence))
	}
	for i := range p.CutsLow {
		if p.CutsLow[i] > p.CutsHigh[i] {
			t.Errorf("job %d: lo %d > hi %d", i, p.CutsLow[i], p.CutsHigh[i])
		}
	}
	if p.Makespan <= 0 {
		t.Error("non-positive makespan")
	}
	if p.AvgMs() != p.Makespan/float64(n) {
		t.Error("AvgMs mismatch")
	}
	if got := flowshop.Makespan3(p.Sequence); got != p.Makespan {
		t.Errorf("stored makespan %g != recomputed %g", p.Makespan, got)
	}
}

func TestThreeTierBeatsTwoTierWithSlowUplink(t *testing.T) {
	// The three-tier win: the second hop is cheap, so pushing the
	// split earlier (smaller mobile compute) while the edge absorbs
	// the middle layers beats hauling the cut tensor all the way at
	// two-tier cost. With a slow uplink and a fast backhaul the
	// three-tier plan must never lose.
	env := threeTierEnv()
	for _, model := range []string{"alexnet", "resnet18", "mobilenetv2"} {
		g := models.MustBuild(model)
		three, err := JPSThreeTier(g, env, 20)
		if err != nil {
			t.Fatal(err)
		}
		two, err := TwoTierAsThreeTier(g, env, 20)
		if err != nil {
			t.Fatal(err)
		}
		if three.Makespan > two.Makespan*1.001 {
			t.Errorf("%s: three-tier %.1f worse than two-tier %.1f",
				model, three.Makespan, two.Makespan)
		}
	}
}

func TestThreeTierEdgeComputeIsBounded(t *testing.T) {
	// The plan does not schedule edge compute; verify it is indeed
	// negligible relative to the scheduled stages for the chosen cuts.
	g := models.MustBuild("alexnet")
	env := threeTierEnv()
	p, err := JPSThreeTier(g, env, 8)
	if err != nil {
		t.Fatal(err)
	}
	edgeCurve := profile.BuildCurve(g, env.Edge, env.Cloud, env.Backhaul, env.DType)
	for i := range p.CutsLow {
		edgeMs := edgeCurve.F[p.CutsHigh[i]] - edgeCurve.F[p.CutsLow[i]]
		if edgeMs > p.AvgMs() {
			t.Errorf("job %d: edge compute %.2fms not negligible vs avg %.2fms",
				i, edgeMs, p.AvgMs())
		}
	}
}

func TestThreeTierRejectsBadN(t *testing.T) {
	g := models.MustBuild("alexnet")
	if _, err := JPSThreeTier(g, threeTierEnv(), 0); err == nil {
		t.Error("n=0 must error")
	}
	if _, err := TwoTierAsThreeTier(g, threeTierEnv(), 0); err == nil {
		t.Error("n=0 must error")
	}
}

func TestThreeTierLocalOnlyDegenerate(t *testing.T) {
	// With a hopeless uplink, both planners collapse to local-only
	// (lo = hi = last position, no transfers).
	env := threeTierEnv()
	env.Uplink = netsim.Channel{Name: "awful", UplinkMbps: 0.001, SetupMs: 5000}
	g := models.MustBuild("resnet18")
	p, err := JPSThreeTier(g, env, 5)
	if err != nil {
		t.Fatal(err)
	}
	curve := profile.BuildCurve(g, env.Mobile, env.Cloud, env.Uplink, env.DType)
	wantLocal := 5 * curve.TotalMobileMs()
	if p.Makespan > wantLocal*1.01 {
		t.Errorf("three-tier %.0f should degrade to local-only %.0f", p.Makespan, wantLocal)
	}
}
