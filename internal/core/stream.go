package core

// Streaming workloads — an extension beyond the paper's batch setting.
// The paper releases all n jobs at time 0; real AR/self-driving
// pipelines emit frames continuously. PlanStream applies the JPS
// machinery online: Algorithm 2 fixes the two candidate cuts once, the
// Theorem 5.3 balance fraction decides each arriving frame's cut
// (interleaved so any window of the stream holds the optimal mix), and
// frames run in arrival order — the flow-shop pipeline absorbs the mix
// exactly as in the batch case.

import (
	"fmt"
	"math"
	"math/rand"

	"dnnjps/internal/profile"
)

// StreamJob is one planned frame of a stream.
type StreamJob struct {
	ID        int
	ReleaseMs float64
	Cut       int // position on the stream's curve
	F, G      float64
	CloudMs   float64
}

// StreamPlan assigns cuts to a stream of releases.
type StreamPlan struct {
	Curve *profile.Curve
	Jobs  []StreamJob
	// MixFraction is the planned fraction of frames cut at l*-1.
	MixFraction float64
	// SustainableMs is the steady-state per-frame service bound
	// max(F̄, Ḡ) of the mix: release intervals below it overload the
	// pipeline and the queue grows without bound.
	SustainableMs float64
}

// PlanStream plans one frame per release time (releases must be
// non-negative; order does not matter, jobs are emitted sorted by the
// caller's order). The mix interleaves l*-1 and l* cuts by the exact
// balance fraction using error diffusion, so every prefix of the
// stream stays within one job of the ideal ratio.
func PlanStream(c *profile.Curve, releases []float64) (*StreamPlan, error) {
	if len(releases) == 0 {
		return nil, fmt.Errorf("core: PlanStream needs at least one release")
	}
	r, idx := c.Restrict(c.ParetoCuts())
	search, err := BinarySearchCut(r)
	if err != nil {
		return nil, err
	}
	frac := 0.0
	posPrev, posCur := search.LStar, search.LStar
	if !search.Exact && search.LStar > 0 {
		surplusPrev := r.G[search.LStar-1] - r.F[search.LStar-1]
		surplusCur := r.F[search.LStar] - r.G[search.LStar]
		if den := surplusPrev + surplusCur; den > 0 {
			frac = surplusCur / den
		}
		posPrev = search.LStar - 1
	}

	plan := &StreamPlan{Curve: c, MixFraction: frac}
	var fSum, gSum float64
	acc := 0.0
	for i, rel := range releases {
		if rel < 0 {
			return nil, fmt.Errorf("core: release %d is negative (%g)", i, rel)
		}
		pos := posCur
		acc += frac
		if acc >= 1-1e-12 {
			acc -= 1
			pos = posPrev
		}
		cut := idx[pos]
		plan.Jobs = append(plan.Jobs, StreamJob{
			ID:        i,
			ReleaseMs: rel,
			Cut:       cut,
			F:         r.F[pos],
			G:         r.G[pos],
			CloudMs:   r.CloudMs[pos],
		})
		fSum += r.F[pos]
		gSum += r.G[pos]
	}
	n := float64(len(releases))
	plan.SustainableMs = math.Max(fSum/n, gSum/n)
	return plan, nil
}

// PeriodicReleases builds n release times at a fixed inter-arrival
// interval — a camera emitting frames at 1000/intervalMs FPS.
func PeriodicReleases(n int, intervalMs float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(i) * intervalMs
	}
	return out
}

// PoissonReleases builds n release times with exponentially
// distributed inter-arrival gaps of the given mean — bursty traffic
// for stress-testing the stream planner. Deterministic in seed.
func PoissonReleases(n int, meanIntervalMs float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	t := 0.0
	for i := range out {
		out[i] = t
		t += rng.ExpFloat64() * meanIntervalMs
	}
	return out
}

// Sustainable reports whether a periodic stream with the given
// inter-arrival interval can run without unbounded queueing under this
// plan's mix.
func (p *StreamPlan) Sustainable(intervalMs float64) bool {
	return intervalMs >= p.SustainableMs
}
