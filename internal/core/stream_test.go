package core

import (
	"math"
	"testing"

	"dnnjps/internal/models"
	"dnnjps/internal/netsim"
	"dnnjps/internal/profile"
	"dnnjps/internal/tensor"
)

func alexCurve4G(t *testing.T) *profile.Curve {
	t.Helper()
	pi, gpu := devices()
	return profile.BuildCurve(models.MustBuild("alexnet"), pi, gpu, netsim.FourG, tensor.Float32)
}

func TestPlanStreamMixFraction(t *testing.T) {
	c := alexCurve4G(t)
	n := 1000
	plan, err := PlanStream(c, PeriodicReleases(n, 300))
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Jobs) != n {
		t.Fatalf("planned %d jobs", len(plan.Jobs))
	}
	// Count frames at the earlier cut; must track MixFraction within
	// one job (error diffusion).
	r, idx := c.Restrict(c.ParetoCuts())
	search, _ := BinarySearchCut(r)
	prevCut := idx[search.LStar-1]
	count := 0
	for _, j := range plan.Jobs {
		if j.Cut == prevCut {
			count++
		}
	}
	want := plan.MixFraction * float64(n)
	if math.Abs(float64(count)-want) > 1 {
		t.Errorf("frames at l*-1: %d, want ~%.1f", count, want)
	}
	// Every prefix within one job of the ideal ratio.
	run := 0
	for i, j := range plan.Jobs {
		if j.Cut == prevCut {
			run++
		}
		ideal := plan.MixFraction * float64(i+1)
		if math.Abs(float64(run)-ideal) > 1+1e-9 {
			t.Fatalf("prefix %d drifted: %d vs ideal %.2f", i+1, run, ideal)
		}
	}
}

func TestPlanStreamMatchesBatchAsymptotics(t *testing.T) {
	// With all releases at 0, the stream plan is a batch: its mix
	// average must match JPS's average makespan within a small factor.
	c := alexCurve4G(t)
	n := 200
	plan, err := PlanStream(c, make([]float64, n))
	if err != nil {
		t.Fatal(err)
	}
	jps, err := JPS(c, n)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(plan.SustainableMs-jps.AvgMs()) > jps.AvgMs()*0.05 {
		t.Errorf("stream steady-state %.1f vs batch avg %.1f", plan.SustainableMs, jps.AvgMs())
	}
}

func TestPlanStreamSustainability(t *testing.T) {
	c := alexCurve4G(t)
	plan, err := PlanStream(c, PeriodicReleases(10, 100))
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Sustainable(plan.SustainableMs + 1) {
		t.Error("interval above bound must be sustainable")
	}
	if plan.Sustainable(plan.SustainableMs - 1) {
		t.Error("interval below bound must not be sustainable")
	}
	// JPS mixing must sustain a strictly higher frame rate than
	// local-only execution (whose bound is the full mobile latency).
	if plan.SustainableMs >= c.TotalMobileMs() {
		t.Errorf("stream bound %.1f not better than local-only %.1f",
			plan.SustainableMs, c.TotalMobileMs())
	}
}

func TestPlanStreamErrors(t *testing.T) {
	c := alexCurve4G(t)
	if _, err := PlanStream(c, nil); err == nil {
		t.Error("empty stream must error")
	}
	if _, err := PlanStream(c, []float64{-5}); err == nil {
		t.Error("negative release must error")
	}
}

func TestPeriodicReleases(t *testing.T) {
	rel := PeriodicReleases(4, 33.3)
	if len(rel) != 4 || rel[0] != 0 || math.Abs(rel[3]-99.9) > 1e-9 {
		t.Errorf("releases = %v", rel)
	}
}

func TestPoissonReleases(t *testing.T) {
	rel := PoissonReleases(500, 100, 7)
	if len(rel) != 500 || rel[0] != 0 {
		t.Fatalf("releases start = %v len = %d", rel[0], len(rel))
	}
	// Sorted, and mean gap near the requested mean.
	var sum float64
	for i := 1; i < len(rel); i++ {
		gap := rel[i] - rel[i-1]
		if gap < 0 {
			t.Fatal("releases must be non-decreasing")
		}
		sum += gap
	}
	mean := sum / float64(len(rel)-1)
	if mean < 80 || mean > 120 {
		t.Errorf("mean gap = %.1f, want ~100", mean)
	}
	// Deterministic in seed.
	again := PoissonReleases(500, 100, 7)
	for i := range rel {
		if rel[i] != again[i] {
			t.Fatal("same seed must reproduce the stream")
		}
	}
	other := PoissonReleases(500, 100, 8)
	if rel[100] == other[100] {
		t.Error("different seeds should differ")
	}
}

func TestPlanStreamPoissonBurstiness(t *testing.T) {
	// At the same average rate, Poisson arrivals queue worse than
	// periodic ones — sanity for the burstiness story.
	c := alexCurve4G(t)
	n := 80
	base, err := PlanStream(c, PeriodicReleases(n, 0))
	if err != nil {
		t.Fatal(err)
	}
	interval := base.SustainableMs * 1.1
	if !base.Sustainable(interval) {
		t.Fatal("interval should be sustainable")
	}
	// Both plans share the mix; only releases differ.
	per, err := PlanStream(c, PeriodicReleases(n, interval))
	if err != nil {
		t.Fatal(err)
	}
	poi, err := PlanStream(c, PoissonReleases(n, interval, 3))
	if err != nil {
		t.Fatal(err)
	}
	if len(per.Jobs) != n || len(poi.Jobs) != n {
		t.Fatal("job counts wrong")
	}
}
