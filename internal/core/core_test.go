package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"dnnjps/internal/flowshop"
	"dnnjps/internal/models"
	"dnnjps/internal/netsim"
	"dnnjps/internal/profile"
	"dnnjps/internal/tensor"
)

// fig2Curve encodes the introduction's go-through example as a curve:
// position 0 = upload raw input, position 1 = cut after l1 (f=4, g=6),
// position 2 = cut after l2 (f=7, g=2), position 3 = fully local.
func fig2Curve() *profile.Curve {
	return &profile.Curve{
		Model:   "fig2",
		Channel: netsim.Channel{Name: "toy", UplinkMbps: 1, SetupMs: 0},
		F:       []float64{0, 4, 7, 12},
		G:       []float64{20, 6, 2, 0},
		CloudMs: []float64{0.5, 0.3, 0.1, 0},
		Bytes:   []int{2000, 600, 200, 0},
		Labels:  []string{"input", "l1", "l2", "l3"},
	}
}

// synthCurve builds a random monotone curve: f linear-ish increasing,
// g convex-ish decreasing — the §3.2 shape.
func synthCurve(rng *rand.Rand, k int) *profile.Curve {
	c := &profile.Curve{
		Model:   "synth",
		Channel: netsim.Channel{Name: "toy"},
		F:       make([]float64, k),
		G:       make([]float64, k),
		CloudMs: make([]float64, k),
		Bytes:   make([]int, k),
		Labels:  make([]string, k),
	}
	f, g := 0.0, 80+rng.Float64()*40
	for i := 0; i < k; i++ {
		if i > 0 {
			f += 1 + rng.Float64()*10
			g *= 0.4 + rng.Float64()*0.5
		}
		c.F[i] = f
		c.G[i] = g
		c.Bytes[i] = int(g * 1000)
	}
	c.G[k-1] = 0
	c.Bytes[k-1] = 0
	return c
}

func TestBinarySearchCutFig2(t *testing.T) {
	c := fig2Curve()
	s, err := BinarySearchCut(c)
	if err != nil {
		t.Fatalf("BinarySearchCut: %v", err)
	}
	if s.LStar != 2 {
		t.Errorf("l* = %d, want 2 (leftmost f>=g)", s.LStar)
	}
	// ratio = floor((f(2)-g(2)) / (g(1)-f(1))) = floor(5/2) = 2.
	if s.Ratio != 2 {
		t.Errorf("ratio = %d, want 2", s.Ratio)
	}
	if s.Exact {
		t.Error("f(2)=7 != g(2)=2: not exact")
	}
}

func TestBinarySearchCutInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		k := 3 + rng.Intn(30)
		c := synthCurve(rng, k)
		s, err := BinarySearchCut(c)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		l := s.LStar
		if c.F[l] < c.G[l] {
			t.Fatalf("trial %d: f(l*)=%g < g(l*)=%g", trial, c.F[l], c.G[l])
		}
		if l > 0 && c.F[l-1] >= c.G[l-1] {
			t.Fatalf("trial %d: l*=%d not leftmost", trial, l)
		}
		// O(log k) step bound.
		if maxSteps := bits(k) + 1; s.Steps > maxSteps {
			t.Fatalf("trial %d: %d steps for k=%d", trial, s.Steps, k)
		}
	}
}

func bits(k int) int {
	b := 0
	for k > 0 {
		b++
		k >>= 1
	}
	return b
}

func TestBinarySearchCutExact(t *testing.T) {
	c := &profile.Curve{
		Model: "exact", F: []float64{0, 3, 5, 9}, G: []float64{10, 6, 5, 0},
		CloudMs: make([]float64, 4), Bytes: []int{100, 60, 50, 0}, Labels: make([]string, 4),
	}
	s, err := BinarySearchCut(c)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Exact || s.LStar != 2 {
		t.Errorf("want exact at 2, got %+v", s)
	}
}

func TestBinarySearchCutDegenerate(t *testing.T) {
	// f(0) >= g(0): offload-first already compute-bound.
	c := &profile.Curve{
		Model: "deg", F: []float64{0, 1}, G: []float64{0, 0},
		CloudMs: make([]float64, 2), Bytes: []int{0, 0}, Labels: make([]string, 2),
	}
	s, err := BinarySearchCut(c)
	if err != nil {
		t.Fatal(err)
	}
	if s.LStar != 0 || !s.Exact {
		t.Errorf("degenerate case: %+v", s)
	}
	short := &profile.Curve{Model: "short", F: []float64{0}, G: []float64{0}}
	if _, err := BinarySearchCut(short); err == nil {
		t.Error("single-position curve must error")
	}
}

func TestMixCounts(t *testing.T) {
	cases := []struct {
		n, ratio, wantPrev int
	}{
		{2, 2, 1},   // Fig. 2: one job each side
		{10, 0, 0},  // ratio 0: everything at l*
		{10, 1, 5},  // 1:1
		{10, 3, 7},  // 3:1 -> 7.5 floored
		{9, 4, 7},   // 4:1 -> 7.2 floored
		{1, 5, 0},   // single job stays at l*
		{0, 3, 0},   // no jobs
		{5, 100, 4}, // extreme ratio still leaves one at l*
	}
	for _, c := range cases {
		prev, at := MixCounts(c.n, c.ratio)
		if prev != c.wantPrev || prev+at != max(c.n, 0) {
			t.Errorf("MixCounts(%d,%d) = (%d,%d), want prev=%d", c.n, c.ratio, prev, at, c.wantPrev)
		}
	}
}

func TestJPSReproducesFig2(t *testing.T) {
	p, err := JPS(fig2Curve(), 2)
	if err != nil {
		t.Fatalf("JPS: %v", err)
	}
	if p.Makespan != 13 {
		t.Errorf("JPS makespan = %g, want 13 (the paper's mixed partition)", p.Makespan)
	}
	// One job at each of l1 and l2.
	counts := map[int]int{}
	for _, cut := range p.Cuts {
		counts[cut]++
	}
	if counts[1] != 1 || counts[2] != 1 {
		t.Errorf("cuts = %v, want one at 1 and one at 2", p.Cuts)
	}
	// BF agrees.
	bf, err := BruteForce(fig2Curve(), 2, 0)
	if err != nil {
		t.Fatalf("BruteForce: %v", err)
	}
	if bf.Makespan != 13 {
		t.Errorf("BF makespan = %g, want 13", bf.Makespan)
	}
}

func TestBaselinesFig2(t *testing.T) {
	c := fig2Curve()
	lo, _ := LO(c, 2)
	if lo.Makespan != 24 { // 2 x 12 serial local runs
		t.Errorf("LO makespan = %g, want 24", lo.Makespan)
	}
	co, _ := CO(c, 2)
	if co.Makespan != 40 { // two raw uploads back-to-back
		t.Errorf("CO makespan = %g, want 40", co.Makespan)
	}
	po, _ := PO(c, 2)
	// Single-job latency: pos1: 4+6+0.3=10.3 (best), pos2: 9.1, pos3: 12.
	// pos2 wins: 7+2+0.1 = 9.1.
	if po.Cuts[0] != 2 || po.Cuts[1] != 2 {
		t.Errorf("PO cuts = %v, want homogeneous at 2", po.Cuts)
	}
	if po.Makespan != 16 { // 7 + max(7,2) + 2
		t.Errorf("PO makespan = %g, want 16", po.Makespan)
	}
	// JPS strictly beats all baselines here.
	jps, _ := JPS(c, 2)
	for _, b := range []*Plan{lo, co, po} {
		if jps.Makespan >= b.Makespan {
			t.Errorf("JPS (%g) must beat %s (%g)", jps.Makespan, b.Method, b.Makespan)
		}
	}
}

func TestPlannersRejectBadN(t *testing.T) {
	c := fig2Curve()
	for name, fn := range map[string]func(*profile.Curve, int) (*Plan, error){
		"JPS": JPS, "PO": PO, "CO": CO, "LO": LO, "JPSBestMix": JPSBestMix,
	} {
		if _, err := fn(c, 0); err == nil {
			t.Errorf("%s(n=0) must error", name)
		}
	}
	if _, err := BruteForce(c, -1, 0); err == nil {
		t.Error("BruteForce(n<0) must error")
	}
	if _, err := BruteForceTwoPoint(c, 0); err == nil {
		t.Error("BruteForceTwoPoint(n=0) must error")
	}
}

func TestOptimalityChain(t *testing.T) {
	// BF <= BF2pt <= JPSBestMix <= JPS on random monotone curves.
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 120; trial++ {
		c := synthCurve(rng, 4+rng.Intn(8))
		n := 1 + rng.Intn(6)
		bf, err := BruteForce(c, n, 0)
		if err != nil {
			t.Fatalf("BF: %v", err)
		}
		bf2, err := BruteForceTwoPoint(c, n)
		if err != nil {
			t.Fatalf("BF2pt: %v", err)
		}
		bm, err := JPSBestMix(c, n)
		if err != nil {
			t.Fatalf("BestMix: %v", err)
		}
		jps, err := JPS(c, n)
		if err != nil {
			t.Fatalf("JPS: %v", err)
		}
		const eps = 1e-9
		if bf.Makespan > bf2.Makespan+eps {
			t.Fatalf("trial %d: BF %g > BF2pt %g", trial, bf.Makespan, bf2.Makespan)
		}
		if bf2.Makespan > bm.Makespan+eps {
			t.Fatalf("trial %d: BF2pt %g > BestMix %g", trial, bf2.Makespan, bm.Makespan)
		}
		if bm.Makespan > jps.Makespan+eps {
			t.Fatalf("trial %d: BestMix %g > JPS %g", trial, bm.Makespan, jps.Makespan)
		}
		// JPS within a modest factor of optimal on these shapes.
		if jps.Makespan > bf.Makespan*1.5+eps {
			t.Fatalf("trial %d: JPS %g way off optimal %g", trial, jps.Makespan, bf.Makespan)
		}
	}
}

func TestTheorem53ConditionsAndCounterexample(t *testing.T) {
	// Theorem 5.3 scenario: f(l*-1)+f(l*) = g(l*-1)+g(l*) and
	// g(l*-1) = f(l*). Curve: (f,g) = (3,7) at l*-1 and (7,3) at l*,
	// plus a fully-local option (10,0).
	c := &profile.Curve{
		Model: "thm53", Channel: netsim.Channel{Name: "toy"},
		F:       []float64{0, 3, 7, 10},
		G:       []float64{20, 7, 3, 0},
		CloudMs: make([]float64, 4),
		Bytes:   []int{2000, 700, 300, 0},
		Labels:  make([]string, 4),
	}
	// n=2: the half/half mix is exactly optimal, as the theorem's
	// proof sketch describes.
	jps2, _ := JPS(c, 2)
	bf2, _ := BruteForce(c, 2, 0)
	if math.Abs(jps2.Makespan-bf2.Makespan) > 1e-9 {
		t.Errorf("n=2: JPS %g != BF %g", jps2.Makespan, bf2.Makespan)
	}

	// Documented finding (EXPERIMENTS.md): at n=6 the exhaustive
	// optimum mixes l*-1 with the FULLY LOCAL cut (4x(3,7) + 2x(10,0),
	// makespan 32) and strictly beats every {l*-1, l*} mix (best 33),
	// even though the theorem's stated conditions hold. The theorem's
	// swap argument overlooks that a trailing local job (g = 0) also
	// shrinks the final communication term. JPS therefore tracks the
	// optimum within a few percent here rather than exactly.
	jps6, _ := JPS(c, 6)
	best6, _ := JPSBestMix(c, 6)
	bf6, _ := BruteForce(c, 6, 0)
	if bf6.Makespan != 32 {
		t.Fatalf("BF(6) = %g, expected the documented 32", bf6.Makespan)
	}
	if best6.Makespan != 33 {
		t.Fatalf("best {l*-1,l*} mix = %g, expected the documented 33", best6.Makespan)
	}
	if jps6.Makespan > bf6.Makespan*1.05 {
		t.Errorf("JPS(6) = %g, more than 5%% above optimum %g", jps6.Makespan, bf6.Makespan)
	}
}

func TestBruteForceSpaceGuard(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := synthCurve(rng, 12)
	if _, err := BruteForce(c, 512, 10_000); !errors.Is(err, ErrSearchSpaceTooLarge) {
		t.Errorf("want ErrSearchSpaceTooLarge, got %v", err)
	}
}

func TestBruteForceTwoPointLargeN(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := synthCurve(rng, 10)
	p, err := BruteForceTwoPoint(c, 512)
	if err != nil {
		t.Fatalf("BF2pt: %v", err)
	}
	if len(p.Cuts) != 512 {
		t.Errorf("plan covers %d jobs", len(p.Cuts))
	}
	jps, _ := JPS(c, 512)
	if p.Makespan > jps.Makespan+1e-9 {
		t.Errorf("BF2pt %g worse than JPS %g", p.Makespan, jps.Makespan)
	}
}

func TestSolveContinuous(t *testing.T) {
	c := fig2Curve()
	s, err := SolveContinuous(c)
	if err != nil {
		t.Fatalf("SolveContinuous: %v", err)
	}
	// Crossing of the interpolated f and g lies between positions 1
	// and 2 (f: 4->7, g: 6->2 cross at x = 1 + 2/7).
	if s.XStar <= 1 || s.XStar >= 2 {
		t.Errorf("x* = %g, want in (1,2)", s.XStar)
	}
	if math.Abs(s.FAtXStar-s.GAtXStar) > 1e-6 {
		t.Errorf("f(x*)=%g != g(x*)=%g", s.FAtXStar, s.GAtXStar)
	}
	// The continuous bound lower-bounds every discrete plan's average
	// makespan asymptotically; check against JPS at large n.
	jps, _ := JPS(c, 1000)
	if bound := s.AvgMakespanBound(); jps.AvgMs() < bound-1e-6 {
		t.Errorf("JPS avg %g below continuous bound %g", jps.AvgMs(), bound)
	}
}

func TestContinuousBoundTightForLargeN(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 50; trial++ {
		c := synthCurve(rng, 6+rng.Intn(8))
		s, err := SolveContinuous(c)
		if err != nil {
			continue // curves without a crossing are legitimately skipped
		}
		best, err := JPSBestMix(c, 2000)
		if err != nil {
			t.Fatal(err)
		}
		// The discrete optimum approaches the continuous bound from
		// above; a 2x gap would indicate a broken bound.
		if best.AvgMs() < s.AvgMakespanBound()-1e-6 {
			t.Fatalf("trial %d: discrete avg %g below bound %g", trial, best.AvgMs(), s.AvgMakespanBound())
		}
	}
}

func TestJPSOnRealModels(t *testing.T) {
	pi, gpu := profile.RaspberryPi4(), profile.CloudGPU()
	for _, name := range models.PaperModels() {
		g := models.MustBuild(name)
		for _, ch := range netsim.Presets() {
			curve := profile.BuildCurve(g, pi, gpu, ch, tensor.Float32)
			n := 100
			jps, err := JPS(curve, n)
			if err != nil {
				t.Fatalf("%s@%s JPS: %v", name, ch.Name, err)
			}
			lo, _ := LO(curve, n)
			co, _ := CO(curve, n)
			po, _ := PO(curve, n)
			// JPS never loses to LO/CO (it can express both), and does
			// not lose to PO by more than float fuzz.
			if jps.Makespan > lo.Makespan+1e-6 {
				t.Errorf("%s@%s: JPS %g > LO %g", name, ch.Name, jps.Makespan, lo.Makespan)
			}
			if jps.Makespan > co.Makespan+1e-6 {
				t.Errorf("%s@%s: JPS %g > CO %g", name, ch.Name, jps.Makespan, co.Makespan)
			}
			if jps.Makespan > po.Makespan*1.02 {
				t.Errorf("%s@%s: JPS %g noticeably worse than PO %g", name, ch.Name, jps.Makespan, po.Makespan)
			}
		}
	}
}

func TestJPSNeverLosesToBaselinesWait(t *testing.T) {
	// JPS must beat PO clearly on at least one paper configuration
	// (the whole point of the paper).
	g := models.MustBuild("alexnet")
	curve := profile.BuildCurve(g, profile.RaspberryPi4(), profile.CloudGPU(), netsim.FourG, tensor.Float32)
	jps, _ := JPS(curve, 100)
	po, _ := PO(curve, 100)
	lo, _ := LO(curve, 100)
	if jps.Makespan >= po.Makespan && jps.Makespan >= lo.Makespan {
		t.Errorf("JPS %g shows no gain over PO %g / LO %g on AlexNet@4G",
			jps.Makespan, po.Makespan, lo.Makespan)
	}
}

func TestPlanAccessors(t *testing.T) {
	p, _ := JPS(fig2Curve(), 2)
	if p.AvgMs() != p.Makespan/2 {
		t.Error("AvgMs mismatch")
	}
	empty := &Plan{}
	if empty.AvgMs() != 0 {
		t.Error("empty plan AvgMs must be 0")
	}
	if p.CloudTailMs < 0 {
		t.Error("negative cloud tail")
	}
}

func TestJobsForCutsPanicsOnBadCut(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	JobsForCuts(fig2Curve(), []int{99})
}

// Sequence sanity: every plan's sequence is a permutation of its jobs
// and Johnson-consistent.
func TestPlanSequenceIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		c := synthCurve(rng, 5+rng.Intn(6))
		n := 1 + rng.Intn(20)
		p, err := JPS(c, n)
		if err != nil {
			t.Fatal(err)
		}
		seen := make(map[int]bool)
		for _, j := range p.Sequence {
			if seen[j.ID] || j.ID < 0 || j.ID >= n {
				t.Fatalf("bad sequence ids: %v", p.Sequence)
			}
			seen[j.ID] = true
		}
		if len(seen) != n {
			t.Fatalf("sequence covers %d of %d jobs", len(seen), n)
		}
		if got := flowshop.Makespan(p.Sequence); math.Abs(got-p.Makespan) > 1e-9 {
			t.Fatalf("stored makespan %g != recomputed %g", p.Makespan, got)
		}
	}
}

// As n grows, the JPS average makespan converges to the continuous
// relaxation bound of Theorem 5.2 (the discrete mix approximates x*
// ever more finely).
func TestJPSConvergesToContinuousBound(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	checked := 0
	for trial := 0; trial < 30 && checked < 10; trial++ {
		c := synthCurve(rng, 6+rng.Intn(6))
		sol, err := SolveContinuous(c)
		if err != nil {
			continue
		}
		best, err := JPSBestMix(c, 5000)
		if err != nil {
			t.Fatal(err)
		}
		bound := sol.AvgMakespanBound()
		if best.AvgMs() < bound-1e-6 {
			t.Fatalf("trial %d: avg %g below bound %g", trial, best.AvgMs(), bound)
		}
		// Discrete two-point mixing reaches within 25% of the
		// continuous optimum on these curve shapes (the bound itself
		// interpolates between discrete positions, so exact equality is
		// not expected).
		if best.AvgMs() > bound*1.25 {
			t.Fatalf("trial %d: avg %g far above bound %g", trial, best.AvgMs(), bound)
		}
		checked++
	}
	if checked < 5 {
		t.Fatalf("only %d curves had crossings; generator drifted", checked)
	}
}
