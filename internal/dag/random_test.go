package dag

import (
	"fmt"
	"math/rand"
	"testing"

	"dnnjps/internal/nn"
	"dnnjps/internal/tensor"
)

// randomSP builds a random series-parallel DNN graph: a chain of
// segments, each either a single shape-preserving layer or a parallel
// region of 2-4 branches (each branch a short chain) merged by Add.
func randomSP(t *testing.T, rng *rand.Rand) *Graph {
	t.Helper()
	s := tensor.NewCHW(4, 8, 8)
	g := New("randsp")
	prev := g.Add(&nn.Input{LayerName: "input", Shape: s})
	segs := 2 + rng.Intn(6)
	for seg := 0; seg < segs; seg++ {
		if rng.Intn(2) == 0 {
			prev = g.Add(nn.NewActivation(fmt.Sprintf("s%d", seg), nn.ReLU), prev)
			continue
		}
		branches := 2 + rng.Intn(3)
		var ends []int
		for b := 0; b < branches; b++ {
			cur := prev
			hops := 1 + rng.Intn(3)
			for h := 0; h < hops; h++ {
				cur = g.Add(nn.NewActivation(fmt.Sprintf("s%d_b%d_h%d", seg, b, h), nn.ReLU), cur)
			}
			ends = append(ends, cur)
		}
		prev = g.Add(&nn.Add{LayerName: fmt.Sprintf("s%d_join", seg)}, ends...)
	}
	g.Add(&nn.GlobalAvgPool2D{LayerName: "gap"}, prev)
	if err := g.Finalize(); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	return g
}

// Properties that must hold on any series-parallel DNN graph:
// decomposition partitions the node set, branch counts multiply to the
// path count, and articulations are exactly the line-step nodes plus
// region endpoints.
func TestRandomSeriesParallelInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 60; trial++ {
		g := randomSP(t, rng)
		segs, err := g.Decompose(0)
		if err != nil {
			t.Fatalf("trial %d: Decompose: %v", trial, err)
		}
		// Partition: every node in exactly one segment slot.
		seen := map[int]int{}
		pathProduct := 1
		for _, s := range segs {
			if s.IsParallel() {
				pathProduct *= len(s.Branches)
				for _, br := range s.Branches {
					for _, id := range br {
						seen[id]++
					}
				}
			} else {
				seen[s.Node]++
			}
		}
		if len(seen) != g.Len() {
			t.Fatalf("trial %d: decomposition covers %d of %d nodes", trial, len(seen), g.Len())
		}
		for id, c := range seen {
			if c != 1 {
				t.Fatalf("trial %d: node %d appears %d times", trial, id, c)
			}
		}
		// Path count = product of branch counts (series-parallel).
		if got := g.CountPaths(); got != pathProduct {
			t.Fatalf("trial %d: CountPaths %d != product %d", trial, got, pathProduct)
		}
		// Articulations = the non-parallel segment nodes.
		arts := g.Articulations()
		var lineNodes int
		for _, s := range segs {
			if !s.IsParallel() {
				lineNodes++
			}
		}
		if len(arts) != lineNodes {
			t.Fatalf("trial %d: %d articulations vs %d line segments", trial, len(arts), lineNodes)
		}
		// AllPaths (when feasible) agrees with CountPaths and each path
		// is topo-ordered and spans source->sink.
		if pathProduct <= 64 {
			paths, err := g.AllPaths(64)
			if err != nil {
				t.Fatalf("trial %d: AllPaths: %v", trial, err)
			}
			if len(paths) != pathProduct {
				t.Fatalf("trial %d: AllPaths %d != %d", trial, len(paths), pathProduct)
			}
			for _, p := range paths {
				if p[0] != g.Source() || p[len(p)-1] != g.Sink() {
					t.Fatalf("trial %d: path endpoints wrong", trial)
				}
			}
		}
	}
}

// Cut feasibility is preserved under ancestor closure on random
// graphs, and cut bytes are non-negative and bounded by total tensor
// volume.
func TestRandomGraphCutProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	for trial := 0; trial < 40; trial++ {
		g := randomSP(t, rng)
		var totalBytes int
		for _, id := range g.Topo() {
			totalBytes += g.OutBytes(id, tensor.Float32)
		}
		for probe := 0; probe < 10; probe++ {
			id := rng.Intn(g.Len())
			mobile := g.Ancestors(id)
			if !g.ValidCut(mobile) {
				t.Fatalf("trial %d: ancestor closure of %d is not a valid cut", trial, id)
			}
			cb := g.CutBytes(mobile, tensor.Float32)
			if cb < 0 || cb > totalBytes {
				t.Fatalf("trial %d: cut bytes %d out of [0,%d]", trial, cb, totalBytes)
			}
		}
	}
}
