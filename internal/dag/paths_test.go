package dag

import (
	"errors"
	"fmt"
	"testing"

	"dnnjps/internal/nn"
	"dnnjps/internal/tensor"
)

func names(g *Graph, ids []int) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = g.Node(id).Layer.Name()
	}
	return out
}

func TestAllPathsFig9(t *testing.T) {
	g := fig9Graph(t)
	paths, err := g.AllPaths(0)
	if err != nil {
		t.Fatalf("AllPaths: %v", err)
	}
	// The paper's conversion of Fig. 9(a) yields exactly 3 independent
	// paths (Fig. 9(b)).
	want := map[string]bool{
		"v0 v1 v2 v4 v7": true,
		"v0 v1 v3 v4 v7": true,
		"v0 v5 v6 v7":    true,
	}
	if len(paths) != 3 {
		t.Fatalf("got %d paths, want 3", len(paths))
	}
	for _, p := range paths {
		key := fmt.Sprintf("%s", joinNames(names(g, p)))
		if !want[key] {
			t.Errorf("unexpected path %q", key)
		}
		delete(want, key)
	}
	if len(want) != 0 {
		t.Errorf("missing paths: %v", want)
	}
}

func joinNames(ns []string) string {
	s := ""
	for i, n := range ns {
		if i > 0 {
			s += " "
		}
		s += n
	}
	return s
}

func TestAllPathsLine(t *testing.T) {
	g := lineGraph(t)
	paths, err := g.AllPaths(0)
	if err != nil {
		t.Fatalf("AllPaths: %v", err)
	}
	if len(paths) != 1 || len(paths[0]) != g.Len() {
		t.Errorf("line graph must have exactly one full path, got %v", paths)
	}
}

func TestAllPathsLimit(t *testing.T) {
	g := fig9Graph(t)
	if _, err := g.AllPaths(2); !errors.Is(err, ErrTooManyPaths) {
		t.Errorf("want ErrTooManyPaths, got %v", err)
	}
}

func TestCountPaths(t *testing.T) {
	if got := fig9Graph(t).CountPaths(); got != 3 {
		t.Errorf("fig9 CountPaths = %d, want 3", got)
	}
	if got := lineGraph(t).CountPaths(); got != 1 {
		t.Errorf("line CountPaths = %d, want 1", got)
	}
}

// deepParallel builds a chain of m diamond modules, each with b
// branches: path count is b^m.
func deepParallel(t *testing.T, m, b int) *Graph {
	t.Helper()
	s := tensor.NewCHW(2, 4, 4)
	g := New("deep")
	prev := g.Add(&nn.Input{LayerName: "in", Shape: s})
	for i := 0; i < m; i++ {
		var branches []int
		for j := 0; j < b; j++ {
			branches = append(branches,
				g.Add(nn.NewActivation(fmt.Sprintf("m%d_b%d", i, j), nn.ReLU), prev))
		}
		prev = g.Add(&nn.Add{LayerName: fmt.Sprintf("m%d_join", i)}, branches...)
	}
	if err := g.Finalize(); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	return g
}

func TestCountPathsExponential(t *testing.T) {
	g := deepParallel(t, 9, 4) // GoogLeNet-like: 4^9 paths
	want := 1
	for i := 0; i < 9; i++ {
		want *= 4
	}
	if got := g.CountPaths(); got != want {
		t.Errorf("CountPaths = %d, want %d", got, want)
	}
	if _, err := g.AllPaths(1000); !errors.Is(err, ErrTooManyPaths) {
		t.Error("AllPaths must refuse exponential graphs")
	}
}

func TestArticulationsFig9(t *testing.T) {
	g := fig9Graph(t)
	arts := names(g, g.Articulations())
	if len(arts) != 2 || arts[0] != "v0" || arts[1] != "v7" {
		t.Errorf("articulations = %v, want [v0 v7]", arts)
	}
}

func TestArticulationsLine(t *testing.T) {
	g := lineGraph(t)
	arts := g.Articulations()
	if len(arts) != g.Len() {
		t.Errorf("every node of a line is an articulation; got %d of %d", len(arts), g.Len())
	}
}

func TestDecomposeDeepParallel(t *testing.T) {
	g := deepParallel(t, 9, 4)
	segs, err := g.Decompose(0)
	if err != nil {
		t.Fatalf("Decompose: %v", err)
	}
	var line, par int
	for _, s := range segs {
		if s.IsParallel() {
			par++
			if len(s.Branches) != 4 {
				t.Errorf("parallel segment has %d branches, want 4", len(s.Branches))
			}
			for _, b := range s.Branches {
				if len(b) != 1 {
					t.Errorf("branch interior = %v, want single node", b)
				}
			}
		} else {
			line++
		}
	}
	// 10 articulation nodes (input + 9 joins) and 9 parallel regions.
	if line != 10 || par != 9 {
		t.Errorf("line=%d par=%d, want 10/9", line, par)
	}
}

func TestDecomposeFig9(t *testing.T) {
	g := fig9Graph(t)
	segs, err := g.Decompose(0)
	if err != nil {
		t.Fatalf("Decompose: %v", err)
	}
	if len(segs) != 3 {
		t.Fatalf("got %d segments, want 3 (v0, parallel, v7)", len(segs))
	}
	if segs[0].IsParallel() || segs[2].IsParallel() || !segs[1].IsParallel() {
		t.Fatalf("segment shapes wrong: %+v", segs)
	}
	if len(segs[1].Branches) != 3 {
		t.Errorf("parallel region has %d branches, want 3", len(segs[1].Branches))
	}
}

func TestDecomposeLine(t *testing.T) {
	g := lineGraph(t)
	segs, err := g.Decompose(0)
	if err != nil {
		t.Fatalf("Decompose: %v", err)
	}
	if len(segs) != g.Len() {
		t.Errorf("line decomposition should be one segment per node, got %d", len(segs))
	}
	for _, s := range segs {
		if s.IsParallel() {
			t.Error("line graph must have no parallel segments")
		}
	}
}

// residualGraph has a bypass edge straight from entry to exit, like a
// MobileNet bottleneck residual module.
func TestDecomposeResidualBypass(t *testing.T) {
	s := tensor.NewCHW(4, 8, 8)
	g := New("residual")
	in := g.Add(&nn.Input{LayerName: "in", Shape: s})
	a := g.Add(nn.NewActivation("body1", nn.ReLU), in)
	b := g.Add(nn.NewActivation("body2", nn.ReLU), a)
	g.Add(&nn.Add{LayerName: "join"}, b, in)
	if err := g.Finalize(); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	segs, err := g.Decompose(0)
	if err != nil {
		t.Fatalf("Decompose: %v", err)
	}
	// in, parallel{[body1 body2], []}, join
	if len(segs) != 3 || !segs[1].IsParallel() {
		t.Fatalf("segments = %+v", segs)
	}
	br := segs[1].Branches
	if len(br) != 2 {
		t.Fatalf("branches = %v, want 2 (body + empty bypass)", br)
	}
	hasEmpty, hasBody := false, false
	for _, b := range br {
		switch len(b) {
		case 0:
			hasEmpty = true
		case 2:
			hasBody = true
		}
	}
	if !hasEmpty || !hasBody {
		t.Errorf("want one empty bypass branch and one 2-node body, got %v", br)
	}
}

func TestDecomposeBranchLimit(t *testing.T) {
	g := deepParallel(t, 1, 5)
	if _, err := g.Decompose(3); !errors.Is(err, ErrTooManyPaths) {
		t.Errorf("want ErrTooManyPaths with tight branch limit, got %v", err)
	}
}
