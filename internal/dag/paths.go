package dag

import "fmt"

// ErrTooManyPaths is returned by AllPaths when the source→sink path
// count exceeds the caller's limit; deep general-structure networks
// (a chain of Inception modules has branch^modules paths) must use
// Decompose instead.
var ErrTooManyPaths = fmt.Errorf("dag: path count exceeds limit")

// AllPaths enumerates every source→sink path, the exact node
// duplication conversion of Fig. 9: a node with out-degree d appears
// on d downstream path families. Paths are returned as node-ID slices
// in topological order. limit bounds the number of paths (0 means 1024).
func (g *Graph) AllPaths(limit int) ([][]int, error) {
	g.mustFinalized()
	if limit <= 0 {
		limit = 1024
	}
	sink := g.Sink()
	var paths [][]int
	var cur []int
	var walk func(v int) error
	walk = func(v int) error {
		cur = append(cur, v)
		defer func() { cur = cur[:len(cur)-1] }()
		if v == sink {
			if len(paths) >= limit {
				return ErrTooManyPaths
			}
			paths = append(paths, append([]int(nil), cur...))
			return nil
		}
		for _, s := range g.succs[v] {
			if err := walk(s); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(g.Source()); err != nil {
		return nil, err
	}
	return paths, nil
}

// CountPaths returns the number of source→sink paths without
// enumerating them (dynamic programming over the topological order),
// saturating at maxInt to stay overflow-safe on pathological graphs.
func (g *Graph) CountPaths() int {
	g.mustFinalized()
	const maxInt = int(^uint(0) >> 1)
	count := make([]int, len(g.nodes))
	count[g.Source()] = 1
	for _, id := range g.topo {
		for _, s := range g.succs[id] {
			if count[s] > maxInt-count[id] {
				count[s] = maxInt
			} else {
				count[s] += count[id]
			}
		}
	}
	return count[g.Sink()]
}

// Articulations returns, in topological order, the nodes that lie on
// every source→sink path (including the source and sink themselves).
// These are the only single-node cut-points of a general DAG; the
// regions between consecutive articulations are the parallel segments
// Decompose splits into branches.
//
// A node v (other than source/sink) lies on every path iff removing v
// disconnects source from sink. Graphs here are model-sized (≤ a few
// hundred nodes), so the O(V·(V+E)) removal check is plenty fast.
func (g *Graph) Articulations() []int {
	g.mustFinalized()
	src, sink := g.Source(), g.Sink()
	var arts []int
	for _, v := range g.topo {
		if v == src || v == sink {
			arts = append(arts, v)
			continue
		}
		if !g.reachableAvoiding(src, sink, v) {
			arts = append(arts, v)
		}
	}
	return arts
}

// reachableAvoiding reports whether 'to' is reachable from 'from'
// without visiting 'avoid'.
func (g *Graph) reachableAvoiding(from, to, avoid int) bool {
	if from == avoid || to == avoid {
		return false
	}
	seen := make([]bool, len(g.nodes))
	stack := []int{from}
	seen[from] = true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if v == to {
			return true
		}
		for _, s := range g.succs[v] {
			if s != avoid && !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return false
}

// Segment is one element of a series decomposition: either a single
// articulation node (a line step every path crosses) or a parallel
// region whose Branches are the independent paths between the
// enclosing articulation nodes (endpoints excluded).
type Segment struct {
	// Node is set for a line step (Parallel == nil).
	Node int
	// Branches holds the interior node IDs of each independent path of
	// a parallel region, in topological order. Nil for line steps.
	Branches [][]int
	// Entry and Exit are the articulation nodes delimiting a parallel
	// region. Unused for line steps.
	Entry, Exit int
}

// IsParallel reports whether the segment is a parallel region.
func (s *Segment) IsParallel() bool { return s.Branches != nil }

// Decompose splits the graph into a series of segments delimited by
// articulation nodes. This is the hierarchical form of the paper's
// Fig. 9 conversion: each parallel region's branches are exactly its
// independent paths, but regions are handled one at a time, so a chain
// of Inception modules stays linear in size instead of exponential.
// branchLimit bounds the paths enumerated inside one region (0 = 256).
func (g *Graph) Decompose(branchLimit int) ([]Segment, error) {
	g.mustFinalized()
	if branchLimit <= 0 {
		branchLimit = 256
	}
	arts := g.Articulations()
	var segs []Segment
	for i, a := range arts {
		segs = append(segs, Segment{Node: a})
		if i+1 >= len(arts) {
			break
		}
		next := arts[i+1]
		branches, err := g.regionBranches(a, next, branchLimit)
		if err != nil {
			return nil, err
		}
		if len(branches) == 1 && len(branches[0]) == 0 {
			continue // direct edge a→next, no region between
		}
		segs = append(segs, Segment{Branches: branches, Entry: a, Exit: next})
	}
	return segs, nil
}

// regionBranches enumerates the interior of every path from entry to
// exit. For a single-level parallel region (e.g. an Inception module)
// these are its branches; for nested regions they are the flattened
// independent paths, matching the paper's conversion semantics.
func (g *Graph) regionBranches(entry, exit, limit int) ([][]int, error) {
	var branches [][]int
	var cur []int
	var walk func(v int) error
	walk = func(v int) error {
		if v == exit {
			if len(branches) >= limit {
				return ErrTooManyPaths
			}
			branches = append(branches, append([]int(nil), cur...))
			return nil
		}
		cur = append(cur, v)
		defer func() { cur = cur[:len(cur)-1] }()
		for _, s := range g.succs[v] {
			if err := walk(s); err != nil {
				return err
			}
		}
		return nil
	}
	for _, s := range g.succs[entry] {
		if err := walk(s); err != nil {
			return nil, err
		}
	}
	return branches, nil
}
