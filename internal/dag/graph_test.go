package dag

import (
	"strings"
	"testing"

	"dnnjps/internal/nn"
	"dnnjps/internal/tensor"
)

// lineGraph builds input -> conv -> pool -> dense, a minimal line DNN.
func lineGraph(t *testing.T) *Graph {
	t.Helper()
	g := New("tiny")
	in := g.Add(&nn.Input{LayerName: "input", Shape: tensor.NewCHW(3, 32, 32)})
	c := g.Add(&nn.Conv2D{LayerName: "conv", OutC: 8, KH: 3, KW: 3, Stride: 1, Pad: 1}, in)
	p := g.Add(nn.NewMaxPool2D("pool", 2, 2, 0), c)
	g.Add(&nn.Dense{LayerName: "fc", Out: 10}, p)
	if err := g.Finalize(); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	return g
}

// fig9Graph reproduces the paper's Fig. 9(a) example DAG:
//
//	v0 -> v1 -> {v2, v3} -> v4 -> v7
//	v0 -> v5 -> v6 -> v7
func fig9Graph(t *testing.T) *Graph {
	t.Helper()
	s := tensor.NewCHW(4, 8, 8)
	g := New("fig9")
	v0 := g.Add(&nn.Input{LayerName: "v0", Shape: s})
	v1 := g.Add(nn.NewActivation("v1", nn.ReLU), v0)
	v2 := g.Add(nn.NewActivation("v2", nn.ReLU), v1)
	v3 := g.Add(nn.NewActivation("v3", nn.ReLU), v1)
	v4 := g.Add(&nn.Add{LayerName: "v4"}, v2, v3)
	v5 := g.Add(nn.NewActivation("v5", nn.ReLU), v0)
	v6 := g.Add(nn.NewActivation("v6", nn.ReLU), v5)
	g.Add(&nn.Add{LayerName: "v7"}, v4, v6)
	if err := g.Finalize(); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	return g
}

func TestFinalizeInfersShapes(t *testing.T) {
	g := lineGraph(t)
	conv, _ := g.NodeByName("conv")
	if !conv.OutShape.Equal(tensor.NewCHW(8, 32, 32)) {
		t.Errorf("conv shape = %v", conv.OutShape)
	}
	pool, _ := g.NodeByName("pool")
	if !pool.OutShape.Equal(tensor.NewCHW(8, 16, 16)) {
		t.Errorf("pool shape = %v", pool.OutShape)
	}
	fc, _ := g.NodeByName("fc")
	if !fc.OutShape.Equal(tensor.NewVec(10)) {
		t.Errorf("fc shape = %v", fc.OutShape)
	}
}

func TestLineDetection(t *testing.T) {
	if !lineGraph(t).IsLine() {
		t.Error("line graph not detected as line")
	}
	if fig9Graph(t).IsLine() {
		t.Error("fig9 graph wrongly detected as line")
	}
}

func TestSourceSinkTopo(t *testing.T) {
	g := fig9Graph(t)
	if g.Source() != 0 {
		t.Errorf("source = %d", g.Source())
	}
	sink := g.Sink()
	if g.Node(sink).Layer.Name() != "v7" {
		t.Errorf("sink = %q", g.Node(sink).Layer.Name())
	}
	// Topo order respects edges.
	pos := make(map[int]int)
	for i, id := range g.Topo() {
		pos[id] = i
	}
	for id := 0; id < g.Len(); id++ {
		for _, s := range g.Succs(id) {
			if pos[id] >= pos[s] {
				t.Errorf("topo violates edge %d->%d", id, s)
			}
		}
	}
}

func TestFinalizeErrors(t *testing.T) {
	// Two sinks.
	g := New("twosinks")
	in := g.Add(&nn.Input{LayerName: "in", Shape: tensor.NewCHW(1, 4, 4)})
	g.Add(nn.NewActivation("a", nn.ReLU), in)
	g.Add(nn.NewActivation("b", nn.ReLU), in)
	if err := g.Finalize(); err == nil || !strings.Contains(err.Error(), "sink") {
		t.Errorf("want sink error, got %v", err)
	}

	// Two sources.
	g2 := New("twosources")
	g2.Add(&nn.Input{LayerName: "in1", Shape: tensor.NewCHW(1, 4, 4)})
	g2.Add(&nn.Input{LayerName: "in2", Shape: tensor.NewCHW(1, 4, 4)})
	if err := g2.Finalize(); err == nil || !strings.Contains(err.Error(), "source") {
		t.Errorf("want source error, got %v", err)
	}

	// Source is not an input layer.
	g3 := New("badsource")
	a := g3.Add(nn.NewActivation("a", nn.ReLU))
	g3.Add(nn.NewActivation("b", nn.ReLU), a)
	if err := g3.Finalize(); err == nil || !strings.Contains(err.Error(), "input layer") {
		t.Errorf("want input-layer error, got %v", err)
	}

	// Shape error propagates.
	g4 := New("badshape")
	in4 := g4.Add(&nn.Input{LayerName: "in", Shape: tensor.NewCHW(3, 4, 4)})
	g4.Add(&nn.Conv2D{LayerName: "huge", OutC: 8, KH: 9, KW: 9, Stride: 1}, in4)
	if err := g4.Finalize(); err == nil {
		t.Error("want shape inference error")
	}

	// Empty graph.
	if err := New("empty").Finalize(); err == nil {
		t.Error("want empty-graph error")
	}
}

func TestAddPanics(t *testing.T) {
	g := New("p")
	g.Add(&nn.Input{LayerName: "in", Shape: tensor.NewCHW(1, 2, 2)})
	mustPanic(t, "duplicate name", func() {
		g.Add(&nn.Input{LayerName: "in", Shape: tensor.NewCHW(1, 2, 2)})
	})
	mustPanic(t, "unknown pred", func() {
		g.Add(nn.NewActivation("a", nn.ReLU), 42)
	})
}

func TestUseBeforeFinalizePanics(t *testing.T) {
	g := New("raw")
	g.Add(&nn.Input{LayerName: "in", Shape: tensor.NewCHW(1, 2, 2)})
	mustPanic(t, "Topo before Finalize", func() { g.Topo() })
}

func mustPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic: %s", what)
		}
	}()
	f()
}

func TestNodeCostQueries(t *testing.T) {
	g := lineGraph(t)
	conv, _ := g.NodeByName("conv")
	wantFLOPs := 2.0 * 3 * 3 * 3 * 8 * 32 * 32
	if got := g.NodeFLOPs(conv.ID); got != wantFLOPs {
		t.Errorf("conv FLOPs = %g, want %g", got, wantFLOPs)
	}
	if got := g.NodeParams(conv.ID); got != 8*3*3*3 {
		t.Errorf("conv params = %d", got)
	}
	if got := g.OutBytes(conv.ID, tensor.Float32); got != 8*32*32*4 {
		t.Errorf("conv out bytes = %d", got)
	}
	if g.TotalFLOPs() <= wantFLOPs {
		t.Error("total FLOPs should exceed conv FLOPs alone")
	}
	if g.TotalParams() <= g.NodeParams(conv.ID) {
		t.Error("total params should exceed conv params alone")
	}
}

func TestAncestors(t *testing.T) {
	g := fig9Graph(t)
	v4, _ := g.NodeByName("v4")
	anc := g.Ancestors(v4.ID)
	wantIn := []string{"v0", "v1", "v2", "v3", "v4"}
	wantOut := []string{"v5", "v6", "v7"}
	for _, n := range wantIn {
		nd, _ := g.NodeByName(n)
		if !anc[nd.ID] {
			t.Errorf("%s missing from ancestors of v4", n)
		}
	}
	for _, n := range wantOut {
		nd, _ := g.NodeByName(n)
		if anc[nd.ID] {
			t.Errorf("%s wrongly in ancestors of v4", n)
		}
	}
}

func TestCutBytesCountsTensorOnce(t *testing.T) {
	g := fig9Graph(t)
	// Mobile = {v0, v1}: v1 feeds v2 and v3 (both cloud) but its tensor
	// is uploaded once; v0 feeds v5 (cloud), so its tensor also ships.
	v0, _ := g.NodeByName("v0")
	v1, _ := g.NodeByName("v1")
	mobile := map[int]bool{v0.ID: true, v1.ID: true}
	per := tensor.NewCHW(4, 8, 8).Bytes(tensor.Float32)
	if got := g.CutBytes(mobile, tensor.Float32); got != 2*per {
		t.Errorf("CutBytes = %d, want %d (two tensors, each once)", got, 2*per)
	}
}

func TestValidCut(t *testing.T) {
	g := fig9Graph(t)
	v0, _ := g.NodeByName("v0")
	v1, _ := g.NodeByName("v1")
	v2, _ := g.NodeByName("v2")
	if !g.ValidCut(map[int]bool{v0.ID: true, v1.ID: true, v2.ID: true}) {
		t.Error("downward-closed set must be a valid cut")
	}
	if g.ValidCut(map[int]bool{v2.ID: true}) {
		t.Error("set missing predecessors must be invalid")
	}
	if !g.ValidCut(map[int]bool{}) {
		t.Error("empty set (cloud-only) must be a valid cut")
	}
}

func TestMobileFLOPs(t *testing.T) {
	g := lineGraph(t)
	conv, _ := g.NodeByName("conv")
	mobile := g.Ancestors(conv.ID)
	if got := g.MobileFLOPs(mobile); got != g.NodeFLOPs(conv.ID) {
		t.Errorf("MobileFLOPs = %g, want conv-only %g", got, g.NodeFLOPs(conv.ID))
	}
}

func TestNodeByNameMissing(t *testing.T) {
	g := lineGraph(t)
	if _, ok := g.NodeByName("nope"); ok {
		t.Error("lookup of missing name must fail")
	}
}
