package dag

import (
	"fmt"
	"io"
	"strings"

	"dnnjps/internal/tensor"
)

// WriteDOT emits the graph in Graphviz DOT format, one node per layer
// annotated with its kind and output shape, edges labeled with the
// tensor byte volume they carry — handy for eyeballing where the
// planner's cut candidates sit.
func (g *Graph) WriteDOT(w io.Writer, dt tensor.DType) error {
	g.mustFinalized()
	if _, err := fmt.Fprintf(w, "digraph %q {\n  rankdir=TB;\n  node [shape=box, fontsize=10];\n", g.name); err != nil {
		return err
	}
	for _, id := range g.topo {
		n := g.nodes[id]
		label := fmt.Sprintf("%s\\n%s %s", escapeDOT(n.Layer.Name()), n.Layer.Kind(), n.OutShape)
		if _, err := fmt.Fprintf(w, "  n%d [label=\"%s\"];\n", id, label); err != nil {
			return err
		}
	}
	for _, id := range g.topo {
		for _, s := range g.succs[id] {
			if _, err := fmt.Fprintf(w, "  n%d -> n%d [label=\"%dB\", fontsize=8];\n",
				id, s, g.OutBytes(id, dt)); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

func escapeDOT(s string) string {
	return strings.NewReplacer(`"`, `\"`, `\`, `\\`).Replace(s)
}
