package dag

import (
	"strings"
	"testing"

	"dnnjps/internal/tensor"
)

func TestWriteDOT(t *testing.T) {
	g := fig9Graph(t)
	var sb strings.Builder
	if err := g.WriteDOT(&sb, tensor.Float32); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"digraph \"fig9\"",
		"v0", "v7",
		"->",
		"1024B", // 4x8x8 float32 tensors on every edge
		"}",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
	// One node line per graph node, one edge line per edge.
	nodes := strings.Count(out, "[label=\"v")
	if nodes != g.Len() {
		t.Errorf("DOT has %d node labels, want %d", nodes, g.Len())
	}
	edges := strings.Count(out, "->")
	wantEdges := 0
	for id := 0; id < g.Len(); id++ {
		wantEdges += len(g.Succs(id))
	}
	if edges != wantEdges {
		t.Errorf("DOT has %d edges, want %d", edges, wantEdges)
	}
}

func TestWriteDOTUnfinalizedPanics(t *testing.T) {
	g := New("raw")
	mustPanic(t, "WriteDOT before Finalize", func() {
		_ = g.WriteDOT(&strings.Builder{}, tensor.Float32)
	})
}

func TestEscapeDOT(t *testing.T) {
	if got := escapeDOT(`a"b\c`); got != `a\"b\\c` {
		t.Errorf("escapeDOT = %q", got)
	}
}
