// Package dag models a DNN as the directed acyclic graph of Section 3
// of the paper: one node per layer, edges carrying the activation
// tensors whose byte volume is the offloading cost. It provides the
// graph algebra the planner needs — topological order, line-structure
// detection, ancestor closures, cut volumes, all-paths conversion
// (Fig. 9) and series-parallel decomposition for general DNNs.
package dag

import (
	"fmt"

	"dnnjps/internal/nn"
	"dnnjps/internal/tensor"
)

// Node is one layer instance inside a graph, with its inferred output
// shape cached after Finalize.
type Node struct {
	ID       int
	Layer    nn.Layer
	OutShape tensor.Shape
}

// Graph is a DNN computation graph under construction or finalized.
// Build with New/Add, then call Finalize before using any query
// method.
type Graph struct {
	name      string
	nodes     []*Node
	preds     [][]int
	succs     [][]int
	byName    map[string]int
	topo      []int
	finalized bool
}

// New creates an empty graph with a model name.
func New(name string) *Graph {
	return &Graph{name: name, byName: make(map[string]int)}
}

// Name returns the model name.
func (g *Graph) Name() string { return g.name }

// Add appends a layer whose inputs are the outputs of preds (in the
// given order) and returns its node ID. The first layer added must be
// an nn.Input with no predecessors. Add panics on structural misuse —
// duplicate names, unknown predecessors — because model construction
// is programmer-controlled, not data-driven.
func (g *Graph) Add(layer nn.Layer, preds ...int) int {
	if g.finalized {
		panic("dag: Add after Finalize")
	}
	if _, dup := g.byName[layer.Name()]; dup {
		panic(fmt.Sprintf("dag: duplicate layer name %q", layer.Name()))
	}
	id := len(g.nodes)
	for _, p := range preds {
		if p < 0 || p >= id {
			panic(fmt.Sprintf("dag: layer %q references unknown predecessor %d", layer.Name(), p))
		}
	}
	g.nodes = append(g.nodes, &Node{ID: id, Layer: layer})
	g.preds = append(g.preds, append([]int(nil), preds...))
	g.succs = append(g.succs, nil)
	for _, p := range preds {
		g.succs[p] = append(g.succs[p], id)
	}
	g.byName[layer.Name()] = id
	return id
}

// Finalize validates the structure and infers every node's output
// shape. It requires exactly one source (an nn.Input) and exactly one
// sink, and that every node is reachable from the source.
func (g *Graph) Finalize() error {
	if g.finalized {
		return nil
	}
	if len(g.nodes) == 0 {
		return fmt.Errorf("dag %s: empty graph", g.name)
	}
	var sources, sinks []int
	for id := range g.nodes {
		if len(g.preds[id]) == 0 {
			sources = append(sources, id)
		}
		if len(g.succs[id]) == 0 {
			sinks = append(sinks, id)
		}
	}
	if len(sources) != 1 {
		return fmt.Errorf("dag %s: want exactly 1 source, have %d", g.name, len(sources))
	}
	if len(sinks) != 1 {
		return fmt.Errorf("dag %s: want exactly 1 sink, have %d", g.name, len(sinks))
	}
	if _, ok := g.nodes[sources[0]].Layer.(*nn.Input); !ok {
		return fmt.Errorf("dag %s: source %q is not an input layer", g.name, g.nodes[sources[0]].Layer.Name())
	}
	// Since Add only allows predecessors with smaller IDs, insertion
	// order is already topological.
	g.topo = make([]int, len(g.nodes))
	for i := range g.topo {
		g.topo[i] = i
	}
	// Shape inference in topological order.
	for _, id := range g.topo {
		ins := make([]tensor.Shape, len(g.preds[id]))
		for i, p := range g.preds[id] {
			ins[i] = g.nodes[p].OutShape
		}
		out, err := g.nodes[id].Layer.OutputShape(ins)
		if err != nil {
			return fmt.Errorf("dag %s: %w", g.name, err)
		}
		g.nodes[id].OutShape = out
	}
	// Reachability from the source (catches disconnected islands that
	// still happen to have preds/succs, which is impossible here, but
	// also guards future construction paths).
	seen := make([]bool, len(g.nodes))
	stack := []int{sources[0]}
	seen[sources[0]] = true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range g.succs[v] {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	for id, ok := range seen {
		if !ok {
			return fmt.Errorf("dag %s: node %q unreachable from source", g.name, g.nodes[id].Layer.Name())
		}
	}
	g.finalized = true
	return nil
}

// MustFinalize is Finalize for model constructors where a failure is a
// programming error.
func (g *Graph) MustFinalize() *Graph {
	if err := g.Finalize(); err != nil {
		panic(err)
	}
	return g
}

func (g *Graph) mustFinalized() {
	if !g.finalized {
		panic("dag: graph used before Finalize")
	}
}

// Len returns the number of nodes.
func (g *Graph) Len() int { return len(g.nodes) }

// Node returns the node with the given ID.
func (g *Graph) Node(id int) *Node { return g.nodes[id] }

// NodeByName returns the node with the given layer name.
func (g *Graph) NodeByName(name string) (*Node, bool) {
	id, ok := g.byName[name]
	if !ok {
		return nil, false
	}
	return g.nodes[id], true
}

// Preds returns the predecessor IDs of a node (do not mutate).
func (g *Graph) Preds(id int) []int { return g.preds[id] }

// Succs returns the successor IDs of a node (do not mutate).
func (g *Graph) Succs(id int) []int { return g.succs[id] }

// Topo returns the node IDs in topological order (do not mutate).
func (g *Graph) Topo() []int { g.mustFinalized(); return g.topo }

// Source returns the single source node ID.
func (g *Graph) Source() int {
	g.mustFinalized()
	return g.topo[0]
}

// Sink returns the single sink node ID.
func (g *Graph) Sink() int {
	g.mustFinalized()
	for _, id := range g.topo {
		if len(g.succs[id]) == 0 {
			return id
		}
	}
	panic("dag: finalized graph has no sink")
}

// InputShapes returns the output shapes of a node's predecessors, i.e.
// the shapes the node consumes.
func (g *Graph) InputShapes(id int) []tensor.Shape {
	g.mustFinalized()
	ins := make([]tensor.Shape, len(g.preds[id]))
	for i, p := range g.preds[id] {
		ins[i] = g.nodes[p].OutShape
	}
	return ins
}

// NodeFLOPs returns the FLOPs of one node given its inferred inputs.
func (g *Graph) NodeFLOPs(id int) float64 {
	return g.nodes[id].Layer.FLOPs(g.InputShapes(id))
}

// NodeParams returns the parameter count of one node.
func (g *Graph) NodeParams(id int) int64 {
	return g.nodes[id].Layer.ParamCount(g.InputShapes(id))
}

// OutBytes returns the serialized size of a node's output tensor.
func (g *Graph) OutBytes(id int, dt tensor.DType) int {
	g.mustFinalized()
	return g.nodes[id].OutShape.Bytes(dt)
}

// TotalFLOPs sums the FLOPs of every node.
func (g *Graph) TotalFLOPs() float64 {
	g.mustFinalized()
	var sum float64
	for _, id := range g.topo {
		sum += g.NodeFLOPs(id)
	}
	return sum
}

// TotalParams sums the parameter counts of every node.
func (g *Graph) TotalParams() int64 {
	g.mustFinalized()
	var sum int64
	for _, id := range g.topo {
		sum += g.NodeParams(id)
	}
	return sum
}

// IsLine reports whether the graph is a simple chain (every node has
// at most one predecessor and one successor).
func (g *Graph) IsLine() bool {
	g.mustFinalized()
	for id := range g.nodes {
		if len(g.preds[id]) > 1 || len(g.succs[id]) > 1 {
			return false
		}
	}
	return true
}

// Ancestors returns the set of the given nodes and all their
// transitive predecessors — the mobile-side node set induced by a
// partition P (the paper's "cut-points and their predecessors").
func (g *Graph) Ancestors(ids ...int) map[int]bool {
	g.mustFinalized()
	set := make(map[int]bool)
	var stack []int
	for _, id := range ids {
		if id < 0 || id >= len(g.nodes) {
			panic(fmt.Sprintf("dag: Ancestors of unknown node %d", id))
		}
		if !set[id] {
			set[id] = true
			stack = append(stack, id)
		}
	}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range g.preds[v] {
			if !set[p] {
				set[p] = true
				stack = append(stack, p)
			}
		}
	}
	return set
}

// CutBytes returns the bytes that must be uploaded for the given
// mobile-side node set: each mobile node whose output feeds at least
// one cloud-side node ships its tensor exactly once (the same tensor
// serves all cloud consumers).
func (g *Graph) CutBytes(mobile map[int]bool, dt tensor.DType) int {
	g.mustFinalized()
	total := 0
	for id := range mobile {
		for _, s := range g.succs[id] {
			if !mobile[s] {
				total += g.OutBytes(id, dt)
				break
			}
		}
	}
	return total
}

// MobileFLOPs sums FLOPs over a mobile-side node set.
func (g *Graph) MobileFLOPs(mobile map[int]bool) float64 {
	g.mustFinalized()
	var sum float64
	for id := range mobile {
		sum += g.NodeFLOPs(id)
	}
	return sum
}

// ValidCut reports whether a mobile-side node set is downward closed
// (contains all predecessors of its members) — the feasibility
// condition for a partition.
func (g *Graph) ValidCut(mobile map[int]bool) bool {
	g.mustFinalized()
	for id := range mobile {
		for _, p := range g.preds[id] {
			if !mobile[p] {
				return false
			}
		}
	}
	return true
}
