package sim

import (
	"dnnjps/internal/core"
)

// Resource names used by the plan bridges.
const (
	ResMobile = "mobile"
	ResUplink = "uplink"
	ResCloud  = "cloud"
)

// FromPlan expands a line-structure plan into simulator jobs: each
// inference job becomes mobile→uplink→cloud stages with the plan's
// f/g/cloud durations, prioritized by its position in the Johnson
// sequence.
func FromPlan(p *core.Plan) []JobSpec {
	jobs := make([]JobSpec, 0, len(p.Sequence))
	for pos, fj := range p.Sequence {
		cut := p.Cuts[fj.ID]
		jobs = append(jobs, JobSpec{
			ID:       fj.ID,
			Priority: pos,
			Stages: []StageSpec{
				{Resource: ResMobile, Ms: fj.A},
				{Resource: ResUplink, Ms: fj.B},
				{Resource: ResCloud, Ms: p.Curve.CloudMs[cut]},
			},
		})
	}
	return jobs
}

// FromStreamPlan expands a streaming plan: each frame becomes
// mobile→uplink→cloud stages released at its arrival time, run in
// arrival order.
func FromStreamPlan(p *core.StreamPlan) []JobSpec {
	jobs := make([]JobSpec, 0, len(p.Jobs))
	for i, sj := range p.Jobs {
		jobs = append(jobs, JobSpec{
			ID:        sj.ID,
			Priority:  i,
			ReleaseMs: sj.ReleaseMs,
			Stages: []StageSpec{
				{Resource: ResMobile, Ms: sj.F},
				{Resource: ResUplink, Ms: sj.G},
				{Resource: ResCloud, Ms: sj.CloudMs},
			},
		})
	}
	return jobs
}

// FromGeneralPlan expands an Algorithm 3 plan: each path job becomes
// mobile→uplink stages with its deduplicated durations (cloud time is
// folded into a final zero-or-more stage only when the plan carries
// it; path granularity has no per-path cloud estimate, matching the
// paper's two-stage treatment).
func FromGeneralPlan(gp *core.GeneralPlan) []JobSpec {
	jobs := make([]JobSpec, 0, len(gp.Sequence))
	for pos, pj := range gp.Sequence {
		jobs = append(jobs, JobSpec{
			ID:       pos,
			Priority: pos,
			Stages: []StageSpec{
				{Resource: ResMobile, Ms: pj.ActualF},
				{Resource: ResUplink, Ms: pj.ActualG},
			},
		})
	}
	return jobs
}
