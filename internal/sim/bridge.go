package sim

import (
	"fmt"

	"dnnjps/internal/core"
)

// Resource names used by the plan bridges.
const (
	ResMobile = "mobile"
	ResUplink = "uplink"
	ResCloud  = "cloud"
)

// FromPlan expands a line-structure plan into simulator jobs: each
// inference job becomes mobile→uplink→cloud stages with the plan's
// f/g/cloud durations, prioritized by its position in the Johnson
// sequence.
func FromPlan(p *core.Plan) []JobSpec {
	jobs := make([]JobSpec, 0, len(p.Sequence))
	for pos, fj := range p.Sequence {
		cut := p.Cuts[fj.ID]
		jobs = append(jobs, JobSpec{
			ID:       fj.ID,
			Priority: pos,
			Stages: []StageSpec{
				{Resource: ResMobile, Ms: fj.A},
				{Resource: ResUplink, Ms: fj.B},
				{Resource: ResCloud, Ms: p.Curve.CloudMs[cut]},
			},
		})
	}
	return jobs
}

// FromDurations expands explicit per-job stage durations, indexed by
// sequence position, into mobile→uplink→cloud simulator jobs. It is
// the bridge for replaying measured runtime timings (e.g. a live
// pipelined run's per-job mobile and cloud times) through the
// discrete-event model. cloud may be nil for a two-stage replay; g
// likewise for local-only jobs.
func FromDurations(f, g, cloud []float64) []JobSpec {
	jobs := make([]JobSpec, 0, len(f))
	at := func(xs []float64, i int) float64 {
		if i < len(xs) {
			return xs[i]
		}
		return 0
	}
	for i := range f {
		jobs = append(jobs, JobSpec{
			ID:       i,
			Priority: i,
			Stages: []StageSpec{
				{Resource: ResMobile, Ms: f[i]},
				{Resource: ResUplink, Ms: at(g, i)},
				{Resource: ResCloud, Ms: at(cloud, i)},
			},
		})
	}
	return jobs
}

// FromStreamPlan expands a streaming plan: each frame becomes
// mobile→uplink→cloud stages released at its arrival time, run in
// arrival order.
func FromStreamPlan(p *core.StreamPlan) []JobSpec {
	jobs := make([]JobSpec, 0, len(p.Jobs))
	for i, sj := range p.Jobs {
		jobs = append(jobs, JobSpec{
			ID:        sj.ID,
			Priority:  i,
			ReleaseMs: sj.ReleaseMs,
			Stages: []StageSpec{
				{Resource: ResMobile, Ms: sj.F},
				{Resource: ResUplink, Ms: sj.G},
				{Resource: ResCloud, Ms: sj.CloudMs},
			},
		})
	}
	return jobs
}

// FromChainPlan expands a k-way chain plan into simulator jobs: each
// job's (k+1)-stage pipeline becomes device-0 compute on ResMobile
// followed by one stage per link resource ("link0", "link1", …),
// prioritized by sequence position. The event-simulated makespan
// cross-checks the m-machine flow-shop recurrence the planner priced
// with (TestFromChainPlanMatchesMakespanM).
func FromChainPlan(p *core.ChainPlan) []JobSpec {
	jobs := make([]JobSpec, 0, len(p.Sequence))
	for pos, jm := range p.Sequence {
		stages := make([]StageSpec, len(jm.Stages))
		stages[0] = StageSpec{Resource: ResMobile, Ms: jm.Stages[0]}
		for l := 1; l < len(jm.Stages); l++ {
			stages[l] = StageSpec{Resource: fmt.Sprintf("link%d", l-1), Ms: jm.Stages[l]}
		}
		jobs = append(jobs, JobSpec{ID: jm.ID, Priority: pos, Stages: stages})
	}
	return jobs
}

// FromGeneralPlan expands an Algorithm 3 plan: each path job becomes
// mobile→uplink stages with its deduplicated durations (cloud time is
// folded into a final zero-or-more stage only when the plan carries
// it; path granularity has no per-path cloud estimate, matching the
// paper's two-stage treatment).
func FromGeneralPlan(gp *core.GeneralPlan) []JobSpec {
	jobs := make([]JobSpec, 0, len(gp.Sequence))
	for pos, pj := range gp.Sequence {
		jobs = append(jobs, JobSpec{
			ID:       pos,
			Priority: pos,
			Stages: []StageSpec{
				{Resource: ResMobile, Ms: pj.ActualF},
				{Resource: ResUplink, Ms: pj.ActualG},
			},
		})
	}
	return jobs
}
