package sim

import (
	"math"
	"math/rand"
	"testing"

	"dnnjps/internal/core"
	"dnnjps/internal/flowshop"
	"dnnjps/internal/models"
	"dnnjps/internal/netsim"
	"dnnjps/internal/profile"
	"dnnjps/internal/tensor"
)

func TestReleaseTimesRespected(t *testing.T) {
	jobs := []JobSpec{
		{ID: 0, Priority: 0, ReleaseMs: 0, Stages: []StageSpec{{ResMobile, 5}}},
		{ID: 1, Priority: 1, ReleaseMs: 100, Stages: []StageSpec{{ResMobile, 5}}},
	}
	res, err := Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completions[0] != 5 {
		t.Errorf("job 0 done at %g, want 5", res.Completions[0])
	}
	if res.Completions[1] != 105 {
		t.Errorf("job 1 done at %g, want 105 (released at 100)", res.Completions[1])
	}
	// Mobile lane must be idle between the two jobs.
	g := res.Gantt[ResMobile]
	if len(g) != 2 || g[1].Start != 100 {
		t.Errorf("gantt = %+v", g)
	}
}

func TestNegativeReleaseRejected(t *testing.T) {
	if _, err := Run([]JobSpec{{ReleaseMs: -1, Stages: []StageSpec{{ResMobile, 1}}}}); err == nil {
		t.Error("negative release must error")
	}
}

func TestLaterReleaseCanOvertakeBusyResource(t *testing.T) {
	// Job 0 occupies mobile 0..10; job 1 (released at 2) queues and
	// runs 10..13 — FIFO by ready time.
	jobs := []JobSpec{
		{ID: 0, ReleaseMs: 0, Stages: []StageSpec{{ResMobile, 10}}},
		{ID: 1, ReleaseMs: 2, Stages: []StageSpec{{ResMobile, 3}}},
	}
	res, err := Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completions[1] != 13 {
		t.Errorf("queued job done at %g, want 13", res.Completions[1])
	}
}

func TestStreamPlanSimulation(t *testing.T) {
	pi, gpu := profile.RaspberryPi4(), profile.CloudGPU()
	curve := profile.BuildCurve(models.MustBuild("alexnet"), pi, gpu, netsim.FourG, tensor.Float32)
	n := 60

	// Comfortably sustainable interval: per-frame latency stays
	// bounded (no queue growth) — the last frame's sojourn time is
	// close to the first's.
	plan, err := core.PlanStream(curve, core.PeriodicReleases(n, 0))
	if err != nil {
		t.Fatal(err)
	}
	interval := plan.SustainableMs * 1.2
	plan, err = core.PlanStream(curve, core.PeriodicReleases(n, interval))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(FromStreamPlan(plan))
	if err != nil {
		t.Fatal(err)
	}
	var worstSojourn float64
	for _, j := range plan.Jobs {
		s := res.Completions[j.ID] - j.ReleaseMs
		if s > worstSojourn {
			worstSojourn = s
		}
	}
	// Bounded: no frame waits more than a few service times.
	if worstSojourn > 5*plan.SustainableMs {
		t.Errorf("sustainable stream has unbounded-looking sojourn %.1f (service %.1f)",
			worstSojourn, plan.SustainableMs)
	}

	// Overloaded interval: sojourn of the last frame must grow roughly
	// linearly with position (queue build-up).
	overload, err := core.PlanStream(curve, core.PeriodicReleases(n, plan.SustainableMs*0.5))
	if err != nil {
		t.Fatal(err)
	}
	resO, err := Run(FromStreamPlan(overload))
	if err != nil {
		t.Fatal(err)
	}
	first := resO.Completions[overload.Jobs[0].ID] - overload.Jobs[0].ReleaseMs
	last := resO.Completions[overload.Jobs[n-1].ID] - overload.Jobs[n-1].ReleaseMs
	if last < first+float64(n-1)*0.3*plan.SustainableMs {
		t.Errorf("overloaded stream should queue up: first sojourn %.1f, last %.1f", first, last)
	}
	if math.IsNaN(last) {
		t.Fatal("missing completion")
	}
}

// The three-machine flow-shop recurrence must agree with the event
// simulator when jobs run as mobile->uplink->cloud chains in sequence
// order.
func TestMakespan3MatchesSimulation(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(10)
		seq := make([]flowshop.Job3, n)
		jobs := make([]JobSpec, n)
		for i := range seq {
			seq[i] = flowshop.Job3{ID: i, A: rng.Float64() * 10, B: rng.Float64() * 10, C: rng.Float64() * 10}
			jobs[i] = JobSpec{
				ID: i, Priority: i,
				Stages: []StageSpec{
					{ResMobile, seq[i].A},
					{ResUplink, seq[i].B},
					{ResCloud, seq[i].C},
				},
			}
		}
		res, err := Run(jobs)
		if err != nil {
			t.Fatal(err)
		}
		if want := flowshop.Makespan3(seq); math.Abs(res.Makespan-want) > 1e-9 {
			t.Fatalf("trial %d: sim %g != recurrence %g", trial, res.Makespan, want)
		}
		comps := flowshop.Completions3(seq)
		for i := range seq {
			if math.Abs(res.Completions[i]-comps[i]) > 1e-9 {
				t.Fatalf("trial %d: completion %d mismatch", trial, i)
			}
		}
	}
}

// Poisson arrivals at the same mean rate queue worse than periodic
// ones — burstiness costs sojourn time.
func TestPoissonBurstierThanPeriodic(t *testing.T) {
	pi, gpu := profile.RaspberryPi4(), profile.CloudGPU()
	curve := profile.BuildCurve(models.MustBuild("alexnet"), pi, gpu, netsim.FourG, tensor.Float32)
	n := 100
	base, err := core.PlanStream(curve, core.PeriodicReleases(n, 0))
	if err != nil {
		t.Fatal(err)
	}
	interval := base.SustainableMs * 1.15

	maxSojourn := func(releases []float64) float64 {
		plan, err := core.PlanStream(curve, releases)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(FromStreamPlan(plan))
		if err != nil {
			t.Fatal(err)
		}
		worst := 0.0
		for _, j := range plan.Jobs {
			if s := res.Completions[j.ID] - j.ReleaseMs; s > worst {
				worst = s
			}
		}
		return worst
	}
	periodic := maxSojourn(core.PeriodicReleases(n, interval))
	poisson := maxSojourn(core.PoissonReleases(n, interval, 21))
	if poisson <= periodic {
		t.Errorf("Poisson max sojourn %.1f should exceed periodic %.1f at equal mean rate",
			poisson, periodic)
	}
}
