package sim

import (
	"math"
	"sort"

	"dnnjps/internal/obs"
)

// TraceStage maps a recorded span name onto a simulator resource and
// stage index, so a live trace can be reshaped into the same Gantt
// form Run produces and the two compared interval by interval.
type TraceStage struct {
	Resource string
	Stage    int
}

// RuntimeStages is the canonical mapping for the offloading runtime's
// resource-occupancy spans (the names internal/runtime records; wait
// spans like queue-wait and reply-wait are deliberately absent — they
// occupy no resource). The strings are duplicated rather than imported
// so sim stays independent of the runtime package; the runtime's tests
// pin the two sets together.
func RuntimeStages() map[string]TraceStage {
	return map[string]TraceStage{
		"local-compute": {Resource: ResMobile, Stage: 0},
		"upload":        {Resource: ResUplink, Stage: 1},
		"cloud-compute": {Resource: ResCloud, Stage: 2},
	}
}

// FromTrace reshapes recorded spans into a measured Result: spans whose
// names appear in stages become busy intervals on their resource,
// rebased so the earliest mapped span starts at 0 and divided by scale
// (the runtime's time-compression factor; <= 0 means 1) to recover
// channel-scale milliseconds. Completions hold each job's latest
// mapped span end; unmapped spans (waits, recovery events) are
// ignored. The result is directly comparable with Run's: same Gantt
// shape, same Utilization semantics.
func FromTrace(spans []obs.Span, stages map[string]TraceStage, scale float64) *Result {
	if scale <= 0 {
		scale = 1
	}
	res := &Result{
		Completions: make(map[int]float64),
		Gantt:       make(map[string][]Interval),
		BusyMs:      make(map[string]float64),
	}
	base := int64(math.MaxInt64)
	for _, sp := range spans {
		if _, ok := stages[sp.Name]; ok && sp.StartNs < base {
			base = sp.StartNs
		}
	}
	if base == math.MaxInt64 {
		return res
	}
	for _, sp := range spans {
		st, ok := stages[sp.Name]
		if !ok {
			continue
		}
		start := float64(sp.StartNs-base) / 1e6 / scale
		end := float64(sp.EndNs()-base) / 1e6 / scale
		res.Gantt[st.Resource] = append(res.Gantt[st.Resource],
			Interval{JobID: int(sp.JobID), Stage: st.Stage, Start: start, End: end})
		res.BusyMs[st.Resource] += end - start
		if sp.JobID >= 0 && end > res.Completions[int(sp.JobID)] {
			res.Completions[int(sp.JobID)] = end
		}
		if end > res.Makespan {
			res.Makespan = end
		}
	}
	for _, ivs := range res.Gantt {
		sort.Slice(ivs, func(a, b int) bool { return ivs[a].Start < ivs[b].Start })
	}
	return res
}
