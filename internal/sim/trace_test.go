package sim

import (
	"math"
	"testing"
	"time"

	"dnnjps/internal/obs"
)

// Round-trip: simulate a plan, re-record its Gantt intervals as trace
// spans, and bridge them back. The reconstructed Result must match the
// simulated one interval for interval.
func TestFromTraceRoundTrip(t *testing.T) {
	jobs := []JobSpec{
		{ID: 0, Priority: 0, Stages: []StageSpec{{ResMobile, 3}, {ResUplink, 5}, {ResCloud, 1}}},
		{ID: 1, Priority: 1, Stages: []StageSpec{{ResMobile, 4}, {ResUplink, 2}, {ResCloud, 1}}},
	}
	want, err := Run(jobs)
	if err != nil {
		t.Fatal(err)
	}

	// Re-record the simulated intervals through a real tracer, offset
	// from its epoch, with the runtime's span names.
	nameOf := map[string]string{ResMobile: "local-compute", ResUplink: "upload", ResCloud: "cloud-compute"}
	tr := obs.NewTracer(0)
	epoch := tr.Epoch()
	for resName, ivs := range want.Gantt {
		for _, iv := range ivs {
			start := epoch.Add(time.Duration(iv.Start * float64(time.Millisecond)))
			end := epoch.Add(time.Duration(iv.End * float64(time.Millisecond)))
			tr.Record(resName, nameOf[resName], iv.JobID, start, end)
		}
	}
	// Noise the bridge must ignore: wait spans and recovery events.
	tr.Record("uplink", "queue-wait", 0, epoch, epoch.Add(time.Millisecond))
	tr.Record("runner", "backoff", -1, epoch, epoch.Add(time.Second))

	got := FromTrace(tr.Spans(), RuntimeStages(), 1)
	const tol = 1e-6 // ns-truncation of the recorded timestamps
	if math.Abs(got.Makespan-want.Makespan) > tol {
		t.Errorf("makespan = %g, want %g", got.Makespan, want.Makespan)
	}
	for resName, wivs := range want.Gantt {
		givs := got.Gantt[resName]
		if len(givs) != len(wivs) {
			t.Fatalf("%s: %d intervals, want %d", resName, len(givs), len(wivs))
		}
		for i := range wivs {
			if givs[i].JobID != wivs[i].JobID ||
				math.Abs(givs[i].Start-wivs[i].Start) > tol ||
				math.Abs(givs[i].End-wivs[i].End) > tol {
				t.Errorf("%s[%d] = %+v, want %+v", resName, i, givs[i], wivs[i])
			}
		}
		if math.Abs(got.BusyMs[resName]-want.BusyMs[resName]) > tol {
			t.Errorf("%s busy = %g, want %g", resName, got.BusyMs[resName], want.BusyMs[resName])
		}
	}
	for id, c := range want.Completions {
		if math.Abs(got.Completions[id]-c) > tol {
			t.Errorf("completion[%d] = %g, want %g", id, got.Completions[id], c)
		}
	}
}

// The scale argument recovers channel-scale milliseconds from
// time-compressed measurements.
func TestFromTraceRescales(t *testing.T) {
	tr := obs.NewTracer(0)
	epoch := tr.Epoch()
	// 2 real ms at scale 0.01 = 200 channel ms.
	tr.Record(ResUplink, "upload", 0, epoch, epoch.Add(2*time.Millisecond))
	got := FromTrace(tr.Spans(), RuntimeStages(), 0.01)
	if math.Abs(got.Makespan-200) > 1e-6 {
		t.Errorf("makespan = %g, want 200", got.Makespan)
	}
	if u := got.Utilization(ResUplink); math.Abs(u-1) > 1e-9 {
		t.Errorf("utilization = %g, want 1", u)
	}
}

// No mapped spans -> an empty, usable Result.
func TestFromTraceEmpty(t *testing.T) {
	got := FromTrace(nil, RuntimeStages(), 1)
	if got.Makespan != 0 || len(got.Gantt) != 0 || got.Utilization(ResMobile) != 0 {
		t.Errorf("empty trace produced %+v", got)
	}
}
