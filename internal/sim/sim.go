// Package sim is a discrete-event simulator of the mobile→uplink→cloud
// execution pipeline. The planner's theory (flowshop, Prop. 4.1) works
// on a two-stage abstraction that declares cloud time negligible; the
// simulator executes the full three-stage pipeline on exclusive
// resources and is used by tests and experiments to verify that the
// analytic makespans match an actual execution trace.
package sim

import (
	"container/heap"
	"fmt"
	"sort"
)

// StageSpec is one step of a job: exclusive use of a named resource
// for a duration. Zero-duration stages are legal and consume no
// resource time (they preserve precedence only).
type StageSpec struct {
	Resource string
	Ms       float64
}

// JobSpec is a job: an ordered chain of stages released at ReleaseMs
// (0 = available immediately, the paper's batch setting; streaming
// workloads stagger releases). Priority breaks ties when several jobs
// are ready for the same resource at the same instant (lower runs
// first) — seed it with the schedule's sequence position to reproduce
// a planned order exactly.
type JobSpec struct {
	ID        int
	Priority  int
	ReleaseMs float64
	Stages    []StageSpec
}

// Interval is one busy period of a resource.
type Interval struct {
	JobID      int
	Stage      int
	Start, End float64
}

// Result is the outcome of a simulation run.
type Result struct {
	Makespan    float64
	Completions map[int]float64       // job ID -> completion time
	Gantt       map[string][]Interval // resource -> busy intervals
	BusyMs      map[string]float64    // resource -> total busy time
}

// Utilization returns BusyMs/Makespan for a resource (0 for an unused
// resource or an empty run).
func (r *Result) Utilization(resource string) float64 {
	if r.Makespan <= 0 {
		return 0
	}
	return r.BusyMs[resource] / r.Makespan
}

// event is a job becoming ready for its next stage.
type event struct {
	time     float64
	priority int
	seq      int // FIFO tie-break among equal (time, priority)
	job      int // index into the jobs slice
	stage    int
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	if h[i].priority != h[j].priority {
		return h[i].priority < h[j].priority
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// Run simulates the jobs on the resources they reference. Each
// resource serves one stage at a time; among waiting stages the one
// that became ready earliest runs first (ties by Priority, then
// submission order) — matching pipelined FIFO execution of a planned
// sequence. Returns an error if a stage references no resource name
// or has negative duration.
func Run(jobs []JobSpec) (*Result, error) {
	res := &Result{
		Completions: make(map[int]float64, len(jobs)),
		Gantt:       make(map[string][]Interval),
		BusyMs:      make(map[string]float64),
	}
	freeAt := make(map[string]float64)
	for ji, j := range jobs {
		if j.ReleaseMs < 0 {
			return nil, fmt.Errorf("sim: job %d has negative release %g", ji, j.ReleaseMs)
		}
		for si, s := range j.Stages {
			if s.Resource == "" {
				return nil, fmt.Errorf("sim: job %d stage %d has no resource", ji, si)
			}
			if s.Ms < 0 {
				return nil, fmt.Errorf("sim: job %d stage %d has negative duration %g", ji, si, s.Ms)
			}
			freeAt[s.Resource] = 0
		}
	}

	h := &eventHeap{}
	seq := 0
	for ji, j := range jobs {
		if len(j.Stages) == 0 {
			// A zero-stage job completes the instant it is released, and
			// its completion bounds the makespan like any other (a job
			// released at t=5 that does nothing still means the batch is
			// not over before t=5).
			res.Completions[j.ID] = j.ReleaseMs
			if j.ReleaseMs > res.Makespan {
				res.Makespan = j.ReleaseMs
			}
			continue
		}
		heap.Push(h, event{time: j.ReleaseMs, priority: j.Priority, seq: seq, job: ji, stage: 0})
		seq++
	}

	for h.Len() > 0 {
		e := heap.Pop(h).(event)
		j := jobs[e.job]
		s := j.Stages[e.stage]
		start := e.time
		if f := freeAt[s.Resource]; f > start {
			start = f
		}
		end := start + s.Ms
		if s.Ms > 0 {
			freeAt[s.Resource] = end
			res.Gantt[s.Resource] = append(res.Gantt[s.Resource],
				Interval{JobID: j.ID, Stage: e.stage, Start: start, End: end})
			res.BusyMs[s.Resource] += s.Ms
		}
		if e.stage+1 < len(j.Stages) {
			heap.Push(h, event{time: end, priority: j.Priority, seq: seq, job: e.job, stage: e.stage + 1})
			seq++
		} else {
			res.Completions[j.ID] = end
			if end > res.Makespan {
				res.Makespan = end
			}
		}
	}
	for _, ivs := range res.Gantt {
		sort.Slice(ivs, func(a, b int) bool { return ivs[a].Start < ivs[b].Start })
	}
	return res, nil
}
