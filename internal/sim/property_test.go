package sim

import (
	"math/rand"
	"testing"

	"dnnjps/internal/flowshop"
)

// intCurve draws an integer-valued monotone cut curve: f strictly
// increasing, g non-increasing with a zero tail. Integer durations make
// every event time in the simulator an exact float64 (sums of small
// integers), so the Prop. 4.1 comparison below can demand equality, not
// tolerance.
func intCurve(rng *rand.Rand, k int) (f, g []float64) {
	f = make([]float64, k)
	g = make([]float64, k)
	fc := float64(1 + rng.Intn(20))
	gc := float64(30 + rng.Intn(70))
	for i := 0; i < k; i++ {
		if i > 0 {
			fc += float64(1 + rng.Intn(10))
			gc -= float64(rng.Intn(int(gc)/2 + 1))
		}
		f[i] = fc
		g[i] = gc
	}
	g[k-1] = 0
	return f, g
}

// johnsonInstance samples an instance of the paper's identical-DNN
// setting: n jobs, each at a random cut of a common monotone curve,
// Johnson-ordered.
func johnsonInstance(rng *rand.Rand, k, n int) []flowshop.Job {
	f, g := intCurve(rng, k)
	jobs := make([]flowshop.Job, n)
	for j := range jobs {
		x := rng.Intn(k)
		jobs[j] = flowshop.Job{ID: j, A: f[x], B: g[x]}
	}
	return flowshop.Johnson(jobs)
}

// simMakespan replays a sequence through the discrete-event simulator
// as mobile→uplink stages (cloud 0), preserving the sequence order.
func simMakespan(t *testing.T, seq []flowshop.Job) float64 {
	t.Helper()
	f := make([]float64, len(seq))
	g := make([]float64, len(seq))
	for i, j := range seq {
		f[i] = j.A
		g[i] = j.B
	}
	res, err := Run(FromDurations(f, g, nil))
	if err != nil {
		t.Fatal(err)
	}
	return res.Makespan
}

// TestPropertySimMatchesProp41Exactly: for Johnson-ordered jobs drawn
// from a common monotone curve, the simulated two-stage makespan must
// equal the Prop. 4.1 closed form f(x_1) + max(Σf − f_1, Σg − g_n) +
// g(x_n) EXACTLY — the closed form is a theorem about this setting, not
// an approximation, and integer durations remove any float excuse.
func TestPropertySimMatchesProp41Exactly(t *testing.T) {
	const trials = 500
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < trials; trial++ {
		k := 2 + rng.Intn(9)  // curve length in [2,10]
		n := 1 + rng.Intn(10) // jobs in [1,10]
		seq := johnsonInstance(rng, k, n)

		got := simMakespan(t, seq)
		want := flowshop.FormulaMakespan(seq)
		if got != want {
			t.Fatalf("trial %d (k=%d n=%d): simulated makespan %v != closed form %v\nseq=%v",
				trial, k, n, got, want, seq)
		}
		if analytic := flowshop.Makespan(seq); got != analytic {
			t.Fatalf("trial %d: simulated %v != recurrence %v", trial, got, analytic)
		}
	}
}

// TestPropertyJohnsonDominatesShuffles: the simulated makespan of the
// Johnson order is never beaten by a random permutation of the same
// jobs (50 shuffles per instance). This pins the scheduling half of the
// theory at the execution level, not just in the analytic recurrence.
func TestPropertyJohnsonDominatesShuffles(t *testing.T) {
	const (
		trials   = 100
		shuffles = 50
	)
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < trials; trial++ {
		k := 2 + rng.Intn(9)
		n := 2 + rng.Intn(9)
		seq := johnsonInstance(rng, k, n)
		johnson := simMakespan(t, seq)

		shuffled := append([]flowshop.Job(nil), seq...)
		for s := 0; s < shuffles; s++ {
			rng.Shuffle(len(shuffled), func(i, j int) {
				shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
			})
			if other := simMakespan(t, shuffled); other < johnson {
				t.Fatalf("trial %d shuffle %d: permutation makespan %v beats Johnson %v\njohnson=%v\nshuffle=%v",
					trial, s, other, johnson, seq, shuffled)
			}
		}
	}
}
