package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dnnjps/internal/core"
	"dnnjps/internal/flowshop"
	"dnnjps/internal/models"
	"dnnjps/internal/netsim"
	"dnnjps/internal/profile"
	"dnnjps/internal/tensor"
)

func twoStage(seq []flowshop.Job) []JobSpec {
	jobs := make([]JobSpec, len(seq))
	for i, j := range seq {
		jobs[i] = JobSpec{
			ID:       j.ID,
			Priority: i,
			Stages: []StageSpec{
				{Resource: ResMobile, Ms: j.A},
				{Resource: ResUplink, Ms: j.B},
			},
		}
	}
	return jobs
}

func TestRunMatchesFlowshopRecurrence(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(12)
		seq := make([]flowshop.Job, n)
		for i := range seq {
			seq[i] = flowshop.Job{ID: i, A: rng.Float64() * 10, B: rng.Float64() * 10}
		}
		res, err := Run(twoStage(seq))
		if err != nil {
			t.Fatal(err)
		}
		if want := flowshop.Makespan(seq); math.Abs(res.Makespan-want) > 1e-9 {
			t.Fatalf("trial %d: sim %g != recurrence %g", trial, res.Makespan, want)
		}
		comps := flowshop.Completions(seq)
		for i, j := range seq {
			if math.Abs(res.Completions[j.ID]-comps[i]) > 1e-9 {
				t.Fatalf("trial %d: job %d completion %g != %g", trial, j.ID, res.Completions[j.ID], comps[i])
			}
		}
	}
}

// The m-machine recurrence that prices k-way chain plans must agree
// with the discrete-event model, both on random instances and on a
// real planner output routed through the FromChainPlan bridge.
func TestFromChainPlanMatchesMakespanM(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(8)
		m := 2 + rng.Intn(4)
		seq := make([]flowshop.JobM, n)
		cuts := make([][]int, n)
		for i := range seq {
			st := make([]float64, m)
			for k := range st {
				st[k] = rng.Float64() * 10
			}
			seq[i] = flowshop.JobM{ID: i, Stages: st}
			cuts[i] = make([]int, m-1)
		}
		plan := &core.ChainPlan{Method: "test", Cuts: cuts, Sequence: seq,
			Makespan: flowshop.MakespanM(seq)}
		res, err := Run(FromChainPlan(plan))
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Makespan-plan.Makespan) > 1e-9 {
			t.Fatalf("trial %d (n=%d m=%d): sim %g != recurrence %g",
				trial, n, m, res.Makespan, plan.Makespan)
		}
		comps := flowshop.CompletionsM(seq)
		for i, j := range seq {
			if math.Abs(res.Completions[j.ID]-comps[i]) > 1e-9 {
				t.Fatalf("trial %d: job %d completion %g != %g",
					trial, j.ID, res.Completions[j.ID], comps[i])
			}
		}
	}

	g := models.MustBuild("alexnet")
	env := core.ThreeTierEnv{
		Mobile: profile.RaspberryPi4(),
		Edge:   profile.CloudGPU().Scaled(0.25),
		Cloud:  profile.CloudGPU(),
		Uplink: netsim.FourG,
		Backhaul: netsim.Channel{
			Name: "wan-backhaul", UplinkMbps: netsim.FourG.UplinkMbps / 2, SetupMs: 15,
		},
		DType: tensor.Float32,
	}
	plan, err := core.JPSChain(g, env.Chain(), 9)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(FromChainPlan(plan))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Makespan-plan.Makespan) > 1e-6 {
		t.Errorf("live plan: sim %g != planner %g", res.Makespan, plan.Makespan)
	}
}

func TestRunPaperExample(t *testing.T) {
	seq := []flowshop.Job{{ID: 0, A: 4, B: 6}, {ID: 1, A: 7, B: 2}}
	res, err := Run(twoStage(seq))
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 13 {
		t.Errorf("makespan = %g, want 13", res.Makespan)
	}
}

func TestResourceExclusivity(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	seq := make([]flowshop.Job, 10)
	for i := range seq {
		seq[i] = flowshop.Job{ID: i, A: rng.Float64() * 5, B: rng.Float64() * 5}
	}
	res, err := Run(twoStage(seq))
	if err != nil {
		t.Fatal(err)
	}
	for resName, ivs := range res.Gantt {
		for i := 1; i < len(ivs); i++ {
			if ivs[i].Start < ivs[i-1].End-1e-9 {
				t.Errorf("%s: overlapping intervals %+v %+v", resName, ivs[i-1], ivs[i])
			}
		}
	}
}

func TestBusyAndUtilization(t *testing.T) {
	seq := []flowshop.Job{{ID: 0, A: 3, B: 1}, {ID: 1, A: 2, B: 4}}
	res, err := Run(twoStage(seq))
	if err != nil {
		t.Fatal(err)
	}
	if res.BusyMs[ResMobile] != 5 || res.BusyMs[ResUplink] != 5 {
		t.Errorf("busy = %v", res.BusyMs)
	}
	if u := res.Utilization(ResMobile); u <= 0 || u > 1 {
		t.Errorf("utilization = %g", u)
	}
	if res.Utilization("nonexistent") != 0 {
		t.Error("unknown resource utilization must be 0")
	}
	empty := &Result{}
	if empty.Utilization(ResMobile) != 0 {
		t.Error("empty result utilization must be 0")
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := Run([]JobSpec{{Stages: []StageSpec{{Resource: "", Ms: 1}}}}); err == nil {
		t.Error("empty resource name must error")
	}
	if _, err := Run([]JobSpec{{Stages: []StageSpec{{Resource: "r", Ms: -1}}}}); err == nil {
		t.Error("negative duration must error")
	}
}

func TestEmptyAndStagelessJobs(t *testing.T) {
	res, err := Run(nil)
	if err != nil || res.Makespan != 0 {
		t.Errorf("empty run: %v %v", res, err)
	}
	res, err = Run([]JobSpec{{ID: 7}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completions[7] != 0 {
		t.Error("stageless job completes at 0")
	}
}

// Regression: a stageless job completes at its release time, and that
// completion must bound the makespan like any other. Run previously
// recorded the completion but left Makespan untouched, so a batch
// whose latest event was an empty job reported an early makespan.
func TestStagelessJobBoundsMakespan(t *testing.T) {
	jobs := []JobSpec{
		{ID: 0, Stages: []StageSpec{{Resource: ResMobile, Ms: 3}}},
		{ID: 1, ReleaseMs: 10}, // stageless, released after job 0 finishes
	}
	res, err := Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completions[1] != 10 {
		t.Errorf("stageless completion = %g, want 10", res.Completions[1])
	}
	if res.Makespan != 10 {
		t.Errorf("makespan = %g, want 10 (stageless completion must count)", res.Makespan)
	}
	// A stageless job that completes before the real work must not
	// drag the makespan in either direction.
	res, err = Run([]JobSpec{
		{ID: 0, ReleaseMs: 1},
		{ID: 1, Stages: []StageSpec{{Resource: ResMobile, Ms: 5}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 5 {
		t.Errorf("makespan = %g, want 5", res.Makespan)
	}
}

// Utilization is busy time over makespan, exactly.
func TestUtilizationValues(t *testing.T) {
	res, err := Run([]JobSpec{
		{ID: 0, Stages: []StageSpec{{ResMobile, 4}, {ResUplink, 2}}},
		{ID: 1, Stages: []StageSpec{{ResMobile, 4}, {ResUplink, 2}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Mobile: 8 busy over makespan 10; uplink: 4 over 10.
	if res.Makespan != 10 {
		t.Fatalf("makespan = %g, want 10", res.Makespan)
	}
	if u := res.Utilization(ResMobile); math.Abs(u-0.8) > 1e-12 {
		t.Errorf("mobile utilization = %g, want 0.8", u)
	}
	if u := res.Utilization(ResUplink); math.Abs(u-0.4) > 1e-12 {
		t.Errorf("uplink utilization = %g, want 0.4", u)
	}
}

// Gantt intervals come back sorted by start time per resource, even
// when priorities make later-submitted jobs run first.
func TestGanttIntervalOrdering(t *testing.T) {
	jobs := []JobSpec{
		{ID: 0, Priority: 3, Stages: []StageSpec{{ResMobile, 2}, {ResUplink, 1}}},
		{ID: 1, Priority: 1, Stages: []StageSpec{{ResMobile, 1}, {ResUplink, 4}}},
		{ID: 2, Priority: 2, Stages: []StageSpec{{ResMobile, 3}, {ResUplink, 2}}},
	}
	res, err := Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	for resName, ivs := range res.Gantt {
		for i := 1; i < len(ivs); i++ {
			if ivs[i].Start < ivs[i-1].Start {
				t.Errorf("%s: intervals out of order: %+v before %+v", resName, ivs[i-1], ivs[i])
			}
		}
	}
	// Priority order: job 1 first on mobile.
	if res.Gantt[ResMobile][0].JobID != 1 {
		t.Errorf("first mobile interval = %+v, want job 1", res.Gantt[ResMobile][0])
	}
}

func TestZeroDurationStagesPreserveOrder(t *testing.T) {
	jobs := []JobSpec{
		{ID: 0, Priority: 0, Stages: []StageSpec{{ResMobile, 0}, {ResUplink, 5}}},
		{ID: 1, Priority: 1, Stages: []StageSpec{{ResMobile, 0}, {ResUplink, 5}}},
	}
	res, err := Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completions[0] != 5 || res.Completions[1] != 10 {
		t.Errorf("completions = %v, want 5/10 in priority order", res.Completions)
	}
	// Zero stages leave no Gantt footprint.
	if len(res.Gantt[ResMobile]) != 0 {
		t.Errorf("zero-duration stages must not appear in Gantt: %v", res.Gantt[ResMobile])
	}
}

func TestPriorityBreaksSimultaneousReady(t *testing.T) {
	jobs := []JobSpec{
		{ID: 0, Priority: 2, Stages: []StageSpec{{ResMobile, 3}}},
		{ID: 1, Priority: 1, Stages: []StageSpec{{ResMobile, 3}}},
		{ID: 2, Priority: 0, Stages: []StageSpec{{ResMobile, 3}}},
	}
	res, err := Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completions[2] != 3 || res.Completions[1] != 6 || res.Completions[0] != 9 {
		t.Errorf("priority order violated: %v", res.Completions)
	}
}

// The headline validation: for every paper model and channel, the
// three-stage simulation of a JPS plan matches the two-stage analytic
// makespan up to the (small) cloud tail.
func TestThreeStageSimMatchesAnalyticPlans(t *testing.T) {
	pi, gpu := profile.RaspberryPi4(), profile.CloudGPU()
	for _, name := range models.PaperModels() {
		g := models.MustBuild(name)
		for _, ch := range netsim.Presets() {
			curve := profile.BuildCurve(g, pi, gpu, ch, tensor.Float32)
			for _, plan := range plansFor(t, curve, 24) {
				res, err := Run(FromPlan(plan))
				if err != nil {
					t.Fatalf("%s@%s %s: %v", name, ch.Name, plan.Method, err)
				}
				// Simulated >= analytic (cloud adds), and the excess is
				// bounded by the whole-model cloud time.
				excess := res.Makespan - plan.Makespan
				if excess < -1e-6 {
					t.Errorf("%s@%s %s: sim %g below analytic %g",
						name, ch.Name, plan.Method, res.Makespan, plan.Makespan)
				}
				if maxCloud := curve.CloudMs[0]; excess > maxCloud+1e-6 {
					t.Errorf("%s@%s %s: cloud excess %g exceeds whole-model cloud %g",
						name, ch.Name, plan.Method, excess, maxCloud)
				}
			}
		}
	}
}

func plansFor(t *testing.T, curve *profile.Curve, n int) []*core.Plan {
	t.Helper()
	var out []*core.Plan
	for _, fn := range []func(*profile.Curve, int) (*core.Plan, error){core.JPS, core.PO, core.CO, core.LO} {
		p, err := fn(curve, n)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, p)
	}
	return out
}

func TestFromGeneralPlan(t *testing.T) {
	g := models.MustBuild("googlenet")
	pi, gpu := profile.RaspberryPi4(), profile.CloudGPU()
	gp, err := core.PlanGeneral(g, pi, gpu, netsim.WiFi, tensor.Float32, 6, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(FromGeneralPlan(gp))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Makespan-gp.Makespan) > 1e-6 {
		t.Errorf("sim %g != general plan makespan %g", res.Makespan, gp.Makespan)
	}
}

// Property: makespan is always >= the busiest resource's total work
// and >= any single job's serial length.
func TestMakespanLowerBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		jobs := make([]JobSpec, n)
		for i := range jobs {
			jobs[i] = JobSpec{
				ID: i, Priority: i,
				Stages: []StageSpec{
					{ResMobile, rng.Float64() * 5},
					{ResUplink, rng.Float64() * 5},
					{ResCloud, rng.Float64() * 2},
				},
			}
		}
		res, err := Run(jobs)
		if err != nil {
			return false
		}
		for _, busy := range res.BusyMs {
			if res.Makespan < busy-1e-9 {
				return false
			}
		}
		for _, j := range jobs {
			var serial float64
			for _, s := range j.Stages {
				serial += s.Ms
			}
			if res.Makespan < serial-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// FromDurations with zero cloud times must reduce to the two-stage
// flow-shop recurrence, and short g/cloud slices must read as zeros.
func TestFromDurations(t *testing.T) {
	f := []float64{4, 7}
	g := []float64{6, 2}
	res, err := Run(FromDurations(f, g, nil))
	if err != nil {
		t.Fatal(err)
	}
	seq := []flowshop.Job{{ID: 0, A: 4, B: 6}, {ID: 1, A: 7, B: 2}}
	if want := flowshop.Makespan(seq); math.Abs(res.Makespan-want) > 1e-9 {
		t.Errorf("makespan = %g, want %g", res.Makespan, want)
	}

	withCloud, err := Run(FromDurations(f, g, []float64{3, 3}))
	if err != nil {
		t.Fatal(err)
	}
	if withCloud.Makespan <= res.Makespan {
		t.Errorf("cloud stage must extend the makespan: %g vs %g", withCloud.Makespan, res.Makespan)
	}

	jobs := FromDurations([]float64{1, 2, 3}, []float64{5}, nil)
	if len(jobs) != 3 {
		t.Fatalf("got %d jobs", len(jobs))
	}
	if jobs[1].Stages[1].Ms != 0 || jobs[2].Stages[2].Ms != 0 {
		t.Error("missing g/cloud entries must read as zero")
	}
}
