// Package report renders experiment results as aligned text tables,
// CSV files, and ASCII Gantt charts — the output layer of the
// reproduction harness.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
)

// Table is a simple column-aligned table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are formatted with %v (float64 with
// %.2f).
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "== %s ==\n", t.Title); err != nil {
			return err
		}
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(t.Headers, "\t"))
	sep := make([]string, len(t.Headers))
	for i, h := range t.Headers {
		sep[i] = strings.Repeat("-", len(h))
	}
	fmt.Fprintln(tw, strings.Join(sep, "\t"))
	for _, r := range t.Rows {
		fmt.Fprintln(tw, strings.Join(r, "\t"))
	}
	return tw.Flush()
}

// String renders to a string.
func (t *Table) String() string {
	var sb strings.Builder
	_ = t.Render(&sb)
	return sb.String()
}

// WriteCSV emits the table (headers + rows, no title) as CSV.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Headers); err != nil {
		return err
	}
	if err := cw.WriteAll(t.Rows); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

// GanttBar is one labeled interval on a Gantt lane.
type GanttBar struct {
	Label      string
	Start, End float64
}

// Gantt renders labeled lanes of intervals as ASCII art, scaled to
// width columns. Useful for eyeballing how a schedule pipelines the
// mobile CPU against the uplink (Fig. 1/Fig. 2 style).
func Gantt(w io.Writer, lanes map[string][]GanttBar, order []string, width int) error {
	if width <= 10 {
		width = 72
	}
	var maxEnd float64
	for _, bars := range lanes {
		for _, b := range bars {
			if b.End > maxEnd {
				maxEnd = b.End
			}
		}
	}
	if maxEnd == 0 {
		_, err := fmt.Fprintln(w, "(empty schedule)")
		return err
	}
	scale := float64(width) / maxEnd
	labelW := 0
	for _, name := range order {
		if len(name) > labelW {
			labelW = len(name)
		}
	}
	for _, name := range order {
		line := make([]byte, width)
		for i := range line {
			line[i] = '.'
		}
		for _, b := range lanes[name] {
			s := int(b.Start * scale)
			e := int(b.End * scale)
			if e <= s {
				e = s + 1
			}
			if e > width {
				e = width
			}
			mark := byte('#')
			if len(b.Label) > 0 {
				mark = b.Label[0]
			}
			for i := s; i < e; i++ {
				line[i] = mark
			}
		}
		if _, err := fmt.Fprintf(w, "%-*s |%s|\n", labelW, name, line); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%-*s  0%*s%.1fms\n", labelW, "", width-3, "", maxEnd)
	return err
}
