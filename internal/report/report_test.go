package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("Demo", "Model", "Latency", "N")
	tb.AddRow("alexnet", 123.456, 100)
	tb.AddRow("resnet18", 7.0, 2)
	out := tb.String()
	for _, want := range []string{"== Demo ==", "Model", "123.46", "resnet18", "100"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestTableNoTitle(t *testing.T) {
	tb := NewTable("", "A")
	tb.AddRow("x")
	if strings.Contains(tb.String(), "==") {
		t.Error("untitled table must not render a title banner")
	}
}

func TestWriteCSV(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.AddRow("1", 2.5)
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,2.50\n"
	if buf.String() != want {
		t.Errorf("csv = %q, want %q", buf.String(), want)
	}
}

func TestGantt(t *testing.T) {
	var buf bytes.Buffer
	lanes := map[string][]GanttBar{
		"mobile": {{Label: "0", Start: 0, End: 4}, {Label: "1", Start: 4, End: 11}},
		"uplink": {{Label: "0", Start: 4, End: 10}, {Label: "1", Start: 11, End: 13}},
	}
	if err := Gantt(&buf, lanes, []string{"mobile", "uplink"}, 52); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "mobile") || !strings.Contains(out, "uplink") {
		t.Fatalf("missing lanes:\n%s", out)
	}
	if !strings.Contains(out, "13.0ms") {
		t.Errorf("missing time axis:\n%s", out)
	}
	// Mobile lane busy from t=0; uplink idle at t=0.
	lines := strings.Split(out, "\n")
	if !strings.Contains(lines[0], "|0") {
		t.Errorf("mobile lane should start busy: %q", lines[0])
	}
	if !strings.Contains(lines[1], "|.") {
		t.Errorf("uplink lane should start idle: %q", lines[1])
	}
}

func TestGanttEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := Gantt(&buf, nil, nil, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "empty") {
		t.Error("empty schedule message missing")
	}
}
