package regression

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestFitLinearExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 + 2*x
	}
	fit, err := FitLinear(xs, ys)
	if err != nil {
		t.Fatalf("FitLinear: %v", err)
	}
	if !approx(fit.W0, 3, 1e-9) || !approx(fit.W1, 2, 1e-9) {
		t.Errorf("fit = %v, want y=3+2x", fit)
	}
	if !approx(fit.R2, 1, 1e-12) {
		t.Errorf("R2 = %g, want 1", fit.R2)
	}
	if got := fit.Eval(10); !approx(got, 23, 1e-9) {
		t.Errorf("Eval(10) = %g", got)
	}
}

func TestFitLinearNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var xs, ys []float64
	for i := 0; i < 200; i++ {
		x := float64(i)
		xs = append(xs, x)
		ys = append(ys, 5+0.5*x+rng.NormFloat64()*0.1)
	}
	fit, err := FitLinear(xs, ys)
	if err != nil {
		t.Fatalf("FitLinear: %v", err)
	}
	if !approx(fit.W0, 5, 0.1) || !approx(fit.W1, 0.5, 0.01) {
		t.Errorf("fit = %v, want ~y=5+0.5x", fit)
	}
	if fit.R2 < 0.99 {
		t.Errorf("R2 = %g too low", fit.R2)
	}
}

func TestFitLinearErrors(t *testing.T) {
	if _, err := FitLinear([]float64{1}, []float64{2}); !errors.Is(err, ErrDegenerate) {
		t.Error("single point must be degenerate")
	}
	if _, err := FitLinear([]float64{1, 1}, []float64{2, 3}); !errors.Is(err, ErrDegenerate) {
		t.Error("zero x-variance must be degenerate")
	}
	if _, err := FitLinear([]float64{1, 2}, []float64{2}); !errors.Is(err, ErrDegenerate) {
		t.Error("mismatched lengths must be degenerate")
	}
}

func TestFitExponentialExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4, 5}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 100 * math.Exp(-0.7*x)
	}
	fit, err := FitExponential(xs, ys)
	if err != nil {
		t.Fatalf("FitExponential: %v", err)
	}
	if !approx(fit.A, 100, 1e-6) || !approx(fit.B, -0.7, 1e-9) {
		t.Errorf("fit = %v, want y=100*exp(-0.7x)", fit)
	}
	if fit.R2 < 0.9999 {
		t.Errorf("R2 = %g", fit.R2)
	}
}

func TestFitExponentialRejectsNonPositive(t *testing.T) {
	if _, err := FitExponential([]float64{0, 1}, []float64{1, 0}); !errors.Is(err, ErrDegenerate) {
		t.Error("zero y must be rejected")
	}
	if _, err := FitExponential([]float64{0, 1}, []float64{1, -2}); !errors.Is(err, ErrDegenerate) {
		t.Error("negative y must be rejected")
	}
}

func TestInterpolator(t *testing.T) {
	it, err := NewInterpolator([]float64{0, 1, 3}, []float64{0, 10, 30})
	if err != nil {
		t.Fatalf("NewInterpolator: %v", err)
	}
	cases := []struct{ x, want float64 }{
		{0, 0}, {0.5, 5}, {1, 10}, {2, 20}, {3, 30},
		{-1, -10}, // extrapolation with first segment slope
		{4, 40},   // extrapolation with last segment slope
	}
	for _, c := range cases {
		if got := it.Eval(c.x); !approx(got, c.want, 1e-9) {
			t.Errorf("Eval(%g) = %g, want %g", c.x, got, c.want)
		}
	}
	lo, hi := it.Domain()
	if lo != 0 || hi != 3 {
		t.Errorf("Domain = (%g,%g)", lo, hi)
	}
}

func TestInterpolatorErrors(t *testing.T) {
	if _, err := NewInterpolator([]float64{1}, []float64{1}); !errors.Is(err, ErrDegenerate) {
		t.Error("single point must be degenerate")
	}
	if _, err := NewInterpolator([]float64{2, 1}, []float64{1, 2}); !errors.Is(err, ErrDegenerate) {
		t.Error("unsorted xs must be degenerate")
	}
	if _, err := NewInterpolator([]float64{1, 1}, []float64{1, 2}); !errors.Is(err, ErrDegenerate) {
		t.Error("duplicate xs must be degenerate")
	}
}

func TestCrossingPoint(t *testing.T) {
	f := func(x float64) float64 { return 2 * x }    // increasing
	g := func(x float64) float64 { return 10 - 3*x } // decreasing
	x, ok := CrossingPoint(f, g, 0, 10)              // cross at x=2
	if !ok || !approx(x, 2, 1e-9) {
		t.Errorf("crossing = %g ok=%v, want 2", x, ok)
	}
}

func TestCrossingPointEndpoints(t *testing.T) {
	f := func(x float64) float64 { return x }
	g := func(x float64) float64 { return 0.0 }
	if x, ok := CrossingPoint(f, g, 0, 5); !ok || x != 0 {
		t.Errorf("crossing at lower endpoint: %g ok=%v", x, ok)
	}
	g5 := func(float64) float64 { return 5.0 }
	if x, ok := CrossingPoint(f, g5, 0, 5); !ok || x != 5 {
		t.Errorf("crossing at upper endpoint: %g ok=%v", x, ok)
	}
}

func TestCrossingPointNoSignChange(t *testing.T) {
	f := func(x float64) float64 { return x + 10 }
	g := func(x float64) float64 { return -x }
	if _, ok := CrossingPoint(f, g, 0, 5); ok {
		t.Error("no crossing must return ok=false")
	}
}

// Property: FitLinear recovers arbitrary lines exactly (within float
// tolerance) from noiseless samples.
func TestFitLinearRecoveryProperty(t *testing.T) {
	f := func(w0i, w1i int8) bool {
		w0, w1 := float64(w0i), float64(w1i)
		xs := []float64{0, 1, 2, 5, 9}
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = w0 + w1*x
		}
		fit, err := FitLinear(xs, ys)
		if err != nil {
			return false
		}
		return approx(fit.W0, w0, 1e-6) && approx(fit.W1, w1, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the interpolator reproduces its sample points exactly and
// is monotone between samples of a monotone series.
func TestInterpolatorMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(6)
		xs := make([]float64, n)
		ys := make([]float64, n)
		y := 100.0
		for i := 0; i < n; i++ {
			xs[i] = float64(i)
			y -= rng.Float64() * 10 // non-increasing
			ys[i] = y
		}
		it, err := NewInterpolator(xs, ys)
		if err != nil {
			return false
		}
		for i := range xs {
			if !approx(it.Eval(xs[i]), ys[i], 1e-9) {
				return false
			}
		}
		prev := it.Eval(0)
		for x := 0.1; x < float64(n-1); x += 0.1 {
			cur := it.Eval(x)
			if cur > prev+1e-9 {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
