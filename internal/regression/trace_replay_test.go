// Trace-driven regression corpus: a recording of one live
// `jpsbench -fig trace -trace-json` run (squeezenet, 8 jobs, Wi-Fi,
// real time) is committed under testdata and replayed through the
// discrete-event bridge on every CI run. The assertions pin the
// pipeline's structural invariants — per-job stage causality, a
// serialized uplink, the exact recorded makespan — without any
// wall-clock sensitivity: the trace is data, not a re-measurement, so
// a decoder or bridge regression fails this test deterministically.
package regression_test

import (
	"os"
	"testing"

	"dnnjps/internal/obs"
	"dnnjps/internal/sim"
)

const traceFile = "testdata/trace_squeezenet_wifi_n8.json"

// goldenMakespanMs is the replayed makespan of the committed trace.
const goldenMakespanMs = 2496.314663

func loadTrace(t *testing.T) *obs.TraceDump {
	t.Helper()
	f, err := os.Open(traceFile)
	if err != nil {
		t.Fatalf("open corpus: %v", err)
	}
	defer f.Close()
	d, err := obs.ReadJSON(f)
	if err != nil {
		t.Fatalf("parse corpus: %v", err)
	}
	return d
}

func TestTraceCorpusReplaysToGoldenMakespan(t *testing.T) {
	d := loadTrace(t)
	if d.Dropped != 0 {
		t.Fatalf("corpus recorded %d dropped spans; re-record it", d.Dropped)
	}
	res := sim.FromTrace(d.Spans, sim.RuntimeStages(), 1.0)
	if diff := res.Makespan - goldenMakespanMs; diff > 1e-3 || diff < -1e-3 {
		t.Errorf("replayed makespan %.6f ms, golden %.6f ms", res.Makespan, goldenMakespanMs)
	}
	if len(res.Completions) != 8 {
		t.Fatalf("got %d job completions, want 8", len(res.Completions))
	}
	var last float64
	for j := 0; j < 8; j++ {
		c, ok := res.Completions[j]
		if !ok || c <= 0 {
			t.Fatalf("job %d has no completion", j)
		}
		if c > last {
			last = c
		}
	}
	if last != res.Makespan {
		t.Errorf("makespan %.6f != latest completion %.6f", res.Makespan, last)
	}
}

// The uplink is a single writer goroutine: its busy intervals must
// never overlap, in the recording exactly as in the Prop. 4.1 model.
func TestTraceCorpusUplinkSerialized(t *testing.T) {
	d := loadTrace(t)
	res := sim.FromTrace(d.Spans, sim.RuntimeStages(), 1.0)
	ups := res.Gantt[sim.ResUplink]
	if len(ups) != 8 {
		t.Fatalf("got %d uplink intervals, want 8", len(ups))
	}
	for i := 1; i < len(ups); i++ {
		if ups[i-1].End > ups[i].Start {
			t.Errorf("uplink intervals %d and %d overlap: [%f,%f] then [%f,%f]",
				i-1, i, ups[i-1].Start, ups[i-1].End, ups[i].Start, ups[i].End)
		}
	}
}

// Per-job causality: each job's mobile prefix ends before its upload
// starts, and its upload ends before its cloud suffix starts — the
// three-stage ordering every scheduling result in the paper assumes.
func TestTraceCorpusStageOrdering(t *testing.T) {
	d := loadTrace(t)
	res := sim.FromTrace(d.Spans, sim.RuntimeStages(), 1.0)
	stage := func(resource string, job int) (start, end float64) {
		t.Helper()
		for _, iv := range res.Gantt[resource] {
			if iv.JobID == job {
				return iv.Start, iv.End
			}
		}
		t.Fatalf("job %d missing on %s", job, resource)
		return 0, 0
	}
	for j := 0; j < 8; j++ {
		_, mEnd := stage(sim.ResMobile, j)
		uStart, uEnd := stage(sim.ResUplink, j)
		cStart, _ := stage(sim.ResCloud, j)
		if mEnd > uStart {
			t.Errorf("job %d: mobile ends %.6f after upload starts %.6f", j, mEnd, uStart)
		}
		if uEnd > cStart {
			t.Errorf("job %d: upload ends %.6f after cloud starts %.6f", j, uEnd, cStart)
		}
	}
}
