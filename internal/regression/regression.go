// Package regression implements the small least-squares toolkit the
// paper relies on: the linear communication-delay model
// t = w0 + w1·(s/b) (§6.1), the linear fit of the cumulative mobile
// computation curve f, and the convex (exponential) fit of the
// offloading-volume curve g (§3.2). It also provides the monotone
// piecewise-linear interpolation used to relax the discrete curves
// onto the continuous domain of Theorem 5.2.
package regression

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrDegenerate is returned when a fit has too few points or no
// variance in x.
var ErrDegenerate = errors.New("regression: degenerate input")

// Linear is a fitted line y = W0 + W1·x.
type Linear struct {
	W0, W1 float64
	// R2 is the coefficient of determination of the fit on its
	// training points.
	R2 float64
}

// Eval returns the fitted value at x.
func (l Linear) Eval(x float64) float64 { return l.W0 + l.W1*x }

func (l Linear) String() string {
	return fmt.Sprintf("y = %.6g + %.6g*x (R2=%.4f)", l.W0, l.W1, l.R2)
}

// FitLinear computes the ordinary least squares line through the
// points (xs[i], ys[i]).
func FitLinear(xs, ys []float64) (Linear, error) {
	if len(xs) != len(ys) {
		return Linear{}, fmt.Errorf("%w: len(x)=%d len(y)=%d", ErrDegenerate, len(xs), len(ys))
	}
	n := float64(len(xs))
	if len(xs) < 2 {
		return Linear{}, fmt.Errorf("%w: need at least 2 points, have %d", ErrDegenerate, len(xs))
	}
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return Linear{}, fmt.Errorf("%w: no variance in x", ErrDegenerate)
	}
	w1 := (n*sxy - sx*sy) / den
	w0 := (sy - w1*sx) / n
	fit := Linear{W0: w0, W1: w1}
	fit.R2 = rsquared(ys, func(i int) float64 { return fit.Eval(xs[i]) })
	return fit, nil
}

// Exponential is a fitted curve y = A·exp(B·x). With B < 0 this is the
// decreasing convex shape the paper assumes for the offloading-volume
// function g.
type Exponential struct {
	A, B float64
	R2   float64
}

// Eval returns the fitted value at x.
func (e Exponential) Eval(x float64) float64 { return e.A * math.Exp(e.B*x) }

func (e Exponential) String() string {
	return fmt.Sprintf("y = %.6g*exp(%.6g*x) (R2=%.4f)", e.A, e.B, e.R2)
}

// FitExponential fits y = A·exp(B·x) by least squares on log(y).
// All ys must be strictly positive.
func FitExponential(xs, ys []float64) (Exponential, error) {
	logy := make([]float64, len(ys))
	for i, y := range ys {
		if y <= 0 {
			return Exponential{}, fmt.Errorf("%w: non-positive y=%g at index %d", ErrDegenerate, y, i)
		}
		logy[i] = math.Log(y)
	}
	lin, err := FitLinear(xs, logy)
	if err != nil {
		return Exponential{}, err
	}
	fit := Exponential{A: math.Exp(lin.W0), B: lin.W1}
	fit.R2 = rsquared(ys, func(i int) float64 { return fit.Eval(xs[i]) })
	return fit, nil
}

// rsquared computes 1 - SSres/SStot for observed ys and a predictor
// indexed like ys. A constant observation vector yields R2 = 1 when
// predictions are exact and 0 otherwise.
func rsquared(ys []float64, pred func(i int) float64) float64 {
	var mean float64
	for _, y := range ys {
		mean += y
	}
	mean /= float64(len(ys))
	var ssTot, ssRes float64
	for i, y := range ys {
		d := y - mean
		ssTot += d * d
		r := y - pred(i)
		ssRes += r * r
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1
		}
		return 0
	}
	return 1 - ssRes/ssTot
}

// Interpolator is a piecewise-linear function through sample points,
// used to extend the discrete per-layer curves f(l), g(l) to the
// continuous domain of problem P2. Outside the sampled range it
// extrapolates with the nearest segment's slope.
type Interpolator struct {
	xs, ys []float64
}

// NewInterpolator builds an interpolator from samples; xs must be
// strictly increasing.
func NewInterpolator(xs, ys []float64) (*Interpolator, error) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return nil, fmt.Errorf("%w: need >=2 matched points", ErrDegenerate)
	}
	if !sort.Float64sAreSorted(xs) {
		return nil, fmt.Errorf("%w: xs not sorted", ErrDegenerate)
	}
	for i := 1; i < len(xs); i++ {
		if xs[i] == xs[i-1] {
			return nil, fmt.Errorf("%w: duplicate x=%g", ErrDegenerate, xs[i])
		}
	}
	return &Interpolator{
		xs: append([]float64(nil), xs...),
		ys: append([]float64(nil), ys...),
	}, nil
}

// Eval returns the interpolated value at x.
func (it *Interpolator) Eval(x float64) float64 {
	xs, ys := it.xs, it.ys
	n := len(xs)
	// Locate the segment; extrapolate with the boundary segments.
	i := sort.SearchFloat64s(xs, x)
	switch {
	case i <= 0:
		i = 1
	case i >= n:
		i = n - 1
	}
	x0, x1 := xs[i-1], xs[i]
	y0, y1 := ys[i-1], ys[i]
	t := (x - x0) / (x1 - x0)
	return y0 + t*(y1-y0)
}

// Domain returns the sampled x range.
func (it *Interpolator) Domain() (lo, hi float64) {
	return it.xs[0], it.xs[len(it.xs)-1]
}

// CrossingPoint finds x in [lo, hi] where fa(x) == fb(x), assuming
// fa-fb is monotone (non-increasing) over the interval — exactly the
// setting of Theorem 5.2 where f is increasing and g decreasing. It
// returns the bisection solution and true, or 0 and false when the
// difference does not change sign in the interval.
func CrossingPoint(fa, fb func(float64) float64, lo, hi float64) (float64, bool) {
	d := func(x float64) float64 { return fa(x) - fb(x) }
	dlo, dhi := d(lo), d(hi)
	if dlo == 0 {
		return lo, true
	}
	if dhi == 0 {
		return hi, true
	}
	if dlo*dhi > 0 {
		return 0, false
	}
	for i := 0; i < 200 && hi-lo > 1e-12*(1+math.Abs(hi)); i++ {
		mid := (lo + hi) / 2
		dm := d(mid)
		if dm == 0 {
			return mid, true
		}
		if dm*dlo < 0 {
			hi = mid
		} else {
			lo, dlo = mid, dm
		}
	}
	return (lo + hi) / 2, true
}
