// Adaptive-replanning regression corpus: the estimator sample stream
// recorded by one live `jpsbench -fig adapt -adapt-trace` run (96 jobs,
// 12 Mb/s uplink stepping to 2 Mb/s at 200 ms channel time) is
// committed under testdata and replayed through a fresh estimator on
// every CI run. Replay is pure arithmetic over the recorded byte/
// duration pairs — no wall clock — so a change to the EWMA weighting,
// the CUSUM accumulators, or the planner's degraded-regime cut choice
// fails these tests deterministically.
package regression_test

import (
	"math"
	"os"
	"testing"

	"dnnjps/internal/core"
	"dnnjps/internal/estimator"
	"dnnjps/internal/experiments"
)

const adaptTraceFile = "testdata/adapt_stepdown_12to2.json"

func loadAdaptTrace(t *testing.T) *estimator.ReplayTrace {
	t.Helper()
	f, err := os.Open(adaptTraceFile)
	if err != nil {
		t.Fatalf("open corpus: %v", err)
	}
	defer f.Close()
	tr, err := estimator.ReadReplayTrace(f)
	if err != nil {
		t.Fatalf("parse corpus: %v", err)
	}
	return tr
}

// The committed golden points must be exactly what a fresh estimator
// under the committed config re-detects from the committed samples. A
// drift in the EWMA, warmup, or CUSUM math shows up here as a moved,
// added, or dropped change point.
func TestAdaptCorpusReplaysToGoldenChangePoints(t *testing.T) {
	tr := loadAdaptTrace(t)
	if len(tr.Samples) == 0 || len(tr.Points) == 0 {
		t.Fatalf("corpus degenerate: %d samples, %d points; re-record it", len(tr.Samples), len(tr.Points))
	}
	if tr.Config != estimator.DefaultConfig() {
		t.Fatalf("corpus config %+v is not the default config %+v", tr.Config, estimator.DefaultConfig())
	}
	cps := tr.Replay()
	if len(cps) != len(tr.Points) {
		t.Fatalf("replay detected %d change points, golden has %d", len(cps), len(tr.Points))
	}
	for i, cp := range cps {
		p := tr.Points[i]
		if cp.Sample != p.Sample {
			t.Errorf("point %d: replay fired at sample %d, golden %d", i, cp.Sample, p.Sample)
		}
		if cp.Direction.String() != p.Direction {
			t.Errorf("point %d: replay direction %s, golden %s", i, cp.Direction, p.Direction)
		}
		if math.Abs(cp.ToMbps-p.Mbps) > 1e-9 {
			t.Errorf("point %d: replay snapped to %.12f Mb/s, golden %.12f", i, cp.ToMbps, p.Mbps)
		}
	}
}

// The golden cut sequence: each point's recorded cut must be what the
// planner chooses today for an AdaptTraceBatch-job remainder priced at
// that point's snapped estimate, on the exact curve the figure plans
// on. The scripted step must also genuinely move the dominant cut —
// the committed scenario is only a regression anchor if the nominal
// and degraded regimes disagree.
func TestAdaptCorpusGoldenCutSequence(t *testing.T) {
	tr := loadAdaptTrace(t)
	if tr.Model != "adaptnet" {
		t.Fatalf("corpus model %q, want adaptnet", tr.Model)
	}
	ch := experiments.AdaptChannel()
	if tr.UplinkMbps != ch.UplinkMbps || tr.SetupMs != ch.SetupMs {
		t.Fatalf("corpus channel %g Mb/s (setup %g ms) is not the figure channel %+v",
			tr.UplinkMbps, tr.SetupMs, ch)
	}
	curve := experiments.AdaptCurve(experiments.DefaultEnv())

	nominalPlan, err := core.Replan(curve, ch, experiments.AdaptTraceBatch)
	if err != nil {
		t.Fatal(err)
	}
	nominalCut := experiments.DominantCut(nominalPlan)

	var sawDegradedDown bool
	for i, p := range tr.Points {
		measured := ch
		measured.UplinkMbps = p.Mbps
		plan, err := core.Replan(curve, measured, experiments.AdaptTraceBatch)
		if err != nil {
			t.Fatal(err)
		}
		if cut := experiments.DominantCut(plan); cut != p.Cut {
			t.Errorf("point %d (%.3f Mb/s): planner now picks dominant cut %d, golden %d", i, p.Mbps, cut, p.Cut)
		}
		if p.Direction == "down" && p.Mbps < 4 {
			sawDegradedDown = true
			if p.Cut == nominalCut {
				t.Errorf("point %d: degraded cut %d equals the nominal dominant cut — the scripted step moved nothing", i, p.Cut)
			}
		}
	}
	if !sawDegradedDown {
		t.Fatalf("corpus has no down change point inside the degraded regime: %+v", tr.Points)
	}
}
