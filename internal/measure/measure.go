// Package measure closes the profiling loop: instead of assuming a
// parametric device model, it times real engine executions of a probe
// model layer by layer and fits per-kind effective throughput — the
// same procedure the paper uses to pre-build its computation-time
// lookup table with the PyTorch profiler. The calibrated Device plugs
// straight into profile.BuildCurve, so plans can be made for the
// machine the code is actually running on.
package measure

import (
	"fmt"
	"time"

	"dnnjps/internal/dag"
	"dnnjps/internal/engine"
	"dnnjps/internal/nn"
	"dnnjps/internal/profile"
	"dnnjps/internal/regression"
	"dnnjps/internal/tensor"
)

// Sample is one timed layer execution.
type Sample struct {
	Layer string // layer name, for per-layer reporting
	Kind  nn.Kind
	FLOPs float64
	Ms    float64
}

// ProfileLayers executes the model reps times, timing every layer, and
// returns the per-layer samples (reps samples per layer, best-of kept
// to suppress scheduling noise).
func ProfileLayers(m *engine.Model, input *tensor.Tensor, reps int) ([]Sample, error) {
	if reps <= 0 {
		reps = 3
	}
	g := m.Graph()
	best := make(map[int]float64, g.Len())
	for r := 0; r < reps; r++ {
		acts := map[int]*tensor.Tensor{}
		for _, id := range g.Topo() {
			start := time.Now()
			if err := m.Execute(acts, input, []int{id}); err != nil {
				return nil, err
			}
			ms := float64(time.Since(start).Nanoseconds()) / 1e6
			if prev, ok := best[id]; !ok || ms < prev {
				best[id] = ms
			}
		}
	}
	samples := make([]Sample, 0, g.Len())
	for _, id := range g.Topo() {
		flops := g.NodeFLOPs(id)
		if flops == 0 {
			continue // free layers carry no signal
		}
		samples = append(samples, Sample{
			Layer: g.Node(id).Layer.Name(),
			Kind:  g.Node(id).Layer.Kind(),
			FLOPs: flops,
			Ms:    best[id],
		})
	}
	return samples, nil
}

// FitDevice turns layer samples into a profile.Device: per kind, a
// least-squares fit of time vs FLOPs gives the effective throughput
// (slope) and dispatch overhead (intercept); kinds with too few or
// degenerate samples fall back to the aggregate FLOPs/ms ratio.
func FitDevice(name string, samples []Sample) (profile.Device, error) {
	if len(samples) == 0 {
		return profile.Device{}, fmt.Errorf("measure: no samples")
	}
	byKind := map[nn.Kind][]Sample{}
	var totalFlops, totalMs float64
	for _, s := range samples {
		byKind[s.Kind] = append(byKind[s.Kind], s)
		totalFlops += s.FLOPs
		totalMs += s.Ms
	}
	if totalMs <= 0 {
		return profile.Device{}, fmt.Errorf("measure: zero total time")
	}
	dev := profile.Device{
		Name:             name,
		ThroughputFperMs: make(map[nn.Kind]float64),
		DefaultFperMs:    totalFlops / totalMs,
	}
	var overheadSum float64
	var overheadN int
	for kind, ss := range byKind {
		var xs, ys []float64
		var fSum, mSum float64
		for _, s := range ss {
			xs = append(xs, s.FLOPs)
			ys = append(ys, s.Ms)
			fSum += s.FLOPs
			mSum += s.Ms
		}
		if fit, err := regression.FitLinear(xs, ys); err == nil && fit.W1 > 0 {
			dev.ThroughputFperMs[kind] = 1 / fit.W1
			if fit.W0 > 0 {
				overheadSum += fit.W0
				overheadN++
			}
			continue
		}
		if mSum > 0 {
			dev.ThroughputFperMs[kind] = fSum / mSum
		}
	}
	if overheadN > 0 {
		dev.LayerOverheadMs = overheadSum / float64(overheadN)
	}
	return dev, nil
}

// Config selects how calibration runs execute the probe model.
type Config struct {
	Reps    int               // timed repetitions per layer (default 3)
	Workers int               // engine parallelism; <= 0 means GOMAXPROCS
	Kernel  engine.KernelPath // engine kernel path (default KernelGEMM)
}

// CalibrateDevice profiles the probe graph on this machine and fits a
// device model in one call, using the default engine configuration
// (GEMM kernels, single worker).
func CalibrateDevice(name string, g *dag.Graph, seed int64, reps int) (profile.Device, error) {
	dev, _, err := CalibrateDeviceCfg(name, g, seed, Config{Reps: reps, Workers: 1})
	return dev, err
}

// CalibrateDeviceCfg is CalibrateDevice with an explicit engine
// configuration. It also returns the raw per-layer samples so callers
// can report per-layer timings (jpsprofile's ns/layer table).
func CalibrateDeviceCfg(name string, g *dag.Graph, seed int64, cfg Config) (profile.Device, []Sample, error) {
	m := engine.Load(g, seed).WithKernel(cfg.Kernel).Parallel(cfg.Workers)
	input := tensor.New(g.Node(g.Source()).OutShape)
	for i := range input.Data {
		input.Data[i] = float32(i%97)/97 - 0.5
	}
	samples, err := ProfileLayers(m, input, cfg.Reps)
	if err != nil {
		return profile.Device{}, nil, err
	}
	dev, err := FitDevice(name, samples)
	if err != nil {
		return profile.Device{}, nil, err
	}
	return dev, samples, nil
}
