package measure

import (
	"testing"

	"dnnjps/internal/core"
	"dnnjps/internal/dag"
	"dnnjps/internal/engine"
	"dnnjps/internal/netsim"
	"dnnjps/internal/nn"
	"dnnjps/internal/profile"
	"dnnjps/internal/tensor"
)

// probe is a small CNN with several conv sizes so the per-kind fit has
// FLOPs variance to regress on.
func probe(t *testing.T) *dag.Graph {
	t.Helper()
	g := dag.New("probe")
	in := g.Add(&nn.Input{LayerName: "input", Shape: tensor.NewCHW(3, 48, 48)})
	c1 := g.Add(&nn.Conv2D{LayerName: "conv1", OutC: 8, KH: 3, KW: 3, Stride: 1, Pad: 1, Bias: true}, in)
	r1 := g.Add(nn.NewActivation("relu1", nn.ReLU), c1)
	p1 := g.Add(nn.NewMaxPool2D("pool1", 2, 2, 0), r1)
	c2 := g.Add(&nn.Conv2D{LayerName: "conv2", OutC: 24, KH: 3, KW: 3, Stride: 1, Pad: 1, Bias: true}, p1)
	r2 := g.Add(nn.NewActivation("relu2", nn.ReLU), c2)
	p2 := g.Add(nn.NewMaxPool2D("pool2", 2, 2, 0), r2)
	c3 := g.Add(&nn.Conv2D{LayerName: "conv3", OutC: 48, KH: 3, KW: 3, Stride: 1, Pad: 1, Bias: true}, p2)
	gp := g.Add(&nn.GlobalAvgPool2D{LayerName: "gap"}, c3)
	fc := g.Add(&nn.Dense{LayerName: "fc", Out: 10, Bias: true}, gp)
	g.Add(nn.NewSoftmax("softmax"), fc)
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestCalibrateDevice(t *testing.T) {
	g := probe(t)
	dev, err := CalibrateDevice("thismachine", g, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if dev.DefaultFperMs <= 0 {
		t.Fatal("non-positive default throughput")
	}
	// Conv throughput must be fitted and positive.
	conv, ok := dev.ThroughputFperMs[nn.KindConv]
	if !ok || conv <= 0 {
		t.Fatalf("conv throughput = %v (ok=%v)", conv, ok)
	}
	// The calibrated device must plug into the normal pipeline.
	curve := profile.BuildCurve(g, dev, profile.CloudGPU(), netsim.WiFi, tensor.Float32)
	if err := curve.Validate(); err != nil {
		t.Fatalf("curve from calibrated device invalid: %v", err)
	}
	if _, err := core.JPS(curve, 4); err != nil {
		t.Fatalf("planning with calibrated device: %v", err)
	}
}

func TestCalibrationPredictsWithinNoise(t *testing.T) {
	// Predicting the probe's own total time with the device fitted on
	// it must land within a loose noise band (timing jitter on shared
	// CI machines is large; we assert order of magnitude).
	g := probe(t)
	dev, err := CalibrateDevice("self", g, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	m := engine.Load(g, 1)
	input := tensor.New(g.Node(g.Source()).OutShape)
	for i := range input.Data {
		input.Data[i] = float32(i%97)/97 - 0.5
	}
	samples, err := ProfileLayers(m, input, 3)
	if err != nil {
		t.Fatal(err)
	}
	var measured float64
	for _, s := range samples {
		measured += s.Ms
	}
	predicted := dev.TotalTimeMs(g)
	if predicted <= 0 {
		t.Fatal("non-positive prediction")
	}
	ratio := predicted / measured
	if ratio < 0.2 || ratio > 5 {
		t.Errorf("prediction %.3fms vs measured %.3fms (ratio %.2f) out of band",
			predicted, measured, ratio)
	}
}

func TestFitDeviceErrors(t *testing.T) {
	if _, err := FitDevice("x", nil); err == nil {
		t.Error("no samples must error")
	}
	if _, err := FitDevice("x", []Sample{{Kind: nn.KindConv, FLOPs: 1, Ms: 0}}); err == nil {
		t.Error("zero total time must error")
	}
}

func TestFitDeviceFallbackRatio(t *testing.T) {
	// A kind with a single sample cannot be regressed; the aggregate
	// ratio fallback must kick in.
	dev, err := FitDevice("x", []Sample{{Kind: nn.KindDense, FLOPs: 1000, Ms: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if got := dev.ThroughputFperMs[nn.KindDense]; got != 500 {
		t.Errorf("fallback throughput = %g, want 500", got)
	}
}
