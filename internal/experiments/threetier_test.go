package experiments

import (
	"strings"
	"testing"

	"dnnjps/internal/core"
	"dnnjps/internal/netsim"
)

func TestThreeTierExperiment(t *testing.T) {
	e := env()
	e.NJobs = 20
	rows, err := ThreeTier(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("got %d rows", len(rows))
	}
	anyGain := false
	for _, r := range rows {
		// Three-tier can always fall back to the two-tier split, so it
		// never loses.
		if r.ThreeMs > r.TwoTierMs*1.001 {
			t.Errorf("%s@%s: three-tier %.1f worse than two-tier %.1f",
				r.Model, r.Uplink, r.ThreeMs, r.TwoTierMs)
		}
		if r.GainPct > 1 {
			anyGain = true
		}
	}
	if !anyGain {
		t.Error("three-tier shows no gain anywhere; the edge should pay off at slow uplinks")
	}
	if !strings.Contains(ThreeTierTable(rows).String(), "Three-tier") {
		t.Error("table missing header")
	}
	// With the thin backhaul, substantial wins must appear (the whole
	// point of the middle tier).
	bigWin := false
	for _, r := range rows {
		if r.GainPct > 20 {
			bigWin = true
		}
	}
	if !bigWin {
		t.Error("expected >20% three-tier gains with a bottleneck backhaul")
	}
}

func TestThreeTierFastBackhaulAddsNothing(t *testing.T) {
	// Control: with a backhaul much faster than the uplink, the second
	// hop never bottlenecks and the edge tier is pointless.
	e := env()
	e.NJobs = 20
	g := mustModel("alexnet")
	tenv := ThreeTierEnvDefault(e, netsim.FourG)
	tenv.Backhaul = netsim.Channel{Name: "fat", UplinkMbps: 1000, SetupMs: 1}
	three, err := core.JPSThreeTier(g, tenv, e.NJobs)
	if err != nil {
		t.Fatal(err)
	}
	two, err := core.TwoTierAsThreeTier(g, tenv, e.NJobs)
	if err != nil {
		t.Fatal(err)
	}
	if gain := pct(two.AvgMs(), three.AvgMs()); gain > 2 {
		t.Errorf("fast backhaul should leave no room for the edge tier; gain = %.1f%%", gain)
	}
}
