package experiments

// Extension experiments beyond the paper's evaluation, exercising the
// future-work directions its conclusion names (heterogeneous jobs) and
// the deployment questions a user of the system hits immediately
// (streaming arrivals, quantized activations).

import (
	"fmt"

	"dnnjps/internal/core"
	"dnnjps/internal/netsim"
	"dnnjps/internal/profile"
	"dnnjps/internal/report"
	"dnnjps/internal/sim"
	"dnnjps/internal/tensor"
)

// HeteroRow compares joint vs isolated planning of a mixed workload at
// one channel.
type HeteroRow struct {
	Channel string
	JPSMs   float64 // JPSHetero makespan
	POMs    float64 // per-class PO, union Johnson-scheduled
	LOMs    float64
	COMs    float64
}

// HeteroWorkload runs the paper's motivating mixed scenario — an AR
// device running AlexNet detections, MobileNet-v2 segmentations and
// ResNet-18 trackers in the same burst — across the three channels.
func HeteroWorkload(env Env) ([]HeteroRow, error) {
	var rows []HeteroRow
	for _, ch := range netsim.Presets() {
		classes := []core.JobClass{
			{Curve: env.curveFor(mustModel("alexnet"), ch), Count: 6},
			{Curve: env.curveFor(mustModel("mobilenetv2"), ch), Count: 6},
			{Curve: env.curveFor(mustModel("resnet18"), ch), Count: 4},
		}
		jps, err := core.JPSHetero(classes)
		if err != nil {
			return nil, err
		}
		row := HeteroRow{Channel: ch.Name, JPSMs: jps.Makespan}
		for _, b := range []struct {
			dst *float64
			fn  func(*profile.Curve, int) (*core.Plan, error)
		}{
			{&row.POMs, core.PO},
			{&row.LOMs, core.LO},
			{&row.COMs, core.CO},
		} {
			p, err := core.HeteroBaseline("", b.fn, classes)
			if err != nil {
				return nil, err
			}
			*b.dst = p.Makespan
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// HeteroTable renders the rows.
func HeteroTable(rows []HeteroRow) *report.Table {
	t := report.NewTable("Extension — heterogeneous workload (6 AlexNet + 6 MobileNet-v2 + 4 ResNet18), makespan ms",
		"Channel", "JPS-hetero", "PO", "LO", "CO")
	for _, r := range rows {
		t.AddRow(r.Channel, r.JPSMs, r.POMs, r.LOMs, r.COMs)
	}
	return t
}

// StreamRow is one arrival-rate point of the streaming experiment.
type StreamRow struct {
	FPS          float64
	Sustainable  bool
	P50SojournMs float64
	MaxSojournMs float64
}

// Stream runs a periodic frame stream of the model through the JPS
// mix and the event simulator, sweeping the frame rate, and reports
// per-frame sojourn times (completion − release).
func Stream(env Env, model string, ch netsim.Channel, fpsList []float64, frames int) ([]StreamRow, error) {
	if frames <= 0 {
		frames = 120
	}
	curve := env.curveFor(mustModel(model), ch)
	var rows []StreamRow
	for _, fps := range fpsList {
		if fps <= 0 {
			return nil, fmt.Errorf("experiments: non-positive fps %g", fps)
		}
		interval := 1000 / fps
		plan, err := core.PlanStream(curve, core.PeriodicReleases(frames, interval))
		if err != nil {
			return nil, err
		}
		res, err := sim.Run(sim.FromStreamPlan(plan))
		if err != nil {
			return nil, err
		}
		sojourns := make([]float64, 0, frames)
		maxS := 0.0
		for _, j := range plan.Jobs {
			s := res.Completions[j.ID] - j.ReleaseMs
			sojourns = append(sojourns, s)
			if s > maxS {
				maxS = s
			}
		}
		rows = append(rows, StreamRow{
			FPS:          fps,
			Sustainable:  plan.Sustainable(interval),
			P50SojournMs: median(sojourns),
			MaxSojournMs: maxS,
		})
	}
	return rows, nil
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	for i := 1; i < len(s); i++ { // insertion sort; n is small
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s[len(s)/2]
}

// StreamTable renders the rows.
func StreamTable(model string, ch netsim.Channel, rows []StreamRow) *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Extension — streaming %s frames over %s (sojourn per frame)", displayName(model), ch.Name),
		"FPS", "Sustainable", "P50 sojourn (ms)", "Max sojourn (ms)")
	for _, r := range rows {
		t.AddRow(fmt.Sprintf("%.1f", r.FPS), r.Sustainable, r.P50SojournMs, r.MaxSojournMs)
	}
	return t
}

// DTypeRow is one (model, dtype) cell of the quantized-activation
// ablation: shrinking the wire format shifts every g(l) down and moves
// the crossing layer earlier.
type DTypeRow struct {
	Model    string
	DType    string
	JPSMs    float64 // avg ms at 4G
	CutShift int     // crossing position vs float32 (negative = earlier)
}

// AblationDTypes compares float32/float16/int8 activation transport.
func AblationDTypes(env Env) ([]DTypeRow, error) {
	var rows []DTypeRow
	for _, model := range []string{"alexnet", "mobilenetv2"} {
		g := mustModel(model)
		base := -1
		for _, dt := range []tensor.DType{tensor.Float32, tensor.Float16, tensor.Int8} {
			curve := profile.BuildCurve(g, env.Mobile, env.Cloud, netsim.FourG, dt)
			r, _ := curve.Restrict(curve.ParetoCuts())
			search, err := core.BinarySearchCut(r)
			if err != nil {
				return nil, err
			}
			if base < 0 {
				base = search.LStar
			}
			plan, err := core.JPS(curve, env.NJobs)
			if err != nil {
				return nil, err
			}
			rows = append(rows, DTypeRow{
				Model:    model,
				DType:    dt.String(),
				JPSMs:    plan.AvgMs(),
				CutShift: search.LStar - base,
			})
		}
	}
	return rows, nil
}

// AblationDTypesTable renders the rows.
func AblationDTypesTable(rows []DTypeRow) *report.Table {
	t := report.NewTable("Extension — activation wire format (4G, avg ms/job)",
		"Model", "DType", "JPS avg ms", "Crossing shift")
	for _, r := range rows {
		t.AddRow(displayName(r.Model), r.DType, r.JPSMs, r.CutShift)
	}
	return t
}
