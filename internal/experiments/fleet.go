package experiments

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"dnnjps/internal/dag"
	"dnnjps/internal/engine"
	"dnnjps/internal/netsim"
	"dnnjps/internal/obs"
	"dnnjps/internal/profile"
	"dnnjps/internal/report"
	"dnnjps/internal/runtime"
	"dnnjps/internal/tensor"
)

// RuntimeFleetResult is one fleet-load probe: N concurrent clients on
// independent TCP connections flood one shared server, each with its
// own tenant ID, and the server-wide scheduler arbitrates — admission
// control, cross-connection coalescing, weighted fair queueing.
type RuntimeFleetResult struct {
	Model         string
	Clients       int
	JobsPerClient int
	WindowMs      float64
	Watermark     int
	// MakespanMs is the wall time from first dial to last reply
	// across every client.
	MakespanMs float64
	// BusyPerJobMs is the server's deduplicated cloud-compute wall
	// time divided by the job count — the per-job cost
	// cross-connection batching shrinks.
	BusyPerJobMs float64
	// MeanBatch is the average executed group size. Per-connection
	// coalescing pins this near jobs-per-burst; server-wide
	// coalescing lets it grow with the client count.
	MeanBatch float64
	// P50Ms / P99Ms summarize per-job round-trip latency (upload to
	// reply, client-measured).
	P50Ms, P99Ms float64
	BatchedJobs  int64
	SoloJobs     int64
	// Shed counts jobs admission control refused (overload rows).
	Shed int64
}

// deepParamCut returns the deepest offloaded cut whose suffix still
// holds parameterized compute: past it the server would only run an
// unparameterized epilogue, which batching cannot help.
func deepParamCut(g *dag.Graph, units []profile.Unit) int {
	cut := len(units) - 2
	tailParams := int64(0)
	for i := len(units) - 2; i >= 0; i-- {
		for _, id := range units[i+1].Nodes {
			tailParams += g.NodeParams(id)
		}
		if tailParams > 0 {
			cut = i
			break
		}
	}
	return cut
}

// RuntimeFleet runs the fleet probe at each client count, once with
// the coalescer off (window 0, the per-job baseline) and once at the
// given window; if shedWatermark > 0 a final overload row repeats the
// largest count with admission control armed, showing shedding bound
// p99 instead of letting the queue collapse it. Every client runs over
// its own loopback TCP connection with its own tenant ID, so the rows
// exercise the hello handshake, per-tenant accounting, and the
// cross-connection coalescer with genuinely independent sockets.
func RuntimeFleet(env Env, model string, ch netsim.Channel, clientCounts []int, jobsPerClient int,
	window time.Duration, batchMax, shedWatermark int, timeScale float64) ([]*RuntimeFleetResult, error) {
	g := mustModel(model)
	const seed = 42
	m := engine.Load(g, seed).WithKernel(env.Kernel)
	units := profile.LineView(g)
	cut := deepParamCut(g, units)
	var prefix []int
	for _, u := range units[:cut+1] {
		prefix = append(prefix, u.Nodes...)
	}
	inShape := g.Node(units[0].Exit).OutShape

	// Distinct boundary activations recycled across jobs, as in
	// RuntimeBatch: the probe measures the serving fabric, not the
	// mobile prefix.
	const distinct = 4
	protos := make([]*tensor.Tensor, 0, distinct)
	for i := 0; i < distinct; i++ {
		in := tensor.New(inShape)
		for j := range in.Data {
			in.Data[j] = float32((j+i*13)%29)/29 - 0.5
		}
		acts := map[int]*tensor.Tensor{}
		if err := m.Execute(acts, in, prefix); err != nil {
			return nil, err
		}
		protos = append(protos, acts[units[cut].Exit].Clone())
	}

	run := func(clients int, w time.Duration, wm int) (*RuntimeFleetResult, error) {
		tracer := obs.NewTracer(0)
		o := runtime.NewObs(tracer, obs.NewMetrics())
		// One worker: concurrent workers timeslice on small hosts and
		// inflate each other's compute spans, which would corrupt the
		// busy-time column this figure exists to compare.
		srv := runtime.NewServer(m).WithWorkers(1).WithObs(o)
		if w > 0 && batchMax > 1 {
			srv = srv.WithBatching(w, batchMax)
		}
		if wm > 0 {
			srv = srv.WithShedWatermark(wm)
		}
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		go func() { _ = srv.Serve(lis) }()
		defer srv.Close()
		defer lis.Close()

		boundaries := make([]*tensor.Tensor, jobsPerClient)
		for i := range boundaries {
			boundaries[i] = protos[i%distinct]
		}

		var (
			wg        sync.WaitGroup
			mu        sync.Mutex
			latencies []float64
			firstErr  error
		)
		t0 := time.Now()
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				conn, err := net.Dial("tcp", lis.Addr().String())
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				defer conn.Close()
				cl := runtime.NewClient(conn, m, ch, timeScale).
					WithTenant(fmt.Sprintf("client-%02d", c))
				rep, err := cl.RunBoundaryJobs(cut, boundaries)
				mu.Lock()
				defer mu.Unlock()
				if err != nil {
					if firstErr == nil {
						firstErr = err
					}
					return
				}
				for _, r := range rep.Results {
					latencies = append(latencies, r.CommMs+r.CloudMs+r.QueueMs)
				}
			}(c)
		}
		wg.Wait()
		makespan := float64(time.Since(t0)) / float64(time.Millisecond)
		if firstErr != nil {
			return nil, firstErr
		}

		// Server busy time: each distinct (start, duration) interval
		// once — batch members share their group's execution span.
		type interval struct{ start, dur int64 }
		seen := map[interval]bool{}
		var busyNs int64
		for _, sp := range tracer.Spans() {
			if sp.Track != runtime.TrackServer || sp.Name != runtime.SpanCloudCompute {
				continue
			}
			iv := interval{sp.StartNs, sp.DurNs}
			if !seen[iv] {
				seen[iv] = true
				busyNs += sp.DurNs
			}
		}
		meanBatch := 1.0
		if c := o.BatchSize.Count(); c > 0 {
			meanBatch = o.BatchSize.Sum() / float64(c)
		}
		sort.Float64s(latencies)
		pct := func(p float64) float64 {
			if len(latencies) == 0 {
				return 0
			}
			i := int(p * float64(len(latencies)-1))
			return latencies[i]
		}
		jobs := clients * jobsPerClient
		return &RuntimeFleetResult{
			Model:         model,
			Clients:       clients,
			JobsPerClient: jobsPerClient,
			WindowMs:      float64(w) / float64(time.Millisecond),
			Watermark:     wm,
			MakespanMs:    makespan,
			BusyPerJobMs:  float64(busyNs) / 1e6 / float64(jobs),
			MeanBatch:     meanBatch,
			P50Ms:         pct(0.50),
			P99Ms:         pct(0.99),
			BatchedJobs:   o.BatchedJobs.Value(),
			SoloJobs:      o.SoloJobs.Value(),
			Shed:          o.ShedJobs.Value(),
		}, nil
	}

	var results []*RuntimeFleetResult
	for _, n := range clientCounts {
		for _, w := range []time.Duration{0, window} {
			r, err := run(n, w, 0)
			if err != nil {
				return nil, err
			}
			results = append(results, r)
		}
	}
	if shedWatermark > 0 && len(clientCounts) > 0 {
		r, err := run(clientCounts[len(clientCounts)-1], window, shedWatermark)
		if err != nil {
			return nil, err
		}
		results = append(results, r)
	}
	return results, nil
}

// RuntimeFleetTable renders the fleet rows; window-0 rows are the
// unbatched baselines, and a nonzero watermark marks the overload row
// where admission control bounds the tail.
func RuntimeFleetTable(results []*RuntimeFleetResult) *report.Table {
	t := report.NewTable(
		"Fleet serving — cross-connection batching and admission control vs client count",
		"Model", "Clients", "Jobs", "Window(ms)", "Watermark", "Makespan(ms)", "Busy/job(ms)",
		"MeanBatch", "p50(ms)", "p99(ms)", "Batched", "Solo", "Shed")
	for _, r := range results {
		wm := "-"
		if r.Watermark > 0 {
			wm = fmt.Sprintf("%d", r.Watermark)
		}
		t.AddRow(displayName(r.Model), r.Clients, r.Clients*r.JobsPerClient, fmtMs(r.WindowMs), wm,
			fmtMs(r.MakespanMs), fmt.Sprintf("%.3f", r.BusyPerJobMs),
			fmt.Sprintf("%.2f", r.MeanBatch), fmtMs(r.P50Ms), fmtMs(r.P99Ms),
			r.BatchedJobs, r.SoloJobs, r.Shed)
	}
	return t
}
