package experiments

import (
	"dnnjps/internal/core"
	"dnnjps/internal/netsim"
	"dnnjps/internal/report"
)

// Fig13Row is one bandwidth point of the benefit-range sweep: average
// completion time of each scheme at that uplink bandwidth.
type Fig13Row struct {
	Mbps  float64
	LOMs  float64
	COMs  float64
	POMs  float64
	JPSMs float64
}

// DefaultBandwidths covers the paper's [1, 80] Mb/s sweep.
func DefaultBandwidths() []float64 {
	var out []float64
	for b := 1.0; b <= 80; b += 1 {
		out = append(out, b)
	}
	return out
}

// Fig13 sweeps the uplink bandwidth for one model (the paper plots
// AlexNet and MobileNet-v2).
func Fig13(env Env, model string, bandwidths []float64) ([]Fig13Row, error) {
	g := mustModel(model)
	rows := make([]Fig13Row, 0, len(bandwidths))
	for _, b := range bandwidths {
		ch := netsim.At(b)
		curve := env.curveFor(g, ch)
		lo, err := core.LO(curve, env.NJobs)
		if err != nil {
			return nil, err
		}
		co, err := core.CO(curve, env.NJobs)
		if err != nil {
			return nil, err
		}
		po, err := core.PO(curve, env.NJobs)
		if err != nil {
			return nil, err
		}
		jpsAvg, err := env.jpsAvgMs(g, ch, env.NJobs)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig13Row{
			Mbps:  b,
			LOMs:  lo.AvgMs(),
			COMs:  co.AvgMs(),
			POMs:  po.AvgMs(),
			JPSMs: jpsAvg,
		})
	}
	return rows, nil
}

// BenefitRange returns the bandwidth interval over which JPS is
// strictly faster (by margin, e.g. 0.01 = 1%) than both LO and CO —
// the paper's "benefit range" discussion of Fig. 13.
func BenefitRange(rows []Fig13Row, margin float64) (lo, hi float64, ok bool) {
	for _, r := range rows {
		better := r.JPSMs < r.LOMs*(1-margin) && r.JPSMs < r.COMs*(1-margin)
		if better {
			if !ok {
				lo, ok = r.Mbps, true
			}
			hi = r.Mbps
		}
	}
	return lo, hi, ok
}

// Fig13Table renders the sweep.
func Fig13Table(model string, rows []Fig13Row) *report.Table {
	t := report.NewTable("Fig. 13 — latency vs bandwidth for "+displayName(model)+" (avg ms)",
		"Mbps", "LO", "CO", "PO", "JPS")
	for _, r := range rows {
		t.AddRow(r.Mbps, r.LOMs, r.COMs, r.POMs, r.JPSMs)
	}
	return t
}
