package experiments

import (
	"fmt"

	"dnnjps/internal/core"
	"dnnjps/internal/netsim"
	"dnnjps/internal/profile"
	"dnnjps/internal/report"
)

// ChainRow compares k-way chain planning against the best single cut
// on the same device chain, for one model, uplink, and chain depth
// (depth = number of network hops; depth 1 is the paper's two-tier
// setting, depth 2 the three-tier extension).
type ChainRow struct {
	Model    string
	Uplink   string
	Depth    int
	OneCutMs float64
	KWayMs   float64
	GainPct  float64
}

// ChainEnvDefault builds the depth-d device chain the experiment uses.
// Depth 1 and 2 reproduce the existing topologies exactly (two-tier
// over the uplink; ThreeTierEnvDefault's quarter-speed edge behind a
// half-bandwidth WAN backhaul), so the chain rows line up with the
// 3tier experiment. Depth 3 splits the WAN segment in two: the same
// quarter-speed metro edge over the thin backhaul, then a half-speed
// regional box one short hop further, then the cloud over a
// full-bandwidth backbone — each extra hop is another place a k-way
// plan can park middle layers that a single cut must ship across the
// whole path.
func ChainEnvDefault(env Env, uplink netsim.Channel, depth int) (core.Chain, error) {
	three := ThreeTierEnvDefault(env, uplink)
	switch depth {
	case 1:
		return core.TwoTierChain(env.Mobile, env.Cloud, uplink, env.DType), nil
	case 2:
		return three.Chain(), nil
	case 3:
		return core.Chain{
			Devices: []profile.Device{three.Mobile, three.Edge, env.Cloud.Scaled(0.5), three.Cloud},
			Links: []netsim.Channel{
				three.Uplink,
				three.Backhaul,
				{Name: "wan-backbone", UplinkMbps: uplink.UplinkMbps, SetupMs: 5},
			},
			DType: env.DType,
		}, nil
	default:
		return core.Chain{}, fmt.Errorf("experiments: chain depth %d not in [1,3]", depth)
	}
}

// ChainDepth sweeps chain depth 1–3 for two line models across the
// preset uplinks, planning each chain with the k-way planner and with
// the best-single-cut baseline. Gain is the k-way improvement over one
// cut; at depth 1 both planners see the same search space, so the row
// doubles as a sanity anchor (gain 0).
func ChainDepth(env Env) ([]ChainRow, error) {
	var rows []ChainRow
	for _, model := range []string{"alexnet", "mobilenetv2"} {
		g := mustModel(model)
		for _, up := range netsim.Presets() {
			for depth := 1; depth <= 3; depth++ {
				ch, err := ChainEnvDefault(env, up, depth)
				if err != nil {
					return nil, err
				}
				kway, err := core.JPSChain(g, ch, env.NJobs)
				if err != nil {
					return nil, err
				}
				one, err := core.OneCutChain(g, ch, env.NJobs)
				if err != nil {
					return nil, err
				}
				rows = append(rows, ChainRow{
					Model:    model,
					Uplink:   up.Name,
					Depth:    depth,
					OneCutMs: one.AvgMs(),
					KWayMs:   kway.AvgMs(),
					GainPct:  pct(one.AvgMs(), kway.AvgMs()),
				})
			}
		}
	}
	return rows, nil
}

// ChainDepthTable renders the depth sweep.
func ChainDepthTable(rows []ChainRow) *report.Table {
	t := report.NewTable("Extension — k-way chain planning vs best single cut (avg ms/job)",
		"Model", "Uplink", "Hops", "1-cut", "k-way", "Gain %")
	for _, r := range rows {
		t.AddRow(displayName(r.Model), r.Uplink, r.Depth, r.OneCutMs, r.KWayMs, r.GainPct)
	}
	return t
}

// ChainGapRow measures the k-way heuristic's distance from the
// offline-optimal brute force on one small instance.
type ChainGapRow struct {
	Model  string
	Depth  int
	NJobs  int
	BFMs   float64
	KWayMs float64
	GapPct float64
}

// ChainGap compares JPSChain to ChainBruteForce on instances small
// enough to enumerate exactly (n jobs, exhaustive sequencing): the
// heuristic-gap leg of the chain experiment. Gap is how far the
// heuristic's makespan sits above the optimum, in percent.
func ChainGap(env Env, n int) ([]ChainGapRow, error) {
	var rows []ChainGapRow
	for _, model := range []string{"alexnet", "mobilenetv2"} {
		g := mustModel(model)
		for depth := 2; depth <= 3; depth++ {
			ch, err := ChainEnvDefault(env, netsim.FourG, depth)
			if err != nil {
				return nil, err
			}
			bf, err := core.ChainBruteForce(g, ch, n, 2_000_000)
			if err != nil {
				return nil, err
			}
			kway, err := core.JPSChain(g, ch, n)
			if err != nil {
				return nil, err
			}
			gap := 0.0
			if bf.Makespan > 0 {
				gap = (kway.Makespan - bf.Makespan) / bf.Makespan * 100
			}
			rows = append(rows, ChainGapRow{
				Model:  model,
				Depth:  depth,
				NJobs:  n,
				BFMs:   bf.Makespan,
				KWayMs: kway.Makespan,
				GapPct: gap,
			})
		}
	}
	return rows, nil
}

// ChainGapTable renders the heuristic-gap rows.
func ChainGapTable(rows []ChainGapRow) *report.Table {
	t := report.NewTable("Extension — k-way heuristic vs offline-optimal brute force (makespan ms)",
		"Model", "Hops", "Jobs", "Brute force", "k-way", "Gap %")
	for _, r := range rows {
		t.AddRow(displayName(r.Model), r.Depth, r.NJobs, r.BFMs, r.KWayMs, r.GapPct)
	}
	return t
}
