package experiments

import (
	"fmt"
	"net"
	"time"

	"dnnjps/internal/engine"
	"dnnjps/internal/flowshop"
	"dnnjps/internal/netsim"
	"dnnjps/internal/obs"
	"dnnjps/internal/profile"
	"dnnjps/internal/report"
	"dnnjps/internal/runtime"
	"dnnjps/internal/tensor"
)

// RuntimeBatchResult is one live run of the server-side coalescer: n
// concurrent jobs cut at the model's deepest parameterized position
// (suffix = the weight-heavy head) are fired at the server all at
// once via Client.RunBoundaryJobs, so the coalescer sees genuine
// request concurrency, at one batch-window setting.
type RuntimeBatchResult struct {
	Model    string
	Jobs     int
	WindowMs float64
	BatchMax int
	// MakespanMs is the measured first-enqueue → last-reply span.
	MakespanMs float64
	// ServerBusyMs sums the server's distinct cloud-compute intervals.
	// Members of one batch group share a single execution span, so
	// identical intervals are counted once: this is the wall time the
	// suffix stage actually occupied, the quantity batching shrinks.
	ServerBusyMs float64
	// MeanBatch is the average executed group size (1 when the
	// coalescer is disarmed: window 0 is the batch-1 baseline).
	MeanBatch float64
	// BatchedJobs / SoloJobs split the jobs by whether they shared a
	// group (solo = flushed alone despite batching being armed).
	BatchedJobs int64
	SoloJobs    int64
	// FormulaMs is Prop. 4.1's two-stage closed form for this run:
	// with no mobile stage it degenerates to the uplink bound Σg. The
	// gap between it and the measured makespan is the server stage —
	// the term the closed form excludes and batching attacks.
	FormulaMs float64
}

// RuntimeBatch executes the concurrent-job probe for each job count at
// each coalescing window over loopback TCP and reports makespan,
// server busy time and achieved batch sizes. A window of 0 disables
// the coalescer and serves as the batch-1 baseline; nonzero windows
// trade up to that much queueing delay per job for grouped suffix
// executions (one batched forward per group — Theorem 5.3 guarantees a
// JPS plan feeds the server at most two boundary shapes, so grouping
// by cut cannot fragment). The cut is the deepest offloaded position
// whose suffix still holds parameters: the suffix is the classifier
// head, weight-streaming-bound, the regime where one shared weight
// pass per group pays off even on a single core.
func RuntimeBatch(env Env, model string, ch netsim.Channel, jobCounts []int, windows []time.Duration, batchMax int, timeScale float64) ([]*RuntimeBatchResult, error) {
	g := mustModel(model)
	const seed = 42
	m := engine.Load(g, seed).WithKernel(env.Kernel)
	units := profile.LineView(g)

	// Deepest offloaded cut whose suffix still holds parameterized
	// compute (see deepParamCut): the suffix is the model's head — for
	// the paper's models a small upload and a weight-streaming-bound
	// remainder.
	cut := deepParamCut(g, units)
	var prefix []int
	for _, u := range units[:cut+1] {
		prefix = append(prefix, u.Nodes...)
	}
	inShape := g.Node(units[0].Exit).OutShape
	boundShape := g.Node(units[cut].Exit).OutShape

	// A few distinct real boundary activations, recycled across jobs
	// (computing one heavy prefix per job would only delay the probe).
	const distinct = 4
	protos := make([]*tensor.Tensor, 0, distinct)
	for i := 0; i < distinct; i++ {
		in := tensor.New(inShape)
		for j := range in.Data {
			in.Data[j] = float32((j+i*13)%29)/29 - 0.5
		}
		acts := map[int]*tensor.Tensor{}
		if err := m.Execute(acts, in, prefix); err != nil {
			return nil, err
		}
		protos = append(protos, acts[units[cut].Exit].Clone())
	}

	var results []*RuntimeBatchResult
	for _, n := range jobCounts {
		boundaries := make([]*tensor.Tensor, n)
		for i := range boundaries {
			boundaries[i] = protos[i%distinct]
		}
		for _, window := range windows {
			tracer := obs.NewTracer(0)
			o := runtime.NewObs(tracer, obs.NewMetrics())
			lis, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return nil, err
			}
			srv := runtime.NewServer(m).WithWorkers(4).WithObs(o)
			if window > 0 {
				srv = srv.WithBatching(window, batchMax)
			}
			go func() {
				defer lis.Close()
				conn, err := lis.Accept()
				if err != nil {
					return
				}
				defer conn.Close()
				_ = srv.HandleConn(conn)
				srv.Close()
			}()
			conn, err := net.Dial("tcp", lis.Addr().String())
			if err != nil {
				return nil, err
			}
			cl := runtime.NewClient(conn, m, ch, timeScale)
			rep, err := cl.RunBoundaryJobs(cut, boundaries)
			conn.Close()
			if err != nil {
				return nil, err
			}

			// Server busy time: sum cloud-compute spans, counting each
			// distinct (start, duration) interval once — batch members
			// carry copies of their group's shared execution span.
			type interval struct{ start, dur int64 }
			seen := map[interval]bool{}
			var busyNs int64
			for _, sp := range tracer.Spans() {
				if sp.Track != runtime.TrackServer || sp.Name != runtime.SpanCloudCompute {
					continue
				}
				iv := interval{sp.StartNs, sp.DurNs}
				if !seen[iv] {
					seen[iv] = true
					busyNs += sp.DurNs
				}
			}

			meanBatch := 1.0
			if c := o.BatchSize.Count(); c > 0 {
				meanBatch = o.BatchSize.Sum() / float64(c)
			}

			// Prop. 4.1 reference, as in RuntimePipeline: measured f
			// (zero here — no mobile stage), channel-model g.
			up := timeScale * ch.TxMs(runtime.RequestWireBytes(boundShape))
			seq := make([]flowshop.Job, 0, n)
			for _, r := range rep.Results {
				seq = append(seq, flowshop.Job{ID: r.JobID, A: r.MobileMs, B: up})
			}

			results = append(results, &RuntimeBatchResult{
				Model:        model,
				Jobs:         n,
				WindowMs:     float64(window) / float64(time.Millisecond),
				BatchMax:     batchMax,
				MakespanMs:   rep.MakespanMs,
				ServerBusyMs: float64(busyNs) / 1e6,
				MeanBatch:    meanBatch,
				BatchedJobs:  o.BatchedJobs.Value(),
				SoloJobs:     o.SoloJobs.Value(),
				FormulaMs:    flowshop.FormulaMakespan(seq),
			})
		}
	}
	return results, nil
}

// RuntimeBatchTable renders coalescer runs; rows with window 0 are the
// batch-1 baselines the other windows are read against.
func RuntimeBatchTable(results []*RuntimeBatchResult) *report.Table {
	t := report.NewTable(
		"Cross-job batching — makespan and server CPU vs coalescing window",
		"Model", "Jobs", "Window(ms)", "Makespan(ms)", "ServerBusy(ms)", "MeanBatch", "Batched", "Solo", "Prop4.1(ms)")
	for _, r := range results {
		t.AddRow(displayName(r.Model), r.Jobs, fmtMs(r.WindowMs), fmtMs(r.MakespanMs),
			fmtMs(r.ServerBusyMs), fmt.Sprintf("%.2f", r.MeanBatch),
			r.BatchedJobs, r.SoloJobs, fmtMs(r.FormulaMs))
	}
	return t
}
