// Package experiments reproduces every table and figure of the
// paper's evaluation (Section 6): per-layer profiles (Fig. 4), the
// brute-force comparison (Fig. 11), the four-model × three-bandwidth
// latency grid (Fig. 12, Table 1), the planning-overhead measurement
// (Fig. 12d), the bandwidth sweep / benefit range (Fig. 13), and the
// job-mix ratio sweep (Fig. 14), plus the ablations DESIGN.md calls
// out. Each driver returns structured rows and can render a
// report.Table; cmd/jpsbench drives them all and regenerates
// EXPERIMENTS.md's measured columns.
package experiments

import (
	"fmt"

	"dnnjps/internal/core"
	"dnnjps/internal/dag"
	"dnnjps/internal/engine"
	"dnnjps/internal/models"
	"dnnjps/internal/netsim"
	"dnnjps/internal/profile"
	"dnnjps/internal/tensor"
)

// Env fixes the device pair, datatype and job count shared by all
// experiments.
type Env struct {
	Mobile profile.Device
	Cloud  profile.Device
	DType  tensor.DType
	// NJobs is the job count of the Fig. 12 / Table 1 / Fig. 13 /
	// Fig. 14 experiments (the paper uses 100).
	NJobs int
	// Kernel selects the engine kernel path for the live-runtime
	// experiments (runtime, batch, fleet, adapt, faults, trace). The
	// zero value is KernelGEMM — the shape-aware auto policy — so a
	// zero Env keeps the historical behavior.
	Kernel engine.KernelPath
}

// DefaultEnv mirrors the paper's testbed: Raspberry Pi 4 client,
// GPU-class server, float32 tensors, 100 jobs.
func DefaultEnv() Env {
	return Env{
		Mobile: profile.RaspberryPi4(),
		Cloud:  profile.CloudGPU(),
		DType:  tensor.Float32,
		NJobs:  100,
	}
}

// curveFor profiles a model on a channel.
func (e Env) curveFor(g *dag.Graph, ch netsim.Channel) *profile.Curve {
	return profile.BuildCurve(g, e.Mobile, e.Cloud, ch, e.DType)
}

// jpsAvgMs plans a model with the method the paper uses for it — the
// line-view JPS for (virtually) line-structured models, the general
// planner for GoogLeNet — and returns the average completion time.
func (e Env) jpsAvgMs(g *dag.Graph, ch netsim.Channel, n int) (float64, error) {
	if g.IsLine() || g.Name() != "googlenet" {
		p, err := core.JPS(e.curveFor(g, ch), n)
		if err != nil {
			return 0, err
		}
		return p.AvgMs(), nil
	}
	p, err := core.PlanGeneralBest(g, e.Mobile, e.Cloud, ch, e.DType, n, 0)
	if err != nil {
		return 0, err
	}
	return p.AvgMs(), nil
}

// mustModel builds a zoo model or panics (experiment drivers use
// hard-coded names).
func mustModel(name string) *dag.Graph { return models.MustBuild(name) }

// displayName maps zoo names to the paper's labels.
func displayName(model string) string {
	switch model {
	case "alexnet":
		return "AlexNet"
	case "googlenet":
		return "GoogLeNet"
	case "mobilenetv2":
		return "MobileNet-v2"
	case "resnet18":
		return "ResNet18"
	case "vgg16":
		return "VGG16"
	case "nin":
		return "NiN"
	case "tinyyolov2":
		return "Tiny-YOLOv2"
	default:
		return model
	}
}

func pct(base, v float64) float64 {
	if base <= 0 {
		return 0
	}
	r := (base - v) / base * 100
	if r < 0 {
		return 0 // the paper reports 0 when a scheme does not help
	}
	return r
}

func fmtMs(v float64) string { return fmt.Sprintf("%.1f", v) }
