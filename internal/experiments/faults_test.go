package experiments

import (
	"testing"

	"dnnjps/internal/netsim"
)

// TestRuntimeFaultsLive runs the fault figure end-to-end over loopback
// at a small scale: a clean run plus a heavily-dropped run. Both must
// complete every job; the dropped run must report recovery activity and
// a makespan no better than the clean one.
func TestRuntimeFaultsLive(t *testing.T) {
	if testing.Short() {
		t.Skip("live loopback experiment")
	}
	env := DefaultEnv()
	rows, err := RuntimeFaults(env, "squeezenet", netsim.WiFi, 4, 1e-3, []float64{0, 20}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	clean, faulty := rows[0], rows[1]
	if clean.MakespanMs <= 0 || clean.FormulaMs <= 0 {
		t.Fatalf("clean row not positive: %+v", clean)
	}
	if clean.Reconnects != 0 || clean.Retried != 0 || clean.LocalJobs != 0 {
		t.Fatalf("clean run reported recovery activity: %+v", clean)
	}
	if faulty.Retried == 0 && faulty.Reconnects == 0 && faulty.LocalJobs == 0 {
		t.Fatalf("20%% drops triggered no recovery at all: %+v", faulty)
	}
	if RuntimeFaultsTable(rows) == nil {
		t.Fatal("nil table")
	}
}
