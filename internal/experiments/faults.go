package experiments

import (
	"fmt"
	"net"
	"time"

	"dnnjps/internal/core"
	"dnnjps/internal/engine"
	"dnnjps/internal/flowshop"
	"dnnjps/internal/netsim"
	"dnnjps/internal/profile"
	"dnnjps/internal/report"
	"dnnjps/internal/runtime"
	"dnnjps/internal/tensor"
)

// FaultRow is one fault-rate point of the runtime-faults figure: the
// same JPS plan executed through the fault-tolerant runner under
// injected uplink frame drops, compared against the no-fault Prop. 4.1
// closed form (measured mobile times, channel-model upload times).
type FaultRow struct {
	Model      string
	Jobs       int
	DropPct    float64 // injected per-frame drop probability, percent
	MakespanMs float64
	FormulaMs  float64 // no-fault closed form for this run's plan
	Reconnects int
	Retried    int
	LocalJobs  int // jobs finished by the local fallback
}

// Ratio is the fault-induced slowdown over the no-fault closed form.
func (r *FaultRow) Ratio() float64 {
	if r.FormulaMs <= 0 {
		return 0
	}
	return r.MakespanMs / r.FormulaMs
}

// RuntimeFaults runs the fault-tolerance figure: one live pipelined run
// per drop rate (e.g. {0, 1, 5, 20} percent), each over loopback TCP
// with a seeded fault injector on the client side of the connection.
// Every run must complete all n jobs — the runner retries lost jobs
// and falls back to local execution if the link dies — so the figure
// reports how much makespan the recovery machinery costs, not whether
// jobs survive.
func RuntimeFaults(env Env, model string, ch netsim.Channel, n int, timeScale float64, dropPcts []float64, seed int64) ([]*FaultRow, error) {
	g := mustModel(model)
	m := engine.Load(g, 42).WithKernel(env.Kernel)
	curve := env.curveFor(g, ch)
	plan, err := core.JPS(curve, n)
	if err != nil {
		return nil, err
	}
	units := profile.LineView(g)
	inputs := make([]*tensor.Tensor, n)
	inShape := g.Node(units[0].Exit).OutShape
	for i := range inputs {
		in := tensor.New(inShape)
		for j := range in.Data {
			in.Data[j] = float32((j+i*13)%29)/29 - 0.5
		}
		inputs[i] = in
	}

	// Per-job deadline: the reply wait covers the (scaled) upload plus
	// the server's suffix inference, which runs at real compute speed
	// whatever the time scale. Budget both from a measured full forward
	// pass, with headroom so only genuinely lost jobs trip the deadline.
	var gWallMax float64
	for _, cut := range plan.Cuts {
		if cut < len(units)-1 {
			shape := g.Node(units[cut].Exit).OutShape
			if ms := timeScale * ch.TxMs(runtime.RequestWireBytes(shape)); ms > gWallMax {
				gWallMax = ms
			}
		}
	}
	t0 := time.Now()
	if _, err := m.Forward(inputs[0].Clone()); err != nil {
		return nil, err
	}
	fullMs := float64(time.Since(t0)) / float64(time.Millisecond)
	jobTimeout := time.Duration((4*(fullMs+gWallMax) + 250) * float64(time.Millisecond))

	srv := runtime.NewServer(m)
	defer srv.Close()
	var rows []*FaultRow
	for ri, pct := range dropPcts {
		prob := pct / 100
		conns := 0
		dial := func() (net.Conn, error) {
			lis, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return nil, err
			}
			go func() {
				defer lis.Close()
				conn, err := lis.Accept()
				if err != nil {
					return
				}
				defer conn.Close()
				_ = srv.HandleConn(conn)
			}()
			conn, err := net.Dial("tcp", lis.Addr().String())
			if err != nil {
				return nil, err
			}
			conns++
			return netsim.Inject(conn,
				netsim.FaultSpec{DropProb: prob}, netsim.FaultSpec{},
				seed+int64(100*ri+conns), timeScale), nil
		}
		r := runtime.NewRunner(dial, m, ch, timeScale, runtime.RunOptions{
			JobTimeout:    jobTimeout,
			MaxReconnects: 20,
			BackoffBase:   2 * time.Millisecond,
			BackoffMax:    20 * time.Millisecond,
			Seed:          seed + int64(ri),
		})
		rep, err := r.RunPlan(plan, inputs)
		if err != nil {
			return nil, fmt.Errorf("experiments: faults run at %.0f%%: %w", pct, err)
		}
		if len(rep.Results) != n {
			return nil, fmt.Errorf("experiments: faults run at %.0f%%: %d/%d results", pct, len(rep.Results), n)
		}

		// No-fault closed form from this run's own measured mobile times
		// (prefix compute is unaffected by link faults) and the channel
		// model's upload times — the reference the 1.5x acceptance bound
		// is stated against.
		seq := make([]flowshop.Job, n)
		for pos, j := range plan.Sequence {
			cut := plan.Cuts[j.ID]
			var up float64
			if cut < len(units)-1 {
				shape := g.Node(units[cut].Exit).OutShape
				up = timeScale * ch.TxMs(runtime.RequestWireBytes(shape))
			}
			seq[pos] = flowshop.Job{ID: j.ID, A: rep.Results[j.ID].MobileMs, B: up}
		}
		rows = append(rows, &FaultRow{
			Model:      model,
			Jobs:       n,
			DropPct:    pct,
			MakespanMs: rep.MakespanMs,
			FormulaMs:  flowshop.FormulaMakespan(seq),
			Reconnects: rep.Reconnects,
			Retried:    rep.RetriedJobs,
			LocalJobs:  rep.LocalFallbackJobs,
		})
	}
	return rows, nil
}

// RuntimeFaultsTable renders the fault sweep.
func RuntimeFaultsTable(rows []*FaultRow) *report.Table {
	t := report.NewTable(
		"Fault-tolerant runtime — makespan under injected uplink frame drops",
		"Model", "Jobs", "Drop%", "Makespan(ms)", "NoFault Prop4.1(ms)", "Ratio", "Reconnects", "Retried", "LocalJobs")
	for _, r := range rows {
		t.AddRow(displayName(r.Model), r.Jobs, fmt.Sprintf("%.0f%%", r.DropPct),
			fmtMs(r.MakespanMs), fmtMs(r.FormulaMs), fmt.Sprintf("%.2fx", r.Ratio()),
			r.Reconnects, r.Retried, r.LocalJobs)
	}
	return t
}
