package experiments

import (
	"dnnjps/internal/core"
	"dnnjps/internal/models"
	"dnnjps/internal/netsim"
	"dnnjps/internal/report"
)

// ThreeTierRow compares two-tier vs three-tier planning for one model
// and uplink.
type ThreeTierRow struct {
	Model     string
	Uplink    string
	TwoTierMs float64
	ThreeMs   float64
	GainPct   float64
}

// ThreeTierEnvDefault is the topology the extension experiment uses: a
// quarter-speed edge box one wireless hop away, then a WAN backhaul to
// the cloud at HALF the wireless bandwidth. The thin second hop is
// what makes a middle tier pay off: in a two-tier plan the cut tensor
// crosses both hops and the backhaul becomes the pipeline bottleneck,
// while the three-tier plan lets the edge absorb the middle layers so
// a much smaller tensor hits the slow hop. With a backhaul faster than
// the uplink, two-tier is already near-optimal and the edge adds
// nothing — reproduced by TestThreeTierFastBackhaulAddsNothing.
func ThreeTierEnvDefault(env Env, uplink netsim.Channel) core.ThreeTierEnv {
	return core.ThreeTierEnv{
		Mobile: env.Mobile,
		Edge:   env.Cloud.Scaled(0.25),
		Cloud:  env.Cloud,
		Uplink: uplink,
		Backhaul: netsim.Channel{
			Name:       "wan-backhaul",
			UplinkMbps: uplink.UplinkMbps / 2,
			SetupMs:    15,
		},
		DType: env.DType,
	}
}

// ThreeTier runs the comparison over the paper models and preset
// uplinks.
func ThreeTier(env Env) ([]ThreeTierRow, error) {
	var rows []ThreeTierRow
	for _, model := range models.PaperModels() {
		g := mustModel(model)
		for _, ch := range netsim.Presets() {
			tenv := ThreeTierEnvDefault(env, ch)
			three, err := core.JPSThreeTier(g, tenv, env.NJobs)
			if err != nil {
				return nil, err
			}
			two, err := core.TwoTierAsThreeTier(g, tenv, env.NJobs)
			if err != nil {
				return nil, err
			}
			rows = append(rows, ThreeTierRow{
				Model:     model,
				Uplink:    ch.Name,
				TwoTierMs: two.AvgMs(),
				ThreeMs:   three.AvgMs(),
				GainPct:   pct(two.AvgMs(), three.AvgMs()),
			})
		}
	}
	return rows, nil
}

// ThreeTierTable renders the rows.
func ThreeTierTable(rows []ThreeTierRow) *report.Table {
	t := report.NewTable("Extension — three-tier mobile→edge→cloud vs two-tier (avg ms/job)",
		"Model", "Uplink", "Two-tier", "Three-tier", "Gain %")
	for _, r := range rows {
		t.AddRow(displayName(r.Model), r.Uplink, r.TwoTierMs, r.ThreeMs, r.GainPct)
	}
	return t
}
