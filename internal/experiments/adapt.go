package experiments

import (
	"fmt"
	"net"
	"time"

	"dnnjps/internal/core"
	"dnnjps/internal/dag"
	"dnnjps/internal/engine"
	"dnnjps/internal/estimator"
	"dnnjps/internal/netsim"
	"dnnjps/internal/nn"
	"dnnjps/internal/profile"
	"dnnjps/internal/report"
	"dnnjps/internal/runtime"
	"dnnjps/internal/tensor"
)

// The adapt figure runs one scripted degradation — the uplink steps
// from 12 to 2 Mb/s at 200 ms channel time — under four re-planning
// policies and compares their measured makespans:
//
//   - static:     the original 12 Mb/s plan runs to completion.
//   - threshold:  the legacy one-shot Client.LinkHealth check. Its
//     cumulative window dilutes the late step (early fast samples keep
//     the ratio up), so it fires late and prices the replan at the
//     blended ~5 Mb/s average — which keeps the fat pre-step cut.
//   - continuous: the estimator path. The CUSUM detector snaps the
//     estimate to the degraded rate within a sample or two and the
//     replan prices at 2 Mb/s, switching to the cut that regime wants.
//   - oracle:     knows the schedule a priori; jobs that fit before the
//     step keep the 12 Mb/s cut, the rest start on the 2 Mb/s cut.
//
// AdaptModel is shaped so the policies genuinely disagree: a cheap conv
// boundary (36 KB) is optimal from 12 down to ~3.8 Mb/s, and a wide
// Dense layer whose mobile cost dominates below that makes its small
// output (8.4 KB) the 2 Mb/s cut. Moving that Dense from cloud to
// mobile is what the correct replan buys: less upload per job for the
// same total compute, so the continuous row wins on any host speed.

// AdaptStepAfterMs and AdaptStepToMbps script the figure's step-down
// (channel time); AdaptChannel is its nominal uplink. Exported so the
// regression corpus test replans on exactly the figure's channel.
const (
	AdaptStepAfterMs = 200
	AdaptStepToMbps  = 2
)

// AdaptChannel returns the figure's nominal 12 Mb/s channel.
func AdaptChannel() netsim.Channel {
	return netsim.Channel{Name: "adapt-wifi", UplinkMbps: 12}
}

// AdaptCurve profiles the adapt model on the adapt channel — the exact
// curve the figure plans on, exported so the regression corpus can
// recompute the golden cuts from first principles.
func AdaptCurve(env Env) *profile.Curve {
	return env.curveFor(AdaptModel(), AdaptChannel())
}

// AdaptModel builds the synthetic chain the adapt figure and the
// committed adaptive-replanning regression trace are pinned to.
func AdaptModel() *dag.Graph {
	g := dag.New("adaptnet")
	in := g.Add(&nn.Input{LayerName: "input", Shape: tensor.NewCHW(3, 48, 48)})
	c1 := g.Add(&nn.Conv2D{LayerName: "conv1", OutC: 16, KH: 3, KW: 3, Stride: 2, Pad: 1, Bias: true}, in)
	d1 := g.Add(&nn.Dense{LayerName: "wide", Out: 2100, Bias: true}, c1)
	d2 := g.Add(&nn.Dense{LayerName: "mid", Out: 3600, Bias: true}, d1)
	fc := g.Add(&nn.Dense{LayerName: "fc", Out: 10, Bias: true}, d2)
	g.Add(nn.NewSoftmax("softmax"), fc)
	if err := g.Finalize(); err != nil {
		panic(err) // static architecture; cannot fail
	}
	return g
}

// AdaptRow is one policy of the adapt figure.
type AdaptRow struct {
	Policy       string
	Jobs         int
	MakespanMs   float64
	Replans      int
	ChangePoints int
	EstMbps      float64 // final estimate (continuous only)
	Cuts         string  // cut histogram, e.g. "9@1 87@2"
}

// RuntimeAdapt executes the four policies and returns their rows plus
// the continuous run's recorded estimator trace (the regression corpus
// raw material). timeScale compresses channel time as elsewhere.
func RuntimeAdapt(env Env, n int, timeScale float64, seed int64) ([]*AdaptRow, *estimator.ReplayTrace, error) {
	g := AdaptModel()
	m := engine.Load(g, 7).WithKernel(env.Kernel)
	ch := AdaptChannel()
	curve := env.curveFor(g, ch)

	basePlan, err := core.JPS(curve, n)
	if err != nil {
		return nil, nil, err
	}
	oracle, err := oraclePlan(curve, ch, n)
	if err != nil {
		return nil, nil, err
	}

	units := profile.LineView(g)
	inShape := g.Node(units[0].Exit).OutShape
	inputs := make([]*tensor.Tensor, n)
	for i := range inputs {
		in := tensor.New(inShape)
		for j := range in.Data {
			in.Data[j] = float32((j+i*13)%29)/29 - 0.5
		}
		inputs[i] = in
	}

	policies := []struct {
		name string
		plan *core.Plan
		opts runtime.RunOptions
	}{
		{"static", basePlan, adaptRunOpts(runtime.RunOptions{})},
		{"threshold", basePlan, adaptRunOpts(runtime.RunOptions{
			ReplanFactor:      0.5,
			ReplanMinInterval: time.Hour, // the legacy one-shot behavior
		})},
		{"continuous", basePlan, adaptRunOpts(runtime.RunOptions{
			AdaptiveReplan:    true,
			EstimatorConfig:   estimator.Config{Record: true},
			ReplanMinInterval: 5 * time.Millisecond,
		})},
		{"oracle", oracle, adaptRunOpts(runtime.RunOptions{})},
	}

	srv := runtime.NewServer(m)
	defer srv.Close()
	var rows []*AdaptRow
	var trace *estimator.ReplayTrace
	for pi, pol := range policies {
		dial := adaptDialer(srv, ch, seed+int64(pi), timeScale)
		r := runtime.NewRunner(dial, m, ch, timeScale, pol.opts).WithCurve(curve)
		rep, err := r.RunPlan(pol.plan, inputs)
		if err != nil {
			return nil, nil, fmt.Errorf("experiments: adapt %s run: %w", pol.name, err)
		}
		if len(rep.Results) != n {
			return nil, nil, fmt.Errorf("experiments: adapt %s run: %d/%d results", pol.name, len(rep.Results), n)
		}
		rows = append(rows, &AdaptRow{
			Policy:       pol.name,
			Jobs:         n,
			MakespanMs:   rep.MakespanMs,
			Replans:      rep.Replans,
			ChangePoints: rep.ChangePoints,
			EstMbps:      rep.EstimatedMbps,
			Cuts:         cutHistogram(rep),
		})
		if pol.name == "continuous" {
			trace = buildAdaptTrace(curve, ch, rep.ReplaySamples)
		}
	}
	return rows, trace, nil
}

// adaptRunOpts fills the shared run options of every adapt policy.
func adaptRunOpts(o runtime.RunOptions) runtime.RunOptions {
	o.JobTimeout = 30 * time.Second
	o.BackoffBase = 2 * time.Millisecond
	o.BackoffMax = 20 * time.Millisecond
	o.Window = 2
	return o
}

// adaptDialer dials the shared loopback server through the scripted
// step-down injector. The injector is told the client shaper's nominal
// rate so the scripted 2 Mb/s is the effective post-step rate on the
// wire, not a second pacing stage stacked under the shaper's.
func adaptDialer(srv *runtime.Server, ch netsim.Channel, seed int64, timeScale float64) func() (net.Conn, error) {
	return func() (net.Conn, error) {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		go func() {
			defer lis.Close()
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
			_ = srv.HandleConn(conn)
		}()
		conn, err := net.Dial("tcp", lis.Addr().String())
		if err != nil {
			return nil, err
		}
		return netsim.Inject(conn,
			netsim.FaultSpec{Degrade: netsim.StepDown(AdaptStepAfterMs, AdaptStepToMbps)},
			netsim.FaultSpec{}, seed, timeScale).WithNominal(ch), nil
	}
}

// oraclePlan builds the perfect-foresight schedule: the largest prefix
// of jobs the nominal-rate plan can push through the uplink before the
// step keeps that plan's cuts, and the remaining jobs are planned at
// the degraded rate from the start. The split point comes from the
// modeled two-stage schedule (serialized mobile stage feeding the
// serialized uplink), not from this host's wall clock — the oracle
// knows the degradation schedule, nothing else extra.
func oraclePlan(curve *profile.Curve, ch netsim.Channel, n int) (*core.Plan, error) {
	degraded := ch
	degraded.UplinkMbps = AdaptStepToMbps

	// lastUploadEnd is when plan p's final upload leaves the link under
	// the standard two-stage recursion.
	lastUploadEnd := func(p *core.Plan) float64 {
		var aDone, bDone float64
		for _, j := range p.Sequence {
			aDone += j.A
			if aDone > bDone {
				bDone = aDone
			}
			bDone += j.B
		}
		return bDone
	}
	k := 0
	for k < n {
		p, err := core.JPS(curve, k+1)
		if err != nil {
			return nil, err
		}
		if lastUploadEnd(p) > AdaptStepAfterMs {
			break
		}
		k++
	}

	out := &core.Plan{Method: "oracle", Curve: curve, Cuts: make([]int, n)}
	if k > 0 {
		pre, err := core.JPS(curve, k)
		if err != nil {
			return nil, err
		}
		copy(out.Cuts, pre.Cuts)
		out.Sequence = append(out.Sequence, pre.Sequence...)
	}
	if k < n {
		post, err := core.Replan(curve, degraded, n-k)
		if err != nil {
			return nil, err
		}
		for i, cut := range post.Cuts {
			out.Cuts[k+i] = cut
		}
		for _, j := range post.Sequence {
			j.ID += k
			out.Sequence = append(out.Sequence, j)
		}
	}
	return out, nil
}

// cutHistogram summarizes which cut each job finished at, e.g. "9@1 87@2".
func cutHistogram(rep *runtime.FTReport) string {
	counts := map[int]int{}
	maxCut := 0
	for _, res := range rep.Results {
		counts[res.Cut]++
		if res.Cut > maxCut {
			maxCut = res.Cut
		}
	}
	s := ""
	for c := 0; c <= maxCut; c++ {
		if counts[c] == 0 {
			continue
		}
		if s != "" {
			s += " "
		}
		s += fmt.Sprintf("%d@%d", counts[c], c)
	}
	return s
}

// AdaptTraceBatch is the remaining-batch size a replay point's Cut is
// computed over. A single-job plan degenerates (one job cannot mix
// cuts, so the fat and small cut tie near 2 Mb/s), while the dominant
// cut of a 16-job replan is the regime a mixed schedule actually
// shifts toward.
const AdaptTraceBatch = 16

// DominantCut returns the most frequent cut of a plan (lowest wins a
// tie) — the regime label the adapt trace's replay points carry.
func DominantCut(p *core.Plan) int {
	counts := map[int]int{}
	best, bestN := -1, 0
	for _, c := range p.Cuts {
		counts[c]++
		if counts[c] > bestN || (counts[c] == bestN && c < best) {
			best, bestN = c, counts[c]
		}
	}
	return best
}

// buildAdaptTrace packages the continuous run's recorded sample stream
// as the committed regression format: golden change points re-detected
// by a deterministic replay, each with the dominant cut a replan of an
// adaptTraceBatch-job remainder at its snapped estimate chooses on the
// figure's curve.
func buildAdaptTrace(curve *profile.Curve, ch netsim.Channel, samples []estimator.ReplaySample) *estimator.ReplayTrace {
	t := &estimator.ReplayTrace{
		Model:      curve.Model,
		UplinkMbps: ch.UplinkMbps,
		SetupMs:    ch.SetupMs,
		Scenario: fmt.Sprintf("scripted step-down %g->%g Mb/s at %d ms channel time (netsim.StepDown)",
			ch.UplinkMbps, float64(AdaptStepToMbps), AdaptStepAfterMs),
		Config:  estimator.DefaultConfig(),
		Samples: samples,
	}
	for _, cp := range t.Replay() {
		measured := ch
		measured.UplinkMbps = cp.ToMbps
		cut := -1
		if p, err := core.Replan(curve, measured, AdaptTraceBatch); err == nil {
			cut = DominantCut(p)
		}
		t.Points = append(t.Points, estimator.ReplayPoint{
			Sample:    cp.Sample,
			Direction: cp.Direction.String(),
			Mbps:      cp.ToMbps,
			Cut:       cut,
		})
	}
	return t
}

// RuntimeAdaptTable renders the four-policy comparison.
func RuntimeAdaptTable(rows []*AdaptRow) *report.Table {
	t := report.NewTable(
		"Adaptive replanning — makespan under a scripted 12->2 Mb/s step at 200 ms",
		"Policy", "Jobs", "Makespan(ms)", "vs static", "vs oracle", "Replans", "ChangePts", "Est(Mb/s)", "Cuts")
	var static, oracle float64
	for _, r := range rows {
		switch r.Policy {
		case "static":
			static = r.MakespanMs
		case "oracle":
			oracle = r.MakespanMs
		}
	}
	rel := func(base, v float64) string {
		if base <= 0 {
			return "-"
		}
		return fmt.Sprintf("%.2fx", v/base)
	}
	for _, r := range rows {
		est := "-"
		if r.EstMbps > 0 {
			est = fmt.Sprintf("%.2f", r.EstMbps)
		}
		t.AddRow(r.Policy, r.Jobs, fmtMs(r.MakespanMs),
			rel(static, r.MakespanMs), rel(oracle, r.MakespanMs),
			r.Replans, r.ChangePoints, est, r.Cuts)
	}
	return t
}
