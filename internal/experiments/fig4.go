package experiments

import (
	"dnnjps/internal/netsim"
	"dnnjps/internal/profile"
	"dnnjps/internal/report"
)

// Fig4Row is one block of the AlexNet per-layer profile: mobile
// compute, upload and cloud compute time of each block (Fig. 4 plots
// these as grouped bars over 8 "layers").
type Fig4Row struct {
	Layer    int
	Block    string
	MobileMs float64
	CommMs   float64
	CloudMs  float64
	Bytes    int
}

// Fig4 profiles a model block-by-block on a channel. The paper's
// figure uses AlexNet; any zoo model works.
func Fig4(env Env, model string, ch netsim.Channel) []Fig4Row {
	g := mustModel(model)
	stats := profile.BlockProfile(g, env.Mobile, env.Cloud, ch, env.DType)
	rows := make([]Fig4Row, 0, len(stats))
	layer := 0
	for _, s := range stats {
		if s.Label == "input" {
			continue // the input pseudo-block costs nothing
		}
		layer++
		rows = append(rows, Fig4Row{
			Layer:    layer,
			Block:    s.Label,
			MobileMs: s.MobileMs,
			CommMs:   s.CommMs,
			CloudMs:  s.CloudMs,
			Bytes:    s.Bytes,
		})
	}
	return rows
}

// Fig4Table renders the rows.
func Fig4Table(model string, ch netsim.Channel, rows []Fig4Row) *report.Table {
	t := report.NewTable(
		"Fig. 4 — per-layer time consumption of "+displayName(model)+" ("+ch.Name+")",
		"Layer", "Block", "MobileComp(ms)", "Comm(ms)", "CloudComp(ms)", "CutBytes")
	for _, r := range rows {
		t.AddRow(r.Layer, r.Block, r.MobileMs, r.CommMs, r.CloudMs, r.Bytes)
	}
	return t
}
