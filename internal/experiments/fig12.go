package experiments

import (
	"time"

	"dnnjps/internal/core"
	"dnnjps/internal/models"
	"dnnjps/internal/netsim"
	"dnnjps/internal/report"
)

// Fig12Cell is one (model, channel) cell of the latency grid: the
// average completion time (makespan / n) of the four schemes.
type Fig12Cell struct {
	Model   string
	Channel string
	COMs    float64
	LOMs    float64
	POMs    float64
	JPSMs   float64
	// COFeasible is false when the cloud-only upload alone exceeds 4s,
	// the paper's cutoff for omitting CO bars at 3G.
	COFeasible bool
}

// Fig12 computes the grid for the paper's four models and three
// channels with env.NJobs jobs.
func Fig12(env Env) ([]Fig12Cell, error) {
	var cells []Fig12Cell
	for _, model := range models.PaperModels() {
		g := mustModel(model)
		for _, ch := range netsim.Presets() {
			curve := env.curveFor(g, ch)
			co, err := core.CO(curve, env.NJobs)
			if err != nil {
				return nil, err
			}
			lo, err := core.LO(curve, env.NJobs)
			if err != nil {
				return nil, err
			}
			po, err := core.PO(curve, env.NJobs)
			if err != nil {
				return nil, err
			}
			jpsAvg, err := env.jpsAvgMs(g, ch, env.NJobs)
			if err != nil {
				return nil, err
			}
			cells = append(cells, Fig12Cell{
				Model:      model,
				Channel:    ch.Name,
				COMs:       co.AvgMs(),
				LOMs:       lo.AvgMs(),
				POMs:       po.AvgMs(),
				JPSMs:      jpsAvg,
				COFeasible: co.AvgMs() <= 4000,
			})
		}
	}
	return cells, nil
}

// Fig12Table renders the grid as one row per (model, channel).
func Fig12Table(cells []Fig12Cell) *report.Table {
	t := report.NewTable("Fig. 12 — average completion time (ms) of CO/LO/PO/JPS",
		"Model", "Channel", "CO", "LO", "PO", "JPS")
	for _, c := range cells {
		co := fmtMs(c.COMs)
		if !c.COFeasible {
			co += " (omitted: >4s)"
		}
		t.AddRow(displayName(c.Model), c.Channel, co, fmtMs(c.LOMs), fmtMs(c.POMs), fmtMs(c.JPSMs))
	}
	return t
}

// Table1Row is the latency reduction versus LO (%) of PO and JPS at
// one channel — the paper's Table 1.
type Table1Row struct {
	Model   string
	Channel string
	POPct   float64
	JPSPct  float64
}

// Table1 derives the reduction table from Fig. 12 cells.
func Table1(cells []Fig12Cell) []Table1Row {
	rows := make([]Table1Row, 0, len(cells))
	for _, c := range cells {
		rows = append(rows, Table1Row{
			Model:   c.Model,
			Channel: c.Channel,
			POPct:   pct(c.LOMs, c.POMs),
			JPSPct:  pct(c.LOMs, c.JPSMs),
		})
	}
	return rows
}

// Table1Table renders the reduction table in the paper's layout: one
// row per model, PO/JPS columns per channel.
func Table1Table(rows []Table1Row) *report.Table {
	t := report.NewTable("Table 1 — latency reduction ratio compared with LO (%)",
		"Model", "3G PO", "3G JPS", "4G PO", "4G JPS", "Wi-Fi PO", "Wi-Fi JPS")
	byModel := map[string]map[string]Table1Row{}
	var order []string
	for _, r := range rows {
		if byModel[r.Model] == nil {
			byModel[r.Model] = map[string]Table1Row{}
			order = append(order, r.Model)
		}
		byModel[r.Model][r.Channel] = r
	}
	for _, m := range order {
		g := byModel[m]
		t.AddRow(displayName(m),
			g["3G"].POPct, g["3G"].JPSPct,
			g["4G"].POPct, g["4G"].JPSPct,
			g["Wi-Fi"].POPct, g["Wi-Fi"].JPSPct)
	}
	return t
}

// OverheadRow is one model's planning cost (Fig. 12d): the wall time
// JPS spends profiling lookups + binary search + Johnson scheduling,
// against the makespan it schedules.
type OverheadRow struct {
	Model      string
	PlanMs     float64
	MakespanMs float64
	// OverheadRatio = (makespan + planning) / makespan — Fig. 12d's
	// "overhead is negligible" claim is this ratio staying ~1.0.
	OverheadRatio float64
}

// Fig12Overhead measures planning wall time per model at the given
// channel (curves are prebuilt lookup tables, as in the paper, so the
// measured cost is the planner itself).
func Fig12Overhead(env Env, ch netsim.Channel) ([]OverheadRow, error) {
	var rows []OverheadRow
	for _, model := range models.PaperModels() {
		g := mustModel(model)
		curve := env.curveFor(g, ch) // lookup table, built ahead of time
		const reps = 50
		start := time.Now()
		var plan *core.Plan
		var err error
		for i := 0; i < reps; i++ {
			plan, err = core.JPS(curve, env.NJobs)
			if err != nil {
				return nil, err
			}
		}
		planMs := float64(time.Since(start).Microseconds()) / 1000 / reps
		rows = append(rows, OverheadRow{
			Model:         model,
			PlanMs:        planMs,
			MakespanMs:    plan.Makespan,
			OverheadRatio: (plan.Makespan + planMs) / plan.Makespan,
		})
	}
	return rows, nil
}

// Fig12OverheadTable renders the overhead rows.
func Fig12OverheadTable(rows []OverheadRow) *report.Table {
	t := report.NewTable("Fig. 12(d) — JPS planning overhead",
		"Model", "Plan(ms)", "Makespan(ms)", "Overhead ratio")
	for _, r := range rows {
		t.AddRow(displayName(r.Model), r.PlanMs, r.MakespanMs, r.OverheadRatio)
	}
	return t
}
