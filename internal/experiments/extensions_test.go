package experiments

import (
	"strings"
	"testing"

	"dnnjps/internal/netsim"
)

func TestHeteroWorkload(t *testing.T) {
	rows, err := HeteroWorkload(env())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		// Joint planning never loses to any isolated baseline.
		for name, base := range map[string]float64{"PO": r.POMs, "LO": r.LOMs, "CO": r.COMs} {
			if r.JPSMs > base*1.02 {
				t.Errorf("%s: JPS-hetero %.1f worse than %s %.1f", r.Channel, r.JPSMs, name, base)
			}
		}
	}
	// And strictly gains somewhere.
	won := false
	for _, r := range rows {
		if r.JPSMs < r.POMs*0.99 {
			won = true
		}
	}
	if !won {
		t.Error("hetero JPS shows no gain over PO at any channel")
	}
	if !strings.Contains(HeteroTable(rows).String(), "JPS-hetero") {
		t.Error("table missing header")
	}
}

func TestStreamExperiment(t *testing.T) {
	e := env()
	rows, err := Stream(e, "alexnet", netsim.FourG, []float64{0.5, 2, 4, 8}, 80)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	// Sojourn times grow with frame rate; once unsustainable, max
	// sojourn blows past the sustainable points.
	for i := 1; i < len(rows); i++ {
		if rows[i].P50SojournMs+1e-9 < rows[i-1].P50SojournMs {
			t.Errorf("p50 sojourn should not fall as FPS rises: %+v -> %+v", rows[i-1], rows[i])
		}
	}
	var sustMax, unsustMax float64
	for _, r := range rows {
		if r.Sustainable && r.MaxSojournMs > sustMax {
			sustMax = r.MaxSojournMs
		}
		if !r.Sustainable && r.MaxSojournMs > unsustMax {
			unsustMax = r.MaxSojournMs
		}
	}
	if sustMax == 0 || unsustMax == 0 {
		t.Fatalf("sweep must include sustainable and unsustainable rates: %+v", rows)
	}
	if unsustMax < 2*sustMax {
		t.Errorf("overload should clearly queue up: sustainable max %.1f, overload max %.1f",
			sustMax, unsustMax)
	}
	if _, err := Stream(e, "alexnet", netsim.FourG, []float64{-1}, 10); err == nil {
		t.Error("negative fps must error")
	}
}

func TestAblationDTypes(t *testing.T) {
	rows, err := AblationDTypes(env())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("got %d rows", len(rows))
	}
	byModel := map[string][]DTypeRow{}
	for _, r := range rows {
		byModel[r.Model] = append(byModel[r.Model], r)
	}
	for model, rs := range byModel {
		// Narrower wire formats can only help (g shrinks pointwise).
		if rs[1].JPSMs > rs[0].JPSMs*1.001 || rs[2].JPSMs > rs[1].JPSMs*1.001 {
			t.Errorf("%s: quantization should monotonically help: %+v", model, rs)
		}
		// float32 row is the baseline with shift 0; narrower formats
		// never push the crossing later.
		if rs[0].CutShift != 0 {
			t.Errorf("%s: baseline shift = %d", model, rs[0].CutShift)
		}
		for _, r := range rs[1:] {
			if r.CutShift > 0 {
				t.Errorf("%s/%s: crossing moved later (%d) with a smaller wire format",
					model, r.DType, r.CutShift)
			}
		}
	}
	if !strings.Contains(AblationDTypesTable(rows).String(), "float16") {
		t.Error("table missing dtype rows")
	}
}

func TestMedian(t *testing.T) {
	if median(nil) != 0 {
		t.Error("empty median must be 0")
	}
	if m := median([]float64{5, 1, 3}); m != 3 {
		t.Errorf("median = %g, want 3", m)
	}
}
