package experiments

import (
	"fmt"
	"io"
	"net"
	"time"

	"dnnjps/internal/core"
	"dnnjps/internal/engine"
	"dnnjps/internal/netsim"
	"dnnjps/internal/obs"
	"dnnjps/internal/profile"
	"dnnjps/internal/report"
	"dnnjps/internal/runtime"
	"dnnjps/internal/sim"
	"dnnjps/internal/tensor"
)

// TraceResult holds one instrumented live run bridged into Gantt form
// next to its analytic prediction: Measured reshapes the recorded
// spans (internal/obs) into channel-scale busy intervals, Predicted
// replays the same per-job durations (measured device and cloud
// compute, channel-model upload) through the discrete-event simulator
// — the Prop. 4.1 pipeline the plan was optimized for. Agreement
// between the two is the closure argument: the runtime executes the
// schedule the theory priced.
type TraceResult struct {
	Model     string
	Jobs      int
	TimeScale float64
	// Tracer keeps the raw spans for export (Chrome trace, JSON).
	Tracer *obs.Tracer
	// Measured and Predicted are directly comparable sim.Results.
	Measured  *sim.Result
	Predicted *sim.Result
}

// RuntimeTrace executes a JPS plan on the live runtime over loopback
// TCP with tracing attached to both ends (one tracer, one clock), then
// bridges the recorded spans into the simulator's Gantt form alongside
// the predicted timeline.
func RuntimeTrace(env Env, model string, ch netsim.Channel, n int, timeScale float64) (*TraceResult, error) {
	g := mustModel(model)
	const seed = 42
	m := engine.Load(g, seed).WithKernel(env.Kernel)
	plan, err := core.JPS(env.curveFor(g, ch), n)
	if err != nil {
		return nil, err
	}
	units := profile.LineView(g)
	inputs := make([]*tensor.Tensor, n)
	inShape := g.Node(units[0].Exit).OutShape
	for i := range inputs {
		in := tensor.New(inShape)
		for j := range in.Data {
			in.Data[j] = float32((j+i*13)%29)/29 - 0.5
		}
		inputs[i] = in
	}

	tr := obs.NewTracer(0)
	o := runtime.NewObs(tr, obs.NewMetrics())

	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := runtime.NewServer(m).WithObs(o)
	go func() {
		defer lis.Close()
		conn, err := lis.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		_ = srv.HandleConn(conn)
		srv.Close()
	}()
	conn, err := net.Dial("tcp", lis.Addr().String())
	if err != nil {
		return nil, err
	}
	cl := runtime.NewClient(conn, m, ch, timeScale).WithObs(o)
	rep, err := cl.RunPlan(plan, inputs)
	if err != nil {
		conn.Close()
		return nil, err
	}

	// Remote jobs each leave one upload span; the writer records it
	// just after the flush that precedes the reply, so give the
	// bookkeeping a moment to settle before snapshotting.
	remote := 0
	for _, cut := range plan.Cuts {
		if cut < len(units)-1 {
			remote++
		}
	}
	stages := sim.RuntimeStages()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if len(sim.FromTrace(tr.Spans(), stages, timeScale).Gantt[sim.ResUplink]) >= remote {
			break
		}
		time.Sleep(time.Millisecond)
	}
	conn.Close()
	measured := sim.FromTrace(tr.Spans(), stages, timeScale)

	// Predicted timeline: measured f and cloud, channel-model g, in
	// schedule order — exactly what RuntimePipeline feeds Prop. 4.1.
	mobile := make(map[int]float64, n)
	cloud := make(map[int]float64, n)
	for _, r := range rep.Results {
		mobile[r.JobID] = r.MobileMs
		cloud[r.JobID] = r.CloudMs
	}
	f := make([]float64, n)
	gms := make([]float64, n)
	cms := make([]float64, n)
	for pos, j := range plan.Sequence {
		cut := plan.Cuts[j.ID]
		var up float64
		if cut < len(units)-1 {
			shape := g.Node(units[cut].Exit).OutShape
			up = timeScale * ch.TxMs(runtime.RequestWireBytes(shape))
		}
		f[pos], gms[pos], cms[pos] = mobile[j.ID], up, cloud[j.ID]
	}
	// The bridge reports channel-scale ms; the replay durations are
	// real ms, so rescale them onto the same axis.
	if timeScale > 0 && timeScale != 1 {
		for i := range f {
			f[i] /= timeScale
			gms[i] /= timeScale
			cms[i] /= timeScale
		}
	}
	predicted, err := sim.Run(sim.FromDurations(f, gms, cms))
	if err != nil {
		return nil, err
	}

	return &TraceResult{
		Model:     model,
		Jobs:      n,
		TimeScale: timeScale,
		Tracer:    tr,
		Measured:  measured,
		Predicted: predicted,
	}, nil
}

// traceLanes converts a sim Gantt into report lanes labeled by job.
func traceLanes(res *sim.Result) map[string][]report.GanttBar {
	lanes := make(map[string][]report.GanttBar, len(res.Gantt))
	for resName, ivs := range res.Gantt {
		bars := make([]report.GanttBar, 0, len(ivs))
		for _, iv := range ivs {
			bars = append(bars, report.GanttBar{
				Label: fmt.Sprintf("j%d", iv.JobID),
				Start: iv.Start,
				End:   iv.End,
			})
		}
		lanes[resName] = bars
	}
	return lanes
}

// TraceGantt renders the measured and predicted stage timelines as
// ASCII Gantt charts on a shared resource order, for eyeballing where
// the live pipeline and the theory diverge.
func TraceGantt(w io.Writer, r *TraceResult, width int) error {
	order := []string{sim.ResMobile, sim.ResUplink, sim.ResCloud}
	if _, err := fmt.Fprintf(w, "Measured trace — %s, %d jobs (makespan %.2f ms)\n",
		displayName(r.Model), r.Jobs, r.Measured.Makespan); err != nil {
		return err
	}
	if err := report.Gantt(w, traceLanes(r.Measured), order, width); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "\nPredicted (Prop. 4.1 pipeline) — makespan %.2f ms\n",
		r.Predicted.Makespan); err != nil {
		return err
	}
	return report.Gantt(w, traceLanes(r.Predicted), order, width)
}

// TraceTable summarizes per-resource agreement between the measured
// and predicted timelines.
func TraceTable(r *TraceResult) *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Trace vs theory — %s, %d jobs (measured makespan %s, predicted %s)",
			displayName(r.Model), r.Jobs, fmtMs(r.Measured.Makespan), fmtMs(r.Predicted.Makespan)),
		"Resource", "Busy meas(ms)", "Busy pred(ms)", "Util meas", "Util pred", "Delta")
	for _, resName := range []string{sim.ResMobile, sim.ResUplink, sim.ResCloud} {
		mb, pb := r.Measured.BusyMs[resName], r.Predicted.BusyMs[resName]
		delta := "n/a"
		if pb > 0 {
			delta = fmt.Sprintf("%+.1f%%", (mb-pb)/pb*100)
		}
		t.AddRow(resName, fmtMs(mb), fmtMs(pb),
			fmt.Sprintf("%.2f", r.Measured.Utilization(resName)),
			fmt.Sprintf("%.2f", r.Predicted.Utilization(resName)), delta)
	}
	return t
}
