package experiments

import (
	"errors"
	"time"

	"dnnjps/internal/core"
	"dnnjps/internal/netsim"
	"dnnjps/internal/profile"
	"dnnjps/internal/report"
)

// Fig11Row compares JPS against the brute-force optimum for one job
// count on AlexNet or the synthetic AlexNet′ (whose communication
// curve is resampled from the fitted exponential — §6.3).
type Fig11Row struct {
	Model string
	N     int
	// JPSMs is the binary-search planner's makespan; JPSPlusMs is the
	// globalized two-type search (see core.JPSPlus).
	JPSMs     float64
	JPSPlusMs float64
	BFMs      float64
	// Exact reports whether the BF column is the exhaustive multiset
	// optimum (small n) or the two-point optimum (large n, where full
	// enumeration is infeasible — the regime the paper's BF bars stop).
	Exact   bool
	Optimal bool // JPSPlus matched BF within float tolerance
	JPSTime time.Duration
	BFTime  time.Duration
}

// Fig11 runs the comparison for the paper's job counts n = 2^1, 2^3,
// 2^7, 2^9 on both AlexNet and AlexNet′ at the given channel.
func Fig11(env Env, ch netsim.Channel) ([]Fig11Row, error) {
	curve := env.curveFor(mustModel("alexnet"), ch)
	syn, err := curve.Synthetic()
	if err != nil {
		return nil, err
	}
	var rows []Fig11Row
	for _, c := range []*profile.Curve{curve, syn} {
		for _, n := range []int{2, 8, 128, 512} {
			row, err := fig11Row(c, n)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

func fig11Row(c *profile.Curve, n int) (Fig11Row, error) {
	row := Fig11Row{Model: c.Model, N: n}
	start := time.Now()
	jps, err := core.JPS(c, n)
	if err != nil {
		return row, err
	}
	row.JPSTime = time.Since(start)
	row.JPSMs = jps.Makespan

	plus, err := core.JPSPlus(c, n)
	if err != nil {
		return row, err
	}
	row.JPSPlusMs = plus.Makespan

	start = time.Now()
	bf, err := core.BruteForce(c, n, 200_000)
	switch {
	case err == nil:
		row.Exact = true
	case errors.Is(err, core.ErrSearchSpaceTooLarge):
		if bf, err = core.BruteForceTwoPoint(c, n); err != nil {
			return row, err
		}
	default:
		return row, err
	}
	row.BFTime = time.Since(start)
	row.BFMs = bf.Makespan
	row.Optimal = row.JPSPlusMs <= row.BFMs*(1+1e-9)
	return row, nil
}

// Fig11Table renders the rows.
func Fig11Table(rows []Fig11Row) *report.Table {
	t := report.NewTable("Fig. 11 — JPS vs brute force (makespan, ms)",
		"Model", "N", "JPS(ms)", "JPS+(ms)", "BF(ms)", "BFKind", "JPS+=BF", "JPSPlanTime", "BFPlanTime")
	for _, r := range rows {
		kind := "two-point"
		if r.Exact {
			kind = "exhaustive"
		}
		t.AddRow(r.Model, r.N, r.JPSMs, r.JPSPlusMs, r.BFMs, kind, r.Optimal,
			r.JPSTime.String(), r.BFTime.String())
	}
	return t
}
