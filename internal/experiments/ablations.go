package experiments

import (
	"math/rand"
	"time"

	"dnnjps/internal/core"
	"dnnjps/internal/flowshop"
	"dnnjps/internal/models"
	"dnnjps/internal/netsim"
	"dnnjps/internal/report"
)

// SchedulingAblationRow compares sequencing policies for a fixed JPS
// partition: Johnson (optimal), FIFO (job order as generated), and the
// adversarial worst order — quantifying how much the scheduling half
// of the joint optimization contributes.
type SchedulingAblationRow struct {
	Model     string
	Channel   string
	JohnsonMs float64
	FIFOMs    float64
	WorstMs   float64
}

// AblationScheduling runs the sequencing comparison with a small n so
// the exhaustive worst case stays tractable.
func AblationScheduling(env Env, n int) ([]SchedulingAblationRow, error) {
	if n <= 0 || n > 9 {
		n = 7
	}
	var rows []SchedulingAblationRow
	for _, model := range models.PaperModels() {
		g := mustModel(model)
		for _, ch := range netsim.Presets() {
			curve := env.curveFor(g, ch)
			plan, err := core.JPS(curve, n)
			if err != nil {
				return nil, err
			}
			jobs := core.JobsForCuts(curve, plan.Cuts)
			// FIFO models an arbitrary arrival order (the planner
			// emits jobs comm-heavy-first, which would make FIFO
			// trivially equal Johnson); shuffle deterministically.
			arrival := append([]flowshop.Job(nil), jobs...)
			rng := rand.New(rand.NewSource(99))
			rng.Shuffle(len(arrival), func(i, j int) { arrival[i], arrival[j] = arrival[j], arrival[i] })
			_, worst := flowshop.WorstPermutation(jobs)
			rows = append(rows, SchedulingAblationRow{
				Model:     model,
				Channel:   ch.Name,
				JohnsonMs: flowshop.Makespan(flowshop.Johnson(jobs)),
				FIFOMs:    flowshop.Makespan(arrival),
				WorstMs:   worst,
			})
		}
	}
	return rows, nil
}

// AblationSchedulingTable renders the rows.
func AblationSchedulingTable(rows []SchedulingAblationRow) *report.Table {
	t := report.NewTable("Ablation — sequencing policy for fixed JPS partitions (makespan, ms)",
		"Model", "Channel", "Johnson", "FIFO", "Worst")
	for _, r := range rows {
		t.AddRow(displayName(r.Model), r.Channel, r.JohnsonMs, r.FIFOMs, r.WorstMs)
	}
	return t
}

// MixAblationRow compares the split strategies over the same two
// candidate layers: the paper's floored integer ratio, the balanced
// split JPS uses, the exhaustive best mix, and the two-point optimum
// over all layer pairs.
type MixAblationRow struct {
	Model        string
	Channel      string
	PaperRatioMs float64
	BalancedMs   float64
	BestMixMs    float64
	TwoPointMs   float64
}

// AblationMixStrategies runs the mix comparison at env.NJobs.
func AblationMixStrategies(env Env) ([]MixAblationRow, error) {
	var rows []MixAblationRow
	for _, model := range models.PaperModels() {
		g := mustModel(model)
		for _, ch := range netsim.Presets() {
			curve := env.curveFor(g, ch)
			paper, err := core.JPSPaperRatio(curve, env.NJobs)
			if err != nil {
				return nil, err
			}
			bal, err := core.JPS(curve, env.NJobs)
			if err != nil {
				return nil, err
			}
			best, err := core.JPSBestMix(curve, env.NJobs)
			if err != nil {
				return nil, err
			}
			two, err := core.BruteForceTwoPoint(curve, env.NJobs)
			if err != nil {
				return nil, err
			}
			rows = append(rows, MixAblationRow{
				Model:        model,
				Channel:      ch.Name,
				PaperRatioMs: paper.Makespan,
				BalancedMs:   bal.Makespan,
				BestMixMs:    best.Makespan,
				TwoPointMs:   two.Makespan,
			})
		}
	}
	return rows, nil
}

// AblationMixTable renders the rows.
func AblationMixTable(rows []MixAblationRow) *report.Table {
	t := report.NewTable("Ablation — two-point mix strategies (makespan, ms)",
		"Model", "Channel", "PaperRatio", "Balanced(JPS)", "BestMix", "TwoPointOpt")
	for _, r := range rows {
		t.AddRow(displayName(r.Model), r.Channel, r.PaperRatioMs, r.BalancedMs, r.BestMixMs, r.TwoPointMs)
	}
	return t
}

// VirtualBlockAblationRow quantifies virtual-block clustering (§3.2):
// candidate cut counts and two-point-optimal makespans with and
// without the Pareto restriction, plus the planning time saved.
type VirtualBlockAblationRow struct {
	Model          string
	Channel        string
	RawCuts        int
	ParetoCuts     int
	RawMakespanMs  float64 // two-point optimum over ALL positions
	ParetoMspanMs  float64 // two-point optimum over Pareto positions
	RawPlanTime    time.Duration
	ParetoPlanTime time.Duration
}

// AblationVirtualBlocks verifies the §3.2 claim that dominated cuts
// can be dropped without losing the optimum: the two-point optimum on
// the full curve must match the one on the Pareto-restricted curve.
func AblationVirtualBlocks(env Env) ([]VirtualBlockAblationRow, error) {
	var rows []VirtualBlockAblationRow
	n := env.NJobs
	for _, model := range models.PaperModels() {
		g := mustModel(model)
		for _, ch := range netsim.Presets() {
			curve := env.curveFor(g, ch)
			pareto := curve.ParetoCuts()

			all := make([]int, curve.Len())
			for i := range all {
				all[i] = i
			}

			start := time.Now()
			raw, err := core.TwoPointSearch(curve, n, all)
			if err != nil {
				return nil, err
			}
			rawTime := time.Since(start)

			start = time.Now()
			par, err := core.TwoPointSearch(curve, n, pareto)
			if err != nil {
				return nil, err
			}
			parTime := time.Since(start)

			rows = append(rows, VirtualBlockAblationRow{
				Model:          model,
				Channel:        ch.Name,
				RawCuts:        curve.Len(),
				ParetoCuts:     len(pareto),
				RawMakespanMs:  raw.Makespan,
				ParetoMspanMs:  par.Makespan,
				RawPlanTime:    rawTime,
				ParetoPlanTime: parTime,
			})
		}
	}
	return rows, nil
}

// AblationVirtualBlocksTable renders the rows.
func AblationVirtualBlocksTable(rows []VirtualBlockAblationRow) *report.Table {
	t := report.NewTable("Ablation — virtual-block clustering (Pareto cut restriction)",
		"Model", "Channel", "AllCuts", "ParetoCuts", "Opt(all)", "Opt(pareto)", "Plan(all)", "Plan(pareto)")
	for _, r := range rows {
		t.AddRow(displayName(r.Model), r.Channel, r.RawCuts, r.ParetoCuts,
			r.RawMakespanMs, r.ParetoMspanMs, r.RawPlanTime.String(), r.ParetoPlanTime.String())
	}
	return t
}
