package experiments

import (
	"fmt"
	"net"
	"time"

	"dnnjps/internal/core"
	"dnnjps/internal/engine"
	"dnnjps/internal/flowshop"
	"dnnjps/internal/netsim"
	"dnnjps/internal/profile"
	"dnnjps/internal/report"
	"dnnjps/internal/runtime"
	"dnnjps/internal/sim"
	"dnnjps/internal/tensor"
)

// RuntimeResult compares one live run of the offloading runtime
// against the paper's analytic makespan models: the same JPS plan is
// executed pipelined (full-duplex writer + reply demultiplexer) and
// synchronously (per-job round trips), then replayed through the
// discrete-event simulator and the Prop. 4.1 closed form using the
// measured per-job timings.
type RuntimeResult struct {
	Model     string
	Jobs      int
	TimeScale float64
	// PipelinedMs is the measured makespan of the full-duplex run.
	PipelinedMs float64
	// SyncMs is the measured makespan of the synchronous baseline.
	SyncMs float64
	// FormulaMs is Prop. 4.1's f(x_1) + max(Σf, Σg) + g(x_n) with
	// measured mobile times and channel-model upload times.
	FormulaMs float64
	// SimMs replays the measured durations through the event simulator.
	SimMs float64
}

// Speedup is the pipelining gain over the synchronous baseline.
func (r *RuntimeResult) Speedup() float64 {
	if r.PipelinedMs <= 0 {
		return 0
	}
	return r.SyncMs / r.PipelinedMs
}

// RuntimePipeline executes a JPS plan on the live runtime over
// loopback TCP: the client and the server run in-process with real
// engine compute, the channel is simulated at timeScale. Unlike the
// planning experiments, which cost out both devices analytically, the
// live run computes prefix and suffix at this host's speed — so the
// result validates pipeline structure (overlap, ordering), not
// absolute device timings.
func RuntimePipeline(env Env, model string, ch netsim.Channel, n int, timeScale float64) (*RuntimeResult, error) {
	g := mustModel(model)
	const seed = 42
	m := engine.Load(g, seed).WithKernel(env.Kernel)
	plan, err := core.JPS(env.curveFor(g, ch), n)
	if err != nil {
		return nil, err
	}
	units := profile.LineView(g)
	inputs := make([]*tensor.Tensor, n)
	inShape := g.Node(units[0].Exit).OutShape
	for i := range inputs {
		in := tensor.New(inShape)
		for j := range in.Data {
			in.Data[j] = float32((j+i*13)%29)/29 - 0.5
		}
		inputs[i] = in
	}

	dial := func() (net.Conn, error) {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		srv := runtime.NewServer(m)
		go func() {
			defer lis.Close()
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
			_ = srv.HandleConn(conn)
			srv.Close()
		}()
		return net.Dial("tcp", lis.Addr().String())
	}

	// Pipelined run.
	conn, err := dial()
	if err != nil {
		return nil, err
	}
	cl := runtime.NewClient(conn, m, ch, timeScale)
	rep, err := cl.RunPlan(plan, inputs)
	conn.Close()
	if err != nil {
		return nil, err
	}

	// Synchronous baseline: same plan, same sequence, one round trip at
	// a time.
	conn, err = dial()
	if err != nil {
		return nil, err
	}
	scl := runtime.NewClient(conn, m, ch, timeScale)
	syncStart := time.Now()
	for _, j := range plan.Sequence {
		if _, err := scl.RunJob(j.ID, plan.Cuts[j.ID], inputs[j.ID]); err != nil {
			conn.Close()
			return nil, err
		}
	}
	syncMs := float64(time.Since(syncStart)) / float64(time.Millisecond)
	conn.Close()

	// Analytic references from the measured run: f is the measured
	// mobile prefix time, g the channel model's upload time (what the
	// shaper enforces), cloud the measured server compute.
	mobile := make(map[int]float64, n)
	cloud := make(map[int]float64, n)
	for _, r := range rep.Results {
		mobile[r.JobID] = r.MobileMs
		cloud[r.JobID] = r.CloudMs
	}
	seq := make([]flowshop.Job, n)
	f := make([]float64, n)
	gms := make([]float64, n)
	cms := make([]float64, n)
	for pos, j := range plan.Sequence {
		cut := plan.Cuts[j.ID]
		var up float64
		if cut < len(units)-1 { // cut at the last unit runs fully local
			shape := g.Node(units[cut].Exit).OutShape
			up = timeScale * ch.TxMs(runtime.RequestWireBytes(shape))
		}
		seq[pos] = flowshop.Job{ID: j.ID, A: mobile[j.ID], B: up}
		f[pos], gms[pos], cms[pos] = mobile[j.ID], up, cloud[j.ID]
	}
	simRes, err := sim.Run(sim.FromDurations(f, gms, cms))
	if err != nil {
		return nil, err
	}

	return &RuntimeResult{
		Model:       model,
		Jobs:        n,
		TimeScale:   timeScale,
		PipelinedMs: rep.MakespanMs,
		SyncMs:      syncMs,
		FormulaMs:   flowshop.FormulaMakespan(seq),
		SimMs:       simRes.Makespan,
	}, nil
}

// RuntimeTable renders live-runtime results against their analytic
// references.
func RuntimeTable(results []*RuntimeResult) *report.Table {
	t := report.NewTable(
		"Live runtime — pipelined vs synchronous execution vs Prop. 4.1",
		"Model", "Jobs", "Pipelined(ms)", "Sync(ms)", "Speedup", "Prop4.1(ms)", "Sim(ms)")
	for _, r := range results {
		t.AddRow(displayName(r.Model), r.Jobs, fmtMs(r.PipelinedMs), fmtMs(r.SyncMs),
			fmt.Sprintf("%.2fx", r.Speedup()), fmtMs(r.FormulaMs), fmtMs(r.SimMs))
	}
	return t
}
