package experiments

import (
	"testing"
	"time"

	"dnnjps/internal/netsim"
)

// A live coalescer run on a small model: the windowed row must record
// batched executions (arrivals are upload-paced on a cloud-only plan,
// so a 25ms window groups them), the baseline row must stay batch-1,
// and server busy time must not grow when groups form.
func TestRuntimeBatchLive(t *testing.T) {
	if testing.Short() {
		t.Skip("live runtime test")
	}
	env := DefaultEnv()
	res, err := RuntimeBatch(env, "squeezenet", netsim.WiFi,
		[]int{6}, []time.Duration{0, 25 * time.Millisecond}, 8, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("got %d results, want 2", len(res))
	}
	base, batched := res[0], res[1]
	if base.WindowMs != 0 || batched.WindowMs <= 0 {
		t.Fatalf("rows out of order: %+v", res)
	}
	if base.MeanBatch != 1 || base.BatchedJobs != 0 {
		t.Errorf("baseline must be batch-1: %+v", base)
	}
	if base.MakespanMs <= 0 || base.ServerBusyMs <= 0 || base.FormulaMs <= 0 {
		t.Errorf("baseline has non-positive measurements: %+v", base)
	}
	if batched.BatchedJobs+batched.SoloJobs != int64(base.Jobs) {
		t.Errorf("windowed run lost jobs: %+v", batched)
	}
	if batched.BatchedJobs < 2 {
		t.Errorf("windowed run formed no groups: %+v", batched)
	}
	if batched.MeanBatch <= 1 {
		t.Errorf("windowed run mean batch %f, want > 1", batched.MeanBatch)
	}
	tbl := RuntimeBatchTable(res)
	if tbl == nil || len(tbl.Rows) != 2 {
		t.Fatal("table must carry both rows")
	}
}
