package experiments

import (
	"strings"
	"testing"

	"dnnjps/internal/netsim"
)

func TestChainEnvDefaultDepths(t *testing.T) {
	e := env()
	for depth := 1; depth <= 3; depth++ {
		ch, err := ChainEnvDefault(e, netsim.FourG, depth)
		if err != nil {
			t.Fatalf("depth %d: %v", depth, err)
		}
		if err := ch.Validate(); err != nil {
			t.Errorf("depth %d chain invalid: %v", depth, err)
		}
		if ch.Depth() != depth {
			t.Errorf("depth %d chain has %d links", depth, ch.Depth())
		}
	}
	for _, bad := range []int{0, -1, 4} {
		if _, err := ChainEnvDefault(e, netsim.FourG, bad); err == nil {
			t.Errorf("depth %d accepted", bad)
		}
	}
}

func TestChainDepthExperiment(t *testing.T) {
	e := env()
	e.NJobs = 20
	rows, err := ChainDepth(e)
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * len(netsim.Presets()) * 3; len(rows) != want {
		t.Fatalf("got %d rows, want %d", len(rows), want)
	}
	bigWin := false
	for _, r := range rows {
		// The k-way planner's candidate set contains every single-cut
		// plan, so it never loses to the 1-cut baseline.
		if r.KWayMs > r.OneCutMs*1.001 {
			t.Errorf("%s@%s depth %d: k-way %.1f worse than 1-cut %.1f",
				r.Model, r.Uplink, r.Depth, r.KWayMs, r.OneCutMs)
		}
		if r.Depth >= 2 && r.GainPct > 20 {
			bigWin = true
		}
	}
	if !bigWin {
		t.Error("expected >20% k-way gains somewhere on multi-hop chains with a thin backhaul")
	}
	if !strings.Contains(ChainDepthTable(rows).String(), "k-way") {
		t.Error("table missing header")
	}
}

func TestChainGapExperiment(t *testing.T) {
	e := env()
	rows, err := ChainGap(e, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.BFMs <= 0 || r.KWayMs <= 0 {
			t.Errorf("%s depth %d: non-positive makespans (bf %.2f, kway %.2f)",
				r.Model, r.Depth, r.BFMs, r.KWayMs)
		}
		// Brute force is the offline optimum: the heuristic can match it
		// but never beat it.
		if r.KWayMs < r.BFMs*0.999 {
			t.Errorf("%s depth %d: k-way %.2f below brute force %.2f",
				r.Model, r.Depth, r.KWayMs, r.BFMs)
		}
		// Measured gaps on these instances are 8.8–31.7% (see DESIGN.md
		// §12); 50% is the regression tripwire.
		if r.GapPct > 50 {
			t.Errorf("%s depth %d: gap %.1f%% blew past the documented range",
				r.Model, r.Depth, r.GapPct)
		}
	}
	if !strings.Contains(ChainGapTable(rows).String(), "Brute force") {
		t.Error("table missing header")
	}
}
