package experiments

import (
	"strings"
	"testing"

	"dnnjps/internal/netsim"
)

// Render every experiment's table once — catching formatting panics
// and keeping the render paths covered.
func TestAllTablesRender(t *testing.T) {
	e := env()
	e.NJobs = 10

	f4 := Fig4(e, "alexnet", netsim.WiFi)
	mustRender(t, Fig4Table("alexnet", netsim.WiFi, f4).String(), "Fig. 4")

	f11, err := Fig11(e, netsim.FourG)
	if err != nil {
		t.Fatal(err)
	}
	mustRender(t, Fig11Table(f11).String(), "Fig. 11")

	cells, err := Fig12(e)
	if err != nil {
		t.Fatal(err)
	}
	mustRender(t, Fig12Table(cells).String(), "Fig. 12")
	mustRender(t, Table1Table(Table1(cells)).String(), "Table 1")

	ov, err := Fig12Overhead(e, netsim.FourG)
	if err != nil {
		t.Fatal(err)
	}
	mustRender(t, Fig12OverheadTable(ov).String(), "Fig. 12(d)")

	f13, err := Fig13(e, "alexnet", []float64{1, 10, 80})
	if err != nil {
		t.Fatal(err)
	}
	mustRender(t, Fig13Table("alexnet", f13).String(), "Fig. 13")

	f14, err := Fig14(e, "resnet18", []float64{2, 4}, []float64{9, 10})
	if err != nil {
		t.Fatal(err)
	}
	mustRender(t, Fig14Table("resnet18", []float64{9, 10}, f14).String(), "Fig. 14")

	sched, err := AblationScheduling(e, 5)
	if err != nil {
		t.Fatal(err)
	}
	mustRender(t, AblationSchedulingTable(sched).String(), "Ablation")

	mix, err := AblationMixStrategies(e)
	if err != nil {
		t.Fatal(err)
	}
	mustRender(t, AblationMixTable(mix).String(), "Ablation")

	vb, err := AblationVirtualBlocks(e)
	if err != nil {
		t.Fatal(err)
	}
	mustRender(t, AblationVirtualBlocksTable(vb).String(), "Ablation")

	st, err := Stream(e, "alexnet", netsim.FourG, []float64{1, 4}, 20)
	if err != nil {
		t.Fatal(err)
	}
	mustRender(t, StreamTable("alexnet", netsim.FourG, st).String(), "Extension")

	if len(DefaultBandwidths()) != 80 {
		t.Errorf("DefaultBandwidths covers %d points, want 80", len(DefaultBandwidths()))
	}
}

func mustRender(t *testing.T, out, wantSubstr string) {
	t.Helper()
	if !strings.Contains(out, wantSubstr) {
		t.Errorf("rendered table missing %q:\n%s", wantSubstr, out)
	}
	if strings.Count(out, "\n") < 3 {
		t.Errorf("table suspiciously short:\n%s", out)
	}
}

func TestDisplayNames(t *testing.T) {
	for in, want := range map[string]string{
		"alexnet":     "AlexNet",
		"googlenet":   "GoogLeNet",
		"mobilenetv2": "MobileNet-v2",
		"resnet18":    "ResNet18",
		"vgg16":       "VGG16",
		"nin":         "NiN",
		"tinyyolov2":  "Tiny-YOLOv2",
		"custom":      "custom",
	} {
		if got := displayName(in); got != want {
			t.Errorf("displayName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestPct(t *testing.T) {
	if pct(100, 80) != 20 {
		t.Error("pct(100,80) != 20")
	}
	if pct(100, 120) != 0 {
		t.Error("negative reductions clamp to 0")
	}
	if pct(0, 5) != 0 {
		t.Error("zero base yields 0")
	}
	if fmtMs(1.26) != "1.3" {
		t.Errorf("fmtMs = %q", fmtMs(1.26))
	}
}
