package experiments

import (
	"testing"

	"dnnjps/internal/netsim"
)

// A live two-job run: the measured makespans must be positive, the
// pipelined run must not lose to the synchronous baseline by more
// than scheduling noise, and the analytic references must be finite.
func TestRuntimePipelineLive(t *testing.T) {
	if testing.Short() {
		t.Skip("live runtime test")
	}
	env := DefaultEnv()
	res, err := RuntimePipeline(env, "squeezenet", netsim.WiFi, 2, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if res.PipelinedMs <= 0 || res.SyncMs <= 0 {
		t.Fatalf("non-positive measured makespans: %+v", res)
	}
	if res.FormulaMs <= 0 || res.SimMs <= 0 {
		t.Fatalf("non-positive analytic makespans: %+v", res)
	}
	// The sim replay generalizes the closed form; on an identical-job
	// sequence they agree to rounding.
	if res.SimMs < res.FormulaMs-1e-6 {
		t.Errorf("sim %f below closed form %f", res.SimMs, res.FormulaMs)
	}
	if res.PipelinedMs > 2*res.SyncMs {
		t.Errorf("pipelined run (%f ms) grossly slower than sync (%f ms)", res.PipelinedMs, res.SyncMs)
	}
	tbl := RuntimeTable([]*RuntimeResult{res})
	if tbl == nil || len(tbl.Rows) != 1 {
		t.Fatal("table must carry one row")
	}
}
