package experiments

// The quantized-inference experiment: price the int8 path end to end —
// quantized mobile compute (profile.Device.Quantized) AND 1-byte cut
// tensors on the wire — and compare the resulting joint plans against
// float32 across bandwidths. Quantization attacks both curves at once:
// f(l) drops because the heavy mobile layers run on int8 kernels, and
// g(l) drops 4x because boundary activations ship as codes. The two
// pulls oppose each other at the crossing layer — cheaper uploads move
// the best cut earlier, a faster mobile prefix moves it later — so
// where the cut lands is a genuinely joint outcome, which is the
// paper's thesis applied to a deployment knob it never evaluated.

import (
	"dnnjps/internal/core"
	"dnnjps/internal/netsim"
	"dnnjps/internal/profile"
	"dnnjps/internal/report"
	"dnnjps/internal/tensor"
)

// QuantRow is one (model, channel) comparison of the float32 and int8
// deployments.
type QuantRow struct {
	Model    string
	Channel  string
	FP32Ms   float64 // JPS avg ms, float32 compute + float32 wire
	QuantMs  float64 // JPS avg ms, int8 compute + int8 wire
	FP32Cut  int     // single-job crossing layer, float32
	QuantCut int     // single-job crossing layer, int8
}

// Quant sweeps the preset channels for each model, planning with the
// float32 curve and the fully quantized curve.
func Quant(env Env) ([]QuantRow, error) {
	qMobile := env.Mobile.Quantized()
	var rows []QuantRow
	for _, model := range []string{"alexnet", "mobilenetv2"} {
		g := mustModel(model)
		for _, ch := range netsim.Presets() {
			row := QuantRow{Model: model, Channel: ch.Name}
			for _, leg := range []struct {
				mobile profile.Device
				dt     tensor.DType
				ms     *float64
				cut    *int
			}{
				{env.Mobile, tensor.Float32, &row.FP32Ms, &row.FP32Cut},
				{qMobile, tensor.Int8, &row.QuantMs, &row.QuantCut},
			} {
				curve := profile.BuildCurve(g, leg.mobile, env.Cloud, ch, leg.dt)
				r, _ := curve.Restrict(curve.ParetoCuts())
				search, err := core.BinarySearchCut(r)
				if err != nil {
					return nil, err
				}
				*leg.cut = search.LStar
				plan, err := core.JPS(curve, env.NJobs)
				if err != nil {
					return nil, err
				}
				*leg.ms = plan.AvgMs()
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// QuantTable renders the rows.
func QuantTable(rows []QuantRow) *report.Table {
	t := report.NewTable("Extension — int8 quantized deployment (quantized mobile compute + 1-byte cut tensors), JPS avg ms",
		"Model", "Channel", "FP32 ms", "Int8 ms", "Speedup", "FP32 cut", "Int8 cut", "Shift")
	for _, r := range rows {
		speedup := 0.0
		if r.QuantMs > 0 {
			speedup = r.FP32Ms / r.QuantMs
		}
		t.AddRow(displayName(r.Model), r.Channel, r.FP32Ms, r.QuantMs, speedup,
			r.FP32Cut, r.QuantCut, r.QuantCut-r.FP32Cut)
	}
	return t
}
