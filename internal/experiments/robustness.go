package experiments

import (
	"fmt"

	"dnnjps/internal/core"
	"dnnjps/internal/flowshop"
	"dnnjps/internal/netsim"
	"dnnjps/internal/profile"
	"dnnjps/internal/report"
)

// RobustnessRow quantifies what a bandwidth estimation error costs:
// the plan is made against the estimated channel, but the stream
// actually transmits at the true bandwidth. Regret is the makespan
// excess over re-planning with perfect knowledge.
type RobustnessRow struct {
	ErrPct       float64 // true bandwidth = estimate * (1 + ErrPct/100)
	JPSActualMs  float64
	JPSOracleMs  float64
	JPSRegretPct float64
	POActualMs   float64
	PORegretPct  float64
}

// Robustness sweeps estimation errors for one model around an
// estimated channel.
func Robustness(env Env, model string, est netsim.Channel, errPcts []float64) ([]RobustnessRow, error) {
	g := mustModel(model)
	estCurve := env.curveFor(g, est)
	jpsPlan, err := core.JPS(estCurve, env.NJobs)
	if err != nil {
		return nil, err
	}
	poPlan, err := core.PO(estCurve, env.NJobs)
	if err != nil {
		return nil, err
	}

	var rows []RobustnessRow
	for _, e := range errPcts {
		actualBw := est.UplinkMbps * (1 + e/100)
		if actualBw <= 0 {
			return nil, fmt.Errorf("experiments: error %g%% drives bandwidth non-positive", e)
		}
		// Only the bandwidth was misestimated; the per-message setup
		// latency is the estimated channel's.
		actual := netsim.Channel{
			Name:       fmt.Sprintf("%s%+.0f%%", est.Name, e),
			UplinkMbps: actualBw,
			SetupMs:    est.SetupMs,
		}
		actualCurve := env.curveFor(g, actual)

		oracle, err := core.JPS(actualCurve, env.NJobs)
		if err != nil {
			return nil, err
		}
		row := RobustnessRow{
			ErrPct:      e,
			JPSActualMs: replay(jpsPlan, actualCurve),
			JPSOracleMs: oracle.Makespan,
			POActualMs:  replay(poPlan, actualCurve),
		}
		row.JPSRegretPct = pctOver(row.JPSActualMs, row.JPSOracleMs)
		row.PORegretPct = pctOver(row.POActualMs, row.JPSOracleMs)
		rows = append(rows, row)
	}
	return rows, nil
}

// replay executes a plan's cut choices against a different curve (the
// compute stage is bandwidth-independent; the upload stage re-prices
// at the true channel) and re-sequences with Johnson — the device
// would reorder its queue for free.
func replay(p *core.Plan, actual *profile.Curve) float64 {
	jobs := make([]flowshop.Job, len(p.Cuts))
	for i, cut := range p.Cuts {
		jobs[i] = flowshop.Job{ID: i, A: actual.F[cut], B: actual.G[cut]}
	}
	return flowshop.Makespan(flowshop.Johnson(jobs))
}

func pctOver(actual, oracle float64) float64 {
	if oracle <= 0 {
		return 0
	}
	r := (actual - oracle) / oracle * 100
	if r < 0 {
		return 0
	}
	return r
}

// RobustnessTable renders the rows.
func RobustnessTable(model string, est netsim.Channel, rows []RobustnessRow) *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Extension — bandwidth misestimation for %s (planned at %s)", displayName(model), est),
		"Err %", "JPS actual (ms)", "JPS oracle (ms)", "JPS regret %", "PO actual (ms)", "PO regret %")
	for _, r := range rows {
		t.AddRow(fmt.Sprintf("%+.0f", r.ErrPct), r.JPSActualMs, r.JPSOracleMs,
			r.JPSRegretPct, r.POActualMs, r.PORegretPct)
	}
	return t
}
