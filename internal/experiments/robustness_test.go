package experiments

import (
	"strings"
	"testing"

	"dnnjps/internal/netsim"
)

func TestRobustnessSweep(t *testing.T) {
	e := env()
	e.NJobs = 40
	errs := []float64{-50, -25, -10, 0, 10, 25, 50}
	rows, err := Robustness(e, "alexnet", netsim.FourG, errs)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(errs) {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		// The oracle replans with true knowledge: nothing beats it.
		if r.JPSActualMs < r.JPSOracleMs-1e-6 {
			t.Errorf("err %+.0f%%: actual %.1f below oracle %.1f", r.ErrPct, r.JPSActualMs, r.JPSOracleMs)
		}
		if r.JPSRegretPct < 0 || r.PORegretPct < 0 {
			t.Errorf("negative regret: %+v", r)
		}
	}
	// Perfect estimate: zero regret.
	for _, r := range rows {
		if r.ErrPct == 0 && r.JPSRegretPct > 0.01 {
			t.Errorf("zero error should have ~zero regret, got %.2f%%", r.JPSRegretPct)
		}
	}
	// Stale JPS cuts (with requeued Johnson order) never trail the
	// oracle by more than a modest factor across +-50% error.
	for _, r := range rows {
		if r.JPSRegretPct > 60 {
			t.Errorf("err %+.0f%%: JPS regret %.1f%% too large", r.ErrPct, r.JPSRegretPct)
		}
	}
	if !strings.Contains(RobustnessTable("alexnet", netsim.FourG, rows).String(), "regret") {
		t.Error("table missing regret columns")
	}
}

func TestRobustnessRejectsImpossibleError(t *testing.T) {
	if _, err := Robustness(env(), "alexnet", netsim.FourG, []float64{-100}); err == nil {
		t.Error("-100% bandwidth error must be rejected")
	}
}
