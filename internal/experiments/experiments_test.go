package experiments

import (
	"strings"
	"testing"

	"dnnjps/internal/netsim"
)

func env() Env { return DefaultEnv() }

func TestFig4AlexNetShape(t *testing.T) {
	rows := Fig4(env(), "alexnet", netsim.WiFi)
	// The paper's Fig. 4 plots 8 AlexNet blocks.
	if len(rows) != 8 {
		t.Fatalf("got %d blocks, want 8", len(rows))
	}
	for _, r := range rows {
		// Fig. 4(a): cloud computation negligible next to mobile.
		if r.CloudMs > r.MobileMs {
			t.Errorf("block %s: cloud %.2f > mobile %.2f", r.Block, r.CloudMs, r.MobileMs)
		}
	}
	// Fig. 4(b) trend: communication volume decreases overall — the
	// last communicating block ships far less than the first.
	first, last := rows[0], rows[len(rows)-2] // last row ships nothing
	if last.Bytes*4 > first.Bytes {
		t.Errorf("comm volume should shrink strongly: first %d, late %d", first.Bytes, last.Bytes)
	}
	tbl := Fig4Table("alexnet", netsim.WiFi, rows)
	if !strings.Contains(tbl.String(), "conv1") {
		t.Error("table missing block names")
	}
}

func TestFig11JPSNearOptimal(t *testing.T) {
	rows, err := Fig11(env(), netsim.FourG)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 { // 2 models x 4 job counts
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		// JPS+ (globalized two-type search) stays within 5% of the
		// reference optimum at every scale. The binary-search JPS can
		// trail further on our block-granular curves, whose adjacent
		// positions differ drastically (outside Theorem 5.3's premise)
		// — documented in EXPERIMENTS.md; bound it loosely.
		if r.JPSPlusMs > r.BFMs*1.05 {
			t.Errorf("%s n=%d: JPS+ %.1f vs BF %.1f (>5%% gap)", r.Model, r.N, r.JPSPlusMs, r.BFMs)
		}
		if r.JPSMs > r.BFMs*1.35 {
			t.Errorf("%s n=%d: JPS %.1f vs BF %.1f (>35%% gap)", r.Model, r.N, r.JPSMs, r.BFMs)
		}
		if r.Exact && (r.JPSMs < r.BFMs*(1-1e-9) || r.JPSPlusMs < r.BFMs*(1-1e-9)) {
			t.Errorf("%s n=%d: planner below exhaustive optimum (impossible): %+v", r.Model, r.N, r)
		}
	}
	// Small-n exhaustive rows exist for both models.
	exact := 0
	for _, r := range rows {
		if r.Exact {
			exact++
		}
	}
	if exact < 4 {
		t.Errorf("only %d exhaustive BF rows; expected n=2 and n=8 for both models", exact)
	}
}

func TestFig12Shape(t *testing.T) {
	cells, err := Fig12(env())
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 12 { // 4 models x 3 channels
		t.Fatalf("got %d cells", len(cells))
	}
	byKey := map[string]Fig12Cell{}
	for _, c := range cells {
		byKey[c.Model+"@"+c.Channel] = c
		// JPS never loses to LO or CO, and not to PO beyond fuzz.
		if c.JPSMs > c.LOMs*1.001 {
			t.Errorf("%s@%s: JPS %.1f > LO %.1f", c.Model, c.Channel, c.JPSMs, c.LOMs)
		}
		if c.JPSMs > c.COMs*1.001 {
			t.Errorf("%s@%s: JPS %.1f > CO %.1f", c.Model, c.Channel, c.JPSMs, c.COMs)
		}
		if c.JPSMs > c.POMs*1.02 {
			t.Errorf("%s@%s: JPS %.1f > PO %.1f", c.Model, c.Channel, c.JPSMs, c.POMs)
		}
	}
	// Paper: CO is omitted at 3G (upload alone > 4s) for the 224x224
	// models.
	for _, m := range []string{"alexnet", "googlenet", "mobilenetv2", "resnet18"} {
		if byKey[m+"@3G"].COFeasible {
			t.Errorf("%s@3G: CO should be infeasible (>4s), got %.0fms", m, byKey[m+"@3G"].COMs)
		}
	}
	// Paper: at 3G, offloading barely helps ResNet18 but helps
	// MobileNet-v2 a lot.
	resGain := pct(byKey["resnet18@3G"].LOMs, byKey["resnet18@3G"].JPSMs)
	mobGain := pct(byKey["mobilenetv2@3G"].LOMs, byKey["mobilenetv2@3G"].JPSMs)
	if resGain > mobGain {
		t.Errorf("3G: ResNet18 gain %.1f%% should be below MobileNet gain %.1f%%", resGain, mobGain)
	}
	// Gains grow with bandwidth for every model (paper: Fig. 12a->12c).
	for _, m := range []string{"alexnet", "googlenet", "mobilenetv2", "resnet18"} {
		g3 := pct(byKey[m+"@3G"].LOMs, byKey[m+"@3G"].JPSMs)
		gw := pct(byKey[m+"@Wi-Fi"].LOMs, byKey[m+"@Wi-Fi"].JPSMs)
		if gw+1e-9 < g3 {
			t.Errorf("%s: Wi-Fi gain %.1f%% below 3G gain %.1f%%", m, gw, g3)
		}
	}
}

func TestTable1Shape(t *testing.T) {
	cells, err := Fig12(env())
	if err != nil {
		t.Fatal(err)
	}
	rows := Table1(cells)
	if len(rows) != 12 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.POPct < 0 || r.POPct > 100 || r.JPSPct < 0 || r.JPSPct > 100 {
			t.Errorf("%s@%s: reductions out of range: %+v", r.Model, r.Channel, r)
		}
		// Joint optimization never reduces less than partition-only
		// (up to rounding fuzz).
		if r.JPSPct < r.POPct-0.5 {
			t.Errorf("%s@%s: JPS %.1f%% < PO %.1f%%", r.Model, r.Channel, r.JPSPct, r.POPct)
		}
	}
	tbl := Table1Table(rows)
	if !strings.Contains(tbl.String(), "AlexNet") {
		t.Error("table missing model names")
	}
}

func TestFig12Overhead(t *testing.T) {
	rows, err := Fig12Overhead(env(), netsim.FourG)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		// Fig. 12(d): overhead negligible — planning adds well under
		// 10% to the makespan (the paper's bars sit near 1.0).
		if r.OverheadRatio > 1.1 {
			t.Errorf("%s: overhead ratio %.3f too high", r.Model, r.OverheadRatio)
		}
		if r.PlanMs <= 0 {
			t.Errorf("%s: non-positive planning time", r.Model)
		}
	}
}

func TestFig13BenefitRange(t *testing.T) {
	e := env()
	e.NJobs = 50 // keep the sweep fast
	bands := []float64{1, 2, 3, 5, 8, 12, 18, 25, 35, 50, 65, 80}
	for _, model := range []string{"alexnet", "mobilenetv2"} {
		rows, err := Fig13(e, model, bands)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != len(bands) {
			t.Fatalf("%s: got %d rows", model, len(rows))
		}
		// LO is bandwidth-independent; CO monotonically improves.
		for i := 1; i < len(rows); i++ {
			if rows[i].LOMs != rows[0].LOMs {
				t.Errorf("%s: LO must not depend on bandwidth", model)
			}
			if rows[i].COMs > rows[i-1].COMs+1e-6 {
				t.Errorf("%s: CO must improve with bandwidth", model)
			}
		}
		// At 1 Mb/s offloading is hopeless: JPS ~ LO. At 80 Mb/s CO is
		// competitive: JPS <= LO strictly.
		if rows[0].JPSMs > rows[0].LOMs*1.001 {
			t.Errorf("%s@1Mbps: JPS %.0f above LO %.0f", model, rows[0].JPSMs, rows[0].LOMs)
		}
		last := rows[len(rows)-1]
		if last.JPSMs > last.LOMs {
			t.Errorf("%s@80Mbps: JPS %.0f should beat LO %.0f", model, last.JPSMs, last.LOMs)
		}
		// The paper's [1,20] Mb/s speedup claim: JPS beats both LO and
		// CO somewhere in that window.
		lo, hi, ok := BenefitRange(rows, 0.01)
		if !ok {
			t.Fatalf("%s: no benefit range found", model)
		}
		if lo > 20 {
			t.Errorf("%s: benefit range starts at %.0f Mb/s, expected within [1,20]", model, lo)
		}
		if hi < 18 {
			t.Errorf("%s: benefit range ends at %.0f Mb/s, expected to cover Wi-Fi", model, hi)
		}
	}
}

func TestFig14RatioSweep(t *testing.T) {
	e := env()
	bands := []float64{9, 10, 11}
	ratios := []float64{0.25, 0.5, 1, 2, 3, 5, 7, 9}
	for _, model := range []string{"resnet18", "googlenet"} {
		rows, err := Fig14(e, model, ratios, bands)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != len(ratios) {
			t.Fatalf("%s: got %d rows", model, len(rows))
		}
		for _, b := range bands {
			best := BestRatio(rows, b)
			if best == 0 {
				t.Fatalf("%s: no best ratio at %g", model, b)
			}
		}
	}
	if _, err := Fig14(e, "resnet18", []float64{-1}, bands); err == nil {
		t.Error("negative ratio must error")
	}
}

func TestAblationScheduling(t *testing.T) {
	rows, err := AblationScheduling(env(), 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.JohnsonMs > r.FIFOMs+1e-9 {
			t.Errorf("%s@%s: Johnson %.1f > FIFO %.1f", r.Model, r.Channel, r.JohnsonMs, r.FIFOMs)
		}
		if r.FIFOMs > r.WorstMs+1e-9 {
			t.Errorf("%s@%s: FIFO %.1f > worst %.1f", r.Model, r.Channel, r.FIFOMs, r.WorstMs)
		}
	}
}

func TestAblationMixStrategies(t *testing.T) {
	e := env()
	e.NJobs = 40
	rows, err := AblationMixStrategies(e)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		const eps = 1e-9
		if r.TwoPointMs > r.BestMixMs+eps {
			t.Errorf("%s@%s: two-point %.1f > best mix %.1f", r.Model, r.Channel, r.TwoPointMs, r.BestMixMs)
		}
		if r.BestMixMs > r.BalancedMs+eps {
			t.Errorf("%s@%s: best mix %.1f > balanced %.1f", r.Model, r.Channel, r.BestMixMs, r.BalancedMs)
		}
		if r.BalancedMs > r.PaperRatioMs+eps {
			t.Errorf("%s@%s: balanced %.1f > paper ratio %.1f", r.Model, r.Channel, r.BalancedMs, r.PaperRatioMs)
		}
	}
}

func TestAblationVirtualBlocks(t *testing.T) {
	e := env()
	e.NJobs = 30
	rows, err := AblationVirtualBlocks(e)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// §3.2's claim: dropping dominated cuts loses nothing.
		if r.ParetoMspanMs > r.RawMakespanMs*(1+1e-9) {
			t.Errorf("%s@%s: Pareto optimum %.2f worse than raw %.2f — clustering lost the optimum",
				r.Model, r.Channel, r.ParetoMspanMs, r.RawMakespanMs)
		}
		if r.ParetoCuts >= r.RawCuts {
			t.Errorf("%s@%s: clustering removed nothing (%d vs %d)",
				r.Model, r.Channel, r.ParetoCuts, r.RawCuts)
		}
	}
}
