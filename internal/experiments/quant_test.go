package experiments

import (
	"strings"
	"testing"
)

func TestQuantExperiment(t *testing.T) {
	rows, err := Quant(env())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 { // 2 models x 3 preset channels
		t.Fatalf("got %d rows, want 6", len(rows))
	}
	for _, r := range rows {
		// Quantization strictly helps the modeled deployment: both f(l)
		// and g(l) only drop, so every plan gets faster.
		if r.QuantMs >= r.FP32Ms {
			t.Errorf("%s/%s: int8 plan %.1f ms not faster than fp32 %.1f ms",
				r.Model, r.Channel, r.QuantMs, r.FP32Ms)
		}
		if r.FP32Cut < 0 || r.QuantCut < 0 {
			t.Errorf("%s/%s: negative crossing layer %+v", r.Model, r.Channel, r)
		}
	}
	// The two pulls (cheaper uploads earlier, faster mobile later) must
	// actually move the crossing layer somewhere in the sweep —
	// otherwise the experiment shows nothing joint.
	moved := false
	for _, r := range rows {
		if r.QuantCut != r.FP32Cut {
			moved = true
		}
	}
	if !moved {
		t.Error("crossing layer identical in every setting; expected a shift somewhere")
	}
	if !strings.Contains(QuantTable(rows).String(), "Int8 cut") {
		t.Error("table missing header")
	}
}
