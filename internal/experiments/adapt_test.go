package experiments

import (
	"strings"
	"testing"
)

// TestRuntimeAdaptLive runs the adapt figure end-to-end over loopback
// at a reduced job count. The assertions are structural plus the loose
// ordering the figure exists to show — continuous clearly beats the
// one-shot threshold and lands near the oracle — with wide margins so
// host-speed variance cannot flake them (the tight margins are the
// full-size figure's, checked on the committed jpsbench output).
func TestRuntimeAdaptLive(t *testing.T) {
	if testing.Short() {
		t.Skip("live loopback experiment")
	}
	rows, trace, err := RuntimeAdapt(DefaultEnv(), 32, 1.0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	byName := map[string]*AdaptRow{}
	for _, r := range rows {
		if r.Jobs != 32 || r.MakespanMs <= 0 {
			t.Fatalf("degenerate row: %+v", r)
		}
		byName[r.Policy] = r
	}
	for _, name := range []string{"static", "threshold", "continuous", "oracle"} {
		if byName[name] == nil {
			t.Fatalf("missing %q row", name)
		}
	}
	if r := byName["static"]; r.Replans != 0 || r.ChangePoints != 0 {
		t.Fatalf("static row replanned: %+v", r)
	}
	cont := byName["continuous"]
	if cont.Replans == 0 || cont.ChangePoints == 0 {
		t.Fatalf("continuous row never adapted: %+v", cont)
	}
	if cont.EstMbps <= 0 || cont.EstMbps >= AdaptChannel().UplinkMbps {
		t.Fatalf("final estimate %.2f Mb/s not inside the degraded regime", cont.EstMbps)
	}
	// The ordering the figure exists to show, with generous slack.
	if thr := byName["threshold"]; cont.MakespanMs > 0.95*thr.MakespanMs {
		t.Fatalf("continuous (%.0f ms) not clearly better than threshold (%.0f ms)",
			cont.MakespanMs, thr.MakespanMs)
	}
	if orc := byName["oracle"]; cont.MakespanMs > 1.35*orc.MakespanMs {
		t.Fatalf("continuous (%.0f ms) too far from oracle (%.0f ms)",
			cont.MakespanMs, orc.MakespanMs)
	}

	// The recorded trace must replay to at least one Down change point
	// that lands in the degraded regime and moves the dominant cut.
	if trace == nil || len(trace.Samples) != 32 {
		t.Fatalf("trace not recorded from the continuous run: %+v", trace)
	}
	var down bool
	for _, p := range trace.Points {
		if p.Direction == "down" && p.Mbps < 4 && p.Cut == 2 {
			down = true
		}
	}
	if !down {
		t.Fatalf("no down change point into the small-boundary cut: %+v", trace.Points)
	}
	tbl := RuntimeAdaptTable(rows)
	if tbl == nil {
		t.Fatal("nil table")
	}
	if s := tbl.String(); !strings.Contains(s, "continuous") || !strings.Contains(s, "oracle") {
		t.Fatalf("table missing policies:\n%s", s)
	}
}
