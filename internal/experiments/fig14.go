package experiments

import (
	"fmt"

	"dnnjps/internal/core"
	"dnnjps/internal/flowshop"
	"dnnjps/internal/netsim"
	"dnnjps/internal/report"
)

// Fig14Row is one mix-ratio point: with the two JPS candidate cuts
// fixed, Ratio = (#computation-heavy jobs at l*) / (#communication-
// heavy jobs at l*-1), and MakespanS maps bandwidth (Mb/s) to the
// resulting makespan in seconds — the paper sweeps 9/10/11 Mb/s.
type Fig14Row struct {
	Ratio     float64
	MakespanS map[float64]float64
}

// Fig14 sweeps the computation-heavy : communication-heavy job ratio
// for one model at the given bandwidths. The paper uses ResNet
// (ratios 2..9) and GoogLeNet (ratios 0.2..1).
func Fig14(env Env, model string, ratios, bandwidths []float64) ([]Fig14Row, error) {
	g := mustModel(model)
	rows := make([]Fig14Row, 0, len(ratios))
	for _, ratio := range ratios {
		if ratio <= 0 {
			return nil, fmt.Errorf("experiments: non-positive ratio %g", ratio)
		}
		row := Fig14Row{Ratio: ratio, MakespanS: map[float64]float64{}}
		for _, b := range bandwidths {
			ch := netsim.At(b)
			curve := env.curveFor(g, ch)
			r, idx := curve.Restrict(curve.ParetoCuts())
			search, err := core.BinarySearchCut(r)
			if err != nil {
				return nil, err
			}
			lstar := search.LStar
			if lstar == 0 {
				lstar = 1 // need two adjacent candidates to mix
			}
			// ratio = compHeavy/commHeavy; commHeavy jobs sit at l*-1.
			commHeavy := int(float64(env.NJobs) / (1 + ratio))
			if commHeavy < 0 {
				commHeavy = 0
			}
			if commHeavy > env.NJobs {
				commHeavy = env.NJobs
			}
			cuts := make([]int, env.NJobs)
			for i := range cuts {
				if i < commHeavy {
					cuts[i] = idx[lstar-1]
				} else {
					cuts[i] = idx[lstar]
				}
			}
			jobs := core.JobsForCuts(curve, cuts)
			row.MakespanS[b] = flowshop.Makespan(flowshop.Johnson(jobs)) / 1000
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// BestRatio returns the ratio with the smallest makespan at one
// bandwidth.
func BestRatio(rows []Fig14Row, mbps float64) float64 {
	best, bestV := 0.0, 0.0
	for i, r := range rows {
		v, ok := r.MakespanS[mbps]
		if !ok {
			continue
		}
		if i == 0 || v < bestV {
			best, bestV = r.Ratio, v
		}
	}
	return best
}

// Fig14Table renders the sweep with one column per bandwidth.
func Fig14Table(model string, bandwidths []float64, rows []Fig14Row) *report.Table {
	headers := []string{"Ratio"}
	for _, b := range bandwidths {
		headers = append(headers, fmt.Sprintf("%gMbps (s)", b))
	}
	t := report.NewTable("Fig. 14 — makespan vs comp:comm job ratio for "+displayName(model), headers...)
	for _, r := range rows {
		cells := []any{fmt.Sprintf("%.2f", r.Ratio)}
		for _, b := range bandwidths {
			cells = append(cells, fmt.Sprintf("%.3f", r.MakespanS[b]))
		}
		t.AddRow(cells...)
	}
	return t
}
