// Package obs is the runtime's observability substrate: per-job
// per-stage spans recorded into a bounded in-memory buffer, plus
// counters/gauges/histograms with Prometheus text exposition. The
// paper's whole argument is a per-stage decomposition — device compute
// f(x), upload g(x), cloud compute — so the runtime records exactly
// those stages and exports them in forms a person can open: Chrome
// trace_event JSON (chrome://tracing, Perfetto) and plain JSON, while
// the metrics answer "is production degraded right now".
//
// Everything is safe on a nil receiver: an un-instrumented client or
// server passes nil and every record call is a branch and a return, so
// the wire hot path stays allocation-free whether or not tracing is on.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Span is one recorded stage: a named interval on a track (a resource
// lane such as "mobile", "uplink", "cloud", "server", "runner"),
// attributed to a job. JobID is -1 for events that belong to no job
// (redials, backoff sleeps). Times are nanoseconds since the tracer's
// epoch, so spans from one tracer share a clock and merge into one
// coherent timeline.
type Span struct {
	Track   string `json:"track"`
	Name    string `json:"name"`
	JobID   int32  `json:"job"`
	StartNs int64  `json:"start_ns"`
	DurNs   int64  `json:"dur_ns"`
}

// EndNs returns the span's end offset.
func (s Span) EndNs() int64 { return s.StartNs + s.DurNs }

// StartMs and EndMs are the span edges in the simulator's millisecond
// axis.
func (s Span) StartMs() float64 { return float64(s.StartNs) / 1e6 }
func (s Span) EndMs() float64   { return float64(s.StartNs+s.DurNs) / 1e6 }

// DefaultTraceCap bounds a tracer built with NewTracer(0). At 32 bytes
// + two interned string headers per span this keeps the buffer around
// a megabyte.
const DefaultTraceCap = 16384

// Tracer is a bounded in-memory span buffer. Recording is a mutex and
// a slot write — no allocation when the track/name strings are
// constants (they are, everywhere the runtime records). When the
// buffer is full the oldest spans are overwritten ring-style and
// Dropped counts them, so a long-running server keeps the most recent
// window rather than the first.
type Tracer struct {
	mu      sync.Mutex
	epoch   time.Time
	spans   []Span
	next    int  // ring write cursor
	wrapped bool // the ring has overwritten at least one span
	dropped int64
}

// NewTracer builds a tracer holding at most capacity spans
// (capacity <= 0 means DefaultTraceCap). The epoch is now.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	return &Tracer{epoch: time.Now(), spans: make([]Span, 0, capacity)}
}

// Epoch returns the instant span offsets are measured from.
func (t *Tracer) Epoch() time.Time {
	if t == nil {
		return time.Time{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.epoch
}

// Record stores one completed span. Safe on a nil tracer (no-op), safe
// for concurrent use, and allocation-free once the ring is warm.
func (t *Tracer) Record(track, name string, jobID int, start, end time.Time) {
	if t == nil {
		return
	}
	if end.Before(start) {
		end = start
	}
	t.mu.Lock()
	sp := Span{
		Track:   track,
		Name:    name,
		JobID:   int32(jobID),
		StartNs: start.Sub(t.epoch).Nanoseconds(),
		DurNs:   end.Sub(start).Nanoseconds(),
	}
	if len(t.spans) < cap(t.spans) {
		t.spans = append(t.spans, sp)
	} else {
		t.spans[t.next] = sp
		t.wrapped = true
		t.dropped++
	}
	t.next++
	if t.next == cap(t.spans) {
		t.next = 0
	}
	t.mu.Unlock()
}

// Event records an instantaneous marker (a zero-duration span).
func (t *Tracer) Event(track, name string, jobID int, at time.Time) {
	t.Record(track, name, jobID, at, at)
}

// Dropped reports how many spans the ring has overwritten.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Len reports how many spans the buffer currently holds.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Reset empties the buffer and restarts the epoch at now.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.epoch = time.Now()
	t.spans = t.spans[:0]
	t.next = 0
	t.wrapped = false
	t.dropped = 0
	t.mu.Unlock()
}

// Spans returns a copy of the buffer sorted by start time. Ring
// wraparound makes raw order non-chronological; sorting restores it.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].StartNs < out[j].StartNs })
	return out
}

// WriteJSON exports the buffer as plain JSON: epoch, drop count, and
// the chronologically sorted spans.
func (t *Tracer) WriteJSON(w io.Writer) error {
	type dump struct {
		Epoch   string `json:"epoch"`
		Dropped int64  `json:"dropped"`
		Spans   []Span `json:"spans"`
	}
	d := dump{Epoch: t.Epoch().Format(time.RFC3339Nano), Dropped: t.Dropped(), Spans: t.Spans()}
	if d.Spans == nil {
		d.Spans = []Span{}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(d)
}

// TraceDump is the parsed form of WriteJSON's output: the recording
// epoch, the ring's drop count, and the chronologically sorted spans.
type TraceDump struct {
	Epoch   time.Time
	Dropped int64
	Spans   []Span
}

// ReadJSON parses a trace previously exported with WriteJSON — the
// inverse used by trace-driven regression tests, which replay a
// committed recording through the simulator instead of re-measuring
// wall-clock behavior.
func ReadJSON(r io.Reader) (*TraceDump, error) {
	var d struct {
		Epoch   string `json:"epoch"`
		Dropped int64  `json:"dropped"`
		Spans   []Span `json:"spans"`
	}
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("obs: parse trace dump: %w", err)
	}
	epoch, err := time.Parse(time.RFC3339Nano, d.Epoch)
	if err != nil {
		return nil, fmt.Errorf("obs: parse trace epoch: %w", err)
	}
	return &TraceDump{Epoch: epoch, Dropped: d.Dropped, Spans: d.Spans}, nil
}

// chromeEvent is one trace_event entry. Complete ("X") events carry a
// microsecond timestamp and duration; metadata ("M") events name the
// synthetic threads.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// laneWidth spaces the tids assigned to one track: overlapping spans
// on a track (several jobs queued at once) spill into extra lanes so
// viewers that require properly nested slices per thread render them
// without clipping.
const laneWidth = 64

// WriteChromeTrace exports the buffer in Chrome trace_event format
// ({"traceEvents": [...]}), loadable in chrome://tracing and Perfetto.
// Each track becomes a named synthetic thread; spans that overlap
// within a track are spread across extra lanes ("uplink", "uplink#2",
// ...) by greedy interval partitioning, so the file is always
// well-nested.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	spans := t.Spans()
	// Track order: first appearance.
	trackOf := map[string]int{}
	var tracks []string
	for _, sp := range spans {
		if _, ok := trackOf[sp.Track]; !ok {
			trackOf[sp.Track] = len(tracks)
			tracks = append(tracks, sp.Track)
		}
	}
	events := make([]chromeEvent, 0, 2*len(spans)+len(tracks))
	laneEnd := map[int][]int64{} // track index -> per-lane last end ns
	laneUsed := map[int]int{}
	for _, sp := range spans { // sorted by start: greedy lane assignment is valid
		ti := trackOf[sp.Track]
		lanes := laneEnd[ti]
		lane := -1
		for li, end := range lanes {
			if end <= sp.StartNs {
				lane = li
				break
			}
		}
		if lane == -1 {
			lane = len(lanes)
			lanes = append(lanes, 0)
		}
		lanes[lane] = sp.EndNs()
		laneEnd[ti] = lanes
		if lane+1 > laneUsed[ti] {
			laneUsed[ti] = lane + 1
		}
		dur := float64(sp.DurNs) / 1e3
		ev := chromeEvent{
			Name: sp.Name,
			Cat:  sp.Track,
			Ph:   "X",
			Ts:   float64(sp.StartNs) / 1e3,
			Dur:  &dur,
			Pid:  1,
			Tid:  ti*laneWidth + lane,
		}
		if sp.JobID >= 0 {
			ev.Args = map[string]any{"job": sp.JobID}
		}
		events = append(events, ev)
	}
	for name, ti := range trackOf {
		for lane := 0; lane < laneUsed[ti]; lane++ {
			label := name
			if lane > 0 {
				label = fmt.Sprintf("%s#%d", name, lane+1)
			}
			events = append(events, chromeEvent{
				Name: "thread_name",
				Ph:   "M",
				Pid:  1,
				Tid:  ti*laneWidth + lane,
				Args: map[string]any{"name": label},
			})
		}
	}
	return json.NewEncoder(w).Encode(map[string]any{"traceEvents": events})
}
