package obs

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestTracerRecordAndOrder(t *testing.T) {
	tr := NewTracer(8)
	e := tr.Epoch()
	// Record out of chronological order; Spans must sort.
	tr.Record("uplink", "upload", 1, e.Add(10*time.Millisecond), e.Add(30*time.Millisecond))
	tr.Record("mobile", "local-compute", 0, e, e.Add(5*time.Millisecond))
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0].Name != "local-compute" || spans[1].Name != "upload" {
		t.Fatalf("spans not sorted by start: %+v", spans)
	}
	if spans[1].DurNs != (20 * time.Millisecond).Nanoseconds() {
		t.Errorf("upload DurNs = %d, want 20ms", spans[1].DurNs)
	}
	if spans[0].JobID != 0 || spans[1].JobID != 1 {
		t.Errorf("job ids wrong: %+v", spans)
	}
	if spans[0].EndMs() != 5 {
		t.Errorf("EndMs = %g, want 5", spans[0].EndMs())
	}
}

func TestTracerRingOverwritesOldest(t *testing.T) {
	tr := NewTracer(4)
	e := tr.Epoch()
	for i := 0; i < 10; i++ {
		at := e.Add(time.Duration(i) * time.Millisecond)
		tr.Event("t", "e", i, at)
	}
	if got := tr.Len(); got != 4 {
		t.Fatalf("ring holds %d spans, want 4", got)
	}
	if got := tr.Dropped(); got != 6 {
		t.Fatalf("dropped = %d, want 6", got)
	}
	spans := tr.Spans()
	// Most recent window survives, chronologically ordered.
	for i, sp := range spans {
		if int(sp.JobID) != 6+i {
			t.Fatalf("span %d has job %d, want %d (ring must keep the newest)", i, sp.JobID, 6+i)
		}
	}
}

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	tr.Record("a", "b", 0, time.Now(), time.Now())
	tr.Event("a", "b", 0, time.Now())
	tr.Reset()
	if tr.Spans() != nil || tr.Len() != 0 || tr.Dropped() != 0 {
		t.Fatal("nil tracer must be inert")
	}
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter must be inert")
	}
	var g *Gauge
	g.Set(3)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge must be inert")
	}
	var h *Histogram
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram must be inert")
	}
	var m *Metrics
	if m.Counter("x", "") != nil || m.Gauge("y", "") != nil || m.Histogram("z", "", nil) != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	if err := m.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}

// Record must not allocate once the ring is warm: the hot wire path
// records spans per job and the zero-alloc property of PR 2 must hold
// with tracing enabled.
func TestTracerRecordZeroAlloc(t *testing.T) {
	tr := NewTracer(64)
	e := tr.Epoch()
	allocs := testing.AllocsPerRun(200, func() {
		tr.Record("uplink", "upload", 3, e, e.Add(time.Millisecond))
	})
	if allocs != 0 {
		t.Errorf("Record allocates %.1f times per call, want 0", allocs)
	}
}

func TestChromeTraceExport(t *testing.T) {
	tr := NewTracer(16)
	e := tr.Epoch()
	// Two overlapping spans on one track must land on distinct lanes.
	tr.Record("uplink", "queue-wait", 1, e, e.Add(10*time.Millisecond))
	tr.Record("uplink", "upload", 2, e.Add(5*time.Millisecond), e.Add(8*time.Millisecond))
	tr.Record("mobile", "local-compute", 1, e, e.Add(2*time.Millisecond))
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	var xEvents, meta int
	tids := map[string]int{}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			xEvents++
			tids[ev.Name] = ev.Tid
		case "M":
			meta++
		}
	}
	if xEvents != 3 {
		t.Fatalf("got %d X events, want 3", xEvents)
	}
	if meta < 3 { // uplink, uplink#2, mobile
		t.Fatalf("got %d metadata events, want >= 3 (overlap must open a second lane)", meta)
	}
	if tids["queue-wait"] == tids["upload"] {
		t.Error("overlapping spans share a tid; viewers will clip them")
	}
}

func TestTracerWriteJSON(t *testing.T) {
	tr := NewTracer(4)
	e := tr.Epoch()
	tr.Record("mobile", "local-compute", 0, e, e.Add(time.Millisecond))
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Epoch   string `json:"epoch"`
		Dropped int64  `json:"dropped"`
		Spans   []Span `json:"spans"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Spans) != 1 || doc.Spans[0].Name != "local-compute" {
		t.Fatalf("bad JSON dump: %+v", doc)
	}
}

// ReadJSON must invert WriteJSON exactly: same epoch, drop count, and
// spans — the contract the trace-regression corpus depends on.
func TestTracerJSONRoundTrip(t *testing.T) {
	tr := NewTracer(4)
	e := tr.Epoch()
	tr.Record("mobile", "local-compute", 0, e, e.Add(time.Millisecond))
	tr.Record("uplink", "upload", 0, e.Add(time.Millisecond), e.Add(3*time.Millisecond))
	tr.Record("cloud", "cloud-compute", 0, e.Add(3*time.Millisecond), e.Add(4*time.Millisecond))
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	d, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Epoch.Equal(tr.Epoch()) || d.Dropped != 0 {
		t.Errorf("epoch/dropped mismatch: %+v", d)
	}
	want := tr.Spans()
	if len(d.Spans) != len(want) {
		t.Fatalf("got %d spans, want %d", len(d.Spans), len(want))
	}
	for i := range want {
		if d.Spans[i] != want[i] {
			t.Errorf("span %d: %+v, want %+v", i, d.Spans[i], want[i])
		}
	}
	if _, err := ReadJSON(bytes.NewReader([]byte("{"))); err == nil {
		t.Error("truncated dump must error")
	}
}

func TestMetricsPrometheusExposition(t *testing.T) {
	m := NewMetrics()
	c := m.Counter("jps_jobs_completed_total", "jobs that finished")
	c.Add(3)
	g := m.Gauge("jps_workers_busy", "current pool occupancy")
	g.Set(2)
	g.Add(-1)
	h := m.Histogram("jps_reply_latency_ms", "reply latency", []float64{1, 10, 100})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(5000)

	var buf bytes.Buffer
	if err := m.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE jps_jobs_completed_total counter",
		"jps_jobs_completed_total 3",
		"# TYPE jps_workers_busy gauge",
		"jps_workers_busy 1",
		"# TYPE jps_reply_latency_ms histogram",
		`jps_reply_latency_ms_bucket{le="1"} 1`,
		`jps_reply_latency_ms_bucket{le="10"} 2`,
		`jps_reply_latency_ms_bucket{le="100"} 2`,
		`jps_reply_latency_ms_bucket{le="+Inf"} 3`,
		"jps_reply_latency_ms_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestMetricsIdempotentRegistration(t *testing.T) {
	m := NewMetrics()
	a := m.Counter("x_total", "")
	b := m.Counter("x_total", "")
	if a != b {
		t.Fatal("same name must return the same counter")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch must panic")
		}
	}()
	m.Gauge("x_total", "")
}

func TestHistogramBucketEdges(t *testing.T) {
	h := NewHistogram([]float64{10})
	h.Observe(10) // le="10" includes the boundary
	if got := h.counts[0].Load(); got != 1 {
		t.Fatalf("boundary observation landed in bucket +Inf (got %d in le=10)", got)
	}
	if h.Sum() != 10 || h.Count() != 1 {
		t.Fatalf("sum/count = %g/%d", h.Sum(), h.Count())
	}
}

func TestMetricsHandler(t *testing.T) {
	m := NewMetrics()
	m.Counter("up_total", "").Inc()
	rec := httptest.NewRecorder()
	m.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "up_total 1") {
		t.Errorf("body missing metric:\n%s", rec.Body.String())
	}
}

func TestCounterVecLabeledExposition(t *testing.T) {
	m := NewMetrics()
	v := m.CounterVec("jps_tenant_jobs_total", "per-tenant jobs", "tenant")
	v.With("gold").Add(3)
	v.With("bronze").Inc()
	v.With("gold").Inc() // same child, not a new sample

	if got := v.Values(); got["gold"] != 4 || got["bronze"] != 1 {
		t.Errorf("Values() = %v, want gold:4 bronze:1", got)
	}
	// Re-registration returns the same family.
	if m.CounterVec("jps_tenant_jobs_total", "per-tenant jobs", "tenant").With("gold").Value() != 4 {
		t.Error("re-registered vec lost its children")
	}

	var buf bytes.Buffer
	if err := m.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE jps_tenant_jobs_total counter",
		`jps_tenant_jobs_total{tenant="gold"} 4`,
		`jps_tenant_jobs_total{tenant="bronze"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// First-use order is the exposition order.
	if strings.Index(out, `tenant="gold"`) > strings.Index(out, `tenant="bronze"`) {
		t.Errorf("labeled samples not in first-use order:\n%s", out)
	}
}

func TestCounterVecNilSafe(t *testing.T) {
	var m *Metrics
	v := m.CounterVec("x", "", "l")
	v.With("a").Inc() // all no-ops
	if v.Values() != nil {
		t.Error("nil vec must snapshot nil")
	}
	var v2 *CounterVec
	v2.With("b").Add(5)
}

func TestCounterVecKindConflictPanics(t *testing.T) {
	m := NewMetrics()
	m.Counter("jps_plain_total", "")
	func() {
		defer func() {
			if recover() == nil {
				t.Error("labeled registration over a plain counter must panic")
			}
		}()
		m.CounterVec("jps_plain_total", "", "tenant")
	}()
	m.CounterVec("jps_labeled_total", "", "tenant")
	func() {
		defer func() {
			if recover() == nil {
				t.Error("plain registration over a labeled counter must panic")
			}
		}()
		m.Counter("jps_labeled_total", "")
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("re-registration with a different label must panic")
			}
		}()
		m.CounterVec("jps_labeled_total", "", "model")
	}()
}
