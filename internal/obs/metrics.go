package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. All methods are safe
// on a nil receiver, so un-instrumented code paths cost one branch.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative n is ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Value reads the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 that can go up and down (worker occupancy,
// measured bandwidth). Nil-safe like Counter.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds delta atomically (CAS loop).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value reads the gauge.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// DefaultLatencyBuckets covers sub-millisecond pipe turnarounds up to
// multi-second degraded-link round trips (milliseconds).
var DefaultLatencyBuckets = []float64{0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000}

// BatchSizeBuckets resolves integer group sizes across the coalescer's
// full 1–128 operating range. The latency buckets saturate at small
// sizes (everything past 13 jobs lands in one bucket and sizes 1–2
// share a bucket with fractional bounds); these bounds keep one bucket
// per interesting size at the small end and roughly geometric steps up
// to the largest configurable group.
var BatchSizeBuckets = []float64{1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128}

// Histogram is a fixed-bucket histogram (cumulative on exposition,
// like Prometheus expects). Observations are lock-free.
type Histogram struct {
	bounds []float64 // upper bounds, ascending; +Inf implicit
	counts []atomic.Int64
	sum    atomic.Uint64 // float64 bits
	count  atomic.Int64
}

// NewHistogram builds a histogram with the given ascending upper
// bounds (nil means DefaultLatencyBuckets).
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBuckets
	}
	h := &Histogram{bounds: append([]float64(nil), bounds...)}
	h.counts = make([]atomic.Int64, len(bounds)+1)
	return h
}

// Observe records one sample. Nil-safe.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// CounterVec is a counter family with one label dimension (e.g. a
// per-tenant job count). Children are created on first use and exposed
// as labeled samples of one Prometheus family. Nil-safe like Counter:
// a nil vec hands out nil *Counter children, which are no-ops.
type CounterVec struct {
	label string
	mu    sync.Mutex
	byVal map[string]*Counter
	order []string // exposition order = first-use order, deterministic per run
}

// With returns the child counter for one label value, creating it on
// first use.
func (v *CounterVec) With(value string) *Counter {
	if v == nil {
		return nil
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.byVal[value]
	if !ok {
		c = &Counter{}
		v.byVal[value] = c
		v.order = append(v.order, value)
	}
	return c
}

// Values snapshots the vec as value -> count, for tests and reports.
func (v *CounterVec) Values() map[string]int64 {
	if v == nil {
		return nil
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make(map[string]int64, len(v.byVal))
	for val, c := range v.byVal {
		out[val] = c.Value()
	}
	return out
}

// metric kinds for exposition.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// family is one registered metric with its metadata.
type family struct {
	name, help, kind string
	c                *Counter
	g                *Gauge
	h                *Histogram
	cv               *CounterVec
}

// Metrics is an ordered registry. Registration methods return the
// existing instrument when the name is already taken (same-kind), so
// independent components can share one registry idempotently. A nil
// registry hands out nil instruments, which are themselves no-ops.
type Metrics struct {
	mu     sync.Mutex
	fams   []*family
	byName map[string]*family
}

// NewMetrics builds an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{byName: map[string]*family{}}
}

func (m *Metrics) lookup(name, help, kind string) *family {
	m.mu.Lock()
	defer m.mu.Unlock()
	if f, ok := m.byName[name]; ok {
		if f.kind != kind {
			panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.kind, kind))
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind}
	m.fams = append(m.fams, f)
	m.byName[name] = f
	return f
}

// Counter registers (or fetches) a counter.
func (m *Metrics) Counter(name, help string) *Counter {
	if m == nil {
		return nil
	}
	f := m.lookup(name, help, kindCounter)
	if f.cv != nil {
		panic(fmt.Sprintf("obs: metric %q registered as labeled counter, requested plain", name))
	}
	if f.c == nil {
		f.c = &Counter{}
	}
	return f.c
}

// CounterVec registers (or fetches) a one-label counter family.
func (m *Metrics) CounterVec(name, help, label string) *CounterVec {
	if m == nil {
		return nil
	}
	f := m.lookup(name, help, kindCounter)
	if f.c != nil {
		panic(fmt.Sprintf("obs: metric %q registered as plain counter, requested labeled", name))
	}
	if f.cv == nil {
		f.cv = &CounterVec{label: label, byVal: map[string]*Counter{}}
	} else if f.cv.label != label {
		panic(fmt.Sprintf("obs: metric %q registered with label %q, requested %q", name, f.cv.label, label))
	}
	return f.cv
}

// Gauge registers (or fetches) a gauge.
func (m *Metrics) Gauge(name, help string) *Gauge {
	if m == nil {
		return nil
	}
	f := m.lookup(name, help, kindGauge)
	if f.g == nil {
		f.g = &Gauge{}
	}
	return f.g
}

// Histogram registers (or fetches) a histogram with the given bucket
// upper bounds (nil = DefaultLatencyBuckets).
func (m *Metrics) Histogram(name, help string, bounds []float64) *Histogram {
	if m == nil {
		return nil
	}
	f := m.lookup(name, help, kindHistogram)
	if f.h == nil {
		f.h = NewHistogram(bounds)
	}
	return f.h
}

// WritePrometheus renders the registry in Prometheus text exposition
// format (version 0.0.4), in registration order.
func (m *Metrics) WritePrometheus(w io.Writer) error {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	fams := append([]*family(nil), m.fams...)
	m.mu.Unlock()
	for _, f := range fams {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		var err error
		switch f.kind {
		case kindCounter:
			if f.cv != nil {
				f.cv.mu.Lock()
				vals := append([]string(nil), f.cv.order...)
				f.cv.mu.Unlock()
				for _, val := range vals {
					if _, err = fmt.Fprintf(w, "%s{%s=%q} %d\n", f.name, f.cv.label, val, f.cv.With(val).Value()); err != nil {
						return err
					}
				}
				break
			}
			_, err = fmt.Fprintf(w, "%s %d\n", f.name, f.c.Value())
		case kindGauge:
			_, err = fmt.Fprintf(w, "%s %s\n", f.name, formatFloat(f.g.Value()))
		case kindHistogram:
			var cum int64
			for i, b := range f.h.bounds {
				cum += f.h.counts[i].Load()
				if _, err = fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", f.name, formatFloat(b), cum); err != nil {
					return err
				}
			}
			cum += f.h.counts[len(f.h.bounds)].Load()
			if _, err = fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", f.name, cum); err != nil {
				return err
			}
			if _, err = fmt.Fprintf(w, "%s_sum %s\n", f.name, formatFloat(f.h.Sum())); err != nil {
				return err
			}
			_, err = fmt.Fprintf(w, "%s_count %d\n", f.name, f.h.Count())
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Handler serves the registry as a Prometheus scrape endpoint.
func (m *Metrics) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = m.WritePrometheus(w)
	})
}
