package nn

import (
	"strings"
	"testing"
	"testing/quick"

	"dnnjps/internal/tensor"
)

func shapeOf(t *testing.T, l Layer, ins ...tensor.Shape) tensor.Shape {
	t.Helper()
	out, err := l.OutputShape(ins)
	if err != nil {
		t.Fatalf("%s.OutputShape(%v): %v", l.Name(), ins, err)
	}
	return out
}

func TestInputLayer(t *testing.T) {
	in := &Input{LayerName: "input", Shape: tensor.NewCHW(3, 224, 224)}
	out := shapeOf(t, in)
	if !out.Equal(tensor.NewCHW(3, 224, 224)) {
		t.Errorf("output = %v", out)
	}
	if _, err := in.OutputShape([]tensor.Shape{tensor.NewVec(1)}); err == nil {
		t.Error("input layer must reject inputs")
	}
	if in.FLOPs(nil) != 0 || in.ParamCount(nil) != 0 {
		t.Error("input layer must be free")
	}
	if in.Kind() != KindInput {
		t.Errorf("kind = %v", in.Kind())
	}
}

func TestConv2DShape(t *testing.T) {
	// AlexNet conv1: 96 kernels 11x11 stride 4 on 3x227x227 -> 96x55x55.
	conv := &Conv2D{LayerName: "conv1", OutC: 96, KH: 11, KW: 11, Stride: 4, Pad: 0, Bias: true}
	out := shapeOf(t, conv, tensor.NewCHW(3, 227, 227))
	if !out.Equal(tensor.NewCHW(96, 55, 55)) {
		t.Errorf("conv1 output = %v, want [96x55x55]", out)
	}
}

func TestConv2DPadding(t *testing.T) {
	// Same-padding 3x3 conv preserves spatial dims.
	conv := &Conv2D{LayerName: "c", OutC: 64, KH: 3, KW: 3, Stride: 1, Pad: 1}
	out := shapeOf(t, conv, tensor.NewCHW(32, 56, 56))
	if !out.Equal(tensor.NewCHW(64, 56, 56)) {
		t.Errorf("output = %v, want [64x56x56]", out)
	}
}

func TestConv2DFLOPs(t *testing.T) {
	conv := &Conv2D{LayerName: "c", OutC: 96, KH: 11, KW: 11, Stride: 4}
	in := []tensor.Shape{tensor.NewCHW(3, 227, 227)}
	want := 2.0 * 11 * 11 * 3 * 96 * 55 * 55
	if got := conv.FLOPs(in); got != want {
		t.Errorf("FLOPs = %g, want %g", got, want)
	}
}

func TestConv2DParams(t *testing.T) {
	conv := &Conv2D{LayerName: "c", OutC: 96, KH: 11, KW: 11, Stride: 4, Bias: true}
	in := []tensor.Shape{tensor.NewCHW(3, 227, 227)}
	want := int64(96*11*11*3 + 96)
	if got := conv.ParamCount(in); got != want {
		t.Errorf("ParamCount = %d, want %d", got, want)
	}
}

func TestConv2DGrouped(t *testing.T) {
	conv := &Conv2D{LayerName: "g", OutC: 64, KH: 3, KW: 3, Stride: 1, Pad: 1, Groups: 4}
	in := []tensor.Shape{tensor.NewCHW(32, 14, 14)}
	out := shapeOf(t, conv, in[0])
	if !out.Equal(tensor.NewCHW(64, 14, 14)) {
		t.Errorf("output = %v", out)
	}
	// Grouped conv FLOPs are 1/groups of the dense equivalent.
	dense := &Conv2D{LayerName: "d", OutC: 64, KH: 3, KW: 3, Stride: 1, Pad: 1}
	if got, want := conv.FLOPs(in), dense.FLOPs(in)/4; got != want {
		t.Errorf("grouped FLOPs = %g, want %g", got, want)
	}
}

func TestConv2DErrors(t *testing.T) {
	conv := &Conv2D{LayerName: "c", OutC: 64, KH: 3, KW: 3, Stride: 1, Groups: 5}
	if _, err := conv.OutputShape([]tensor.Shape{tensor.NewCHW(32, 14, 14)}); err == nil {
		t.Error("groups not dividing channels must error")
	}
	big := &Conv2D{LayerName: "c", OutC: 8, KH: 9, KW: 9, Stride: 1}
	if _, err := big.OutputShape([]tensor.Shape{tensor.NewCHW(3, 4, 4)}); err == nil {
		t.Error("kernel larger than input must error")
	}
	if _, err := big.OutputShape([]tensor.Shape{tensor.NewVec(48)}); err == nil {
		t.Error("vector input must error")
	}
	if _, err := big.OutputShape(nil); err == nil {
		t.Error("missing input must error")
	}
	if big.FLOPs(nil) != 0 || big.ParamCount(nil) != 0 {
		t.Error("invalid inputs must cost 0")
	}
}

func TestDepthwiseConv(t *testing.T) {
	dw := &DepthwiseConv2D{LayerName: "dw", KH: 3, KW: 3, Stride: 2, Pad: 1}
	in := []tensor.Shape{tensor.NewCHW(144, 56, 56)}
	out := shapeOf(t, dw, in[0])
	if !out.Equal(tensor.NewCHW(144, 28, 28)) {
		t.Errorf("output = %v, want [144x28x28]", out)
	}
	want := 2.0 * 3 * 3 * 144 * 28 * 28
	if got := dw.FLOPs(in); got != want {
		t.Errorf("FLOPs = %g, want %g", got, want)
	}
	if got := dw.ParamCount(in); got != int64(144*3*3) {
		t.Errorf("ParamCount = %d", got)
	}
}

func TestMaxPool(t *testing.T) {
	p := NewMaxPool2D("pool1", 3, 2, 0)
	out := shapeOf(t, p, tensor.NewCHW(96, 55, 55))
	if !out.Equal(tensor.NewCHW(96, 27, 27)) {
		t.Errorf("output = %v, want [96x27x27]", out)
	}
	if p.Kind() != KindMaxPool {
		t.Errorf("kind = %v", p.Kind())
	}
	if p.ParamCount(nil) != 0 {
		t.Error("pool has no params")
	}
}

func TestAvgPoolAndGlobalAvgPool(t *testing.T) {
	p := NewAvgPool2D("ap", 2, 2, 0)
	out := shapeOf(t, p, tensor.NewCHW(16, 8, 8))
	if !out.Equal(tensor.NewCHW(16, 4, 4)) {
		t.Errorf("avgpool output = %v", out)
	}
	g := &GlobalAvgPool2D{LayerName: "gap"}
	out = shapeOf(t, g, tensor.NewCHW(512, 7, 7))
	if !out.Equal(tensor.NewVec(512)) {
		t.Errorf("gap output = %v, want [512]", out)
	}
	if g.FLOPs([]tensor.Shape{tensor.NewCHW(512, 7, 7)}) != 512*7*7 {
		t.Error("gap FLOPs should equal input elems")
	}
}

func TestPoolRejectsEmptyOutput(t *testing.T) {
	p := NewMaxPool2D("p", 9, 1, 0)
	if _, err := p.OutputShape([]tensor.Shape{tensor.NewCHW(3, 4, 4)}); err == nil {
		t.Error("pool kernel larger than input must error")
	}
}

func TestDense(t *testing.T) {
	d := &Dense{LayerName: "fc6", Out: 4096, Bias: true}
	// Accepts CHW input (implicit flatten).
	out := shapeOf(t, d, tensor.NewCHW(256, 6, 6))
	if !out.Equal(tensor.NewVec(4096)) {
		t.Errorf("output = %v", out)
	}
	in := []tensor.Shape{tensor.NewCHW(256, 6, 6)}
	if got, want := d.FLOPs(in), 2.0*256*6*6*4096; got != want {
		t.Errorf("FLOPs = %g, want %g", got, want)
	}
	if got, want := d.ParamCount(in), int64(256*6*6*4096+4096); got != want {
		t.Errorf("ParamCount = %d, want %d", got, want)
	}
}

func TestDenseErrors(t *testing.T) {
	d := &Dense{LayerName: "fc", Out: 0}
	if _, err := d.OutputShape([]tensor.Shape{tensor.NewVec(10)}); err == nil {
		t.Error("zero output size must error")
	}
	d2 := &Dense{LayerName: "fc", Out: 10}
	if _, err := d2.OutputShape([]tensor.Shape{{}}); err == nil {
		t.Error("empty input must error")
	}
}

func TestFlatten(t *testing.T) {
	f := &Flatten{LayerName: "flat"}
	out := shapeOf(t, f, tensor.NewCHW(256, 6, 6))
	if !out.Equal(tensor.NewVec(256 * 6 * 6)) {
		t.Errorf("output = %v", out)
	}
	if f.FLOPs(nil) != 0 {
		t.Error("flatten is free")
	}
}

func TestActivationVariants(t *testing.T) {
	in := []tensor.Shape{tensor.NewCHW(8, 4, 4)}
	relu := NewActivation("r", ReLU)
	sig := NewActivation("s", Sigmoid)
	if relu.FLOPs(in) >= sig.FLOPs(in) {
		t.Error("sigmoid should cost more than relu")
	}
	out := shapeOf(t, relu, in[0])
	if !out.Equal(in[0]) {
		t.Error("activation must preserve shape")
	}
	for _, fn := range []ActFunc{ReLU, ReLU6, Sigmoid, Tanh} {
		if strings.Contains(fn.String(), "(") {
			t.Errorf("missing name for %d", fn)
		}
	}
}

func TestBatchNorm(t *testing.T) {
	bn := NewBatchNorm("bn1")
	in := []tensor.Shape{tensor.NewCHW(64, 56, 56)}
	out := shapeOf(t, bn, in[0])
	if !out.Equal(in[0]) {
		t.Error("bn must preserve shape")
	}
	if bn.ParamCount(in) != 128 {
		t.Errorf("bn params = %d, want 128", bn.ParamCount(in))
	}
}

func TestLRNDropoutSoftmax(t *testing.T) {
	lrn := NewLRN("lrn", 5)
	in := []tensor.Shape{tensor.NewCHW(96, 27, 27)}
	if got := lrn.FLOPs(in); got != 10.0*96*27*27 {
		t.Errorf("lrn FLOPs = %g", got)
	}
	do := NewDropout("do", 0.5)
	if do.FLOPs(in) != 0 {
		t.Error("dropout is free at inference")
	}
	sm := NewSoftmax("sm")
	vec := []tensor.Shape{tensor.NewVec(1000)}
	out := shapeOf(t, sm, vec[0])
	if !out.Equal(tensor.NewVec(1000)) {
		t.Errorf("softmax output = %v", out)
	}
}

func TestConcat(t *testing.T) {
	c := &Concat{LayerName: "cat"}
	out := shapeOf(t, c,
		tensor.NewCHW(64, 28, 28), tensor.NewCHW(128, 28, 28), tensor.NewCHW(32, 28, 28))
	if !out.Equal(tensor.NewCHW(224, 28, 28)) {
		t.Errorf("output = %v, want [224x28x28]", out)
	}
	if _, err := c.OutputShape([]tensor.Shape{tensor.NewCHW(64, 28, 28), tensor.NewCHW(64, 14, 14)}); err == nil {
		t.Error("mismatched spatial dims must error")
	}
	if _, err := c.OutputShape(nil); err == nil {
		t.Error("no inputs must error")
	}
	if _, err := c.OutputShape([]tensor.Shape{tensor.NewVec(5)}); err == nil {
		t.Error("vector input must error")
	}
}

func TestAdd(t *testing.T) {
	a := &Add{LayerName: "add"}
	s := tensor.NewCHW(64, 56, 56)
	out := shapeOf(t, a, s, s)
	if !out.Equal(s) {
		t.Errorf("output = %v", out)
	}
	if got := a.FLOPs([]tensor.Shape{s, s, s}); got != 2.0*float64(s.Elems()) {
		t.Errorf("3-way add FLOPs = %g", got)
	}
	if _, err := a.OutputShape([]tensor.Shape{s}); err == nil {
		t.Error("single-input add must error")
	}
	if _, err := a.OutputShape([]tensor.Shape{s, tensor.NewCHW(64, 56, 28)}); err == nil {
		t.Error("mismatched shapes must error")
	}
}

func TestKindString(t *testing.T) {
	for k := KindInput; k <= KindSoftmax; k++ {
		if strings.Contains(k.String(), "(") {
			t.Errorf("kind %d has no name", k)
		}
	}
	if Kind(999).String() != "kind(999)" {
		t.Error("unknown kind string")
	}
}

// Property: conv output spatial dims follow the standard formula and
// FLOPs scale exactly with output channels.
func TestConvShapeProperty(t *testing.T) {
	f := func(k8, s8, p8 uint8) bool {
		k := int(k8)%5 + 1
		s := int(s8)%3 + 1
		p := int(p8) % 3
		in := tensor.NewCHW(3, 32, 32)
		c1 := &Conv2D{LayerName: "a", OutC: 8, KH: k, KW: k, Stride: s, Pad: p}
		c2 := &Conv2D{LayerName: "b", OutC: 16, KH: k, KW: k, Stride: s, Pad: p}
		o, err := c1.OutputShape([]tensor.Shape{in})
		if err != nil {
			return true // geometrically invalid configs are fine to skip
		}
		wantH := (32+2*p-k)/s + 1
		if o.H() != wantH || o.W() != wantH || o.C() != 8 {
			return false
		}
		return c2.FLOPs([]tensor.Shape{in}) == 2*c1.FLOPs([]tensor.Shape{in})
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: pooling never increases any dimension.
func TestPoolShrinksProperty(t *testing.T) {
	f := func(k8, s8 uint8) bool {
		k := int(k8)%4 + 1
		s := int(s8)%3 + 1
		in := tensor.NewCHW(16, 30, 30)
		p := NewMaxPool2D("p", k, s, 0)
		o, err := p.OutputShape([]tensor.Shape{in})
		if err != nil {
			return true
		}
		return o.C() == 16 && o.H() <= 30 && o.W() <= 30
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
