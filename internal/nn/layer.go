// Package nn is the layer library underlying the model zoo. Each layer
// knows how to infer its output shape from input shapes and how to
// report its computational weight (FLOPs) and parameter count. The
// profiler (internal/profile) turns those into per-device latencies;
// the engine (internal/engine) executes a numeric forward pass for the
// subset of layers the runtime needs.
package nn

import (
	"fmt"

	"dnnjps/internal/tensor"
)

// Kind classifies a layer for cost modeling: devices have different
// effective throughput per kind (convolutions are compute-bound,
// dense layers memory-bound, pooling cheap, ...).
type Kind int

const (
	KindInput Kind = iota
	KindConv
	KindDepthwiseConv
	KindMaxPool
	KindAvgPool
	KindGlobalAvgPool
	KindDense
	KindActivation
	KindBatchNorm
	KindLRN
	KindDropout
	KindFlatten
	KindConcat
	KindAdd
	KindSoftmax
)

var kindNames = map[Kind]string{
	KindInput:         "input",
	KindConv:          "conv",
	KindDepthwiseConv: "dwconv",
	KindMaxPool:       "maxpool",
	KindAvgPool:       "avgpool",
	KindGlobalAvgPool: "gavgpool",
	KindDense:         "dense",
	KindActivation:    "act",
	KindBatchNorm:     "bn",
	KindLRN:           "lrn",
	KindDropout:       "dropout",
	KindFlatten:       "flatten",
	KindConcat:        "concat",
	KindAdd:           "add",
	KindSoftmax:       "softmax",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Layer is the common contract of all DNN layers. Inputs are the
// shapes of all incoming tensors in graph order; most layers accept
// exactly one input, Concat and Add accept several.
type Layer interface {
	// Name is a human-readable identifier, unique within a model.
	Name() string
	// Kind classifies the layer for cost modeling.
	Kind() Kind
	// OutputShape infers the output tensor shape from the inputs or
	// returns an error when the inputs are incompatible.
	OutputShape(inputs []tensor.Shape) (tensor.Shape, error)
	// FLOPs estimates the floating-point operations needed to compute
	// the layer's output for the given inputs (multiply-accumulate
	// counted as two operations). Returns 0 for incompatible inputs.
	FLOPs(inputs []tensor.Shape) float64
	// ParamCount is the number of learned parameters for the given
	// inputs (convolution weights depend on the input channel count).
	// Returns 0 for incompatible inputs.
	ParamCount(inputs []tensor.Shape) int64
}

// one extracts the single input shape or errors.
func one(name string, inputs []tensor.Shape) (tensor.Shape, error) {
	if len(inputs) != 1 {
		return nil, fmt.Errorf("nn: layer %q expects exactly 1 input, got %d", name, len(inputs))
	}
	return inputs[0], nil
}

// chw extracts the single CHW input shape or errors.
func chw(name string, inputs []tensor.Shape) (tensor.Shape, error) {
	in, err := one(name, inputs)
	if err != nil {
		return nil, err
	}
	if in.Rank() != 3 {
		return nil, fmt.Errorf("nn: layer %q expects a CHW input, got %v", name, in)
	}
	return in, nil
}

// Input is the source pseudo-layer: it emits the model input tensor
// and costs nothing.
type Input struct {
	LayerName string
	Shape     tensor.Shape
}

func (l *Input) Name() string { return l.LayerName }
func (l *Input) Kind() Kind   { return KindInput }
func (l *Input) OutputShape(inputs []tensor.Shape) (tensor.Shape, error) {
	if len(inputs) != 0 {
		return nil, fmt.Errorf("nn: input layer %q takes no inputs, got %d", l.LayerName, len(inputs))
	}
	return l.Shape.Clone(), nil
}
func (l *Input) FLOPs([]tensor.Shape) float64    { return 0 }
func (l *Input) ParamCount([]tensor.Shape) int64 { return 0 }

// convOut computes one spatial output dimension.
func convOut(in, kernel, stride, pad int) int {
	return (in+2*pad-kernel)/stride + 1
}
