package nn

import (
	"fmt"

	"dnnjps/internal/tensor"
)

// Dense is a fully connected layer. It accepts either a feature vector
// or a CHW activation (implicitly flattened, as frameworks do when a
// classifier head follows a convolutional trunk).
type Dense struct {
	LayerName string
	Out       int
	Bias      bool
}

func (l *Dense) Name() string { return l.LayerName }
func (l *Dense) Kind() Kind   { return KindDense }

func (l *Dense) OutputShape(inputs []tensor.Shape) (tensor.Shape, error) {
	in, err := one(l.LayerName, inputs)
	if err != nil {
		return nil, err
	}
	if in.Elems() == 0 {
		return nil, fmt.Errorf("nn: dense %q has empty input %v", l.LayerName, in)
	}
	if l.Out <= 0 {
		return nil, fmt.Errorf("nn: dense %q has non-positive output size %d", l.LayerName, l.Out)
	}
	return tensor.NewVec(l.Out), nil
}

func (l *Dense) FLOPs(inputs []tensor.Shape) float64 {
	if _, err := l.OutputShape(inputs); err != nil {
		return 0
	}
	return 2 * float64(inputs[0].Elems()) * float64(l.Out)
}

func (l *Dense) ParamCount(inputs []tensor.Shape) int64 {
	if _, err := l.OutputShape(inputs); err != nil {
		return 0
	}
	p := int64(inputs[0].Elems()) * int64(l.Out)
	if l.Bias {
		p += int64(l.Out)
	}
	return p
}

// Flatten reshapes a CHW activation into a feature vector. It is a
// zero-cost layer kept explicit so cut-points around classifier heads
// line up with the paper's layer indexing.
type Flatten struct {
	LayerName string
}

func (l *Flatten) Name() string { return l.LayerName }
func (l *Flatten) Kind() Kind   { return KindFlatten }

func (l *Flatten) OutputShape(inputs []tensor.Shape) (tensor.Shape, error) {
	in, err := one(l.LayerName, inputs)
	if err != nil {
		return nil, err
	}
	return tensor.NewVec(in.Elems()), nil
}

func (l *Flatten) FLOPs([]tensor.Shape) float64    { return 0 }
func (l *Flatten) ParamCount([]tensor.Shape) int64 { return 0 }
