package nn

import (
	"fmt"

	"dnnjps/internal/tensor"
)

// Conv2D is a standard (optionally grouped) 2-D convolution. Padding
// is symmetric per axis: Pad applies to both height and width unless
// PadH/PadW override it — rectangular kernels (Inception-v4's 1x3 and
// 3x1 factorized convolutions) need per-axis padding to preserve
// spatial dims.
type Conv2D struct {
	LayerName  string
	OutC       int // output channels
	KH, KW     int // kernel size
	Stride     int
	Pad        int
	PadH, PadW int  // per-axis overrides; see EffPadH/EffPadW
	Groups     int  // 1 = dense conv; InC = depthwise (use DepthwiseConv2D)
	Bias       bool // include a bias vector in the parameter count
}

func (l *Conv2D) Name() string { return l.LayerName }
func (l *Conv2D) Kind() Kind   { return KindConv }

func (l *Conv2D) groups() int {
	if l.Groups <= 0 {
		return 1
	}
	return l.Groups
}

// EffPadH and EffPadW resolve the per-axis padding: an explicit
// PadH/PadW wins (use -1 for an explicit zero when Pad is nonzero),
// otherwise Pad applies to both axes.
func (l *Conv2D) EffPadH() int { return resolvePad(l.PadH, l.Pad) }
func (l *Conv2D) EffPadW() int { return resolvePad(l.PadW, l.Pad) }

func resolvePad(override, base int) int {
	switch {
	case override < 0:
		return 0
	case override > 0:
		return override
	default:
		return base
	}
}

func (l *Conv2D) OutputShape(inputs []tensor.Shape) (tensor.Shape, error) {
	in, err := chw(l.LayerName, inputs)
	if err != nil {
		return nil, err
	}
	g := l.groups()
	if in.C()%g != 0 || l.OutC%g != 0 {
		return nil, fmt.Errorf("nn: conv %q groups=%d does not divide inC=%d/outC=%d",
			l.LayerName, g, in.C(), l.OutC)
	}
	oh := convOut(in.H(), l.KH, l.Stride, l.EffPadH())
	ow := convOut(in.W(), l.KW, l.Stride, l.EffPadW())
	if oh <= 0 || ow <= 0 {
		return nil, fmt.Errorf("nn: conv %q produces empty output %dx%d from input %v",
			l.LayerName, oh, ow, in)
	}
	return tensor.NewCHW(l.OutC, oh, ow), nil
}

func (l *Conv2D) FLOPs(inputs []tensor.Shape) float64 {
	out, err := l.OutputShape(inputs)
	if err != nil {
		return 0
	}
	in := inputs[0]
	// 2 ops (mul+add) per kernel element per output element.
	perOut := 2 * float64(l.KH) * float64(l.KW) * float64(in.C()) / float64(l.groups())
	return perOut * float64(out.Elems())
}

func (l *Conv2D) ParamCount(inputs []tensor.Shape) int64 {
	in, err := chw(l.LayerName, inputs)
	if err != nil {
		return 0
	}
	g := int64(l.groups())
	p := int64(l.OutC) * int64(l.KH) * int64(l.KW) * int64(in.C()) / g
	if l.Bias {
		p += int64(l.OutC)
	}
	return p
}

// DepthwiseConv2D convolves each channel independently (groups = C),
// the workhorse of MobileNet-v2 bottleneck blocks.
type DepthwiseConv2D struct {
	LayerName string
	KH, KW    int
	Stride    int
	Pad       int
	Bias      bool
}

func (l *DepthwiseConv2D) Name() string { return l.LayerName }
func (l *DepthwiseConv2D) Kind() Kind   { return KindDepthwiseConv }

func (l *DepthwiseConv2D) OutputShape(inputs []tensor.Shape) (tensor.Shape, error) {
	in, err := chw(l.LayerName, inputs)
	if err != nil {
		return nil, err
	}
	oh := convOut(in.H(), l.KH, l.Stride, l.Pad)
	ow := convOut(in.W(), l.KW, l.Stride, l.Pad)
	if oh <= 0 || ow <= 0 {
		return nil, fmt.Errorf("nn: dwconv %q produces empty output %dx%d from input %v",
			l.LayerName, oh, ow, in)
	}
	return tensor.NewCHW(in.C(), oh, ow), nil
}

func (l *DepthwiseConv2D) FLOPs(inputs []tensor.Shape) float64 {
	out, err := l.OutputShape(inputs)
	if err != nil {
		return 0
	}
	return 2 * float64(l.KH) * float64(l.KW) * float64(out.Elems())
}

func (l *DepthwiseConv2D) ParamCount(inputs []tensor.Shape) int64 {
	in, err := chw(l.LayerName, inputs)
	if err != nil {
		return 0
	}
	p := int64(in.C()) * int64(l.KH) * int64(l.KW)
	if l.Bias {
		p += int64(in.C())
	}
	return p
}
