package nn

import (
	"fmt"

	"dnnjps/internal/tensor"
)

// Concat joins CHW inputs along the channel axis — the merge node of
// Inception modules and DenseNet-style blocks.
type Concat struct {
	LayerName string
}

func (l *Concat) Name() string { return l.LayerName }
func (l *Concat) Kind() Kind   { return KindConcat }

func (l *Concat) OutputShape(inputs []tensor.Shape) (tensor.Shape, error) {
	if len(inputs) < 1 {
		return nil, fmt.Errorf("nn: concat %q needs at least 1 input", l.LayerName)
	}
	first := inputs[0]
	if first.Rank() != 3 {
		return nil, fmt.Errorf("nn: concat %q expects CHW inputs, got %v", l.LayerName, first)
	}
	c := 0
	for i, in := range inputs {
		if in.Rank() != 3 {
			return nil, fmt.Errorf("nn: concat %q input %d is not CHW: %v", l.LayerName, i, in)
		}
		if in.H() != first.H() || in.W() != first.W() {
			return nil, fmt.Errorf("nn: concat %q input %d spatial %dx%d mismatches %dx%d",
				l.LayerName, i, in.H(), in.W(), first.H(), first.W())
		}
		c += in.C()
	}
	return tensor.NewCHW(c, first.H(), first.W()), nil
}

func (l *Concat) FLOPs(inputs []tensor.Shape) float64 {
	out, err := l.OutputShape(inputs)
	if err != nil {
		return 0
	}
	return float64(out.Elems()) // one copy per element
}

func (l *Concat) ParamCount([]tensor.Shape) int64 { return 0 }

// Add sums identically shaped inputs elementwise — the merge node of
// residual blocks.
type Add struct {
	LayerName string
}

func (l *Add) Name() string { return l.LayerName }
func (l *Add) Kind() Kind   { return KindAdd }

func (l *Add) OutputShape(inputs []tensor.Shape) (tensor.Shape, error) {
	if len(inputs) < 2 {
		return nil, fmt.Errorf("nn: add %q needs at least 2 inputs, got %d", l.LayerName, len(inputs))
	}
	first := inputs[0]
	for i, in := range inputs[1:] {
		if !in.Equal(first) {
			return nil, fmt.Errorf("nn: add %q input %d shape %v mismatches %v",
				l.LayerName, i+1, in, first)
		}
	}
	return first.Clone(), nil
}

func (l *Add) FLOPs(inputs []tensor.Shape) float64 {
	out, err := l.OutputShape(inputs)
	if err != nil {
		return 0
	}
	return float64(len(inputs)-1) * float64(out.Elems())
}

func (l *Add) ParamCount([]tensor.Shape) int64 { return 0 }
