package nn

import (
	"fmt"

	"dnnjps/internal/tensor"
)

// poolKind shares shape/FLOPs logic between max and average pooling.
type pool struct {
	LayerName string
	K         int // square kernel
	Stride    int
	Pad       int
}

func (l *pool) outputShape(inputs []tensor.Shape) (tensor.Shape, error) {
	in, err := chw(l.LayerName, inputs)
	if err != nil {
		return nil, err
	}
	oh := convOut(in.H(), l.K, l.Stride, l.Pad)
	ow := convOut(in.W(), l.K, l.Stride, l.Pad)
	if oh <= 0 || ow <= 0 {
		return nil, fmt.Errorf("nn: pool %q produces empty output %dx%d from input %v",
			l.LayerName, oh, ow, in)
	}
	return tensor.NewCHW(in.C(), oh, ow), nil
}

func (l *pool) flops(inputs []tensor.Shape) float64 {
	out, err := l.outputShape(inputs)
	if err != nil {
		return 0
	}
	// One comparison/accumulation per kernel element per output element.
	return float64(l.K) * float64(l.K) * float64(out.Elems())
}

// MaxPool2D is a square max-pooling layer.
type MaxPool2D struct{ pool }

// NewMaxPool2D builds a max pool with kernel k, stride s, padding p.
func NewMaxPool2D(name string, k, s, p int) *MaxPool2D {
	return &MaxPool2D{pool{LayerName: name, K: k, Stride: s, Pad: p}}
}

func (l *MaxPool2D) Name() string { return l.LayerName }
func (l *MaxPool2D) Kind() Kind   { return KindMaxPool }
func (l *MaxPool2D) OutputShape(inputs []tensor.Shape) (tensor.Shape, error) {
	return l.outputShape(inputs)
}
func (l *MaxPool2D) FLOPs(inputs []tensor.Shape) float64 { return l.flops(inputs) }
func (l *MaxPool2D) ParamCount([]tensor.Shape) int64     { return 0 }

// AvgPool2D is a square average-pooling layer.
type AvgPool2D struct{ pool }

// NewAvgPool2D builds an average pool with kernel k, stride s, padding p.
func NewAvgPool2D(name string, k, s, p int) *AvgPool2D {
	return &AvgPool2D{pool{LayerName: name, K: k, Stride: s, Pad: p}}
}

func (l *AvgPool2D) Name() string { return l.LayerName }
func (l *AvgPool2D) Kind() Kind   { return KindAvgPool }
func (l *AvgPool2D) OutputShape(inputs []tensor.Shape) (tensor.Shape, error) {
	return l.outputShape(inputs)
}
func (l *AvgPool2D) FLOPs(inputs []tensor.Shape) float64 { return l.flops(inputs) }
func (l *AvgPool2D) ParamCount([]tensor.Shape) int64     { return 0 }

// GlobalAvgPool2D reduces each channel to a single value, producing a
// feature vector — the standard head of MobileNet/ResNet/GoogLeNet.
type GlobalAvgPool2D struct {
	LayerName string
}

func (l *GlobalAvgPool2D) Name() string { return l.LayerName }
func (l *GlobalAvgPool2D) Kind() Kind   { return KindGlobalAvgPool }

func (l *GlobalAvgPool2D) OutputShape(inputs []tensor.Shape) (tensor.Shape, error) {
	in, err := chw(l.LayerName, inputs)
	if err != nil {
		return nil, err
	}
	return tensor.NewVec(in.C()), nil
}

func (l *GlobalAvgPool2D) FLOPs(inputs []tensor.Shape) float64 {
	in, err := chw(l.LayerName, inputs)
	if err != nil {
		return 0
	}
	return float64(in.Elems())
}

func (l *GlobalAvgPool2D) ParamCount([]tensor.Shape) int64 { return 0 }
