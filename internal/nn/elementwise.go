package nn

import (
	"fmt"

	"dnnjps/internal/tensor"
)

// ActFunc enumerates the supported activation functions.
type ActFunc int

const (
	ReLU ActFunc = iota
	ReLU6
	Sigmoid
	Tanh
)

func (a ActFunc) String() string {
	switch a {
	case ReLU:
		return "relu"
	case ReLU6:
		return "relu6"
	case Sigmoid:
		return "sigmoid"
	case Tanh:
		return "tanh"
	default:
		return fmt.Sprintf("act(%d)", int(a))
	}
}

// elementwise is the shared shape logic of 1-input, shape-preserving
// layers.
type elementwise struct {
	LayerName    string
	flopsPerElem float64
}

func (l *elementwise) outputShape(inputs []tensor.Shape) (tensor.Shape, error) {
	in, err := one(l.LayerName, inputs)
	if err != nil {
		return nil, err
	}
	return in.Clone(), nil
}

func (l *elementwise) flops(inputs []tensor.Shape) float64 {
	in, err := l.outputShape(inputs)
	if err != nil {
		return 0
	}
	return l.flopsPerElem * float64(in.Elems())
}

// Activation applies a pointwise nonlinearity.
type Activation struct {
	elementwise
	Func ActFunc
}

// NewActivation builds an activation layer.
func NewActivation(name string, fn ActFunc) *Activation {
	per := 1.0
	if fn == Sigmoid || fn == Tanh {
		per = 4 // exp evaluation is several ops
	}
	return &Activation{elementwise{LayerName: name, flopsPerElem: per}, fn}
}

func (l *Activation) Name() string { return l.LayerName }
func (l *Activation) Kind() Kind   { return KindActivation }
func (l *Activation) OutputShape(inputs []tensor.Shape) (tensor.Shape, error) {
	return l.outputShape(inputs)
}
func (l *Activation) FLOPs(inputs []tensor.Shape) float64 { return l.flops(inputs) }
func (l *Activation) ParamCount([]tensor.Shape) int64     { return 0 }

// BatchNorm normalizes channels with learned scale and shift
// (inference-mode: folded mean/var).
type BatchNorm struct {
	elementwise
}

// NewBatchNorm builds a batch-normalization layer.
func NewBatchNorm(name string) *BatchNorm {
	return &BatchNorm{elementwise{LayerName: name, flopsPerElem: 2}}
}

func (l *BatchNorm) Name() string { return l.LayerName }
func (l *BatchNorm) Kind() Kind   { return KindBatchNorm }
func (l *BatchNorm) OutputShape(inputs []tensor.Shape) (tensor.Shape, error) {
	return l.outputShape(inputs)
}
func (l *BatchNorm) FLOPs(inputs []tensor.Shape) float64 { return l.flops(inputs) }
func (l *BatchNorm) ParamCount(inputs []tensor.Shape) int64 {
	in, err := chw(l.LayerName, inputs)
	if err != nil {
		return 0
	}
	return 2 * int64(in.C()) // scale + shift per channel
}

// LRN is AlexNet's local response normalization.
type LRN struct {
	elementwise
	Size int // normalization window across channels
}

// NewLRN builds a local response normalization layer.
func NewLRN(name string, size int) *LRN {
	return &LRN{elementwise{LayerName: name, flopsPerElem: 2 * float64(size)}, size}
}

func (l *LRN) Name() string { return l.LayerName }
func (l *LRN) Kind() Kind   { return KindLRN }
func (l *LRN) OutputShape(inputs []tensor.Shape) (tensor.Shape, error) {
	return l.outputShape(inputs)
}
func (l *LRN) FLOPs(inputs []tensor.Shape) float64 { return l.flops(inputs) }
func (l *LRN) ParamCount([]tensor.Shape) int64     { return 0 }

// Dropout is an inference-time no-op kept in graphs so layer indices
// match published architectures.
type Dropout struct {
	elementwise
	Rate float64
}

// NewDropout builds a dropout layer (identity at inference).
func NewDropout(name string, rate float64) *Dropout {
	return &Dropout{elementwise{LayerName: name, flopsPerElem: 0}, rate}
}

func (l *Dropout) Name() string { return l.LayerName }
func (l *Dropout) Kind() Kind   { return KindDropout }
func (l *Dropout) OutputShape(inputs []tensor.Shape) (tensor.Shape, error) {
	return l.outputShape(inputs)
}
func (l *Dropout) FLOPs(inputs []tensor.Shape) float64 { return l.flops(inputs) }
func (l *Dropout) ParamCount([]tensor.Shape) int64     { return 0 }

// Softmax normalizes a vector of logits into class probabilities.
type Softmax struct {
	elementwise
}

// NewSoftmax builds a softmax layer.
func NewSoftmax(name string) *Softmax {
	return &Softmax{elementwise{LayerName: name, flopsPerElem: 5}}
}

func (l *Softmax) Name() string { return l.LayerName }
func (l *Softmax) Kind() Kind   { return KindSoftmax }
func (l *Softmax) OutputShape(inputs []tensor.Shape) (tensor.Shape, error) {
	return l.outputShape(inputs)
}
func (l *Softmax) FLOPs(inputs []tensor.Shape) float64 { return l.flops(inputs) }
func (l *Softmax) ParamCount([]tensor.Shape) int64     { return 0 }
