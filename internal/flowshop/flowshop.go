// Package flowshop implements the two-machine flow-shop scheduling
// theory of Section 4: after partitioning, every job is a pair of
// serial stages — mobile computation (stage A) then upload (stage B) —
// sharing one CPU and one uplink, pipelined across jobs. Johnson's
// rule gives the makespan-optimal permutation (Alg. 1); the package
// also provides the exact makespan recurrence, the closed form of
// Proposition 4.1, Gantt extraction and exhaustive sequencing for
// validation.
package flowshop

import "sort"

// Job is one partitioned inference job: A is the computation-stage
// length f(P_j), B the communication-stage length g(P_j). ID is an
// opaque caller tag preserved by scheduling.
type Job struct {
	ID int
	A  float64
	B  float64
}

// CommHeavy reports whether the job belongs to the paper's
// communication-heavy set S1 (f < g).
func (j Job) CommHeavy() bool { return j.A < j.B }

// Johnson returns the makespan-optimal permutation per Johnson's rule
// (Alg. 1): the communication-heavy set S1 sorted by ascending A,
// followed by the computation-heavy set S2 sorted by descending B.
// Ties break by ID so schedules are deterministic. The input is not
// modified.
func Johnson(jobs []Job) []Job {
	var s1, s2 []Job
	for _, j := range jobs {
		if j.CommHeavy() {
			s1 = append(s1, j)
		} else {
			s2 = append(s2, j)
		}
	}
	sort.SliceStable(s1, func(i, k int) bool {
		if s1[i].A != s1[k].A {
			return s1[i].A < s1[k].A
		}
		return s1[i].ID < s1[k].ID
	})
	sort.SliceStable(s2, func(i, k int) bool {
		if s2[i].B != s2[k].B {
			return s2[i].B > s2[k].B
		}
		return s2[i].ID < s2[k].ID
	})
	return append(s1, s2...)
}

// Makespan evaluates the exact two-machine flow-shop makespan of a
// sequence via the standard recurrence:
//
//	C1_j = C1_{j-1} + a_j
//	C2_j = max(C2_{j-1}, C1_j) + b_j
func Makespan(seq []Job) float64 {
	var c1, c2 float64
	for _, j := range seq {
		c1 += j.A
		if c1 > c2 {
			c2 = c1
		}
		c2 += j.B
	}
	return c2
}

// Completions returns each job's completion time (end of its B stage)
// in sequence order.
func Completions(seq []Job) []float64 {
	out := make([]float64, len(seq))
	var c1, c2 float64
	for i, j := range seq {
		c1 += j.A
		if c1 > c2 {
			c2 = c1
		}
		c2 += j.B
		out[i] = c2
	}
	return out
}

// FormulaMakespan evaluates the closed form of Proposition 4.1:
//
//	f(x_1) + max(Σ_{i≥2} f(x_i), Σ_{i≤n-1} g(x_i)) + g(x_n)
//
// The formula is exact when the sequence is Johnson-ordered AND the
// jobs are drawn from a common monotone cut curve (x_i ≤ x_j implies
// A_i ≤ A_j and B_i ≥ B_j) — the identical-DNN setting of the paper.
// For arbitrary job sets it is only a lower bound on Makespan (see
// TestFormulaIsOnlyALowerBoundInGeneral).
func FormulaMakespan(seq []Job) float64 {
	if len(seq) == 0 {
		return 0
	}
	var sumA, sumB float64
	for _, j := range seq {
		sumA += j.A
		sumB += j.B
	}
	first, last := seq[0], seq[len(seq)-1]
	inner := max(sumA-first.A, sumB-last.B)
	return first.A + inner + last.B
}

// Interval is one bar of a Gantt chart.
type Interval struct {
	JobID      int
	Start, End float64
}

// Gantt returns the computation-stage and communication-stage
// intervals of a sequence, in sequence order.
func Gantt(seq []Job) (comp, comm []Interval) {
	var c1, c2 float64
	for _, j := range seq {
		comp = append(comp, Interval{JobID: j.ID, Start: c1, End: c1 + j.A})
		c1 += j.A
		start := c2
		if c1 > start {
			start = c1
		}
		comm = append(comm, Interval{JobID: j.ID, Start: start, End: start + j.B})
		c2 = start + j.B
	}
	return comp, comm
}

// BestPermutation exhaustively searches all permutations (Heap's
// algorithm) and returns a makespan-minimal sequence. Exponential:
// intended for validating Johnson on small instances (n ≤ ~9).
func BestPermutation(jobs []Job) ([]Job, float64) {
	best := append([]Job(nil), jobs...)
	bestSpan := Makespan(best)
	perm := append([]Job(nil), jobs...)
	var heaps func(k int)
	heaps = func(k int) {
		if k == 1 {
			if span := Makespan(perm); span < bestSpan {
				bestSpan = span
				copy(best, perm)
			}
			return
		}
		for i := 0; i < k; i++ {
			heaps(k - 1)
			if k%2 == 0 {
				perm[i], perm[k-1] = perm[k-1], perm[i]
			} else {
				perm[0], perm[k-1] = perm[k-1], perm[0]
			}
		}
	}
	if len(perm) > 0 {
		heaps(len(perm))
	}
	return best, bestSpan
}

// WorstPermutation is BestPermutation's mirror, used by the scheduling
// ablation to bound how much ordering matters.
func WorstPermutation(jobs []Job) ([]Job, float64) {
	worst := append([]Job(nil), jobs...)
	worstSpan := Makespan(worst)
	perm := append([]Job(nil), jobs...)
	var heaps func(k int)
	heaps = func(k int) {
		if k == 1 {
			if span := Makespan(perm); span > worstSpan {
				worstSpan = span
				copy(worst, perm)
			}
			return
		}
		for i := 0; i < k; i++ {
			heaps(k - 1)
			if k%2 == 0 {
				perm[i], perm[k-1] = perm[k-1], perm[i]
			} else {
				perm[0], perm[k-1] = perm[k-1], perm[0]
			}
		}
	}
	if len(perm) > 0 {
		heaps(len(perm))
	}
	return worst, worstSpan
}

// SumStages returns (ΣA, ΣB) — the two lower bounds whose maximum
// drives the asymptotic average makespan of §4.2.
func SumStages(jobs []Job) (sumA, sumB float64) {
	for _, j := range jobs {
		sumA += j.A
		sumB += j.B
	}
	return sumA, sumB
}
