package flowshop

import "sort"

// m-machine permutation flow shop — the general form behind the k-way
// device-chain extension. A job partitioned by k cuts over an ordered
// device chain becomes a (k+1)-stage job: device-0 compute, then one
// transmission stage per link. The two-machine theory (Johnson, exact)
// and the hardcoded three-machine Job3 path are the m=2 / m=3 special
// cases of the functions here; the Job3 API in cds.go is now a thin
// wrapper over these so there is exactly one scheduling implementation.
//
// The CDS generalization uses the prefix/suffix-split surrogate family:
// surrogate t (t = 1..m-1) is the two-machine instance A = Σ first t
// stages, B = Σ last m-t stages, solved by Johnson's rule; the best of
// the m-1 sequences wins. At m=2 the single surrogate IS Johnson's rule
// (exact); at m=3 the family is exactly the pair (A vs B+C, A+B vs C)
// the three-machine code has always shipped, so rebasing Job3 on JobM
// changes no schedule bit-for-bit (pinned by TestScheduleMMatchesSchedule3).

// JobM is an m-stage job: Stages[i] runs on machine i. Every job in a
// sequence must have the same number of stages. ID is an opaque caller
// tag preserved by scheduling.
type JobM struct {
	ID     int
	Stages []float64
}

// Total returns the serial processing time Σ Stages.
func (j JobM) Total() float64 {
	var t float64
	for _, s := range j.Stages {
		t += s
	}
	return t
}

// cloneJobsM deep-copies a job slice, Stages included, so scheduling
// never aliases (let alone mutates) caller memory — the API-boundary
// copy discipline TestFlowshopInputsUnmutated pins.
func cloneJobsM(jobs []JobM) []JobM {
	out := make([]JobM, len(jobs))
	for i, j := range jobs {
		out[i] = JobM{ID: j.ID, Stages: append([]float64(nil), j.Stages...)}
	}
	return out
}

// MakespanM evaluates the exact m-machine permutation flow-shop
// makespan recurrence C_{i,j} = max(C_{i-1,j}, C_{i,j-1}) + p_{i,j}
// for a sequence. Empty sequences have makespan 0.
func MakespanM(seq []JobM) float64 {
	if len(seq) == 0 {
		return 0
	}
	m := len(seq[0].Stages)
	if m == 0 {
		return 0
	}
	c := make([]float64, m)
	for _, j := range seq {
		c[0] += j.Stages[0]
		for k := 1; k < m; k++ {
			if c[k-1] > c[k] {
				c[k] = c[k-1]
			}
			c[k] += j.Stages[k]
		}
	}
	return c[m-1]
}

// CompletionsM returns each job's completion time (end of its last
// stage) in sequence order.
func CompletionsM(seq []JobM) []float64 {
	out := make([]float64, len(seq))
	if len(seq) == 0 {
		return out
	}
	m := len(seq[0].Stages)
	c := make([]float64, m)
	for i, j := range seq {
		c[0] += j.Stages[0]
		for k := 1; k < m; k++ {
			if c[k-1] > c[k] {
				c[k] = c[k-1]
			}
			c[k] += j.Stages[k]
		}
		out[i] = c[m-1]
	}
	return out
}

// SumStagesM returns the per-machine stage sums — the m lower bounds
// whose maximum drives the asymptotic average makespan.
func SumStagesM(jobs []JobM) []float64 {
	if len(jobs) == 0 {
		return nil
	}
	sums := make([]float64, len(jobs[0].Stages))
	for _, j := range jobs {
		for k, s := range j.Stages {
			sums[k] += s
		}
	}
	return sums
}

// CDSM orders jobs with the Campbell–Dudek–Smith heuristic generalized
// to m machines: m-1 two-machine surrogates (prefix sum of the first t
// stages vs suffix sum of the last m-t stages, t = 1..m-1) are each
// sequenced by Johnson's rule and the best makespan wins (ties keep the
// smaller t, so m=3 reproduces the historical A vs B+C preference).
// The input is not modified and the result shares no memory with it.
func CDSM(jobs []JobM) []JobM {
	if len(jobs) == 0 {
		return nil
	}
	m := len(jobs[0].Stages)
	if m <= 1 {
		return cloneJobsM(jobs)
	}
	var best []JobM
	bestSpan := 0.0
	for t := 1; t < m; t++ {
		two := make([]Job, len(jobs))
		for i, j := range jobs {
			var a, b float64
			for k := 0; k < t; k++ {
				a += j.Stages[k]
			}
			for k := t; k < m; k++ {
				b += j.Stages[k]
			}
			two[i] = Job{ID: i, A: a, B: b}
		}
		order := Johnson(two)
		seq := make([]JobM, len(order))
		for i, o := range order {
			seq[i] = jobs[o.ID]
		}
		if span := MakespanM(seq); best == nil || span < bestSpan {
			best, bestSpan = seq, span
		}
	}
	return cloneJobsM(best)
}

// NEHM orders jobs with the Nawaz–Enscore–Ham insertion heuristic on m
// machines: jobs sorted by decreasing total processing time are
// inserted one at a time at the position minimizing the partial
// makespan. O(n³·m) in this direct form. The input is not modified and
// the result shares no memory with it.
func NEHM(jobs []JobM) []JobM {
	if len(jobs) == 0 {
		return nil
	}
	order := cloneJobsM(jobs)
	sort.SliceStable(order, func(i, j int) bool {
		ti, tj := order[i].Total(), order[j].Total()
		if ti != tj {
			return ti > tj
		}
		return order[i].ID < order[j].ID
	})
	seq := make([]JobM, 0, len(order))
	for _, j := range order {
		bestPos, bestSpan := 0, -1.0
		for pos := 0; pos <= len(seq); pos++ {
			trial := make([]JobM, 0, len(seq)+1)
			trial = append(trial, seq[:pos]...)
			trial = append(trial, j)
			trial = append(trial, seq[pos:]...)
			if span := MakespanM(trial); bestSpan < 0 || span < bestSpan {
				bestPos, bestSpan = pos, span
			}
		}
		seq = append(seq[:bestPos], append([]JobM{j}, seq[bestPos:]...)...)
	}
	return seq
}

// ScheduleM is the production m-machine sequencer: the better of the
// CDSM and NEHM sequences, polished by pairwise-swap descent. The input
// is not modified and the result shares no memory with it.
func ScheduleM(jobs []JobM) []JobM {
	cds := CDSM(jobs)
	neh := NEHM(jobs)
	seq := cds
	if MakespanM(neh) < MakespanM(cds) {
		seq = neh
	}
	return swapDescentM(seq)
}

// swapDescentM applies first-improvement pairwise swaps until a local
// optimum; O(n²·m) per pass and a handful of passes in practice. The
// input slice is copied, never reordered in place.
func swapDescentM(seq []JobM) []JobM {
	cur := append([]JobM(nil), seq...)
	span := MakespanM(cur)
	for improved := true; improved; {
		improved = false
		for i := 0; i < len(cur); i++ {
			for j := i + 1; j < len(cur); j++ {
				cur[i], cur[j] = cur[j], cur[i]
				if s := MakespanM(cur); s < span-1e-12 {
					span = s
					improved = true
				} else {
					cur[i], cur[j] = cur[j], cur[i]
				}
			}
		}
	}
	return cur
}

// MaxExhaustiveJobs caps the factorial permutation searches
// (BestPermutationM, BestPermutation3): 10! ≈ 3.6M makespan evaluations
// is the largest instance that stays sub-second. Above the cap the
// searches return the ScheduleM heuristic with ok=false instead of
// hanging the caller — an 11-job "validation" call used to spin CI for
// minutes; now it degrades loudly and instantly.
const MaxExhaustiveJobs = 10

// BestPermutationM exhaustively searches all permutations (Heap's
// algorithm) and returns a makespan-minimal sequence with ok=true.
// Beyond MaxExhaustiveJobs the search is refused: the ScheduleM
// heuristic sequence comes back with ok=false so callers can still
// proceed but never mistake it for the optimum. The input is not
// modified.
func BestPermutationM(jobs []JobM) (seq []JobM, span float64, ok bool) {
	if len(jobs) > MaxExhaustiveJobs {
		seq = ScheduleM(jobs)
		return seq, MakespanM(seq), false
	}
	best := cloneJobsM(jobs)
	bestSpan := MakespanM(best)
	perm := cloneJobsM(jobs)
	var heaps func(k int)
	heaps = func(k int) {
		if k == 1 {
			if span := MakespanM(perm); span < bestSpan {
				bestSpan = span
				copy(best, perm)
			}
			return
		}
		for i := 0; i < k; i++ {
			heaps(k - 1)
			if k%2 == 0 {
				perm[i], perm[k-1] = perm[k-1], perm[i]
			} else {
				perm[0], perm[k-1] = perm[k-1], perm[0]
			}
		}
	}
	if len(perm) > 0 {
		heaps(len(perm))
	}
	return best, bestSpan, true
}
