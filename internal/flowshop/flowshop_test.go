package flowshop

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestMakespanPaperExample(t *testing.T) {
	// The introduction's go-through example (Fig. 2): two 3-layer DNNs
	// with cut options (f,g) = (4,6) after l1 and (7,2) after l2.
	// Homogeneous cuts give makespan 16; the mixed cut gives 13.
	bothL1 := []Job{{ID: 0, A: 4, B: 6}, {ID: 1, A: 4, B: 6}}
	bothL2 := []Job{{ID: 0, A: 7, B: 2}, {ID: 1, A: 7, B: 2}}
	mixed := []Job{{ID: 0, A: 4, B: 6}, {ID: 1, A: 7, B: 2}}
	if got := Makespan(Johnson(bothL1)); got != 16 {
		t.Errorf("both-at-l1 makespan = %g, want 16", got)
	}
	if got := Makespan(Johnson(bothL2)); got != 16 {
		t.Errorf("both-at-l2 makespan = %g, want 16", got)
	}
	if got := Makespan(Johnson(mixed)); got != 13 {
		t.Errorf("mixed makespan = %g, want 13", got)
	}
}

func TestPaperExampleVariant(t *testing.T) {
	// "However, if we change the [time] 7 to 5, the optimal partition
	// changes": with cut options (f,g) = (4,6) and (5,2), a homogeneous
	// partition (both jobs at the second cut: 5+5+2 = 12) matches the
	// best mixed partition — mixing is no longer strictly better, which
	// is the point of the paper's variant.
	bothL2 := []Job{{A: 5, B: 2}, {A: 5, B: 2}}
	mixed := []Job{{A: 4, B: 6}, {A: 5, B: 2}}
	homog := Makespan(Johnson(bothL2))
	if homog != 12 {
		t.Errorf("homogeneous l2 makespan = %g, want 12", homog)
	}
	if m := Makespan(Johnson(mixed)); m < homog {
		t.Errorf("mixed (%g) must not beat homogeneous (%g) in the variant", m, homog)
	}
}

func TestJohnsonOrdering(t *testing.T) {
	jobs := []Job{
		{ID: 0, A: 5, B: 2}, // S2
		{ID: 1, A: 1, B: 9}, // S1
		{ID: 2, A: 8, B: 3}, // S2
		{ID: 3, A: 2, B: 7}, // S1
	}
	seq := Johnson(jobs)
	wantIDs := []int{1, 3, 2, 0} // S1 asc A (1,2), then S2 desc B (3,2)
	for i, j := range seq {
		if j.ID != wantIDs[i] {
			t.Fatalf("order = %v, want %v", ids(seq), wantIDs)
		}
	}
}

func ids(seq []Job) []int {
	out := make([]int, len(seq))
	for i, j := range seq {
		out[i] = j.ID
	}
	return out
}

func TestJohnsonDeterministicTies(t *testing.T) {
	jobs := []Job{{ID: 2, A: 1, B: 5}, {ID: 0, A: 1, B: 5}, {ID: 1, A: 1, B: 5}}
	seq := Johnson(jobs)
	if got := ids(seq); got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Errorf("ties must break by ID: %v", got)
	}
}

func TestJohnsonDoesNotMutateInput(t *testing.T) {
	jobs := []Job{{ID: 0, A: 9, B: 1}, {ID: 1, A: 1, B: 9}}
	Johnson(jobs)
	if jobs[0].ID != 0 || jobs[1].ID != 1 {
		t.Error("Johnson mutated its input")
	}
}

func TestMakespanRecurrence(t *testing.T) {
	// Hand-checked: a=(2,3), b=(4,1).
	// C1: 2,5. C2: max(0,2)+4=6; max(6,5)+1=7.
	seq := []Job{{A: 2, B: 4}, {A: 3, B: 1}}
	if got := Makespan(seq); got != 7 {
		t.Errorf("makespan = %g, want 7", got)
	}
	comps := Completions(seq)
	if comps[0] != 6 || comps[1] != 7 {
		t.Errorf("completions = %v, want [6 7]", comps)
	}
	if Makespan(nil) != 0 {
		t.Error("empty sequence must have zero makespan")
	}
}

func TestJohnsonOptimalExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(6)
		jobs := make([]Job, n)
		for i := range jobs {
			jobs[i] = Job{ID: i, A: float64(rng.Intn(20) + 1), B: float64(rng.Intn(20) + 1)}
		}
		_, best := BestPermutation(jobs)
		if got := Makespan(Johnson(jobs)); math.Abs(got-best) > 1e-9 {
			t.Fatalf("trial %d: Johnson %g != optimal %g for %v", trial, got, best, jobs)
		}
	}
}

func TestWorstPermutationBounds(t *testing.T) {
	jobs := []Job{{ID: 0, A: 1, B: 9}, {ID: 1, A: 9, B: 1}, {ID: 2, A: 5, B: 5}}
	_, best := BestPermutation(jobs)
	_, worst := WorstPermutation(jobs)
	if worst < best {
		t.Errorf("worst %g < best %g", worst, best)
	}
	if worst == best {
		t.Error("this instance must be order-sensitive")
	}
}

// curveJobs draws n jobs from a synthetic monotone cut curve, the
// identical-DNN setting where Proposition 4.1 is exact.
func curveJobs(rng *rand.Rand, n int) []Job {
	k := 8
	f := make([]float64, k)
	g := make([]float64, k)
	fv, gv := 0.0, 100.0
	for i := 0; i < k; i++ {
		fv += rng.Float64()*10 + 0.5
		gv -= rng.Float64() * 12
		if gv < 0 {
			gv = 0
		}
		f[i], g[i] = fv, gv
	}
	jobs := make([]Job, n)
	for i := range jobs {
		x := rng.Intn(k)
		jobs[i] = Job{ID: i, A: f[x], B: g[x]}
	}
	return jobs
}

func TestFormulaMatchesRecurrenceOnCurveJobs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		jobs := curveJobs(rng, 1+rng.Intn(12))
		seq := Johnson(jobs)
		got, want := FormulaMakespan(seq), Makespan(seq)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: formula %g != recurrence %g for %v", trial, got, want, seq)
		}
	}
}

func TestFormulaIsOnlyALowerBoundInGeneral(t *testing.T) {
	// Non-comonotone S2 jobs (A not ascending with descending B): the
	// interior prefix/suffix bound dominates and the closed form
	// undershoots. Jobs in Johnson order: (9,9), (10,8), (7.4,7.3).
	seq := []Job{{A: 9, B: 9}, {A: 10, B: 8}, {A: 7.4, B: 7.3}}
	// Verify the sequence is Johnson-ordered for its own data.
	if got := ids(Johnson(seq)); got[0] != seq[0].ID {
		t.Log("sequence self-consistent check skipped")
	}
	formula, actual := FormulaMakespan(seq), Makespan(seq)
	if formula >= actual {
		t.Fatalf("expected formula (%g) < recurrence (%g) on this instance", formula, actual)
	}
}

func TestFormulaEmptySequence(t *testing.T) {
	if FormulaMakespan(nil) != 0 {
		t.Error("empty sequence formula must be 0")
	}
}

func TestGanttConsistency(t *testing.T) {
	jobs := []Job{{ID: 0, A: 4, B: 6}, {ID: 1, A: 7, B: 2}}
	seq := Johnson(jobs)
	comp, comm := Gantt(seq)
	if len(comp) != 2 || len(comm) != 2 {
		t.Fatal("missing intervals")
	}
	// Computation back-to-back on one CPU.
	if comp[0].Start != 0 || comp[0].End != comp[1].Start {
		t.Errorf("computation not packed: %+v", comp)
	}
	// Communication starts only after its computation ends.
	for i := range comm {
		if comm[i].Start < comp[i].End {
			t.Errorf("job %d uploads before computing: %+v %+v", i, comp[i], comm[i])
		}
	}
	// Non-overlapping uplink.
	if comm[1].Start < comm[0].End {
		t.Errorf("uplink overlap: %+v", comm)
	}
	// Final end equals makespan.
	if got := comm[len(comm)-1].End; got != Makespan(seq) {
		t.Errorf("gantt end %g != makespan %g", got, Makespan(seq))
	}
}

func TestSumStages(t *testing.T) {
	a, b := SumStages([]Job{{A: 1, B: 2}, {A: 3, B: 4}})
	if a != 4 || b != 6 {
		t.Errorf("SumStages = (%g,%g)", a, b)
	}
}

// Property: the makespan of any sequence is at least both stage sums
// plus the unavoidable first-compute / last-upload offsets, and
// Johnson's result never exceeds any random permutation's.
func TestMakespanBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		jobs := make([]Job, n)
		for i := range jobs {
			jobs[i] = Job{ID: i, A: rng.Float64() * 10, B: rng.Float64() * 10}
		}
		seq := Johnson(jobs)
		span := Makespan(seq)
		sumA, sumB := SumStages(jobs)
		if span < sumA-1e-9 || span < sumB-1e-9 {
			return false
		}
		// Random permutation can't beat Johnson.
		perm := append([]Job(nil), jobs...)
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		return Makespan(perm) >= span-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: completions are non-decreasing and the last equals the
// makespan.
func TestCompletionsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		jobs := make([]Job, n)
		for i := range jobs {
			jobs[i] = Job{ID: i, A: rng.Float64() * 5, B: rng.Float64() * 5}
		}
		seq := Johnson(jobs)
		comps := Completions(seq)
		if !sort.Float64sAreSorted(comps) {
			return false
		}
		return math.Abs(comps[len(comps)-1]-Makespan(seq)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
