package flowshop

// Three-machine flow shop support for the mobile→edge→cloud extension.
// With three stages the makespan-minimal permutation problem is
// NP-hard (Garey, Johnson & Sethi 1976); the Campbell–Dudek–Smith
// (CDS) heuristic builds m-1 two-machine surrogate instances solved by
// Johnson's rule and keeps the best, which is exact whenever one
// machine dominates — the usual case here, where the cloud stage is
// tiny.
//
// Since the k-way chain work the Job3 sequencers are thin wrappers
// over the m-machine implementations in mshop.go; only the makespan
// recurrences stay specialized (no per-call slice conversion on the
// planner's hot evaluate path). TestScheduleMMatchesSchedule3 pins the
// wrappers bit-identical to the historical 3-machine code.

// Job3 is a three-stage job: A on the mobile CPU, B on the
// mobile→edge uplink, C on the edge→cloud uplink (or edge compute —
// any third serial resource).
type Job3 struct {
	ID      int
	A, B, C float64
}

func job3ToM(jobs []Job3) []JobM {
	out := make([]JobM, len(jobs))
	for i, j := range jobs {
		out[i] = JobM{ID: j.ID, Stages: []float64{j.A, j.B, j.C}}
	}
	return out
}

func mToJob3(jobs []JobM) []Job3 {
	if jobs == nil {
		return nil
	}
	out := make([]Job3, len(jobs))
	for i, j := range jobs {
		out[i] = Job3{ID: j.ID, A: j.Stages[0], B: j.Stages[1], C: j.Stages[2]}
	}
	return out
}

// Makespan3 evaluates the exact three-machine permutation flow-shop
// makespan recurrence for a sequence.
func Makespan3(seq []Job3) float64 {
	var c1, c2, c3 float64
	for _, j := range seq {
		c1 += j.A
		if c1 > c2 {
			c2 = c1
		}
		c2 += j.B
		if c2 > c3 {
			c3 = c2
		}
		c3 += j.C
	}
	return c3
}

// Completions3 returns per-job completion times in sequence order.
func Completions3(seq []Job3) []float64 {
	out := make([]float64, len(seq))
	var c1, c2, c3 float64
	for i, j := range seq {
		c1 += j.A
		if c1 > c2 {
			c2 = c1
		}
		c2 += j.B
		if c2 > c3 {
			c3 = c2
		}
		c3 += j.C
		out[i] = c3
	}
	return out
}

// CDS orders jobs with the Campbell–Dudek–Smith heuristic: two
// surrogate two-machine instances (A vs B+C and A+B vs C) are
// sequenced by Johnson's rule and the better makespan wins. The input
// is not modified.
func CDS(jobs []Job3) []Job3 {
	return mToJob3(CDSM(job3ToM(jobs)))
}

// NEH orders jobs with the Nawaz–Enscore–Ham insertion heuristic:
// jobs sorted by decreasing total processing time are inserted one at
// a time at the position minimizing the partial makespan. O(n³) in
// this direct form — fine for batch sizes here — and consistently
// tighter than CDS on hard instances.
func NEH(jobs []Job3) []Job3 {
	return mToJob3(NEHM(job3ToM(jobs)))
}

// Schedule3 is the production three-machine sequencer: the better of
// the CDS and NEH sequences, polished by pairwise-swap descent. The
// input is not modified.
func Schedule3(jobs []Job3) []Job3 {
	return mToJob3(ScheduleM(job3ToM(jobs)))
}

// BestPermutation3 exhaustively finds a makespan-minimal sequence
// when len(jobs) <= MaxExhaustiveJobs (ok=true); above the cap it
// returns the Schedule3 heuristic with ok=false instead of launching
// a factorial search. The input is not modified.
func BestPermutation3(jobs []Job3) (seq []Job3, span float64, ok bool) {
	m, s, ok := BestPermutationM(job3ToM(jobs))
	return mToJob3(m), s, ok
}
