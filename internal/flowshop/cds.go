package flowshop

import "sort"

// Three-machine flow shop support for the mobile→edge→cloud extension.
// With three stages the makespan-minimal permutation problem is
// NP-hard (Garey, Johnson & Sethi 1976); the Campbell–Dudek–Smith
// (CDS) heuristic builds m-1 two-machine surrogate instances solved by
// Johnson's rule and keeps the best, which is exact whenever one
// machine dominates — the usual case here, where the cloud stage is
// tiny.

// Job3 is a three-stage job: A on the mobile CPU, B on the
// mobile→edge uplink, C on the edge→cloud uplink (or edge compute —
// any third serial resource).
type Job3 struct {
	ID      int
	A, B, C float64
}

// Makespan3 evaluates the exact three-machine permutation flow-shop
// makespan recurrence for a sequence.
func Makespan3(seq []Job3) float64 {
	var c1, c2, c3 float64
	for _, j := range seq {
		c1 += j.A
		if c1 > c2 {
			c2 = c1
		}
		c2 += j.B
		if c2 > c3 {
			c3 = c2
		}
		c3 += j.C
	}
	return c3
}

// Completions3 returns per-job completion times in sequence order.
func Completions3(seq []Job3) []float64 {
	out := make([]float64, len(seq))
	var c1, c2, c3 float64
	for i, j := range seq {
		c1 += j.A
		if c1 > c2 {
			c2 = c1
		}
		c2 += j.B
		if c2 > c3 {
			c3 = c2
		}
		c3 += j.C
		out[i] = c3
	}
	return out
}

// CDS orders jobs with the Campbell–Dudek–Smith heuristic: two
// surrogate two-machine instances (A vs B+C and A+B vs C) are
// sequenced by Johnson's rule and the better makespan wins. The input
// is not modified.
func CDS(jobs []Job3) []Job3 {
	if len(jobs) == 0 {
		return nil
	}
	build := func(first bool) []Job3 {
		two := make([]Job, len(jobs))
		for i, j := range jobs {
			if first {
				two[i] = Job{ID: i, A: j.A, B: j.B + j.C}
			} else {
				two[i] = Job{ID: i, A: j.A + j.B, B: j.C}
			}
		}
		order := Johnson(two)
		seq := make([]Job3, len(order))
		for i, o := range order {
			seq[i] = jobs[o.ID]
		}
		return seq
	}
	s1, s2 := build(true), build(false)
	if Makespan3(s1) <= Makespan3(s2) {
		return s1
	}
	return s2
}

// NEH orders jobs with the Nawaz–Enscore–Ham insertion heuristic:
// jobs sorted by decreasing total processing time are inserted one at
// a time at the position minimizing the partial makespan. O(n³) in
// this direct form — fine for batch sizes here — and consistently
// tighter than CDS on hard instances.
func NEH(jobs []Job3) []Job3 {
	if len(jobs) == 0 {
		return nil
	}
	order := append([]Job3(nil), jobs...)
	sort.SliceStable(order, func(i, j int) bool {
		ti := order[i].A + order[i].B + order[i].C
		tj := order[j].A + order[j].B + order[j].C
		if ti != tj {
			return ti > tj
		}
		return order[i].ID < order[j].ID
	})
	seq := make([]Job3, 0, len(order))
	for _, j := range order {
		bestPos, bestSpan := 0, -1.0
		for pos := 0; pos <= len(seq); pos++ {
			trial := make([]Job3, 0, len(seq)+1)
			trial = append(trial, seq[:pos]...)
			trial = append(trial, j)
			trial = append(trial, seq[pos:]...)
			if span := Makespan3(trial); bestSpan < 0 || span < bestSpan {
				bestPos, bestSpan = pos, span
			}
		}
		seq = append(seq[:bestPos], append([]Job3{j}, seq[bestPos:]...)...)
	}
	return seq
}

// Schedule3 is the production three-machine sequencer: the better of
// the CDS and NEH sequences, polished by pairwise-swap descent.
func Schedule3(jobs []Job3) []Job3 {
	cds := CDS(jobs)
	neh := NEH(jobs)
	seq := cds
	if Makespan3(neh) < Makespan3(cds) {
		seq = neh
	}
	return swapDescent(seq)
}

// swapDescent applies first-improvement pairwise swaps until a local
// optimum; O(n²) per pass and a handful of passes in practice.
func swapDescent(seq []Job3) []Job3 {
	cur := append([]Job3(nil), seq...)
	span := Makespan3(cur)
	for improved := true; improved; {
		improved = false
		for i := 0; i < len(cur); i++ {
			for j := i + 1; j < len(cur); j++ {
				cur[i], cur[j] = cur[j], cur[i]
				if s := Makespan3(cur); s < span-1e-12 {
					span = s
					improved = true
				} else {
					cur[i], cur[j] = cur[j], cur[i]
				}
			}
		}
	}
	return cur
}

// BestPermutation3 exhaustively finds a makespan-minimal sequence
// (validation only, n ≤ ~9).
func BestPermutation3(jobs []Job3) ([]Job3, float64) {
	best := append([]Job3(nil), jobs...)
	bestSpan := Makespan3(best)
	perm := append([]Job3(nil), jobs...)
	var heaps func(k int)
	heaps = func(k int) {
		if k == 1 {
			if span := Makespan3(perm); span < bestSpan {
				bestSpan = span
				copy(best, perm)
			}
			return
		}
		for i := 0; i < k; i++ {
			heaps(k - 1)
			if k%2 == 0 {
				perm[i], perm[k-1] = perm[k-1], perm[i]
			} else {
				perm[0], perm[k-1] = perm[k-1], perm[0]
			}
		}
	}
	if len(perm) > 0 {
		heaps(len(perm))
	}
	return best, bestSpan
}
