package flowshop

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMakespan3Recurrence(t *testing.T) {
	// Hand-checked: jobs (2,3,1), (4,1,2).
	// c1: 2,6. c2: max(0,2)+3=5; max(5,6)+1=7. c3: max(0,5)+1=6; max(6,7)+2=9.
	seq := []Job3{{A: 2, B: 3, C: 1}, {A: 4, B: 1, C: 2}}
	if got := Makespan3(seq); got != 9 {
		t.Errorf("makespan3 = %g, want 9", got)
	}
	comps := Completions3(seq)
	if comps[0] != 6 || comps[1] != 9 {
		t.Errorf("completions = %v, want [6 9]", comps)
	}
	if Makespan3(nil) != 0 {
		t.Error("empty must be 0")
	}
}

func TestCDSPreservesJobs(t *testing.T) {
	jobs := []Job3{{ID: 0, A: 1, B: 2, C: 3}, {ID: 1, A: 3, B: 2, C: 1}, {ID: 2, A: 2, B: 2, C: 2}}
	seq := CDS(jobs)
	if len(seq) != 3 {
		t.Fatalf("len = %d", len(seq))
	}
	seen := map[int]bool{}
	for _, j := range seq {
		seen[j.ID] = true
	}
	if len(seen) != 3 {
		t.Errorf("CDS dropped or duplicated jobs: %v", seq)
	}
	if CDS(nil) != nil {
		t.Error("empty input must return nil")
	}
}

func TestSchedule3NearOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	worstCDS, worstBest := 1.0, 1.0
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(6)
		jobs := make([]Job3, n)
		for i := range jobs {
			jobs[i] = Job3{ID: i, A: rng.Float64() * 10, B: rng.Float64() * 10, C: rng.Float64() * 10}
		}
		_, best, ok := BestPermutation3(jobs)
		if !ok {
			t.Fatalf("trial %d: exhaustive search refused at n=%d", trial, n)
		}
		cds := Makespan3(CDS(jobs))
		combined := Makespan3(Schedule3(jobs))
		if combined < best-1e-9 {
			t.Fatalf("trial %d: Schedule3 %g below exhaustive optimum %g", trial, combined, best)
		}
		if combined > cds+1e-9 {
			t.Fatalf("trial %d: Schedule3 %g worse than plain CDS %g", trial, combined, cds)
		}
		if r := cds / best; r > worstCDS {
			worstCDS = r
		}
		if r := combined / best; r > worstBest {
			worstBest = r
		}
	}
	// Plain CDS strays up to ~30% on adversarial random instances;
	// the CDS+NEH combination stays within a few percent.
	if worstBest > 1.06 {
		t.Errorf("Schedule3 worst ratio %.3f over 200 trials, expected <= 1.06 (CDS alone: %.3f)",
			worstBest, worstCDS)
	}
}

func TestNEHPreservesJobs(t *testing.T) {
	jobs := []Job3{{ID: 0, A: 9, B: 1, C: 1}, {ID: 1, A: 1, B: 9, C: 1}, {ID: 2, A: 1, B: 1, C: 9}}
	seq := NEH(jobs)
	seen := map[int]bool{}
	for _, j := range seq {
		seen[j.ID] = true
	}
	if len(seen) != 3 {
		t.Errorf("NEH dropped or duplicated jobs: %v", seq)
	}
	if NEH(nil) != nil {
		t.Error("empty input must return nil")
	}
}

func TestCDSExactWhenThirdStageNegligible(t *testing.T) {
	// With C ≈ 0 the instance degenerates to two machines, where the
	// first CDS surrogate IS Johnson's rule: exact.
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(6)
		jobs := make([]Job3, n)
		for i := range jobs {
			jobs[i] = Job3{ID: i, A: rng.Float64() * 10, B: rng.Float64() * 10, C: rng.Float64() * 1e-9}
		}
		_, best, _ := BestPermutation3(jobs)
		if got := Makespan3(CDS(jobs)); math.Abs(got-best) > 1e-6 {
			t.Fatalf("trial %d: CDS %g != optimum %g with negligible stage 3", trial, got, best)
		}
	}
}

// Property: the 3-machine makespan is bounded below by every stage sum
// and above by the serial sum.
func TestMakespan3BoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		jobs := make([]Job3, n)
		var sa, sb, sc, serial float64
		for i := range jobs {
			jobs[i] = Job3{ID: i, A: rng.Float64() * 5, B: rng.Float64() * 5, C: rng.Float64() * 5}
			sa += jobs[i].A
			sb += jobs[i].B
			sc += jobs[i].C
			serial += jobs[i].A + jobs[i].B + jobs[i].C
		}
		span := Makespan3(CDS(jobs))
		return span >= sa-1e-9 && span >= sb-1e-9 && span >= sc-1e-9 && span <= serial+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
