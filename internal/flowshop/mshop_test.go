package flowshop

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

// ---- legacy reference implementations ----
//
// Verbatim copies of the pre-m-machine Job3 sequencers (the hardcoded
// three-machine CDS/NEH/swap-descent that shipped before mshop.go).
// The production Job3 API is now a wrapper over the JobM code; these
// references pin the refactor bit-identical — same sequence, same
// floating-point makespan — across random instances.

func legacyCDS(jobs []Job3) []Job3 {
	if len(jobs) == 0 {
		return nil
	}
	build := func(first bool) []Job3 {
		two := make([]Job, len(jobs))
		for i, j := range jobs {
			if first {
				two[i] = Job{ID: i, A: j.A, B: j.B + j.C}
			} else {
				two[i] = Job{ID: i, A: j.A + j.B, B: j.C}
			}
		}
		order := Johnson(two)
		seq := make([]Job3, len(order))
		for i, o := range order {
			seq[i] = jobs[o.ID]
		}
		return seq
	}
	s1, s2 := build(true), build(false)
	if Makespan3(s1) <= Makespan3(s2) {
		return s1
	}
	return s2
}

func legacyNEH(jobs []Job3) []Job3 {
	if len(jobs) == 0 {
		return nil
	}
	order := append([]Job3(nil), jobs...)
	sort.SliceStable(order, func(i, j int) bool {
		ti := order[i].A + order[i].B + order[i].C
		tj := order[j].A + order[j].B + order[j].C
		if ti != tj {
			return ti > tj
		}
		return order[i].ID < order[j].ID
	})
	seq := make([]Job3, 0, len(order))
	for _, j := range order {
		bestPos, bestSpan := 0, -1.0
		for pos := 0; pos <= len(seq); pos++ {
			trial := make([]Job3, 0, len(seq)+1)
			trial = append(trial, seq[:pos]...)
			trial = append(trial, j)
			trial = append(trial, seq[pos:]...)
			if span := Makespan3(trial); bestSpan < 0 || span < bestSpan {
				bestPos, bestSpan = pos, span
			}
		}
		seq = append(seq[:bestPos], append([]Job3{j}, seq[bestPos:]...)...)
	}
	return seq
}

func legacySchedule3(jobs []Job3) []Job3 {
	cds := legacyCDS(jobs)
	neh := legacyNEH(jobs)
	seq := cds
	if Makespan3(neh) < Makespan3(cds) {
		seq = neh
	}
	cur := append([]Job3(nil), seq...)
	span := Makespan3(cur)
	for improved := true; improved; {
		improved = false
		for i := 0; i < len(cur); i++ {
			for j := i + 1; j < len(cur); j++ {
				cur[i], cur[j] = cur[j], cur[i]
				if s := Makespan3(cur); s < span-1e-12 {
					span = s
					improved = true
				} else {
					cur[i], cur[j] = cur[j], cur[i]
				}
			}
		}
	}
	return cur
}

func randJobs3(rng *rand.Rand, n int) []Job3 {
	jobs := make([]Job3, n)
	for i := range jobs {
		jobs[i] = Job3{ID: i, A: rng.Float64() * 10, B: rng.Float64() * 10, C: rng.Float64() * 10}
	}
	return jobs
}

func randJobsM(rng *rand.Rand, n, m int) []JobM {
	jobs := make([]JobM, n)
	for i := range jobs {
		st := make([]float64, m)
		for k := range st {
			st[k] = rng.Float64() * 10
		}
		jobs[i] = JobM{ID: i, Stages: st}
	}
	return jobs
}

// The Job3 wrappers must reproduce the historical three-machine
// sequencers exactly: identical job order AND bit-identical makespan.
func TestScheduleMMatchesSchedule3(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(9)
		jobs := randJobs3(rng, n)
		for name, pair := range map[string][2][]Job3{
			"CDS":       {CDS(jobs), legacyCDS(jobs)},
			"NEH":       {NEH(jobs), legacyNEH(jobs)},
			"Schedule3": {Schedule3(jobs), legacySchedule3(jobs)},
		} {
			got, want := pair[0], pair[1]
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d: %s diverged from legacy\n got %v\nwant %v", trial, name, got, want)
			}
			if Makespan3(got) != Makespan3(want) {
				t.Fatalf("trial %d: %s makespan not bit-identical", trial, name)
			}
		}
	}
}

// Property (satellite): CompletionsM == Completions3 exactly for m=3,
// and MakespanM == Makespan3 — same FP recurrence, same operation
// order, so equality is ==, not approximate.
func TestCompletionsMMatchesCompletions3(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		seq := randJobs3(rng, 1+rng.Intn(10))
		mseq := job3ToM(seq)
		if MakespanM(mseq) != Makespan3(seq) {
			return false
		}
		got, want := CompletionsM(mseq), Completions3(seq)
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// At m=2 the single CDS surrogate IS Johnson's rule, which is optimal:
// CDSM must match the exhaustive optimum exactly.
func TestCDSMExactAtTwoMachines(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		jobs := randJobsM(rng, 2+rng.Intn(6), 2)
		_, best, ok := BestPermutationM(jobs)
		if !ok {
			t.Fatal("exhaustive search refused on a small instance")
		}
		if got := MakespanM(CDSM(jobs)); math.Abs(got-best) > 1e-9 {
			t.Fatalf("trial %d: CDSM %g != Johnson optimum %g at m=2", trial, got, best)
		}
	}
}

// Heuristic-gap acceptance: on <=8-job, <=4-machine instances ScheduleM
// stays within 6% of the brute-force optimum and plain CDSM within 35%.
// These are the measured-with-margin bounds documented in DESIGN.md §12
// (observed over this fixed seed: ScheduleM 1.043x worst, CDSM 1.144x
// worst); scripts/check.sh runs this test as its heuristic-gap leg.
func TestScheduleMGapVsBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	worstSched, worstCDS := 1.0, 1.0
	for trial := 0; trial < 150; trial++ {
		n := 2 + rng.Intn(7) // 2..8 jobs
		m := 2 + rng.Intn(3) // 2..4 machines
		jobs := randJobsM(rng, n, m)
		_, best, ok := BestPermutationM(jobs)
		if !ok {
			t.Fatal("exhaustive search refused on a small instance")
		}
		sched := MakespanM(ScheduleM(jobs))
		cds := MakespanM(CDSM(jobs))
		if sched < best-1e-9 {
			t.Fatalf("trial %d: ScheduleM %g below optimum %g", trial, sched, best)
		}
		if r := sched / best; r > worstSched {
			worstSched = r
		}
		if r := cds / best; r > worstCDS {
			worstCDS = r
		}
	}
	t.Logf("worst ScheduleM/opt = %.3f, worst CDSM/opt = %.3f", worstSched, worstCDS)
	if worstSched > 1.06 {
		t.Errorf("ScheduleM worst ratio %.3f > documented 1.06 bound", worstSched)
	}
	if worstCDS > 1.35 {
		t.Errorf("CDSM worst ratio %.3f > documented 1.35 bound", worstCDS)
	}
}

// Bugfix regression (input mutation): every public sequencer must leave
// its input slice untouched and return memory disjoint from it.
func TestFlowshopInputsUnmutated(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	jobs3 := randJobs3(rng, 7)
	snap3 := append([]Job3(nil), jobs3...)
	seqs := [][]Job3{CDS(jobs3), NEH(jobs3), Schedule3(jobs3)}
	bp, _, _ := BestPermutation3(jobs3)
	seqs = append(seqs, bp)
	for _, s := range seqs {
		for i := range s {
			s[i].A = -1 // scribble on outputs; inputs must not see it
		}
	}
	if !reflect.DeepEqual(jobs3, snap3) {
		t.Errorf("Job3 input mutated: %v != %v", jobs3, snap3)
	}

	jobsM := randJobsM(rng, 7, 4)
	snapM := cloneJobsM(jobsM)
	seqsM := [][]JobM{CDSM(jobsM), NEHM(jobsM), ScheduleM(jobsM)}
	bpM, _, _ := BestPermutationM(jobsM)
	seqsM = append(seqsM, bpM)
	for _, s := range seqsM {
		for i := range s {
			for k := range s[i].Stages {
				s[i].Stages[k] = -1 // aliased Stages would corrupt the input
			}
		}
	}
	if !reflect.DeepEqual(jobsM, snapM) {
		t.Errorf("JobM input mutated (Stages aliasing): %v != %v", jobsM, snapM)
	}
}

// Bugfix regression (factorial guard): at the MaxExhaustiveJobs
// boundary the search still runs (ok=true); one past it the call
// returns instantly with the heuristic and ok=false.
func TestBestPermutationCap(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	at := randJobsM(rng, MaxExhaustiveJobs, 3)
	if _, _, ok := BestPermutationM(at); !ok {
		t.Errorf("n=%d (at cap) must run exhaustively", MaxExhaustiveJobs)
	}
	over := randJobsM(rng, MaxExhaustiveJobs+1, 3)
	seq, span, ok := BestPermutationM(over)
	if ok {
		t.Errorf("n=%d (over cap) must refuse exhaustive search", MaxExhaustiveJobs+1)
	}
	want := ScheduleM(over)
	if !reflect.DeepEqual(seq, want) || span != MakespanM(want) {
		t.Error("over-cap fallback must be the ScheduleM heuristic sequence")
	}

	over3 := randJobs3(rng, MaxExhaustiveJobs+1)
	if _, _, ok := BestPermutation3(over3); ok {
		t.Error("BestPermutation3 must inherit the cap")
	}
	if _, _, ok := BestPermutationM(nil); !ok {
		t.Error("empty instance is trivially optimal, ok must be true")
	}
}

// MakespanM is bounded below by every per-machine stage sum and above
// by the fully serial sum, for any m.
func TestMakespanMBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		jobs := randJobsM(rng, 1+rng.Intn(8), 2+rng.Intn(4))
		span := MakespanM(ScheduleM(jobs))
		var serial float64
		for _, s := range SumStagesM(jobs) {
			if span < s-1e-9 {
				return false
			}
			serial += s
		}
		return span <= serial+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
