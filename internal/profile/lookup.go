package profile

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// LookupTable caches profiled curves keyed by model and channel — the
// paper's pre-built computation-time lookup table (§6.1), persisted as
// JSON so the scheduler loads it at startup instead of re-profiling.
type LookupTable struct {
	Entries map[string]*Curve `json:"entries"`
}

// NewLookupTable returns an empty table.
func NewLookupTable() *LookupTable {
	return &LookupTable{Entries: make(map[string]*Curve)}
}

func key(model, channel string) string { return model + "@" + channel }

// Put stores a curve under its model and channel names.
func (t *LookupTable) Put(c *Curve) {
	t.Entries[key(c.Model, c.Channel.Name)] = c
}

// Get retrieves a curve by model and channel name.
func (t *LookupTable) Get(model, channel string) (*Curve, bool) {
	c, ok := t.Entries[key(model, channel)]
	return c, ok
}

// Keys lists stored entries in sorted order.
func (t *LookupTable) Keys() []string {
	out := make([]string, 0, len(t.Entries))
	for k := range t.Entries {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Save writes the table as indented JSON.
func (t *LookupTable) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// LoadLookupTable reads a table written by Save and validates every
// curve.
func LoadLookupTable(r io.Reader) (*LookupTable, error) {
	var t LookupTable
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("profile: decoding lookup table: %w", err)
	}
	if t.Entries == nil {
		t.Entries = make(map[string]*Curve)
	}
	for k, c := range t.Entries {
		if err := c.Validate(); err != nil {
			return nil, fmt.Errorf("profile: lookup entry %q: %w", k, err)
		}
	}
	return &t, nil
}
