package profile

import (
	"fmt"

	"dnnjps/internal/dag"
	"dnnjps/internal/models"
	"dnnjps/internal/netsim"
	"dnnjps/internal/regression"
	"dnnjps/internal/tensor"
)

// ReplyBytes is the on-the-wire size of the runtime's inference reply
// frame (type byte + 25-byte body incl. the admission-control flags
// byte + CRC). The profile layer cannot import internal/runtime
// (runtime builds on profile), so the value is duplicated here and
// pinned to runtime.ReplyWireBytes by a test in that package. It
// prices the downlink leg of every offloaded cut on channels that
// model reply bandwidth (Channel.DownlinkMbps > 0).
const ReplyBytes = 30

// Unit is one step of the line view of a graph: the articulation node
// every path crosses (Exit) together with the parallel-region interior
// nodes since the previous articulation. For a line DAG each unit is a
// single node; for MobileNet/ResNet each residual module collapses
// into one unit — exactly the paper's virtual-block treatment of
// bypass links (§6.1).
type Unit struct {
	// Nodes holds every node executed by this unit (interior + exit),
	// in topological order.
	Nodes []int
	// Exit is the articulation node whose output tensor crosses a cut
	// placed after this unit.
	Exit int
	// Label is the block label of the exit layer.
	Label string
}

// LineView collapses any single-source/single-sink DAG into a line of
// units delimited by its articulation nodes.
func LineView(g *dag.Graph) []Unit {
	arts := g.Articulations()
	inArts := make(map[int]bool, len(arts))
	for _, a := range arts {
		inArts[a] = true
	}
	var units []Unit
	var pending []int
	for _, id := range g.Topo() {
		if inArts[id] {
			nodes := append(append([]int(nil), pending...), id)
			units = append(units, Unit{
				Nodes: nodes,
				Exit:  id,
				Label: models.BlockOf(g.Node(id).Layer.Name()),
			})
			pending = pending[:0]
		} else {
			pending = append(pending, id)
		}
	}
	if len(pending) != 0 {
		panic("profile: sink is not an articulation node")
	}
	return units
}

// Curve holds the discrete per-cut latency functions of one model on
// one device pair and channel. Index i means "cut after unit i":
// index 0 is the input unit (cloud-only — upload the raw input),
// index len-1 is the sink unit (local-only — nothing uploaded).
type Curve struct {
	Model   string
	Channel netsim.Channel
	// F is the cumulative mobile computation time in ms.
	F []float64
	// G is the communication time in ms of the cut: the upload of the
	// tensor crossing it (w0 + bytes/bandwidth) plus, on channels that
	// model the downlink, the reply frame's transit; 0 at the last
	// index.
	G []float64
	// CloudMs is the remaining cloud computation time in ms.
	CloudMs []float64
	// Bytes is the cut tensor volume.
	Bytes []int
	// Labels holds the block label of each unit's exit layer.
	Labels []string
}

// Len returns the number of cut positions.
func (c *Curve) Len() int { return len(c.F) }

// BuildCurve profiles a graph into its cut curve. The graph is viewed
// as a line of units (see LineView); general-structure models are
// thereby planned at virtual-block granularity, while Alg. 3 callers
// use per-branch curves built with BuildBranchCurve.
func BuildCurve(g *dag.Graph, mobile, cloud Device, ch netsim.Channel, dt tensor.DType) *Curve {
	units := LineView(g)
	n := len(units)
	c := &Curve{
		Model:   g.Name(),
		Channel: ch,
		F:       make([]float64, n),
		G:       make([]float64, n),
		CloudMs: make([]float64, n),
		Bytes:   make([]int, n),
		Labels:  make([]string, n),
	}
	totalCloud := cloud.TotalTimeMs(g)
	var fCum, cloudCum float64
	for i, u := range units {
		fCum += mobile.NodesTimeMs(g, u.Nodes)
		cloudCum += cloud.NodesTimeMs(g, u.Nodes)
		c.F[i] = fCum
		// max with 0 absorbs float residue in the final positions.
		c.CloudMs[i] = max(totalCloud-cloudCum, 0)
		c.Labels[i] = u.Label
		if i == n-1 {
			c.Bytes[i] = 0 // local-only: the result stays on device
			c.G[i] = 0
		} else {
			c.Bytes[i] = g.OutBytes(u.Exit, dt)
			c.G[i] = ch.TxMs(c.Bytes[i]) + ch.RxMs(ReplyBytes)
		}
	}
	return c
}

// ParetoCuts returns the candidate cut indices after virtual-block
// clustering (§3.2): a cut is kept only when its upload volume is
// strictly smaller than every earlier cut's, because a later cut with
// equal-or-larger volume costs more compute AND more communication and
// can never be optimal. The last index (local-only) is always kept.
func (c *Curve) ParetoCuts() []int {
	var cuts []int
	best := int(^uint(0) >> 1)
	for i := 0; i < c.Len(); i++ {
		if i == c.Len()-1 || c.Bytes[i] < best {
			cuts = append(cuts, i)
			if c.Bytes[i] < best {
				best = c.Bytes[i]
			}
		}
	}
	return cuts
}

// Restrict returns a copy of the curve containing only the given cut
// indices (typically ParetoCuts). Positions renumber contiguously;
// RestrictedIndex maps back via the returned slice.
func (c *Curve) Restrict(cuts []int) (*Curve, []int) {
	out := &Curve{Model: c.Model, Channel: c.Channel}
	idx := make([]int, 0, len(cuts))
	for _, i := range cuts {
		if i < 0 || i >= c.Len() {
			panic(fmt.Sprintf("profile: restrict index %d out of range", i))
		}
		out.F = append(out.F, c.F[i])
		out.G = append(out.G, c.G[i])
		out.CloudMs = append(out.CloudMs, c.CloudMs[i])
		out.Bytes = append(out.Bytes, c.Bytes[i])
		out.Labels = append(out.Labels, c.Labels[i])
		idx = append(idx, i)
	}
	return out, idx
}

// Reprice returns a copy of the curve with G recomputed from the cut
// tensor volumes at a new channel — the bandwidth-update hook for
// mid-run re-planning when the measured uplink diverges from the
// profiled one. F, CloudMs and Bytes are device properties and carry
// over unchanged.
func (c *Curve) Reprice(ch netsim.Channel) *Curve {
	out := &Curve{
		Model:   c.Model,
		Channel: ch,
		F:       append([]float64(nil), c.F...),
		G:       make([]float64, c.Len()),
		CloudMs: append([]float64(nil), c.CloudMs...),
		Bytes:   append([]int(nil), c.Bytes...),
		Labels:  append([]string(nil), c.Labels...),
	}
	for i, b := range c.Bytes {
		if b > 0 {
			out.G[i] = ch.TxMs(b) + ch.RxMs(ReplyBytes)
		}
	}
	return out
}

// FInterp returns a piecewise-linear continuous extension of F over
// cut positions, for the Theorem 5.2 continuous-relaxation solver.
func (c *Curve) FInterp() *regression.Interpolator {
	return mustInterp(c.F)
}

// GInterp returns a piecewise-linear continuous extension of G.
func (c *Curve) GInterp() *regression.Interpolator {
	return mustInterp(c.G)
}

func mustInterp(ys []float64) *regression.Interpolator {
	xs := make([]float64, len(ys))
	for i := range xs {
		xs[i] = float64(i)
	}
	it, err := regression.NewInterpolator(xs, ys)
	if err != nil {
		panic(fmt.Sprintf("profile: curve too short to interpolate: %v", err))
	}
	return it
}

// FitG fits the decreasing-convex exponential model of §3.2 to the
// positive interior of G (the paper's observation that offload volume
// halves per block). Returns an error when fewer than two positive
// samples exist.
func (c *Curve) FitG() (regression.Exponential, error) {
	var xs, ys []float64
	for i, g := range c.G {
		if g > 0 {
			xs = append(xs, float64(i))
			ys = append(ys, g)
		}
	}
	return regression.FitExponential(xs, ys)
}

// Synthetic returns a copy of the curve whose G values are replaced by
// samples of the fitted exponential — the paper's AlexNet′ (Fig. 11),
// used to show JPS is exactly optimal when g is truly convex.
func (c *Curve) Synthetic() (*Curve, error) {
	fit, err := c.FitG()
	if err != nil {
		return nil, err
	}
	out := &Curve{
		Model:   c.Model + "'",
		Channel: c.Channel,
		F:       append([]float64(nil), c.F...),
		G:       make([]float64, c.Len()),
		CloudMs: append([]float64(nil), c.CloudMs...),
		Bytes:   append([]int(nil), c.Bytes...),
		Labels:  append([]string(nil), c.Labels...),
	}
	for i := range out.G {
		if i == c.Len()-1 {
			out.G[i] = 0
			continue
		}
		out.G[i] = fit.Eval(float64(i))
	}
	return out, nil
}

// TotalMobileMs is the local-only latency of one job (f at the last
// cut).
func (c *Curve) TotalMobileMs() float64 { return c.F[c.Len()-1] }

// CloudOnlyMs is the cloud-only latency of one job: upload the raw
// input, then compute everything remotely.
func (c *Curve) CloudOnlyMs() float64 { return c.G[0] + c.CloudMs[0] }

// Validate checks the structural invariants the planner relies on:
// F strictly increasing over Pareto cuts, G non-negative with a zero
// tail, and matching slice lengths.
func (c *Curve) Validate() error {
	n := c.Len()
	if n < 2 {
		return fmt.Errorf("profile: curve for %s has %d positions, need >= 2", c.Model, n)
	}
	if len(c.G) != n || len(c.CloudMs) != n || len(c.Bytes) != n || len(c.Labels) != n {
		return fmt.Errorf("profile: curve for %s has mismatched slice lengths", c.Model)
	}
	for i := 0; i < n; i++ {
		if c.F[i] < 0 || c.G[i] < 0 || c.CloudMs[i] < 0 {
			return fmt.Errorf("profile: curve for %s has negative value at %d", c.Model, i)
		}
		if i > 0 && c.F[i] < c.F[i-1] {
			return fmt.Errorf("profile: curve for %s has decreasing F at %d", c.Model, i)
		}
	}
	if c.G[n-1] != 0 {
		return fmt.Errorf("profile: curve for %s must end with G=0 (local-only)", c.Model)
	}
	return nil
}
