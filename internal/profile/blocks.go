package profile

import (
	"dnnjps/internal/dag"
	"dnnjps/internal/netsim"
	"dnnjps/internal/tensor"
)

// BlockStat is one row of a Fig. 4-style per-block profile: the mobile
// and cloud computation time of a named block and the upload time of
// the tensor leaving it.
type BlockStat struct {
	Label    string
	MobileMs float64
	CloudMs  float64
	CommMs   float64
	Bytes    int
}

// BlockProfile aggregates the line view of a graph by block label,
// reproducing the per-layer breakdown of Fig. 4 (where each x-axis
// "layer" is a block of conv/pool/activation operations).
func BlockProfile(g *dag.Graph, mobile, cloud Device, ch netsim.Channel, dt tensor.DType) []BlockStat {
	units := LineView(g)
	var stats []BlockStat
	for _, u := range units {
		m := mobile.NodesTimeMs(g, u.Nodes)
		c := cloud.NodesTimeMs(g, u.Nodes)
		b := g.OutBytes(u.Exit, dt)
		if len(stats) > 0 && stats[len(stats)-1].Label == u.Label {
			last := &stats[len(stats)-1]
			last.MobileMs += m
			last.CloudMs += c
			last.Bytes = b
			last.CommMs = ch.TxMs(b) + ch.RxMs(ReplyBytes)
			continue
		}
		stats = append(stats, BlockStat{
			Label:    u.Label,
			MobileMs: m,
			CloudMs:  c,
			CommMs:   ch.TxMs(b) + ch.RxMs(ReplyBytes),
			Bytes:    b,
		})
	}
	// The sink block keeps its result locally; no upload.
	if len(stats) > 0 {
		stats[len(stats)-1].CommMs = 0
		stats[len(stats)-1].Bytes = 0
	}
	return stats
}

// PathCurve profiles one independent path of a converted
// general-structure DAG (Alg. 3): index i means "cut this path after
// its i-th node". F cumulates the path's own nodes (the scheduler
// deduplicates shared prefixes later, per the paper's modified
// Alg. 1); G is the upload time of the i-th node's tensor.
func PathCurve(g *dag.Graph, path []int, mobile, cloud Device, ch netsim.Channel, dt tensor.DType) *Curve {
	n := len(path)
	c := &Curve{
		Model:   g.Name() + "/path",
		Channel: ch,
		F:       make([]float64, n),
		G:       make([]float64, n),
		CloudMs: make([]float64, n),
		Bytes:   make([]int, n),
		Labels:  make([]string, n),
	}
	var totalCloud float64
	for _, id := range path {
		totalCloud += cloud.LayerTimeMs(g, id)
	}
	var fCum, cloudCum float64
	for i, id := range path {
		fCum += mobile.LayerTimeMs(g, id)
		cloudCum += cloud.LayerTimeMs(g, id)
		c.F[i] = fCum
		c.CloudMs[i] = max(totalCloud-cloudCum, 0)
		c.Labels[i] = g.Node(id).Layer.Name()
		if i == n-1 {
			c.Bytes[i] = 0
			c.G[i] = 0
		} else {
			c.Bytes[i] = g.OutBytes(id, dt)
			c.G[i] = ch.TxMs(c.Bytes[i]) + ch.RxMs(ReplyBytes)
		}
	}
	return c
}
