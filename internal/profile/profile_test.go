package profile

import (
	"bytes"
	"math"
	"testing"

	"dnnjps/internal/models"
	"dnnjps/internal/netsim"
	"dnnjps/internal/nn"
	"dnnjps/internal/tensor"
)

func alexCurve(t *testing.T, ch netsim.Channel) *Curve {
	t.Helper()
	g := models.MustBuild("alexnet")
	c := BuildCurve(g, RaspberryPi4(), CloudGPU(), ch, tensor.Float32)
	if err := c.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return c
}

func TestLineViewLineGraph(t *testing.T) {
	g := models.MustBuild("alexnet")
	units := LineView(g)
	if len(units) != g.Len() {
		t.Errorf("line graph: %d units, want %d (one per node)", len(units), g.Len())
	}
	for _, u := range units {
		if len(u.Nodes) != 1 || u.Nodes[0] != u.Exit {
			t.Errorf("line unit must contain exactly its exit: %+v", u)
		}
	}
}

func TestLineViewMobileNetClustersBottlenecks(t *testing.T) {
	g := models.MustBuild("mobilenetv2")
	units := LineView(g)
	// Every node must appear exactly once across units.
	seen := make(map[int]int)
	for _, u := range units {
		for _, id := range u.Nodes {
			seen[id]++
		}
	}
	if len(seen) != g.Len() {
		t.Errorf("units cover %d nodes, want %d", len(seen), g.Len())
	}
	for id, n := range seen {
		if n != 1 {
			t.Errorf("node %d appears %d times", id, n)
		}
	}
	// Residual modules collapse: strictly fewer units than nodes.
	if len(units) >= g.Len() {
		t.Error("MobileNet-v2 residual modules must cluster into units")
	}
	// A residual module's interior (bneck2 is the first stride-1 block
	// with matching channels, hence a bypass Add) must be inside a
	// multi-node unit ending at its add.
	add, ok := g.NodeByName("bneck2/add")
	if !ok {
		t.Fatal("bneck2/add missing")
	}
	var found bool
	for _, u := range units {
		if u.Exit == add.ID {
			found = true
			if len(u.Nodes) < 8 {
				t.Errorf("bneck2 unit has %d nodes, want the whole module", len(u.Nodes))
			}
		}
	}
	if !found {
		t.Error("bneck2/add is not a unit exit")
	}
}

func TestDeviceLayerTime(t *testing.T) {
	g := models.MustBuild("alexnet")
	pi := RaspberryPi4()
	conv1, _ := g.NodeByName("conv1/conv")
	got := pi.LayerTimeMs(g, conv1.ID)
	want := pi.LayerOverheadMs + g.NodeFLOPs(conv1.ID)/pi.ThroughputFperMs[nn.KindConv]
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("conv1 time = %g, want %g", got, want)
	}
	// Zero-FLOP layers are free.
	in := g.Source()
	if pi.LayerTimeMs(g, in) != 0 {
		t.Error("input layer must be free")
	}
}

func TestDeviceCalibrationScale(t *testing.T) {
	g := models.MustBuild("alexnet")
	mobile := RaspberryPi4().TotalTimeMs(g)
	cloud := CloudGPU().TotalTimeMs(g)
	// Paper scale: AlexNet locally runs on the order of a second on
	// the PyTorch Pi client, single-digit ms on the GPU (Fig. 4a:
	// cloud time negligible).
	if mobile < 500 || mobile > 3000 {
		t.Errorf("mobile AlexNet = %.1fms, want O(1s)", mobile)
	}
	if cloud > 20 {
		t.Errorf("cloud AlexNet = %.1fms, want negligible", cloud)
	}
	if mobile/cloud < 50 {
		t.Errorf("mobile/cloud ratio = %.1f, want >> 1", mobile/cloud)
	}
}

func TestDeviceScaled(t *testing.T) {
	g := models.MustBuild("alexnet")
	pi := RaspberryPi4()
	fast := pi.Scaled(2)
	conv1, _ := g.NodeByName("conv1/conv")
	slow := pi.LayerTimeMs(g, conv1.ID) - pi.LayerOverheadMs
	quick := fast.LayerTimeMs(g, conv1.ID) - fast.LayerOverheadMs
	if math.Abs(slow-2*quick) > 1e-9 {
		t.Errorf("2x device should halve compute: %g vs %g", slow, quick)
	}
	defer func() {
		if recover() == nil {
			t.Error("Scaled(0) must panic")
		}
	}()
	pi.Scaled(0)
}

func TestCurveShapeProperties(t *testing.T) {
	c := alexCurve(t, netsim.WiFi)
	// F monotone increasing from 0.
	if c.F[0] != 0 {
		t.Errorf("F[0] = %g, want 0 (input unit is free)", c.F[0])
	}
	for i := 1; i < c.Len(); i++ {
		if c.F[i] < c.F[i-1] {
			t.Errorf("F decreases at %d", i)
		}
	}
	// G[0] is the raw input upload; G ends at 0.
	inputBytes := 3 * 224 * 224 * 4
	if c.Bytes[0] != inputBytes {
		t.Errorf("Bytes[0] = %d, want %d", c.Bytes[0], inputBytes)
	}
	if c.G[c.Len()-1] != 0 {
		t.Error("G must end at 0")
	}
	// CloudMs decreasing to 0.
	if c.CloudMs[c.Len()-1] != 0 {
		t.Errorf("CloudMs tail = %g, want 0", c.CloudMs[c.Len()-1])
	}
	for i := 1; i < c.Len(); i++ {
		if c.CloudMs[i] > c.CloudMs[i-1]+1e-9 {
			t.Errorf("CloudMs increases at %d", i)
		}
	}
}

func TestCurveTotals(t *testing.T) {
	c := alexCurve(t, netsim.WiFi)
	g := models.MustBuild("alexnet")
	if math.Abs(c.TotalMobileMs()-RaspberryPi4().TotalTimeMs(g)) > 1e-6 {
		t.Error("TotalMobileMs must equal device total")
	}
	wantCO := netsim.WiFi.TxMs(3*224*224*4) + CloudGPU().TotalTimeMs(g)
	if math.Abs(c.CloudOnlyMs()-wantCO) > 1e-6 {
		t.Errorf("CloudOnlyMs = %g, want %g", c.CloudOnlyMs(), wantCO)
	}
}

func TestParetoCuts(t *testing.T) {
	c := alexCurve(t, netsim.WiFi)
	cuts := c.ParetoCuts()
	if len(cuts) < 3 {
		t.Fatalf("too few Pareto cuts: %v", cuts)
	}
	// Bytes strictly decreasing along Pareto cuts (except final 0 which
	// is below everything anyway).
	for i := 1; i < len(cuts); i++ {
		if c.Bytes[cuts[i]] >= c.Bytes[cuts[i-1]] {
			t.Errorf("Pareto cut %d (bytes %d) not below %d (bytes %d)",
				cuts[i], c.Bytes[cuts[i]], cuts[i-1], c.Bytes[cuts[i-1]])
		}
	}
	// First cut is the input (cloud-only) and last is local-only.
	if cuts[0] != 0 || cuts[len(cuts)-1] != c.Len()-1 {
		t.Errorf("Pareto cuts must span cloud-only..local-only: %v", cuts)
	}
	// AlexNet conv3 increases volume over pool2; such positions must
	// be clustered away (the virtual-block rule).
	for _, i := range cuts[1:] {
		for j := 0; j < i; j++ {
			if c.Bytes[j] <= c.Bytes[i] && i != c.Len()-1 {
				t.Errorf("cut %d dominated by earlier position %d", i, j)
			}
		}
	}
}

func TestRestrict(t *testing.T) {
	c := alexCurve(t, netsim.WiFi)
	cuts := c.ParetoCuts()
	r, idx := c.Restrict(cuts)
	if r.Len() != len(cuts) {
		t.Fatalf("restricted len = %d, want %d", r.Len(), len(cuts))
	}
	for i, orig := range idx {
		if r.F[i] != c.F[orig] || r.G[i] != c.G[orig] {
			t.Errorf("restricted entry %d mismatches original %d", i, orig)
		}
	}
	if err := r.Validate(); err != nil {
		t.Errorf("restricted curve invalid: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-range restrict must panic")
		}
	}()
	c.Restrict([]int{c.Len()})
}

func TestInterpolators(t *testing.T) {
	c := alexCurve(t, netsim.WiFi)
	fi, gi := c.FInterp(), c.GInterp()
	for i := 0; i < c.Len(); i++ {
		if math.Abs(fi.Eval(float64(i))-c.F[i]) > 1e-9 {
			t.Errorf("FInterp(%d) = %g, want %g", i, fi.Eval(float64(i)), c.F[i])
		}
		if math.Abs(gi.Eval(float64(i))-c.G[i]) > 1e-9 {
			t.Errorf("GInterp(%d) mismatch", i)
		}
	}
}

func TestFitGAndSynthetic(t *testing.T) {
	c := alexCurve(t, netsim.WiFi)
	restricted, _ := c.Restrict(c.ParetoCuts())
	fit, err := restricted.FitG()
	if err != nil {
		t.Fatalf("FitG: %v", err)
	}
	if fit.B >= 0 {
		t.Errorf("fitted G must decay (B=%g)", fit.B)
	}
	syn, err := restricted.Synthetic()
	if err != nil {
		t.Fatalf("Synthetic: %v", err)
	}
	if syn.Model != restricted.Model+"'" {
		t.Errorf("synthetic model name = %q", syn.Model)
	}
	if syn.G[syn.Len()-1] != 0 {
		t.Error("synthetic curve must keep G tail at 0")
	}
	// Synthetic G is strictly decreasing (a pure exponential).
	for i := 1; i < syn.Len()-1; i++ {
		if syn.G[i] >= syn.G[i-1] {
			t.Errorf("synthetic G not decreasing at %d", i)
		}
	}
	if err := syn.Validate(); err != nil {
		t.Errorf("synthetic invalid: %v", err)
	}
}

func TestBlockProfileAlexNet(t *testing.T) {
	g := models.MustBuild("alexnet")
	stats := BlockProfile(g, RaspberryPi4(), CloudGPU(), netsim.WiFi, tensor.Float32)
	// input + 5 conv blocks + 3 fc blocks = 9 rows.
	if len(stats) != 9 {
		var labels []string
		for _, s := range stats {
			labels = append(labels, s.Label)
		}
		t.Fatalf("blocks = %v, want 9", labels)
	}
	if stats[0].Label != "input" || stats[1].Label != "conv1" || stats[8].Label != "fc8" {
		t.Errorf("unexpected block order: %+v", stats)
	}
	// Fig. 4(a): cloud time negligible vs mobile for every block.
	for _, s := range stats[1:] {
		if s.CloudMs > s.MobileMs {
			t.Errorf("block %s: cloud %.2f > mobile %.2f", s.Label, s.CloudMs, s.MobileMs)
		}
	}
	// Last block ships nothing.
	last := stats[len(stats)-1]
	if last.CommMs != 0 || last.Bytes != 0 {
		t.Errorf("final block must not upload: %+v", last)
	}
}

func TestPathCurveGoogLeNet(t *testing.T) {
	g := models.MustBuild("googlenet")
	segs, err := g.Decompose(0)
	if err != nil {
		t.Fatalf("Decompose: %v", err)
	}
	// Build a full path: articulations plus the first branch of each
	// parallel region.
	var path []int
	for _, s := range segs {
		if s.IsParallel() {
			path = append(path, s.Branches[0]...)
		} else {
			path = append(path, s.Node)
		}
	}
	c := PathCurve(g, path, RaspberryPi4(), CloudGPU(), netsim.WiFi, tensor.Float32)
	if err := c.Validate(); err != nil {
		t.Fatalf("path curve invalid: %v", err)
	}
	if c.Len() != len(path) {
		t.Errorf("path curve len = %d, want %d", c.Len(), len(path))
	}
}

func TestLookupTableRoundTrip(t *testing.T) {
	tab := NewLookupTable()
	for _, ch := range netsim.Presets() {
		tab.Put(alexCurve(t, ch))
	}
	if len(tab.Keys()) != 3 {
		t.Fatalf("keys = %v", tab.Keys())
	}
	var buf bytes.Buffer
	if err := tab.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := LoadLookupTable(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	c, ok := got.Get("alexnet", "Wi-Fi")
	if !ok {
		t.Fatalf("missing entry; keys = %v", got.Keys())
	}
	want, _ := tab.Get("alexnet", "Wi-Fi")
	if c.Len() != want.Len() || c.F[3] != want.F[3] || c.Bytes[0] != want.Bytes[0] {
		t.Error("round-tripped curve differs")
	}
}

func TestLoadLookupTableRejectsInvalid(t *testing.T) {
	if _, err := LoadLookupTable(bytes.NewBufferString(`{"entries":{"x@y":{"Model":"x","F":[0,1],"G":[1,1],"CloudMs":[0,0],"Bytes":[1,0],"Labels":["a","b"]}}}`)); err == nil {
		t.Error("curve with nonzero G tail must be rejected")
	}
	if _, err := LoadLookupTable(bytes.NewBufferString(`not json`)); err == nil {
		t.Error("malformed JSON must error")
	}
	got, err := LoadLookupTable(bytes.NewBufferString(`{}`))
	if err != nil || got.Entries == nil {
		t.Error("empty table must load with non-nil map")
	}
}

// Across the whole zoo: curves validate and Pareto cuts obey the
// virtual-block dominance rule.
func TestZooCurves(t *testing.T) {
	for _, name := range models.Names() {
		g := models.MustBuild(name)
		for _, ch := range netsim.Presets() {
			c := BuildCurve(g, RaspberryPi4(), CloudGPU(), ch, tensor.Float32)
			if err := c.Validate(); err != nil {
				t.Errorf("%s@%s: %v", name, ch.Name, err)
			}
			cuts := c.ParetoCuts()
			if len(cuts) < 2 {
				t.Errorf("%s@%s: degenerate Pareto cuts %v", name, ch.Name, cuts)
			}
		}
	}
}
