// Package profile turns a DNN graph into the latency curves the
// planner consumes: the cumulative mobile computation f(l) and the
// offload communication time g(l) for every candidate cut-point l
// (§3.1 of the paper). It plays the role of the paper's PyTorch
// Profiler lookup table plus the linear regression communication
// model, replacing the Raspberry Pi / GPU testbed with parametric
// device cost models (see DESIGN.md, substitutions).
package profile

import (
	"fmt"

	"dnnjps/internal/dag"
	"dnnjps/internal/nn"
)

// Device is a per-layer-kind cost model: effective throughput in
// FLOPs per millisecond plus a fixed per-layer dispatch overhead.
// Effective throughput differs by kind because convolutions are
// compute-bound while depthwise/dense layers are memory-bound.
type Device struct {
	Name string
	// ThroughputFperMs maps a layer kind to effective FLOPs/ms.
	ThroughputFperMs map[nn.Kind]float64
	// DefaultFperMs is used for kinds not present in the map.
	DefaultFperMs float64
	// LayerOverheadMs is the fixed dispatch cost per layer (framework
	// overhead on the mobile CPU, kernel-launch latency on the GPU).
	LayerOverheadMs float64
}

// LayerTimeMs returns the modeled execution time of node id on the
// device.
func (d Device) LayerTimeMs(g *dag.Graph, id int) float64 {
	flops := g.NodeFLOPs(id)
	if flops == 0 {
		// Free layers (input, flatten, dropout) do not pay dispatch
		// overhead either: frameworks fold them away.
		return 0
	}
	tp := d.DefaultFperMs
	if v, ok := d.ThroughputFperMs[g.Node(id).Layer.Kind()]; ok {
		tp = v
	}
	if tp <= 0 {
		panic(fmt.Sprintf("profile: device %s has non-positive throughput for %v",
			d.Name, g.Node(id).Layer.Kind()))
	}
	return d.LayerOverheadMs + flops/tp
}

// NodesTimeMs sums LayerTimeMs over a set of node IDs.
func (d Device) NodesTimeMs(g *dag.Graph, ids []int) float64 {
	var sum float64
	for _, id := range ids {
		sum += d.LayerTimeMs(g, id)
	}
	return sum
}

// TotalTimeMs is the device time for the whole graph.
func (d Device) TotalTimeMs(g *dag.Graph) float64 {
	return d.NodesTimeMs(g, g.Topo())
}

// RaspberryPi4 models the paper's mobile device (quad-core Cortex-A72,
// 4 GB RAM) running an eager-mode PyTorch client: roughly one
// effective GFLOPS on convolutions and markedly less on memory-bound
// dense and depthwise layers — PyTorch on the Pi leaves most of the
// silicon idle. Calibrated so local inference lands on the paper's
// Fig. 12/13 scale (AlexNet ≈ 1.4 s, ResNet-18 ≈ 3 s locally).
func RaspberryPi4() Device {
	return Device{
		Name: "raspberrypi4",
		ThroughputFperMs: map[nn.Kind]float64{
			nn.KindConv:          1.2e6,
			nn.KindDepthwiseConv: 0.2e6,
			nn.KindDense:         0.5e6,
			nn.KindMaxPool:       0.5e6,
			nn.KindAvgPool:       0.5e6,
			nn.KindGlobalAvgPool: 0.5e6,
			nn.KindActivation:    4.0e6,
			nn.KindBatchNorm:     1.6e6,
			nn.KindLRN:           0.5e6,
			nn.KindConcat:        2.0e6,
			nn.KindAdd:           2.0e6,
			nn.KindSoftmax:       1.0e6,
		},
		DefaultFperMs:   1.0e6,
		LayerOverheadMs: 0.3,
	}
}

// CloudGPU models the paper's server (i7-8700 + GTX 1080): two to
// three orders of magnitude faster per layer, with a small kernel
// launch overhead. Its whole-model times are a few milliseconds —
// "negligible" in the paper's two-stage formulation, but still modeled
// so the simulator can verify that claim.
func CloudGPU() Device {
	return Device{
		Name: "cloudgpu",
		ThroughputFperMs: map[nn.Kind]float64{
			nn.KindConv:          900e6,
			nn.KindDepthwiseConv: 120e6,
			nn.KindDense:         350e6,
			nn.KindMaxPool:       250e6,
			nn.KindAvgPool:       250e6,
			nn.KindGlobalAvgPool: 250e6,
			nn.KindActivation:    2000e6,
			nn.KindBatchNorm:     900e6,
			nn.KindLRN:           250e6,
			nn.KindConcat:        1200e6,
			nn.KindAdd:           1200e6,
			nn.KindSoftmax:       500e6,
		},
		DefaultFperMs:   500e6,
		LayerOverheadMs: 0.05,
	}
}

// Quantized models the device running the int8 inference path: the
// heavy layers speed up by documented per-kind factors, everything
// else is unchanged (the runtime keeps activations, pooling, and
// residual arithmetic in float32 between quantized layers).
//
// Since the VPMADDWD assembly tile landed, the factors are grounded in
// this repo's own measured int8/f32 kernel ratios on the AVX2
// reference host (BenchmarkQgemmCrossover vs BenchmarkSgemmCrossover,
// BenchmarkDense_4096x4096, BenchmarkForward quant legs; see
// EXPERIMENTS.md):
//
//   - conv ≈ 1.6x — compute-bound; the int8 tile retires two
//     multiply-adds per lane pair against FMA's one (34 vs 26-29
//     MAC/ns measured), plus halved B-panel packing traffic, minus the
//     requantize/quantize epilogues.
//   - dense ≈ 4x — memory-bound on streamed weights, so the speedup
//     tracks bytes, not MACs: int8 weights are a quarter of the
//     traffic. (The reference host measures 8.4x because its f32 GEMV
//     is scalar; 4x is the traffic-bound figure a device with a
//     vectorized f32 GEMV would see.)
//   - depthwise ≈ 1.1x — no int8 SIMD depthwise kernel here, and the
//     arithmetic intensity is too low for the pack-traffic win to
//     matter: scalar int8 with the hoisted zero-point correction is
//     roughly at parity with the f32 plane loop, so only sdot-class
//     hardware keeps a modest edge.
func (d Device) Quantized() Device {
	factor := map[nn.Kind]float64{
		nn.KindConv:          1.6,
		nn.KindDense:         4.0,
		nn.KindDepthwiseConv: 1.1,
	}
	out := Device{
		Name:             d.Name + "_int8",
		ThroughputFperMs: make(map[nn.Kind]float64, len(d.ThroughputFperMs)),
		DefaultFperMs:    d.DefaultFperMs,
		LayerOverheadMs:  d.LayerOverheadMs,
	}
	for k, v := range d.ThroughputFperMs {
		if f, ok := factor[k]; ok {
			v *= f
		}
		out.ThroughputFperMs[k] = v
	}
	return out
}

// Scaled returns a copy of the device with all throughputs multiplied
// by factor — used by ablations that sweep the mobile/cloud speed gap.
func (d Device) Scaled(factor float64) Device {
	if factor <= 0 {
		panic("profile: non-positive scale factor")
	}
	out := Device{
		Name:             fmt.Sprintf("%s_x%g", d.Name, factor),
		ThroughputFperMs: make(map[nn.Kind]float64, len(d.ThroughputFperMs)),
		DefaultFperMs:    d.DefaultFperMs * factor,
		LayerOverheadMs:  d.LayerOverheadMs,
	}
	for k, v := range d.ThroughputFperMs {
		out.ThroughputFperMs[k] = v * factor
	}
	return out
}
