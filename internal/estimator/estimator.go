// Package estimator provides the client-side online link estimator
// behind continuous adaptive replanning: a half-life-parameterized
// EWMA over per-upload uplink throughput (and reply latency), plus a
// CUSUM change-point detector that distinguishes a genuine bandwidth
// regime shift from transient jitter. The runtime feeds it the
// shaper's ground-truth byte/duration samples; the fault-tolerant
// runner polls it between pipeline windows and re-plans the remaining
// jobs (core.Replan) when the estimate has genuinely moved — replacing
// the one-shot cumulative LinkHealth threshold, whose early fast
// samples dilute a late degradation indefinitely.
//
// The detector works on relative residuals against the current EWMA:
// r = (x - est)/est. Bounded jitter of amplitude a < Drift can never
// accumulate (each |r| stays inside the per-sample dead band), while a
// regime shift leaves est anchored at the old level for a few samples
// — half-life permitting — so |r| ≈ the relative shift and the CUSUM
// crosses Threshold within one or two samples. On detection the
// estimate snaps to the triggering sample (history from the dead
// regime is discarded) and the accumulators reset, so each scripted
// DegradeStep transition fires exactly once.
package estimator

import (
	"math"
	"sync"
)

// Config parameterizes the estimator. The zero value of any field
// falls back to the DefaultConfig value, so Config{} is usable.
type Config struct {
	// HalfLifeMs is the EWMA half-life over channel time for the
	// throughput estimate: a sample covering d ms of link occupancy
	// carries weight 1 - 0.5^(d/HalfLifeMs). Longer half-lives smooth
	// harder and leave the detector a wider window to catch a shift
	// before the EWMA absorbs it.
	HalfLifeMs float64
	// ReplyAlpha is the fixed per-sample EWMA weight of the reply
	// latency estimate (replies are events, not durations of link
	// occupancy, so they decay per sample rather than per ms).
	ReplyAlpha float64
	// Drift is the CUSUM per-sample dead band k, in relative units:
	// residuals within ±Drift of the current estimate accumulate no
	// evidence. Set it above the link's natural jitter amplitude.
	Drift float64
	// Threshold is the CUSUM decision threshold h, in accumulated
	// relative units: evidence past the dead band sums until it
	// crosses Threshold, which declares a change point.
	Threshold float64
	// Warmup is the number of throughput samples folded in before the
	// detector arms (the first samples of a connection establish the
	// baseline and must not count as evidence against themselves).
	Warmup int
	// Record retains every accepted upload sample so the stream can be
	// dumped as a ReplayTrace (the regression corpus format). Off by
	// default — recording grows memory linearly with the run.
	Record bool `json:"-"`
}

// DefaultConfig returns the defaults the zero Config maps to: a 250 ms
// half-life, 15% dead band against jitter, and a 0.5 decision
// threshold — a clean 12→2 Mb/s step (residual ≈ −0.83) fires on its
// second degraded sample, while ±10% jitter never accumulates.
func DefaultConfig() Config {
	return Config{
		HalfLifeMs: 250,
		ReplyAlpha: 0.25,
		Drift:      0.15,
		Threshold:  0.5,
		Warmup:     2,
	}
}

// withDefaults fills zero fields from DefaultConfig.
func (c Config) withDefaults() Config {
	def := DefaultConfig()
	if c.HalfLifeMs <= 0 {
		c.HalfLifeMs = def.HalfLifeMs
	}
	if c.ReplyAlpha <= 0 || c.ReplyAlpha > 1 {
		c.ReplyAlpha = def.ReplyAlpha
	}
	if c.Drift <= 0 {
		c.Drift = def.Drift
	}
	if c.Threshold <= 0 {
		c.Threshold = def.Threshold
	}
	if c.Warmup <= 0 {
		c.Warmup = def.Warmup
	}
	return c
}

// Direction classifies a change point.
type Direction int

const (
	// Down means throughput shifted below the tracked regime.
	Down Direction = iota
	// Up means throughput shifted above the tracked regime.
	Up
)

func (d Direction) String() string {
	if d == Up {
		return "up"
	}
	return "down"
}

// ChangePoint records one detected regime shift.
type ChangePoint struct {
	// Sample is the 0-based index of the upload sample that crossed
	// the threshold.
	Sample int
	// Direction is the shift's sign.
	Direction Direction
	// FromMbps is the EWMA estimate the moment before detection (the
	// dead regime's level); ToMbps is the estimate after the snap (the
	// triggering sample's throughput).
	FromMbps, ToMbps float64
}

// Estimator is the online link/load estimator. All methods are safe
// for concurrent use: the client's writer goroutine feeds uploads, its
// demultiplexer feeds replies, and the runner reads between windows.
type Estimator struct {
	cfg Config

	mu sync.Mutex
	// Throughput EWMA + CUSUM state.
	est     float64 // Mb/s, 0 until the first sample
	samples int
	sPos    float64 // evidence the rate shifted up
	sNeg    float64 // evidence the rate shifted down
	cps     []ChangePoint
	// Reply latency EWMA.
	replyEst     float64
	replySamples int
	// Recorded sample stream (cfg.Record only).
	rec []ReplaySample
}

// New builds an estimator; zero Config fields take defaults.
func New(cfg Config) *Estimator {
	return &Estimator{cfg: cfg.withDefaults()}
}

// Config returns the (default-filled) configuration in force.
func (e *Estimator) Config() Config { return e.cfg }

// AddUpload folds one completed upload of the given wire size and
// channel-time duration into the throughput estimate. It returns the
// change point this sample triggered, if any. Degenerate samples —
// non-positive size or duration, NaN or Inf — are rejected without
// touching the estimate, so a poisoned measurement can never make the
// estimate non-finite. Safe on a nil receiver (a no-op), so the client
// hot path pays one branch when no estimator is attached.
func (e *Estimator) AddUpload(bytes int, durMs float64) (ChangePoint, bool) {
	if e == nil {
		return ChangePoint{}, false
	}
	if bytes <= 0 || durMs <= 0 || math.IsNaN(durMs) || math.IsInf(durMs, 0) {
		return ChangePoint{}, false
	}
	mbps := float64(bytes) * 8 / (durMs * 1000) // bytes over ms → Mb/s
	if mbps <= 0 || math.IsNaN(mbps) || math.IsInf(mbps, 0) {
		return ChangePoint{}, false
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	if e.cfg.Record {
		e.rec = append(e.rec, ReplaySample{Bytes: bytes, DurMs: durMs})
	}
	idx := e.samples
	e.samples++
	if idx < e.cfg.Warmup {
		// Warmup seeds the baseline with a plain running mean rather
		// than the EWMA: a short upload's EWMA weight is tiny against
		// the half-life (a 16 ms sample at a 250 ms half-life carries
		// ~4%), so seeding from the first sample alone would pin the
		// estimate to that one sample's noise for dozens of samples —
		// enough to trip a divergence-based replanner on a healthy link.
		e.est += (mbps - e.est) / float64(idx+1)
		return ChangePoint{}, false
	}

	// Residual against the estimate BEFORE folding this sample in:
	// under steady jitter est tracks the mean so |r| stays inside the
	// dead band; right after a shift est still holds the old level so
	// r carries the full relative jump.
	prev := e.est
	r := (mbps - prev) / prev
	w := 1 - math.Pow(0.5, durMs/e.cfg.HalfLifeMs)
	e.est += w * (mbps - e.est)

	if idx < e.cfg.Warmup {
		return ChangePoint{}, false
	}
	e.sPos = math.Max(0, e.sPos+r-e.cfg.Drift)
	e.sNeg = math.Max(0, e.sNeg-r-e.cfg.Drift)
	var dir Direction
	switch {
	case e.sNeg > e.cfg.Threshold:
		dir = Down
	case e.sPos > e.cfg.Threshold:
		dir = Up
	default:
		return ChangePoint{}, false
	}
	cp := ChangePoint{Sample: idx, Direction: dir, FromMbps: prev, ToMbps: mbps}
	// Snap: the dead regime's history is evidence about a link that no
	// longer exists. Restarting from the triggering sample is what
	// lets the replanner price the new regime immediately instead of
	// waiting out the EWMA's convergence lag.
	e.est = mbps
	e.sPos, e.sNeg = 0, 0
	e.cps = append(e.cps, cp)
	return cp, true
}

// AddReply folds one reply round-trip latency (ms) into the latency
// estimate. Degenerate samples are rejected; nil-safe.
func (e *Estimator) AddReply(latencyMs float64) {
	if e == nil || latencyMs <= 0 || math.IsNaN(latencyMs) || math.IsInf(latencyMs, 0) {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.replySamples == 0 {
		e.replyEst = latencyMs
	} else {
		e.replyEst += e.cfg.ReplyAlpha * (latencyMs - e.replyEst)
	}
	e.replySamples++
}

// Mbps returns the current throughput estimate and how many samples
// are behind it (0 samples → estimate 0). Nil-safe.
func (e *Estimator) Mbps() (mbps float64, samples int) {
	if e == nil {
		return 0, 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.est, e.samples
}

// ReplyLatencyMs returns the reply-latency estimate and its sample
// count. Nil-safe.
func (e *Estimator) ReplyLatencyMs() (ms float64, samples int) {
	if e == nil {
		return 0, 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.replyEst, e.replySamples
}

// Samples snapshots the recorded upload stream (empty unless the
// estimator was built with Config.Record). Replaying it through a
// fresh estimator under the same config reproduces the change points
// exactly — that is the regression corpus contract. Nil-safe.
func (e *Estimator) Samples() []ReplaySample {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]ReplaySample(nil), e.rec...)
}

// ChangePoints snapshots every change point detected so far, oldest
// first. Nil-safe.
func (e *Estimator) ChangePoints() []ChangePoint {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]ChangePoint(nil), e.cps...)
}
