package estimator

import (
	"math"
	"math/rand"
	"testing"
)

// feed pushes a run of samples at the given true rate with bounded
// multiplicative jitter, returning how many change points fired.
func feed(e *Estimator, rng *rand.Rand, mbps, jitter float64, n int, bytes int) int {
	fired := 0
	for i := 0; i < n; i++ {
		rate := mbps * (1 + jitter*(2*rng.Float64()-1))
		durMs := float64(bytes) * 8 / (rate * 1000)
		if _, ok := e.AddUpload(bytes, durMs); ok {
			fired++
		}
	}
	return fired
}

// TestEWMAWithinSampleWindow is the convexity property: the estimate
// after any prefix of samples is a convex combination of the samples
// seen so far, so it must lie within [min, max] of that window. Swept
// over seeds, rates, and sample sizes.
func TestEWMAWithinSampleWindow(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		e := New(Config{})
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := 0; i < 200; i++ {
			bytes := 1 + rng.Intn(1<<20)
			durMs := 0.01 + 100*rng.Float64()
			mbps := float64(bytes) * 8 / (durMs * 1000)
			e.AddUpload(bytes, durMs)
			if mbps < lo {
				lo = mbps
			}
			if mbps > hi {
				hi = mbps
			}
			got, samples := e.Mbps()
			if samples != i+1 {
				t.Fatalf("seed %d sample %d: samples = %d", seed, i, samples)
			}
			const eps = 1e-9
			if got < lo*(1-eps)-eps || got > hi*(1+eps)+eps {
				t.Fatalf("seed %d sample %d: estimate %.6f outside window [%.6f, %.6f]",
					seed, i, got, lo, hi)
			}
		}
	}
}

// TestNoChangePointUnderConstantRateJitter: bounded jitter strictly
// inside the drift dead band must never accumulate into a change
// point, whatever the seed.
func TestNoChangePointUnderConstantRateJitter(t *testing.T) {
	cfg := DefaultConfig()
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		for _, mbps := range []float64{1.1, 5.85, 18.88} {
			e := New(cfg)
			// ±10% multiplicative jitter; residuals against a converged
			// EWMA stay within ~±2·jitter/(1+... ) — inside Drift 0.15 is
			// the contract DefaultConfig documents for ±10%.
			if fired := feed(e, rng, mbps, 0.10, 500, 64<<10); fired != 0 {
				t.Errorf("seed %d rate %.2f: %d change points under constant-rate jitter, want 0",
					seed, mbps, fired)
			}
			got, _ := e.Mbps()
			if got < mbps*0.9 || got > mbps*1.1 {
				t.Errorf("seed %d rate %.2f: estimate %.3f drifted outside jitter band", seed, mbps, got)
			}
		}
	}
}

// TestChangePointOncePerStep: each scripted step transition — down,
// up, and a sawtooth of both — fires exactly one change point, and the
// snapped estimate lands on the new regime.
func TestChangePointOncePerStep(t *testing.T) {
	steps := []struct {
		name  string
		rates []float64
	}{
		{"step-down", []float64{12, 2}},
		{"step-up", []float64{2, 12}},
		{"sawtooth", []float64{12, 2, 12, 2}},
		{"two-step-down", []float64{12, 6, 2}},
	}
	for _, tc := range steps {
		for seed := int64(0); seed < 20; seed++ {
			rng := rand.New(rand.NewSource(seed))
			e := New(Config{})
			want := 0
			for phase, rate := range tc.rates {
				fired := feed(e, rng, rate, 0.05, 30, 64<<10)
				if phase > 0 {
					want++
				}
				if got := len(e.ChangePoints()); got != want {
					t.Fatalf("%s seed %d after phase %d: %d change points, want %d (fired %d this phase)",
						tc.name, seed, phase, got, want, fired)
				}
				est, _ := e.Mbps()
				if est < rate*0.85 || est > rate*1.15 {
					t.Fatalf("%s seed %d phase %d: estimate %.3f not tracking rate %.3f",
						tc.name, seed, phase, est, rate)
				}
			}
			// Directions must match the step signs.
			cps := e.ChangePoints()
			for i, cp := range cps {
				wantDir := Down
				if tc.rates[i+1] > tc.rates[i] {
					wantDir = Up
				}
				if cp.Direction != wantDir {
					t.Errorf("%s seed %d: change point %d direction %v, want %v",
						tc.name, seed, i, cp.Direction, wantDir)
				}
			}
		}
	}
}

// TestSlowRampTracks: a gradual 12→2 ramp must keep the estimate
// inside the ramp envelope and end near the final rate; the detector
// may fire along the way (each fire re-anchors) but must not fire
// after the ramp settles.
func TestSlowRampTracks(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		e := New(Config{})
		const rampSteps = 100
		for i := 0; i < rampSteps; i++ {
			rate := 12 - 10*float64(i)/float64(rampSteps-1)
			feed(e, rng, rate, 0.05, 1, 64<<10)
		}
		// A few samples of grace: residual CUSUM evidence accumulated
		// during the ramp's tail may legitimately fire just after it
		// stops, and the accumulators drain by Drift per steady sample.
		feed(e, rng, 2, 0.05, 10, 64<<10)
		settled := len(e.ChangePoints())
		feed(e, rng, 2, 0.05, 100, 64<<10)
		if got := len(e.ChangePoints()); got != settled {
			t.Errorf("seed %d: %d change points after the ramp settled (had %d)", seed, got, settled)
		}
		est, _ := e.Mbps()
		if est < 2*0.85 || est > 2*1.15 {
			t.Errorf("seed %d: post-ramp estimate %.3f, want ≈2", seed, est)
		}
	}
}

// TestReplyLatencyEWMA pins the reply-side estimate: seeded from the
// first sample, then exponentially weighted, always within the sample
// window, and immune to degenerate inputs.
func TestReplyLatencyEWMA(t *testing.T) {
	e := New(Config{ReplyAlpha: 0.5})
	if ms, n := e.ReplyLatencyMs(); ms != 0 || n != 0 {
		t.Fatalf("fresh estimator reply state = (%f, %d)", ms, n)
	}
	e.AddReply(10)
	if ms, n := e.ReplyLatencyMs(); ms != 10 || n != 1 {
		t.Fatalf("after first reply: (%f, %d), want (10, 1)", ms, n)
	}
	e.AddReply(20)
	if ms, _ := e.ReplyLatencyMs(); ms != 15 {
		t.Fatalf("after 10,20 at alpha 0.5: %f, want 15", ms)
	}
	for _, bad := range []float64{0, -1, math.NaN(), math.Inf(1), math.Inf(-1)} {
		e.AddReply(bad)
	}
	if ms, n := e.ReplyLatencyMs(); ms != 15 || n != 2 {
		t.Fatalf("degenerate replies changed state: (%f, %d)", ms, n)
	}
}

// TestDegenerateUploadsRejected: zero/negative sizes and durations,
// NaN and Inf must neither panic, nor count, nor move the estimate.
func TestDegenerateUploadsRejected(t *testing.T) {
	e := New(Config{})
	e.AddUpload(64<<10, 50)
	want, _ := e.Mbps()
	for _, s := range []ReplaySample{
		{Bytes: 0, DurMs: 50}, {Bytes: -1, DurMs: 50},
		{Bytes: 1024, DurMs: 0}, {Bytes: 1024, DurMs: -3},
		{Bytes: 1024, DurMs: math.NaN()}, {Bytes: 1024, DurMs: math.Inf(1)},
		{Bytes: 1024, DurMs: math.Inf(-1)}, {Bytes: 1024, DurMs: 1e-320},
	} {
		if _, ok := e.AddUpload(s.Bytes, s.DurMs); ok {
			t.Errorf("degenerate sample %+v fired a change point", s)
		}
	}
	got, n := e.Mbps()
	if got != want || n != 1 {
		t.Errorf("degenerate samples moved the estimate: (%f, %d), want (%f, 1)", got, n, want)
	}
	if math.IsNaN(got) || math.IsInf(got, 0) {
		t.Errorf("estimate went non-finite: %f", got)
	}
}

// TestNilEstimatorSafe: the runtime attaches the estimator optionally;
// every method must be a no-op on nil.
func TestNilEstimatorSafe(t *testing.T) {
	var e *Estimator
	if _, ok := e.AddUpload(1024, 10); ok {
		t.Error("nil AddUpload fired")
	}
	e.AddReply(5)
	if mbps, n := e.Mbps(); mbps != 0 || n != 0 {
		t.Error("nil Mbps not zero")
	}
	if ms, n := e.ReplyLatencyMs(); ms != 0 || n != 0 {
		t.Error("nil ReplyLatencyMs not zero")
	}
	if cps := e.ChangePoints(); cps != nil {
		t.Error("nil ChangePoints not nil")
	}
}

// TestConfigDefaults: zero fields fall back; explicit fields stick.
func TestConfigDefaults(t *testing.T) {
	def := DefaultConfig()
	if got := New(Config{}).Config(); got != def {
		t.Errorf("zero config = %+v, want defaults %+v", got, def)
	}
	custom := Config{HalfLifeMs: 100, ReplyAlpha: 0.5, Drift: 0.2, Threshold: 1, Warmup: 5}
	if got := New(custom).Config(); got != custom {
		t.Errorf("custom config = %+v, want %+v", got, custom)
	}
	bad := New(Config{ReplyAlpha: 1.5})
	if got := bad.Config().ReplyAlpha; got != def.ReplyAlpha {
		t.Errorf("ReplyAlpha > 1 kept: %f", got)
	}
}
