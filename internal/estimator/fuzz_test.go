package estimator

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzEstimator drives the estimator with an arbitrary byte string
// decoded as a stream of (bytes, durMs) upload samples interleaved
// with reply samples and config knobs. The invariants: never panic,
// the throughput and reply estimates stay finite whatever arrives, the
// sample counters only count accepted samples, and every recorded
// change point indexes an accepted sample.
func FuzzEstimator(f *testing.F) {
	// Seeds: a clean constant-rate stream, a step-down, degenerate
	// floats, and a config-twiddling stream.
	f.Add([]byte{})
	clean := make([]byte, 0, 13*8)
	for i := 0; i < 8; i++ {
		clean = appendSample(clean, 64<<10, 40)
	}
	f.Add(clean)
	step := make([]byte, 0, 13*12)
	for i := 0; i < 6; i++ {
		step = appendSample(step, 64<<10, 40)
	}
	for i := 0; i < 6; i++ {
		step = appendSample(step, 64<<10, 240)
	}
	f.Add(step)
	bad := appendSample(nil, -5, math.NaN())
	bad = appendSample(bad, 1<<30, math.Inf(1))
	bad = appendSample(bad, 0, 0)
	bad = appendSample(bad, 1024, 5e-324)
	f.Add(bad)

	f.Fuzz(func(t *testing.T, data []byte) {
		// First two bytes (when present) perturb the config; the zero
		// value must behave like defaults.
		cfg := Config{}
		if len(data) >= 2 {
			cfg.HalfLifeMs = float64(data[0]) * 10
			cfg.Drift = float64(data[1]) / 100
		}
		e := New(cfg)
		accepted := 0
		for len(data) >= 13 {
			op := data[0]
			bytes := int(int32(binary.LittleEndian.Uint32(data[1:5])))
			durMs := math.Float64frombits(binary.LittleEndian.Uint64(data[5:13]))
			data = data[13:]
			if op%2 == 0 {
				before, _ := e.Mbps()
				_, fired := e.AddUpload(bytes, durMs)
				after, n := e.Mbps()
				ok := sampleOK(bytes, durMs)
				if !ok {
					if after != before {
						t.Fatalf("rejected sample (%d, %g) moved estimate %g -> %g", bytes, durMs, before, after)
					}
					if fired {
						t.Fatalf("rejected sample (%d, %g) fired a change point", bytes, durMs)
					}
				} else {
					accepted++
				}
				if n != accepted {
					t.Fatalf("sample count %d, want %d accepted", n, accepted)
				}
				if math.IsNaN(after) || math.IsInf(after, 0) || after < 0 {
					t.Fatalf("estimate went non-finite/negative: %g after (%d, %g)", after, bytes, durMs)
				}
			} else {
				e.AddReply(durMs)
				if ms, _ := e.ReplyLatencyMs(); math.IsNaN(ms) || math.IsInf(ms, 0) || ms < 0 {
					t.Fatalf("reply estimate went non-finite/negative: %g after %g", ms, durMs)
				}
			}
		}
		for _, cp := range e.ChangePoints() {
			if cp.Sample < 0 || cp.Sample >= accepted {
				t.Fatalf("change point at sample %d with only %d accepted", cp.Sample, accepted)
			}
			if math.IsNaN(cp.ToMbps) || math.IsInf(cp.ToMbps, 0) || cp.ToMbps <= 0 {
				t.Fatalf("change point with degenerate ToMbps %g", cp.ToMbps)
			}
		}
	})
}

// sampleOK mirrors AddUpload's acceptance rule for the fuzz oracle.
func sampleOK(bytes int, durMs float64) bool {
	if bytes <= 0 || durMs <= 0 || math.IsNaN(durMs) || math.IsInf(durMs, 0) {
		return false
	}
	mbps := float64(bytes) * 8 / (durMs * 1000)
	return mbps > 0 && !math.IsNaN(mbps) && !math.IsInf(mbps, 0)
}

// appendSample encodes one upload op for the fuzz stream.
func appendSample(b []byte, bytes int, durMs float64) []byte {
	b = append(b, 0) // op: upload
	var w [12]byte
	binary.LittleEndian.PutUint32(w[0:4], uint32(int32(bytes)))
	binary.LittleEndian.PutUint64(w[4:12], math.Float64bits(durMs))
	return append(b, w[:]...)
}
