package estimator

import (
	"encoding/json"
	"fmt"
	"io"
)

// ReplaySample is one recorded upload: wire size and channel-time
// duration, exactly what AddUpload consumes.
type ReplaySample struct {
	Bytes int     `json:"bytes"`
	DurMs float64 `json:"dur_ms"`
}

// ReplayPoint is one golden change point of a recorded trace, together
// with the cut the planner chose when replanning at the snapped
// estimate. Cut is planner output, not estimator state — the replay
// test recomputes it through core.Replan and compares.
type ReplayPoint struct {
	Sample    int     `json:"sample"`
	Direction string  `json:"direction"`
	Mbps      float64 `json:"mbps"`
	Cut       int     `json:"cut"`
}

// ReplayTrace is the committed adaptive-replanning regression format:
// the scripted degradation scenario, the upload sample stream it
// produced, and the golden change-point/cut sequence the estimator and
// planner must reproduce bit-for-bit (modulo JSON float round-trip).
type ReplayTrace struct {
	// Model and channel parameters pin the curve the replay replans on.
	Model      string  `json:"model"`
	UplinkMbps float64 `json:"uplink_mbps"`
	SetupMs    float64 `json:"setup_ms"`
	// Scenario documents the scripted degradation profile, for humans.
	Scenario string `json:"scenario"`
	// Config is the estimator configuration the trace was recorded
	// under (zero fields take defaults, as everywhere).
	Config Config `json:"config"`
	// Samples is the upload stream in arrival order.
	Samples []ReplaySample `json:"samples"`
	// Points is the golden change-point sequence.
	Points []ReplayPoint `json:"points"`
}

// WriteJSON writes the trace, indented for reviewable diffs.
func (t *ReplayTrace) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// ReadReplayTrace parses a trace written by WriteJSON.
func ReadReplayTrace(r io.Reader) (*ReplayTrace, error) {
	var t ReplayTrace
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("estimator: parse replay trace: %w", err)
	}
	if len(t.Samples) == 0 {
		return nil, fmt.Errorf("estimator: replay trace has no samples")
	}
	return &t, nil
}

// Replay feeds the trace's sample stream through a fresh estimator
// under the trace's config and returns the change points it detects —
// the deterministic half of the regression corpus (the planner half is
// recomputed by the caller, which owns the curve).
func (t *ReplayTrace) Replay() []ChangePoint {
	e := New(t.Config)
	for _, s := range t.Samples {
		e.AddUpload(s.Bytes, s.DurMs)
	}
	return e.ChangePoints()
}
