package engine

// Cache-blocked single-precision matrix multiply, the shared compute
// kernel behind the GEMM convolution and dense paths.
//
// Determinism contract: for every output element C[i][j] the products
// a[i][k]*b[k][j] are accumulated strictly in ascending k into a single
// accumulator, independent of the blocking parameters and the worker
// count. That makes the GEMM path produce the same values as the
// direct reference kernels (which walk the same products in the same
// order) and makes results reproducible across machines and
// GOMAXPROCS settings. Parallelism is over row panels of C, so each
// output element is written by exactly one goroutine.

const (
	// gemmBlockK is the K-panel height: four b rows of gemmBlockN
	// floats plus the c row chunk stay L1-resident while a panel of A
	// streams through.
	gemmBlockK = 240
	// gemmBlockN is the N-panel width in elements (3 KiB per row).
	gemmBlockN = 768
)

// sgemmAcc computes C += A·B for row-major A (m×k), B (k×n), C (m×n
// with row stride ldc ≥ n). C must be pre-initialized (zero or bias) by
// the caller. kern selects the driver: KernelPanel forces the streaming
// panel loop, KernelMicro the packed register-tile microkernel,
// KernelAsm the SIMD assembly tile (when the CPU has one), and
// KernelGEMM picks per shape from the measured per-arch crossover
// policies (preferAsm in gemm_asm.go, then preferMicro in
// autokernel.go). The pure-Go drivers accumulate every output element
// in the same ascending-k order, so choosing among them never changes
// the output; the asm driver keeps the same order but fuses each
// multiply-add into one rounding, so its float32 results differ within
// the tolerance documented in gemm_asm.go.
func sgemmAcc(kern KernelPath, m, k, n, ldc int, a, b, c []float32, workers int) {
	if m == 0 || k == 0 || n == 0 {
		return
	}
	if n == 1 && ldc == 1 {
		sgemvAcc(m, k, a, b, c, workers)
		return
	}
	if asmSgemmOK && (kern == KernelAsm || (kern == KernelGEMM && preferAsm(m, k, n))) {
		sgemmAsm(m, k, n, ldc, a, bPacker{b: b, ldb: n}, c, workers)
		return
	}
	// A forced KernelAsm without CPU support degrades to the auto
	// policy, matching the pre-asm behavior of this build bit for bit.
	micro := kern == KernelMicro || ((kern == KernelGEMM || kern == KernelAsm) && preferMicro(m, k, n))
	if micro && m >= microMR && n >= microNR && k >= 4 {
		sgemmMicro(m, k, n, ldc, a, b, c, workers)
		return
	}
	if serialSpan(workers, m) {
		sgemmPanel(0, m, k, n, ldc, a, b, c)
		return
	}
	parallelFor(workers, m, func(lo, hi int) {
		sgemmPanel(lo, hi, k, n, ldc, a, b, c)
	})
}

// sgemmPanel multiplies rows [lo,hi) of A into the matching rows of C.
// Loop order is jb → kb → i → k → j: a K×N panel of B is streamed over
// the whole row panel before moving on, so B panel rows are read from
// cache m times each. Rows are processed in pairs so each loaded B
// quad feeds two output rows — per-element accumulation order is
// unchanged (each row's adds stay sequential in ascending k), only the
// B-panel traffic halves.
func sgemmPanel(lo, hi, k, n, ldc int, a, b, c []float32) {
	for jb := 0; jb < n; jb += gemmBlockN {
		je := jb + gemmBlockN
		if je > n {
			je = n
		}
		for kb := 0; kb < k; kb += gemmBlockK {
			ke := kb + gemmBlockK
			if ke > k {
				ke = k
			}
			i := lo
			for ; i+2 <= hi; i += 2 {
				arow0 := a[i*k : i*k+k : i*k+k]
				arow1 := a[(i+1)*k:][:k:k]
				crow0 := c[i*ldc+jb : i*ldc+je : i*ldc+je]
				crow1 := c[(i+1)*ldc+jb:][: je-jb : je-jb]
				w := len(crow0)
				kk := kb
				for ; kk+4 <= ke; kk += 4 {
					a00, a01, a02, a03 := arow0[kk], arow0[kk+1], arow0[kk+2], arow0[kk+3]
					a10, a11, a12, a13 := arow1[kk], arow1[kk+1], arow1[kk+2], arow1[kk+3]
					b0 := b[kk*n+jb:][:w]
					b1 := b[(kk+1)*n+jb:][:w]
					b2 := b[(kk+2)*n+jb:][:w]
					b3 := b[(kk+3)*n+jb:][:w]
					// Four sequential adds per element keep the
					// per-element accumulation in ascending k (Go
					// never reassociates floating-point ops).
					for j := range crow0 {
						e0, e1, e2, e3 := b0[j], b1[j], b2[j], b3[j]
						v := crow0[j]
						v += a00 * e0
						v += a01 * e1
						v += a02 * e2
						v += a03 * e3
						crow0[j] = v
						u := crow1[j]
						u += a10 * e0
						u += a11 * e1
						u += a12 * e2
						u += a13 * e3
						crow1[j] = u
					}
				}
				for ; kk < ke; kk++ {
					av0, av1 := arow0[kk], arow1[kk]
					brow := b[kk*n+jb:][:w]
					for j := range crow0 {
						crow0[j] += av0 * brow[j]
						crow1[j] += av1 * brow[j]
					}
				}
			}
			for ; i < hi; i++ {
				arow := a[i*k : i*k+k : i*k+k]
				crow := c[i*ldc+jb : i*ldc+je : i*ldc+je]
				w := len(crow)
				kk := kb
				for ; kk+4 <= ke; kk += 4 {
					a0, a1, a2, a3 := arow[kk], arow[kk+1], arow[kk+2], arow[kk+3]
					b0 := b[kk*n+jb:][:w]
					b1 := b[(kk+1)*n+jb:][:w]
					b2 := b[(kk+2)*n+jb:][:w]
					b3 := b[(kk+3)*n+jb:][:w]
					for j := range crow {
						v := crow[j]
						v += a0 * b0[j]
						v += a1 * b1[j]
						v += a2 * b2[j]
						v += a3 * b3[j]
						crow[j] = v
					}
				}
				for ; kk < ke; kk++ {
					av := arow[kk]
					brow := b[kk*n+jb:][:w]
					for j := range crow {
						crow[j] += av * brow[j]
					}
				}
			}
		}
	}
}

// sgemvAcc computes y += A·x for row-major A (m×k), accumulating each
// row's dot product in ascending index order — the same order as the
// direct dense kernel. Rows are split across workers, and within a
// worker they are walked eight at a time: each row still owns a single
// accumulator fed in ascending k (bit-identical to the one-row loop),
// but the eight independent add chains hide the FP-add latency that
// serializes a lone dot product, and each x element is loaded once per
// eight rows instead of once per row.
func sgemvAcc(m, k int, a, x, y []float32, workers int) {
	if serialSpan(workers, m) {
		sgemvRows(0, m, k, a, x, y)
		return
	}
	parallelFor(workers, m, func(lo, hi int) {
		sgemvRows(lo, hi, k, a, x, y)
	})
}

// sgemvRows accumulates rows [lo, hi) of the matrix-vector product.
func sgemvRows(lo, hi, k int, a, x, y []float32) {
	xx := x[:k:k]
	i := lo
	for ; i+8 <= hi; i += 8 {
		r0 := a[i*k : i*k+k : i*k+k]
		r1 := a[(i+1)*k:][:k:k]
		r2 := a[(i+2)*k:][:k:k]
		r3 := a[(i+3)*k:][:k:k]
		r4 := a[(i+4)*k:][:k:k]
		r5 := a[(i+5)*k:][:k:k]
		r6 := a[(i+6)*k:][:k:k]
		r7 := a[(i+7)*k:][:k:k]
		v0, v1, v2, v3 := y[i], y[i+1], y[i+2], y[i+3]
		v4, v5, v6, v7 := y[i+4], y[i+5], y[i+6], y[i+7]
		for j, xv := range xx {
			v0 += r0[j] * xv
			v1 += r1[j] * xv
			v2 += r2[j] * xv
			v3 += r3[j] * xv
			v4 += r4[j] * xv
			v5 += r5[j] * xv
			v6 += r6[j] * xv
			v7 += r7[j] * xv
		}
		y[i], y[i+1], y[i+2], y[i+3] = v0, v1, v2, v3
		y[i+4], y[i+5], y[i+6], y[i+7] = v4, v5, v6, v7
	}
	for ; i < hi; i++ {
		row := a[i*k : i*k+k : i*k+k]
		v := y[i]
		for j, w := range row {
			v += w * xx[j]
		}
		y[i] = v
	}
}
