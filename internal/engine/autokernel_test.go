package engine

import (
	"fmt"
	"math/rand"
	"testing"
)

// The shape-aware KernelGEMM driver choice must never change output
// bits, and its structural guard must keep untileable shapes off the
// microkernel on every architecture.

// TestPreferMicroTileGuard: shapes the register tile cannot cover are
// never routed to the microkernel, regardless of the per-arch
// crossover threshold.
func TestPreferMicroTileGuard(t *testing.T) {
	cases := []struct{ m, k, n int }{
		{microMR - 1, 64, 64}, // too few rows
		{64, 64, microNR - 1}, // too few columns
		{64, 3, 64},           // too shallow to amortize packing
		{1, 1, 1},
	}
	for _, c := range cases {
		if preferMicro(c.m, c.k, c.n) {
			t.Errorf("preferMicro(%d,%d,%d) = true for an untileable shape", c.m, c.k, c.n)
		}
	}
	// A comfortably tileable deep shape resolves purely from the
	// measured per-arch threshold.
	want := microCrossoverBytes >= 0 && 1152*256*4 >= microCrossoverBytes
	if got := preferMicro(256, 1152, 256); got != want {
		t.Errorf("preferMicro(256,1152,256) = %v, want %v from microCrossoverBytes=%d",
			got, want, microCrossoverBytes)
	}
}

// TestSgemmAccDriverParity runs sgemmAcc under every kernel selection
// at shapes straddling the tile guards and the crossover working sets,
// against the forced panel driver. The pure-Go drivers share one
// accumulation order, so KernelMicro — and every selection when the
// asm path is off — must match bitwise; selections that can route to
// the FMA tile compare within the asm_parity_test.go envelope. This
// pins the contract that lets the auto policy be retuned freely.
func TestSgemmAccDriverParity(t *testing.T) {
	shapes := []struct{ m, k, n int }{
		{microMR - 1, 8, 8},   // below the row guard: micro must fall back
		{8, 8, microNR - 1},   // below the column guard
		{microMR, 4, microNR}, // exactly one register tile
		{7, 5, 9},             // ragged edges in every dimension
		{48, 96, 64},          // small B working set
		{64, 1152, 256},       // deep-K conv-lowered shape past any crossover
	}
	for _, sh := range shapes {
		t.Run(fmt.Sprintf("m%d_k%d_n%d", sh.m, sh.k, sh.n), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(sh.m*1000 + sh.n)))
			a := make([]float32, sh.m*sh.k)
			b := make([]float32, sh.k*sh.n)
			for i := range a {
				a[i] = float32(rng.NormFloat64())
			}
			for i := range b {
				b[i] = float32(rng.NormFloat64())
			}
			ref := make([]float32, sh.m*sh.n)
			sgemmAcc(KernelPanel, sh.m, sh.k, sh.n, sh.n, a, b, ref, 1)
			for _, kern := range []KernelPath{KernelGEMM, KernelMicro, KernelAsm} {
				exact := kern == KernelMicro || !asmEnabled() ||
					(kern == KernelGEMM && !preferAsm(sh.m, sh.k, sh.n))
				for _, workers := range []int{1, 4} {
					c := make([]float32, sh.m*sh.n)
					sgemmAcc(kern, sh.m, sh.k, sh.n, sh.n, a, b, c, workers)
					assertSliceParity(t, fmt.Sprintf("%v workers=%d vs panel", kern, workers),
						c, ref, exact)
				}
			}
		})
	}
}
