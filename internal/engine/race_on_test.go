//go:build race

package engine

// raceEnabled reports whether the race detector is instrumenting this
// build. Under -race, sync.Pool.Put intentionally drops items at
// random to shake out lifetime bugs, so pooled-bookkeeping allocation
// counts are nondeterministic and the strict allocs/op assertions must
// be skipped.
const raceEnabled = true
