package engine

import (
	"fmt"
	"math"

	"dnnjps/internal/tensor"
)

// Cross-job batching: n equally shaped activations execute as one
// forward pass so every conv/dense layer issues a single widened SGEMM
// instead of n narrow ones. The packed layout is channel-major,
// batch-minor, spatial-last:
//
//	CHW {C,H,W} × n  →  {C·n, H, W}   data[((c·n+b)·H+h)·W+w]
//	vec {F}     × n  →  {F·n}         data[f·n+b]
//
// Two properties make this layout the right one here. First, the
// im2col patch matrix of the packed tensor is the batch-1 patch
// matrices laid side by side — B becomes (kSize × n·hw) and the conv
// is still exactly one GEMM per group, now with n·hw columns, and its
// output lands already packed. Second, each per-image output element
// accumulates the same products in the same ascending-k order as the
// batch-1 kernels (the GEMM contract in gemm.go is per-element), so
// batched outputs are bit-identical to n separate Forwards.

// batchShape scales dim 0 of a per-image shape by the batch size —
// the packed-batch shape.
func batchShape(s tensor.Shape, n int) tensor.Shape {
	if n == 1 {
		return s
	}
	out := s.Clone()
	out[0] *= n
	return out
}

// PackBatch interleaves equally shaped tensors into the packed batch
// layout. With one input the tensor is returned as-is (the layouts
// coincide at n == 1).
func PackBatch(ts []*tensor.Tensor) (*tensor.Tensor, error) {
	n := len(ts)
	if n == 0 {
		return nil, fmt.Errorf("engine: empty batch")
	}
	s := ts[0].Shape
	for i, t := range ts[1:] {
		if !t.Shape.Equal(s) {
			return nil, fmt.Errorf("engine: batch shape mismatch: input 0 is %v, input %d is %v", s, i+1, t.Shape)
		}
	}
	if n == 1 {
		return ts[0], nil
	}
	out := tensor.New(batchShape(s, n))
	c := s[0]
	plane := s.Elems() / c
	for ch := 0; ch < c; ch++ {
		for b, t := range ts {
			copy(out.Data[(ch*n+b)*plane:], t.Data[ch*plane:(ch+1)*plane])
		}
	}
	return out, nil
}

// UnpackBatch splits a packed batch-n tensor back into n per-image
// tensors.
func UnpackBatch(t *tensor.Tensor, n int) ([]*tensor.Tensor, error) {
	if n < 1 {
		return nil, fmt.Errorf("engine: batch size %d", n)
	}
	if n == 1 {
		return []*tensor.Tensor{t}, nil
	}
	if t.Shape[0]%n != 0 {
		return nil, fmt.Errorf("engine: shape %v does not hold a batch of %d", t.Shape, n)
	}
	s := t.Shape.Clone()
	s[0] /= n
	c := s[0]
	plane := s.Elems() / c
	out := make([]*tensor.Tensor, n)
	for b := range out {
		out[b] = tensor.New(s)
	}
	for ch := 0; ch < c; ch++ {
		for b, o := range out {
			copy(o.Data[ch*plane:], t.Data[(ch*n+b)*plane:(ch*n+b+1)*plane])
		}
	}
	return out, nil
}

// ArgmaxBatch returns the per-image argmax of a packed batch-n vector
// — the same ascending scan with strict > as Argmax, per image.
func ArgmaxBatch(t *tensor.Tensor, n int) []int {
	f := len(t.Data) / n
	classes := make([]int, n)
	for b := range classes {
		best, bestV := 0, float32(math.Inf(-1))
		for i := 0; i < f; i++ {
			if v := t.Data[i*n+b]; v > bestV {
				best, bestV = i, v
			}
		}
		classes[b] = best
	}
	return classes
}

// im2colGroupBatch fills dst (kSize × bt·hw, row-major) with the
// side-by-side patch matrices of packed images [b0, b0+bt): row k,
// image b0+bi occupies columns [bi·hw, (bi+1)·hw).
func im2colGroupBatch(src, dst []float32, cLo, icpg, inH, inW, kh, kw, stride, padH, padW, outH, outW, workers, n, b0, bt int) {
	rows := icpg * kh * kw
	if serialSpan(workers, rows) {
		im2colRowsBatch(0, rows, src, dst, cLo, inH, inW, kh, kw, stride, padH, padW, outH, outW, n, b0, bt)
		return
	}
	parallelFor(workers, rows, func(lo, hi int) {
		im2colRowsBatch(lo, hi, src, dst, cLo, inH, inW, kh, kw, stride, padH, padW, outH, outW, n, b0, bt)
	})
}

// im2colRowsBatch fills batched patch-matrix rows [lo, hi).
func im2colRowsBatch(lo, hi int, src, dst []float32, cLo, inH, inW, kh, kw, stride, padH, padW, outH, outW, n, b0, bt int) {
	hw := outH * outW
	bhw := bt * hw
	for k := lo; k < hi; k++ {
		c := k / (kh * kw)
		r := k % (kh * kw) / kw
		s := k % kw
		for bi := 0; bi < bt; bi++ {
			im2colRow(src, dst[k*bhw+bi*hw:k*bhw+(bi+1)*hw], ((cLo+c)*n+b0+bi)*inH*inW,
				r, s, inH, inW, stride, padH, padW, outH, outW)
		}
	}
}

// batchTileElems caps the im2col scratch of one image group so the
// patch slab the SGEMM streams stays cache-resident instead of
// materializing kSize × n·hw floats for the whole batch at once.
const batchTileElems = 1 << 21 // 8 MiB of float32

// batchTile picks the image-group width for the retiled batched conv:
// wide enough that the group's column count amortizes the packed
// A-panel reuse inside the microkernel (≥ 2·microNC columns when the
// batch allows), narrow enough that the group scratch respects
// batchTileElems.
func batchTile(kSize, hw, n int) int {
	bt := (2*microNC + hw - 1) / hw
	for bt > 1 && kSize*bt*hw > batchTileElems {
		bt--
	}
	if bt < 1 {
		bt = 1
	}
	if bt > n {
		bt = n
	}
	return bt
}

// conv2dGEMMBatch is conv2dGEMM over a packed batch, retiled across
// images: per group of the convolution, the batch is processed in image
// groups of batchTile width, each an SGEMM of
// (ocpg × kSize)·(kSize × bt·hw) whose C slab is a column window of the
// packed output (row stride n·hw). Per-element accumulation order is
// untouched by the tiling — grouping only partitions C's columns — so
// outputs stay bit-identical to n separate Forwards at any tile width.
// inShape/outShape are the per-image shapes from the graph; in is
// packed batch-n.
func conv2dGEMMBatch(arena *tensor.Arena, kern KernelPath, in *tensor.Tensor, inShape, outShape tensor.Shape, p params, kh, kw, stride, padH, padW, groups, workers, n int) *tensor.Tensor {
	out := arena.Get(batchShape(outShape, n))
	inC, inH, inW := inShape.C(), inShape.H(), inShape.W()
	outC, outH, outW := outShape.C(), outShape.H(), outShape.W()
	icpg := inC / groups
	ocpg := outC / groups
	kSize := kh * kw * icpg
	hw := outH * outW
	nhw := n * hw

	for oc := 0; oc < outC; oc++ {
		row := out.Data[oc*nhw : (oc+1)*nhw]
		var bias float32
		if p.b != nil {
			bias = p.b[oc]
		}
		for i := range row {
			row[i] = bias
		}
	}

	// For a pure 1×1 the packed group slice is already the patch
	// matrix: row ic starts at ic·n·plane and column (b, pos) sits at
	// b·plane+pos — exactly the packed data order. No scratch is
	// materialized, so no image retiling is needed either.
	pure1x1 := kh == 1 && kw == 1 && stride == 1 && padH == 0 && padW == 0

	// On the asm path the fused packer synthesizes patch windows
	// straight from the packed input — across image boundaries — so
	// the whole batch runs as one GEMM per group with no scratch; the
	// driver's own NC/KC/MC blocking replaces batchTile's image-group
	// retiling. Elementwise results stay bit-identical to n separate
	// asm Forwards (batching only relocates an element's column, and
	// SIMD lanes are independent).
	if !pure1x1 && asmSgemmOK && (kern == KernelAsm || (kern == KernelGEMM && preferAsm(ocpg, kSize, nhw))) {
		for g := 0; g < groups; g++ {
			a := p.w[g*ocpg*kSize : (g+1)*ocpg*kSize]
			c := out.Data[g*ocpg*nhw : (g+1)*ocpg*nhw]
			pk := bPacker{
				conv: true, src: in.Data,
				inH: inH, inW: inW, kh: kh, kw: kw,
				stride: stride, padH: padH, padW: padW, outW: outW,
				cLo: g * icpg, n: n, hw: hw,
			}
			sgemmAsm(ocpg, kSize, nhw, nhw, a, pk, c, workers)
		}
		return out
	}

	if pure1x1 {
		for g := 0; g < groups; g++ {
			b := in.Data[g*icpg*n*inH*inW : (g+1)*icpg*n*inH*inW]
			a := p.w[g*ocpg*kSize : (g+1)*ocpg*kSize]
			c := out.Data[g*ocpg*nhw : (g+1)*ocpg*nhw]
			sgemmAcc(kern, ocpg, kSize, nhw, nhw, a, b, c, workers)
		}
		return out
	}

	bt := batchTile(kSize, hw, n)
	scratch := arena.GetSlice(kSize * bt * hw)
	defer arena.PutSlice(scratch)
	for g := 0; g < groups; g++ {
		a := p.w[g*ocpg*kSize : (g+1)*ocpg*kSize]
		for b0 := 0; b0 < n; b0 += bt {
			bw := min(bt, n-b0)
			im2colGroupBatch(in.Data, scratch, g*icpg, icpg, inH, inW, kh, kw, stride, padH, padW, outH, outW, workers, n, b0, bw)
			c := out.Data[g*ocpg*nhw+b0*hw:]
			sgemmAcc(kern, ocpg, kSize, bw*hw, nhw, a, scratch, c, workers)
		}
	}
	return out
}

// dwconv2dBatch runs the interior/border-split depthwise convolution
// over all C·n packed planes, reusing channel c's kernel for its n
// image planes.
func dwconv2dBatch(arena *tensor.Arena, in *tensor.Tensor, inShape, outShape tensor.Shape, p params, kh, kw, stride, pad, workers, n int) *tensor.Tensor {
	out := arena.Get(batchShape(outShape, n))
	inH, inW := inShape.H(), inShape.W()
	outC, outH, outW := outShape.C(), outShape.H(), outShape.W()
	ohLo, ohHi := interiorRange(inH, kh, stride, pad, outH)
	owLo, owHi := interiorRange(inW, kw, stride, pad, outW)
	if serialSpan(workers, outC*n) {
		dwBatchPlanes(0, outC*n, in.Data, out.Data, p, n, kh, kw, stride, pad,
			inH, inW, outH, outW, ohLo, ohHi, owLo, owHi)
		return out
	}
	parallelFor(workers, outC*n, func(pLo, pHi int) {
		dwBatchPlanes(pLo, pHi, in.Data, out.Data, p, n, kh, kw, stride, pad,
			inH, inW, outH, outW, ohLo, ohHi, owLo, owHi)
	})
	return out
}

// dwBatchPlanes convolves packed planes [pLo, pHi); plane pl holds
// image pl%n of channel pl/n.
func dwBatchPlanes(pLo, pHi int, src, dst []float32, p params, n, kh, kw, stride, pad,
	inH, inW, outH, outW, ohLo, ohHi, owLo, owHi int) {
	for pl := pLo; pl < pHi; pl++ {
		c := pl / n
		var bias float32
		if p.b != nil {
			bias = p.b[c]
		}
		dwPlane(src, dst, p.w, bias, pl*inH*inW, pl*outH*outW, c*kh*kw,
			kh, kw, stride, pad, inH, inW, outH, outW, ohLo, ohHi, owLo, owHi)
	}
}

func maxpoolBatch(arena *tensor.Arena, in *tensor.Tensor, inShape, outShape tensor.Shape, k, stride, pad, workers, n int) *tensor.Tensor {
	out := arena.Get(batchShape(outShape, n))
	inH, inW := inShape.H(), inShape.W()
	outC, outH, outW := outShape.C(), outShape.H(), outShape.W()
	if serialSpan(workers, outC*n) {
		maxpoolPlanes(in.Data, out.Data, 0, outC*n, inH, inW, outH, outW, k, stride, pad)
		return out
	}
	parallelFor(workers, outC*n, func(pLo, pHi int) {
		maxpoolPlanes(in.Data, out.Data, pLo, pHi, inH, inW, outH, outW, k, stride, pad)
	})
	return out
}

func avgpoolBatch(arena *tensor.Arena, in *tensor.Tensor, inShape, outShape tensor.Shape, k, stride, pad, workers, n int) *tensor.Tensor {
	out := arena.Get(batchShape(outShape, n))
	inH, inW := inShape.H(), inShape.W()
	outC, outH, outW := outShape.C(), outShape.H(), outShape.W()
	if serialSpan(workers, outC*n) {
		avgpoolPlanes(in.Data, out.Data, 0, outC*n, inH, inW, outH, outW, k, stride, pad)
		return out
	}
	parallelFor(workers, outC*n, func(pLo, pHi int) {
		avgpoolPlanes(in.Data, out.Data, pLo, pHi, inH, inW, outH, outW, k, stride, pad)
	})
	return out
}

// denseGEMMBatch widens the dense layer from a matrix-vector product
// to C (outN × n) = W (outN × inF) · X (inF × n): the packed input
// vector read as a row-major matrix is exactly X, and the packed
// output vector is exactly C. This is where batching pays most — the
// weight matrix streams through once per batch instead of once per
// job.
func denseGEMMBatch(arena *tensor.Arena, kern KernelPath, in *tensor.Tensor, p params, outN, workers, n int) *tensor.Tensor {
	out := arena.Get(tensor.NewVec(outN * n))
	inF := len(in.Data) / n
	for o := 0; o < outN; o++ {
		row := out.Data[o*n : (o+1)*n]
		var bias float32
		if p.b != nil {
			bias = p.b[o]
		}
		for i := range row {
			row[i] = bias
		}
	}
	sgemmAcc(kern, outN, inF, n, n, p.w, in.Data, out.Data, workers)
	return out
}

// lrnBatch normalizes across per-image channels: neighbors of channel
// ch for image b are the packed planes (cc·n+b).
func lrnBatch(arena *tensor.Arena, in *tensor.Tensor, size, n int) *tensor.Tensor {
	out := arena.Get(in.Shape)
	c, h, w := in.Shape.C()/n, in.Shape.H(), in.Shape.W()
	plane := h * w
	half := size / 2
	for ch := 0; ch < c; ch++ {
		lo, hi := ch-half, ch+half
		if lo < 0 {
			lo = 0
		}
		if hi >= c {
			hi = c - 1
		}
		for b := 0; b < n; b++ {
			base := (ch*n + b) * plane
			for i := 0; i < plane; i++ {
				var sq float64
				for cc := lo; cc <= hi; cc++ {
					v := float64(in.Data[(cc*n+b)*plane+i])
					sq += v * v
				}
				denom := math.Pow(2+1e-4*sq, 0.75)
				out.Data[base+i] = float32(float64(in.Data[base+i]) / denom)
			}
		}
	}
	return out
}

// flattenBatch reshapes a packed CHW batch into a packed vector batch.
// The layouts differ — (c, b, hw) vs (c·hw, b) — so a transpose is
// needed unless the spatial extent is 1 (or the input is already a
// vector), where they coincide and a view suffices.
func flattenBatch(arena *tensor.Arena, in *tensor.Tensor, n int) *tensor.Tensor {
	if in.Shape.Rank() == 1 {
		return in
	}
	hw := in.Shape.H() * in.Shape.W()
	if hw == 1 {
		return in.Flatten()
	}
	c := in.Shape.C() / n
	out := arena.Get(tensor.NewVec(c * hw * n))
	for ch := 0; ch < c; ch++ {
		for b := 0; b < n; b++ {
			src := in.Data[(ch*n+b)*hw:][:hw]
			for i, v := range src {
				out.Data[(ch*hw+i)*n+b] = v
			}
		}
	}
	return out
}

// softmaxBatch normalizes each image of a packed vector batch
// independently, scanning ascending feature index like softmax.
func softmaxBatch(arena *tensor.Arena, in *tensor.Tensor, n int) *tensor.Tensor {
	out := arena.Get(in.Shape)
	f := len(in.Data) / n
	for b := 0; b < n; b++ {
		maxV := float32(math.Inf(-1))
		for i := 0; i < f; i++ {
			if v := in.Data[i*n+b]; v > maxV {
				maxV = v
			}
		}
		var sum float64
		for i := 0; i < f; i++ {
			e := math.Exp(float64(in.Data[i*n+b] - maxV))
			out.Data[i*n+b] = float32(e)
			sum += e
		}
		for i := 0; i < f; i++ {
			out.Data[i*n+b] = float32(float64(out.Data[i*n+b]) / sum)
		}
	}
	return out
}
