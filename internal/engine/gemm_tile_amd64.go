package engine

// amd64 register tile: 4 rows x 2 columns, k unrolled by 2.
//
// The shape is tuned for a scalar SSE target (gc does not auto-vectorize
// on amd64): 8 accumulators + 4 a-values + 2 b-values = 14 live floats
// fit the 16 XMM registers with room for temporaries, and the 8
// independent accumulator chains keep both FP ports busy. Measured on a
// 2.1 GHz Xeon this sustains ~2.6 scalar MAC/ns versus ~1.7 for a 4x4
// tile (whose 16 accumulators spill) — close to the mul+add port
// ceiling of the core.

const (
	// microMR x microNR is the register-tile footprint of the
	// microkernel: rows of packed A by columns of packed B held in
	// registers across one K panel.
	microMR = 4
	microNR = 2

	// microCrossoverBytes is the B working set (k*n*4 bytes) above
	// which KernelGEMM prefers the packed microkernel; see
	// autokernel.go for the measured table. On amd64 the streaming
	// panel loop wins at every measured shape: the scalar 2-row/4-k
	// panel inner loop already saturates the FP ports (~3.2 MAC/ns on
	// a 2.1 GHz Xeon, against a ~3.15 GMAC/s two-port scalar ceiling),
	// while server-class LLCs keep the re-streamed B panels
	// cache-resident, so the microkernel's packing passes are pure
	// overhead here — there is no crossover, and -1 disables the
	// packed path for KernelGEMM. Force it with WithKernel(KernelMicro).
	microCrossoverBytes = -1
)

// microTileFull accumulates a full microMR x microNR tile of C over one
// packed K panel. pa holds microMR rows k-major (pa[kk*microMR+r]), pb
// holds microNR columns k-major (pb[kk*microNR+c]); the tile's top-left
// C element is c[off], rows ldc apart. Each C element is read once,
// updated by a single running accumulator in ascending k, and written
// once — the bit-exactness contract shared by every kernel path.
func microTileFull(kc int, pa, pb []float32, c []float32, off, ldc int) {
	c0 := c[off : off+2 : off+2]
	c1 := c[off+ldc : off+ldc+2 : off+ldc+2]
	c2 := c[off+2*ldc : off+2*ldc+2 : off+2*ldc+2]
	c3 := c[off+3*ldc : off+3*ldc+2 : off+3*ldc+2]
	c00, c01 := c0[0], c0[1]
	c10, c11 := c1[0], c1[1]
	c20, c21 := c2[0], c2[1]
	c30, c31 := c3[0], c3[1]
	ia, ib := 0, 0
	for kk := 0; kk+2 <= kc; kk += 2 {
		a0, a1, a2, a3 := pa[ia], pa[ia+1], pa[ia+2], pa[ia+3]
		b0, b1 := pb[ib], pb[ib+1]
		c00 += a0 * b0
		c01 += a0 * b1
		c10 += a1 * b0
		c11 += a1 * b1
		c20 += a2 * b0
		c21 += a2 * b1
		c30 += a3 * b0
		c31 += a3 * b1
		a0, a1, a2, a3 = pa[ia+4], pa[ia+5], pa[ia+6], pa[ia+7]
		b0, b1 = pb[ib+2], pb[ib+3]
		c00 += a0 * b0
		c01 += a0 * b1
		c10 += a1 * b0
		c11 += a1 * b1
		c20 += a2 * b0
		c21 += a2 * b1
		c30 += a3 * b0
		c31 += a3 * b1
		ia += 8
		ib += 4
	}
	if kc&1 != 0 {
		a0, a1, a2, a3 := pa[ia], pa[ia+1], pa[ia+2], pa[ia+3]
		b0, b1 := pb[ib], pb[ib+1]
		c00 += a0 * b0
		c01 += a0 * b1
		c10 += a1 * b0
		c11 += a1 * b1
		c20 += a2 * b0
		c21 += a2 * b1
		c30 += a3 * b0
		c31 += a3 * b1
	}
	c0[0], c0[1] = c00, c01
	c1[0], c1[1] = c10, c11
	c2[0], c2[1] = c20, c21
	c3[0], c3[1] = c30, c31
}

// packBStrip packs one full microNR-column strip: dst[kk*microNR+c] =
// b[kk*ldb+c] for kc rows, unrolled for the 2-wide strip.
func packBStrip(kc int, b []float32, ldb int, dst []float32) {
	dst = dst[: kc*2 : kc*2]
	si, di := 0, 0
	for kk := 0; kk < kc; kk++ {
		s := b[si : si+2 : si+2]
		dst[di] = s[0]
		dst[di+1] = s[1]
		si += ldb
		di += 2
	}
}
