package engine

import (
	"math"
	"testing"

	"dnnjps/internal/dag"
	"dnnjps/internal/models"
	"dnnjps/internal/nn"
	"dnnjps/internal/tensor"
)

// quantPair loads the same (graph, seed) twice and quantizes one copy
// — the fp32 model is the reference the int8 path is compared against.
func quantPair(t *testing.T, g *dag.Graph, seed int64, samples int) (fp32, quant *Model) {
	t.Helper()
	fp32 = Load(g, seed).Parallel(3)
	quant = Load(g, seed).Parallel(3)
	cal, err := quant.CalibrateSynthetic(samples)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := quant.Quantize(cal); err != nil {
		t.Fatal(err)
	}
	return fp32, quant
}

// TestQuantizedForwardClose bounds the int8 path's end-to-end error on
// the real model zoo. The sink is a softmax over ~1000 random-weight
// logits, so probabilities cluster near uniform (~1e-3); the bound is
// on the max absolute probability error, tuned empirically with ~4x
// headroom over observed error.
func TestQuantizedForwardClose(t *testing.T) {
	for _, name := range []string{"mobilenetv2", "alexnet"} {
		t.Run(name, func(t *testing.T) {
			g := models.MustBuild(name)
			fp32, quant := quantPair(t, g, 1, 2)
			in := randInput(g.Node(g.Source()).OutShape, 99)
			want, err := fp32.Forward(in)
			if err != nil {
				t.Fatal(err)
			}
			got, err := quant.Forward(in)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Shape.Equal(want.Shape) {
				t.Fatalf("shape %v, want %v", got.Shape, want.Shape)
			}
			var maxErr float64
			for i := range want.Data {
				if d := math.Abs(float64(got.Data[i] - want.Data[i])); d > maxErr {
					maxErr = d
				}
			}
			t.Logf("%s: max |Δp| = %.2e", name, maxErr)
			if maxErr > 2e-3 {
				t.Errorf("max softmax probability error %.2e, want <= 2e-3", maxErr)
			}
		})
	}
}

// TestQuantizedTop1Agreement checks that int8 inference predicts the
// same class as fp32 on most inputs. Random-weight logits are tightly
// clustered — the hardest possible case for argmax stability — so the
// bar is majority agreement, not perfection.
func TestQuantizedTop1Agreement(t *testing.T) {
	g := models.MustBuild("mobilenetv2")
	fp32, quant := quantPair(t, g, 1, 2)
	shape := g.Node(g.Source()).OutShape
	const n = 8
	agree := 0
	for i := 0; i < n; i++ {
		in := randInput(shape, int64(100+i))
		want, err := fp32.Forward(in)
		if err != nil {
			t.Fatal(err)
		}
		got, err := quant.Forward(in)
		if err != nil {
			t.Fatal(err)
		}
		if Argmax(got) == Argmax(want) {
			agree++
		}
	}
	t.Logf("top-1 agreement: %d/%d", agree, n)
	if agree < n/2+1 {
		t.Errorf("top-1 agreement %d/%d, want a majority", agree, n)
	}
}

// TestQuantizeDeterministic is the property the runtime's quantized
// wire mode rests on: two processes that Load the same (model, seed)
// and calibrate synthetically derive bit-identical quantized models
// and activation mappings, without exchanging anything.
func TestQuantizeDeterministic(t *testing.T) {
	g := models.MustBuild("mobilenetv2")
	build := func() *Model {
		m := Load(g, 42)
		cal, err := m.CalibrateSynthetic(2)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Quantize(cal); err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := build(), build()
	if len(a.quant.layers) == 0 {
		t.Fatal("no layers quantized")
	}
	for id, la := range a.quant.layers {
		lb := b.quant.layers[id]
		if lb == nil {
			t.Fatalf("node %d quantized in one model only", id)
		}
		for i := range la.qw {
			if la.qw[i] != lb.qw[i] {
				t.Fatalf("node %d: weight code %d differs: %d vs %d", id, i, la.qw[i], lb.qw[i])
			}
		}
		for i := range la.ws {
			if la.ws[i] != lb.ws[i] || la.rowSum[i] != lb.rowSum[i] || la.bias[i] != lb.bias[i] {
				t.Fatalf("node %d: channel %d scale/sum/bias differ", id, i)
			}
		}
	}
	for id, pa := range a.quant.act {
		if pb := b.quant.act[id]; pa != pb {
			t.Fatalf("node %d: activation params differ: %+v vs %+v", id, pa, pb)
		}
	}
}

// TestQuantizedDeterministicForward: the int8 forward itself is
// deterministic across worker counts — integer accumulation is
// associative, so unlike the fp32 kernels this needs no accumulation-
// order contract, and the epilogue rounds each element independently.
func TestQuantizedDeterministicForward(t *testing.T) {
	g := models.MustBuild("mobilenetv2")
	_, quant := quantPair(t, g, 1, 1)
	in := randInput(g.Node(g.Source()).OutShape, 5)
	var ref *tensor.Tensor
	for _, workers := range []int{1, 3, 8} {
		quant.Parallel(workers)
		out, err := quant.Forward(in)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = out.Clone()
			continue
		}
		for i := range ref.Data {
			if out.Data[i] != ref.Data[i] {
				t.Fatalf("workers=%d: element %d differs: %v vs %v", workers, i, out.Data[i], ref.Data[i])
			}
		}
	}
}

// TestQuantBNFolded checks that every BatchNorm in mobilenetv2 was
// absorbed into its producing conv, and that the folded graph still
// tracks the fp32 model closely at an intermediate edge (the first
// bottleneck's output), not just at the softmax sink.
func TestQuantBNFolded(t *testing.T) {
	g := models.MustBuild("mobilenetv2")
	fp32, quant := quantPair(t, g, 1, 2)
	bns := 0
	for _, id := range g.Topo() {
		if _, ok := g.Node(id).Layer.(*nn.BatchNorm); ok {
			bns++
			if !quant.quant.folded[id] {
				t.Errorf("BatchNorm %q not folded", g.Node(id).Layer.Name())
			}
		}
	}
	if bns == 0 {
		t.Fatal("mobilenetv2 has no BatchNorm nodes?")
	}

	node, ok := g.NodeByName("bneck1/project")
	if !ok {
		t.Fatal("no bneck1/project node")
	}
	// Execute both models through the first bottleneck and compare its
	// projection output relative to the calibrated activation scale —
	// i.e. in units of one int8 step.
	var prefix []int
	anc := g.Ancestors(node.ID)
	for _, id := range g.Topo() {
		if anc[id] || id == node.ID {
			prefix = append(prefix, id)
		}
	}
	in := randInput(g.Node(g.Source()).OutShape, 11)
	fa := map[int]*tensor.Tensor{}
	qa := map[int]*tensor.Tensor{}
	if err := fp32.Execute(fa, in.Clone(), prefix); err != nil {
		t.Fatal(err)
	}
	if err := quant.Execute(qa, in.Clone(), prefix); err != nil {
		t.Fatal(err)
	}
	qp, err := quant.ActivationQParams(node.ID)
	if err != nil {
		t.Fatal(err)
	}
	want, got := fa[node.ID], qa[node.ID]
	var maxSteps, sumSteps float64
	for i := range want.Data {
		d := math.Abs(float64(got.Data[i]-want.Data[i])) / float64(qp.Scale)
		sumSteps += d
		if d > maxSteps {
			maxSteps = d
		}
	}
	meanSteps := sumSteps / float64(len(want.Data))
	t.Logf("bneck1/project: mean %.2f / max %.1f int8 steps (scale %.3g)", meanSteps, maxSteps, qp.Scale)
	// Four stacked per-tensor-quantized layers ending in a linear
	// bottleneck projection accumulate noise: measured mean ~5 steps
	// (2% of the 255-step range) with a ~40-step tail. Bound both with
	// headroom; a folding bug (wrong gain on one channel) blows past
	// either immediately.
	if meanSteps > 10 {
		t.Errorf("intermediate mean error %.2f int8 steps, want <= 10", meanSteps)
	}
	if maxSteps > 64 {
		t.Errorf("intermediate max error %.1f int8 steps, want <= 64 (quarter range)", maxSteps)
	}
}

// TestQuantRejectsBatched: the batched kernels are fp32-only; a
// quantized model must refuse ExecuteBatch at n > 1 rather than fall
// back silently.
func TestQuantRejectsBatched(t *testing.T) {
	g := models.MustBuild("mobilenetv2")
	_, quant := quantPair(t, g, 1, 1)
	ins := []*tensor.Tensor{
		randInput(g.Node(g.Source()).OutShape, 1),
		randInput(g.Node(g.Source()).OutShape, 2),
	}
	if _, err := quant.ForwardBatch(ins); err == nil {
		t.Fatal("ForwardBatch succeeded on a quantized model, want error")
	}
}

// TestChooseQParamsProperties pins the invariants the kernels assume:
// zero is exactly representable, and round-tripping any in-range value
// errs by at most half a step.
func TestChooseQParamsProperties(t *testing.T) {
	cases := [][2]float32{{-1, 1}, {0, 6}, {-3.7, 0.2}, {0.5, 2}, {-2, -0.25}, {0, 0}}
	for _, c := range cases {
		p := tensor.ChooseQParams(c[0], c[1])
		if got := p.Dequantize(p.Quantize(0)); got != 0 {
			t.Errorf("range [%g,%g]: 0.0 round-trips to %g, want exact 0", c[0], c[1], got)
		}
		lo, hi := c[0], c[1]
		if lo > 0 {
			lo = 0
		}
		if hi < 0 {
			hi = 0
		}
		for i := 0; i <= 32; i++ {
			x := lo + (hi-lo)*float32(i)/32
			got := p.Dequantize(p.Quantize(x))
			if math.Abs(float64(got-x)) > float64(p.Scale)*0.501 {
				t.Errorf("range [%g,%g]: %g round-trips to %g (step %g)", c[0], c[1], x, got, p.Scale)
			}
		}
	}
}
