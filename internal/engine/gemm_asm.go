package engine

import "sync"

// Packed driver for the hand-written SIMD microkernels (KernelAsm, and
// the KernelGEMM choice past the measured crossover when the CPU
// supports them — see gemm_asm_{amd64,arm64}.go for the tiles and
// gemm_asm_off.go for the disabled build).
//
// The block structure mirrors sgemmMicro: NC-wide column blocks, KC
// panels, MC row blocks, with both operands repacked into k-major
// strips the tile streams with unit stride:
//
//	packAAsm: rows in strips of asmMR — a[i0+r][kk] at
//	          strip[kk*asmMR + r], zero-padded to full height.
//	bPacker:  columns in strips of asmNR — b[kk][j0+c] at
//	          strip[kk*asmNR + c], zero-padded to full width.
//
// Two things are new versus the pure-Go microkernel. First, B packing
// is *source-pluggable*: a bPacker either reads a plain row-major
// matrix or synthesizes patch-matrix windows straight from a conv
// input tensor (fused im2col — the kSize x hw column buffer that
// conv2dGEMM materializes for the other drivers never exists on this
// path, and the batched variant spans image boundaries the same way).
// Second, the tile uses FMA: one rounding per multiply-add instead of
// two. Accumulation still visits k in ascending order with a single
// accumulator per C element, but float32 results differ from the
// pure-Go kernels in rounding. Parity tests bound the difference
// (see asm_parity_test.go); the relative error of a length-k dot
// product differs by at most k ulps between the fused and unfused
// evaluations, in practice ~1e-7 relative for the shapes here.
//
// Edge tiles: rather than a scalar tail loop (which would mix FMA and
// non-FMA arithmetic inside one matrix), partial tiles run the full
// asm tile against a stack scratch patch. Valid C elements are copied
// in, accumulated by the tile (zero-padded A rows / B columns
// contribute exact zeros to live lanes, and SIMD lanes are
// independent), and copied back; dead lanes accumulate garbage that is
// never read. Every output element therefore takes the same FMA
// instruction sequence regardless of its tile position — which also
// keeps batched and single-image conv outputs bit-identical to each
// other under asm, since batching only relocates an element's column.

// asmPackBufs recycles the packed blocks: one A and one B block per
// in-flight worker.
var (
	asmPackBufsA = sync.Pool{
		New: func() any {
			b := make([]float32, asmMC*asmKC)
			return &b
		},
	}
	asmPackBufsB = sync.Pool{
		New: func() any {
			b := make([]float32, asmKC*asmNC)
			return &b
		},
	}
)

// asmEnabled reports whether the float32 assembly path can engage in
// this process (build tags, architecture, CPUID probe and the
// DNNJPS_NOASM override all folded in). Tests key their parity mode
// off this: bit-exact when false, tolerance-bounded when true.
func asmEnabled() bool { return asmSgemmOK }

// preferAsm reports whether KernelGEMM should route an m×k by k×n
// multiply to the assembly tile. The structural guard keeps shapes the
// tile cannot fill — or too shallow to amortize packing — on the
// pure-Go drivers; past it, the measured per-arch crossover on the
// streamed B working set decides (see asmCrossoverBytes).
func preferAsm(m, k, n int) bool {
	if !asmSgemmOK {
		return false
	}
	if m < asmMR || n < asmNR || k < 8 {
		return false
	}
	if asmCrossoverBytes < 0 {
		return false
	}
	return k*n*4 >= asmCrossoverBytes
}

// bPacker produces packed B strips for the asm driver. Plain mode
// (conv == false) reads a row-major matrix; conv mode synthesizes
// im2col windows directly from the input tensor, never materializing
// the patch matrix. It is passed by value so the parallel column split
// can hand each worker a copy without heap traffic on the serial path.
type bPacker struct {
	// Plain mode: row-major matrix b with row stride ldb.
	b   []float32
	ldb int

	// Conv mode (fused im2col).
	conv                  bool
	src                   []float32 // input tensor, packed batch-n layout
	inH, inW              int
	kh, kw                int
	stride, padH, padW    int
	outW                  int
	cLo                   int // first input channel of the group
	n                     int // packed batch width (1 = single image)
	hw                    int // patch columns per image = outH*outW
}

// pack fills dst with the asmNR-column strips covering columns
// [jp, jp+nc) of rows [kp, kp+kc) of the (virtual) B matrix, padding
// the last strip with zeros to full width.
func (p bPacker) pack(kp, kc, jp, nc int, dst []float32) {
	if !p.conv {
		p.packPlain(kp, kc, jp, nc, dst)
		return
	}
	// Row kp+kk of the patch matrix is kernel offset (r, s) of input
	// channel ci; walk the decomposition incrementally.
	khw := p.kh * p.kw
	ci := kp / khw
	rs := kp % khw
	for kk := 0; kk < kc; kk++ {
		r, s := rs/p.kw, rs%p.kw
		for j0 := 0; j0 < nc; j0 += asmNR {
			w := min(asmNR, nc-j0)
			row := dst[j0*kc+kk*asmNR : j0*kc+kk*asmNR+asmNR]
			p.fillWindow(row[:w], ci, r, s, jp+j0)
			for i := w; i < asmNR; i++ {
				row[i] = 0
			}
		}
		if rs++; rs == khw {
			rs, ci = 0, ci+1
		}
	}
}

// packPlain is the matrix-source strip packer.
func (p bPacker) packPlain(kp, kc, jp, nc int, dst []float32) {
	nFull := nc - nc%asmNR
	for j0 := 0; j0 < nFull; j0 += asmNR {
		d := dst[j0*kc : j0*kc+kc*asmNR]
		si := (kp)*p.ldb + jp + j0
		for kk := 0; kk < kc; kk++ {
			copy(d[kk*asmNR:kk*asmNR+asmNR], p.b[si:si+asmNR])
			si += p.ldb
		}
	}
	if cc := nc - nFull; cc > 0 {
		d := dst[nFull*kc:]
		si := (kp)*p.ldb + jp + nFull
		for kk := 0; kk < kc; kk++ {
			di := kk * asmNR
			copy(d[di:di+cc], p.b[si:si+cc])
			for i := cc; i < asmNR; i++ {
				d[di+i] = 0
			}
			si += p.ldb
		}
	}
}

// fillWindow writes len(dst) consecutive patch-matrix values of row
// (ci, r, s) starting at global column col, splitting the window at
// image boundaries of the packed batch.
func (p bPacker) fillWindow(dst []float32, ci, r, s, col int) {
	di := 0
	for w := len(dst); w > 0; {
		bi, pos := col/p.hw, col%p.hw
		seg := min(w, p.hw-pos)
		chanBase := ((p.cLo+ci)*p.n + bi) * p.inH * p.inW
		im2colWindow(p.src, dst[di:di+seg], chanBase, r, s,
			p.inH, p.inW, p.stride, p.padH, p.padW, p.outW, pos)
		di += seg
		col += seg
		w -= seg
	}
}

// im2colWindow writes len(dst) patch-matrix values of the row with
// kernel offset (r, s) over the input plane at chanBase, for output
// positions [pos, pos+len(dst)) — the windowed form of im2colRow, with
// the same padding-is-zero semantics.
func im2colWindow(src, dst []float32, chanBase, r, s, inH, inW, stride, padH, padW, outW, pos int) {
	oh := pos / outW
	ow := pos % outW
	di := 0
	for w := len(dst); w > 0; {
		cnt := min(w, outW-ow)
		ih := oh*stride - padH + r
		if ih < 0 || ih >= inH {
			for i := 0; i < cnt; i++ {
				dst[di+i] = 0
			}
		} else if base := chanBase + ih*inW; stride == 1 {
			// Valid ow span is contiguous: zero the edges, copy the
			// middle. Clamp the span to the window from both sides —
			// it may lie entirely outside it.
			lo, hi := padW-s, inW+padW-s
			if lo < ow {
				lo = ow
			}
			if lo > ow+cnt {
				lo = ow + cnt
			}
			if hi > ow+cnt {
				hi = ow + cnt
			}
			if hi < lo {
				hi = lo
			}
			for i := ow; i < lo; i++ {
				dst[di+i-ow] = 0
			}
			if hi > lo {
				copy(dst[di+lo-ow:di+hi-ow], src[base+lo-padW+s:])
			}
			for i := hi; i < ow+cnt; i++ {
				dst[di+i-ow] = 0
			}
		} else {
			iw := ow*stride - padW + s
			for i := 0; i < cnt; i++ {
				if iw >= 0 && iw < inW {
					dst[di+i] = src[base+iw]
				} else {
					dst[di+i] = 0
				}
				iw += stride
			}
		}
		di += cnt
		w -= cnt
		ow = 0
		oh++
	}
}

// packAAsm packs an mc×kc block of A (row stride lda) into asmMR-row
// k-major strips, zero-padding the final strip to full height.
func packAAsm(kc, mc int, a []float32, lda int, dst []float32) {
	for i0 := 0; i0 < mc; i0 += asmMR {
		rows := min(asmMR, mc-i0)
		d := dst[i0*kc : i0*kc+asmMR*kc]
		for r := 0; r < rows; r++ {
			src := a[(i0+r)*lda : (i0+r)*lda+kc]
			di := r
			for kk := 0; kk < kc; kk++ {
				d[di] = src[kk]
				di += asmMR
			}
		}
		for r := rows; r < asmMR; r++ {
			di := r
			for kk := 0; kk < kc; kk++ {
				d[di] = 0
				di += asmMR
			}
		}
	}
}

// sgemmAsm computes C += A·B with the assembly microkernel, splitting
// the columns of C across workers (each output element is written by
// exactly one worker, and its FMA accumulation order is independent of
// the split). pk supplies B — a plain matrix or a fused conv source.
// ldc is the row stride of C.
func sgemmAsm(m, k, n, ldc int, a []float32, pk bPacker, c []float32, workers int) {
	if w := n / (2 * asmNR); workers > w {
		workers = w
	}
	if workers > 1 {
		sgemmAsmParallel(m, k, n, ldc, a, pk, c, workers)
		return
	}
	sgemmAsmCols(m, k, n, 0, n, ldc, a, pk, c)
}

// sgemmAsmParallel is the goroutine fan-out, kept out of sgemmAsm so
// the closure's by-reference capture of pk (the struct is past the
// compiler's by-value capture size) only heap-moves it on calls that
// actually spawn — the serial path stays allocation-free.
func sgemmAsmParallel(m, k, n, ldc int, a []float32, pk bPacker, c []float32, workers int) {
	cols := (n + workers - 1) / workers
	cols = (cols + asmNR - 1) / asmNR * asmNR
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += cols {
		hi := min(lo+cols, n)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			sgemmAsmCols(m, k, n, lo, hi, ldc, a, pk, c)
		}(lo, hi)
	}
	wg.Wait()
}

// sgemmAsmCols runs the blocked driver over columns [nLo, nHi).
func sgemmAsmCols(m, k, n, nLo, nHi, ldc int, a []float32, pk bPacker, c []float32) {
	bufA := asmPackBufsA.Get().(*[]float32)
	bufB := asmPackBufsB.Get().(*[]float32)
	pA, pB := *bufA, *bufB
	var tmp [asmMR * asmNR]float32
	for jp := nLo; jp < nHi; jp += asmNC {
		nc := min(asmNC, nHi-jp)
		ncPad := (nc + asmNR - 1) / asmNR * asmNR
		for kp := 0; kp < k; kp += asmKC {
			kc := min(asmKC, k-kp)
			pk.pack(kp, kc, jp, nc, pB)
			for ip := 0; ip < m; ip += asmMC {
				mc := min(asmMC, m-ip)
				packAAsm(kc, mc, a[ip*k+kp:], k, pA)
				for i0 := 0; i0 < mc; i0 += asmMR {
					pas := pA[i0*kc:]
					rr := min(asmMR, mc-i0)
					cBase := (ip+i0)*ldc + jp
					for j0 := 0; j0 < ncPad; j0 += asmNR {
						cc := min(asmNR, nc-j0)
						if rr == asmMR && cc == asmNR {
							asmSgemmTile(kc, pas, pB[j0*kc:], c, cBase+j0, ldc)
							continue
						}
						// Edge tile through the scratch patch.
						for r := 0; r < rr; r++ {
							copy(tmp[r*asmNR:r*asmNR+cc], c[cBase+j0+r*ldc:])
						}
						asmSgemmTile(kc, pas, pB[j0*kc:], tmp[:], 0, asmNR)
						for r := 0; r < rr; r++ {
							copy(c[cBase+j0+r*ldc:cBase+j0+r*ldc+cc], tmp[r*asmNR:r*asmNR+cc])
						}
					}
				}
			}
		}
	}
	asmPackBufsA.Put(bufA)
	asmPackBufsB.Put(bufB)
}
