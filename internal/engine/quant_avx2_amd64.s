//go:build !noasm

#include "textflag.h"

// AVX2 activation quantization. The scalar contract in quantizeSpan is
//
//	q = math.Round(float64(src[i])*inv) + zero, clamped to [-128, 127]
//
// and this kernel reproduces it bit for bit on finite inputs by doing
// the same float64 arithmetic four lanes at a time. math.Round itself
// (round half away from zero) has no SSE/AVX instruction, but it
// decomposes exactly into two truncations:
//
//	r = trunc(x); f = x - r; round(x) = r + trunc(f+f)
//
// x - trunc(x) is exact for every finite x (Sterbenz for |x| >= 1,
// trivially for |x| < 1, and f = 0 once x is integral), f+f is a
// power-of-two scale, trunc(f+f) is the +-1/0 half-away bump, and the
// final add is exact because r is integral with |r| well below 2^52
// after the clamp range is applied. VROUNDPD $3 is truncation, so each
// lane matches the scalar math to the last bit. The clamp runs as
// VMAXPD/VMINPD before conversion, so the CVTTPD2DQ and the saturating
// packs never see an out-of-range lane. Non-finite inputs are the one
// divergence (NaN clamps to -128 here, converts to 0 in Go); callers
// only pass activations, which are finite.

// func quantizeSpanAsm(dst *int8, src *float32, inv, zero float64, n int)
//
// Quantizes src[0:n] into dst[0:n]; n must be a positive multiple of 8.
// Register map: Y10 = inv, Y11 = zero, Y12/Y13 = clamp bounds,
// Y0..Y3 working lanes for the two 4-double halves of each 8-element
// step.
DATA qclampLo<>+0(SB)/8, $0xC060000000000000 // float64(-128)
GLOBL qclampLo<>(SB), RODATA, $8
DATA qclampHi<>+0(SB)/8, $0x405FC00000000000 // float64(127)
GLOBL qclampHi<>(SB), RODATA, $8

TEXT ·quantizeSpanAsm(SB), NOSPLIT, $0-40
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+32(FP), CX

	VBROADCASTSD inv+16(FP), Y10
	VBROADCASTSD zero+24(FP), Y11
	VBROADCASTSD qclampLo<>(SB), Y12
	VBROADCASTSD qclampHi<>(SB), Y13

loop:
	VCVTPS2PD (SI), Y0       // elements 0..3 as float64
	VCVTPS2PD 16(SI), Y1     // elements 4..7
	VMULPD    Y10, Y0, Y0    // x = float64(src)*inv
	VMULPD    Y10, Y1, Y1
	VROUNDPD  $3, Y0, Y2     // r = trunc(x)
	VROUNDPD  $3, Y1, Y3
	VSUBPD    Y2, Y0, Y0     // f = x - r (exact)
	VSUBPD    Y3, Y1, Y1
	VADDPD    Y0, Y0, Y0     // 2f (exact)
	VADDPD    Y1, Y1, Y1
	VROUNDPD  $3, Y0, Y0     // half-away bump: trunc(2f) in {-1,0,+1}
	VROUNDPD  $3, Y1, Y1
	VADDPD    Y2, Y0, Y0     // round(x)
	VADDPD    Y3, Y1, Y1
	VADDPD    Y11, Y0, Y0    // + zero point
	VADDPD    Y11, Y1, Y1
	VMAXPD    Y12, Y0, Y0    // clamp to [-128, 127]
	VMAXPD    Y12, Y1, Y1
	VMINPD    Y13, Y0, Y0
	VMINPD    Y13, Y1, Y1
	VCVTTPD2DQY Y0, X0        // 4 int32
	VCVTTPD2DQY Y1, X1
	VPACKSSDW X1, X0, X0     // 8 int16 (already in range: packs don't saturate)
	VPACKSSWB X0, X0, X0     // 8 int8 in the low qword
	MOVQ      X0, (DI)

	ADDQ $32, SI
	ADDQ $8, DI
	SUBQ $8, CX
	JNZ  loop

	VZEROUPPER
	RET
