//go:build !race

package engine

// raceEnabled: see race_on_test.go.
const raceEnabled = false
