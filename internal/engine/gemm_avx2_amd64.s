//go:build !noasm

#include "textflag.h"

// AVX2+FMA float32 microkernel and the CPUID probes that gate it.
// See gemm_asm_amd64.go for the feature-detection logic and
// gemm_asm.go for the packed-panel layout contract.

// func cpuidAsm(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidAsm(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbvAsm() (eax, edx uint32)
TEXT ·xgetbvAsm(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func sgemmTile6x16(kc int, pa, pb, c *float32, ldc int)
//
// C[0:6][0:16] += A·B over one packed K panel. pa is a 6-row k-major
// strip (pa[kk*6+r]), pb a 16-column k-major strip (pb[kk*16+j]), c the
// top-left C element with rows ldc floats apart. The 6x16 tile holds
// twelve YMM accumulators (rows x two 8-lane halves); each k step
// broadcasts six A values against the two B halves — 12 FMAs per step,
// one rounding per multiply-add. Every C element is loaded once,
// accumulated in ascending k in a single register, and stored once.
//
// Register map: Y0/Y1 = B halves, Y2/Y3 = broadcast A, Y4..Y15 = C.
TEXT ·sgemmTile6x16(SB), NOSPLIT, $0-40
	MOVQ kc+0(FP), CX
	MOVQ pa+8(FP), DI
	MOVQ pb+16(FP), SI
	MOVQ c+24(FP), DX
	MOVQ ldc+32(FP), R8
	SHLQ $2, R8              // row stride in bytes
	LEAQ (R8)(R8*2), R9      // 3*ldc bytes

	// Load the 6x16 C tile: row r at DX + r*R8, halves 0 and 32 bytes.
	MOVQ DX, AX
	VMOVUPS (AX), Y4
	VMOVUPS 32(AX), Y5
	VMOVUPS (AX)(R8*1), Y6
	VMOVUPS 32(AX)(R8*1), Y7
	VMOVUPS (AX)(R8*2), Y8
	VMOVUPS 32(AX)(R8*2), Y9
	ADDQ R9, AX              // rows 3..5
	VMOVUPS (AX), Y10
	VMOVUPS 32(AX), Y11
	VMOVUPS (AX)(R8*1), Y12
	VMOVUPS 32(AX)(R8*1), Y13
	VMOVUPS (AX)(R8*2), Y14
	VMOVUPS 32(AX)(R8*2), Y15

tileLoop:
	VMOVUPS (SI), Y0
	VMOVUPS 32(SI), Y1
	VBROADCASTSS (DI), Y2
	VBROADCASTSS 4(DI), Y3
	VFMADD231PS Y0, Y2, Y4
	VFMADD231PS Y1, Y2, Y5
	VFMADD231PS Y0, Y3, Y6
	VFMADD231PS Y1, Y3, Y7
	VBROADCASTSS 8(DI), Y2
	VBROADCASTSS 12(DI), Y3
	VFMADD231PS Y0, Y2, Y8
	VFMADD231PS Y1, Y2, Y9
	VFMADD231PS Y0, Y3, Y10
	VFMADD231PS Y1, Y3, Y11
	VBROADCASTSS 16(DI), Y2
	VBROADCASTSS 20(DI), Y3
	VFMADD231PS Y0, Y2, Y12
	VFMADD231PS Y1, Y2, Y13
	VFMADD231PS Y0, Y3, Y14
	VFMADD231PS Y1, Y3, Y15
	ADDQ $24, DI
	ADDQ $64, SI
	DECQ CX
	JNZ  tileLoop

	// Store the tile back.
	MOVQ DX, AX
	VMOVUPS Y4, (AX)
	VMOVUPS Y5, 32(AX)
	VMOVUPS Y6, (AX)(R8*1)
	VMOVUPS Y7, 32(AX)(R8*1)
	VMOVUPS Y8, (AX)(R8*2)
	VMOVUPS Y9, 32(AX)(R8*2)
	ADDQ R9, AX
	VMOVUPS Y10, (AX)
	VMOVUPS Y11, 32(AX)
	VMOVUPS Y12, (AX)(R8*1)
	VMOVUPS Y13, 32(AX)(R8*1)
	VMOVUPS Y14, (AX)(R8*2)
	VMOVUPS Y15, 32(AX)(R8*2)
	VZEROUPPER
	RET
