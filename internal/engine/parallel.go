package engine

import (
	"runtime"
	"sync"
)

// Parallel sets the worker count used by heavy layers (standard and
// depthwise convolutions split their output channels across
// goroutines; everything else is memory-bound and stays serial).
// workers <= 0 selects GOMAXPROCS. Returns the model for chaining.
// Results are bit-identical regardless of worker count: each output
// element is written by exactly one goroutine.
func (m *Model) Parallel(workers int) *Model {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	m.workers = workers
	return m
}

// serialSpan reports whether parallelFor(workers, n, ...) would run
// its body inline. Hot kernels check it BEFORE building their closure:
// a func literal handed to parallelFor always escapes to the heap (the
// spawn path references it from new goroutines, and escape analysis is
// static), so guarding the serial case is what keeps a workers=1
// Forward at O(1) steady-state allocations.
func serialSpan(workers, n int) bool { return workers <= 1 || n < 2 }

// parallelFor splits [0, n) into contiguous chunks, one goroutine per
// chunk, and waits. With one worker (or tiny n) it runs inline.
func parallelFor(workers, n int, body func(lo, hi int)) {
	if serialSpan(workers, n) {
		body(0, n)
		return
	}
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
