//go:build !noasm

#include "textflag.h"

// AVX2 int8 microkernels. Operands are sign-extended to int16 at pack
// time (see qgemmAsm in gemm_asm.go), so the inner instruction is
// VPMADDWD: s16*s16 products summed pairwise into exact int32 lanes.
// With |codes| <= 128 a pair sum is at most 2*128*127, far from the
// only VPMADDWD saturation point (both products = 0x40000000), so the
// accumulation is exact — integer addition is associative, and these
// kernels are bit-identical to the scalar int8 path.

// func qgemmTile4x16(kp2 int, pa, pb *int16, c *int32, ldc int)
//
// C[0:4][0:16] += A·B over one packed K panel of kp2 k-PAIRS. pa holds
// 4 rows pair-interleaved (pa[p*8 + r*2 + d] = row r, k = 2p+d), pb 16
// columns pair-interleaved (pb[p*32 + j*2 + d]). Each pair step
// broadcasts a row's (k, k+1) s16 pair as a dword and VPMADDWDs it
// against the two 8-column B halves: 8 madd + 8 add per step for 128
// MACs. c points at the int32 tile top-left, rows ldc lanes apart.
//
// Register map: Y0/Y1 = B halves, Y2 = broadcast pair, Y3 = madd tmp,
// Y8..Y15 = C accumulators (4 rows x 2 halves).
TEXT ·qgemmTile4x16(SB), NOSPLIT, $0-40
	MOVQ kp2+0(FP), CX
	MOVQ pa+8(FP), DI
	MOVQ pb+16(FP), SI
	MOVQ c+24(FP), DX
	MOVQ ldc+32(FP), R8
	SHLQ $2, R8              // row stride in bytes
	LEAQ (R8)(R8*2), R9      // 3*ldc bytes

	VMOVDQU (DX), Y8
	VMOVDQU 32(DX), Y9
	VMOVDQU (DX)(R8*1), Y10
	VMOVDQU 32(DX)(R8*1), Y11
	VMOVDQU (DX)(R8*2), Y12
	VMOVDQU 32(DX)(R8*2), Y13
	VMOVDQU (DX)(R9*1), Y14
	VMOVDQU 32(DX)(R9*1), Y15

qtileLoop:
	VMOVDQU (SI), Y0
	VMOVDQU 32(SI), Y1
	VPBROADCASTD (DI), Y2
	VPMADDWD Y0, Y2, Y3
	VPADDD   Y3, Y8, Y8
	VPMADDWD Y1, Y2, Y3
	VPADDD   Y3, Y9, Y9
	VPBROADCASTD 4(DI), Y2
	VPMADDWD Y0, Y2, Y3
	VPADDD   Y3, Y10, Y10
	VPMADDWD Y1, Y2, Y3
	VPADDD   Y3, Y11, Y11
	VPBROADCASTD 8(DI), Y2
	VPMADDWD Y0, Y2, Y3
	VPADDD   Y3, Y12, Y12
	VPMADDWD Y1, Y2, Y3
	VPADDD   Y3, Y13, Y13
	VPBROADCASTD 12(DI), Y2
	VPMADDWD Y0, Y2, Y3
	VPADDD   Y3, Y14, Y14
	VPMADDWD Y1, Y2, Y3
	VPADDD   Y3, Y15, Y15
	ADDQ $16, DI
	ADDQ $64, SI
	DECQ CX
	JNZ  qtileLoop

	VMOVDQU Y8, (DX)
	VMOVDQU Y9, 32(DX)
	VMOVDQU Y10, (DX)(R8*1)
	VMOVDQU Y11, 32(DX)(R8*1)
	VMOVDQU Y12, (DX)(R8*2)
	VMOVDQU Y13, 32(DX)(R8*2)
	VMOVDQU Y14, (DX)(R9*1)
	VMOVDQU Y15, 32(DX)(R9*1)
	VZEROUPPER
	RET

// func qdotAsm(k16 int, a, x *int8) int32
//
// Dot product of two int8 vectors over k16 elements (a multiple of 32;
// the caller finishes any remainder in Go). Each step sign-extends 16
// bytes of each operand to s16 and VPMADDWDs them; two independent
// accumulators hide the add latency, and a horizontal reduce folds the
// 8 int32 lanes at the end.
TEXT ·qdotAsm(SB), NOSPLIT, $0-28
	MOVQ k16+0(FP), CX
	MOVQ a+8(FP), DI
	MOVQ x+16(FP), SI
	VPXOR Y4, Y4, Y4
	VPXOR Y5, Y5, Y5
	SHRQ $5, CX              // 32 elements per iteration

qdotLoop:
	VPMOVSXBW (DI), Y0
	VPMOVSXBW (SI), Y1
	VPMADDWD Y1, Y0, Y2
	VPADDD   Y2, Y4, Y4
	VPMOVSXBW 16(DI), Y0
	VPMOVSXBW 16(SI), Y1
	VPMADDWD Y1, Y0, Y2
	VPADDD   Y2, Y5, Y5
	ADDQ $32, DI
	ADDQ $32, SI
	DECQ CX
	JNZ  qdotLoop

	VPADDD Y5, Y4, Y4
	VEXTRACTI128 $1, Y4, X1
	VPADDD X1, X4, X4
	VPSHUFD $0xEE, X4, X1
	VPADDD X1, X4, X4
	VPSHUFD $0x55, X4, X1
	VPADDD X1, X4, X4
	VZEROUPPER
	MOVL X4, ret+24(FP)
	RET
