package engine

import (
	"fmt"
	"testing"
)

// BenchmarkSgemmCrossover sweeps the column count at a fixed deep-K
// GEMM to locate where the packed microkernel overtakes the panel
// loop; the sgemmAcc dispatch threshold is set from its output.
func BenchmarkSgemmCrossover(b *testing.B) {
	const m, k = 256, 1152
	a := make([]float32, m*k)
	for i := range a {
		a[i] = float32(i%13) * 0.125
	}
	for _, n := range []int{16, 32, 64, 128, 256, 512, 1024} {
		bb := make([]float32, k*n)
		c := make([]float32, m*n)
		for i := range bb {
			bb[i] = float32(i%11) * 0.0625
		}
		macs := float64(m) * float64(k) * float64(n)
		b.Run(fmt.Sprintf("micro/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sgemmMicro(m, k, n, n, a, bb, c, 1)
			}
			b.ReportMetric(macs*float64(b.N)/float64(b.Elapsed().Nanoseconds()), "MAC/ns")
		})
		b.Run(fmt.Sprintf("panel/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sgemmPanel(0, m, k, n, n, a, bb, c)
			}
			b.ReportMetric(macs*float64(b.N)/float64(b.Elapsed().Nanoseconds()), "MAC/ns")
		})
	}
}
