package engine

import (
	"fmt"
	"testing"
)

// BenchmarkSgemmCrossover sweeps the column count at a fixed deep-K
// GEMM to locate where the packed drivers overtake the panel loop;
// the sgemmAcc dispatch thresholds (microCrossoverBytes and
// asmCrossoverBytes) are set from its output. The asm legs run only
// where the assembly path is live, so ratios within one run compare
// like with like.
func BenchmarkSgemmCrossover(b *testing.B) {
	const m, k = 256, 1152
	a := make([]float32, m*k)
	for i := range a {
		a[i] = float32(i%13) * 0.125
	}
	for _, n := range []int{16, 32, 64, 128, 256, 512, 1024} {
		bb := make([]float32, k*n)
		c := make([]float32, m*n)
		for i := range bb {
			bb[i] = float32(i%11) * 0.0625
		}
		macs := float64(m) * float64(k) * float64(n)
		b.Run(fmt.Sprintf("micro/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sgemmMicro(m, k, n, n, a, bb, c, 1)
			}
			b.ReportMetric(macs*float64(b.N)/float64(b.Elapsed().Nanoseconds()), "MAC/ns")
		})
		b.Run(fmt.Sprintf("panel/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sgemmPanel(0, m, k, n, n, a, bb, c)
			}
			b.ReportMetric(macs*float64(b.N)/float64(b.Elapsed().Nanoseconds()), "MAC/ns")
		})
		if asmEnabled() {
			b.Run(fmt.Sprintf("asm/n=%d", n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					sgemmAsm(m, k, n, n, a, bPacker{b: bb, ldb: n}, c, 1)
				}
				b.ReportMetric(macs*float64(b.N)/float64(b.Elapsed().Nanoseconds()), "MAC/ns")
			})
		}
	}
}

// BenchmarkQgemmCrossover compares the int8 drivers the same way: the
// scalar row-pair loop against the VPMADDWD tile (where live), at the
// alexnet fc6 GEMV shape and conv-lowered matrix shapes.
func BenchmarkQgemmCrossover(b *testing.B) {
	const m, k = 256, 1152
	a := make([]int8, m*k)
	for i := range a {
		a[i] = int8(i%251 - 125)
	}
	for _, n := range []int{16, 64, 256, 1024} {
		bb := make([]int8, k*n)
		c := make([]int32, m*n)
		for i := range bb {
			bb[i] = int8(i%241 - 120)
		}
		macs := float64(m) * float64(k) * float64(n)
		b.Run(fmt.Sprintf("scalar/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				qgemmRows(0, m, k, n, a, bb, c)
			}
			b.ReportMetric(macs*float64(b.N)/float64(b.Elapsed().Nanoseconds()), "MAC/ns")
		})
		if asmQgemmOK {
			b.Run(fmt.Sprintf("asm/n=%d", n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					qgemmAsm(m, k, n, a, bb, c, 1)
				}
				b.ReportMetric(macs*float64(b.N)/float64(b.Elapsed().Nanoseconds()), "MAC/ns")
			})
		}
	}
}
