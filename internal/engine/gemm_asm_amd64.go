//go:build !noasm

package engine

import "os"

// AVX2+FMA assembly gating for amd64. The kernels in
// gemm_avx2_amd64.s / qgemm_avx2_amd64.s need AVX2, FMA3 and an OS
// that saves YMM state; all three are probed once at init via CPUID /
// XGETBV. Without them (or under the noasm build tag, or with
// DNNJPS_NOASM set) the engine behaves exactly as before this kernel
// existed: KernelGEMM resolves through preferMicro, which on amd64
// means the streaming panel loop, bit-identical to the pre-asm build.

const (
	// asmMR x asmNR is the assembly register tile: 6 rows x 16
	// columns keeps 12 YMM accumulators live with Y0..Y3 left for the
	// B row halves and A broadcasts.
	asmMR = 6
	asmNR = 16

	// Cache blocking for the packed asm driver. One packed B strip
	// (asmKC x asmNR x 4 B = 16 KiB) stays L1-resident against the A
	// strips; the packed A block (asmMC x asmKC x 4 B = 132 KiB) and
	// B block (asmKC x asmNC x 4 B = 1 MiB) share L2/L3.
	asmKC = 256
	asmMC = 132  // multiple of asmMR
	asmNC = 1024 // multiple of asmNR

	// asmCrossoverBytes is the B working set (k*n*4 bytes) above which
	// KernelGEMM routes to the FMA tile when available. Measured with
	// BenchmarkSgemmCrossover (m=256, k=1152): asm beats the panel
	// loop at every swept width, from 2.7x at n=16 (6.6 vs 2.5 MAC/ns)
	// to ~9x at n=1024 (28.6 vs 3.1). A shallow-shape sweep confirms
	// the win holds right down to the structural floor — a single
	// 6x16 tile at k=16 runs 6.2 vs 3.0 MAC/ns — so the threshold is
	// zero: the tile guard in preferAsm (m ≥ asmMR, n ≥ asmNR, k ≥ 8)
	// is the whole policy on this architecture.
	asmCrossoverBytes = 0

	// Int8 tile: 4 rows x 16 columns of int32 accumulators.
	asmQMR = 4
	asmQNR = 16
)

// asmSgemmOK / asmQgemmOK / asmQuantOK report at runtime whether the
// float32 GEMM, int8 GEMM and activation-quantization assembly kernels
// may be used on this CPU.
var asmSgemmOK, asmQgemmOK, asmQuantOK bool

func init() {
	if os.Getenv("DNNJPS_NOASM") != "" {
		return
	}
	ok := cpuHasAVX2FMA()
	asmSgemmOK, asmQgemmOK, asmQuantOK = ok, ok, ok
}

// cpuHasAVX2FMA probes CPUID leaf 1 (FMA, AVX, OSXSAVE), XGETBV
// (OS-enabled XMM+YMM state) and leaf 7 (AVX2).
func cpuHasAVX2FMA() bool {
	maxLeaf, _, _, _ := cpuidAsm(0, 0)
	if maxLeaf < 7 {
		return false
	}
	const osxsave, avx, fma = 1 << 27, 1 << 28, 1 << 12
	_, _, c1, _ := cpuidAsm(1, 0)
	if c1&osxsave == 0 || c1&avx == 0 || c1&fma == 0 {
		return false
	}
	if lo, _ := xgetbvAsm(); lo&0x6 != 0x6 {
		return false
	}
	_, b7, _, _ := cpuidAsm(7, 0)
	return b7&(1<<5) != 0
}

//go:noescape
func cpuidAsm(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

//go:noescape
func xgetbvAsm() (eax, edx uint32)

//go:noescape
func sgemmTile6x16(kc int, pa, pb, c *float32, ldc int)

//go:noescape
func qgemmTile4x16(kp2 int, pa, pb *int16, c *int32, ldc int)

//go:noescape
func qdotAsm(k16 int, a, x *int8) int32

//go:noescape
func quantizeSpanAsm(dst *int8, src *float32, inv, zero float64, n int)

// asmSgemmTile runs the arch tile on packed strips pa/pb against the
// C tile at c[off] with row stride ldc.
func asmSgemmTile(kc int, pa, pb, c []float32, off, ldc int) {
	sgemmTile6x16(kc, &pa[0], &pb[0], &c[off], ldc)
}

// asmQgemmTile runs the int8 tile over kp2 packed k-pairs.
func asmQgemmTile(kp2 int, pa, pb []int16, c []int32, off, ldc int) {
	qgemmTile4x16(kp2, &pa[0], &pb[0], &c[off], ldc)
}

// asmQdot returns the dot product of a[0:k32] and x[0:k32]; k32 must
// be a multiple of 32.
func asmQdot(k32 int, a, x []int8) int32 {
	return qdotAsm(k32, &a[0], &x[0])
}
