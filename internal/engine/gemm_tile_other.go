//go:build !amd64

package engine

// Portable register tile: 4 rows x 4 columns, no k unroll.
//
// Non-amd64 targets (arm64 in particular) have 32 FP registers, so the
// 16 accumulators + 4 a-values + 4 b-values of a 4x4 tile stay
// register-resident, and on arm64 the compiler contracts each mul+add
// pair into an FMADD. Contraction is applied uniformly to every kernel
// path on that platform (one rounding per MAC everywhere), so the
// cross-path bit-exactness contract still holds within a build.

const (
	microMR = 4
	microNR = 4

	// microCrossoverBytes is the B working set (k*n*4 bytes) above
	// which KernelGEMM prefers the packed microkernel; see
	// autokernel.go for the measured table. Mobile-class cores have
	// small shared LLCs (512 KiB – 4 MB), so the panel loop's repeated
	// B streaming goes to DRAM while the packed microkernel keeps its
	// working set cache-resident and its 4x4 FMADD tile maps onto the
	// 32 FP registers: the packed path wins as soon as the shape is
	// tileable, so the threshold is zero. Force the streaming loop
	// with WithKernel(KernelPanel).
	microCrossoverBytes = 0
)

// microTileFull accumulates a full microMR x microNR tile of C over one
// packed K panel; see the amd64 variant for the layout contract.
func microTileFull(kc int, pa, pb []float32, c []float32, off, ldc int) {
	c0 := c[off : off+4 : off+4]
	c1 := c[off+ldc : off+ldc+4 : off+ldc+4]
	c2 := c[off+2*ldc : off+2*ldc+4 : off+2*ldc+4]
	c3 := c[off+3*ldc : off+3*ldc+4 : off+3*ldc+4]
	c00, c01, c02, c03 := c0[0], c0[1], c0[2], c0[3]
	c10, c11, c12, c13 := c1[0], c1[1], c1[2], c1[3]
	c20, c21, c22, c23 := c2[0], c2[1], c2[2], c2[3]
	c30, c31, c32, c33 := c3[0], c3[1], c3[2], c3[3]
	ia, ib := 0, 0
	for kk := 0; kk < kc; kk++ {
		a0, a1, a2, a3 := pa[ia], pa[ia+1], pa[ia+2], pa[ia+3]
		b0, b1, b2, b3 := pb[ib], pb[ib+1], pb[ib+2], pb[ib+3]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		c20 += a2 * b0
		c21 += a2 * b1
		c22 += a2 * b2
		c23 += a2 * b3
		c30 += a3 * b0
		c31 += a3 * b1
		c32 += a3 * b2
		c33 += a3 * b3
		ia += 4
		ib += 4
	}
	c0[0], c0[1], c0[2], c0[3] = c00, c01, c02, c03
	c1[0], c1[1], c1[2], c1[3] = c10, c11, c12, c13
	c2[0], c2[1], c2[2], c2[3] = c20, c21, c22, c23
	c3[0], c3[1], c3[2], c3[3] = c30, c31, c32, c33
}

// packBStrip packs one full microNR-column strip: dst[kk*microNR+c] =
// b[kk*ldb+c] for kc rows, unrolled for the 4-wide strip.
func packBStrip(kc int, b []float32, ldb int, dst []float32) {
	dst = dst[: kc*4 : kc*4]
	si, di := 0, 0
	for kk := 0; kk < kc; kk++ {
		s := b[si : si+4 : si+4]
		dst[di] = s[0]
		dst[di+1] = s[1]
		dst[di+2] = s[2]
		dst[di+3] = s[3]
		si += ldb
		di += 4
	}
}
