// Package engine executes real float32 forward passes over dag.Graph
// models — the replacement for the paper's PyTorch engines on both the
// client and the server. Weights are deterministically initialized
// from a seed so client and server instantiate identical models
// without shipping parameters, mirroring the paper's setup where both
// sides pre-load the same pre-cut model.
package engine

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"

	"dnnjps/internal/dag"
	"dnnjps/internal/nn"
	"dnnjps/internal/tensor"
)

// params holds one layer's learned tensors.
type params struct {
	w, b []float32
}

// Model is a graph plus its instantiated weights, ready to execute.
type Model struct {
	g       *dag.Graph
	seed    int64
	params  map[int]params
	workers int // convolution parallelism; see Parallel
}

// Load instantiates weights for every parametric layer of the graph.
// Initialization is deterministic in (seed, layer name): two Loads of
// the same model with the same seed produce bit-identical weights.
func Load(g *dag.Graph, seed int64) *Model {
	m := &Model{g: g, seed: seed, params: make(map[int]params), workers: 1}
	for _, id := range g.Topo() {
		node := g.Node(id)
		ins := g.InputShapes(id)
		switch l := node.Layer.(type) {
		case *nn.Conv2D:
			inC := ins[0].C() / maxInt(l.Groups, 1)
			fanIn := l.KH * l.KW * inC
			p := params{w: initSlice(seed, l.LayerName+"/w", l.OutC*fanIn, fanIn)}
			if l.Bias {
				p.b = initSlice(seed, l.LayerName+"/b", l.OutC, fanIn)
			}
			m.params[id] = p
		case *nn.DepthwiseConv2D:
			c := ins[0].C()
			fanIn := l.KH * l.KW
			p := params{w: initSlice(seed, l.LayerName+"/w", c*fanIn, fanIn)}
			if l.Bias {
				p.b = initSlice(seed, l.LayerName+"/b", c, fanIn)
			}
			m.params[id] = p
		case *nn.Dense:
			in := ins[0].Elems()
			p := params{w: initSlice(seed, l.LayerName+"/w", l.Out*in, in)}
			if l.Bias {
				p.b = initSlice(seed, l.LayerName+"/b", l.Out, in)
			}
			m.params[id] = p
		case *nn.BatchNorm:
			c := ins[0].C()
			// Scale near 1, shift near 0 (folded inference form).
			p := params{w: make([]float32, c), b: make([]float32, c)}
			rng := rngFor(seed, l.LayerName)
			for i := 0; i < c; i++ {
				p.w[i] = 1 + 0.1*float32(rng.NormFloat64())
				p.b[i] = 0.05 * float32(rng.NormFloat64())
			}
			m.params[id] = p
		}
	}
	return m
}

// Graph returns the model's graph.
func (m *Model) Graph() *dag.Graph { return m.g }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func rngFor(seed int64, name string) *rand.Rand {
	h := fnv.New64a()
	h.Write([]byte(name))
	return rand.New(rand.NewSource(seed ^ int64(h.Sum64())))
}

// initSlice draws n values from N(0, 1/fanIn) — He-style scaling keeps
// activations bounded through deep stacks.
func initSlice(seed int64, name string, n, fanIn int) []float32 {
	rng := rngFor(seed, name)
	std := 1 / math.Sqrt(float64(maxInt(fanIn, 1)))
	out := make([]float32, n)
	for i := range out {
		out[i] = float32(rng.NormFloat64() * std)
	}
	return out
}

// Forward runs the whole model on one input tensor and returns the
// sink's output.
func (m *Model) Forward(input *tensor.Tensor) (*tensor.Tensor, error) {
	acts := map[int]*tensor.Tensor{}
	if err := m.Execute(acts, input, m.g.Topo()); err != nil {
		return nil, err
	}
	return acts[m.g.Sink()], nil
}

// Execute evaluates the given nodes (which must be in topological
// order) into acts. The input tensor seeds the source node when the
// node list contains it; otherwise acts must already hold every
// predecessor activation — this is how the server resumes from a cut:
// the client ships the boundary activations, the server executes the
// remaining node range.
func (m *Model) Execute(acts map[int]*tensor.Tensor, input *tensor.Tensor, nodes []int) error {
	for _, id := range nodes {
		node := m.g.Node(id)
		if _, ok := node.Layer.(*nn.Input); ok {
			if input == nil {
				return fmt.Errorf("engine: %q needs an input tensor", node.Layer.Name())
			}
			if !input.Shape.Equal(node.OutShape) {
				return fmt.Errorf("engine: input shape %v, model wants %v", input.Shape, node.OutShape)
			}
			acts[id] = input
			continue
		}
		ins := make([]*tensor.Tensor, 0, len(m.g.Preds(id)))
		for _, p := range m.g.Preds(id) {
			a, ok := acts[p]
			if !ok {
				return fmt.Errorf("engine: %q missing activation of predecessor %q",
					node.Layer.Name(), m.g.Node(p).Layer.Name())
			}
			ins = append(ins, a)
		}
		out, err := m.eval(id, node, ins)
		if err != nil {
			return err
		}
		acts[id] = out
	}
	return nil
}

// eval dispatches one layer.
func (m *Model) eval(id int, node *dag.Node, ins []*tensor.Tensor) (*tensor.Tensor, error) {
	switch l := node.Layer.(type) {
	case *nn.Conv2D:
		return conv2d(ins[0], node.OutShape, m.params[id], l.KH, l.KW, l.Stride,
			l.EffPadH(), l.EffPadW(), maxInt(l.Groups, 1), m.workers), nil
	case *nn.DepthwiseConv2D:
		return dwconv2d(ins[0], node.OutShape, m.params[id], l.KH, l.KW, l.Stride, l.Pad, m.workers), nil
	case *nn.MaxPool2D:
		return maxpool(ins[0], node.OutShape, l.K, l.Stride, l.Pad), nil
	case *nn.AvgPool2D:
		return avgpool(ins[0], node.OutShape, l.K, l.Stride, l.Pad), nil
	case *nn.GlobalAvgPool2D:
		return globalAvgPool(ins[0]), nil
	case *nn.Dense:
		return dense(ins[0], m.params[id], l.Out), nil
	case *nn.Activation:
		return activate(ins[0], l.Func), nil
	case *nn.BatchNorm:
		return batchNorm(ins[0], m.params[id]), nil
	case *nn.LRN:
		return lrn(ins[0], l.Size), nil
	case *nn.Dropout:
		return ins[0], nil // identity at inference
	case *nn.Flatten:
		return ins[0].Flatten(), nil
	case *nn.Concat:
		return concat(ins, node.OutShape), nil
	case *nn.Add:
		return add(ins), nil
	case *nn.Softmax:
		return softmax(ins[0]), nil
	default:
		return nil, fmt.Errorf("engine: unsupported layer type %T (%s)", node.Layer, node.Layer.Name())
	}
}

// Argmax returns the index of the largest element — the predicted
// class of a classifier head.
func Argmax(t *tensor.Tensor) int {
	best, bestV := 0, float32(math.Inf(-1))
	for i, v := range t.Data {
		if v > bestV {
			best, bestV = i, v
		}
	}
	return best
}
