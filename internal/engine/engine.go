// Package engine executes real float32 forward passes over dag.Graph
// models — the replacement for the paper's PyTorch engines on both the
// client and the server. Weights are deterministically initialized
// from a seed so client and server instantiate identical models
// without shipping parameters, mirroring the paper's setup where both
// sides pre-load the same pre-cut model.
//
// The hot compute path lowers convolutions onto an im2col + blocked
// parallel SGEMM kernel (see gemm.go, im2col.go) and recycles
// activation buffers through a per-model tensor.Arena; the naive
// direct-loop kernels are kept as a reference implementation behind
// WithKernel(KernelDirect). Both paths accumulate every output element
// in the same fixed order, so they produce identical outputs at any
// worker count.
package engine

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sync"

	"dnnjps/internal/dag"
	"dnnjps/internal/nn"
	"dnnjps/internal/tensor"
)

// KernelPath selects the implementation of the heavy layers.
type KernelPath int

const (
	// KernelGEMM lowers conv2d via im2col onto the blocked parallel
	// SGEMM, runs depthwise conv with an interior/border split, and
	// dense layers as a register-blocked matrix-vector product. The
	// SGEMM driver is chosen per shape from the measured per-GOARCH
	// crossover policy (see preferMicro in autokernel.go): the
	// streaming panel loop on amd64, the packed register-tile
	// microkernel elsewhere once the shape tiles. This is the default
	// path.
	KernelGEMM KernelPath = iota
	// KernelDirect is the naive nested-loop reference implementation,
	// kept for parity tests and kernel-path comparisons.
	KernelDirect
	// KernelPanel forces the GEMM lowering onto the cache-blocked
	// streaming panel loop regardless of GOARCH.
	KernelPanel
	// KernelMicro forces the GEMM lowering onto the packed
	// register-tile microkernel regardless of GOARCH.
	KernelMicro
	// KernelAsm forces the GEMM lowering onto the hand-written
	// SIMD microkernel (AVX2+FMA on amd64, NEON on arm64) when the
	// CPU supports it; on other builds (or under the noasm tag) it
	// degrades to the KernelGEMM auto policy. Unlike the pure-Go
	// drivers the FMA tile rounds once per multiply-add, so float32
	// outputs agree with the other paths only within the documented
	// tolerance (see gemm_asm.go); the int8 kernels remain exact.
	KernelAsm
)

func (k KernelPath) String() string {
	switch k {
	case KernelGEMM:
		return "gemm"
	case KernelDirect:
		return "direct"
	case KernelPanel:
		return "panel"
	case KernelMicro:
		return "micro"
	case KernelAsm:
		return "asm"
	default:
		return fmt.Sprintf("kernel(%d)", int(k))
	}
}

// ParseKernelPath maps the CLI spelling to a KernelPath. "auto" (and
// its historical alias "gemm") selects the shape-aware policy; the
// other spellings force one driver.
func ParseKernelPath(s string) (KernelPath, error) {
	switch s {
	case "auto", "gemm":
		return KernelGEMM, nil
	case "direct":
		return KernelDirect, nil
	case "panel":
		return KernelPanel, nil
	case "micro":
		return KernelMicro, nil
	case "asm":
		return KernelAsm, nil
	default:
		return 0, fmt.Errorf("engine: unknown kernel path %q (want auto, gemm, panel, micro, asm, or direct)", s)
	}
}

// params holds one layer's learned tensors.
type params struct {
	w, b []float32
}

// Model is a graph plus its instantiated weights, ready to execute.
type Model struct {
	g       *dag.Graph
	seed    int64
	params  map[int]params
	workers int        // convolution parallelism; see Parallel
	kernel  KernelPath // heavy-layer implementation; see WithKernel
	arena   *tensor.Arena
	quant   *quantState // int8 inference mode; nil = float32 (see quant.go)
	states  sync.Pool   // recycled *execState bookkeeping (see executeN)
	acts    sync.Pool   // recycled activation maps for Forward/ForwardBatch
}

// Load instantiates weights for every parametric layer of the graph.
// Initialization is deterministic in (seed, layer name): two Loads of
// the same model with the same seed produce bit-identical weights.
func Load(g *dag.Graph, seed int64) *Model {
	m := &Model{
		g:       g,
		seed:    seed,
		params:  make(map[int]params),
		workers: 1,
		kernel:  KernelGEMM,
		arena:   tensor.NewArena(),
	}
	for _, id := range g.Topo() {
		node := g.Node(id)
		ins := g.InputShapes(id)
		switch l := node.Layer.(type) {
		case *nn.Conv2D:
			inC := ins[0].C() / maxInt(l.Groups, 1)
			fanIn := l.KH * l.KW * inC
			p := params{w: initSlice(seed, l.LayerName+"/w", l.OutC*fanIn, fanIn)}
			if l.Bias {
				p.b = initSlice(seed, l.LayerName+"/b", l.OutC, fanIn)
			}
			m.params[id] = p
		case *nn.DepthwiseConv2D:
			c := ins[0].C()
			fanIn := l.KH * l.KW
			p := params{w: initSlice(seed, l.LayerName+"/w", c*fanIn, fanIn)}
			if l.Bias {
				p.b = initSlice(seed, l.LayerName+"/b", c, fanIn)
			}
			m.params[id] = p
		case *nn.Dense:
			in := ins[0].Elems()
			p := params{w: initSlice(seed, l.LayerName+"/w", l.Out*in, in)}
			if l.Bias {
				p.b = initSlice(seed, l.LayerName+"/b", l.Out, in)
			}
			m.params[id] = p
		case *nn.BatchNorm:
			c := ins[0].C()
			// Scale near 1, shift near 0 (folded inference form).
			p := params{w: make([]float32, c), b: make([]float32, c)}
			rng := rngFor(seed, l.LayerName)
			for i := 0; i < c; i++ {
				p.w[i] = 1 + 0.1*float32(rng.NormFloat64())
				p.b[i] = 0.05 * float32(rng.NormFloat64())
			}
			m.params[id] = p
		}
	}
	return m
}

// Graph returns the model's graph.
func (m *Model) Graph() *dag.Graph { return m.g }

// WithKernel selects the heavy-layer implementation. Returns the model
// for chaining. Both paths produce identical outputs; KernelDirect
// exists so profiling runs can compare against the reference.
func (m *Model) WithKernel(k KernelPath) *Model {
	m.kernel = k
	return m
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func rngFor(seed int64, name string) *rand.Rand {
	h := fnv.New64a()
	h.Write([]byte(name))
	return rand.New(rand.NewSource(seed ^ int64(h.Sum64())))
}

// initSlice draws n values from N(0, 1/fanIn) — He-style scaling keeps
// activations bounded through deep stacks.
func initSlice(seed int64, name string, n, fanIn int) []float32 {
	rng := rngFor(seed, name)
	std := 1 / math.Sqrt(float64(maxInt(fanIn, 1)))
	out := make([]float32, n)
	for i := range out {
		out[i] = float32(rng.NormFloat64() * std)
	}
	return out
}

// Forward runs the whole model on one input tensor and returns the
// sink's output.
func (m *Model) Forward(input *tensor.Tensor) (*tensor.Tensor, error) {
	acts := m.getActs()
	defer m.putActs(acts)
	if err := m.Execute(acts, input, m.g.Topo()); err != nil {
		return nil, err
	}
	return acts[m.g.Sink()], nil
}

// getActs hands out a recycled activation map for whole-model runs.
// The liveness tracker retires entries eagerly, so by the end of a
// full-topo pass only the sink (which the caller keeps) is left and the
// map's buckets can be reused as-is.
func (m *Model) getActs() map[int]*tensor.Tensor {
	if a, _ := m.acts.Get().(map[int]*tensor.Tensor); a != nil {
		return a
	}
	return make(map[int]*tensor.Tensor, 8)
}

func (m *Model) putActs(acts map[int]*tensor.Tensor) {
	clear(acts)
	m.acts.Put(acts)
}

// ForwardBatch runs the whole model on a batch of equally shaped
// inputs and returns the per-input sink outputs. The inputs are packed
// into the engine's batched layout (see batch.go), executed as one
// pass — each conv/dense layer issues a single widened SGEMM instead
// of len(inputs) narrow ones — and the sink is unpacked again.
func (m *Model) ForwardBatch(inputs []*tensor.Tensor) ([]*tensor.Tensor, error) {
	packed, err := PackBatch(inputs)
	if err != nil {
		return nil, err
	}
	acts := m.getActs()
	defer m.putActs(acts)
	if err := m.ExecuteBatch(acts, len(inputs), packed, m.g.Topo()); err != nil {
		return nil, err
	}
	return UnpackBatch(acts[m.g.Sink()], len(inputs))
}

// execState tracks activation liveness for one Execute call so the
// arena can reclaim each buffer as soon as its last consumer inside
// the node list has run. owner[i] is the node whose eval allocated the
// buffer backing node i's activation (views and in-place ops share a
// predecessor's buffer; -1 marks caller-provided tensors, which are
// never recycled or mutated). refs counts live activations per owning
// node's buffer.
type execState struct {
	remaining  []int  // in-list consumers not yet executed
	releasable []bool // >0 consumers, all inside the node list
	owner      []int
	refs       []int
	pooled     []bool           // owner's buffer came from the arena
	tens       []*tensor.Tensor // owner's tensor, kept for recycling
	inList     []bool           // scratch: node is in this call's list
	ins        []*tensor.Tensor // scratch: predecessor activations
}

// newExecState hands out liveness bookkeeping for one executeN call,
// recycled through the model's state pool — the graph size is fixed, so
// a returned state's slices always fit and a steady-state Forward pays
// no bookkeeping allocations.
func (m *Model) newExecState(nodes []int) *execState {
	n := m.g.Len()
	st, _ := m.states.Get().(*execState)
	if st == nil {
		st = &execState{
			remaining:  make([]int, n),
			releasable: make([]bool, n),
			owner:      make([]int, n),
			refs:       make([]int, n),
			pooled:     make([]bool, n),
			tens:       make([]*tensor.Tensor, n),
			inList:     make([]bool, n),
		}
	} else {
		for i := range st.remaining {
			st.remaining[i] = 0
			st.releasable[i] = false
			st.refs[i] = 0
			st.pooled[i] = false
			st.inList[i] = false
		}
	}
	for i := range st.owner {
		st.owner[i] = -1
	}
	inList := st.inList
	for _, id := range nodes {
		inList[id] = true
	}
	for _, id := range nodes {
		succs := m.g.Succs(id)
		cnt := 0
		for _, s := range succs {
			if inList[s] {
				cnt++
			}
		}
		st.remaining[id] = cnt
		// A node with consumers outside the list (a cut boundary the
		// caller will ship) or none at all (the sink) stays live.
		st.releasable[id] = cnt > 0 && cnt == len(succs)
	}
	return st
}

func sharesBuffer(a, b *tensor.Tensor) bool {
	return len(a.Data) > 0 && len(b.Data) > 0 && &a.Data[0] == &b.Data[0]
}

// adopt registers node id's freshly produced activation: either it
// shares a predecessor's buffer (views like Flatten, identity ops,
// in-place activations) or it owns a fresh arena buffer.
func (st *execState) adopt(id int, out *tensor.Tensor, ins []*tensor.Tensor, preds []int) {
	for i, in := range ins {
		if sharesBuffer(out, in) {
			if root := st.owner[preds[i]]; root >= 0 {
				st.owner[id] = root
				st.refs[root]++
			}
			return
		}
	}
	st.owner[id] = id
	st.refs[id] = 1
	st.pooled[id] = true
	st.tens[id] = out
}

// retire drops a dead activation from acts and recycles its buffer
// once no live activation shares it.
func (st *execState) retire(id int, acts map[int]*tensor.Tensor, arena *tensor.Arena) {
	delete(acts, id)
	root := st.owner[id]
	st.owner[id] = -1
	if root < 0 {
		return
	}
	st.refs[root]--
	if st.refs[root] == 0 && st.pooled[root] {
		st.pooled[root] = false
		arena.Put(st.tens[root])
		st.tens[root] = nil
	}
}

// canOverwrite reports whether pred p's buffer may be mutated in place
// by its consumer: p dies right after this node runs, nothing else
// shares its buffer, and the buffer came from the arena (never a
// caller-provided tensor).
func (st *execState) canOverwrite(p int) bool {
	if st.remaining[p] != 1 || !st.releasable[p] {
		return false
	}
	root := st.owner[p]
	return root >= 0 && st.pooled[root] && st.refs[root] == 1
}

// Execute evaluates the given nodes (which must be in topological
// order) into acts. The input tensor seeds the source node when the
// node list contains it; otherwise acts must already hold every
// predecessor activation — this is how the server resumes from a cut:
// the client ships the boundary activations, the server executes the
// remaining node range.
//
// Activations whose consumers all lie inside the node list are removed
// from acts once their last consumer has run and their buffers are
// recycled through the model's arena; entries the caller can still
// need — the sink, cut boundaries feeding nodes outside the list, and
// any tensor the caller provided — are always retained.
func (m *Model) Execute(acts map[int]*tensor.Tensor, input *tensor.Tensor, nodes []int) error {
	return m.executeN(acts, 1, input, nodes)
}

// ExecuteBatch is Execute over a packed batch of n equally shaped
// activations (see PackBatch for the layout). Every activation in acts
// — seeded boundary tensors and produced ones alike — is a packed
// batch-n tensor; per-node shapes are the batched form of the node's
// OutShape (dim 0 scaled by n). With n == 1 it is exactly Execute,
// bit for bit: the batched kernels degenerate to the batch-1 code
// paths and accumulate every output element in the same order.
func (m *Model) ExecuteBatch(acts map[int]*tensor.Tensor, n int, input *tensor.Tensor, nodes []int) error {
	if n < 1 {
		return fmt.Errorf("engine: batch size %d", n)
	}
	if n > 1 && m.quant != nil {
		// The batched kernels are float32-only; mixing them with the
		// int8 solo path would make results depend on coalescing.
		return fmt.Errorf("engine: batched execution is not supported on a quantized model")
	}
	return m.executeN(acts, n, input, nodes)
}

// releaseState returns a state to the pool, dropping its tensor
// references so pooled bookkeeping never pins activations alive.
func (m *Model) releaseState(st *execState) {
	for i := range st.tens {
		st.tens[i] = nil
	}
	st.ins = st.ins[:0]
	m.states.Put(st)
}

func (m *Model) executeN(acts map[int]*tensor.Tensor, n int, input *tensor.Tensor, nodes []int) error {
	st := m.newExecState(nodes)
	defer m.releaseState(st)
	for _, id := range nodes {
		node := m.g.Node(id)
		if _, ok := node.Layer.(*nn.Input); ok {
			if input == nil {
				return fmt.Errorf("engine: %q needs an input tensor", node.Layer.Name())
			}
			if want := batchShape(node.OutShape, n); !input.Shape.Equal(want) {
				return fmt.Errorf("engine: input shape %v, model wants %v", input.Shape, want)
			}
			acts[id] = input
			continue
		}
		preds := m.g.Preds(id)
		st.ins = st.ins[:0]
		for _, p := range preds {
			a, ok := acts[p]
			if !ok {
				return fmt.Errorf("engine: %q missing activation of predecessor %q",
					node.Layer.Name(), m.g.Node(p).Layer.Name())
			}
			st.ins = append(st.ins, a)
		}
		out, err := m.evalN(id, node, st.ins, preds, st, n)
		if err != nil {
			return err
		}
		st.adopt(id, out, st.ins, preds)
		acts[id] = out
		for _, p := range preds {
			if st.remaining[p] > 0 {
				st.remaining[p]--
				if st.remaining[p] == 0 && st.releasable[p] {
					st.retire(p, acts, m.arena)
				}
			}
		}
	}
	return nil
}

// evalN dispatches one layer at batch size n. n == 1 takes the
// original single-image kernels (including the KernelDirect reference
// path); n > 1 takes the batched GEMM kernels in batch.go, which share
// the per-element accumulation order with their batch-1 counterparts.
func (m *Model) evalN(id int, node *dag.Node, ins []*tensor.Tensor, preds []int, st *execState, n int) (*tensor.Tensor, error) {
	if n == 1 {
		return m.eval(id, node, ins, preds, st)
	}
	inShapes := m.g.InputShapes(id)
	switch l := node.Layer.(type) {
	case *nn.Conv2D:
		return conv2dGEMMBatch(m.arena, m.kernel, ins[0], inShapes[0], node.OutShape, m.params[id], l.KH, l.KW, l.Stride,
			l.EffPadH(), l.EffPadW(), maxInt(l.Groups, 1), m.workers, n), nil
	case *nn.DepthwiseConv2D:
		return dwconv2dBatch(m.arena, ins[0], inShapes[0], node.OutShape, m.params[id], l.KH, l.KW, l.Stride, l.Pad, m.workers, n), nil
	case *nn.MaxPool2D:
		return maxpoolBatch(m.arena, ins[0], inShapes[0], node.OutShape, l.K, l.Stride, l.Pad, m.workers, n), nil
	case *nn.AvgPool2D:
		return avgpoolBatch(m.arena, ins[0], inShapes[0], node.OutShape, l.K, l.Stride, l.Pad, m.workers, n), nil
	case *nn.GlobalAvgPool2D:
		// The packed layout makes GAP batch-oblivious: each of the C·n
		// planes averages independently and lands at index c·n+b — the
		// packed vector layout.
		return globalAvgPool(m.arena, ins[0]), nil
	case *nn.Dense:
		return denseGEMMBatch(m.arena, m.kernel, ins[0], m.params[id], l.Out, m.workers, n), nil
	case *nn.Activation:
		return activate(m.arena, ins[0], l.Func, st.canOverwrite(preds[0])), nil
	case *nn.BatchNorm:
		return batchNorm(m.arena, ins[0], m.params[id], n), nil
	case *nn.LRN:
		return lrnBatch(m.arena, ins[0], l.Size, n), nil
	case *nn.Dropout:
		return ins[0], nil // identity at inference
	case *nn.Flatten:
		return flattenBatch(m.arena, ins[0], n), nil
	case *nn.Concat:
		return concat(m.arena, ins, batchShape(node.OutShape, n)), nil
	case *nn.Add:
		return add(m.arena, ins, st.canOverwrite(preds[0])), nil
	case *nn.Softmax:
		return softmaxBatch(m.arena, ins[0], n), nil
	default:
		return nil, fmt.Errorf("engine: unsupported layer type %T (%s)", node.Layer, node.Layer.Name())
	}
}

// eval dispatches one layer.
func (m *Model) eval(id int, node *dag.Node, ins []*tensor.Tensor, preds []int, st *execState) (*tensor.Tensor, error) {
	switch l := node.Layer.(type) {
	case *nn.Conv2D:
		if m.quant != nil {
			return m.qconv2d(id, l, ins[0], preds[0], node.OutShape), nil
		}
		if m.kernel == KernelDirect {
			return conv2dDirect(m.arena, ins[0], node.OutShape, m.params[id], l.KH, l.KW, l.Stride,
				l.EffPadH(), l.EffPadW(), maxInt(l.Groups, 1), m.workers), nil
		}
		return conv2dGEMM(m.arena, m.kernel, ins[0], node.OutShape, m.params[id], l.KH, l.KW, l.Stride,
			l.EffPadH(), l.EffPadW(), maxInt(l.Groups, 1), m.workers), nil
	case *nn.DepthwiseConv2D:
		if m.quant != nil {
			return m.qdwconv2d(id, l, ins[0], preds[0], node.OutShape), nil
		}
		if m.kernel == KernelDirect {
			return dwconv2dDirect(m.arena, ins[0], node.OutShape, m.params[id], l.KH, l.KW, l.Stride, l.Pad, m.workers), nil
		}
		return dwconv2dSplit(m.arena, ins[0], node.OutShape, m.params[id], l.KH, l.KW, l.Stride, l.Pad, m.workers), nil
	case *nn.MaxPool2D:
		return maxpool(m.arena, ins[0], node.OutShape, l.K, l.Stride, l.Pad, m.workers), nil
	case *nn.AvgPool2D:
		return avgpool(m.arena, ins[0], node.OutShape, l.K, l.Stride, l.Pad, m.workers), nil
	case *nn.GlobalAvgPool2D:
		return globalAvgPool(m.arena, ins[0]), nil
	case *nn.Dense:
		if m.quant != nil {
			return m.qdense(id, l, ins[0], preds[0]), nil
		}
		if m.kernel == KernelDirect {
			return denseDirect(m.arena, ins[0], m.params[id], l.Out), nil
		}
		return denseGEMM(m.arena, ins[0], m.params[id], l.Out, m.workers), nil
	case *nn.Activation:
		return activate(m.arena, ins[0], l.Func, st.canOverwrite(preds[0])), nil
	case *nn.BatchNorm:
		if m.quant != nil && m.quant.folded[id] {
			return ins[0], nil // absorbed into the producing conv's epilogue
		}
		return batchNorm(m.arena, ins[0], m.params[id], 1), nil
	case *nn.LRN:
		return lrn(m.arena, ins[0], l.Size), nil
	case *nn.Dropout:
		return ins[0], nil // identity at inference
	case *nn.Flatten:
		return ins[0].Flatten(), nil
	case *nn.Concat:
		return concat(m.arena, ins, node.OutShape), nil
	case *nn.Add:
		return add(m.arena, ins, st.canOverwrite(preds[0])), nil
	case *nn.Softmax:
		return softmax(m.arena, ins[0]), nil
	default:
		return nil, fmt.Errorf("engine: unsupported layer type %T (%s)", node.Layer, node.Layer.Name())
	}
}

// Argmax returns the index of the largest element — the predicted
// class of a classifier head.
func Argmax(t *tensor.Tensor) int {
	best, bestV := 0, float32(math.Inf(-1))
	for i, v := range t.Data {
		if v > bestV {
			best, bestV = i, v
		}
	}
	return best
}
