package engine

// Integer kernels for the quantized inference path: int8 operands,
// int32 accumulation, no saturation anywhere in the middle. Unlike the
// float32 kernels, these need no accumulation-order contract — integer
// addition is associative, so any blocking or worker split produces the
// exact same int32 sums. The float32 epilogue (requantize in quant.go)
// is a single rounding per output element and is likewise
// order-independent.

// qgemmAcc computes C (int32, m×n row-major) = A (int8, m×k) · B
// (int8, k×n), overwriting C. On CPUs with the int8 assembly tile the
// packed VPMADDWD driver runs (bit-identical — integer sums are
// exact); otherwise rows are split across workers and the inner loop
// walks row pairs with k unrolled by four, the integer sibling of
// sgemmPanel's hot loop.
func qgemmAcc(m, k, n int, a, b []int8, c []int32, workers int) {
	if asmQgemmOK && m >= asmQMR && n >= asmQNR && k >= 8 {
		qgemmAsm(m, k, n, a, b, c, workers)
		return
	}
	if serialSpan(workers, m) {
		qgemmRows(0, m, k, n, a, b, c)
		return
	}
	parallelFor(workers, m, func(lo, hi int) {
		qgemmRows(lo, hi, k, n, a, b, c)
	})
}

// qgemmRows computes output rows [lo, hi) of the int8 GEMM.
func qgemmRows(lo, hi, k, n int, a, b []int8, c []int32) {
	i := lo
	for ; i+2 <= hi; i += 2 {
		arow0 := a[i*k : i*k+k : i*k+k]
		arow1 := a[(i+1)*k:][:k:k]
		crow0 := c[i*n : i*n+n : i*n+n]
		crow1 := c[(i+1)*n:][:n:n]
		for j := range crow0 {
			crow0[j] = 0
			crow1[j] = 0
		}
		kk := 0
		for ; kk+4 <= k; kk += 4 {
			a00, a01 := int32(arow0[kk]), int32(arow0[kk+1])
			a02, a03 := int32(arow0[kk+2]), int32(arow0[kk+3])
			a10, a11 := int32(arow1[kk]), int32(arow1[kk+1])
			a12, a13 := int32(arow1[kk+2]), int32(arow1[kk+3])
			b0 := b[kk*n:][:n]
			b1 := b[(kk+1)*n:][:n]
			b2 := b[(kk+2)*n:][:n]
			b3 := b[(kk+3)*n:][:n]
			for j := range crow0 {
				e0, e1, e2, e3 := int32(b0[j]), int32(b1[j]), int32(b2[j]), int32(b3[j])
				crow0[j] += a00*e0 + a01*e1 + a02*e2 + a03*e3
				crow1[j] += a10*e0 + a11*e1 + a12*e2 + a13*e3
			}
		}
		for ; kk < k; kk++ {
			av0, av1 := int32(arow0[kk]), int32(arow1[kk])
			brow := b[kk*n:][:n]
			for j := range crow0 {
				e := int32(brow[j])
				crow0[j] += av0 * e
				crow1[j] += av1 * e
			}
		}
	}
	for ; i < hi; i++ {
		arow := a[i*k : i*k+k : i*k+k]
		crow := c[i*n : i*n+n : i*n+n]
		for j := range crow {
			crow[j] = 0
		}
		kk := 0
		for ; kk+4 <= k; kk += 4 {
			a0, a1 := int32(arow[kk]), int32(arow[kk+1])
			a2, a3 := int32(arow[kk+2]), int32(arow[kk+3])
			b0 := b[kk*n:][:n]
			b1 := b[(kk+1)*n:][:n]
			b2 := b[(kk+2)*n:][:n]
			b3 := b[(kk+3)*n:][:n]
			for j := range crow {
				crow[j] += a0*int32(b0[j]) + a1*int32(b1[j]) + a2*int32(b2[j]) + a3*int32(b3[j])
			}
		}
		for ; kk < k; kk++ {
			av := int32(arow[kk])
			brow := b[kk*n:][:n]
			for j := range crow {
				crow[j] += av * int32(brow[j])
			}
		}
	}
}

// qgemvAcc computes y (int32, m) = A (int8, m×k) · x (int8, k), rows
// split across workers. With the assembly dot kernel available each
// row runs 32 codes per step through VPMADDWD (exact, bit-identical);
// otherwise four rows are interleaved to break the dependency chain on
// the accumulators.
func qgemvAcc(m, k int, a, x []int8, y []int32, workers int) {
	if asmQgemmOK && k >= 32 {
		if serialSpan(workers, m) {
			qgemvAsmRows(0, m, k, a, x, y)
			return
		}
		parallelFor(workers, m, func(lo, hi int) {
			qgemvAsmRows(lo, hi, k, a, x, y)
		})
		return
	}
	if serialSpan(workers, m) {
		qgemvRows(0, m, k, a, x, y)
		return
	}
	parallelFor(workers, m, func(lo, hi int) {
		qgemvRows(lo, hi, k, a, x, y)
	})
}

// qgemvRows accumulates rows [lo, hi) of the int8 matrix-vector product.
func qgemvRows(lo, hi, k int, a, x []int8, y []int32) {
	xx := x[:k:k]
	i := lo
	for ; i+4 <= hi; i += 4 {
		r0 := a[i*k : i*k+k : i*k+k]
		r1 := a[(i+1)*k:][:k:k]
		r2 := a[(i+2)*k:][:k:k]
		r3 := a[(i+3)*k:][:k:k]
		var v0, v1, v2, v3 int32
		for j, xv := range xx {
			e := int32(xv)
			v0 += int32(r0[j]) * e
			v1 += int32(r1[j]) * e
			v2 += int32(r2[j]) * e
			v3 += int32(r3[j]) * e
		}
		y[i], y[i+1], y[i+2], y[i+3] = v0, v1, v2, v3
	}
	for ; i < hi; i++ {
		row := a[i*k : i*k+k : i*k+k]
		var v int32
		for j, w := range row {
			v += int32(w) * int32(xx[j])
		}
		y[i] = v
	}
}

// qim2colGroup fills dst (kSize × outH·outW, row-major, int8) with the
// patch matrix of quantized input channels [cLo, cLo+icpg). Padding
// positions hold zero — the quantized code of 0.0 — so the zero-point
// correction in the epilogue accounts for them exactly like real
// activations.
func qim2colGroup(src, dst []int8, zero int8, cLo, icpg, inH, inW, kh, kw, stride, padH, padW, outH, outW, workers int) {
	rows := icpg * kh * kw
	if serialSpan(workers, rows) {
		qim2colRows(0, rows, src, dst, zero, cLo, inH, inW, kh, kw, stride, padH, padW, outH, outW)
		return
	}
	parallelFor(workers, rows, func(lo, hi int) {
		qim2colRows(lo, hi, src, dst, zero, cLo, inH, inW, kh, kw, stride, padH, padW, outH, outW)
	})
}

// qim2colRows fills quantized patch-matrix rows [lo, hi).
func qim2colRows(lo, hi int, src, dst []int8, zero int8, cLo, inH, inW, kh, kw, stride, padH, padW, outH, outW int) {
	hw := outH * outW
	for k := lo; k < hi; k++ {
		c := k / (kh * kw)
		r := k % (kh * kw) / kw
		s := k % kw
		qim2colRow(src, dst[k*hw:(k+1)*hw], zero, (cLo+c)*inH*inW,
			r, s, inH, inW, stride, padH, padW, outH, outW)
	}
}

// qim2colRow is im2colRow over int8 data with an explicit padding code.
func qim2colRow(src, row []int8, zero int8, chanBase, r, s, inH, inW, stride, padH, padW, outH, outW int) {
	idx := 0
	for oh := 0; oh < outH; oh++ {
		ih := oh*stride - padH + r
		if ih < 0 || ih >= inH {
			for i := 0; i < outW; i++ {
				row[idx] = zero
				idx++
			}
			continue
		}
		base := chanBase + ih*inW
		if stride == 1 {
			wLo, wHi := padW-s, inW+padW-s
			if wLo < 0 {
				wLo = 0
			}
			if wHi > outW {
				wHi = outW
			}
			for i := 0; i < wLo; i++ {
				row[idx] = zero
				idx++
			}
			if wHi > wLo {
				copy(row[idx:idx+wHi-wLo], src[base+wLo-padW+s:])
				idx += wHi - wLo
			}
			for i := wHi; i < outW; i++ {
				row[idx] = zero
				idx++
			}
			continue
		}
		iw := s - padW
		for ow := 0; ow < outW; ow++ {
			if iw >= 0 && iw < inW {
				row[idx] = src[base+iw]
			} else {
				row[idx] = zero
			}
			idx++
			iw += stride
		}
	}
}
