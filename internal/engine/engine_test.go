package engine

import (
	"math"
	"testing"

	"dnnjps/internal/dag"
	"dnnjps/internal/models"
	"dnnjps/internal/nn"
	"dnnjps/internal/profile"
	"dnnjps/internal/tensor"
)

// tinyCNN is a small but complete line model covering conv, pool,
// bn, activation, dense and softmax.
func tinyCNN(t *testing.T) *dag.Graph {
	t.Helper()
	g := dag.New("tinycnn")
	in := g.Add(&nn.Input{LayerName: "input", Shape: tensor.NewCHW(3, 16, 16)})
	c1 := g.Add(&nn.Conv2D{LayerName: "conv1", OutC: 8, KH: 3, KW: 3, Stride: 1, Pad: 1, Bias: true}, in)
	b1 := g.Add(nn.NewBatchNorm("bn1"), c1)
	r1 := g.Add(nn.NewActivation("relu1", nn.ReLU), b1)
	p1 := g.Add(nn.NewMaxPool2D("pool1", 2, 2, 0), r1)
	c2 := g.Add(&nn.DepthwiseConv2D{LayerName: "dw2", KH: 3, KW: 3, Stride: 1, Pad: 1}, p1)
	r2 := g.Add(nn.NewActivation("relu2", nn.ReLU6), c2)
	gp := g.Add(&nn.GlobalAvgPool2D{LayerName: "gap"}, r2)
	fc := g.Add(&nn.Dense{LayerName: "fc", Out: 10, Bias: true}, gp)
	g.Add(nn.NewSoftmax("softmax"), fc)
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	return g
}

// tinyResidual has an Add merge and a Concat, covering the general
// execution paths.
func tinyResidual(t *testing.T) *dag.Graph {
	t.Helper()
	g := dag.New("tinyres")
	in := g.Add(&nn.Input{LayerName: "input", Shape: tensor.NewCHW(4, 8, 8)})
	a := g.Add(&nn.Conv2D{LayerName: "body", OutC: 4, KH: 3, KW: 3, Stride: 1, Pad: 1}, in)
	ad := g.Add(&nn.Add{LayerName: "add"}, a, in)
	c1 := g.Add(&nn.Conv2D{LayerName: "b1", OutC: 2, KH: 1, KW: 1, Stride: 1}, ad)
	c2 := g.Add(&nn.Conv2D{LayerName: "b2", OutC: 3, KH: 1, KW: 1, Stride: 1}, ad)
	cc := g.Add(&nn.Concat{LayerName: "cat"}, c1, c2)
	g.Add(&nn.GlobalAvgPool2D{LayerName: "gap"}, cc)
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	return g
}

func seededInput(shape tensor.Shape) *tensor.Tensor {
	in := tensor.New(shape)
	for i := range in.Data {
		in.Data[i] = float32((i%17))/17 - 0.3
	}
	return in
}

func TestForwardShapes(t *testing.T) {
	g := tinyCNN(t)
	m := Load(g, 1)
	out, err := m.Forward(seededInput(tensor.NewCHW(3, 16, 16)))
	if err != nil {
		t.Fatalf("Forward: %v", err)
	}
	if !out.Shape.Equal(tensor.NewVec(10)) {
		t.Errorf("output shape = %v", out.Shape)
	}
}

func TestSoftmaxOutputIsDistribution(t *testing.T) {
	g := tinyCNN(t)
	m := Load(g, 1)
	out, err := m.Forward(seededInput(tensor.NewCHW(3, 16, 16)))
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range out.Data {
		if v < 0 || v > 1 {
			t.Errorf("probability out of range: %g", v)
		}
		sum += float64(v)
	}
	if math.Abs(sum-1) > 1e-5 {
		t.Errorf("probabilities sum to %g", sum)
	}
}

func TestDeterminism(t *testing.T) {
	g := tinyCNN(t)
	in := seededInput(tensor.NewCHW(3, 16, 16))
	out1, _ := Load(g, 42).Forward(in.Clone())
	out2, _ := Load(g, 42).Forward(in.Clone())
	for i := range out1.Data {
		if out1.Data[i] != out2.Data[i] {
			t.Fatal("same seed must give bit-identical outputs")
		}
	}
	out3, _ := Load(g, 43).Forward(in.Clone())
	same := true
	for i := range out1.Data {
		if out1.Data[i] != out3.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should give different outputs")
	}
}

func TestConv2DNumeric(t *testing.T) {
	// 1x3x3 input, one 2x2 kernel of ones, no pad, stride 1:
	// output[oh][ow] = sum of the 2x2 window.
	g := dag.New("c")
	in := g.Add(&nn.Input{LayerName: "in", Shape: tensor.NewCHW(1, 3, 3)})
	g.Add(&nn.Conv2D{LayerName: "conv", OutC: 1, KH: 2, KW: 2, Stride: 1}, in)
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	m := Load(g, 1)
	convID := g.Len() - 1
	p := m.params[convID]
	for i := range p.w {
		p.w[i] = 1
	}
	input, _ := tensor.NewFrom(tensor.NewCHW(1, 3, 3), []float32{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	})
	out, err := m.Forward(input)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{12, 16, 24, 28}
	for i, w := range want {
		if out.Data[i] != w {
			t.Errorf("out[%d] = %g, want %g", i, out.Data[i], w)
		}
	}
}

func TestConvPaddingNumeric(t *testing.T) {
	// Same kernel of ones with pad 1: corners see only 1 input value.
	g := dag.New("c")
	in := g.Add(&nn.Input{LayerName: "in", Shape: tensor.NewCHW(1, 2, 2)})
	g.Add(&nn.Conv2D{LayerName: "conv", OutC: 1, KH: 3, KW: 3, Stride: 1, Pad: 1}, in)
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	m := Load(g, 1)
	p := m.params[1]
	for i := range p.w {
		p.w[i] = 1
	}
	input, _ := tensor.NewFrom(tensor.NewCHW(1, 2, 2), []float32{1, 2, 3, 4})
	out, _ := m.Forward(input)
	// All four outputs see the whole 2x2 input (kernel covers it).
	for i := 0; i < 4; i++ {
		if out.Data[i] != 10 {
			t.Errorf("out[%d] = %g, want 10", i, out.Data[i])
		}
	}
}

func TestMaxPoolNumeric(t *testing.T) {
	g := dag.New("p")
	in := g.Add(&nn.Input{LayerName: "in", Shape: tensor.NewCHW(1, 4, 4)})
	g.Add(nn.NewMaxPool2D("pool", 2, 2, 0), in)
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	m := Load(g, 1)
	input, _ := tensor.NewFrom(tensor.NewCHW(1, 4, 4), []float32{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	})
	out, _ := m.Forward(input)
	want := []float32{6, 8, 14, 16}
	for i, w := range want {
		if out.Data[i] != w {
			t.Errorf("out[%d] = %g, want %g", i, out.Data[i], w)
		}
	}
}

func TestAvgAndGlobalPoolNumeric(t *testing.T) {
	g := dag.New("p")
	in := g.Add(&nn.Input{LayerName: "in", Shape: tensor.NewCHW(1, 2, 2)})
	a := g.Add(nn.NewAvgPool2D("avg", 2, 2, 0), in)
	g.Add(&nn.GlobalAvgPool2D{LayerName: "gap"}, a)
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	m := Load(g, 1)
	input, _ := tensor.NewFrom(tensor.NewCHW(1, 2, 2), []float32{2, 4, 6, 8})
	out, _ := m.Forward(input)
	if out.Data[0] != 5 {
		t.Errorf("avg = %g, want 5", out.Data[0])
	}
}

func TestDenseNumeric(t *testing.T) {
	g := dag.New("d")
	in := g.Add(&nn.Input{LayerName: "in", Shape: tensor.NewVec(3)})
	g.Add(&nn.Dense{LayerName: "fc", Out: 2, Bias: true}, in)
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	m := Load(g, 1)
	p := m.params[1]
	copy(p.w, []float32{1, 2, 3, 4, 5, 6}) // row-major [out][in]
	copy(p.b, []float32{10, 20})
	input, _ := tensor.NewFrom(tensor.NewVec(3), []float32{1, 1, 1})
	out, _ := m.Forward(input)
	if out.Data[0] != 16 || out.Data[1] != 35 {
		t.Errorf("dense = %v, want [16 35]", out.Data)
	}
}

func TestAddAndConcatNumeric(t *testing.T) {
	g := tinyResidual(t)
	m := Load(g, 5)
	out, err := m.Forward(seededInput(tensor.NewCHW(4, 8, 8)))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Shape.Equal(tensor.NewVec(5)) { // 2+3 concat channels
		t.Errorf("output shape = %v", out.Shape)
	}
}

func TestActivationNumerics(t *testing.T) {
	for _, fn := range []nn.ActFunc{nn.ReLU, nn.ReLU6, nn.Sigmoid, nn.Tanh} {
		in, _ := tensor.NewFrom(tensor.NewVec(4), []float32{-2, 0, 3, 8})
		out := activate(nil, in, fn, false)
		switch fn {
		case nn.ReLU:
			assertVec(t, "relu", out, []float32{0, 0, 3, 8})
		case nn.ReLU6:
			assertVec(t, "relu6", out, []float32{0, 0, 3, 6})
		case nn.Sigmoid:
			if out.Data[1] != 0.5 || out.Data[0] >= 0.5 || out.Data[2] <= 0.5 {
				t.Errorf("sigmoid = %v", out.Data)
			}
		case nn.Tanh:
			if out.Data[1] != 0 || out.Data[0] >= 0 || out.Data[2] <= 0 {
				t.Errorf("tanh = %v", out.Data)
			}
		}
	}
}

func assertVec(t *testing.T, name string, got *tensor.Tensor, want []float32) {
	t.Helper()
	for i, w := range want {
		if got.Data[i] != w {
			t.Errorf("%s[%d] = %g, want %g", name, i, got.Data[i], w)
		}
	}
}

// The invariant the offloading runtime depends on: executing the
// mobile prefix, shipping the boundary tensor, and executing the cloud
// suffix reproduces the full forward pass exactly — for every cut of
// the line view.
func TestPartitionedExecutionMatchesFullForward(t *testing.T) {
	for _, build := range []func(*testing.T) *dag.Graph{tinyCNN, tinyResidual} {
		g := build(t)
		m := Load(g, 9)
		in := seededInput(g.Node(g.Source()).OutShape)
		full, err := m.Forward(in.Clone())
		if err != nil {
			t.Fatal(err)
		}
		units := profile.LineView(g)
		topo := g.Topo()
		for cut := 0; cut < len(units); cut++ {
			// Mobile side: all units up to and including cut.
			var prefix []int
			for _, u := range units[:cut+1] {
				prefix = append(prefix, u.Nodes...)
			}
			acts := map[int]*tensor.Tensor{}
			if err := m.Execute(acts, in.Clone(), prefix); err != nil {
				t.Fatalf("%s cut %d prefix: %v", g.Name(), cut, err)
			}
			// Ship only the boundary tensor (the cut unit's exit).
			boundary := map[int]*tensor.Tensor{units[cut].Exit: acts[units[cut].Exit]}
			// Cloud side: remaining nodes in topo order.
			inPrefix := make(map[int]bool, len(prefix))
			for _, id := range prefix {
				inPrefix[id] = true
			}
			var suffix []int
			for _, id := range topo {
				if !inPrefix[id] {
					suffix = append(suffix, id)
				}
			}
			if err := m.Execute(boundary, nil, suffix); err != nil {
				t.Fatalf("%s cut %d suffix: %v", g.Name(), cut, err)
			}
			got := boundary[g.Sink()]
			for i := range full.Data {
				if got.Data[i] != full.Data[i] {
					t.Fatalf("%s cut %d: output[%d] = %g, full = %g",
						g.Name(), cut, i, got.Data[i], full.Data[i])
				}
			}
		}
	}
}

func TestExecuteErrors(t *testing.T) {
	g := tinyCNN(t)
	m := Load(g, 1)
	// Missing input.
	if err := m.Execute(map[int]*tensor.Tensor{}, nil, g.Topo()); err == nil {
		t.Error("missing input must error")
	}
	// Wrong input shape.
	if _, err := m.Forward(tensor.New(tensor.NewCHW(1, 4, 4))); err == nil {
		t.Error("wrong shape must error")
	}
	// Missing predecessor activation.
	if err := m.Execute(map[int]*tensor.Tensor{}, nil, []int{g.Sink()}); err == nil {
		t.Error("missing predecessor must error")
	}
}

func TestArgmax(t *testing.T) {
	v, _ := tensor.NewFrom(tensor.NewVec(4), []float32{0.1, 0.7, 0.15, 0.05})
	if Argmax(v) != 1 {
		t.Errorf("Argmax = %d, want 1", Argmax(v))
	}
}

func TestLRNNormalizes(t *testing.T) {
	in, _ := tensor.NewFrom(tensor.NewCHW(3, 1, 1), []float32{1, 2, 3})
	out := lrn(nil, in, 5)
	for i := range out.Data {
		if math.Abs(float64(out.Data[i])) >= math.Abs(float64(in.Data[i])) {
			t.Errorf("lrn must shrink magnitudes: %v -> %v", in.Data, out.Data)
		}
		if out.Data[i]*in.Data[i] < 0 {
			t.Error("lrn must preserve sign")
		}
	}
}

// MobileNet-v2 runs end to end in the real engine (the heaviest model
// the runtime example uses).
func TestMobileNetV2Forward(t *testing.T) {
	if testing.Short() {
		t.Skip("full MobileNet forward is slow")
	}
	g := models.MustBuild("mobilenetv2")
	m := Load(g, 3)
	out, err := m.Forward(seededInput(tensor.NewCHW(3, 224, 224)))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Shape.Equal(tensor.NewVec(1000)) {
		t.Errorf("output shape = %v", out.Shape)
	}
	var sum float64
	for _, v := range out.Data {
		sum += float64(v)
	}
	if math.Abs(sum-1) > 1e-4 {
		t.Errorf("softmax sum = %g", sum)
	}
}

func TestRectangularConvNumeric(t *testing.T) {
	// A 1x3 conv of ones with PadW=1 sums each row neighborhood:
	// out[h][w] = in[h][w-1] + in[h][w] + in[h][w+1] (zero padded).
	g := dag.New("rect")
	in := g.Add(&nn.Input{LayerName: "in", Shape: tensor.NewCHW(1, 2, 3)})
	g.Add(&nn.Conv2D{LayerName: "c", OutC: 1, KH: 1, KW: 3, Stride: 1, PadH: -1, PadW: 1}, in)
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	m := Load(g, 1)
	p := m.params[1]
	for i := range p.w {
		p.w[i] = 1
	}
	input, _ := tensor.NewFrom(tensor.NewCHW(1, 2, 3), []float32{
		1, 2, 3,
		4, 5, 6,
	})
	out, err := m.Forward(input)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Shape.Equal(tensor.NewCHW(1, 2, 3)) {
		t.Fatalf("shape = %v, want [1x2x3]", out.Shape)
	}
	want := []float32{3, 6, 5, 9, 15, 11}
	for i, w := range want {
		if out.Data[i] != w {
			t.Errorf("out[%d] = %g, want %g", i, out.Data[i], w)
		}
	}
}

func TestPartitionedInceptionStyleRectConv(t *testing.T) {
	// Prefix/suffix equality must hold through rectangular conv pairs.
	g := dag.New("rectres")
	in := g.Add(&nn.Input{LayerName: "in", Shape: tensor.NewCHW(4, 9, 9)})
	a := g.Add(&nn.Conv2D{LayerName: "c1x3", OutC: 4, KH: 1, KW: 3, Stride: 1, PadH: -1, PadW: 1, Bias: true}, in)
	b := g.Add(&nn.Conv2D{LayerName: "c3x1", OutC: 4, KH: 3, KW: 1, Stride: 1, PadH: 1, PadW: -1, Bias: true}, a)
	g.Add(&nn.GlobalAvgPool2D{LayerName: "gap"}, b)
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	m := Load(g, 11)
	input := seededInput(tensor.NewCHW(4, 9, 9))
	full, err := m.Forward(input.Clone())
	if err != nil {
		t.Fatal(err)
	}
	// Cut after c1x3: execute prefix, ship, execute suffix.
	acts := map[int]*tensor.Tensor{}
	if err := m.Execute(acts, input.Clone(), []int{in, a}); err != nil {
		t.Fatal(err)
	}
	boundary := map[int]*tensor.Tensor{a: acts[a]}
	if err := m.Execute(boundary, nil, []int{b, g.Sink()}); err != nil {
		t.Fatal(err)
	}
	got := boundary[g.Sink()]
	for i := range full.Data {
		if got.Data[i] != full.Data[i] {
			t.Fatalf("partitioned output differs at %d", i)
		}
	}
}
