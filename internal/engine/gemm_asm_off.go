//go:build noasm || (!amd64 && !arm64)

package engine

// Assembly kernels disabled: either the noasm build tag is set or the
// target architecture has no hand-written microkernel. asmSgemmOK and
// asmQgemmOK are false constants here, so the dispatch in gemm.go and
// qgemm.go compiles down to the pure-Go paths — bit-identical to the
// pre-asm build — and the stub bodies below are unreachable.

const (
	asmMR = 6
	asmNR = 16
	asmKC = 256
	asmMC = 132
	asmNC = 1024

	asmCrossoverBytes = -1

	asmQMR = 4
	asmQNR = 16
)

const (
	asmSgemmOK = false
	asmQgemmOK = false
	asmQuantOK = false
)

func asmSgemmTile(kc int, pa, pb, c []float32, off, ldc int) {
	panic("engine: assembly kernels disabled in this build")
}

func asmQgemmTile(kp2 int, pa, pb []int16, c []int32, off, ldc int) {
	panic("engine: assembly kernels disabled in this build")
}

func asmQdot(k32 int, a, x []int8) int32 {
	panic("engine: assembly kernels disabled in this build")
}

func quantizeSpanAsm(dst *int8, src *float32, inv, zero float64, n int) {
	panic("engine: assembly kernels disabled in this build")
}
