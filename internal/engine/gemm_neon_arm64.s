//go:build !noasm

#include "textflag.h"

// NEON float32 microkernel for arm64. The Go assembler has no
// by-element FMLA form, so each A lane is broadcast with VDUP and fed
// to a full-vector VFMLA — the arithmetic is identical (one rounding
// per multiply-add, like the FMADD contraction the compiler already
// applies to the pure-Go kernels on this architecture).

// func sgemmTile8x8(kc int, pa, pb, c *float32, ldc int)
//
// C[0:8][0:8] += A·B over one packed K panel. pa is an 8-row k-major
// strip (pa[kk*8+r]), pb an 8-column k-major strip (pb[kk*8+j]), c the
// top-left C element with rows ldc floats apart. Sixteen 4-lane
// accumulators hold the 8x8 tile (row r in V(2r), V(2r+1)); each k
// step loads 8 B floats and 8 A floats and issues 16 FMLAs. Every C
// element is loaded once, accumulated in ascending k in one register
// lane, and stored once.
//
// Register map: V16/V17 = B halves, V18/V19 = A, V20..V27 = broadcast
// lanes, V0..V15 = C.
TEXT ·sgemmTile8x8(SB), NOSPLIT, $0-40
	MOVD kc+0(FP), R0
	MOVD pa+8(FP), R1
	MOVD pb+16(FP), R2
	MOVD c+24(FP), R3
	MOVD ldc+32(FP), R4
	LSL  $2, R4, R4          // row stride in bytes

	// Load the 8x8 C tile.
	MOVD R3, R5
	VLD1 (R5), [V0.S4, V1.S4]
	ADD  R4, R5
	VLD1 (R5), [V2.S4, V3.S4]
	ADD  R4, R5
	VLD1 (R5), [V4.S4, V5.S4]
	ADD  R4, R5
	VLD1 (R5), [V6.S4, V7.S4]
	ADD  R4, R5
	VLD1 (R5), [V8.S4, V9.S4]
	ADD  R4, R5
	VLD1 (R5), [V10.S4, V11.S4]
	ADD  R4, R5
	VLD1 (R5), [V12.S4, V13.S4]
	ADD  R4, R5
	VLD1 (R5), [V14.S4, V15.S4]

neonLoop:
	VLD1.P 32(R2), [V16.S4, V17.S4]
	VLD1.P 32(R1), [V18.S4, V19.S4]
	VDUP  V18.S[0], V20.S4
	VDUP  V18.S[1], V21.S4
	VDUP  V18.S[2], V22.S4
	VDUP  V18.S[3], V23.S4
	VDUP  V19.S[0], V24.S4
	VDUP  V19.S[1], V25.S4
	VDUP  V19.S[2], V26.S4
	VDUP  V19.S[3], V27.S4
	VFMLA V20.S4, V16.S4, V0.S4
	VFMLA V20.S4, V17.S4, V1.S4
	VFMLA V21.S4, V16.S4, V2.S4
	VFMLA V21.S4, V17.S4, V3.S4
	VFMLA V22.S4, V16.S4, V4.S4
	VFMLA V22.S4, V17.S4, V5.S4
	VFMLA V23.S4, V16.S4, V6.S4
	VFMLA V23.S4, V17.S4, V7.S4
	VFMLA V24.S4, V16.S4, V8.S4
	VFMLA V24.S4, V17.S4, V9.S4
	VFMLA V25.S4, V16.S4, V10.S4
	VFMLA V25.S4, V17.S4, V11.S4
	VFMLA V26.S4, V16.S4, V12.S4
	VFMLA V26.S4, V17.S4, V13.S4
	VFMLA V27.S4, V16.S4, V14.S4
	VFMLA V27.S4, V17.S4, V15.S4
	SUB  $1, R0, R0
	CBNZ R0, neonLoop

	// Store the tile back.
	MOVD R3, R5
	VST1 [V0.S4, V1.S4], (R5)
	ADD  R4, R5
	VST1 [V2.S4, V3.S4], (R5)
	ADD  R4, R5
	VST1 [V4.S4, V5.S4], (R5)
	ADD  R4, R5
	VST1 [V6.S4, V7.S4], (R5)
	ADD  R4, R5
	VST1 [V8.S4, V9.S4], (R5)
	ADD  R4, R5
	VST1 [V10.S4, V11.S4], (R5)
	ADD  R4, R5
	VST1 [V12.S4, V13.S4], (R5)
	ADD  R4, R5
	VST1 [V14.S4, V15.S4], (R5)
	RET
